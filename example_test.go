package persephone_test

import (
	"fmt"
	"time"

	persephone "repro"
	"repro/internal/proto"
)

// ExampleSimulate runs the paper's High Bimodal workload under DARC
// and prints whether the short class met a 10x slowdown SLO.
func ExampleSimulate() {
	res, err := persephone.Simulate(persephone.SimConfig{
		Workers:      14,
		Mix:          persephone.HighBimodal(),
		Policy:       "darc",
		LoadFraction: 0.7,
		Duration:     200 * time.Millisecond,
		Seed:         1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("policy:", res.Policy)
	fmt.Println("short SLO met:", res.Types[0].SlowdownP999 < 10)
	// Output:
	// policy: DARC
	// short SLO met: true
}

// ExampleParsePolicySpec shows the scheduler name grammar.
func ExampleParsePolicySpec() {
	mix := persephone.HighBimodal()
	for _, name := range []string{"darc", "darc-static:2", "ts-ideal:1us", "bogus"} {
		var err error
		if spec, perr := persephone.ParsePolicySpec(name); perr != nil {
			err = perr
		} else {
			_, err = spec.Constructor(14, mix, 1)
		}
		fmt.Println(name, "ok:", err == nil)
	}
	// Output:
	// darc ok: true
	// darc-static:2 ok: true
	// ts-ideal:1us ok: true
	// bogus ok: false
}

// ExampleNewLiveServer starts the live runtime with a one-command
// classifier and calls it in-process.
func ExampleNewLiveServer() {
	srv, err := persephone.NewLiveServer(persephone.LiveConfig{
		Workers:    2,
		Classifier: persephone.CommandClassifier("PING"),
		Handler: persephone.HandlerFunc(func(typ int, payload, resp []byte) (int, proto.Status) {
			return copy(resp, "PONG"), persephone.StatusOK
		}),
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer srv.Stop()
	r, _ := srv.Call([]byte("PING"))
	fmt.Println(string(r.Payload))
	// Output:
	// PONG
}

// ExampleMix shows building a custom workload.
func ExampleMix() {
	mix := persephone.Mix{
		Name: "custom",
		Types: []persephone.TypeSpec{
			{Name: "lookup", Ratio: 0.9, Service: persephone.FixedService(2 * time.Microsecond)},
			{Name: "report", Ratio: 0.1, Service: persephone.ExpService(300 * time.Microsecond)},
		},
	}
	fmt.Println("mean:", mix.MeanService())
	fmt.Printf("dispersion: %.0fx\n", mix.Dispersion())
	// Output:
	// mean: 31.8µs
	// dispersion: 150x
}
