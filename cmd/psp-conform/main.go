// Command psp-conform runs the live↔sim differential conformance
// harness from the command line: the clean matrix (every canonical
// trace × every policy) or the mutation matrix (every catalogue entry,
// which the comparator must flag). It prints per-case divergence
// reports and, with -md, EXPERIMENTS.md-ready agreement tables.
//
// Exit status: 0 when every clean case agrees (and, under -mutate,
// every mutation is detected); 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/conformance"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, w io.Writer) int {
	fs := flag.NewFlagSet("psp-conform", flag.ExitOnError)
	traces := fs.String("traces", "all", "comma-separated canonical traces (bimodal,exp,tpcc) or all")
	policies := fs.String("policies", "all", "comma-separated policies (darc,darc-static,cfcfs,dfcfs) or all")
	seed := fs.Uint64("seed", 0, "override the trace seed (0 = each spec's pinned seed)")
	mutate := fs.Bool("mutate", false, "run the mutation matrix (detection trials) instead of the clean matrix")
	seeds := fs.Int("seeds", 1, "number of seeds for the mutation matrix")
	md := fs.Bool("md", false, "print markdown agreement tables per case")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	specs, err := pickSpecs(*traces)
	if err != nil {
		fmt.Fprintln(w, "psp-conform:", err)
		return 1
	}
	if *mutate {
		return runMutations(w, specs, *seeds, *md)
	}
	pols, err := pickPolicies(*policies)
	if err != nil {
		fmt.Fprintln(w, "psp-conform:", err)
		return 1
	}
	failures := 0
	for _, spec := range specs {
		for _, pol := range pols {
			s := spec.Seed
			if *seed != 0 {
				s = *seed
			}
			rep, err := runCaseRetrying(w, spec, pol, s)
			if err != nil {
				fmt.Fprintf(w, "psp-conform: %s/%s: %v\n", spec.Name, pol, err)
				failures++
				continue
			}
			fmt.Fprint(w, rep.String())
			if *md {
				fmt.Fprintln(w, rep.MarkdownTable())
			}
			if !rep.Agree() {
				failures++
			}
		}
	}
	if failures > 0 {
		fmt.Fprintf(w, "psp-conform: %d case(s) diverged\n", failures)
		return 1
	}
	fmt.Fprintln(w, "psp-conform: all cases agree")
	return 0
}

// runCaseRetrying runs one clean case, retrying exactly once when the
// only divergences are quantile-band misses: on virtualised hosts a
// transient freeze starves the live server and inflates its queue
// delays wholesale while every structural invariant holds (see
// Report.StatisticalOnly). Structural divergences are never retried.
func runCaseRetrying(w io.Writer, spec conformance.TraceSpec, pol string, seed uint64) (*conformance.Report, error) {
	rep, err := conformance.RunCase(spec, pol, seed)
	if err != nil {
		return nil, err
	}
	if rep.StatisticalOnly() {
		fmt.Fprintf(w, "RETRY   trace=%s policy=%s seed=%d statistical-only divergence (host stall?)\n",
			spec.Name, pol, seed)
		return conformance.RunCase(spec, pol, seed)
	}
	return rep, nil
}

// runMutations runs the detection trials: every catalogue mutation
// must be flagged, and the clean counterpart of every declared policy
// must not be (no false positives).
func runMutations(w io.Writer, specs []conformance.TraceSpec, seeds int, md bool) int {
	if seeds < 1 {
		seeds = 1
	}
	failures := 0
	for _, spec := range specs {
		for s := 0; s < seeds; s++ {
			seed := spec.Seed + uint64(10+s)
			declared := map[string]bool{}
			for _, mut := range conformance.Mutations() {
				declared[mut.Policy] = true
				rep, err := conformance.RunMutationCase(spec, mut, seed)
				if err != nil {
					fmt.Fprintf(w, "psp-conform: %s/%s seed=%d: %v\n", spec.Name, mut.Name, seed, err)
					failures++
					continue
				}
				if rep.Agree() {
					fmt.Fprintf(w, "MISSED  trace=%s mutation=%s seed=%d — comparator saw no divergence\n",
						spec.Name, mut.Name, seed)
					failures++
				} else {
					fmt.Fprintf(w, "CAUGHT  trace=%s mutation=%s seed=%d (%d divergence(s), first: %s)\n",
						spec.Name, mut.Name, seed, len(rep.Divergences), rep.Divergences[0])
				}
				if md {
					fmt.Fprintln(w, rep.MarkdownTable())
				}
			}
			// False-positive guard: the same seeds, unmutated.
			for pol := range declared {
				rep, err := runCaseRetrying(w, spec, pol, seed)
				if err != nil {
					fmt.Fprintf(w, "psp-conform: clean %s/%s seed=%d: %v\n", spec.Name, pol, seed, err)
					failures++
					continue
				}
				if !rep.Agree() {
					fmt.Fprintf(w, "FALSE-POSITIVE trace=%s policy=%s seed=%d:\n%s", spec.Name, pol, seed, rep.String())
					failures++
				} else {
					fmt.Fprintf(w, "CLEAN   trace=%s policy=%s seed=%d\n", spec.Name, pol, seed)
				}
			}
		}
	}
	if failures > 0 {
		fmt.Fprintf(w, "psp-conform: %d detection failure(s)\n", failures)
		return 1
	}
	fmt.Fprintln(w, "psp-conform: every mutation detected, no false positives")
	return 0
}

func pickSpecs(arg string) ([]conformance.TraceSpec, error) {
	if arg == "all" || arg == "" {
		return conformance.CanonicalSpecs(), nil
	}
	var out []conformance.TraceSpec
	for _, name := range strings.Split(arg, ",") {
		spec, err := conformance.SpecByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, spec)
	}
	return out, nil
}

func pickPolicies(arg string) ([]string, error) {
	if arg == "all" || arg == "" {
		return conformance.Policies(), nil
	}
	known := map[string]bool{}
	for _, p := range conformance.Policies() {
		known[p] = true
	}
	var out []string
	for _, name := range strings.Split(arg, ",") {
		name = strings.TrimSpace(name)
		if !known[name] {
			return nil, fmt.Errorf("unknown policy %q (have %s)", name, strings.Join(conformance.Policies(), ", "))
		}
		out = append(out, name)
	}
	return out, nil
}
