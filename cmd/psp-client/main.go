// Command psp-client is the open-loop Poisson load generator for
// psp-server: it offers a configured request rate over UDP or TCP,
// matches responses by request ID, and reports client-observed
// latency per request type.
//
// Usage:
//
//	psp-client -addr 127.0.0.1:9940 -workload high-bimodal -rate 5000 -duration 10s
//	psp-client -transport tcp -conns 4 -depth 16 -addr 127.0.0.1:9940 -rate 5000
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	persephone "repro"
)

// expandShards turns "host:9940" with n=4 into
// "host:9940,host:9941,host:9942,host:9943" — the consecutive ports a
// sharded psp-server binds. An -addr already naming several shards
// passes through untouched.
func expandShards(addr string, n int) (string, error) {
	if n <= 1 || strings.Contains(addr, ",") {
		return addr, nil
	}
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return "", fmt.Errorf("-shards needs -addr host:port: %w", err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return "", fmt.Errorf("-shards needs a numeric port in -addr: %w", err)
	}
	parts := make([]string, n)
	for i := range parts {
		parts[i] = net.JoinHostPort(host, strconv.Itoa(port+i))
	}
	return strings.Join(parts, ","), nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9940", "server address, or comma-separated UDP shard list")
	transport := flag.String("transport", "udp", "server transport: udp or tcp")
	shards := flag.Int("shards", 1, "expand -addr into this many consecutive-port shard addresses (UDP only)")
	conns := flag.Int("conns", 1, "TCP connections to open")
	depth := flag.Int("depth", 32, "max pipelined requests per TCP connection")
	workloadName := flag.String("workload", "high-bimodal", "workload mix (type ratios)")
	rate := flag.Float64("rate", 5000, "offered requests per second")
	duration := flag.Duration("duration", 5*time.Second, "generation duration")
	seed := flag.Uint64("seed", 1, "random seed")
	timeout := flag.Duration("timeout", 0, "per-request response timeout (0 disables retransmission)")
	retries := flag.Int("retries", 0, "max retransmissions per request (needs -timeout)")
	backoff := flag.Duration("backoff", time.Millisecond, "base retry backoff, doubled per attempt with jitter")
	backoffMax := flag.Duration("backoff-max", 0, "retry backoff cap (default 64x -backoff)")
	frontendMode := flag.Bool("frontend", false, "target is a psp-frontend: decode correlation trailers and report hedged queries")
	flag.Parse()

	mix, err := persephone.MixByName(*workloadName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := persephone.LoadConfig{
		Mix:             mix,
		Rate:            *rate,
		Duration:        *duration,
		Seed:            *seed,
		RequestTimeout:  *timeout,
		MaxRetries:      *retries,
		RetryBackoff:    *backoff,
		RetryBackoffMax: *backoffMax,
		Frontend:        *frontendMode,
		Conns:           *conns,
		Pipeline:        *depth,
		BuildPayload: func(typ int) []byte {
			// 2-byte type + 4 bytes of per-request entropy, matching
			// psp-server's applications.
			p := make([]byte, 8)
			binary.LittleEndian.PutUint16(p[0:2], uint16(typ))
			binary.LittleEndian.PutUint32(p[2:6], uint32(typ*2654435761))
			return p
		},
	}
	rc := persephone.LoadRunConfig{Config: cfg}
	switch *transport {
	case "udp":
		target, err := expandShards(*addr, *shards)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		rc.Transport = persephone.LoadTransportUDP
		if *frontendMode {
			rc.Transport = persephone.LoadTransportFrontend
		}
		rc.Addr = target
	case "tcp":
		if *frontendMode {
			fmt.Fprintln(os.Stderr, "-frontend is UDP-only: psp-frontend speaks datagrams to clients")
			os.Exit(2)
		}
		rc.Transport = persephone.LoadTransportTCP
		rc.Addr = *addr
	default:
		fmt.Fprintf(os.Stderr, "unknown -transport %q (want udp or tcp)\n", *transport)
		os.Exit(2)
	}
	res, err := persephone.RunLoad(rc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("sent %d  received %d  dropped %d  timed out %d  retries %d  nacked %d  achieved %.0f rps\n",
		res.Sent, res.Received, res.Dropped, res.TimedOut, res.Retries, res.Nacked, res.AchievedRate())
	if *frontendMode {
		fmt.Printf("hedged queries %d (answered with >= 1 hedge issued)\n", res.Hedged)
	}
	if un := res.Unaccounted(); un != 0 {
		fmt.Printf("WARNING: %d requests unaccounted for\n", un)
	}
	for i, h := range res.Latency {
		if h.Count() == 0 {
			continue
		}
		fmt.Printf("  %-12s n=%-8d p50=%-12v p99=%-12v p999=%v\n",
			mix.Types[i].Name, h.Count(),
			h.QuantileDuration(0.50), h.QuantileDuration(0.99), h.QuantileDuration(0.999))
	}
	fmt.Printf("  %-12s n=%-8d p50=%-12v p99=%-12v p999=%v\n",
		"all", res.Overall.Count(),
		res.Overall.QuantileDuration(0.50), res.Overall.QuantileDuration(0.99), res.Overall.QuantileDuration(0.999))
}
