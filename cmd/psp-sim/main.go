// Command psp-sim runs a single scheduling simulation and prints the
// per-type tail latency and slowdown summary.
//
// Usage:
//
//	psp-sim -workload extreme-bimodal -policy darc -workers 16 -load 0.9
//	psp-sim -workload tpcc -policy shinjuku-mq -load 0.7 -duration 2s
//	psp-sim -workload high-bimodal -policy darc-static:2 -load 0.95
//	psp-sim -trace live-spans.csv -policy cfcfs -workers 3
//
// With -trace, arrivals come from a recorded file instead of a
// generator: either an arrival trace (psp-trace record) or a live
// lifecycle span dump (psp-server -trace-out), making sim-vs-live
// policy comparisons a one-liner.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	persephone "repro"
	"repro/internal/trace"
)

func main() {
	workloadName := flag.String("workload", "high-bimodal", "workload: high-bimodal, extreme-bimodal, tpcc, rocksdb")
	policyName := flag.String("policy", "darc", "scheduling policy (see -policies)")
	workers := flag.Int("workers", 14, "number of worker cores")
	load := flag.Float64("load", 0.8, "offered load as a fraction of peak")
	rate := flag.Float64("rate", 0, "absolute arrival rate in requests/second (overrides -load)")
	duration := flag.Duration("duration", time.Second, "simulated duration")
	rtt := flag.Duration("rtt", 10*time.Microsecond, "network round-trip added to end-to-end latency")
	seed := flag.Uint64("seed", 42, "random seed")
	policies := flag.Bool("policies", false, "list policies and exit")
	traceIn := flag.String("trace", "", "replay a recorded arrival trace or live span dump instead of generating arrivals")
	flag.Parse()

	if *policies {
		for _, p := range persephone.PolicyNames() {
			fmt.Println(p)
		}
		return
	}

	mix, err := persephone.MixByName(*workloadName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var res *persephone.SimResult
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr, err := trace.ReadAuto(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err = persephone.ReplayTrace(tr, persephone.SimConfig{
			Workers: *workers,
			Mix:     mix,
			Policy:  *policyName,
			RTT:     *rtt,
			Seed:    *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		res, err = persephone.Simulate(persephone.SimConfig{
			Workers:      *workers,
			Mix:          mix,
			Policy:       *policyName,
			LoadFraction: *load,
			Rate:         *rate,
			Duration:     *duration,
			RTT:          *rtt,
			Seed:         *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	fmt.Printf("workload   %s (peak %.3f Mrps on %d workers)\n", mix.Name, mix.PeakLoad(*workers)/1e6, *workers)
	fmt.Printf("policy     %s\n", res.Policy)
	fmt.Printf("offered    %.3f Mrps   achieved %.3f Mrps   utilization %.1f%%\n",
		res.OfferedRPS/1e6, res.ThroughputRPS/1e6, res.Utilization*100)
	fmt.Printf("completed  %d   dropped %d\n", res.Completed, res.Dropped)
	fmt.Printf("overall    p99.9 latency %v   p99.9 slowdown %.1fx\n", res.OverallP999, res.OverallSlowdown)
	fmt.Println()
	fmt.Printf("%-12s %10s %10s %12s %12s %12s %10s\n",
		"type", "completed", "dropped", "p50", "p99", "p99.9", "slowdown")
	for _, t := range res.Types {
		fmt.Printf("%-12s %10d %10d %12v %12v %12v %9.1fx\n",
			t.Name, t.Completed, t.Dropped, t.P50, t.P99, t.P999, t.SlowdownP999)
	}
}
