// Command psp-experiments regenerates the paper's tables and figures
// on the discrete-event simulator.
//
// Usage:
//
//	psp-experiments -artifact all
//	psp-experiments -artifact figure1 -duration 2s -csv results/
//	psp-experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	persephone "repro"
)

func main() {
	artifact := flag.String("artifact", "all", "artifact to regenerate (figure1..figure10, table1/3/4/5, or 'all')")
	duration := flag.Duration("duration", time.Second, "simulated duration per load point")
	seed := flag.Uint64("seed", 42, "random seed")
	loads := flag.String("loads", "", "comma-separated load fractions (default paper grid)")
	csvDir := flag.String("csv", "", "directory for CSV output (optional)")
	parallel := flag.Int("parallel", 0, "max concurrent simulations (default NumCPU)")
	window := flag.Uint64("profile-window", 0, "DARC profiling window samples (default 5000)")
	list := flag.Bool("list", false, "list artifacts and exit")
	flag.Parse()

	if *list {
		for _, n := range persephone.ExperimentNames() {
			fmt.Println(n)
		}
		return
	}

	opt := persephone.ExperimentOptions{
		Duration:         *duration,
		Seed:             *seed,
		CSVDir:           *csvDir,
		Parallel:         *parallel,
		MinWindowSamples: *window,
	}
	if *loads != "" {
		for _, part := range strings.Split(*loads, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil || v <= 0 || v > 1 {
				fmt.Fprintf(os.Stderr, "bad load %q\n", part)
				os.Exit(2)
			}
			opt.Loads = append(opt.Loads, v)
		}
	}

	var err error
	if *artifact == "all" {
		err = persephone.RunAllExperiments(opt, os.Stdout)
	} else {
		err = persephone.RunExperiment(*artifact, opt, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
