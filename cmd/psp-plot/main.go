// Command psp-plot turns the CSVs written by psp-experiments into
// self-contained SVG line charts (paper-figure shaped: load on X,
// p99.9 slowdown on a log Y).
//
// Usage:
//
//	psp-experiments -artifact figure1 -csv results
//	psp-plot -in results/figure1.csv -out figure1.svg
//	psp-plot -in results/figure8.csv -x load -y '*_slowdown_p999' -log
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/svgplot"
)

func main() {
	in := flag.String("in", "", "input CSV (from psp-experiments -csv)")
	out := flag.String("out", "", "output SVG (default: input with .svg)")
	xcol := flag.String("x", "load", "X column name")
	ypat := flag.String("y", "*_slowdown_p999", "Y column glob (matches series columns)")
	logY := flag.Bool("log", true, "log-scale Y axis")
	title := flag.String("title", "", "chart title (default: file name)")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "psp-plot: -in is required")
		os.Exit(2)
	}
	if err := run(*in, *out, *xcol, *ypat, *logY, *title); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(in, out, xcol, ypat string, logY bool, title string) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return err
	}
	if len(rows) < 2 {
		return fmt.Errorf("psp-plot: %s has no data rows", in)
	}
	header := rows[0]
	xi := -1
	var yis []int
	for i, h := range header {
		if h == xcol {
			xi = i
		}
		if globMatch(ypat, h) {
			yis = append(yis, i)
		}
	}
	if xi < 0 {
		return fmt.Errorf("psp-plot: no column %q in %v", xcol, header)
	}
	if len(yis) == 0 {
		return fmt.Errorf("psp-plot: no columns match %q in %v", ypat, header)
	}

	chart := &svgplot.Chart{
		Title:  title,
		XLabel: xcol,
		YLabel: strings.TrimPrefix(ypat, "*_"),
		LogY:   logY,
	}
	if chart.Title == "" {
		chart.Title = strings.TrimSuffix(filepath.Base(in), ".csv")
	}
	for _, yi := range yis {
		s := svgplot.Series{Name: seriesName(header[yi], ypat)}
		for _, row := range rows[1:] {
			if yi >= len(row) || xi >= len(row) {
				continue
			}
			x, errX := strconv.ParseFloat(row[xi], 64)
			y, errY := strconv.ParseFloat(row[yi], 64)
			if errX != nil || errY != nil {
				continue // non-numeric cells (e.g. "starved") are skipped
			}
			s.X = append(s.X, x)
			s.Y = append(s.Y, y)
		}
		if len(s.X) > 0 {
			chart.Series = append(chart.Series, s)
		}
	}
	if out == "" {
		out = strings.TrimSuffix(in, ".csv") + ".svg"
	}
	o, err := os.Create(out)
	if err != nil {
		return err
	}
	defer o.Close()
	if err := chart.Render(o); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d series)\n", out, len(chart.Series))
	return nil
}

// globMatch supports a single '*' wildcard.
func globMatch(pat, s string) bool {
	i := strings.IndexByte(pat, '*')
	if i < 0 {
		return pat == s
	}
	prefix, suffix := pat[:i], pat[i+1:]
	return len(s) >= len(prefix)+len(suffix) &&
		strings.HasPrefix(s, prefix) && strings.HasSuffix(s, suffix)
}

// seriesName strips the glob's fixed parts from a matched column.
func seriesName(col, pat string) string {
	i := strings.IndexByte(pat, '*')
	if i < 0 {
		return col
	}
	name := strings.TrimPrefix(col, pat[:i])
	return strings.TrimSuffix(name, pat[i+1:])
}
