package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGlobMatch(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"*_slowdown", "DARC_slowdown", true},
		{"*_slowdown", "slowdown", false},
		{"load", "load", true},
		{"load", "loads", false},
		{"DARC_*", "DARC_p999", true},
		{"a*c", "abc", true},
		{"a*c", "ac", true},
		{"a*c", "ab", false},
	}
	for _, c := range cases {
		if got := globMatch(c.pat, c.s); got != c.want {
			t.Errorf("globMatch(%q,%q)=%v want %v", c.pat, c.s, got, c.want)
		}
	}
}

func TestSeriesName(t *testing.T) {
	if got := seriesName("DARC_slowdown_p999", "*_slowdown_p999"); got != "DARC" {
		t.Fatalf("got %q", got)
	}
	if got := seriesName("exact", "exact"); got != "exact" {
		t.Fatalf("got %q", got)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "fig.csv")
	csv := "load,offered_Mrps,DARC_slowdown_p999,c-FCFS_slowdown_p999\n" +
		"0.10,0.5,1.00,1.00\n" +
		"0.50,2.5,1.26,219.1\n" +
		"0.90,4.5,4.16,starved\n" // non-numeric cells skipped
	if err := os.WriteFile(in, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "fig.svg")
	if err := run(in, out, "load", "*_slowdown_p999", true, "test fig"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	svg := string(data)
	for _, want := range []string{"<svg", "DARC", "c-FCFS", "test fig"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bad.csv")
	os.WriteFile(in, []byte("a,b\n1,2\n"), 0o644) //nolint:errcheck
	if err := run(in, filepath.Join(dir, "o.svg"), "load", "*_slowdown", true, ""); err == nil {
		t.Fatal("missing x column accepted")
	}
	if err := run(in, filepath.Join(dir, "o.svg"), "a", "*_nope", true, ""); err == nil {
		t.Fatal("no matching y columns accepted")
	}
	if err := run(filepath.Join(dir, "absent.csv"), "", "load", "*", true, ""); err == nil {
		t.Fatal("missing file accepted")
	}
}
