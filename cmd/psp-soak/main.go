// psp-soak runs the invariant-checked chaos soak harness: seeded
// randomized reconfigurations (policy swaps, worker resizes, admission
// changes, DARC refreshes) interleaved with fault injection against a
// live in-process server, with every conservation ledger asserted.
// Exit status 1 means at least one seed observed an invariant
// violation.
//
// Usage:
//
//	psp-soak -seeds 1,2,3 -reconfigs 100 -workers 4 -faults
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/soak"
)

func main() {
	var (
		seedsFlag = flag.String("seeds", "1,2,3", "comma-separated soak seeds (one run per seed)")
		reconfigs = flag.Int("reconfigs", 100, "reconfigurations per seed")
		workers   = flag.Int("workers", 4, "initial worker-pool size")
		maxW      = flag.Int("max-workers", 0, "resize ceiling (0 = 2x workers)")
		subs      = flag.Int("submitters", 3, "closed-loop load goroutines")
		epoch     = flag.Duration("epoch", 4*time.Millisecond, "load-soak time between reconfigurations")
		drain     = flag.Duration("drain", 2*time.Second, "per-shrink drain deadline (exceeding it is a violation)")
		faults    = flag.Bool("faults", true, "inject chaos (worker crashes, stalls, slowdowns, laggy reservations)")
		verbose   = flag.Bool("v", false, "log per-epoch progress")
	)
	flag.Parse()

	seeds, err := parseSeeds(*seedsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	failed := 0
	for _, seed := range seeds {
		cfg := soak.Config{
			Seed:          seed,
			Reconfigs:     *reconfigs,
			Workers:       *workers,
			MaxWorkers:    *maxW,
			Submitters:    *subs,
			Epoch:         *epoch,
			DrainDeadline: *drain,
			Faults:        *faults,
		}
		if *verbose {
			cfg.Logf = func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			}
		}
		rep, err := soak.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seed %d: %v\n", seed, err)
			os.Exit(2)
		}
		fmt.Println(rep.Summary())
		for _, v := range rep.Violations {
			fmt.Printf("  VIOLATION: %s\n", v)
		}
		if !rep.OK() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Printf("%d of %d seeds FAILED\n", failed, len(seeds))
		os.Exit(1)
	}
	fmt.Printf("all %d seeds clean\n", len(seeds))
}

func parseSeeds(s string) ([]uint64, error) {
	var seeds []uint64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("psp-soak: bad seed %q: %v", part, err)
		}
		seeds = append(seeds, n)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("psp-soak: no seeds given")
	}
	return seeds, nil
}
