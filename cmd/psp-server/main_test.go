package main

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	persephone "repro"
	"repro/internal/proto"
)

// listenTest builds a small synthetic server on the given transport
// with a handler slow enough that requests are reliably in flight
// when the shutdown path runs.
func listenTest(t *testing.T, transport string) *persephone.LiveListener {
	t.Helper()
	ln, err := persephone.Listen(transport, "127.0.0.1:0", persephone.LiveConfig{
		Workers:    2,
		Classifier: persephone.FieldClassifier(0, 2),
		Handler: persephone.HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			time.Sleep(500 * time.Microsecond)
			return copy(r, p), proto.StatusOK
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

// driveUDP fires typed requests at the listener until stop closes,
// draining responses so client-side buffers stay clear.
func driveUDP(t *testing.T, ln *persephone.LiveListener, stop chan struct{}, wg *sync.WaitGroup) {
	t.Helper()
	conn, err := net.Dial("udp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		buf := make([]byte, 2048)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		defer conn.Close()
		payload := []byte{0, 0, 'd', 'r', 'a', 'i', 'n'}
		var id uint64
		var msg []byte
		for {
			select {
			case <-stop:
				return
			default:
			}
			id++
			payload[0] = byte(id % 2)
			msg = proto.AppendMessage(msg[:0], proto.Header{
				Kind:      proto.KindRequest,
				RequestID: id,
			}, payload)
			if _, err := conn.Write(msg); err != nil {
				return
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()
}

// driveTCP runs pipelined Calls over one connection until the server's
// drain closes it (Call then errors and the goroutines exit).
func driveTCP(t *testing.T, ln *persephone.LiveListener, stop chan struct{}, wg *sync.WaitGroup) {
	t.Helper()
	cl, err := persephone.DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			payload := []byte{byte(g % 2), 0, 'd', 'r', 'a', 'i', 'n'}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := cl.Call(payload); err != nil {
					return
				}
			}
		}(g)
	}
	go func() {
		wg.Wait()
		cl.Close()
	}()
}

// TestShutdownDrainUnderLoad is the drain regression test for the
// unified SIGTERM/SIGINT path: with load actively in flight,
// closeAndSnapshot must answer everything already accepted (nothing
// silently lost: enqueued == dispatched + dropped) and the shutdown
// ledger must print in the identical format for UDP and TCP.
func TestShutdownDrainUnderLoad(t *testing.T) {
	ledgers := map[string]string{}
	digits := regexp.MustCompile(`[0-9][0-9.]*(µs|ms|s)?`)
	spaces := regexp.MustCompile(`[ \t]+`)
	for _, transport := range []string{"udp", "tcp"} {
		t.Run(transport, func(t *testing.T) {
			ln := listenTest(t, transport)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			if transport == "udp" {
				driveUDP(t, ln, stop, &wg)
			} else {
				driveTCP(t, ln, stop, &wg)
			}

			// Let load build so the close really races in-flight work.
			deadline := time.Now().Add(2 * time.Second)
			for ln.Received() < 50 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if ln.Received() == 0 {
				t.Fatal("no load reached the server")
			}

			st := closeAndSnapshot(ln)
			close(stop)
			wg.Wait()

			if st.Enqueued == 0 {
				t.Fatal("nothing enqueued")
			}
			if st.Enqueued != st.Dispatched+st.Dropped {
				t.Fatalf("drain lost requests: enqueued %d != dispatched %d + dropped %d",
					st.Enqueued, st.Dispatched, st.Dropped)
			}

			var b bytes.Buffer
			printShutdownSummary(&b, st, ln.RxDrops(), ln.RxSheds())
			out := b.String()
			if !strings.Contains(out, "enqueued") || !strings.Contains(out, "rx sheds") {
				t.Fatalf("unexpected ledger:\n%s", out)
			}
			// Numbers become N, then padding runs collapse: the summary
			// right-aligns columns, so the whitespace width itself
			// depends on the digit counts being erased.
			ledgers[transport] = spaces.ReplaceAllString(digits.ReplaceAllString(out, "N"), " ")
		})
	}
	if u, ok := ledgers["udp"]; ok {
		if c, ok := ledgers["tcp"]; ok && u != c {
			t.Errorf("shutdown ledgers diverge between transports:\nudp:\n%s\ntcp:\n%s", u, c)
		}
	}
}

// TestApplyReconfigFile covers the SIGHUP reload path: a good spec
// file applies live (generation bumps, policy and pool change), a bad
// one reports and leaves the server untouched.
func TestApplyReconfigFile(t *testing.T) {
	ln := listenTest(t, "udp")
	defer ln.Close()
	srv := ln.Server()

	path := filepath.Join(t.TempDir(), "reconfig.conf")
	spec := "# live reconfig\npolicy=cfcfs\nworkers=3\n"
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	applyReconfigFile(srv, path, &out, &errw)
	if errw.Len() != 0 {
		t.Fatalf("reload failed: %s", errw.String())
	}
	snap := srv.ConfigSnapshot()
	if snap.Policy != "c-FCFS" || snap.Workers != 3 || snap.Generation != 1 {
		t.Fatalf("snapshot after reload: %+v", snap)
	}
	if !strings.Contains(out.String(), "reconfig gen 1") {
		t.Fatalf("reload output: %q", out.String())
	}

	// A bad spec reports and changes nothing.
	if err := os.WriteFile(path, []byte("policy=quantum\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	applyReconfigFile(srv, path, &out, &errw)
	if errw.Len() == 0 {
		t.Fatal("bad spec applied silently")
	}
	if snap := srv.ConfigSnapshot(); snap.Generation != 1 {
		t.Fatalf("bad spec bumped generation: %+v", snap)
	}

	// A missing file reports and changes nothing.
	errw.Reset()
	applyReconfigFile(srv, filepath.Join(t.TempDir(), "gone"), &out, &errw)
	if errw.Len() == 0 {
		t.Fatal("missing file applied silently")
	}
}
