// Command psp-server runs the live Perséphone runtime over UDP or TCP
// with one of three built-in applications:
//
//   - synthetic: requests spin for their type's service time (pick a
//     workload to define the types);
//   - kv: an in-memory ordered store with GET (point lookup) and SCAN
//     (5000-key range scan) — the RocksDB stand-in;
//   - tpcc: the five TPC-C transactions over the in-memory database.
//
// Requests carry their type in the first two payload bytes (little
// endian), matching cmd/psp-client. Stop with Ctrl-C or SIGTERM
// (handled identically): the transport closes, in-flight requests
// drain, and the shutdown ledger prints — the same sequence for UDP
// and TCP. With -reconfig-file, SIGHUP re-reads the file and applies
// it live (policy swap, worker resize, admission budgets) without
// dropping in-flight requests; -metrics-addr additionally exposes
// POST /admin/reconfig and GET /admin/config for the same specs over
// HTTP.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	persephone "repro"
	"repro/internal/kvstore"
	"repro/internal/proto"
	"repro/internal/spin"
	"repro/internal/tpcc"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9940", "listen address (UDP shard i binds port+i)")
	transport := flag.String("transport", "udp", "listen transport: udp or tcp")
	shards := flag.Int("shards", 1, "ingress shards: UDP sockets (one net worker each) or TCP accept shards")
	burst := flag.Int("burst", 32, "max datagrams or frames drained per socket wakeup")
	workers := flag.Int("workers", 4, "application worker goroutines")
	app := flag.String("app", "synthetic", "application: synthetic, kv, tpcc")
	workloadName := flag.String("workload", "high-bimodal", "synthetic app: workload defining per-type service times")
	cfcfs := flag.Bool("cfcfs", false, "run the c-FCFS baseline instead of DARC")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /healthz on this address (e.g. 127.0.0.1:9941)")
	faultSpec := flag.String("faults", "", `chaos profile, e.g. "seed=42,drop=0.1,dup=0.01,stall=0:5ms,slow=1:2,crash=0.001,respawn=10ms,resdelay=5ms"`)
	admSpec := flag.String("admission", "", `per-type queue-delay budgets enabling admission control, e.g. "3ms,50ms" (zero/missing entries auto-derive from the DARC profile; over-budget requests are NACKed with a retry-after hint)`)
	admTrim := flag.Duration("admission-trim", 0, "sustained-overload trim threshold for -admission (0 = auto: half the smallest budget)")
	traceOut := flag.String("trace-out", "", "dump completed-request lifecycle spans to this CSV file (replayable via psp-trace/psp-sim)")
	reconfigFile := flag.String("reconfig-file", "", `reconfiguration spec file re-read and applied on SIGHUP (key=value lines, e.g. "policy=cfcfs\nworkers=6"; see /admin/reconfig for the vocabulary)`)
	flag.Parse()

	cfg, err := buildApp(*app, *workloadName, *workers, *cfcfs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg.NetShards = *shards
	cfg.RxBurst = *burst
	if *faultSpec != "" {
		profile, err := persephone.ParseFaultProfile(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Faults = &profile
	}
	if *admSpec != "" {
		pol, err := parseAdmission(*admSpec, *admTrim)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Admission = pol
	} else if *admTrim != 0 {
		fmt.Fprintln(os.Stderr, "-admission-trim needs -admission")
		os.Exit(2)
	}
	var traceFile *os.File
	var spanW *trace.SpanWriter
	if *traceOut != "" {
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		spanW = trace.NewSpanWriter(traceFile)
		cfg.TraceSink = func(sp persephone.TraceSpan) {
			spanW.Write(sp) //nolint:errcheck // sticky, reported at Flush
		}
	}
	if *transport != "udp" && *transport != "tcp" {
		fmt.Fprintf(os.Stderr, "unknown -transport %q (want udp or tcp)\n", *transport)
		os.Exit(2)
	}
	ln, err := persephone.Listen(*transport, *addr, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("psp-server: %s app on %s/%s (%d shard(s), burst %d), %d workers, policy %s\n",
		*app, *transport, ln.AddrStrings(), *shards, *burst, *workers, policyName(*cfcfs))
	if cfg.Faults != nil {
		fmt.Printf("chaos profile active: %s\n", cfg.Faults)
	}
	if cfg.Admission != nil {
		fmt.Printf("admission control active: budgets %s\n", *admSpec)
	}
	if *metricsAddr != "" {
		bound, shutdown, err := ln.Server().ServeMetrics(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer shutdown() //nolint:errcheck
		fmt.Printf("metrics on http://%s/metrics\n", bound)
	}

	var flushWG sync.WaitGroup
	stopFlush := make(chan struct{})
	if spanW != nil {
		fmt.Printf("tracing lifecycle spans to %s\n", *traceOut)
		// Drain worker trace rings to the CSV sink periodically, so
		// long runs don't overflow the fixed-capacity rings.
		flushWG.Add(1)
		go func() {
			defer flushWG.Done()
			tick := time.NewTicker(100 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					ln.Server().FlushTrace()
				case <-stopFlush:
					return
				}
			}
		}()
	}

	awaitShutdown(ln.Server(), *reconfigFile)

	// Close the transport BEFORE snapshotting: Close answers everything
	// already accepted (the TCP path drains connections gracefully), so
	// the ledger below includes requests that complete during the drain
	// — the same sequence, and the same printed summary, for UDP and
	// TCP.
	st := closeAndSnapshot(ln)
	close(stopFlush)
	flushWG.Wait()
	if spanW != nil {
		// Close() flushed the final spans through the sink; settle the
		// file.
		if err := spanW.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
		}
		if err := traceFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
		}
		fmt.Printf("wrote %d lifecycle spans to %s (lost %d to full rings)\n",
			spanW.Count(), *traceOut, st.TraceLost)
	}
	printShutdownSummary(os.Stdout, st, ln.RxDrops(), ln.RxSheds())
}

// awaitShutdown blocks until SIGINT or SIGTERM — the two are handled
// identically. When reconfigFile is non-empty, SIGHUP re-reads it and
// applies the parsed spec to the live server without dropping
// in-flight requests.
func awaitShutdown(srv *persephone.LiveServer, reconfigFile string) {
	sig := make(chan os.Signal, 2)
	notify := []os.Signal{os.Interrupt, syscall.SIGTERM}
	if reconfigFile != "" {
		notify = append(notify, syscall.SIGHUP)
	}
	signal.Notify(sig, notify...)
	defer signal.Stop(sig)
	for s := range sig {
		if s != syscall.SIGHUP {
			return
		}
		applyReconfigFile(srv, reconfigFile, os.Stdout, os.Stderr)
	}
}

// applyReconfigFile reloads path and applies it to the live server.
// Errors are reported, never fatal: a bad reload must not take the
// server down.
func applyReconfigFile(srv *persephone.LiveServer, path string, out, errw io.Writer) {
	text, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(errw, "reconfig: %v\n", err)
		return
	}
	spec, err := persephone.ParseReconfigSpec(string(text))
	if err != nil {
		fmt.Fprintf(errw, "reconfig %s: %v\n", path, err)
		return
	}
	res, err := srv.Reconfigure(spec)
	if err != nil {
		fmt.Fprintf(errw, "reconfig %s: %v\n", path, err)
		return
	}
	fmt.Fprintf(out, "reconfig gen %d: %s\n", res.Generation, strings.Join(res.Applied, "; "))
}

// closeAndSnapshot stops the transport and the server — answering
// everything already accepted — and only then snapshots the final
// counters, so the shutdown ledger accounts for requests completed
// during the graceful drain. One code path for both transports.
func closeAndSnapshot(ln *persephone.LiveListener) persephone.LiveStats {
	ln.Close()
	return ln.Server().StatsSnapshot()
}

// printShutdownSummary renders the shutdown ledger in the one format
// shared by the UDP and TCP transports.
func printShutdownSummary(w io.Writer, st persephone.LiveStats, rxDrops, rxSheds uint64) {
	fmt.Fprintf(w, "\nenqueued %d  dispatched %d  dropped %d  reservation updates %d  rx drops %d  rx sheds %d\n",
		st.Enqueued, st.Dispatched, st.Dropped, st.Updates, rxDrops, rxSheds)
	if st.FaultsInjected > 0 || st.RetriesSeen > 0 {
		fmt.Fprintf(w, "faults injected %d  worker restarts %d  client retries seen %d\n",
			st.FaultsInjected, st.WorkerRestarts, st.RetriesSeen)
	}
	if st.Admission != nil {
		tot := st.Admission.Totals()
		fmt.Fprintf(w, "admission: accepted %d  completed %d  shed %d (deadline %d  overload %d  lost %d)\n",
			tot.Accepted, tot.Completed, tot.Shed(), tot.ShedDeadline, tot.ShedOverload, tot.ShedLost)
	}
	for _, row := range st.Summaries {
		fmt.Fprintf(w, "  %-10s n=%-8d p50=%-12v p999=%-12v slowdown999=%.1fx\n",
			row.Name, row.Completed, row.P50, row.P999, row.Slowdown999)
	}
}

// parseAdmission turns a comma-separated budget list ("3ms,50ms")
// into an admission policy. A zero entry keeps that type on the
// auto-derived budget.
func parseAdmission(spec string, trim time.Duration) (*persephone.AdmissionPolicy, error) {
	parts := strings.Split(spec, ",")
	budgets := make([]time.Duration, len(parts))
	for i, p := range parts {
		d, err := time.ParseDuration(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("-admission entry %d: %v", i, err)
		}
		if d < 0 {
			return nil, fmt.Errorf("-admission entry %d: negative budget %v", i, d)
		}
		budgets[i] = d
	}
	if trim < 0 {
		return nil, fmt.Errorf("-admission-trim: negative threshold %v", trim)
	}
	return &persephone.AdmissionPolicy{Budgets: budgets, OverloadDelay: trim}, nil
}

func policyName(cfcfs bool) string {
	if cfcfs {
		return "c-FCFS"
	}
	return "DARC"
}

func buildApp(app, workloadName string, workers int, cfcfs bool) (persephone.LiveConfig, error) {
	base := persephone.LiveConfig{Workers: workers, UseCFCFS: cfcfs}
	switch strings.ToLower(app) {
	case "synthetic":
		mix, err := persephone.MixByName(workloadName)
		if err != nil {
			return base, err
		}
		services := make([]time.Duration, len(mix.Types))
		for i, t := range mix.Types {
			services[i] = t.Service.Mean()
		}
		spin.Calibrate(100 * time.Millisecond)
		base.Classifier = persephone.FieldClassifier(0, len(mix.Types))
		base.Handler = persephone.HandlerFunc(func(typ int, payload, resp []byte) (int, proto.Status) {
			if typ >= 0 && typ < len(services) {
				spin.For(services[typ])
			}
			return copy(resp, payload), proto.StatusOK
		})
		return base, nil

	case "kv":
		store := kvstore.New(1)
		for i := 0; i < 5000; i++ {
			store.Put([]byte(fmt.Sprintf("key%06d", i)), make([]byte, 64))
		}
		base.Classifier = persephone.FieldClassifier(0, 2)
		base.Handler = persephone.HandlerFunc(func(typ int, payload, resp []byte) (int, proto.Status) {
			switch typ {
			case 0: // GET: key index in payload[2:6]
				idx := uint32(0)
				if len(payload) >= 6 {
					idx = binary.LittleEndian.Uint32(payload[2:6]) % 5000
				}
				key := fmt.Sprintf("key%06d", idx)
				if v, ok := store.Get([]byte(key)); ok {
					return copy(resp, v), proto.StatusOK
				}
				return 0, proto.StatusError
			case 1: // SCAN over 5000 keys
				entries, total := store.ScanCount(nil, 5000)
				binary.LittleEndian.PutUint32(resp[0:4], uint32(entries))
				binary.LittleEndian.PutUint32(resp[4:8], uint32(total))
				return 8, proto.StatusOK
			default:
				return 0, proto.StatusError
			}
		})
		return base, nil

	case "tpcc":
		db := tpcc.New(tpcc.Default(), 1)
		base.Classifier = persephone.FieldClassifier(0, tpcc.NumTransactions())
		base.Handler = persephone.HandlerFunc(func(typ int, payload, resp []byte) (int, proto.Status) {
			var seedA, seedB int
			if len(payload) >= 6 {
				seedA = int(binary.LittleEndian.Uint16(payload[2:4]))
				seedB = int(binary.LittleEndian.Uint16(payload[4:6]))
			}
			d := seedA % db.Districts()
			c := seedB % db.Customers()
			var err error
			switch tpcc.Transaction(typ) {
			case tpcc.Payment:
				err = db.PaymentTxn(d, c, int64(seedB%10000+1))
			case tpcc.OrderStatus:
				_, err = db.OrderStatusTxn(d, c)
			case tpcc.NewOrder:
				_, err = db.NewOrderTxn(d, c)
			case tpcc.Delivery:
				db.DeliveryTxn()
			case tpcc.StockLevel:
				_, err = db.StockLevelTxn(d, 60)
			default:
				return 0, proto.StatusError
			}
			if err != nil {
				return 0, proto.StatusError
			}
			return 0, proto.StatusOK
		})
		return base, nil

	default:
		return base, fmt.Errorf("unknown app %q (synthetic, kv, tpcc)", app)
	}
}
