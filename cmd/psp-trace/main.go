// Command psp-trace records, inspects, transforms and replays arrival
// traces.
//
// Usage:
//
//	psp-trace record -workload extreme-bimodal -rate 1e6 -duration 1s -out trace.csv
//	psp-trace record -workload high-bimodal -bursty -burst-factor 4 -out bursty.csv
//	psp-trace info -in trace.csv
//	psp-trace scale -in trace.csv -factor 0.5 -out faster.csv
//	psp-trace replay -in trace.csv -policy darc -workers 14
//	psp-trace spans -in live-spans.csv
//
// info, scale and replay accept either arrival traces or the live
// runtime's lifecycle span dumps (psp-server -trace-out); span dumps
// are projected down to their arrival trace, so a live run replays
// through the simulator directly. spans prints the per-stage
// lifecycle breakdown only span dumps carry.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	persephone "repro"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "record":
		err = record(args)
	case "info":
		err = info(args)
	case "scale":
		err = scale(args)
	case "replay":
		err = replay(args)
	case "spans":
		err = spans(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: psp-trace {record|info|scale|replay|spans} [flags]")
	os.Exit(2)
}

type sourceAdapter struct{ s *workload.Source }

func (a sourceAdapter) Next() (time.Duration, int, time.Duration) {
	arr := a.s.Next()
	return arr.Gap, arr.Type, arr.Service
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	workloadName := fs.String("workload", "high-bimodal", "workload mix")
	rate := fs.Float64("rate", 100000, "average arrival rate (requests/second)")
	duration := fs.Duration("duration", time.Second, "trace length")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("out", "", "output file (default stdout)")
	bursty := fs.Bool("bursty", false, "use an on/off MMPP instead of plain Poisson")
	burstFactor := fs.Float64("burst-factor", 4, "bursty: rate multiplier during bursts")
	meanOn := fs.Duration("burst-on", 5*time.Millisecond, "bursty: mean burst length")
	meanOff := fs.Duration("burst-off", 15*time.Millisecond, "bursty: mean quiet length")
	fs.Parse(args) //nolint:errcheck

	mix, err := persephone.MixByName(*workloadName)
	if err != nil {
		return err
	}
	var gen trace.Generator
	if *bursty {
		b, err := workload.NewBurstySource(mix, *rate, *burstFactor, *meanOn, *meanOff, rng.New(*seed))
		if err != nil {
			return err
		}
		gen = b
	} else {
		src, err := workload.NewSource(mix, *rate, rng.New(*seed))
		if err != nil {
			return err
		}
		gen = sourceAdapter{src}
	}
	tr := trace.Generate(gen, *duration)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := tr.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "recorded %d arrivals over %v (avg %.0f rps)\n", tr.Len(), tr.Duration(), tr.Rate())
	return nil
}

func readTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadAuto(f)
}

func info(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "trace file")
	fs.Parse(args) //nolint:errcheck
	tr, err := readTrace(*in)
	if err != nil {
		return err
	}
	fmt.Printf("records   %d\n", tr.Len())
	fmt.Printf("duration  %v\n", tr.Duration())
	fmt.Printf("avg rate  %.0f rps\n", tr.Rate())
	fmt.Printf("types     %d\n", tr.NumTypes())
	counts := make([]int, tr.NumTypes())
	var totalSvc time.Duration
	for _, r := range tr.Records {
		counts[r.Type]++
		totalSvc += r.Service
	}
	for i, c := range counts {
		fmt.Printf("  type %d: %d (%.1f%%)\n", i, c, 100*float64(c)/float64(tr.Len()))
	}
	fmt.Printf("offered work %.3f core-seconds\n", totalSvc.Seconds())
	return nil
}

func scale(args []string) error {
	fs := flag.NewFlagSet("scale", flag.ExitOnError)
	in := fs.String("in", "", "trace file")
	factor := fs.Float64("factor", 1, "offset multiplier (<1 compresses = higher load)")
	out := fs.String("out", "", "output file (default stdout)")
	fs.Parse(args) //nolint:errcheck
	tr, err := readTrace(*in)
	if err != nil {
		return err
	}
	scaled := tr.Scale(*factor)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return scaled.Write(w)
}

func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "", "trace file")
	policyName := fs.String("policy", "darc", "scheduling policy")
	workers := fs.Int("workers", 14, "worker cores")
	workloadName := fs.String("workload", "high-bimodal", "mix used for type names and policy hints")
	seed := fs.Uint64("seed", 42, "seed for stochastic policies")
	fs.Parse(args) //nolint:errcheck

	tr, err := readTrace(*in)
	if err != nil {
		return err
	}
	mix, err := persephone.MixByName(*workloadName)
	if err != nil {
		return err
	}
	res, err := persephone.ReplayTrace(tr, persephone.SimConfig{
		Workers: *workers,
		Mix:     mix,
		Policy:  *policyName,
		Seed:    *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("policy     %s\n", res.Policy)
	fmt.Printf("replayed   %d arrivals at %.0f rps\n", tr.Len(), res.OfferedRPS)
	fmt.Printf("completed  %d  dropped %d\n", res.Completed, res.Dropped)
	fmt.Printf("overall    p99.9 %v  slowdown999 %.1fx\n", res.OverallP999, res.OverallSlowdown)
	for _, ts := range res.Types {
		if ts.Completed == 0 {
			continue
		}
		fmt.Printf("  %-12s n=%-8d p999=%v\n", ts.Name, ts.Completed, ts.P999)
	}
	return nil
}

// spans prints the per-type lifecycle decomposition of a live span
// dump: where each request type's time went between ingress and reply.
func spans(args []string) error {
	fs := flag.NewFlagSet("spans", flag.ExitOnError)
	in := fs.String("in", "", "lifecycle span dump (psp-server -trace-out)")
	fs.Parse(args) //nolint:errcheck

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	sps, err := trace.ReadSpans(f)
	if err != nil {
		return err
	}
	if len(sps) == 0 {
		fmt.Println("no spans")
		return nil
	}
	maxType := 0
	for _, s := range sps {
		if s.Type > maxType {
			maxType = s.Type
		}
	}
	// One histogram row per type plus a trailing bucket for
	// unclassifiable requests (Type < 0).
	type row struct {
		queue, svc, sojourn metrics.Histogram
	}
	rows := make([]row, maxType+2)
	for _, s := range sps {
		i := s.Type
		if i < 0 {
			i = maxType + 1
		}
		rows[i].queue.RecordDuration(s.QueueDelay())
		rows[i].svc.RecordDuration(s.Service())
		rows[i].sojourn.RecordDuration(s.Sojourn())
	}
	fmt.Printf("spans %d  types %d\n", len(sps), maxType+1)
	for i := range rows {
		r := &rows[i]
		if r.queue.Count() == 0 {
			continue
		}
		name := fmt.Sprintf("type %d", i)
		if i == maxType+1 {
			name = "unknown"
		}
		fmt.Printf("  %-8s n=%-8d queue p50=%-12v p99.9=%-12v service p50=%-12v p99.9=%-12v sojourn p99.9=%v\n",
			name, r.queue.Count(),
			r.queue.QuantileDuration(0.5), r.queue.QuantileDuration(0.999),
			r.svc.QuantileDuration(0.5), r.svc.QuantileDuration(0.999),
			r.sojourn.QuantileDuration(0.999))
	}
	return nil
}
