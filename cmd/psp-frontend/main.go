// Command psp-frontend runs the live fan-out tier in front of one or
// more psp-server backends: client queries arriving over UDP are split
// into sub-requests fanned out to -fanout backends, answered when the
// slowest shard completes, with optional hedged requests and
// health-based backend ejection.
//
// Usage:
//
//	psp-frontend -addr 127.0.0.1:9930 \
//	  -backends 127.0.0.1:9940,127.0.0.1:9950 -fanout 2 -hedge
//
// Point cmd/psp-client at -addr with its -frontend flag to measure
// query-level tail latency. Stop with Ctrl-C; a stats summary prints
// on shutdown.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/frontend"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9930", "client-facing UDP listen address")
	backends := flag.String("backends", "127.0.0.1:9940", "comma-separated backend UDP addresses")
	fanOut := flag.Int("fanout", 2, "backends contacted per query (clamped to the backend count)")
	hedge := flag.Bool("hedge", false, "hedge sub-requests outstanding past the backend's moving p99")
	hedgeMin := flag.Duration("hedge-min", 2*time.Millisecond, "floor on the hedge trigger delay")
	timeout := flag.Duration("timeout", 250*time.Millisecond, "per-query deadline")
	ejectAfter := flag.Int("eject-after", 3, "consecutive timeouts that eject a backend")
	cooldown := flag.Duration("cooldown", time.Second, "ejected-backend cooldown")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /healthz on this address (e.g. 127.0.0.1:9931)")
	flag.Parse()

	fe, err := frontend.Listen(*addr, frontend.Config{
		Backends:      strings.Split(*backends, ","),
		FanOut:        *fanOut,
		QueryTimeout:  *timeout,
		Hedge:         *hedge,
		HedgeAfterMin: *hedgeMin,
		EjectAfter:    *ejectAfter,
		EjectCooldown: *cooldown,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	hedging := "off"
	if *hedge {
		hedging = fmt.Sprintf("on (floor %v)", *hedgeMin)
	}
	fmt.Printf("psp-frontend: %s -> %d backend(s), fan-out %d, hedging %s, query timeout %v\n",
		fe.Addr(), len(strings.Split(*backends, ",")), *fanOut, hedging, *timeout)
	if *metricsAddr != "" {
		bound, shutdown, err := fe.ServeMetrics(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer shutdown() //nolint:errcheck
		fmt.Printf("psp-frontend: metrics on http://%s/metrics\n", bound)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	if err := fe.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	st := fe.Stats()
	fmt.Printf("\nqueries %d (ok %d, failed %d, shed %d)\n", st.Queries, st.QueriesOK, st.QueriesFailed, st.QueriesShed)
	fmt.Printf("sub-requests issued %d = replied %d + duplicate %d + timed out %d + nacked %d (unaccounted %d)\n",
		st.SubIssued, st.SubReplied, st.SubDuplicate, st.SubTimedOut, st.SubNacked, st.SubUnaccounted())
	fmt.Printf("hedges %d (wins %d), ejections %d, strays %d\n", st.Hedges, st.HedgeWins, st.Ejections, st.Strays)
	if st.QueryCount > 0 {
		fmt.Printf("query latency p50=%v p99=%v p999=%v (n=%d)\n", st.QueryP50, st.QueryP99, st.QueryP999, st.QueryCount)
	}
}
