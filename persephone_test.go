package persephone_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	persephone "repro"
	"repro/internal/proto"
)

func TestSimulateDefaults(t *testing.T) {
	res, err := persephone.Simulate(persephone.SimConfig{
		Mix:          persephone.HighBimodal(),
		LoadFraction: 0.5,
		Duration:     100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "DARC" {
		t.Fatalf("default policy %q", res.Policy)
	}
	if res.Completed == 0 || len(res.Types) != 2 {
		t.Fatalf("result %+v", res)
	}
}

func TestSimulateEveryPolicyName(t *testing.T) {
	mix := persephone.HighBimodal()
	names := []string{
		"darc", "darc-static:1", "darc-elastic", "cfcfs", "dfcfs",
		"shenango", "shinjuku-sq", "shinjuku-mq", "ts-ideal:2us",
		"fp", "sjf", "edf", "drr",
	}
	for _, name := range names {
		res, err := persephone.Simulate(persephone.SimConfig{
			Workers:      4,
			Mix:          mix,
			Policy:       name,
			LoadFraction: 0.4,
			Duration:     30 * time.Millisecond,
		})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if res.Completed == 0 {
			t.Errorf("%s: no completions", name)
		}
	}
}

func TestSimulateBadPolicy(t *testing.T) {
	for _, name := range []string{"nope", "darc-static:x", "darc-static:99", "ts-ideal:abc"} {
		_, err := persephone.Simulate(persephone.SimConfig{
			Mix:          persephone.HighBimodal(),
			Policy:       name,
			LoadFraction: 0.5,
			Duration:     10 * time.Millisecond,
		})
		if err == nil {
			t.Errorf("%q accepted", name)
		}
	}
}

func TestSimulateDARCBeatsBaselineAtHighLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	mix := persephone.HighBimodal()
	run := func(pol string) float64 {
		res, err := persephone.Simulate(persephone.SimConfig{
			Workers:      14,
			Mix:          mix,
			Policy:       pol,
			LoadFraction: 0.85,
			Duration:     400 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.OverallSlowdown
	}
	cf := run("cfcfs")
	da := run("darc")
	if da*3 > cf {
		t.Fatalf("DARC %.1fx not clearly better than c-FCFS %.1fx", da, cf)
	}
}

func TestExperimentNamesComplete(t *testing.T) {
	names := persephone.ExperimentNames()
	want := []string{
		"ablation-delta", "ablation-dispatcher", "ablation-stealing",
		"ext-autoscale", "ext-burst", "ext-fanout", "ext-fanout-sim", "ext-overload", "ext-variance",
		"figure1", "figure10", "figure3", "figure4", "figure5a",
		"figure5b", "figure6", "figure7", "figure8", "figure9",
		"table1", "table3", "table4", "table5",
	}
	if len(names) != len(want) {
		t.Fatalf("names %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names %v, want %v", names, want)
		}
	}
}

func TestRunExperimentTables(t *testing.T) {
	var buf bytes.Buffer
	for _, name := range []string{"table1", "table3", "table4", "table5"} {
		buf.Reset()
		if err := persephone.RunExperiment(name, persephone.ExperimentOptions{}, &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("%s output missing header: %q", name, buf.String()[:60])
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if err := persephone.RunExperiment("figure99", persephone.ExperimentOptions{}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunExperimentFigureSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	var buf bytes.Buffer
	opt := persephone.ExperimentOptions{
		Duration: 50 * time.Millisecond,
		Loads:    []float64{0.5},
	}
	if err := persephone.RunExperiment("figure1", opt, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, col := range []string{"d-FCFS", "c-FCFS", "TS", "DARC"} {
		if !strings.Contains(out, col) {
			t.Fatalf("figure1 output missing %s:\n%s", col, out)
		}
	}
}

func TestLiveServerFacade(t *testing.T) {
	srv, err := persephone.NewLiveServer(persephone.LiveConfig{
		Workers:    2,
		Classifier: persephone.CommandClassifier("PING"),
		Handler: persephone.HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			return copy(r, "PONG"), persephone.StatusOK
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	resp, err := srv.Call([]byte("PING"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Payload) != "PONG" || resp.Status != persephone.StatusOK {
		t.Fatalf("resp %+v", resp)
	}
}

func TestRunLoadFacade(t *testing.T) {
	srv, err := persephone.NewLiveServer(persephone.LiveConfig{
		Workers:    2,
		Classifier: persephone.FieldClassifier(0, 2),
		Handler: persephone.HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			return 0, persephone.StatusOK
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	res, err := persephone.RunLoad(persephone.LoadRunConfig{
		Config: persephone.LoadConfig{
			Mix:      persephone.TwoType("a", time.Microsecond, 0.5, "b", 2*time.Microsecond),
			Rate:     1000,
			Duration: 200 * time.Millisecond,
			Seed:     1,
		},
		Transport: persephone.LoadTransportInProcess,
		Server:    srv,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Received == 0 {
		t.Fatal("no responses")
	}
}

func TestFuncClassifierFacade(t *testing.T) {
	c := persephone.FuncClassifier("by-size", 2, func(p []byte) int {
		if len(p) > 4 {
			return 1
		}
		return 0
	})
	if c.Classify([]byte("12345")) != 1 || c.Classify([]byte("1")) != 0 {
		t.Fatal("classifier wrong")
	}
}

func TestReplayTraceFacade(t *testing.T) {
	// Build a small trace by hand and replay it under two policies.
	tr := &persephone.Trace{}
	for i := 0; i < 500; i++ {
		typ, svc := 0, time.Microsecond
		if i%10 == 0 {
			typ, svc = 1, 100*time.Microsecond
		}
		tr.Records = append(tr.Records, traceRecord(time.Duration(i)*5*time.Microsecond, typ, svc))
	}
	for _, pol := range []string{"darc", "cfcfs"} {
		res, err := persephone.ReplayTrace(tr, persephone.SimConfig{
			Workers: 4,
			Policy:  pol,
			Mix:     persephone.HighBimodal(),
		})
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if res.Completed != 500 {
			t.Fatalf("%s: completed %d", pol, res.Completed)
		}
	}
	if _, err := persephone.ReplayTrace(&persephone.Trace{}, persephone.SimConfig{}); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestReadTraceFacade(t *testing.T) {
	tr, err := persephone.ReadTrace(strings.NewReader("offset_ns,type,service_ns\n0,0,1000\n500,1,2000\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 || tr.NumTypes() != 2 {
		t.Fatalf("trace %+v", tr)
	}
}

func TestServiceDistHelpers(t *testing.T) {
	if persephone.FixedService(time.Microsecond).Mean() != time.Microsecond {
		t.Fatal("FixedService mean")
	}
	if persephone.ExpService(time.Millisecond).Mean() != time.Millisecond {
		t.Fatal("ExpService mean")
	}
	if persephone.Seconds(1.5) != 1500*time.Millisecond {
		t.Fatal("Seconds helper")
	}
}

// traceRecord builds one trace record (helper keeping the literals
// readable above).
func traceRecord(offset time.Duration, typ int, svc time.Duration) (r struct {
	Offset  time.Duration
	Type    int
	Service time.Duration
}) {
	r.Offset, r.Type, r.Service = offset, typ, svc
	return r
}

func TestMixByName(t *testing.T) {
	for _, name := range []string{"high-bimodal", "extreme", "TPCC", "rocksdb"} {
		mix, err := persephone.MixByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := mix.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := persephone.MixByName("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
