// Package persephone is a from-scratch Go reproduction of
// "When Idling is Ideal: Optimizing Tail-Latency for Heavy-Tailed
// Datacenter Workloads with Perséphone" (SOSP 2021).
//
// The package is the public facade over the repository's internals:
//
//   - Simulate runs the discrete-event simulator that regenerates the
//     paper's quantitative results: pick a workload (HighBimodal,
//     ExtremeBimodal, TPCC, RocksDB or a custom Mix), a scheduling
//     policy by name (DARC, c-FCFS, d-FCFS, shenango, shinjuku-sq,
//     shinjuku-mq, ts-ideal, fp, sjf, darc-static:N) and a load.
//
//   - NewLiveServer runs the live runtime: a real dispatcher/worker
//     pipeline over lock-free rings, driven by DARC, with user-defined
//     request classifiers and handlers, in-process or over UDP.
//
//   - RunExperiment regenerates any of the paper's tables and figures
//     by name ("figure1" ... "figure10", "table1" ...).
//
// # Error contract
//
// The live runtime reports failures through three sentinel errors;
// match them with errors.Is, not string comparison:
//
//   - ErrOverloaded — the server shed the request via deadline-aware
//     admission control (LiveConfig.Admission). The request did not
//     run. TCPClient.Call returns the NACK response alongside this
//     error; Response.RetryAfter carries the server's hint for when a
//     retry is likely to be admitted. RunLoad honours the hint
//     automatically with jittered backoff.
//
//   - ErrDeadlineExceeded — a client-side wait (request timeout,
//     drain deadline) elapsed before the response arrived. The
//     request may still complete on the server.
//
//   - ErrPoolExhausted — a bounded resource (ingress ring, pipeline
//     window, buffer pool) had no free capacity. Distinct from
//     ErrOverloaded: this is backpressure at a fixed-size structure,
//     not a scheduling decision.
//
// On the wire the same contract appears as Response.Status:
// StatusOverloaded corresponds to ErrOverloaded; StatusDropped and
// StatusError report server-side handler outcomes and are not
// retryable by default.
//
// See README.md for a tour and DESIGN.md for the system inventory.
package persephone
