// Package persephone is a from-scratch Go reproduction of
// "When Idling is Ideal: Optimizing Tail-Latency for Heavy-Tailed
// Datacenter Workloads with Perséphone" (SOSP 2021).
//
// The package is the public facade over the repository's internals:
//
//   - Simulate runs the discrete-event simulator that regenerates the
//     paper's quantitative results: pick a workload (HighBimodal,
//     ExtremeBimodal, TPCC, RocksDB or a custom Mix), a scheduling
//     policy by name (DARC, c-FCFS, d-FCFS, shenango, shinjuku-sq,
//     shinjuku-mq, ts-ideal, fp, sjf, darc-static:N) and a load.
//
//   - NewLiveServer runs the live runtime: a real dispatcher/worker
//     pipeline over lock-free rings, driven by DARC, with user-defined
//     request classifiers and handlers, in-process or over UDP.
//
//   - RunExperiment regenerates any of the paper's tables and figures
//     by name ("figure1" ... "figure10", "table1" ...).
//
// See README.md for a tour and DESIGN.md for the system inventory.
package persephone
