// Benchmarks regenerating the paper's evaluation artifacts, one per
// table and figure, plus micro-benchmarks for the §4.3 hot-path costs
// (channel ops, profile updates, reservation computation, classifier).
//
// The figure benchmarks run a scaled-down load point per iteration and
// report the headline metric via b.ReportMetric, so
// `go test -bench . -benchmem` doubles as a smoke-check that every
// experiment still produces paper-shaped results. Full-scale sweeps:
// `go run ./cmd/psp-experiments -artifact all`.
package persephone_test

import (
	"encoding/binary"
	"testing"
	"time"

	persephone "repro"
	"repro/internal/classify"
	"repro/internal/darc"
	"repro/internal/proto"
	"repro/internal/spsc"
	"repro/internal/workload"
)

// benchSim runs one simulated load point and reports its p99.9
// slowdown.
func benchSim(b *testing.B, mix persephone.Mix, pol string, workers int, load float64) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := persephone.Simulate(persephone.SimConfig{
			Workers:      workers,
			Mix:          mix,
			Policy:       pol,
			LoadFraction: load,
			Duration:     200 * time.Millisecond,
			Seed:         uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res.OverallSlowdown
	}
	b.ReportMetric(last, "p999-slowdown")
}

// BenchmarkTable1 exercises the taxonomy generation (trivially cheap;
// kept so every artifact has a bench target).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := persephone.RunExperiment("table1", persephone.ExperimentOptions{}, discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates the bimodal workload definitions.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := persephone.RunExperiment("table3", persephone.ExperimentOptions{}, discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4 regenerates the TPC-C workload definition.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := persephone.RunExperiment("table4", persephone.ExperimentOptions{}, discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5 regenerates the extended policy comparison.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := persephone.RunExperiment("table5", persephone.ExperimentOptions{}, discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1DARC runs the §2 simulation's DARC point at 90% load
// on 16 workers (Extreme Bimodal).
func BenchmarkFigure1DARC(b *testing.B) {
	benchSim(b, persephone.ExtremeBimodal(), "darc", 16, 0.9)
}

// BenchmarkFigure1CFCFS is Figure 1's c-FCFS point.
func BenchmarkFigure1CFCFS(b *testing.B) {
	benchSim(b, persephone.ExtremeBimodal(), "cfcfs", 16, 0.9)
}

// BenchmarkFigure1TS is Figure 1's time-sharing point.
func BenchmarkFigure1TS(b *testing.B) {
	benchSim(b, persephone.ExtremeBimodal(), "shinjuku-sq", 16, 0.9)
}

// BenchmarkFigure1DFCFS is Figure 1's d-FCFS point.
func BenchmarkFigure1DFCFS(b *testing.B) {
	benchSim(b, persephone.ExtremeBimodal(), "dfcfs", 16, 0.9)
}

// BenchmarkFigure3 runs Figure 3's DARC point (High Bimodal in
// Perséphone, 14 workers).
func BenchmarkFigure3(b *testing.B) {
	benchSim(b, persephone.HighBimodal(), "darc", 14, 0.8)
}

// BenchmarkFigure4 runs one DARC-static cell of Figure 4 (1 reserved
// core on High Bimodal at 95% load — the paper's optimum).
func BenchmarkFigure4(b *testing.B) {
	benchSim(b, persephone.HighBimodal(), "darc-static:1", 14, 0.95)
}

// BenchmarkFigure5a runs Figure 5a's Shinjuku multi-queue point.
func BenchmarkFigure5a(b *testing.B) {
	benchSim(b, persephone.HighBimodal(), "shinjuku-mq", 14, 0.7)
}

// BenchmarkFigure5b runs Figure 5b's Shenango work-stealing point.
func BenchmarkFigure5b(b *testing.B) {
	benchSim(b, persephone.ExtremeBimodal(), "shenango", 14, 0.7)
}

// BenchmarkFigure6 runs Figure 6's DARC point on TPC-C.
func BenchmarkFigure6(b *testing.B) {
	benchSim(b, persephone.TPCC(), "darc", 14, 0.85)
}

// BenchmarkFigure7 runs the full 4-phase workload-change experiment
// (scaled down) per iteration.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := persephone.ExperimentOptions{Duration: 100 * time.Millisecond, MinWindowSamples: 2000, Seed: uint64(i + 1)}
		if err := persephone.RunExperiment("figure7", opt, discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8 runs Figure 8's DARC point on the RocksDB mix.
func BenchmarkFigure8(b *testing.B) {
	benchSim(b, persephone.RocksDB(), "darc", 14, 0.8)
}

// BenchmarkFigure9 runs the broken-classifier experiment (scaled) per
// iteration.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := persephone.ExperimentOptions{
			Duration: 100 * time.Millisecond,
			Loads:    []float64{0.7},
			Seed:     uint64(i + 1),
		}
		if err := persephone.RunExperiment("figure9", opt, discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure10 runs Figure 10's 1µs-overhead time-sharing point.
func BenchmarkFigure10(b *testing.B) {
	benchSim(b, persephone.ExtremeBimodal(), "ts-ideal:1us", 16, 0.7)
}

// BenchmarkAblationDelta runs one δ-sensitivity cell (TPC-C, δ=3).
func BenchmarkAblationDelta(b *testing.B) {
	benchSim(b, persephone.TPCC(), "darc", 14, 0.85)
}

// BenchmarkAblationStealing runs the no-stealing variant's cell via
// the experiment runner (scaled down).
func BenchmarkAblationStealing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := persephone.ExperimentOptions{Duration: 100 * time.Millisecond, Seed: uint64(i + 1)}
		if err := persephone.RunExperiment("ablation-stealing", opt, discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §4.3 micro-costs ---------------------------------------------------

// BenchmarkSPSCRingOp measures one put+get on the dispatcher/worker
// command ring (paper: 88 cycles ≈ 34ns at 2.6GHz).
func BenchmarkSPSCRingOp(b *testing.B) {
	ring := spsc.NewRing[int](1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ring.Put(i)
		ring.Get()
	}
}

// BenchmarkProfileUpdate measures one profiler observation (paper: 75
// cycles ≈ 29ns).
func BenchmarkProfileUpdate(b *testing.B) {
	p := darc.NewProfiler(5, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Observe(i%5, time.Duration(i%100)*time.Microsecond)
	}
}

// BenchmarkUpdateCheck measures the reservation-update trigger check
// (paper: ~300 cycles ≈ 115ns).
func BenchmarkUpdateCheck(b *testing.B) {
	cfg := darc.DefaultConfig(14)
	cfg.MinWindowSamples = 1 << 62 // never actually update
	ctl, err := darc.NewController(cfg, 5)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		ctl.Observe(i%5, time.Duration(i%100)*time.Microsecond)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctl.MaybeUpdate()
	}
}

// BenchmarkReservationUpdate measures a full Algorithm 2 run over the
// TPC-C type population (paper: ~1000 cycles ≈ 385ns).
func BenchmarkReservationUpdate(b *testing.B) {
	stats := []darc.TypeStats{
		{Mean: 5700 * time.Nanosecond, Ratio: 0.44},
		{Mean: 6 * time.Microsecond, Ratio: 0.04},
		{Mean: 20 * time.Microsecond, Ratio: 0.44},
		{Mean: 88 * time.Microsecond, Ratio: 0.04},
		{Mean: 100 * time.Microsecond, Ratio: 0.04},
	}
	cfg := darc.Config{Workers: 14, Delta: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := darc.ComputeReservation(stats, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClassifierField measures the header-field classifier on the
// dispatch path (paper: ≈100ns including protocol handling).
func BenchmarkClassifierField(b *testing.B) {
	c := classify.Field{Offset: 0, Types: 5}
	payload := make([]byte, 16)
	binary.LittleEndian.PutUint16(payload, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Classify(payload) != 3 {
			b.Fatal("misclassified")
		}
	}
}

// BenchmarkClassifierRESP measures the Redis-protocol classifier.
func BenchmarkClassifierRESP(b *testing.B) {
	c := classify.NewRESP("GET", "SET", "SCAN")
	payload := []byte("*2\r\n$3\r\nGET\r\n$6\r\nkey123\r\n")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Classify(payload) != 0 {
			b.Fatal("misclassified")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator event rate
// (events/second) on a c-FCFS High Bimodal run.
func BenchmarkSimulatorThroughput(b *testing.B) {
	mix := workload.HighBimodal()
	for i := 0; i < b.N; i++ {
		if _, err := persephone.Simulate(persephone.SimConfig{
			Workers:      14,
			Mix:          mix,
			Policy:       "cfcfs",
			LoadFraction: 0.8,
			Duration:     100 * time.Millisecond,
			Seed:         uint64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// discard is an io.Writer sink for benchmarked experiment output.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkLiveCallRoundTrip measures the live runtime's in-process
// request round trip (submit -> classify -> dispatch -> handle ->
// respond -> completion signal) — the whole §4.3 pipeline.
func BenchmarkLiveCallRoundTrip(b *testing.B) {
	srv, err := persephone.NewLiveServer(persephone.LiveConfig{
		Workers:    2,
		Classifier: persephone.FieldClassifier(0, 1),
		Handler: persephone.HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			return 0, proto.StatusOK
		}),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Stop()
	payload := []byte{0, 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Call(payload); err != nil {
			b.Fatal(err)
		}
	}
}
