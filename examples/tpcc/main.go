// tpcc: the paper's TPC-C experiment (§5.4.3) on the live runtime.
//
// The five TPC-C transactions run against a from-scratch in-memory
// database. Requests carry the transaction ID in their first two
// payload bytes; DARC profiles the five service classes, groups
// similar ones (the paper's grouping: {Payment, OrderStatus},
// {NewOrder}, {Delivery, StockLevel}) and partitions the cores.
//
//	go run ./examples/tpcc
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	persephone "repro"
	"repro/internal/proto"
	"repro/internal/tpcc"
)

func main() {
	db := tpcc.New(tpcc.Default(), 1)
	srv, err := persephone.NewLiveServer(persephone.LiveConfig{
		Workers:          4,
		Classifier:       persephone.FieldClassifier(0, tpcc.NumTransactions()),
		Handler:          handler(db),
		MinWindowSamples: 512,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Stop()

	mix := persephone.TPCC()
	var seq uint32
	res, err := persephone.RunLoad(persephone.LoadRunConfig{
		Config: persephone.LoadConfig{
			Mix:      mix,
			Rate:     3000,
			Duration: 3 * time.Second,
			Seed:     2,
			BuildPayload: func(typ int) []byte {
				seq++
				p := make([]byte, 6)
				binary.LittleEndian.PutUint16(p[0:2], uint16(typ))
				binary.LittleEndian.PutUint16(p[2:4], uint16(seq%10))  // district
				binary.LittleEndian.PutUint16(p[4:6], uint16(seq%300)) // customer
				return p
			},
		},
		Server: srv,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TPC-C on the live Perséphone runtime: sent=%d recv=%d drops=%d\n\n",
		res.Sent, res.Received, res.Dropped)
	fmt.Printf("%-12s %8s %14s %14s\n", "transaction", "count", "p99", "p99.9")
	for i, h := range res.Latency {
		fmt.Printf("%-12s %8d %14v %14v\n", mix.Types[i].Name, h.Count(),
			h.QuantileDuration(0.99), h.QuantileDuration(0.999))
	}
	counts := db.Counts()
	fmt.Printf("\ndatabase: executed %v transactions, warehouse YTD %d cents, %d pending deliveries\n",
		counts, db.WarehouseYTD(), db.PendingDeliveries())
	st := srv.StatsSnapshot()
	fmt.Printf("server: %d reservation updates applied\n", st.Updates)
}

func handler(db *tpcc.DB) persephone.Handler {
	return persephone.HandlerFunc(func(typ int, payload, resp []byte) (int, proto.Status) {
		var d, c int
		if len(payload) >= 6 {
			d = int(binary.LittleEndian.Uint16(payload[2:4])) % db.Districts()
			c = int(binary.LittleEndian.Uint16(payload[4:6])) % db.Customers()
		}
		var err error
		switch tpcc.Transaction(typ) {
		case tpcc.Payment:
			err = db.PaymentTxn(d, c, 100)
		case tpcc.OrderStatus:
			_, err = db.OrderStatusTxn(d, c)
		case tpcc.NewOrder:
			_, err = db.NewOrderTxn(d, c)
		case tpcc.Delivery:
			db.DeliveryTxn()
		case tpcc.StockLevel:
			_, err = db.StockLevelTxn(d, 60)
		default:
			return 0, proto.StatusError
		}
		if err != nil {
			return 0, proto.StatusError
		}
		return 0, proto.StatusOK
	})
}
