// Quickstart: simulate the paper's headline comparison in a few lines.
//
// We run the High Bimodal workload (50% 1µs requests, 50% 100µs
// requests — Table 3) on a 14-core machine at 80% load under c-FCFS
// (the work-conserving baseline every kernel-bypass scheduler
// approximates) and under DARC (the paper's non-work-conserving,
// application-aware policy), and print what happens to the short
// requests' tail.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	persephone "repro"
)

func main() {
	mix := persephone.HighBimodal()
	for _, pol := range []string{"cfcfs", "darc"} {
		res, err := persephone.Simulate(persephone.SimConfig{
			Workers:      14,
			Mix:          mix,
			Policy:       pol,
			LoadFraction: 0.80,
			Duration:     time.Second,
			RTT:          10 * time.Microsecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s overall p99.9 slowdown %7.1fx | short p99.9 %12v | long p99.9 %12v\n",
			res.Policy, res.OverallSlowdown, res.Types[0].P999, res.Types[1].P999)
	}
	fmt.Println()
	fmt.Println("DARC reserves one core for the 1µs requests (Algorithm 2), so they")
	fmt.Println("never wait behind 100µs requests — idling that core buys orders of")
	fmt.Println("magnitude on the short requests' tail at the same offered load.")
}
