// workload-shift: the paper's §5.5 adaptation experiment (Figure 7)
// on the simulator.
//
// Two request types swap roles across four phases — service-time swap,
// ratio change, near-single-type — while the server stays at 80%
// utilization. Watch DARC's profiler detect each change (queueing
// delay beyond 10x the profiled mean + >10% CPU-demand deviation) and
// re-reserve cores within a profiling window.
//
//	go run ./examples/workload-shift
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	persephone "repro"
)

func main() {
	opt := persephone.ExperimentOptions{
		// One second per phase keeps the demo quick; pass a larger
		// duration for paper-scale 5s phases.
		Duration:         time.Second,
		MinWindowSamples: 5000,
	}
	fmt.Println("Reproducing Figure 7: 4 workload phases, p99.9 latency per type and")
	fmt.Println("guaranteed cores per type over time (DARC vs c-FCFS baseline).")
	fmt.Println()
	if err := persephone.RunExperiment("figure7", opt, os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Reading the table: after each phase boundary the cores_A/cores_B")
	fmt.Println("columns flip within a profiling window, and the type that just became")
	fmt.Println("fast recovers its microsecond-scale tail while c-FCFS keeps exposing")
	fmt.Println("it to dispersion-based head-of-line blocking.")
}
