// kvstore: the paper's RocksDB experiment (§5.4.4) on the live
// runtime, in-process.
//
// A from-scratch skiplist store serves GETs (point lookups) and SCANs
// (range scans over 5000 keys) — two service classes with two orders
// of magnitude of dispersion. A Redis-style RESP classifier extracts
// the command on the dispatch path; DARC profiles both types and
// reserves cores for GETs so they stop queueing behind SCANs.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"time"

	persephone "repro"
	"repro/internal/kvstore"
	"repro/internal/proto"
)

func buildStore() *kvstore.Store {
	store := kvstore.New(7)
	for i := 0; i < 5000; i++ {
		store.Put([]byte(fmt.Sprintf("key%06d", i)), make([]byte, 64))
	}
	return store
}

func handler(store *kvstore.Store) persephone.Handler {
	return persephone.HandlerFunc(func(typ int, payload, resp []byte) (int, proto.Status) {
		switch typ {
		case 0: // GET <key>
			key := secondToken(payload)
			if v, ok := store.Get(key); ok {
				return copy(resp, v), proto.StatusOK
			}
			return 0, proto.StatusError
		case 1: // SCAN
			entries, total := store.ScanCount(nil, 5000)
			return copy(resp, fmt.Sprintf("%d entries, %d bytes", entries, total)), proto.StatusOK
		default:
			return 0, proto.StatusError
		}
	})
}

// secondToken returns the second whitespace-separated token ("GET
// key123" -> "key123").
func secondToken(p []byte) []byte {
	start, n := 0, len(p)
	for start < n && p[start] != ' ' {
		start++
	}
	for start < n && p[start] == ' ' {
		start++
	}
	end := start
	for end < n && p[end] != ' ' && p[end] != '\r' && p[end] != '\n' {
		end++
	}
	return p[start:end]
}

func run(useCFCFS bool) {
	store := buildStore()
	srv, err := persephone.NewLiveServer(persephone.LiveConfig{
		Workers:          4,
		Classifier:       persephone.CommandClassifier("GET", "SCAN"),
		Handler:          handler(store),
		UseCFCFS:         useCFCFS,
		MinWindowSamples: 256,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Stop()

	mix := persephone.RocksDB() // 50% GET / 50% SCAN ratios
	res, err := persephone.RunLoad(persephone.LoadRunConfig{
		Config: persephone.LoadConfig{
			Mix:      mix,
			Rate:     2000,
			Duration: 3 * time.Second,
			Seed:     1,
			BuildPayload: func(typ int) []byte {
				if typ == 0 {
					return []byte(fmt.Sprintf("GET key%06d", typ*997%5000))
				}
				return []byte("SCAN")
			},
		},
		Server: srv,
	})
	if err != nil {
		log.Fatal(err)
	}
	label := "DARC"
	if useCFCFS {
		label = "c-FCFS"
	}
	fmt.Printf("%-7s sent=%d recv=%d  GET p99.9=%-12v SCAN p99.9=%-12v\n",
		label, res.Sent, res.Received,
		res.Latency[0].QuantileDuration(0.999),
		res.Latency[1].QuantileDuration(0.999))
	st := srv.StatsSnapshot()
	fmt.Printf("        server: dispatched=%d dropped=%d reservation-updates=%d\n",
		st.Dispatched, st.Dropped, st.Updates)
}

func main() {
	fmt.Println("RocksDB-style KV service on the live Perséphone runtime")
	fmt.Println("(absolute latencies are Go-runtime-bound; compare the two rows)")
	fmt.Println()
	run(true)  // baseline
	run(false) // DARC
}
