// memcached: a memcached-style cache served by the live Perséphone
// runtime over TCP — the paper's §1 example of a protocol whose
// request types live in the protocol itself ("Memcached request types
// are part of the protocol's header").
//
// A Command classifier types requests by their first token (GET, SET,
// DELETE, INCR, GETS); GETS (multi-key reads) is the expensive class,
// so DARC learns to protect the single-key operations from it.
//
//	go run ./examples/memcached
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	persephone "repro"
	"repro/internal/memcache"
	"repro/internal/proto"
)

func main() {
	cache := memcache.New()
	// Preload a working set; GETS requests will scan many keys.
	for i := 0; i < 2000; i++ {
		cache.Set(fmt.Sprintf("key%04d", i), []byte(fmt.Sprintf("value-%04d", i)), 0)
	}

	ln, err := persephone.Listen("tcp", "127.0.0.1:0", persephone.LiveConfig{
		Workers:          4,
		Classifier:       persephone.CommandClassifier(memcache.CommandNames()...),
		MinWindowSamples: 256,
		Handler: persephone.HandlerFunc(func(typ int, payload, resp []byte) (int, proto.Status) {
			out := memcache.Execute(cache, payload, resp[:0])
			if len(out) > len(resp) {
				out = out[:len(resp)]
			}
			return copy(resp, out), proto.StatusOK
		}),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	fmt.Printf("memcached-style server on %s (TCP, DARC dispatcher)\n\n", ln.Addr())

	cli, err := persephone.DialTCP(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	// A quick interactive transcript.
	for _, req := range []string{
		"set greeting 0 hello world",
		"get greeting",
		"incr missing 1",
		"set counter 0 41",
		"incr counter 1",
		"gets key0001 key0002 greeting",
		"delete greeting",
		"get greeting",
	} {
		resp, err := cli.Call([]byte(req))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("> %-35s %q\n", req, firstLine(resp.Payload))
	}

	// Then a small concurrent workload mixing cheap GETs with heavy
	// multi-key GETS, and a look at what the dispatcher learned.
	fmt.Println("\nrunning 2000 mixed requests (90% GET / 10% GETS over 64 keys)...")
	var wg sync.WaitGroup
	r := rand.New(rand.NewSource(1))
	manyKeys := ""
	for i := 0; i < 64; i++ {
		manyKeys += fmt.Sprintf(" key%04d", i)
	}
	start := time.Now()
	for i := 0; i < 2000; i++ {
		req := fmt.Sprintf("get key%04d", r.Intn(2000))
		if i%10 == 0 {
			req = "gets" + manyKeys
		}
		wg.Add(1)
		go func(req string) {
			defer wg.Done()
			if _, err := cli.Call([]byte(req)); err != nil {
				log.Print(err)
			}
		}(req)
		if i%100 == 99 {
			wg.Wait() // bounded concurrency
		}
	}
	wg.Wait()
	fmt.Printf("done in %v\n\n", time.Since(start).Round(time.Millisecond))

	st := ln.Server().StatsSnapshot()
	fmt.Printf("dispatcher: %d requests, %d reservation updates\n", st.Dispatched, st.Updates)
	for _, row := range st.Summaries {
		if row.Completed == 0 {
			continue
		}
		fmt.Printf("  %-8s n=%-6d p50=%-12v p999=%v\n", row.Name, row.Completed, row.P50, row.P999)
	}
	cs := cache.Snapshot()
	fmt.Printf("cache: %d items, %d hits, %d misses\n", cs.Items, cs.Hits, cs.Misses)
}

func firstLine(b []byte) string {
	for i, c := range b {
		if c == '\r' || c == '\n' {
			return string(b[:i])
		}
	}
	return string(b)
}
