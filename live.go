package persephone

import (
	"fmt"
	"net"
	"strings"
	"time"

	"repro/internal/admission"
	"repro/internal/classify"
	"repro/internal/darc"
	"repro/internal/faults"
	"repro/internal/loadgen"
	"repro/internal/proto"
	"repro/internal/psp"
	"repro/internal/reconfig"
	"repro/internal/trace"
)

// Live runtime facade ---------------------------------------------------

// Classifier types incoming request payloads; see the constructors
// below and the paper's §4.2 request-classifier API.
type Classifier = classify.Classifier

// UnknownType marks unclassifiable requests; they are served on
// spillway cores at low priority.
const UnknownType = classify.Unknown

// FieldClassifier reads the request type from a little-endian uint16
// at a fixed payload offset (the ≈100ns fast path the paper measures).
func FieldClassifier(offset, numTypes int) Classifier {
	return classify.Field{Offset: offset, Types: numTypes}
}

// CommandClassifier types text protocols by their first token
// (memcached-style); type IDs follow the argument order.
func CommandClassifier(commands ...string) Classifier {
	return classify.NewCommand(commands...)
}

// RESPClassifier types Redis-serialization-protocol requests by
// command name.
func RESPClassifier(commands ...string) Classifier {
	return classify.NewRESP(commands...)
}

// FuncClassifier wraps an arbitrary classification function producing
// types in [0, numTypes).
func FuncClassifier(name string, numTypes int, f func(payload []byte) int) Classifier {
	return classify.Func{F: f, Types: numTypes, Label: name}
}

// Handler executes application logic on worker cores.
type Handler = psp.Handler

// HandlerFunc adapts a function to Handler.
type HandlerFunc = psp.HandlerFunc

// Response is a completed request as seen by the submitter.
type Response = psp.Response

// Status values for responses.
const (
	StatusOK      = proto.StatusOK
	StatusDropped = proto.StatusDropped
	StatusError   = proto.StatusError
	// StatusOverloaded is the admission-control NACK: the server shed
	// the request before running it and the response carries a
	// retry-after hint (Response.RetryAfter).
	StatusOverloaded = proto.StatusOverloaded
)

// Sentinel errors of the live runtime's error contract; match with
// errors.Is. See the package documentation for when each is returned.
var (
	// ErrOverloaded: the server shed the request via admission control.
	// TCPClient.Call returns it alongside the NACK response, whose
	// RetryAfter field hints when to retry.
	ErrOverloaded = psp.ErrOverloaded
	// ErrDeadlineExceeded: a client-side wait elapsed before the
	// response arrived.
	ErrDeadlineExceeded = psp.ErrDeadlineExceeded
	// ErrPoolExhausted: a bounded resource (ingress ring, buffer pool)
	// had no capacity to accept the request.
	ErrPoolExhausted = psp.ErrPoolExhausted
)

// AdmissionPolicy configures the live server's deadline-aware
// admission controller (see internal/admission): per-type queueing
// budgets — explicit, or auto-derived as a multiple of DARC's profiled
// service times — plus the sustained-overload shedding behavior.
// The zero value auto-derives everything.
type AdmissionPolicy = admission.Config

// AdmissionStats is the admission controller's ledger snapshot,
// surfaced on LiveStats.Admission. Per slot (one per type plus one for
// unclassifiable requests) accepted == completed + shed exactly at any
// quiescent point.
type AdmissionStats = admission.Stats

// LiveConfig assembles a live server. It is the one public
// configuration path for the live runtime: NewLiveServerStopped
// translates it into a ready-to-start pipeline, and every constructor
// (NewLiveServer and Listen) goes through that translation.
type LiveConfig struct {
	// Workers is the number of application worker goroutines.
	Workers int
	// Classifier types payloads (required).
	Classifier Classifier
	// Handler executes requests (required).
	Handler Handler
	// UseCFCFS disables DARC and runs plain centralized FCFS (the
	// baseline mode).
	UseCFCFS bool
	// MinWindowSamples tunes DARC's profiling window (default 512).
	MinWindowSamples uint64
	// QueueCap bounds each typed queue (default 4096); overflowing
	// requests are answered with StatusDropped.
	QueueCap int
	// NetShards is the number of ingress shards when the server is
	// exposed with Listen. Over UDP each shard is a socket with its own
	// net worker, buffer pool and TX goroutine (a non-zero listen port
	// makes shard i bind port+i); over TCP each shard is an accept lane
	// with its own buffer pool (SO_REUSEPORT listeners on the same
	// address where the platform supports it). Default 1. Ignored by
	// the in-process transport.
	NetShards int
	// RxBurst caps how many frames a net worker hands to the
	// dispatcher in a single ring synchronization — datagrams drained
	// per wakeup on UDP, already-buffered stream frames decoded per
	// wakeup on TCP (default 32). Ignored by the in-process transport.
	RxBurst int
	// TCPMaxConns caps concurrently open connections on
	// Listen("tcp", ...); excess accepts are closed immediately.
	// 0 means unlimited. Ignored off the TCP path.
	TCPMaxConns int
	// TCPIdleTimeout evicts a Listen("tcp", ...) connection that has
	// neither delivered a byte nor had a response in flight for this
	// long; 0 disables idle eviction. Ignored off the TCP path.
	TCPIdleTimeout time.Duration
	// Admission optionally enables deadline-aware admission control
	// and overload management: requests whose queueing delay exceeds
	// their type's budget are answered with StatusOverloaded (plus a
	// retry-after hint) instead of occupying workers, and sustained
	// overload sheds in reverse-reservation order so short-request
	// tails stay bounded. Nil disables admission control.
	Admission *AdmissionPolicy
	// Faults optionally enables the chaos layer with the given fault
	// profile (see internal/faults); nil injects nothing.
	Faults *FaultProfile
	// TraceCap sets each worker's lifecycle span ring capacity
	// (default 4096); negative disables lifecycle tracing.
	TraceCap int
	// TraceSink, when non-nil, receives every lifecycle span drained
	// by the stats path — e.g. a trace.SpanWriter dumping the live
	// run for simulator replay. Called under the drain lock; keep it
	// fast and do not call back into the server.
	TraceSink func(TraceSpan)
}

// TraceSpan is one completed request's lifecycle record (see
// internal/trace.Span).
type TraceSpan = trace.Span

// FaultProfile configures the deterministic fault injector; build one
// with ParseFaultProfile or a faults.Profile literal.
type FaultProfile = faults.Profile

// ParseFaultProfile decodes a chaos spec like
// "seed=42,drop=0.1,stall=0:5ms,crash=0.001,respawn=10ms".
func ParseFaultProfile(spec string) (FaultProfile, error) {
	return faults.ParseProfile(spec)
}

// LiveServer is the running Perséphone pipeline.
type LiveServer = psp.Server

// LiveStats is a snapshot of live-server metrics.
type LiveStats = psp.Stats

// ReconfigSpec is a declarative live-reconfiguration request for
// LiveServer.Reconfigure: swap the scheduling policy, resize the
// worker pool, retune admission budgets, or force a DARC reservation
// refresh — atomically and without dropping in-flight requests. Build
// one directly or decode the admin/HTTP form with ParseReconfigSpec.
type ReconfigSpec = reconfig.Spec

// ReconfigResult reports what a reconfiguration actually changed,
// including the drain wait for retired workers and the new
// configuration generation.
type ReconfigResult = reconfig.Result

// ReconfigSnapshot is the current runtime configuration as reported
// by LiveServer.ConfigSnapshot and the GET /admin/config endpoint.
type ReconfigSnapshot = reconfig.Snapshot

// ParseReconfigSpec decodes a reconfiguration spec from key=value
// lines (comments and blanks allowed) — the same format psp-server's
// -reconfig-file SIGHUP reload and the POST /admin/reconfig form
// accept (e.g. "policy=cfcfs\nworkers=6").
func ParseReconfigSpec(text string) (ReconfigSpec, error) {
	return reconfig.ParseSpecFile(text)
}

// NewLiveServerStopped translates a LiveConfig into a configured but
// not yet started pipeline — the single config path behind every live
// constructor. Use it when a transport takes ownership of startup
// (Listen starts the server itself) or when the caller wants to
// install sinks before the first request flows; otherwise
// NewLiveServer starts it for you.
func NewLiveServerStopped(cfg LiveConfig) (*LiveServer, error) {
	mode := psp.ModeDARC
	if cfg.UseCFCFS {
		mode = psp.ModeCFCFS
	}
	dcfg := darc.DefaultConfig(max(cfg.Workers, 1))
	if cfg.Workers <= 1 {
		dcfg.Spillway = 0
	}
	if cfg.MinWindowSamples > 0 {
		dcfg.MinWindowSamples = cfg.MinWindowSamples
	} else {
		dcfg.MinWindowSamples = 512
	}
	return psp.NewServer(psp.Config{
		Workers:    cfg.Workers,
		Classifier: cfg.Classifier,
		Handler:    cfg.Handler,
		Mode:       mode,
		DARC:       dcfg,
		QueueCap:   cfg.QueueCap,
		Admission:  cfg.Admission,
		Faults:     cfg.Faults,
		TraceCap:   cfg.TraceCap,
		TraceSink:  cfg.TraceSink,
	})
}

// NewLiveServer builds and starts the live runtime for in-process use
// (Submit/Call). To expose it on the network, use Listen instead.
func NewLiveServer(cfg LiveConfig) (*LiveServer, error) {
	srv, err := NewLiveServerStopped(cfg)
	if err != nil {
		return nil, err
	}
	srv.Start()
	return srv, nil
}

// LiveListener is a live server bound to a network transport — the
// unified result of Listen for both "udp" (the paper's sharded
// datagram datapath) and "tcp" (the stateful-dispatcher deployment §6
// sketches).
type LiveListener struct {
	udp *psp.UDPServer
	tcp *psp.TCPServer
}

// Listen builds a live server from cfg and exposes it on network
// ("udp" or "tcp") at addr. The UDP transport runs cfg.NetShards
// ingress shards (port+i per shard when the port is non-zero) with
// cfg.RxBurst-datagram batched reads and zero-copy per-shard TX
// rings. The TCP transport frames requests with a 4-byte length
// prefix and runs the same batched, pooled, sharded datapath on the
// byte stream: pipelined requests per connection, out-of-order
// responses matched by RequestID, cfg.NetShards accept shards,
// vectored per-connection egress, and the cfg.TCPMaxConns /
// cfg.TCPIdleTimeout lifecycle knobs. Close stops the transport and
// the server, answering everything already accepted (TCP drains
// gracefully).
func Listen(network, addr string, cfg LiveConfig) (*LiveListener, error) {
	srv, err := NewLiveServerStopped(cfg)
	if err != nil {
		return nil, err
	}
	switch network {
	case "udp":
		u, err := psp.ListenUDPShards(addr, srv, psp.UDPOptions{
			Shards: cfg.NetShards,
			Burst:  cfg.RxBurst,
		})
		if err != nil {
			return nil, err
		}
		return &LiveListener{udp: u}, nil
	case "tcp":
		t, err := psp.ListenTCPShards(addr, srv, psp.TCPOptions{
			Shards:      cfg.NetShards,
			Burst:       cfg.RxBurst,
			MaxConns:    cfg.TCPMaxConns,
			IdleTimeout: cfg.TCPIdleTimeout,
		})
		if err != nil {
			return nil, err
		}
		return &LiveListener{tcp: t}, nil
	default:
		return nil, fmt.Errorf("persephone: Listen network %q (want \"udp\" or \"tcp\")", network)
	}
}

// Server exposes the underlying live pipeline (stats, tracing,
// metrics endpoints).
func (l *LiveListener) Server() *LiveServer {
	if l.udp != nil {
		return l.udp.Server
	}
	return l.tcp.Server
}

// Addr reports the primary bound address (the first UDP shard, or the
// TCP listener).
func (l *LiveListener) Addr() net.Addr {
	if l.udp != nil {
		return l.udp.Addr()
	}
	return l.tcp.Addr()
}

// Addrs reports every bound address — one per UDP ingress shard, or
// one per TCP accept shard (all equal under SO_REUSEPORT sharding).
func (l *LiveListener) Addrs() []net.Addr {
	if l.udp == nil {
		return l.tcp.Addrs()
	}
	shardAddrs := l.udp.Addrs()
	out := make([]net.Addr, len(shardAddrs))
	for i, a := range shardAddrs {
		out[i] = a
	}
	return out
}

// AddrStrings reports Addrs formatted as a comma-separated list — the
// form RunLoad's udp transport and psp-client accept for client-side
// shard selection.
func (l *LiveListener) AddrStrings() string {
	addrs := l.Addrs()
	parts := make([]string, len(addrs))
	for i, a := range addrs {
		parts[i] = a.String()
	}
	return strings.Join(parts, ",")
}

// Received reports requests accepted into the pipeline at ingress.
func (l *LiveListener) Received() uint64 {
	if l.udp != nil {
		return l.udp.Received()
	}
	return l.tcp.Received()
}

// RxDrops reports malformed or ring-overflow ingress drops.
func (l *LiveListener) RxDrops() uint64 {
	if l.udp != nil {
		return l.udp.RxDrops()
	}
	return l.tcp.RxDrops()
}

// RxSheds reports ingress frames shed under buffer-pool exhaustion —
// on both transports the client gets an immediate StatusDropped
// instead of a timeout.
func (l *LiveListener) RxSheds() uint64 {
	if l.udp != nil {
		return l.udp.RxSheds()
	}
	return l.tcp.RxSheds()
}

// UDP exposes the UDP transport when the listener was built with
// Listen("udp", ...); nil otherwise.
func (l *LiveListener) UDP() *psp.UDPServer { return l.udp }

// TCP exposes the TCP transport when the listener was built with
// Listen("tcp", ...); nil otherwise.
func (l *LiveListener) TCP() *psp.TCPServer { return l.tcp }

// Close stops the transport and the server.
func (l *LiveListener) Close() error {
	if l.udp != nil {
		return l.udp.Close()
	}
	return l.tcp.Close()
}

// DialTCP connects a pipelined client to a Listen("tcp", ...) server:
// any number of goroutines may Call concurrently over the one
// connection, and responses are matched back by request ID in whatever
// order the server completes them.
func DialTCP(addr string) (*psp.TCPClient, error) { return psp.DialTCP(addr) }

// LoadConfig drives the open-loop load generator against a live
// server.
type LoadConfig = loadgen.Config

// LoadRunConfig is the unified load-generation entry point: a
// LoadConfig plus the transport selection ("inprocess", "udp", "tcp",
// or "frontend") and its target (Server or Addr).
type LoadRunConfig = loadgen.RunConfig

// Transport names for LoadRunConfig.Transport.
const (
	LoadTransportInProcess = loadgen.TransportInProcess
	LoadTransportUDP       = loadgen.TransportUDP
	LoadTransportTCP       = loadgen.TransportTCP
	LoadTransportFrontend  = loadgen.TransportFrontend
)

// LoadResult summarises a load generation run.
type LoadResult = loadgen.Result

// RunLoad runs the open-loop Poisson client against the target named
// by rc — the one load-generation entry point across all transports.
// Admission NACKs (StatusOverloaded) are retried with the server's
// retry-after hint plus jittered backoff, up to rc.MaxRetries.
func RunLoad(rc LoadRunConfig) (*LoadResult, error) {
	return loadgen.Run(rc)
}

// Timeout helper so examples don't import time for one constant.
func Seconds(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
