package persephone

import (
	"time"

	"repro/internal/classify"
	"repro/internal/darc"
	"repro/internal/faults"
	"repro/internal/loadgen"
	"repro/internal/proto"
	"repro/internal/psp"
	"repro/internal/trace"
)

// Live runtime facade ---------------------------------------------------

// Classifier types incoming request payloads; see the constructors
// below and the paper's §4.2 request-classifier API.
type Classifier = classify.Classifier

// UnknownType marks unclassifiable requests; they are served on
// spillway cores at low priority.
const UnknownType = classify.Unknown

// FieldClassifier reads the request type from a little-endian uint16
// at a fixed payload offset (the ≈100ns fast path the paper measures).
func FieldClassifier(offset, numTypes int) Classifier {
	return classify.Field{Offset: offset, Types: numTypes}
}

// CommandClassifier types text protocols by their first token
// (memcached-style); type IDs follow the argument order.
func CommandClassifier(commands ...string) Classifier {
	return classify.NewCommand(commands...)
}

// RESPClassifier types Redis-serialization-protocol requests by
// command name.
func RESPClassifier(commands ...string) Classifier {
	return classify.NewRESP(commands...)
}

// FuncClassifier wraps an arbitrary classification function producing
// types in [0, numTypes).
func FuncClassifier(name string, numTypes int, f func(payload []byte) int) Classifier {
	return classify.Func{F: f, Types: numTypes, Label: name}
}

// Handler executes application logic on worker cores.
type Handler = psp.Handler

// HandlerFunc adapts a function to Handler.
type HandlerFunc = psp.HandlerFunc

// Response is a completed request as seen by the submitter.
type Response = psp.Response

// Status values for responses.
const (
	StatusOK      = proto.StatusOK
	StatusDropped = proto.StatusDropped
	StatusError   = proto.StatusError
)

// LiveConfig assembles a live server.
type LiveConfig struct {
	// Workers is the number of application worker goroutines.
	Workers int
	// Classifier types payloads (required).
	Classifier Classifier
	// Handler executes requests (required).
	Handler Handler
	// UseCFCFS disables DARC and runs plain centralized FCFS (the
	// baseline mode).
	UseCFCFS bool
	// MinWindowSamples tunes DARC's profiling window (default 512).
	MinWindowSamples uint64
	// QueueCap bounds each typed queue (default 4096); overflowing
	// requests are answered with StatusDropped.
	QueueCap int
	// Faults optionally enables the chaos layer with the given fault
	// profile (see internal/faults); nil injects nothing.
	Faults *FaultProfile
	// TraceCap sets each worker's lifecycle span ring capacity
	// (default 4096); negative disables lifecycle tracing.
	TraceCap int
	// TraceSink, when non-nil, receives every lifecycle span drained
	// by the stats path — e.g. a trace.SpanWriter dumping the live
	// run for simulator replay. Called under the drain lock; keep it
	// fast and do not call back into the server.
	TraceSink func(TraceSpan)
}

// TraceSpan is one completed request's lifecycle record (see
// internal/trace.Span).
type TraceSpan = trace.Span

// FaultProfile configures the deterministic fault injector; build one
// with ParseFaultProfile or a faults.Profile literal.
type FaultProfile = faults.Profile

// ParseFaultProfile decodes a chaos spec like
// "seed=42,drop=0.1,stall=0:5ms,crash=0.001,respawn=10ms".
func ParseFaultProfile(spec string) (FaultProfile, error) {
	return faults.ParseProfile(spec)
}

// LiveServer is the running Perséphone pipeline.
type LiveServer = psp.Server

// LiveStats is a snapshot of live-server metrics.
type LiveStats = psp.Stats

// buildLiveServer translates a LiveConfig into a stopped psp.Server —
// the shared core of NewLiveServer, ServeUDP and ServeTCP.
func buildLiveServer(cfg LiveConfig) (*psp.Server, error) {
	mode := psp.ModeDARC
	if cfg.UseCFCFS {
		mode = psp.ModeCFCFS
	}
	dcfg := darc.DefaultConfig(max(cfg.Workers, 1))
	if cfg.Workers <= 1 {
		dcfg.Spillway = 0
	}
	if cfg.MinWindowSamples > 0 {
		dcfg.MinWindowSamples = cfg.MinWindowSamples
	} else {
		dcfg.MinWindowSamples = 512
	}
	return psp.NewServer(psp.Config{
		Workers:    cfg.Workers,
		Classifier: cfg.Classifier,
		Handler:    cfg.Handler,
		Mode:       mode,
		DARC:       dcfg,
		QueueCap:   cfg.QueueCap,
		Faults:     cfg.Faults,
		TraceCap:   cfg.TraceCap,
		TraceSink:  cfg.TraceSink,
	})
}

// NewLiveServer builds and starts the live runtime.
func NewLiveServer(cfg LiveConfig) (*LiveServer, error) {
	srv, err := buildLiveServer(cfg)
	if err != nil {
		return nil, err
	}
	srv.Start()
	return srv, nil
}

// ServeUDP exposes a configured (not yet started) live server over
// UDP; use NewLiveServerStopped + ServeUDP for network deployments, or
// the psp package directly for full control.
func ServeUDP(addr string, cfg LiveConfig) (*psp.UDPServer, error) {
	srv, err := buildLiveServer(cfg)
	if err != nil {
		return nil, err
	}
	return psp.ListenUDP(addr, srv)
}

// ServeTCP exposes a live server over TCP with length-prefixed frames
// (the stateful-dispatcher deployment §6 of the paper sketches).
func ServeTCP(addr string, cfg LiveConfig) (*psp.TCPServer, error) {
	srv, err := buildLiveServer(cfg)
	if err != nil {
		return nil, err
	}
	return psp.ListenTCP(addr, srv)
}

// DialTCP connects a synchronous client to a ServeTCP server.
func DialTCP(addr string) (*psp.TCPClient, error) { return psp.DialTCP(addr) }

// LoadConfig drives the open-loop load generator against a live
// server.
type LoadConfig = loadgen.Config

// LoadResult summarises a load generation run.
type LoadResult = loadgen.Result

// GenerateLoad runs the open-loop Poisson client against an in-process
// live server.
func GenerateLoad(srv *LiveServer, cfg LoadConfig) (*LoadResult, error) {
	return loadgen.RunInProcess(srv, cfg)
}

// GenerateLoadUDP runs the open-loop Poisson client against a UDP
// server address.
func GenerateLoadUDP(addr string, cfg LoadConfig) (*LoadResult, error) {
	return loadgen.RunUDP(addr, cfg)
}

// Timeout helper so examples don't import time for one constant.
func Seconds(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
