package persephone_test

// Table tests for the typed policy-selection API (PolicySpec) and the
// string grammars around it: canonicalization, argument parsing,
// machine-shape validation, and every documented error path.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	persephone "repro"
)

func TestParsePolicySpecTable(t *testing.T) {
	cases := []struct {
		in   string
		want persephone.PolicySpec
	}{
		{"", persephone.PolicySpec{Name: "darc"}},
		{"darc", persephone.PolicySpec{Name: "darc"}},
		{"  DARC  ", persephone.PolicySpec{Name: "darc"}},
		{"darc-elastic", persephone.PolicySpec{Name: "darc-elastic"}},
		{"darc-static:3", persephone.PolicySpec{Name: "darc-static", StaticReserved: 3}},
		{"darc-static:0", persephone.PolicySpec{Name: "darc-static"}},
		{"cfcfs", persephone.PolicySpec{Name: "cfcfs"}},
		{"c-fcfs", persephone.PolicySpec{Name: "cfcfs"}},
		{"d-FCFS", persephone.PolicySpec{Name: "dfcfs"}},
		{"work-stealing", persephone.PolicySpec{Name: "shenango"}},
		{"ts-sq", persephone.PolicySpec{Name: "shinjuku-sq"}},
		{"ts-mq", persephone.PolicySpec{Name: "shinjuku-mq"}},
		{"ts-ideal", persephone.PolicySpec{Name: "ts-ideal"}},
		{"ts-ideal:2us", persephone.PolicySpec{Name: "ts-ideal", PreemptOverhead: 2 * time.Microsecond}},
		{"ts-ideal:0.5us", persephone.PolicySpec{Name: "ts-ideal", PreemptOverhead: 500 * time.Nanosecond}},
		{"fixed-priority", persephone.PolicySpec{Name: "fp"}},
		{"sjf", persephone.PolicySpec{Name: "sjf"}},
		{"edf", persephone.PolicySpec{Name: "edf"}},
		{"drr", persephone.PolicySpec{Name: "drr"}},
	}
	for _, tc := range cases {
		got, err := persephone.ParsePolicySpec(tc.in)
		if err != nil {
			t.Errorf("%q: %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%q: got %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParsePolicySpecErrors(t *testing.T) {
	cases := []struct {
		in      string
		wantSub string // must appear in the error text
	}{
		{"nope", "unknown policy"},
		{"darc:", "takes no argument"},
		{"cfcfs:3", "takes no argument"},
		{"sjf:fast", "takes no argument"},
		{"darc-static", "needs :N"},
		{"darc-static:", "needs :N"},
		{"darc-static:x", "needs :N"},
		{"darc-static:-1", "needs :N"},
		{"ts-ideal:abcus", "needs :Nus"},
		{"ts-ideal:-3us", "needs :Nus"},
	}
	for _, tc := range cases {
		_, err := persephone.ParsePolicySpec(tc.in)
		if err == nil {
			t.Errorf("%q: accepted, want error containing %q", tc.in, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%q: error %q lacks %q", tc.in, err, tc.wantSub)
		}
	}
}

// TestPolicySpecStringRoundTrip: String must emit the canonical
// grammar, which reparses to the identical spec.
func TestPolicySpecStringRoundTrip(t *testing.T) {
	specs := []persephone.PolicySpec{
		{Name: "darc"},
		{Name: ""}, // zero value renders as darc
		{Name: "darc-static", StaticReserved: 4},
		{Name: "ts-ideal"},
		{Name: "ts-ideal", PreemptOverhead: 1500 * time.Nanosecond},
		{Name: "shenango"},
	}
	for _, s := range specs {
		got, err := persephone.ParsePolicySpec(s.String())
		if err != nil {
			t.Errorf("%+v → %q: %v", s, s.String(), err)
			continue
		}
		want := s
		if want.Name == "" {
			want.Name = "darc"
		}
		if got != want {
			t.Errorf("round trip %+v → %q → %+v", s, s.String(), got)
		}
	}
}

func TestPolicySpecConstructorValidation(t *testing.T) {
	mix := persephone.HighBimodal()
	// Every advertised name must produce a working constructor.
	for _, name := range persephone.PolicyNames() {
		name = strings.NewReplacer(":N", ":1", ":Nus", ":1us").Replace(name)
		spec, err := persephone.ParsePolicySpec(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		newPolicy, err := spec.Constructor(4, mix, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if newPolicy() == nil {
			t.Fatalf("%s: nil policy", name)
		}
	}
	// Machine-shape validation: reservations cannot exceed workers.
	spec := persephone.PolicySpec{Name: "darc-static", StaticReserved: 9}
	if _, err := spec.Constructor(4, mix, 1); err == nil {
		t.Fatal("darc-static:9 on 4 workers accepted")
	}
	if _, err := (persephone.PolicySpec{Name: "bogus"}).Constructor(4, mix, 1); err == nil {
		t.Fatal("hand-built bogus spec accepted")
	}
	if _, err := (persephone.PolicySpec{Name: "ts-ideal", PreemptOverhead: -time.Microsecond}).Constructor(4, mix, 1); err == nil {
		t.Fatal("negative preemption overhead accepted")
	}
}

// TestParsePolicySpecConstructor: the two-step parse-then-bind path —
// same successes, same failures as the old one-shot helper.
func TestParsePolicySpecConstructor(t *testing.T) {
	mix := persephone.HighBimodal()
	parse := func(name string, workers int) error {
		spec, err := persephone.ParsePolicySpec(name)
		if err != nil {
			return err
		}
		_, err = spec.Constructor(workers, mix, 1)
		return err
	}
	if err := parse("darc-static:2", 4); err != nil {
		t.Fatal(err)
	}
	if err := parse("darc-static:9", 4); err == nil {
		t.Fatal("out-of-range reservation accepted")
	}
	if err := parse("nope", 4); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestMixByNameErrors(t *testing.T) {
	for _, name := range []string{"", "   ", "bimodal", "high-bimodal,tpcc", "rocksdb2"} {
		if _, err := persephone.MixByName(name); err == nil {
			t.Errorf("%q: accepted, want error", name)
		}
	}
	// Aliases and surrounding whitespace are fine.
	for _, name := range []string{" high ", "TPC-C", "Extreme-Bimodal"} {
		if _, err := persephone.MixByName(name); err != nil {
			t.Errorf("%q: %v", name, err)
		}
	}
}

// TestPolicySpecRoundTripProperty drives parse∘String over the whole
// advertised grammar: every PolicyNames entry (argument placeholders
// substituted across their domain) and a deterministic sweep of
// arg-carrying specs must satisfy parse(s.String()) == canonical(s).
// This is the property the fuzzer below explores from hostile inputs;
// here it is checked exhaustively over the documented surface.
func TestPolicySpecRoundTripProperty(t *testing.T) {
	var inputs []string
	for _, name := range persephone.PolicyNames() {
		switch {
		case strings.HasSuffix(name, ":N"):
			base := strings.TrimSuffix(name, ":N")
			for _, n := range []int{0, 1, 2, 7, 16} {
				inputs = append(inputs, fmt.Sprintf("%s:%d", base, n))
			}
		case strings.HasSuffix(name, ":Nus"):
			base := strings.TrimSuffix(name, ":Nus")
			inputs = append(inputs, base)
			for _, us := range []float64{0, 0.25, 1, 1.5, 5, 1000} {
				inputs = append(inputs, fmt.Sprintf("%s:%gus", base, us))
			}
		default:
			inputs = append(inputs, name, strings.ToUpper(name), "  "+name+"\t")
		}
	}
	for _, in := range inputs {
		spec, err := persephone.ParsePolicySpec(in)
		if err != nil {
			t.Errorf("%q: %v", in, err)
			continue
		}
		again, err := persephone.ParsePolicySpec(spec.String())
		if err != nil {
			t.Errorf("%q → %q: %v", in, spec.String(), err)
			continue
		}
		if again != spec {
			t.Errorf("%q: parse∘String not idempotent: %+v → %q → %+v", in, spec, spec.String(), again)
		}
		if again.String() != spec.String() {
			t.Errorf("%q: String not stable: %q vs %q", in, spec.String(), again.String())
		}
	}
}

// FuzzParsePolicySpec asserts the parser's safety and round-trip
// properties on arbitrary input: it must never panic, and any input it
// accepts must canonicalize — String() reparses to the identical spec
// with non-negative arguments and a lowercase canonical name.
func FuzzParsePolicySpec(f *testing.F) {
	for _, name := range persephone.PolicyNames() {
		f.Add(name)
	}
	f.Add("")
	f.Add("darc-static:3")
	f.Add("ts-ideal:0.5us")
	f.Add("ts-ideal:NaNus")
	f.Add("ts-ideal:+Infus")
	f.Add("ts-ideal:1e300us")
	f.Add("darc-static:+3")
	f.Add("  D-FCFS  ")
	f.Add("darc:")
	f.Add("darc-static:99999999999999999999")
	f.Fuzz(func(t *testing.T, in string) {
		spec, err := persephone.ParsePolicySpec(in)
		if err != nil {
			return // rejection is always fine; not panicking is the point
		}
		if spec.Name != strings.ToLower(spec.Name) || strings.TrimSpace(spec.Name) != spec.Name || spec.Name == "" {
			t.Fatalf("%q: non-canonical name %q", in, spec.Name)
		}
		if spec.StaticReserved < 0 || spec.PreemptOverhead < 0 {
			t.Fatalf("%q: negative argument in %+v", in, spec)
		}
		again, err := persephone.ParsePolicySpec(spec.String())
		if err != nil {
			t.Fatalf("%q: canonical form %q rejected: %v", in, spec.String(), err)
		}
		if again != spec {
			t.Fatalf("%q: round trip %+v → %q → %+v", in, spec, spec.String(), again)
		}
	})
}
