package tpcc

import (
	"sync"
	"testing"
)

func newTestDB(t *testing.T) *DB {
	t.Helper()
	cfg := Config{Districts: 3, CustomersPerDist: 20, Items: 500, InitialOrdersPerD: 30}
	return New(cfg, 7)
}

func TestTransactionNames(t *testing.T) {
	want := []string{"Payment", "OrderStatus", "NewOrder", "Delivery", "StockLevel"}
	for i, name := range want {
		if Transaction(i).String() != name {
			t.Fatalf("transaction %d named %q", i, Transaction(i))
		}
	}
	if NumTransactions() != 5 {
		t.Fatalf("NumTransactions %d", NumTransactions())
	}
	if Transaction(99).String() == "" {
		t.Fatal("out-of-range name empty")
	}
}

func TestPayment(t *testing.T) {
	db := newTestDB(t)
	before, _ := db.CustomerBalance(0, 5)
	if err := db.PaymentTxn(0, 5, 1234); err != nil {
		t.Fatal(err)
	}
	after, _ := db.CustomerBalance(0, 5)
	if after != before-1234 {
		t.Fatalf("balance %d -> %d", before, after)
	}
	if db.WarehouseYTD() != 1234 {
		t.Fatalf("warehouse YTD %d", db.WarehouseYTD())
	}
	if db.Counts()[Payment] != 1 {
		t.Fatal("payment count")
	}
}

func TestPaymentValidation(t *testing.T) {
	db := newTestDB(t)
	if err := db.PaymentTxn(99, 0, 1); err == nil {
		t.Fatal("bad district accepted")
	}
	if err := db.PaymentTxn(0, 9999, 1); err == nil {
		t.Fatal("bad customer accepted")
	}
}

func TestNewOrderAndOrderStatus(t *testing.T) {
	db := newTestDB(t)
	id1, err := db.NewOrderTxn(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := db.NewOrderTxn(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if id2 <= id1 {
		t.Fatalf("order ids not monotone: %d then %d", id1, id2)
	}
	lines, err := db.OrderStatusTxn(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if lines < 5 || lines > 15 {
		t.Fatalf("last order has %d lines, want 5-15", lines)
	}
}

func TestOrderStatusNoOrders(t *testing.T) {
	db := New(Config{Districts: 1, CustomersPerDist: 5, Items: 100, InitialOrdersPerD: 0}, 1)
	lines, err := db.OrderStatusTxn(0, 0)
	if err != nil || lines != 0 {
		t.Fatalf("lines=%d err=%v", lines, err)
	}
}

func TestDelivery(t *testing.T) {
	db := newTestDB(t)
	// Initial orders are delivered; place fresh ones.
	for d := 0; d < 3; d++ {
		if _, err := db.NewOrderTxn(d, 1); err != nil {
			t.Fatal(err)
		}
	}
	pendingBefore := db.PendingDeliveries()
	if pendingBefore != 3 {
		t.Fatalf("pending %d, want 3", pendingBefore)
	}
	balBefore, _ := db.CustomerBalance(0, 1)
	n := db.DeliveryTxn()
	if n != 3 {
		t.Fatalf("delivered %d, want 3", n)
	}
	if db.PendingDeliveries() != 0 {
		t.Fatal("orders still pending")
	}
	balAfter, _ := db.CustomerBalance(0, 1)
	if balAfter <= balBefore {
		t.Fatal("delivery did not credit the customer")
	}
	// Delivery with nothing pending is a cheap no-op.
	if db.DeliveryTxn() != 0 {
		t.Fatal("empty delivery delivered something")
	}
}

func TestStockLevel(t *testing.T) {
	db := newTestDB(t)
	low, err := db.StockLevelTxn(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if low == 0 {
		t.Fatal("threshold 1000 should count every touched item as low")
	}
	none, err := db.StockLevelTxn(0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if none != 0 {
		t.Fatalf("threshold -1 counted %d items", none)
	}
	if _, err := db.StockLevelTxn(42, 10); err == nil {
		t.Fatal("bad district accepted")
	}
}

func TestCountsAccumulate(t *testing.T) {
	db := newTestDB(t)
	db.PaymentTxn(0, 0, 1)
	db.PaymentTxn(0, 0, 1)
	db.OrderStatusTxn(0, 0)
	db.NewOrderTxn(0, 0)
	db.DeliveryTxn()
	db.StockLevelTxn(0, 50)
	got := db.Counts()
	want := [5]uint64{2, 1, 1, 1, 1}
	if got != want {
		t.Fatalf("counts %v, want %v", got, want)
	}
}

func TestDefaultConfigConstruction(t *testing.T) {
	db := New(Config{}, 1) // falls back to Default()
	if db.Districts() != 10 || db.Customers() != 300 {
		t.Fatalf("districts %d customers %d", db.Districts(), db.Customers())
	}
}

func TestConcurrentTransactions(t *testing.T) {
	db := newTestDB(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 5 {
				case 0:
					db.PaymentTxn(g%3, i%20, 10)
				case 1:
					db.OrderStatusTxn(g%3, i%20)
				case 2:
					db.NewOrderTxn(g%3, i%20)
				case 3:
					db.DeliveryTxn()
				case 4:
					db.StockLevelTxn(g%3, 40)
				}
			}
		}(g)
	}
	wg.Wait()
	counts := db.Counts()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total != 800 {
		t.Fatalf("executed %d transactions, want 800", total)
	}
}

// TestServiceTimeOrdering checks the substrate preserves Table 4's
// cost ordering: Payment/OrderStatus are the cheapest transactions,
// StockLevel the most expensive.
func TestServiceTimeOrdering(t *testing.T) {
	db := New(Default(), 3)
	meas := func(f func()) int64 {
		const reps = 200
		best := int64(1 << 62)
		for trial := 0; trial < 3; trial++ {
			start := nanotime()
			for i := 0; i < reps; i++ {
				f()
			}
			if d := (nanotime() - start) / reps; d < best {
				best = d
			}
		}
		return best
	}
	pay := meas(func() { db.PaymentTxn(0, 1, 5) })
	stock := meas(func() { db.StockLevelTxn(0, 60) })
	if stock < pay*3 {
		t.Fatalf("StockLevel (%dns) not clearly heavier than Payment (%dns)", stock, pay)
	}
}

func BenchmarkPayment(b *testing.B) {
	db := New(Default(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.PaymentTxn(i%10, i%300, 10)
	}
}

func BenchmarkOrderStatus(b *testing.B) {
	db := New(Default(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.OrderStatusTxn(i%10, i%300)
	}
}

func BenchmarkNewOrder(b *testing.B) {
	db := New(Default(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.NewOrderTxn(i%10, i%300)
	}
}

func BenchmarkDelivery(b *testing.B) {
	db := New(Default(), 1)
	for i := 0; i < 1000; i++ {
		db.NewOrderTxn(i%10, i%300)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%100 == 0 {
			b.StopTimer()
			for j := 0; j < 100; j++ {
				db.NewOrderTxn(j%10, j%300)
			}
			b.StartTimer()
		}
		db.DeliveryTxn()
	}
}

func BenchmarkStockLevel(b *testing.B) {
	db := New(Default(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.StockLevelTxn(i%10, 60)
	}
}
