// Package tpcc is a from-scratch in-memory implementation of the five
// TPC-C transactions the paper's Table 4 workload models: Payment,
// OrderStatus, NewOrder, Delivery and StockLevel over a single
// warehouse. It is not a compliant TPC-C kit — it reproduces the
// *service-time structure* (cheap payments, mid-weight order entry,
// expensive deliveries and stock scans) that makes the workload
// n-modal.
package tpcc

import (
	"fmt"
	"sync"

	"repro/internal/rng"
)

// Transaction identifies one of the five TPC-C transaction types, in
// the paper's Table 4 order.
type Transaction int

// The five transactions, ordered by ascending mean service time as in
// Table 4.
const (
	Payment Transaction = iota
	OrderStatus
	NewOrder
	Delivery
	StockLevel
	numTransactions
)

// String implements fmt.Stringer.
func (t Transaction) String() string {
	switch t {
	case Payment:
		return "Payment"
	case OrderStatus:
		return "OrderStatus"
	case NewOrder:
		return "NewOrder"
	case Delivery:
		return "Delivery"
	case StockLevel:
		return "StockLevel"
	default:
		return fmt.Sprintf("Transaction(%d)", int(t))
	}
}

// NumTransactions reports how many transaction types exist.
func NumTransactions() int { return int(numTransactions) }

// Config sizes the database. The defaults (Default) scale a single
// warehouse down so construction stays fast in tests while preserving
// each transaction's relative cost.
type Config struct {
	Districts         int // districts per warehouse (TPC-C: 10)
	CustomersPerDist  int // customers per district (TPC-C: 3000)
	Items             int // catalog size (TPC-C: 100000)
	InitialOrdersPerD int // preloaded orders per district
}

// Default returns the scaled-down single-warehouse configuration.
func Default() Config {
	return Config{
		Districts:         10,
		CustomersPerDist:  300,
		Items:             10000,
		InitialOrdersPerD: 100,
	}
}

type customer struct {
	id        int
	balance   int64 // cents
	ytdPay    int64
	payCount  int
	lastOrder int // order id, -1 if none
}

type orderLine struct {
	itemID   int
	quantity int
	amount   int64
}

type order struct {
	id        int
	customer  int
	delivered bool
	lines     []orderLine
}

type district struct {
	id         int
	ytd        int64
	nextOrder  int
	customers  []customer
	orders     map[int]*order
	newOrders  []int // undelivered order ids, FIFO
	lastOrders []int // ring of the most recent order ids (for StockLevel)
}

// DB is the in-memory single-warehouse database. All five transactions
// take the database lock; the workload generator in the paper treats
// transactions as independent, and so do we (one coarse lock keeps the
// implementation obviously correct; the scheduling experiments measure
// the *dispatch* layer, not lock scalability).
type DB struct {
	mu        sync.Mutex
	cfg       Config
	wYTD      int64
	districts []*district
	stock     []int // stock[itemID] = quantity
	itemPrice []int64
	r         *rng.RNG

	counts [numTransactions]uint64
}

// New builds and populates a database.
func New(cfg Config, seed uint64) *DB {
	if cfg.Districts <= 0 {
		cfg = Default()
	}
	db := &DB{
		cfg:       cfg,
		stock:     make([]int, cfg.Items),
		itemPrice: make([]int64, cfg.Items),
		r:         rng.New(seed),
	}
	for i := range db.stock {
		db.stock[i] = 50 + db.r.Intn(50)
		db.itemPrice[i] = int64(100 + db.r.Intn(9900))
	}
	for d := 0; d < cfg.Districts; d++ {
		dist := &district{id: d, orders: make(map[int]*order)}
		for c := 0; c < cfg.CustomersPerDist; c++ {
			dist.customers = append(dist.customers, customer{id: c, lastOrder: -1})
		}
		db.districts = append(db.districts, dist)
		for o := 0; o < cfg.InitialOrdersPerD; o++ {
			db.insertOrder(dist, db.r.Intn(cfg.CustomersPerDist), true)
		}
	}
	return db
}

// insertOrder creates an order with 5-15 random lines. Caller holds
// the lock (or is the constructor).
func (db *DB) insertOrder(dist *district, custID int, delivered bool) *order {
	o := &order{id: dist.nextOrder, customer: custID, delivered: delivered}
	dist.nextOrder++
	nLines := 5 + db.r.Intn(11)
	for i := 0; i < nLines; i++ {
		item := db.r.Intn(db.cfg.Items)
		qty := 1 + db.r.Intn(10)
		o.lines = append(o.lines, orderLine{
			itemID:   item,
			quantity: qty,
			amount:   int64(qty) * db.itemPrice[item],
		})
		db.stock[item] -= qty
		if db.stock[item] < 10 {
			db.stock[item] += 91 // TPC-C style restock
		}
	}
	dist.orders[o.id] = o
	dist.customers[custID].lastOrder = o.id
	if !delivered {
		dist.newOrders = append(dist.newOrders, o.id)
	}
	dist.lastOrders = append(dist.lastOrders, o.id)
	if len(dist.lastOrders) > 20 {
		dist.lastOrders = dist.lastOrders[1:]
	}
	return o
}

// Counts reports how many transactions of each type have executed.
func (db *DB) Counts() [5]uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	var out [5]uint64
	copy(out[:], db.counts[:])
	return out
}

// PaymentTxn records a customer payment: warehouse and district YTD
// totals and the customer's balance move.
func (db *DB) PaymentTxn(districtID, customerID int, amountCents int64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	dist, cust, err := db.lookup(districtID, customerID)
	if err != nil {
		return err
	}
	db.wYTD += amountCents
	dist.ytd += amountCents
	cust.balance -= amountCents
	cust.ytdPay += amountCents
	cust.payCount++
	db.counts[Payment]++
	return nil
}

// OrderStatusTxn reads a customer's balance and most recent order.
// It returns the number of lines in that order (0 if none).
func (db *DB) OrderStatusTxn(districtID, customerID int) (lines int, err error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	dist, cust, err := db.lookup(districtID, customerID)
	if err != nil {
		return 0, err
	}
	db.counts[OrderStatus]++
	if cust.lastOrder < 0 {
		return 0, nil
	}
	o := dist.orders[cust.lastOrder]
	if o == nil {
		return 0, nil
	}
	// Touch every line, as the real transaction reads them.
	total := int64(0)
	for _, l := range o.lines {
		total += l.amount
	}
	_ = total
	return len(o.lines), nil
}

// NewOrderTxn places an order with 5-15 lines for a random item
// basket, updating stock. It returns the order id.
func (db *DB) NewOrderTxn(districtID, customerID int) (orderID int, err error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	dist, _, err := db.lookup(districtID, customerID)
	if err != nil {
		return 0, err
	}
	o := db.insertOrder(dist, customerID, false)
	db.counts[NewOrder]++
	return o.id, nil
}

// DeliveryTxn delivers the oldest undelivered order in every district
// (the TPC-C deferred delivery batch), crediting each customer's
// balance. It returns how many orders were delivered.
func (db *DB) DeliveryTxn() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	delivered := 0
	for _, dist := range db.districts {
		if len(dist.newOrders) == 0 {
			continue
		}
		id := dist.newOrders[0]
		dist.newOrders = dist.newOrders[1:]
		o := dist.orders[id]
		if o == nil || o.delivered {
			continue
		}
		o.delivered = true
		var total int64
		for _, l := range o.lines {
			total += l.amount
		}
		dist.customers[o.customer].balance += total
		delivered++
	}
	db.counts[Delivery]++
	return delivered
}

// StockLevelTxn counts distinct items with stock below threshold among
// the last 20 orders of a district — the heaviest read transaction.
func (db *DB) StockLevelTxn(districtID, threshold int) (low int, err error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if districtID < 0 || districtID >= len(db.districts) {
		return 0, fmt.Errorf("tpcc: district %d out of range", districtID)
	}
	dist := db.districts[districtID]
	seen := make(map[int]struct{}, 128)
	for _, oid := range dist.lastOrders {
		o := dist.orders[oid]
		if o == nil {
			continue
		}
		for _, l := range o.lines {
			if _, dup := seen[l.itemID]; dup {
				continue
			}
			seen[l.itemID] = struct{}{}
			if db.stock[l.itemID] < threshold {
				low++
			}
		}
	}
	db.counts[StockLevel]++
	return low, nil
}

func (db *DB) lookup(districtID, customerID int) (*district, *customer, error) {
	if districtID < 0 || districtID >= len(db.districts) {
		return nil, nil, fmt.Errorf("tpcc: district %d out of range", districtID)
	}
	dist := db.districts[districtID]
	if customerID < 0 || customerID >= len(dist.customers) {
		return nil, nil, fmt.Errorf("tpcc: customer %d out of range", customerID)
	}
	return dist, &dist.customers[customerID], nil
}

// CustomerBalance reads a customer's balance (test helper).
func (db *DB) CustomerBalance(districtID, customerID int) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	_, cust, err := db.lookup(districtID, customerID)
	if err != nil {
		return 0, err
	}
	return cust.balance, nil
}

// PendingDeliveries reports undelivered orders across districts (test
// helper).
func (db *DB) PendingDeliveries() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	n := 0
	for _, d := range db.districts {
		n += len(d.newOrders)
	}
	return n
}

// WarehouseYTD reports the warehouse year-to-date payment total.
func (db *DB) WarehouseYTD() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.wYTD
}

// Districts reports the configured district count.
func (db *DB) Districts() int { return db.cfg.Districts }

// Customers reports customers per district.
func (db *DB) Customers() int { return db.cfg.CustomersPerDist }
