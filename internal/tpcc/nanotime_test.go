package tpcc

import "time"

// nanotime is a monotonic clock helper for the service-time ordering
// test.
func nanotime() int64 { return int64(time.Since(epoch)) }

var epoch = time.Now()
