package proto

import (
	"bytes"
	"testing"
)

// FuzzDecodeHeader asserts DecodeHeader never panics and never returns
// a payload longer than the datagram on arbitrary input, and that
// valid messages round-trip.
func FuzzDecodeHeader(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, HeaderSize))
	f.Add(AppendMessage(nil, Header{Kind: KindRequest, TypeID: 2, RequestID: 9}, []byte("seed")))
	f.Add(AppendMessage(nil, Header{Kind: KindResponse, Status: StatusDropped}, nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, payload, err := DecodeHeader(data)
		if err != nil {
			return
		}
		if len(payload) != int(h.PayloadLen) {
			t.Fatalf("payload %d != header claim %d", len(payload), h.PayloadLen)
		}
		if HeaderSize+len(payload) > len(data) {
			t.Fatal("payload exceeds datagram")
		}
		// Re-encoding the parsed message must reproduce the prefix.
		out := AppendMessage(nil, h, payload)
		if !bytes.Equal(out, data[:len(out)]) {
			t.Fatalf("re-encode mismatch: %x vs %x", out, data[:len(out)])
		}
	})
}
