// Package proto defines the UDP wire format the live runtime's client
// and server speak: a fixed 16-byte header followed by an opaque
// application payload. The request type lives in the header, matching
// the paper's evaluation protocol ("transaction ID, query ID, and
// synthetic request types are located in the requests' header").
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Magic identifies Perséphone datagrams.
const Magic uint16 = 0x9590

// HeaderSize is the fixed header length in bytes.
const HeaderSize = 16

// Kind discriminates requests from responses.
type Kind uint8

const (
	// KindRequest is a client-to-server message.
	KindRequest Kind = 1
	// KindResponse is a server-to-client message.
	KindResponse Kind = 2
)

// Status reports the server-side outcome in responses. In requests
// the same header byte is repurposed as the retry attempt number: 0
// for the first transmission, n for the n-th retransmission. Servers
// use it to count client retries; it does not affect scheduling.
type Status uint8

const (
	// StatusOK marks a successfully processed request.
	StatusOK Status = 0
	// StatusDropped marks a request shed by flow control.
	StatusDropped Status = 1
	// StatusError marks an application processing failure.
	StatusError Status = 2
	// StatusOverloaded marks a request shed by admission control: the
	// request's queue delay exceeded its type's admission budget, or
	// the dispatcher trimmed queues in reverse-reservation order under
	// sustained overload. Responses with this status carry no payload
	// and usually a retry-after trailer telling the client how long to
	// back off before retrying.
	StatusOverloaded Status = 3
)

// Header is the fixed message prefix.
//
// Layout (little endian):
//
//	0:2   magic
//	2:3   kind
//	3:4   status
//	4:6   type id
//	6:8   payload length
//	8:16  request id
type Header struct {
	Kind       Kind
	Status     Status
	TypeID     uint16
	PayloadLen uint16
	RequestID  uint64
}

// Errors returned by Decode.
var (
	ErrTooShort = errors.New("proto: datagram shorter than header")
	ErrBadMagic = errors.New("proto: bad magic")
)

// EncodeHeader writes h into buf, which must hold at least HeaderSize
// bytes, and returns HeaderSize.
func EncodeHeader(buf []byte, h Header) int {
	_ = buf[HeaderSize-1]
	binary.LittleEndian.PutUint16(buf[0:2], Magic)
	buf[2] = byte(h.Kind)
	buf[3] = byte(h.Status)
	binary.LittleEndian.PutUint16(buf[4:6], h.TypeID)
	binary.LittleEndian.PutUint16(buf[6:8], h.PayloadLen)
	binary.LittleEndian.PutUint64(buf[8:16], h.RequestID)
	return HeaderSize
}

// DecodeHeader parses the header of a datagram and returns it along
// with the payload slice (aliasing buf).
func DecodeHeader(buf []byte) (Header, []byte, error) {
	if len(buf) < HeaderSize {
		return Header{}, nil, ErrTooShort
	}
	if binary.LittleEndian.Uint16(buf[0:2]) != Magic {
		return Header{}, nil, ErrBadMagic
	}
	h := Header{
		Kind:       Kind(buf[2]),
		Status:     Status(buf[3]),
		TypeID:     binary.LittleEndian.Uint16(buf[4:6]),
		PayloadLen: binary.LittleEndian.Uint16(buf[6:8]),
		RequestID:  binary.LittleEndian.Uint64(buf[8:16]),
	}
	payload := buf[HeaderSize:]
	if int(h.PayloadLen) > len(payload) {
		return Header{}, nil, fmt.Errorf("proto: payload length %d exceeds datagram remainder %d", h.PayloadLen, len(payload))
	}
	return h, payload[:h.PayloadLen], nil
}

// AppendMessage encodes a full message (header + payload) into dst,
// returning the extended slice.
func AppendMessage(dst []byte, h Header, payload []byte) []byte {
	if len(payload) > 0xFFFF {
		panic("proto: payload exceeds 64KiB")
	}
	h.PayloadLen = uint16(len(payload))
	var hdr [HeaderSize]byte
	EncodeHeader(hdr[:], h)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// ResponseOverhead is the fixed per-response framing cost: the header
// plus the timing trailer. A buffer of cap >= ResponseOverhead+len(payload)
// holds a full response message; the live runtime sizes its pooled
// network buffers with this so the ingress buffer can be reused for
// the egress frame without reallocating.
const ResponseOverhead = HeaderSize + TimingSize

// AppendResponse encodes a complete response message — header,
// payload, timing trailer — into dst, returning the extended slice.
// It is the one egress framing path shared by the UDP and TCP
// transports.
func AppendResponse(dst []byte, h Header, payload []byte, t Timing) []byte {
	h.Kind = KindResponse
	dst = AppendMessage(dst, h, payload)
	return AppendTiming(dst, t)
}

// TimingMagic guards the optional timing trailer servers append after
// the response payload.
const TimingMagic uint16 = 0x7454

// TimingSize is the trailer length: magic + queue_ns + service_ns.
const TimingSize = 18

// Timing is the server-side lifecycle decomposition a response can
// carry back to the client: how long the request queued before a
// worker picked it up, and how long the handler ran. The trailer sits
// after the payload inside the same datagram/frame, so clients that
// decode only Header+payload (the PayloadLen bytes) remain compatible
// and simply never see it.
type Timing struct {
	// Queue is ingress-to-worker-start queueing delay.
	Queue time.Duration
	// Service is the handler execution time.
	Service time.Duration
}

// AppendTiming appends the timing trailer to an encoded message.
func AppendTiming(dst []byte, t Timing) []byte {
	var buf [TimingSize]byte
	binary.LittleEndian.PutUint16(buf[0:2], TimingMagic)
	binary.LittleEndian.PutUint64(buf[2:10], uint64(t.Queue))
	binary.LittleEndian.PutUint64(buf[10:18], uint64(t.Service))
	return append(dst, buf[:]...)
}

// RetryAfterMagic guards the optional retry-after trailer admission
// NACKs (StatusOverloaded responses) carry.
const RetryAfterMagic uint16 = 0x7252

// RetryAfterSize is the trailer length: magic + delay_ns.
const RetryAfterSize = 10

// AppendRetryAfter appends the retry-after trailer to an encoded
// message. In the canonical response layout it sits after the timing
// trailer and before any correlation trailer.
func AppendRetryAfter(dst []byte, d time.Duration) []byte {
	var buf [RetryAfterSize]byte
	binary.LittleEndian.PutUint16(buf[0:2], RetryAfterMagic)
	binary.LittleEndian.PutUint64(buf[2:10], uint64(d))
	return append(dst, buf[:]...)
}

// DecodeRetryAfter extracts the retry-after trailer from a full
// message whose decoded header is h. A timing trailer, if present, is
// skipped first. ok is false when no retry-after trailer is present.
func DecodeRetryAfter(buf []byte, h Header) (time.Duration, bool) {
	off := HeaderSize + int(h.PayloadLen)
	if len(buf) >= off+TimingSize &&
		binary.LittleEndian.Uint16(buf[off:off+2]) == TimingMagic {
		off += TimingSize
	}
	if len(buf) < off+RetryAfterSize {
		return 0, false
	}
	tail := buf[off:]
	if binary.LittleEndian.Uint16(tail[0:2]) != RetryAfterMagic {
		return 0, false
	}
	return time.Duration(binary.LittleEndian.Uint64(tail[2:10])), true
}

// CorrelationMagic guards the optional correlation trailer the
// fan-out frontend appends after the payload.
const CorrelationMagic uint16 = 0x7146

// CorrelationSize is the trailer length: magic + query id + shard +
// attempt.
const CorrelationSize = 12

// Correlation is the fan-out frontend's query-correlation trailer. On
// frontend→backend sub-requests it names the query, the shard slot
// within the query, and the transmission attempt (0 = primary, 1 =
// hedge); the backend's UDP responder echoes it verbatim on the reply
// so the frontend can correlate even when its pending entry is gone.
// On frontend→client responses the same trailer summarises the query:
// Shard carries the fan-out degree and Attempt the number of hedged
// sub-requests. Like the timing trailer it sits after the payload, so
// clients that decode only Header+payload never see it.
type Correlation struct {
	// QueryID is the frontend-assigned query identifier.
	QueryID uint64
	// Shard is the slot index within the query (requests) or the
	// fan-out degree (client-facing responses).
	Shard uint8
	// Attempt is 0 for a primary sub-request, 1 for a hedge
	// (requests), or the query's hedge count (client-facing responses).
	Attempt uint8
}

// AppendCorrelation appends the correlation trailer to an encoded
// message.
func AppendCorrelation(dst []byte, c Correlation) []byte {
	var buf [CorrelationSize]byte
	binary.LittleEndian.PutUint16(buf[0:2], CorrelationMagic)
	binary.LittleEndian.PutUint64(buf[2:10], c.QueryID)
	buf[10] = c.Shard
	buf[11] = c.Attempt
	return append(dst, buf[:]...)
}

// DecodeCorrelation extracts the correlation trailer from a full
// message whose decoded header is h. Timing and retry-after trailers,
// if present, are skipped first (responses carry timing, then
// retry-after, then correlation). ok is false when no correlation
// trailer is present.
func DecodeCorrelation(buf []byte, h Header) (Correlation, bool) {
	off := HeaderSize + int(h.PayloadLen)
	if len(buf) >= off+TimingSize &&
		binary.LittleEndian.Uint16(buf[off:off+2]) == TimingMagic {
		off += TimingSize
	}
	if len(buf) >= off+RetryAfterSize &&
		binary.LittleEndian.Uint16(buf[off:off+2]) == RetryAfterMagic {
		off += RetryAfterSize
	}
	if len(buf) < off+CorrelationSize {
		return Correlation{}, false
	}
	tail := buf[off:]
	if binary.LittleEndian.Uint16(tail[0:2]) != CorrelationMagic {
		return Correlation{}, false
	}
	return Correlation{
		QueryID: binary.LittleEndian.Uint64(tail[2:10]),
		Shard:   tail[10],
		Attempt: tail[11],
	}, true
}

// DecodeTiming extracts the timing trailer from a full message whose
// decoded header is h. ok is false when no trailer is present.
func DecodeTiming(buf []byte, h Header) (Timing, bool) {
	off := HeaderSize + int(h.PayloadLen)
	if len(buf) < off+TimingSize {
		return Timing{}, false
	}
	tail := buf[off:]
	if binary.LittleEndian.Uint16(tail[0:2]) != TimingMagic {
		return Timing{}, false
	}
	return Timing{
		Queue:   time.Duration(binary.LittleEndian.Uint64(tail[2:10])),
		Service: time.Duration(binary.LittleEndian.Uint64(tail[10:18])),
	}, true
}
