package proto

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Kind: KindRequest, Status: StatusOK, TypeID: 3, RequestID: 0xDEADBEEFCAFE}
	payload := []byte("hello world")
	msg := AppendMessage(nil, h, payload)
	if len(msg) != HeaderSize+len(payload) {
		t.Fatalf("message length %d", len(msg))
	}
	got, body, err := DecodeHeader(msg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != h.Kind || got.Status != h.Status || got.TypeID != h.TypeID || got.RequestID != h.RequestID {
		t.Fatalf("decoded %+v, want %+v", got, h)
	}
	if !bytes.Equal(body, payload) {
		t.Fatalf("payload %q", body)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeHeader(make([]byte, 5)); err != ErrTooShort {
		t.Fatalf("short datagram: %v", err)
	}
	bad := make([]byte, HeaderSize)
	if _, _, err := DecodeHeader(bad); err != ErrBadMagic {
		t.Fatalf("zero magic: %v", err)
	}
	// Payload length larger than the datagram.
	msg := AppendMessage(nil, Header{Kind: KindRequest}, []byte("abc"))
	msg[6] = 200 // corrupt PayloadLen
	if _, _, err := DecodeHeader(msg); err == nil {
		t.Fatal("oversized payload length accepted")
	}
}

func TestEmptyPayload(t *testing.T) {
	msg := AppendMessage(nil, Header{Kind: KindResponse, RequestID: 7}, nil)
	h, body, err := DecodeHeader(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != 0 || h.RequestID != 7 {
		t.Fatalf("h=%+v body=%q", h, body)
	}
}

func TestTrailingBytesIgnored(t *testing.T) {
	msg := AppendMessage(nil, Header{Kind: KindRequest, TypeID: 1}, []byte("xy"))
	msg = append(msg, 0xFF, 0xFF) // UDP datagrams can carry padding
	_, body, err := DecodeHeader(msg)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "xy" {
		t.Fatalf("payload %q", body)
	}
}

func TestRoundTripProperty(t *testing.T) {
	check := func(kind, status uint8, typeID uint16, reqID uint64, payload []byte) bool {
		if len(payload) > 0xFFFF {
			payload = payload[:0xFFFF]
		}
		h := Header{Kind: Kind(kind), Status: Status(status), TypeID: typeID, RequestID: reqID}
		msg := AppendMessage(nil, h, payload)
		got, body, err := DecodeHeader(msg)
		if err != nil {
			return false
		}
		return got.Kind == h.Kind && got.Status == h.Status &&
			got.TypeID == h.TypeID && got.RequestID == h.RequestID &&
			bytes.Equal(body, payload)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOversizedPayloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for >64KiB payload")
		}
	}()
	AppendMessage(nil, Header{}, make([]byte, 1<<17))
}

func TestCorrelationRoundTrip(t *testing.T) {
	h := Header{Kind: KindRequest, TypeID: 3, RequestID: 42}
	c := Correlation{QueryID: 7, Shard: 2, Attempt: 1}
	msg := AppendMessage(nil, h, []byte("sub"))
	msg = AppendCorrelation(msg, c)

	dec, payload, err := DecodeHeader(msg)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "sub" {
		t.Fatalf("payload = %q (trailer must stay invisible to plain decode)", payload)
	}
	got, ok := DecodeCorrelation(msg, dec)
	if !ok || got != c {
		t.Fatalf("got %+v ok=%v, want %+v", got, ok, c)
	}
}

func TestCorrelationAfterTimingTrailer(t *testing.T) {
	// Responses carry timing before correlation; the decoder must skip
	// over the timing trailer.
	h := Header{Kind: KindResponse, RequestID: 9}
	tm := Timing{Queue: 10, Service: 20}
	c := Correlation{QueryID: 99, Shard: 1, Attempt: 0}
	msg := AppendResponse(nil, h, []byte("r"), tm)
	msg = AppendCorrelation(msg, c)

	dec, _, err := DecodeHeader(msg)
	if err != nil {
		t.Fatal(err)
	}
	gotT, ok := DecodeTiming(msg, dec)
	if !ok || gotT != tm {
		t.Fatalf("timing = %+v ok=%v", gotT, ok)
	}
	gotC, ok := DecodeCorrelation(msg, dec)
	if !ok || gotC != c {
		t.Fatalf("correlation = %+v ok=%v", gotC, ok)
	}
}

func TestCorrelationAbsent(t *testing.T) {
	h := Header{Kind: KindResponse, RequestID: 1}
	msg := AppendResponse(nil, h, []byte("x"), Timing{})
	dec, _, err := DecodeHeader(msg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := DecodeCorrelation(msg, dec); ok {
		t.Fatal("decoded a correlation trailer that was never appended")
	}
	// Truncated trailer must not decode either.
	msg = AppendCorrelation(msg, Correlation{QueryID: 1})
	if _, ok := DecodeCorrelation(msg[:len(msg)-1], dec); ok {
		t.Fatal("decoded a truncated correlation trailer")
	}
}
