package faults

import "testing"

// FuzzParseProfile asserts the profile parser never panics on
// arbitrary specs and that any profile it accepts round-trips through
// String back to the identical profile.
func FuzzParseProfile(f *testing.F) {
	f.Add("")
	f.Add("off")
	f.Add("drop=0.1")
	f.Add("seed=42,drop=0.1,burst=4,dup=0.01,stall=0:5ms,slow=1:2.5,crash=0.001,respawn=10ms,resdelay=5ms")
	f.Add("stall=3:1h2m3s")
	f.Add("drop=1e-3,dup=0.999999")
	f.Add("drop=0.1,drop=0.2")
	f.Add(",,,")
	f.Add("DROP=0.5")
	f.Add("slow=-1:2")
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParseProfile(spec)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("parser accepted invalid profile %+v: %v", p, verr)
		}
		back, err := ParseProfile(p.String())
		if err != nil {
			t.Fatalf("accepted profile %+v did not reparse from %q: %v", p, p.String(), err)
		}
		if back != p {
			t.Fatalf("round trip changed profile: %+v -> %q -> %+v", p, p.String(), back)
		}
	})
}
