// Package faults is the deterministic fault-injection (chaos) layer
// for the live Perséphone runtime. A Profile describes which
// infrastructure misbehaviours to create — probabilistic and bursty
// packet drop or duplication at ingress, stalled or slowed application
// workers, crash-then-respawn of workers, and delayed DARC reservation
// updates — and an Injector makes the per-event decisions.
//
// Decisions are driven by the seeded generator in internal/rng, with
// one independent stream per decision site (ingress drop, ingress
// duplication, and one per worker), so the decision sequence at each
// site is a pure function of the profile seed regardless of how the
// sites interleave at runtime. Two injectors built from the same
// profile produce identical decision sequences — chaos runs are
// reproducible.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rng"
)

// Profile configures one chaos scenario. The zero value injects
// nothing; a worker-targeted fault is active only when its magnitude
// field is set (StallDuration > 0, SlowFactor > 1), so a zero
// StallWorker does not accidentally target worker 0.
type Profile struct {
	// Seed drives every injection decision; runs with equal seeds and
	// profiles make identical decisions.
	Seed uint64
	// DropRate is the probability an ingress request is dropped before
	// classification (the packet vanishes; no response is sent).
	DropRate float64
	// DropBurst makes drops bursty: each drop decision discards this
	// many consecutive requests (default 1, i.e. independent drops).
	DropBurst int
	// DupRate is the probability an ingress request is duplicated, as
	// a retransmitting network would.
	DupRate float64
	// StallWorker selects the worker whose every request is delayed by
	// StallDuration before execution; -1 (or StallDuration == 0)
	// disables stalls.
	StallWorker int
	// StallDuration is the injected pre-execution delay on StallWorker.
	StallDuration time.Duration
	// SlowWorker selects the worker whose service times are inflated
	// by SlowFactor; -1 (or SlowFactor <= 1) disables slowdowns.
	SlowWorker int
	// SlowFactor multiplies SlowWorker's service time: after executing
	// a request that took s, the worker sleeps an extra s*(SlowFactor-1).
	SlowFactor float64
	// CrashRate is the per-request probability that the executing
	// worker crashes: the request is answered with a drop status, the
	// worker goroutine exits, and a replacement respawns after
	// RespawnDelay.
	CrashRate float64
	// RespawnDelay is how long a crashed worker stays dead.
	RespawnDelay time.Duration
	// ReservationDelay postpones DARC reservation updates: once an
	// update becomes due, it is held back this long before it may
	// install (a laggy control plane).
	ReservationDelay time.Duration
}

// Enabled reports whether the profile injects anything at all.
func (p Profile) Enabled() bool {
	return p.DropRate > 0 || p.DupRate > 0 || p.CrashRate > 0 ||
		(p.StallDuration > 0 && p.StallWorker >= 0) ||
		(p.SlowFactor > 1 && p.SlowWorker >= 0) ||
		p.ReservationDelay > 0
}

// Validate rejects out-of-range rates and magnitudes.
func (p Profile) Validate() error {
	check := func(name string, rate float64) error {
		if rate < 0 || rate > 1 {
			return fmt.Errorf("faults: %s %g outside [0, 1]", name, rate)
		}
		return nil
	}
	if err := check("drop rate", p.DropRate); err != nil {
		return err
	}
	if err := check("duplication rate", p.DupRate); err != nil {
		return err
	}
	if err := check("crash rate", p.CrashRate); err != nil {
		return err
	}
	if p.DropBurst < 0 {
		return fmt.Errorf("faults: negative drop burst %d", p.DropBurst)
	}
	if p.StallWorker < -1 || p.SlowWorker < -1 {
		return fmt.Errorf("faults: worker index below -1")
	}
	if p.StallDuration < 0 || p.RespawnDelay < 0 || p.ReservationDelay < 0 {
		return fmt.Errorf("faults: negative duration")
	}
	if p.SlowFactor < 0 {
		return fmt.Errorf("faults: negative slow factor %g", p.SlowFactor)
	}
	return nil
}

// ParseProfile decodes the compact comma-separated spec used by CLI
// flags, e.g.
//
//	seed=42,drop=0.1,burst=4,dup=0.01,stall=0:5ms,slow=1:2.5,crash=0.001,respawn=10ms,resdelay=5ms
//
// Unset keys keep their inert defaults; the empty string is the empty
// (disabled) profile.
func ParseProfile(s string) (Profile, error) {
	p := Profile{StallWorker: -1, SlowWorker: -1, DropBurst: 1}
	s = strings.TrimSpace(s)
	if s == "" || s == "off" {
		return p, nil
	}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return p, fmt.Errorf("faults: %q is not key=value", field)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseUint(val, 10, 64)
		case "drop":
			p.DropRate, err = parseRate(val)
		case "burst":
			p.DropBurst, err = strconv.Atoi(val)
		case "dup":
			p.DupRate, err = parseRate(val)
		case "stall":
			p.StallWorker, p.StallDuration, err = parseWorkerDuration(val)
		case "slow":
			p.SlowWorker, p.SlowFactor, err = parseWorkerFactor(val)
		case "crash":
			p.CrashRate, err = parseRate(val)
		case "respawn":
			p.RespawnDelay, err = time.ParseDuration(val)
		case "resdelay":
			p.ReservationDelay, err = time.ParseDuration(val)
		default:
			return p, fmt.Errorf("faults: unknown key %q", key)
		}
		if err != nil {
			return p, fmt.Errorf("faults: bad value for %q: %v", key, err)
		}
	}
	if err := p.Validate(); err != nil {
		return p, err
	}
	// Canonicalize inert combinations so String round-trips: a fault
	// aimed at worker -1 or with no magnitude is the same as unset.
	if p.DropBurst < 1 {
		p.DropBurst = 1
	}
	if p.StallWorker < 0 || p.StallDuration == 0 {
		p.StallWorker, p.StallDuration = -1, 0
	}
	if p.SlowWorker < 0 || p.SlowFactor <= 1 {
		p.SlowWorker, p.SlowFactor = -1, 0
	}
	return p, nil
}

func parseRate(val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("rate %g outside [0, 1]", f)
	}
	return f, nil
}

func parseWorkerDuration(val string) (int, time.Duration, error) {
	ws, ds, ok := strings.Cut(val, ":")
	if !ok {
		return -1, 0, fmt.Errorf("want worker:duration, got %q", val)
	}
	w, err := strconv.Atoi(ws)
	if err != nil {
		return -1, 0, err
	}
	d, err := time.ParseDuration(ds)
	if err != nil {
		return -1, 0, err
	}
	return w, d, nil
}

func parseWorkerFactor(val string) (int, float64, error) {
	ws, fs, ok := strings.Cut(val, ":")
	if !ok {
		return -1, 0, fmt.Errorf("want worker:factor, got %q", val)
	}
	w, err := strconv.Atoi(ws)
	if err != nil {
		return -1, 0, err
	}
	f, err := strconv.ParseFloat(fs, 64)
	if err != nil {
		return -1, 0, err
	}
	return w, f, nil
}

// String renders the profile in ParseProfile's format, emitting only
// non-default fields in a canonical key order; ParseProfile(p.String())
// reproduces p.
func (p Profile) String() string {
	type kv struct {
		order int
		s     string
	}
	var parts []kv
	add := func(order int, s string) { parts = append(parts, kv{order, s}) }
	if p.Seed != 0 {
		add(0, fmt.Sprintf("seed=%d", p.Seed))
	}
	if p.DropRate != 0 {
		add(1, "drop="+strconv.FormatFloat(p.DropRate, 'g', -1, 64))
	}
	if p.DropBurst > 1 {
		add(2, fmt.Sprintf("burst=%d", p.DropBurst))
	}
	if p.DupRate != 0 {
		add(3, "dup="+strconv.FormatFloat(p.DupRate, 'g', -1, 64))
	}
	if p.StallWorker >= 0 && p.StallDuration != 0 {
		add(4, fmt.Sprintf("stall=%d:%s", p.StallWorker, p.StallDuration))
	}
	if p.SlowWorker >= 0 && p.SlowFactor != 0 {
		add(5, fmt.Sprintf("slow=%d:%s", p.SlowWorker, strconv.FormatFloat(p.SlowFactor, 'g', -1, 64)))
	}
	if p.CrashRate != 0 {
		add(6, "crash="+strconv.FormatFloat(p.CrashRate, 'g', -1, 64))
	}
	if p.RespawnDelay != 0 {
		add(7, "respawn="+p.RespawnDelay.String())
	}
	if p.ReservationDelay != 0 {
		add(8, "resdelay="+p.ReservationDelay.String())
	}
	if len(parts) == 0 {
		return "off"
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].order < parts[j].order })
	ss := make([]string, len(parts))
	for i, part := range parts {
		ss[i] = part.s
	}
	return strings.Join(ss, ",")
}

// Counts is a snapshot of injected faults by kind.
type Counts struct {
	Drops     uint64
	Dups      uint64
	Stalls    uint64
	Slowdowns uint64
	Crashes   uint64
}

// Total sums all injected faults.
func (c Counts) Total() uint64 {
	return c.Drops + c.Dups + c.Stalls + c.Slowdowns + c.Crashes
}

// Injector makes the runtime injection decisions for one Profile. All
// methods are safe on a nil receiver (they inject nothing), so hook
// points need no nil checks, and safe for concurrent use.
type Injector struct {
	prof Profile

	mu        sync.Mutex // guards the ingress streams and burst state
	dropRNG   *rng.RNG
	dupRNG    *rng.RNG
	burstLeft int

	workers []workerStream

	// crashHook, when set, is called with the worker index after each
	// injected crash decision — the notification channel a supervising
	// tier (e.g. the fan-out frontend's backend health scorer) uses to
	// learn about crash events without polling counters.
	crashHook atomic.Pointer[func(worker int)]

	drops     atomic.Uint64
	dups      atomic.Uint64
	stalls    atomic.Uint64
	slowdowns atomic.Uint64
	crashes   atomic.Uint64
}

// workerStream is one worker's private decision stream. Worker
// goroutines are sequential per slot (a respawn starts only after the
// crash), but the mutex keeps the injector safe under any caller.
type workerStream struct {
	mu  sync.Mutex
	rng *rng.RNG
}

// New builds an injector for a validated profile and a worker count.
// Worker-targeted faults aimed at indexes outside [0, workers) never
// fire.
func New(p Profile, workers int) *Injector {
	if p.DropBurst <= 0 {
		p.DropBurst = 1
	}
	base := rng.New(p.Seed)
	inj := &Injector{
		prof:    p,
		dropRNG: base.Split(),
		dupRNG:  base.Split(),
		workers: make([]workerStream, max(workers, 0)),
	}
	for i := range inj.workers {
		inj.workers[i].rng = base.Split()
	}
	return inj
}

// Profile returns the profile the injector was built from.
func (i *Injector) Profile() Profile {
	if i == nil {
		return Profile{StallWorker: -1, SlowWorker: -1}
	}
	return i.prof
}

// IngressDrop decides whether to discard the next ingress request.
func (i *Injector) IngressDrop() bool {
	if i == nil || i.prof.DropRate <= 0 {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.burstLeft > 0 {
		i.burstLeft--
		i.drops.Add(1)
		return true
	}
	if i.dropRNG.Float64() < i.prof.DropRate {
		i.burstLeft = i.prof.DropBurst - 1
		i.drops.Add(1)
		return true
	}
	return false
}

// IngressDup decides whether to duplicate the next ingress request.
func (i *Injector) IngressDup() bool {
	if i == nil || i.prof.DupRate <= 0 {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.dupRNG.Float64() < i.prof.DupRate {
		i.dups.Add(1)
		return true
	}
	return false
}

// WorkerStall reports the pre-execution delay to inject on worker w
// for its next request (0 means none).
func (i *Injector) WorkerStall(w int) time.Duration {
	if i == nil || i.prof.StallDuration <= 0 || w != i.prof.StallWorker {
		return 0
	}
	i.stalls.Add(1)
	return i.prof.StallDuration
}

// WorkerSlowdown reports the extra service time to inject on worker w
// after a request that took service (0 means none).
func (i *Injector) WorkerSlowdown(w int, service time.Duration) time.Duration {
	if i == nil || i.prof.SlowFactor <= 1 || w != i.prof.SlowWorker {
		return 0
	}
	extra := time.Duration(float64(service) * (i.prof.SlowFactor - 1))
	if extra <= 0 {
		return 0
	}
	i.slowdowns.Add(1)
	return extra
}

// WorkerCrash decides whether worker w crashes on its next request.
func (i *Injector) WorkerCrash(w int) bool {
	if i == nil || i.prof.CrashRate <= 0 || w < 0 || w >= len(i.workers) {
		return false
	}
	ws := &i.workers[w]
	ws.mu.Lock()
	hit := ws.rng.Float64() < i.prof.CrashRate
	ws.mu.Unlock()
	if hit {
		i.crashes.Add(1)
		if fn := i.crashHook.Load(); fn != nil {
			(*fn)(w)
		}
	}
	return hit
}

// SetCrashHook registers fn to be called (from the crashing worker's
// goroutine) whenever a crash is injected, carrying the worker index.
// A nil fn removes the hook. Keep fn fast and non-blocking — it runs
// on the fault's critical path.
func (i *Injector) SetCrashHook(fn func(worker int)) {
	if i == nil {
		return
	}
	if fn == nil {
		i.crashHook.Store(nil)
		return
	}
	i.crashHook.Store(&fn)
}

// RespawnDelay reports how long a crashed worker stays down.
func (i *Injector) RespawnDelay() time.Duration {
	if i == nil {
		return 0
	}
	return i.prof.RespawnDelay
}

// ReservationDelay reports the injected lag on DARC reservation
// updates (0 means updates install immediately).
func (i *Injector) ReservationDelay() time.Duration {
	if i == nil {
		return 0
	}
	return i.prof.ReservationDelay
}

// Counts snapshots the injected-fault counters.
func (i *Injector) Counts() Counts {
	if i == nil {
		return Counts{}
	}
	return Counts{
		Drops:     i.drops.Load(),
		Dups:      i.dups.Load(),
		Stalls:    i.stalls.Load(),
		Slowdowns: i.slowdowns.Load(),
		Crashes:   i.crashes.Load(),
	}
}

// Total reports all faults injected so far.
func (i *Injector) Total() uint64 { return i.Counts().Total() }
