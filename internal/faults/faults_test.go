package faults

import (
	"math"
	"testing"
	"time"
)

func TestParseProfileRoundTrip(t *testing.T) {
	spec := "seed=42,drop=0.1,burst=4,dup=0.01,stall=0:5ms,slow=1:2.5,crash=0.001,respawn=10ms,resdelay=5ms"
	p, err := ParseProfile(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := Profile{
		Seed:             42,
		DropRate:         0.1,
		DropBurst:        4,
		DupRate:          0.01,
		StallWorker:      0,
		StallDuration:    5 * time.Millisecond,
		SlowWorker:       1,
		SlowFactor:       2.5,
		CrashRate:        0.001,
		RespawnDelay:     10 * time.Millisecond,
		ReservationDelay: 5 * time.Millisecond,
	}
	if p != want {
		t.Fatalf("parsed %+v, want %+v", p, want)
	}
	back, err := ParseProfile(p.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", p.String(), err)
	}
	if back != p {
		t.Fatalf("round trip %+v != %+v via %q", back, p, p.String())
	}
}

func TestParseProfileEmpty(t *testing.T) {
	for _, s := range []string{"", "  ", "off"} {
		p, err := ParseProfile(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if p.Enabled() {
			t.Fatalf("%q parsed to enabled profile %+v", s, p)
		}
		if p.String() != "off" {
			t.Fatalf("empty profile renders %q", p.String())
		}
	}
}

func TestParseProfileErrors(t *testing.T) {
	for _, s := range []string{
		"drop",           // not key=value
		"drop=2",         // rate out of range
		"drop=-0.5",      // negative rate
		"dup=x",          // not a number
		"stall=5ms",      // missing worker
		"stall=a:5ms",    // bad worker
		"stall=0:zzz",    // bad duration
		"slow=0",         // missing factor
		"crash=1.5",      // rate out of range
		"burst=-2",       // negative burst
		"respawn=-5ms",   // negative duration
		"seed=-1",        // negative seed
		"mystery=1",      // unknown key
		"resdelay=5eons", // bad duration
	} {
		if _, err := ParseProfile(s); err == nil {
			t.Errorf("spec %q accepted", s)
		}
	}
}

func TestZeroValueProfileIsInert(t *testing.T) {
	// A zero Profile must not target worker 0 with stalls/slowdowns.
	inj := New(Profile{}, 4)
	if inj.Profile().Enabled() {
		t.Fatal("zero profile enabled")
	}
	if d := inj.WorkerStall(0); d != 0 {
		t.Fatalf("zero profile stalls worker 0 by %v", d)
	}
	if d := inj.WorkerSlowdown(0, time.Millisecond); d != 0 {
		t.Fatalf("zero profile slows worker 0 by %v", d)
	}
	if inj.WorkerCrash(0) || inj.IngressDrop() || inj.IngressDup() {
		t.Fatal("zero profile injected a fault")
	}
	if inj.Total() != 0 {
		t.Fatalf("counters moved: %+v", inj.Counts())
	}
}

func TestNilInjectorSafe(t *testing.T) {
	var inj *Injector
	if inj.IngressDrop() || inj.IngressDup() || inj.WorkerCrash(0) {
		t.Fatal("nil injector injected")
	}
	if inj.WorkerStall(0) != 0 || inj.WorkerSlowdown(0, time.Second) != 0 {
		t.Fatal("nil injector delayed")
	}
	if inj.RespawnDelay() != 0 || inj.ReservationDelay() != 0 {
		t.Fatal("nil injector produced durations")
	}
	if inj.Total() != 0 {
		t.Fatal("nil injector counted")
	}
}

// TestInjectorDeterministic is the determinism property: two injectors
// built from the same profile make the identical decision sequence at
// every hook point.
func TestInjectorDeterministic(t *testing.T) {
	prof := Profile{
		Seed:        99,
		DropRate:    0.2,
		DropBurst:   3,
		DupRate:     0.05,
		CrashRate:   0.01,
		StallWorker: 1, StallDuration: time.Millisecond,
		SlowWorker: 2, SlowFactor: 2,
	}
	a, b := New(prof, 4), New(prof, 4)
	for i := 0; i < 10000; i++ {
		if got, want := a.IngressDrop(), b.IngressDrop(); got != want {
			t.Fatalf("drop decision %d diverged: %v vs %v", i, got, want)
		}
		if got, want := a.IngressDup(), b.IngressDup(); got != want {
			t.Fatalf("dup decision %d diverged", i)
		}
		w := i % 4
		if got, want := a.WorkerCrash(w), b.WorkerCrash(w); got != want {
			t.Fatalf("crash decision %d (worker %d) diverged", i, w)
		}
	}
	if a.Counts() != b.Counts() {
		t.Fatalf("counters diverged: %+v vs %+v", a.Counts(), b.Counts())
	}
}

// TestInjectorStreamsIndependent checks that interleaving calls at one
// hook point does not perturb another site's sequence.
func TestInjectorStreamsIndependent(t *testing.T) {
	prof := Profile{Seed: 7, DropRate: 0.3, DupRate: 0.3}
	a, b := New(prof, 0), New(prof, 0)
	var seqA, seqB []bool
	for i := 0; i < 2000; i++ {
		// a interleaves dup draws between drops; b does not.
		seqA = append(seqA, a.IngressDrop())
		a.IngressDup()
		seqB = append(seqB, b.IngressDrop())
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("drop sequence perturbed by dup draws at %d", i)
		}
	}
}

// TestInjectionRate asserts the injector injects within ±1% of the
// configured rate over 1e6 trials (fixed seed, so not flaky).
func TestInjectionRate(t *testing.T) {
	const trials = 1_000_000
	for _, rate := range []float64{0.01, 0.1, 0.5} {
		inj := New(Profile{Seed: 1234, DropRate: rate, DropBurst: 1}, 0)
		hits := 0
		for i := 0; i < trials; i++ {
			if inj.IngressDrop() {
				hits++
			}
		}
		got := float64(hits) / trials
		if math.Abs(got-rate) > rate*0.01+1e-4 {
			t.Errorf("rate %g: injected %g over %d trials", rate, got, trials)
		}
		if inj.Counts().Drops != uint64(hits) {
			t.Errorf("rate %g: counter %d != hits %d", rate, inj.Counts().Drops, hits)
		}
	}
}

func TestDropBurst(t *testing.T) {
	inj := New(Profile{Seed: 5, DropRate: 0.05, DropBurst: 4}, 0)
	// Every drop event must discard exactly 4 consecutive requests.
	run := 0
	for i := 0; i < 100000; i++ {
		if inj.IngressDrop() {
			run++
			continue
		}
		if run > 0 && run%4 != 0 {
			t.Fatalf("burst of %d at trial %d, want multiples of 4", run, i)
		}
		run = 0
	}
	if inj.Counts().Drops == 0 {
		t.Fatal("no drops at 5% over 100k trials")
	}
}

func TestWorkerTargetedFaults(t *testing.T) {
	prof := Profile{Seed: 3, StallWorker: 1, StallDuration: 2 * time.Millisecond, SlowWorker: 2, SlowFactor: 3}
	inj := New(prof, 3)
	if d := inj.WorkerStall(0); d != 0 {
		t.Fatalf("worker 0 stalled %v", d)
	}
	if d := inj.WorkerStall(1); d != 2*time.Millisecond {
		t.Fatalf("worker 1 stall %v", d)
	}
	if d := inj.WorkerSlowdown(2, time.Millisecond); d != 2*time.Millisecond {
		t.Fatalf("worker 2 slowdown %v, want 2ms", d)
	}
	if c := inj.Counts(); c.Stalls != 1 || c.Slowdowns != 1 {
		t.Fatalf("counts %+v", c)
	}
	// Crash aimed outside the worker range never fires.
	out := New(Profile{Seed: 3, CrashRate: 1}, 2)
	if out.WorkerCrash(5) {
		t.Fatal("crash fired for out-of-range worker")
	}
	if !out.WorkerCrash(1) {
		t.Fatal("crash rate 1 did not fire for in-range worker")
	}
}

func TestValidate(t *testing.T) {
	bad := []Profile{
		{DropRate: 1.5},
		{DupRate: -0.1},
		{CrashRate: 2},
		{DropBurst: -1},
		{StallWorker: -2},
		{StallDuration: -time.Second},
		{SlowFactor: -1},
		{ReservationDelay: -time.Millisecond},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d (%+v) accepted", i, p)
		}
	}
	if err := (Profile{DropRate: 0.5, DropBurst: 2, SlowFactor: 2}).Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
}
