package eventq

import (
	"testing"
	"testing/quick"
	"time"
)

func TestOrdering(t *testing.T) {
	var q Queue
	var fired []int
	q.Push(30, func() { fired = append(fired, 3) })
	q.Push(10, func() { fired = append(fired, 1) })
	q.Push(20, func() { fired = append(fired, 2) })
	for q.Len() > 0 {
		q.Pop().Fn()
	}
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 3 {
		t.Fatalf("fired order %v", fired)
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	var q Queue
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		q.Push(5, func() { fired = append(fired, i) })
	}
	for q.Len() > 0 {
		q.Pop().Fn()
	}
	for i, v := range fired {
		if v != i {
			t.Fatalf("same-instant events out of schedule order: %v", fired)
		}
	}
}

func TestPopEmpty(t *testing.T) {
	var q Queue
	if q.Pop() != nil {
		t.Fatal("Pop on empty returned an event")
	}
	if q.Peek() != nil {
		t.Fatal("Peek on empty returned an event")
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	fired := false
	e := q.Push(10, func() { fired = true })
	if !q.Cancel(e) {
		t.Fatal("Cancel reported failure for a queued event")
	}
	if q.Cancel(e) {
		t.Fatal("double Cancel reported success")
	}
	if q.Len() != 0 {
		t.Fatalf("queue has %d events after cancel", q.Len())
	}
	if q.Pop() != nil || fired {
		t.Fatal("cancelled event still present")
	}
}

func TestCancelNil(t *testing.T) {
	var q Queue
	if q.Cancel(nil) {
		t.Fatal("Cancel(nil) reported success")
	}
}

func TestCancelMiddle(t *testing.T) {
	var q Queue
	var fired []time.Duration
	events := make([]*Event, 0, 20)
	times := []time.Duration{50, 10, 40, 20, 30, 15, 45, 25, 35, 5}
	for _, at := range times {
		at := at
		events = append(events, q.Push(at, func() { fired = append(fired, at) }))
	}
	// Cancel a few interior events.
	q.Cancel(events[2]) // 40
	q.Cancel(events[4]) // 30
	q.Cancel(events[9]) // 5
	var prev time.Duration = -1
	for q.Len() > 0 {
		e := q.Pop()
		if e.At < prev {
			t.Fatalf("heap order violated: %v after %v", e.At, prev)
		}
		prev = e.At
		e.Fn()
	}
	want := []time.Duration{10, 15, 20, 25, 35, 45, 50}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestCancelAfterPop(t *testing.T) {
	var q Queue
	e := q.Push(1, func() {})
	q.Pop()
	if q.Cancel(e) {
		t.Fatal("Cancel succeeded on a popped event")
	}
}

// TestHeapProperty pushes pseudo-random times and checks pops come out
// sorted, under random interleaved cancels.
func TestHeapProperty(t *testing.T) {
	check := func(times []uint16, cancelMask []bool) bool {
		var q Queue
		events := make([]*Event, len(times))
		for i, at := range times {
			events[i] = q.Push(time.Duration(at), func() {})
		}
		for i := range cancelMask {
			if i < len(events) && cancelMask[i] {
				q.Cancel(events[i])
			}
		}
		var prev time.Duration = -1
		var prevSeq uint64
		for q.Len() > 0 {
			e := q.Pop()
			if e.At < prev {
				return false
			}
			if e.At == prev && e.Seq < prevSeq {
				return false
			}
			prev, prevSeq = e.At, e.Seq
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
