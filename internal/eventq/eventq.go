// Package eventq implements the future event list of the discrete-event
// simulator: a binary min-heap ordered by (time, sequence) so that
// events scheduled for the same instant fire in scheduling order, which
// keeps simulations deterministic.
package eventq

import "time"

// Event is a scheduled callback.
type Event struct {
	At  time.Duration // virtual time at which the event fires
	Seq uint64        // tie-breaker: schedule order
	Fn  func()        // action; never nil for queued events

	index int // heap index, -1 when not queued
}

// Queue is a future event list. The zero value is ready to use.
// It is not safe for concurrent use; the simulator is single-threaded.
type Queue struct {
	heap []*Event
	seq  uint64
}

// Len reports the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Push schedules fn at the given virtual time and returns the event,
// which may later be passed to Cancel.
func (q *Queue) Push(at time.Duration, fn func()) *Event {
	e := &Event{At: at, Seq: q.seq, Fn: fn}
	q.seq++
	e.index = len(q.heap)
	q.heap = append(q.heap, e)
	q.up(e.index)
	return e
}

// Pop removes and returns the earliest event, or nil if the queue is
// empty.
func (q *Queue) Pop() *Event {
	if len(q.heap) == 0 {
		return nil
	}
	top := q.heap[0]
	last := len(q.heap) - 1
	q.swap(0, last)
	q.heap[last] = nil
	q.heap = q.heap[:last]
	if last > 0 {
		q.down(0)
	}
	top.index = -1
	return top
}

// Peek returns the earliest event without removing it, or nil.
func (q *Queue) Peek() *Event {
	if len(q.heap) == 0 {
		return nil
	}
	return q.heap[0]
}

// Cancel removes a pending event. It reports whether the event was
// still queued; cancelling an already-fired or already-cancelled event
// is a harmless no-op.
func (q *Queue) Cancel(e *Event) bool {
	if e == nil || e.index < 0 || e.index >= len(q.heap) || q.heap[e.index] != e {
		return false
	}
	i := e.index
	last := len(q.heap) - 1
	q.swap(i, last)
	q.heap[last] = nil
	q.heap = q.heap[:last]
	if i < last {
		if !q.down(i) {
			q.up(i)
		}
	}
	e.index = -1
	return true
}

func (q *Queue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.At != b.At {
		return a.At < b.At
	}
	return a.Seq < b.Seq
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].index = i
	q.heap[j].index = j
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

// down sifts index i downward and reports whether it moved.
func (q *Queue) down(i int) bool {
	start := i
	n := len(q.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && q.less(right, left) {
			child = right
		}
		if !q.less(child, i) {
			break
		}
		q.swap(i, child)
		i = child
	}
	return i > start
}
