// Package admission implements the per-type, deadline-aware overload
// controller the dispatcher threads through both datapaths. Every
// request type carries an admission budget — a bound on how long a
// request of that type may wait in queue before the time spent
// queueing has already consumed its latency SLO. Requests whose
// accumulated queue delay exceeds their budget are shed at enqueue
// and again at dispatch (the delay keeps accruing while queued), and
// when the dispatcher's queue-delay EWMA signals sustained overload
// the typed queues are trimmed in reverse-reservation order:
// unknown/long types first, short-type reservations last, so the
// paper's short-request tail guarantee degrades gracefully instead of
// collapsing when offered load exceeds capacity.
//
// The controller is deliberately passive: it owns no goroutines and
// takes no locks. The dispatcher calls it single-threaded from the
// scheduling loop; the per-slot counters and the EWMA are atomics
// only so Snapshot and the metrics exporter can read them from other
// goroutines.
package admission

import (
	"math"
	"sync/atomic"
	"time"
)

// Defaults used when the corresponding Config field is zero.
const (
	// DefaultAutoMult scales a type's profiled mean service time into
	// an auto-derived budget: a request that has already queued for
	// 20x its own service time has blown any plausible tail SLO.
	DefaultAutoMult = 20.0
	// DefaultMinBudget floors auto-derived budgets so microsecond
	// services don't produce budgets below scheduler-tick noise.
	DefaultMinBudget = time.Millisecond
	// DefaultEWMAAlpha is the queue-delay EWMA smoothing weight.
	DefaultEWMAAlpha = 0.05
	// DefaultRetryAfterMin / Max clamp the retry-after hint sent on
	// NACKs so clients neither hammer (min) nor stall (max).
	DefaultRetryAfterMin = time.Millisecond
	DefaultRetryAfterMax = 100 * time.Millisecond
)

// Config declares the admission policy for one server.
type Config struct {
	// Budgets holds per-type admission budgets, indexed by type ID. A
	// zero (or missing) entry means the budget is auto-derived from
	// the DARC profiler's service-time estimate for that type:
	// AutoMult x profiled mean, floored at MinBudget. Until the
	// profiler has an estimate the auto budget is zero and the type
	// is never deadline-shed, so cold-start traffic is not punished.
	Budgets []time.Duration
	// UnknownBudget bounds queue delay for unclassified requests. If
	// zero it auto-derives to the largest typed budget (the spillway
	// is at least as tolerant as the slowest known type).
	UnknownBudget time.Duration
	// AutoMult overrides DefaultAutoMult when > 0.
	AutoMult float64
	// MinBudget overrides DefaultMinBudget when > 0.
	MinBudget time.Duration
	// OverloadDelay is the queue-delay EWMA level above which the
	// dispatcher declares sustained overload and starts trimming in
	// reverse-reservation order. If zero it auto-derives to half the
	// smallest effective budget: overload shedding kicks in before
	// deadline shedding becomes the norm.
	OverloadDelay time.Duration
	// EWMAAlpha overrides DefaultEWMAAlpha when > 0.
	EWMAAlpha float64
	// RetryAfterMin / RetryAfterMax clamp the NACK retry-after hint;
	// zero values take the defaults.
	RetryAfterMin time.Duration
	RetryAfterMax time.Duration
}

// ShedReason discriminates why a request was refused.
type ShedReason uint8

const (
	// ShedDeadline: the request's own queue delay exceeded its budget.
	ShedDeadline ShedReason = iota
	// ShedOverload: trimmed by the reverse-reservation overload pass
	// (or refused because its queue was full while overloaded).
	ShedOverload
	// ShedLost: an admitted request that never completed — worker
	// crash or shutdown drain. Kept separate so the conservation
	// identity accepted == completed + deadline + overload + lost
	// stays exact even under chaos.
	ShedLost
)

// slotStats holds one type's admission counters. Padded use is not
// needed: these are bumped only from the dispatcher goroutine.
type slotStats struct {
	accepted     atomic.Uint64
	completed    atomic.Uint64
	shedDeadline atomic.Uint64
	shedOverload atomic.Uint64
	shedLost     atomic.Uint64
}

// Controller is the runtime half of Config, bound to one server. The
// final slot (index numTypes) accounts the unknown/unclassified type.
type Controller struct {
	cfg      Config
	numTypes int
	meanOf   func(int) time.Duration // profiled mean service time, 0 if unprofiled

	ewmaNs   atomic.Int64 // queue-delay EWMA, nanoseconds
	slots    []slotStats
	alpha    float64
	autoMult float64
	minB     time.Duration
	raMin    time.Duration
	raMax    time.Duration

	// Cross-goroutine mirrors: Budget/overloadDelay read the profiler
	// through meanOf, which is only safe on the dispatcher goroutine.
	// The dispatcher refreshes these atomics as it computes, so
	// Snapshot and the metrics exporter never touch the profiler.
	budgetNs      []atomic.Int64 // per slot, last = unknown
	threshNs      atomic.Int64   // overload threshold
	threshRefresh int            // dispatcher-only countdown

	// explicitNs holds the operator-declared budgets (0 = auto),
	// per slot with the unknown budget last. Atomic, not plain Config
	// fields, because live reconfiguration replaces budgets while the
	// metrics exporter reads CachedBudget from another goroutine.
	explicitNs []atomic.Int64
}

// New builds a controller for numTypes request types. meanOf reports
// the profiler's current mean service estimate for a type (zero when
// unprofiled); it backs auto-derived budgets and backlog caps.
func New(cfg Config, numTypes int, meanOf func(int) time.Duration) *Controller {
	c := &Controller{
		numTypes: numTypes,
		meanOf:   meanOf,
		slots:    make([]slotStats, numTypes+1),
	}
	c.budgetNs = make([]atomic.Int64, numTypes+1)
	c.explicitNs = make([]atomic.Int64, numTypes+1)
	c.applyConfig(cfg)
	// Seed the cross-goroutine threshold before the dispatcher runs
	// (construction happens before any concurrent Observe).
	c.threshNs.Store(int64(c.overloadDelay()))
	return c
}

// applyConfig installs cfg's derived policy knobs and the explicit
// budget mirrors. Called from New and (dispatcher-only) from Update.
func (c *Controller) applyConfig(cfg Config) {
	c.cfg = cfg
	c.alpha = cfg.EWMAAlpha
	c.autoMult = cfg.AutoMult
	c.minB = cfg.MinBudget
	c.raMin = cfg.RetryAfterMin
	c.raMax = cfg.RetryAfterMax
	if c.alpha <= 0 || c.alpha > 1 {
		c.alpha = DefaultEWMAAlpha
	}
	if c.autoMult <= 0 {
		c.autoMult = DefaultAutoMult
	}
	if c.minB <= 0 {
		c.minB = DefaultMinBudget
	}
	if c.raMin <= 0 {
		c.raMin = DefaultRetryAfterMin
	}
	if c.raMax <= 0 {
		c.raMax = DefaultRetryAfterMax
	}
	if c.raMax < c.raMin {
		c.raMax = c.raMin
	}
	for t := 0; t < c.numTypes; t++ {
		var b time.Duration
		if t < len(cfg.Budgets) && cfg.Budgets[t] > 0 {
			b = cfg.Budgets[t]
		}
		c.explicitNs[t].Store(int64(b))
	}
	var ub time.Duration
	if cfg.UnknownBudget > 0 {
		ub = cfg.UnknownBudget
	}
	c.explicitNs[c.numTypes].Store(int64(ub))
}

// Update replaces the admission policy at runtime. Dispatcher-only,
// like every mutating method: the live reconfiguration path applies it
// from the scheduling loop between requests, so budget checks never
// observe a half-installed policy. The ledger (accepted/completed/
// shed counters) is preserved — conservation identities span the
// update.
func (c *Controller) Update(cfg Config) {
	c.applyConfig(cfg)
	c.threshRefresh = 0 // next ObserveQueueDelay refreshes the mirror
	c.threshNs.Store(int64(c.overloadDelay()))
}

// Config returns the controller's current declared policy
// (dispatcher-only: Update replaces it concurrently otherwise).
func (c *Controller) Config() Config { return c.cfg }

// OverloadThreshold reports the current sustained-overload trim
// threshold from its atomic mirror; safe from any goroutine.
func (c *Controller) OverloadThreshold() time.Duration {
	return time.Duration(c.threshNs.Load())
}

// NumTypes reports the typed slot count (the unknown slot is extra).
func (c *Controller) NumTypes() int { return c.numTypes }

// slot maps a type ID (or a negative unknown marker) to its counter
// slot.
func (c *Controller) slot(typ int) int {
	if typ < 0 || typ >= c.numTypes {
		return c.numTypes
	}
	return typ
}

// Budget reports the admission budget for typ: the explicit Config
// entry if set, else AutoMult x the profiled mean floored at
// MinBudget. Zero means "no budget yet" — the type is not shed on
// deadline until the profiler has seen it, so the c-FCFS startup
// window and cold types are never punished for lacking a profile.
// Dispatcher-only (it reads the profiler); other goroutines use
// CachedBudget.
func (c *Controller) Budget(typ int) time.Duration {
	if typ < 0 || typ >= c.numTypes {
		b := c.unknownBudget()
		c.budgetNs[c.numTypes].Store(int64(b))
		return b
	}
	if b := time.Duration(c.explicitNs[typ].Load()); b > 0 {
		return b
	}
	mean := c.meanOf(typ)
	if mean <= 0 {
		return 0
	}
	b := time.Duration(float64(mean) * c.autoMult)
	if b < c.minB {
		b = c.minB
	}
	c.budgetNs[typ].Store(int64(b))
	return b
}

// CachedBudget reports the last effective budget the dispatcher
// computed for slot i (the final slot is the unknown type). Explicit
// Config budgets are returned directly; auto-derived ones come from
// the dispatcher's atomic mirror, so this is safe from any goroutine.
func (c *Controller) CachedBudget(i int) time.Duration {
	if i < 0 || i > c.numTypes {
		return 0
	}
	if b := time.Duration(c.explicitNs[i].Load()); b > 0 {
		return b
	}
	return time.Duration(c.budgetNs[i].Load())
}

// unknownBudget is the explicit UnknownBudget, else the largest typed
// budget currently in effect.
func (c *Controller) unknownBudget() time.Duration {
	if b := time.Duration(c.explicitNs[c.numTypes].Load()); b > 0 {
		return b
	}
	var max time.Duration
	for t := 0; t < c.numTypes; t++ {
		if b := c.Budget(t); b > max {
			max = b
		}
	}
	return max
}

// ExceedsBudget reports whether a request of type typ that has queued
// for waited must be shed on deadline. A zero budget admits always.
func (c *Controller) ExceedsBudget(typ int, waited time.Duration) bool {
	b := c.Budget(typ)
	return b > 0 && waited > b
}

// overloadDelay is the EWMA threshold: the configured value, else
// half the smallest nonzero effective budget, else half MinBudget.
func (c *Controller) overloadDelay() time.Duration {
	if c.cfg.OverloadDelay > 0 {
		return c.cfg.OverloadDelay
	}
	min := time.Duration(math.MaxInt64)
	for t := 0; t < c.numTypes; t++ {
		if b := c.Budget(t); b > 0 && b < min {
			min = b
		}
	}
	if min == time.Duration(math.MaxInt64) {
		min = c.minB
	}
	return min / 2
}

// ObserveQueueDelay feeds one dispatched (or deadline-shed) request's
// queue delay into the overload EWMA. Called only by the dispatcher.
func (c *Controller) ObserveQueueDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	prev := c.ewmaNs.Load()
	next := int64(float64(prev)*(1-c.alpha) + float64(d)*c.alpha)
	c.ewmaNs.Store(next)
	// Auto-derived budgets track the profiler, so the overload
	// threshold drifts too; refresh its atomic mirror periodically
	// (every observation would be numTypes profiler reads per
	// dispatch for no precision gain).
	if c.threshRefresh--; c.threshRefresh <= 0 {
		c.threshRefresh = 256
		c.threshNs.Store(int64(c.overloadDelay()))
	}
}

// QueueDelayEWMA reports the current smoothed queue delay.
func (c *Controller) QueueDelayEWMA() time.Duration {
	return time.Duration(c.ewmaNs.Load())
}

// Overloaded reports whether the smoothed queue delay signals
// sustained overload, triggering the reverse-reservation trim. Reads
// only atomics (the dispatcher calls it every loop iteration).
func (c *Controller) Overloaded() bool {
	return c.ewmaNs.Load() > c.threshNs.Load()
}

// RetryAfter is the backoff hint stamped on NACKs: the current
// queue-delay EWMA (roughly how far behind the server is running),
// clamped to [RetryAfterMin, RetryAfterMax].
func (c *Controller) RetryAfter() time.Duration {
	d := c.QueueDelayEWMA()
	if d < c.raMin {
		return c.raMin
	}
	if d > c.raMax {
		return c.raMax
	}
	return d
}

// BacklogCap bounds how many requests of typ the overload trim leaves
// queued: budget / profiled mean (a deeper backlog is guaranteed to
// blow the budget anyway), floored at 1 so the type keeps making
// progress. Unknown or unprofiled types get 0 — under sustained
// overload the spillway is drained entirely, matching the
// reverse-reservation shed order (unknown first).
func (c *Controller) BacklogCap(typ int) int {
	if typ < 0 || typ >= c.numTypes {
		return 0
	}
	mean := c.meanOf(typ)
	b := c.Budget(typ)
	if mean <= 0 || b <= 0 {
		return 0
	}
	n := int(b / mean)
	if n < 1 {
		n = 1
	}
	return n
}

// NoteAccepted counts a request entering admission accounting. Every
// accepted request is eventually counted exactly once as completed or
// shed; conservation tests assert the identity is exact.
func (c *Controller) NoteAccepted(typ int) {
	c.slots[c.slot(typ)].accepted.Add(1)
}

// NoteCompleted counts a request whose worker finished it.
func (c *Controller) NoteCompleted(typ int) {
	c.slots[c.slot(typ)].completed.Add(1)
}

// NoteShed counts a refused (or lost) request under its reason.
func (c *Controller) NoteShed(typ int, reason ShedReason) {
	s := &c.slots[c.slot(typ)]
	switch reason {
	case ShedDeadline:
		s.shedDeadline.Add(1)
	case ShedOverload:
		s.shedOverload.Add(1)
	default:
		s.shedLost.Add(1)
	}
}

// SlotStats is one type's admission ledger.
type SlotStats struct {
	Accepted     uint64
	Completed    uint64
	ShedDeadline uint64
	ShedOverload uint64
	ShedLost     uint64
}

// Shed is the slot's total refused count.
func (s SlotStats) Shed() uint64 { return s.ShedDeadline + s.ShedOverload + s.ShedLost }

// Stats is a point-in-time controller snapshot. Slots[NumTypes] is
// the unknown/unclassified slot.
type Stats struct {
	Slots          []SlotStats
	QueueDelayEWMA time.Duration
	Overloaded     bool
}

// Totals sums the per-slot ledgers.
func (st Stats) Totals() SlotStats {
	var t SlotStats
	for _, s := range st.Slots {
		t.Accepted += s.Accepted
		t.Completed += s.Completed
		t.ShedDeadline += s.ShedDeadline
		t.ShedOverload += s.ShedOverload
		t.ShedLost += s.ShedLost
	}
	return t
}

// Snapshot reads the counters. Safe to call from any goroutine; the
// per-slot values are individually (not mutually) consistent.
func (c *Controller) Snapshot() Stats {
	st := Stats{
		Slots:          make([]SlotStats, len(c.slots)),
		QueueDelayEWMA: c.QueueDelayEWMA(),
	}
	st.Overloaded = c.Overloaded()
	for i := range c.slots {
		s := &c.slots[i]
		st.Slots[i] = SlotStats{
			Accepted:     s.accepted.Load(),
			Completed:    s.completed.Load(),
			ShedDeadline: s.shedDeadline.Load(),
			ShedOverload: s.shedOverload.Load(),
			ShedLost:     s.shedLost.Load(),
		}
	}
	return st
}
