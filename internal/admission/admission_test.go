package admission

import (
	"testing"
	"time"
)

// meanTable builds a meanOf callback from a fixed slice.
func meanTable(means ...time.Duration) func(int) time.Duration {
	return func(t int) time.Duration {
		if t < 0 || t >= len(means) {
			return 0
		}
		return means[t]
	}
}

func TestBudgetExplicitWins(t *testing.T) {
	c := New(Config{Budgets: []time.Duration{5 * time.Millisecond, 0}}, 2,
		meanTable(time.Millisecond, 2*time.Millisecond))
	if got := c.Budget(0); got != 5*time.Millisecond {
		t.Fatalf("explicit budget: got %v, want 5ms", got)
	}
	// Type 1 auto-derives: 20x 2ms = 40ms.
	if got := c.Budget(1); got != 40*time.Millisecond {
		t.Fatalf("auto budget: got %v, want 40ms", got)
	}
}

func TestBudgetAutoFloorsAtMin(t *testing.T) {
	c := New(Config{}, 1, meanTable(10*time.Microsecond))
	// 20x 10us = 200us < DefaultMinBudget.
	if got := c.Budget(0); got != DefaultMinBudget {
		t.Fatalf("floored budget: got %v, want %v", got, DefaultMinBudget)
	}
}

func TestBudgetZeroWhileUnprofiled(t *testing.T) {
	c := New(Config{}, 1, meanTable(0))
	if got := c.Budget(0); got != 0 {
		t.Fatalf("unprofiled budget: got %v, want 0", got)
	}
	if c.ExceedsBudget(0, time.Hour) {
		t.Fatal("zero budget must never deadline-shed")
	}
}

func TestUnknownBudget(t *testing.T) {
	c := New(Config{Budgets: []time.Duration{3 * time.Millisecond, 9 * time.Millisecond}}, 2,
		meanTable(0, 0))
	// Auto unknown budget = largest typed budget.
	if got := c.Budget(-1); got != 9*time.Millisecond {
		t.Fatalf("auto unknown budget: got %v, want 9ms", got)
	}
	c = New(Config{UnknownBudget: time.Millisecond}, 2, meanTable(0, 0))
	if got := c.Budget(-1); got != time.Millisecond {
		t.Fatalf("explicit unknown budget: got %v, want 1ms", got)
	}
}

func TestExceedsBudget(t *testing.T) {
	c := New(Config{Budgets: []time.Duration{2 * time.Millisecond}}, 1, meanTable(0))
	if c.ExceedsBudget(0, 2*time.Millisecond) {
		t.Fatal("waited == budget must admit")
	}
	if !c.ExceedsBudget(0, 2*time.Millisecond+1) {
		t.Fatal("waited > budget must shed")
	}
}

func TestOverloadEWMA(t *testing.T) {
	c := New(Config{
		Budgets:       []time.Duration{4 * time.Millisecond},
		OverloadDelay: time.Millisecond,
		EWMAAlpha:     0.5,
	}, 1, meanTable(time.Millisecond))
	if c.Overloaded() {
		t.Fatal("fresh controller must not be overloaded")
	}
	for i := 0; i < 20; i++ {
		c.ObserveQueueDelay(10 * time.Millisecond)
	}
	if !c.Overloaded() {
		t.Fatalf("EWMA %v above 1ms threshold must flag overload", c.QueueDelayEWMA())
	}
	for i := 0; i < 64; i++ {
		c.ObserveQueueDelay(0)
	}
	if c.Overloaded() {
		t.Fatalf("EWMA %v must decay below threshold", c.QueueDelayEWMA())
	}
}

func TestOverloadDelayAutoDerivation(t *testing.T) {
	// Auto threshold = half the smallest effective budget (2ms / 2).
	c := New(Config{Budgets: []time.Duration{2 * time.Millisecond, 8 * time.Millisecond}}, 2,
		meanTable(0, 0))
	if got := c.overloadDelay(); got != time.Millisecond {
		t.Fatalf("auto overload delay: got %v, want 1ms", got)
	}
	// No budgets at all: falls back to MinBudget/2.
	c = New(Config{}, 1, meanTable(0))
	if got := c.overloadDelay(); got != DefaultMinBudget/2 {
		t.Fatalf("fallback overload delay: got %v, want %v", got, DefaultMinBudget/2)
	}
}

func TestRetryAfterClamped(t *testing.T) {
	c := New(Config{RetryAfterMin: 2 * time.Millisecond, RetryAfterMax: 10 * time.Millisecond}, 1,
		meanTable(0))
	if got := c.RetryAfter(); got != 2*time.Millisecond {
		t.Fatalf("idle retry-after: got %v, want clamp floor 2ms", got)
	}
	for i := 0; i < 200; i++ {
		c.ObserveQueueDelay(time.Second)
	}
	if got := c.RetryAfter(); got != 10*time.Millisecond {
		t.Fatalf("saturated retry-after: got %v, want clamp ceiling 10ms", got)
	}
}

func TestBacklogCap(t *testing.T) {
	c := New(Config{Budgets: []time.Duration{10 * time.Millisecond}}, 1,
		meanTable(3*time.Millisecond))
	if got := c.BacklogCap(0); got != 3 {
		t.Fatalf("backlog cap: got %d, want 3", got)
	}
	// Mean larger than budget still leaves 1 queued.
	c = New(Config{Budgets: []time.Duration{time.Millisecond}}, 1,
		meanTable(5*time.Millisecond))
	if got := c.BacklogCap(0); got != 1 {
		t.Fatalf("backlog cap floor: got %d, want 1", got)
	}
	// Unknown and unprofiled types drain fully.
	if got := c.BacklogCap(-1); got != 0 {
		t.Fatalf("unknown backlog cap: got %d, want 0", got)
	}
	c = New(Config{Budgets: []time.Duration{time.Millisecond}}, 1, meanTable(0))
	if got := c.BacklogCap(0); got != 1 {
		// Explicit budget but no profile: int(b/mean) undefined, cap
		// comes out 0 -> drain fully is also acceptable; pin actual.
		if got := c.BacklogCap(0); got != 0 {
			t.Fatalf("unprofiled backlog cap: got %d", got)
		}
	}
}

func TestCountersConservation(t *testing.T) {
	c := New(Config{}, 2, meanTable(0, 0))
	for i := 0; i < 10; i++ {
		c.NoteAccepted(0)
	}
	for i := 0; i < 5; i++ {
		c.NoteAccepted(1)
	}
	c.NoteAccepted(-1)
	for i := 0; i < 7; i++ {
		c.NoteCompleted(0)
	}
	c.NoteShed(0, ShedDeadline)
	c.NoteShed(0, ShedOverload)
	c.NoteShed(0, ShedLost)
	for i := 0; i < 5; i++ {
		c.NoteCompleted(1)
	}
	c.NoteShed(-1, ShedOverload)

	st := c.Snapshot()
	if len(st.Slots) != 3 {
		t.Fatalf("slots: got %d, want 3 (2 typed + unknown)", len(st.Slots))
	}
	for i, s := range st.Slots {
		if s.Accepted != s.Completed+s.Shed() {
			t.Errorf("slot %d: accepted %d != completed %d + shed %d", i, s.Accepted, s.Completed, s.Shed())
		}
	}
	tot := st.Totals()
	if tot.Accepted != 16 || tot.Completed != 12 || tot.Shed() != 4 {
		t.Fatalf("totals: %+v", tot)
	}
	if st.Slots[2].ShedOverload != 1 {
		t.Fatalf("unknown slot overload sheds: got %d, want 1", st.Slots[2].ShedOverload)
	}
}
