package admission

import (
	"sync/atomic"
	"testing"
	"time"
)

// meanTable builds a meanOf callback from a fixed slice.
func meanTable(means ...time.Duration) func(int) time.Duration {
	return func(t int) time.Duration {
		if t < 0 || t >= len(means) {
			return 0
		}
		return means[t]
	}
}

func TestBudgetExplicitWins(t *testing.T) {
	c := New(Config{Budgets: []time.Duration{5 * time.Millisecond, 0}}, 2,
		meanTable(time.Millisecond, 2*time.Millisecond))
	if got := c.Budget(0); got != 5*time.Millisecond {
		t.Fatalf("explicit budget: got %v, want 5ms", got)
	}
	// Type 1 auto-derives: 20x 2ms = 40ms.
	if got := c.Budget(1); got != 40*time.Millisecond {
		t.Fatalf("auto budget: got %v, want 40ms", got)
	}
}

func TestBudgetAutoFloorsAtMin(t *testing.T) {
	c := New(Config{}, 1, meanTable(10*time.Microsecond))
	// 20x 10us = 200us < DefaultMinBudget.
	if got := c.Budget(0); got != DefaultMinBudget {
		t.Fatalf("floored budget: got %v, want %v", got, DefaultMinBudget)
	}
}

func TestBudgetZeroWhileUnprofiled(t *testing.T) {
	c := New(Config{}, 1, meanTable(0))
	if got := c.Budget(0); got != 0 {
		t.Fatalf("unprofiled budget: got %v, want 0", got)
	}
	if c.ExceedsBudget(0, time.Hour) {
		t.Fatal("zero budget must never deadline-shed")
	}
}

func TestUnknownBudget(t *testing.T) {
	c := New(Config{Budgets: []time.Duration{3 * time.Millisecond, 9 * time.Millisecond}}, 2,
		meanTable(0, 0))
	// Auto unknown budget = largest typed budget.
	if got := c.Budget(-1); got != 9*time.Millisecond {
		t.Fatalf("auto unknown budget: got %v, want 9ms", got)
	}
	c = New(Config{UnknownBudget: time.Millisecond}, 2, meanTable(0, 0))
	if got := c.Budget(-1); got != time.Millisecond {
		t.Fatalf("explicit unknown budget: got %v, want 1ms", got)
	}
}

func TestExceedsBudget(t *testing.T) {
	c := New(Config{Budgets: []time.Duration{2 * time.Millisecond}}, 1, meanTable(0))
	if c.ExceedsBudget(0, 2*time.Millisecond) {
		t.Fatal("waited == budget must admit")
	}
	if !c.ExceedsBudget(0, 2*time.Millisecond+1) {
		t.Fatal("waited > budget must shed")
	}
}

func TestOverloadEWMA(t *testing.T) {
	c := New(Config{
		Budgets:       []time.Duration{4 * time.Millisecond},
		OverloadDelay: time.Millisecond,
		EWMAAlpha:     0.5,
	}, 1, meanTable(time.Millisecond))
	if c.Overloaded() {
		t.Fatal("fresh controller must not be overloaded")
	}
	for i := 0; i < 20; i++ {
		c.ObserveQueueDelay(10 * time.Millisecond)
	}
	if !c.Overloaded() {
		t.Fatalf("EWMA %v above 1ms threshold must flag overload", c.QueueDelayEWMA())
	}
	for i := 0; i < 64; i++ {
		c.ObserveQueueDelay(0)
	}
	if c.Overloaded() {
		t.Fatalf("EWMA %v must decay below threshold", c.QueueDelayEWMA())
	}
}

func TestOverloadDelayAutoDerivation(t *testing.T) {
	// Auto threshold = half the smallest effective budget (2ms / 2).
	c := New(Config{Budgets: []time.Duration{2 * time.Millisecond, 8 * time.Millisecond}}, 2,
		meanTable(0, 0))
	if got := c.overloadDelay(); got != time.Millisecond {
		t.Fatalf("auto overload delay: got %v, want 1ms", got)
	}
	// No budgets at all: falls back to MinBudget/2.
	c = New(Config{}, 1, meanTable(0))
	if got := c.overloadDelay(); got != DefaultMinBudget/2 {
		t.Fatalf("fallback overload delay: got %v, want %v", got, DefaultMinBudget/2)
	}
}

func TestRetryAfterClamped(t *testing.T) {
	c := New(Config{RetryAfterMin: 2 * time.Millisecond, RetryAfterMax: 10 * time.Millisecond}, 1,
		meanTable(0))
	if got := c.RetryAfter(); got != 2*time.Millisecond {
		t.Fatalf("idle retry-after: got %v, want clamp floor 2ms", got)
	}
	for i := 0; i < 200; i++ {
		c.ObserveQueueDelay(time.Second)
	}
	if got := c.RetryAfter(); got != 10*time.Millisecond {
		t.Fatalf("saturated retry-after: got %v, want clamp ceiling 10ms", got)
	}
}

func TestBacklogCap(t *testing.T) {
	c := New(Config{Budgets: []time.Duration{10 * time.Millisecond}}, 1,
		meanTable(3*time.Millisecond))
	if got := c.BacklogCap(0); got != 3 {
		t.Fatalf("backlog cap: got %d, want 3", got)
	}
	// Mean larger than budget still leaves 1 queued.
	c = New(Config{Budgets: []time.Duration{time.Millisecond}}, 1,
		meanTable(5*time.Millisecond))
	if got := c.BacklogCap(0); got != 1 {
		t.Fatalf("backlog cap floor: got %d, want 1", got)
	}
	// Unknown and unprofiled types drain fully.
	if got := c.BacklogCap(-1); got != 0 {
		t.Fatalf("unknown backlog cap: got %d, want 0", got)
	}
	c = New(Config{Budgets: []time.Duration{time.Millisecond}}, 1, meanTable(0))
	if got := c.BacklogCap(0); got != 1 {
		// Explicit budget but no profile: int(b/mean) undefined, cap
		// comes out 0 -> drain fully is also acceptable; pin actual.
		if got := c.BacklogCap(0); got != 0 {
			t.Fatalf("unprofiled backlog cap: got %d", got)
		}
	}
}

func TestCountersConservation(t *testing.T) {
	c := New(Config{}, 2, meanTable(0, 0))
	for i := 0; i < 10; i++ {
		c.NoteAccepted(0)
	}
	for i := 0; i < 5; i++ {
		c.NoteAccepted(1)
	}
	c.NoteAccepted(-1)
	for i := 0; i < 7; i++ {
		c.NoteCompleted(0)
	}
	c.NoteShed(0, ShedDeadline)
	c.NoteShed(0, ShedOverload)
	c.NoteShed(0, ShedLost)
	for i := 0; i < 5; i++ {
		c.NoteCompleted(1)
	}
	c.NoteShed(-1, ShedOverload)

	st := c.Snapshot()
	if len(st.Slots) != 3 {
		t.Fatalf("slots: got %d, want 3 (2 typed + unknown)", len(st.Slots))
	}
	for i, s := range st.Slots {
		if s.Accepted != s.Completed+s.Shed() {
			t.Errorf("slot %d: accepted %d != completed %d + shed %d", i, s.Accepted, s.Completed, s.Shed())
		}
	}
	tot := st.Totals()
	if tot.Accepted != 16 || tot.Completed != 12 || tot.Shed() != 4 {
		t.Fatalf("totals: %+v", tot)
	}
	if st.Slots[2].ShedOverload != 1 {
		t.Fatalf("unknown slot overload sheds: got %d, want 1", st.Slots[2].ShedOverload)
	}
}

// TestColdStartWarmTransition covers the controller's cold-start
// contract end to end: an auto-budgeted type is never deadline-shed
// while the profiler has no estimate, and the first profile estimate
// flips it to normal budget enforcement without touching the ledger.
func TestColdStartWarmTransition(t *testing.T) {
	var mean atomic.Int64 // profiled mean, installed mid-test
	c := New(Config{}, 1, func(typ int) time.Duration {
		return time.Duration(mean.Load())
	})

	// Cold: no profile, auto budget 0, arbitrarily old requests admit.
	if c.Budget(0) != 0 {
		t.Fatalf("cold budget: got %v, want 0", c.Budget(0))
	}
	for _, waited := range []time.Duration{0, time.Second, time.Hour} {
		if c.ExceedsBudget(0, waited) {
			t.Fatalf("cold start shed a request that waited %v", waited)
		}
	}
	c.NoteAccepted(0)
	c.NoteCompleted(0)

	// Warm: the profiler reports 1ms, so the budget derives to
	// AutoMult x 1ms = 20ms and enforcement starts.
	mean.Store(int64(time.Millisecond))
	want := time.Duration(float64(time.Millisecond) * DefaultAutoMult)
	if got := c.Budget(0); got != want {
		t.Fatalf("warm budget: got %v, want %v", got, want)
	}
	if c.ExceedsBudget(0, want) {
		t.Fatal("warm: waited == budget must still admit")
	}
	if !c.ExceedsBudget(0, want+1) {
		t.Fatal("warm: over-budget request must shed")
	}
	// The warm transition must not disturb the ledger.
	st := c.Snapshot()
	if st.Slots[0].Accepted != 1 || st.Slots[0].Completed != 1 {
		t.Fatalf("ledger disturbed by warm transition: %+v", st.Slots[0])
	}
}

// TestUpdateReplacesBudgets exercises the live-reconfiguration path:
// Update swaps the explicit budgets (visible to both the dispatcher's
// Budget and the exporter's CachedBudget), re-derives the overload
// threshold, and preserves the accounting ledger across the swap.
func TestUpdateReplacesBudgets(t *testing.T) {
	c := New(Config{Budgets: []time.Duration{2 * time.Millisecond, 0}}, 2,
		meanTable(0, 0))
	c.NoteAccepted(0)
	c.NoteShed(0, ShedDeadline)

	if got := c.CachedBudget(0); got != 2*time.Millisecond {
		t.Fatalf("pre-update cached budget: got %v, want 2ms", got)
	}
	c.Update(Config{
		Budgets:       []time.Duration{8 * time.Millisecond, 3 * time.Millisecond},
		UnknownBudget: 5 * time.Millisecond,
		OverloadDelay: time.Millisecond,
	})
	if got := c.Budget(0); got != 8*time.Millisecond {
		t.Fatalf("post-update budget(0): got %v, want 8ms", got)
	}
	if got := c.Budget(1); got != 3*time.Millisecond {
		t.Fatalf("post-update budget(1): got %v, want 3ms", got)
	}
	if got := c.Budget(-1); got != 5*time.Millisecond {
		t.Fatalf("post-update unknown budget: got %v, want 5ms", got)
	}
	for i, want := range []time.Duration{8 * time.Millisecond, 3 * time.Millisecond, 5 * time.Millisecond} {
		if got := c.CachedBudget(i); got != want {
			t.Fatalf("post-update CachedBudget(%d): got %v, want %v", i, got, want)
		}
	}
	if got := c.OverloadThreshold(); got != time.Millisecond {
		t.Fatalf("post-update overload threshold: got %v, want 1ms", got)
	}
	// A budget dropped back to auto (0) must clear the explicit slot.
	c.Update(Config{Budgets: []time.Duration{0, 3 * time.Millisecond}})
	if got := c.Budget(0); got != 0 {
		t.Fatalf("cleared budget must auto-derive from empty profile, got %v", got)
	}
	// The ledger survives both updates.
	st := c.Snapshot()
	if st.Slots[0].Accepted != 1 || st.Slots[0].ShedDeadline != 1 {
		t.Fatalf("ledger lost across Update: %+v", st.Slots[0])
	}
}
