package cluster

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/workload"
)

func testConfig() Config {
	return Config{
		Workers:        4,
		Mix:            workload.HighBimodal(),
		LoadFraction:   0.5,
		Duration:       50 * time.Millisecond,
		WarmupFraction: 0.1,
		Seed:           1,
		NewPolicy:      func() Policy { return &fifoPolicy{} },
	}
}

func TestRunBasics(t *testing.T) {
	res, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "test-fcfs" {
		t.Fatalf("policy name %q", res.Policy)
	}
	if res.Machine.Completed() == 0 {
		t.Fatal("no completions")
	}
	// Offered ~0.5 * 4/50.5µs ≈ 39.6k rps over 50ms ≈ 1980 arrivals.
	if res.Machine.Arrived() < 1000 || res.Machine.Arrived() > 3000 {
		t.Fatalf("arrivals %d out of plausible range", res.Machine.Arrived())
	}
	thr := res.Recorder.Throughput()
	if thr < res.OfferedRPS*0.8 || thr > res.OfferedRPS*1.2 {
		t.Fatalf("throughput %g vs offered %g", thr, res.OfferedRPS)
	}
	if len(res.WorkerBusy) != 4 {
		t.Fatalf("worker busy entries %d", len(res.WorkerBusy))
	}
	for i, b := range res.WorkerBusy {
		if b < 0 || b > 1 {
			t.Fatalf("worker %d busy fraction %g", i, b)
		}
	}
}

func TestRunDeterminism(t *testing.T) {
	a, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Machine.Completed() != b.Machine.Completed() {
		t.Fatalf("non-deterministic completions: %d vs %d", a.Machine.Completed(), b.Machine.Completed())
	}
	if a.Recorder.All().Latency.Quantile(0.999) != b.Recorder.All().Latency.Quantile(0.999) {
		t.Fatal("non-deterministic latency distribution")
	}
}

func TestRunSeedChangesOutcome(t *testing.T) {
	cfg := testConfig()
	a, _ := Run(cfg)
	cfg.Seed = 2
	b, _ := Run(cfg)
	if a.Machine.Arrived() == b.Machine.Arrived() &&
		a.Recorder.All().Latency.Quantile(0.5) == b.Recorder.All().Latency.Quantile(0.5) {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestRunAbsoluteRate(t *testing.T) {
	cfg := testConfig()
	cfg.Rate = 10000
	cfg.LoadFraction = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OfferedRPS != 10000 {
		t.Fatalf("offered %g", res.OfferedRPS)
	}
}

func TestRunValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.NewPolicy = nil },
		func(c *Config) { c.LoadFraction = 0; c.Rate = 0 },
		func(c *Config) { c.WarmupFraction = 1 },
		func(c *Config) { c.Mix = workload.Mix{} },
	}
	for i, mutate := range bad {
		cfg := testConfig()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunTrackWindow(t *testing.T) {
	cfg := testConfig()
	cfg.TrackWindow = 5 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Series == nil || res.Series.Windows() == 0 {
		t.Fatal("time series not populated")
	}
}

func TestRunOnCompleteHook(t *testing.T) {
	cfg := testConfig()
	var count int
	cfg.OnComplete = func(r *Request, at sim.Time) { count++ }
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(count) != res.Machine.Completed() {
		t.Fatalf("hook saw %d, machine completed %d", count, res.Machine.Completed())
	}
}

func TestRunPhasedSchedule(t *testing.T) {
	fast := workload.TwoType("A", time.Microsecond, 0.5, "B", 10*time.Microsecond)
	flipped := workload.TwoType("A", 10*time.Microsecond, 0.5, "B", time.Microsecond)
	sched := &workload.Schedule{Phases: []workload.Phase{
		{Mix: fast, Rate: 50_000, Duration: 25 * time.Millisecond},
		{Mix: flipped, Rate: 100_000, Duration: 25 * time.Millisecond},
	}}
	cfg := testConfig()
	cfg.Schedule = sched
	cfg.Duration = 50 * time.Millisecond

	var phase1, phase2 int
	cfg.OnComplete = func(r *Request, at sim.Time) {
		if at < 25*time.Millisecond {
			phase1++
		} else {
			phase2++
		}
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if phase1 == 0 || phase2 == 0 {
		t.Fatalf("phases saw %d/%d completions", phase1, phase2)
	}
	// Phase 2 doubles the arrival rate.
	if phase2 < phase1*3/2 {
		t.Fatalf("rate change not visible: %d vs %d", phase1, phase2)
	}
	_ = res
}

func TestRunInvalidSchedule(t *testing.T) {
	cfg := testConfig()
	cfg.Schedule = &workload.Schedule{}
	if _, err := Run(cfg); err == nil {
		t.Fatal("invalid schedule accepted")
	}
}
