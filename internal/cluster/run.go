package cluster

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config describes one simulated experiment run.
type Config struct {
	// Workers is the number of application cores (the paper's testbed
	// uses 14; its §2 simulation uses 16).
	Workers int
	// Mix is the workload; ignored if Schedule is set.
	Mix workload.Mix
	// LoadFraction expresses the arrival rate as a fraction of the
	// mix's peak load for this worker count. Ignored if Rate is set.
	LoadFraction float64
	// Rate is an absolute arrival rate in requests/second (overrides
	// LoadFraction when positive).
	Rate float64
	// Schedule, when non-nil, drives a phased workload (Figure 7) and
	// overrides Mix/LoadFraction/Rate.
	Schedule *workload.Schedule
	// Trace, when non-nil, replays a recorded arrival sequence instead
	// of generating Poisson arrivals; Mix is then only consulted for
	// type names (and may be zero).
	Trace *trace.Trace
	// Duration is the simulated horizon.
	Duration time.Duration
	// WarmupFraction of the horizon is discarded (paper: 10%).
	WarmupFraction float64
	// Seed makes the run deterministic.
	Seed uint64
	// RTT is the network round-trip added to the end-to-end latency
	// view (paper testbed: 10µs). Zero models the §2 ideal system.
	RTT time.Duration
	// NewPolicy constructs the scheduling policy under test.
	NewPolicy func() Policy
	// OnComplete optionally observes completions (time series).
	OnComplete func(r *Request, at sim.Time)
	// TrackWindow enables a built-in latency time series with the
	// given window width (0 disables it).
	TrackWindow time.Duration
}

// Result carries everything an experiment needs from one run.
type Result struct {
	Policy     string
	Recorder   *metrics.Recorder
	Machine    *Machine
	Series     *metrics.TimeSeries // nil unless Config.TrackWindow set
	OfferedRPS float64
	Duration   time.Duration
	// WorkerBusy is each worker's busy fraction over the run.
	WorkerBusy []float64
}

// Run executes one simulated experiment to completion.
func Run(cfg Config) (*Result, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("cluster: config needs positive Workers")
	}
	if cfg.NewPolicy == nil {
		return nil, fmt.Errorf("cluster: config needs NewPolicy")
	}
	if cfg.WarmupFraction < 0 || cfg.WarmupFraction >= 1 {
		return nil, fmt.Errorf("cluster: WarmupFraction %g out of [0,1)", cfg.WarmupFraction)
	}
	if cfg.Trace != nil {
		// Trace replay derives a missing Duration from the trace.
		return runTrace(cfg)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("cluster: config needs positive Duration")
	}
	var mix workload.Mix
	var rate float64
	if cfg.Schedule != nil {
		if err := cfg.Schedule.Validate(); err != nil {
			return nil, err
		}
		mix = cfg.Schedule.Phases[0].Mix
		rate = cfg.Schedule.Phases[0].Rate
	} else {
		mix = cfg.Mix
		rate = cfg.Rate
		if rate <= 0 {
			if cfg.LoadFraction <= 0 {
				return nil, fmt.Errorf("cluster: config needs Rate or LoadFraction")
			}
			rate = cfg.LoadFraction * mix.PeakLoad(cfg.Workers)
		}
	}

	s := sim.New()
	rec := metrics.NewRecorder(len(mix.Types), mix.TypeNames())
	warmup := time.Duration(float64(cfg.Duration) * cfg.WarmupFraction)
	rec.SetWarmup(warmup)
	rec.SetRTT(cfg.RTT)
	rec.SetSpan(warmup, cfg.Duration)

	policy := cfg.NewPolicy()
	m := NewMachine(s, cfg.Workers, policy, rec)

	var series *metrics.TimeSeries
	if cfg.TrackWindow > 0 {
		series = metrics.NewTimeSeries(cfg.TrackWindow)
	}
	m.OnComplete = func(r *Request, at sim.Time) {
		if series != nil {
			series.Record(at, r.Type, int64(at-r.Arrival))
		}
		if cfg.OnComplete != nil {
			cfg.OnComplete(r, at)
		}
	}

	src, err := workload.NewSource(mix, rate, rng.New(cfg.Seed))
	if err != nil {
		return nil, err
	}

	// Phase switching (if scheduled).
	if cfg.Schedule != nil {
		var acc time.Duration
		for i := 1; i < len(cfg.Schedule.Phases); i++ {
			acc += cfg.Schedule.Phases[i-1].Duration
			phase := cfg.Schedule.Phases[i]
			s.At(acc, func() {
				// SetMix only fails on malformed phases, which
				// Validate already rejected.
				if err := src.SetMix(phase.Mix); err != nil {
					panic(err)
				}
				src.SetRate(phase.Rate)
			})
		}
	}

	// Open-loop arrivals: each arrival schedules its successor.
	var scheduleNext func()
	scheduleNext = func() {
		a := src.Next()
		s.After(a.Gap, func() {
			m.Arrive(a.Type, a.Service)
			scheduleNext()
		})
	}
	scheduleNext()

	s.RunUntil(cfg.Duration)

	busy := make([]float64, cfg.Workers)
	for i := range busy {
		busy[i] = m.WorkerUtilization(i)
	}
	return &Result{
		Policy:     policy.Name(),
		Recorder:   rec,
		Machine:    m,
		Series:     series,
		OfferedRPS: rate,
		Duration:   cfg.Duration,
		WorkerBusy: busy,
	}, nil
}
