package cluster

import (
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/workload"
)

func sampleTrace() *trace.Trace {
	tr := &trace.Trace{}
	// 100 shorts at 10µs spacing with one long in the middle.
	for i := 0; i < 100; i++ {
		tr.Records = append(tr.Records, trace.Record{
			Offset:  time.Duration(i) * 10 * time.Microsecond,
			Type:    0,
			Service: time.Microsecond,
		})
	}
	tr.Records = append(tr.Records, trace.Record{
		Offset:  500 * time.Microsecond,
		Type:    1,
		Service: 200 * time.Microsecond,
	})
	tr.Sort()
	return tr
}

func TestTraceReplayBasics(t *testing.T) {
	tr := sampleTrace()
	res, err := Run(Config{
		Workers:   2,
		Trace:     tr,
		Mix:       workload.HighBimodal(), // names only
		NewPolicy: func() Policy { return &fifoPolicy{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine.Arrived() != uint64(tr.Len()) {
		t.Fatalf("arrived %d, trace has %d", res.Machine.Arrived(), tr.Len())
	}
	if res.Machine.Completed() != uint64(tr.Len()) {
		t.Fatalf("completed %d", res.Machine.Completed())
	}
	// Duration derived from the trace.
	if res.Duration < tr.Duration() {
		t.Fatalf("duration %v shorter than trace %v", res.Duration, tr.Duration())
	}
	if res.Recorder.Type(0).Completed != 100 || res.Recorder.Type(1).Completed != 1 {
		t.Fatalf("per-type counts %d/%d", res.Recorder.Type(0).Completed, res.Recorder.Type(1).Completed)
	}
}

func TestTraceReplayDeterministicAndPaired(t *testing.T) {
	tr := sampleTrace()
	run := func() *Result {
		res, err := Run(Config{
			Workers:   2,
			Trace:     tr,
			NewPolicy: func() Policy { return &fifoPolicy{} },
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Recorder.All().Latency.Quantile(0.999) != b.Recorder.All().Latency.Quantile(0.999) {
		t.Fatal("trace replay not deterministic")
	}
}

func TestTraceReplayExplicitDuration(t *testing.T) {
	tr := sampleTrace()
	res, err := Run(Config{
		Workers:   2,
		Trace:     tr,
		Duration:  300 * time.Microsecond, // cuts off the tail
		NewPolicy: func() Policy { return &fifoPolicy{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine.Arrived() >= uint64(tr.Len()) {
		t.Fatalf("all %d arrivals injected despite truncated horizon", tr.Len())
	}
}

func TestTraceReplayRejectsBadTraces(t *testing.T) {
	empty := &trace.Trace{}
	if _, err := Run(Config{Workers: 1, Trace: empty, NewPolicy: func() Policy { return &fifoPolicy{} }}); err == nil {
		t.Fatal("empty trace accepted")
	}
	bad := &trace.Trace{Records: []trace.Record{
		{Offset: 10, Type: 0, Service: 1},
		{Offset: 5, Type: 0, Service: 1},
	}}
	if _, err := Run(Config{Workers: 1, Trace: bad, NewPolicy: func() Policy { return &fifoPolicy{} }}); err == nil {
		t.Fatal("unsorted trace accepted")
	}
}

func TestTraceGenerateReplayRoundTrip(t *testing.T) {
	// Capture a Poisson trace from a workload source and replay it:
	// rates must survive the round trip.
	src, err := workload.NewSource(workload.HighBimodal(), 100_000, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(srcAdapter{src}, 50*time.Millisecond)
	if tr.Len() < 4000 || tr.Len() > 6000 {
		t.Fatalf("captured %d arrivals, want ~5000", tr.Len())
	}
	res, err := Run(Config{
		Workers:   14,
		Trace:     tr,
		Mix:       workload.HighBimodal(),
		NewPolicy: func() Policy { return &fifoPolicy{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine.Completed() == 0 {
		t.Fatal("no completions from replay")
	}
}

type srcAdapter struct{ s *workload.Source }

func (a srcAdapter) Next() (time.Duration, int, time.Duration) {
	arr := a.s.Next()
	return arr.Gap, arr.Type, arr.Service
}
