package cluster

import (
	"math"
	"testing"
	"time"

	"repro/internal/queueing"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// These tests cross-validate the discrete-event simulator against
// closed-form queueing theory: if c-FCFS under Poisson arrivals does
// not reproduce M/M/c and M/D/1 results, every paper comparison built
// on it is meaningless.

// runCFCFS simulates a c-FCFS machine and returns the mean measured
// waiting time (queue delay) in seconds.
func runCFCFS(t *testing.T, workers int, mix workload.Mix, ratePerSec float64, dur time.Duration) float64 {
	t.Helper()
	res, err := Run(Config{
		Workers:        workers,
		Mix:            mix,
		Rate:           ratePerSec,
		Duration:       dur,
		WarmupFraction: 0.1,
		Seed:           1234,
		NewPolicy:      func() Policy { return &fifoPolicy{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	return time.Duration(res.Recorder.All().QueueDelay.Mean()).Seconds()
}

func TestSimulatorMatchesMD1(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// Single worker, deterministic 10µs service, ρ=0.7.
	s := 10 * time.Microsecond
	mix := workload.Mix{
		Name:  "det",
		Types: []workload.TypeSpec{{Name: "x", Ratio: 1, Service: rng.Fixed(s)}},
	}
	lambda := 0.7 / s.Seconds()
	got := runCFCFS(t, 1, mix, lambda, 2*time.Second)
	want, err := queueing.MD1MeanWait(lambda, s.Seconds())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want)/want > 0.08 {
		t.Fatalf("M/D/1 mean wait: simulated %.3gs, analytic %.3gs", got, want)
	}
}

func TestSimulatorMatchesMM1(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// Exponential service, single worker, ρ=0.6.
	mean := 10 * time.Microsecond
	mix := workload.Mix{
		Name:  "exp",
		Types: []workload.TypeSpec{{Name: "x", Ratio: 1, Service: rng.Exponential(mean)}},
	}
	lambda := 0.6 / mean.Seconds()
	got := runCFCFS(t, 1, mix, lambda, 2*time.Second)
	want, err := queueing.MM1MeanWait(lambda, 1/mean.Seconds())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want)/want > 0.10 {
		t.Fatalf("M/M/1 mean wait: simulated %.3gs, analytic %.3gs", got, want)
	}
}

func TestSimulatorMatchesMMc(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// 4 workers, exponential service, ρ=0.8.
	mean := 10 * time.Microsecond
	mix := workload.Mix{
		Name:  "exp4",
		Types: []workload.TypeSpec{{Name: "x", Ratio: 1, Service: rng.Exponential(mean)}},
	}
	const c = 4
	lambda := 0.8 * c / mean.Seconds()
	got := runCFCFS(t, c, mix, lambda, 2*time.Second)
	want, err := queueing.MMcMeanWait(c, lambda, 1/mean.Seconds())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want)/want > 0.10 {
		t.Fatalf("M/M/%d mean wait: simulated %.3gs, analytic %.3gs", c, got, want)
	}
}

func TestSimulatorMatchesPKForBimodal(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// Single worker, High Bimodal service (1µs/100µs at 50/50), ρ=0.5:
	// the Pollaczek-Khinchine formula gives the exact M/G/1 wait.
	mix := workload.HighBimodal()
	es := mix.MeanService().Seconds()
	es2 := queueing.BimodalSecondMoment(1e-6, 100e-6, 0.5)
	lambda := 0.5 / es
	got := runCFCFS(t, 1, mix, lambda, 4*time.Second)
	want, err := queueing.MG1MeanWait(lambda, es, es2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want)/want > 0.10 {
		t.Fatalf("M/G/1 bimodal mean wait: simulated %.3gs, analytic %.3gs", got, want)
	}
}

// TestPoissonProcessStatistics validates the arrival source inside the
// simulator: the event-driven generator must produce the configured
// rate.
func TestPoissonProcessStatistics(t *testing.T) {
	s := sim.New()
	src, err := workload.NewSource(workload.HighBimodal(), 1e6, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	var schedule func()
	schedule = func() {
		a := src.Next()
		s.After(a.Gap, func() {
			count++
			schedule()
		})
	}
	schedule()
	s.RunUntil(100 * time.Millisecond)
	got := float64(count) / 0.1
	if math.Abs(got-1e6)/1e6 > 0.02 {
		t.Fatalf("arrival rate %.0f, want ~1e6", got)
	}
}
