package cluster

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// runTrace executes a trace-replay run: arrivals come verbatim from
// the recorded sequence instead of a generator.
func runTrace(cfg Config) (*Result, error) {
	tr := cfg.Trace
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if tr.Len() == 0 {
		return nil, fmt.Errorf("cluster: empty trace")
	}
	numTypes := tr.NumTypes()
	var names []string
	if len(cfg.Mix.Types) >= numTypes {
		names = cfg.Mix.TypeNames()
	}
	duration := cfg.Duration
	if duration <= 0 {
		duration = tr.Duration() + time.Millisecond
	}

	s := sim.New()
	rec := metrics.NewRecorder(numTypes, names)
	warmup := time.Duration(float64(duration) * cfg.WarmupFraction)
	rec.SetWarmup(warmup)
	rec.SetRTT(cfg.RTT)
	rec.SetSpan(warmup, duration)

	policy := cfg.NewPolicy()
	m := NewMachine(s, cfg.Workers, policy, rec)

	var series *metrics.TimeSeries
	if cfg.TrackWindow > 0 {
		series = metrics.NewTimeSeries(cfg.TrackWindow)
	}
	m.OnComplete = func(r *Request, at sim.Time) {
		if series != nil {
			series.Record(at, r.Type, int64(at-r.Arrival))
		}
		if cfg.OnComplete != nil {
			cfg.OnComplete(r, at)
		}
	}

	// Replay lazily: each arrival schedules its successor, so the
	// event queue stays small even for multi-million-record traces.
	var scheduleIdx func(i int)
	scheduleIdx = func(i int) {
		if i >= tr.Len() {
			return
		}
		r := tr.Records[i]
		s.At(r.Offset, func() {
			m.Arrive(r.Type, r.Service)
			scheduleIdx(i + 1)
		})
	}
	scheduleIdx(0)

	s.RunUntil(duration)

	busy := make([]float64, cfg.Workers)
	for i := range busy {
		busy[i] = m.WorkerUtilization(i)
	}
	return &Result{
		Policy:     policy.Name(),
		Recorder:   rec,
		Machine:    m,
		Series:     series,
		OfferedRPS: tr.Rate(),
		Duration:   duration,
		WorkerBusy: busy,
	}, nil
}
