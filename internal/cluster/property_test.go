// Property tests for the simulated cluster: request conservation
// (nothing is created or lost by the scheduling machinery) and a
// Little's-law sanity check tying the machine's queue occupancy to the
// recorder's latency view. External test package so real policies from
// internal/policy can be exercised without an import cycle.
package cluster_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/darc"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// testMix is a bimodal mix light enough that a 2-worker cluster at
// the chosen rates stays stable.
func testMix() workload.Mix {
	return workload.TwoType("short", 1*time.Microsecond, 0.5, "long", 10*time.Microsecond)
}

// genTrace builds a finite Poisson arrival trace.
func genTrace(t *testing.T, seed uint64, rate float64, duration time.Duration) *trace.Trace {
	t.Helper()
	src, err := workload.NewSource(testMix(), rate, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(adapter{src}, duration)
	if tr.Len() == 0 {
		t.Fatal("empty generated trace")
	}
	return tr
}

type adapter struct{ s *workload.Source }

func (a adapter) Next() (time.Duration, int, time.Duration) {
	arr := a.s.Next()
	return arr.Gap, arr.Type, arr.Service
}

// policies under test; DARC gets a window small enough to profile
// within the run.
func propertyPolicies(workers, types int) []struct {
	name string
	mk   func() cluster.Policy
} {
	return []struct {
		name string
		mk   func() cluster.Policy
	}{
		{"c-FCFS", func() cluster.Policy { return policy.NewCFCFS(0) }},
		{"SJF", func() cluster.Policy { return policy.NewSJF(0) }},
		{"DARC", func() cluster.Policy {
			cfg := darc.DefaultConfig(workers)
			cfg.MinWindowSamples = 200
			return policy.NewDARC(cfg, types, 0)
		}},
	}
}

// TestRequestConservation replays finite traces with a drain period
// long past the last arrival and asserts the accounting identity:
// every arrival is exactly one of completed, dropped, or in-flight —
// and after the drain, in-flight is zero.
func TestRequestConservation(t *testing.T) {
	const workers = 2
	for _, seed := range []uint64{1, 7, 42} {
		for _, pc := range propertyPolicies(workers, 2) {
			t.Run(fmt.Sprintf("%s/seed%d", pc.name, seed), func(t *testing.T) {
				tr := genTrace(t, seed, 150000, 50*time.Millisecond)
				res, err := cluster.Run(cluster.Config{
					Workers:   workers,
					Trace:     tr,
					Duration:  tr.Duration() + 100*time.Millisecond, // drain
					Seed:      seed,
					NewPolicy: pc.mk,
				})
				if err != nil {
					t.Fatal(err)
				}
				m := res.Machine
				if got := m.Arrived(); got != uint64(tr.Len()) {
					t.Fatalf("arrived %d, trace has %d records", got, tr.Len())
				}
				if inf := m.InFlight(); inf != 0 {
					t.Fatalf("%d requests still in flight after drain", inf)
				}
				if m.Completed()+m.Dropped() != m.Arrived() {
					t.Fatalf("completed %d + dropped %d != arrived %d",
						m.Completed(), m.Dropped(), m.Arrived())
				}
				// Unbounded queues: nothing may be shed.
				if m.Dropped() != 0 {
					t.Fatalf("unbounded queues dropped %d", m.Dropped())
				}
				// Recorder cross-check (no warmup configured): the
				// recorder saw every completion.
				all := res.Recorder.All()
				if all.Completed != m.Completed() {
					t.Fatalf("recorder completed %d, machine completed %d",
						all.Completed, m.Completed())
				}
			})
		}
	}
}

// TestRequestConservationWithDrops repeats the identity under a
// bounded queue at overload, where shedding must make up the balance.
func TestRequestConservationWithDrops(t *testing.T) {
	tr := genTrace(t, 3, 400000, 50*time.Millisecond) // ~2.2x capacity of 1 worker
	res, err := cluster.Run(cluster.Config{
		Workers:   1,
		Trace:     tr,
		Duration:  tr.Duration() + 100*time.Millisecond,
		Seed:      3,
		NewPolicy: func() cluster.Policy { return policy.NewCFCFS(64) },
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Machine
	if m.Dropped() == 0 {
		t.Fatal("overloaded bounded queue dropped nothing")
	}
	if inf := m.InFlight(); inf != 0 {
		t.Fatalf("%d in flight after drain", inf)
	}
	if m.Completed()+m.Dropped() != m.Arrived() {
		t.Fatalf("completed %d + dropped %d != arrived %d",
			m.Completed(), m.Dropped(), m.Arrived())
	}
}

// TestLittlesLaw runs a stable open system and checks L ≈ λ·W: the
// time-averaged number of requests in the system (sampled from the
// machine) against arrival rate times the recorder's mean sojourn.
// The identity is distribution-free, so it holds for every policy.
func TestLittlesLaw(t *testing.T) {
	const (
		workers  = 2
		rate     = 200000.0 // ~55% utilization of 2 workers at 5.5µs mean
		duration = 400 * time.Millisecond
		warmup   = 40 * time.Millisecond
		sample   = 20 * time.Microsecond
	)
	for _, seed := range []uint64{5, 11} {
		for _, pc := range propertyPolicies(workers, 2) {
			t.Run(fmt.Sprintf("%s/seed%d", pc.name, seed), func(t *testing.T) {
				src, err := workload.NewSource(testMix(), rate, rng.New(seed))
				if err != nil {
					t.Fatal(err)
				}
				s := sim.New()
				rec := metrics.NewRecorder(2, nil)
				rec.SetWarmup(warmup)
				m := cluster.NewMachine(s, workers, pc.mk(), rec)

				// Open-loop arrivals: each schedules its successor.
				var arrive func()
				arrive = func() {
					arr := src.Next()
					at := s.Now() + sim.Time(arr.Gap)
					if at >= sim.Time(duration) {
						return
					}
					s.At(at, func() {
						m.Arrive(arr.Type, arr.Service)
						arrive()
					})
				}
				arrive()

				// Sample queue occupancy between warmup and the end.
				var sumL float64
				var samples int
				var tick func(at sim.Time)
				tick = func(at sim.Time) {
					if at >= sim.Time(duration) {
						return
					}
					s.At(at, func() {
						sumL += float64(m.InFlight())
						samples++
						tick(at + sim.Time(sample))
					})
				}
				tick(sim.Time(warmup))

				s.RunUntil(sim.Time(duration))

				if samples == 0 {
					t.Fatal("no samples")
				}
				meanL := sumL / float64(samples)
				all := rec.All()
				if all.Completed == 0 {
					t.Fatal("nothing completed")
				}
				meanW := all.Latency.Mean() / 1e9 // ns → s
				predicted := rate * meanW
				ratio := meanL / predicted
				t.Logf("L=%.3f λW=%.3f ratio=%.3f (n=%d, W=%.2fµs)",
					meanL, predicted, ratio, all.Completed, meanW*1e6)
				if ratio < 0.75 || ratio > 1.25 {
					t.Fatalf("Little's law violated: L=%.3f vs λW=%.3f (ratio %.3f)",
						meanL, predicted, ratio)
				}
			})
		}
	}
}
