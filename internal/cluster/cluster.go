// Package cluster models a single multi-core server inside the
// discrete-event simulator: application workers, the request
// lifecycle, flow control, and the driver that connects an open-loop
// arrival process to a pluggable scheduling policy.
package cluster

import (
	"fmt"
	"time"

	"repro/internal/eventq"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Request is one in-flight request inside the simulated machine.
type Request struct {
	ID   uint64
	Type int
	// Service is the request's pure processing demand.
	Service time.Duration
	// Remaining is the unexecuted part of Service (preemptive policies
	// run requests in slices).
	Remaining time.Duration
	// Arrival is the instant the request reached the dispatcher.
	Arrival sim.Time
	// FirstDispatch is the instant the request first reached a worker
	// (-1 until then).
	FirstDispatch sim.Time
	// Preemptions counts how many times a time-sharing policy
	// interrupted the request.
	Preemptions int
}

// QueueDelay reports how long the request waited before first touching
// a worker.
func (r *Request) QueueDelay() time.Duration {
	if r.FirstDispatch < 0 {
		return 0
	}
	return r.FirstDispatch - r.Arrival
}

// Worker is one simulated application core.
type Worker struct {
	ID  int
	cur *Request
	// busy accumulates occupied time (service plus scheduling
	// overheads) for utilization accounting.
	busy      time.Duration
	busySince sim.Time
}

// Idle reports whether the worker has no request or overhead running.
func (w *Worker) Idle() bool { return w.cur == nil && w.busySince < 0 }

// Current returns the request the worker is executing, if any.
func (w *Worker) Current() *Request { return w.cur }

// BusyTime reports accumulated busy time.
func (w *Worker) BusyTime() time.Duration { return w.busy }

// CompletionObserver is an optional Policy extension: policies that
// profile service times (DARC) implement it to observe each completed
// request before the worker is handed back via WorkerFree.
type CompletionObserver interface {
	Completed(w *Worker, r *Request)
}

// Policy is a scheduling discipline plugged into a Machine. The
// machine calls Arrive for every new request and WorkerFree every time
// a worker becomes available; the policy reacts by calling
// Machine.Run/RunSlice/Overhead.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Init is called once, after workers exist and before any arrival.
	Init(m *Machine)
	// Arrive hands the policy a new request at the current virtual
	// instant. The policy owns queueing and may dispatch immediately.
	Arrive(r *Request)
	// WorkerFree notifies the policy that w just became idle (after a
	// completion or an overhead period). The policy should assign new
	// work if any is eligible.
	WorkerFree(w *Worker)
}

// Machine is the simulated server.
type Machine struct {
	Sim      *sim.Sim
	Workers  []*Worker
	Policy   Policy
	Recorder *metrics.Recorder

	// OnComplete, when non-nil, observes every completion after it is
	// recorded (used by time-series experiments).
	OnComplete func(r *Request, at sim.Time)

	nextID    uint64
	completed uint64
	arrived   uint64
	dropped   uint64
}

// NewMachine builds a machine with the given number of workers.
func NewMachine(s *sim.Sim, workers int, p Policy, rec *metrics.Recorder) *Machine {
	if workers <= 0 {
		panic(fmt.Sprintf("cluster: non-positive worker count %d", workers))
	}
	m := &Machine{Sim: s, Policy: p, Recorder: rec}
	for i := 0; i < workers; i++ {
		m.Workers = append(m.Workers, &Worker{ID: i, busySince: -1})
	}
	p.Init(m)
	return m
}

// Arrive injects a request of the given type and service demand at the
// current virtual instant.
func (m *Machine) Arrive(typ int, service time.Duration) *Request {
	r := &Request{
		ID:            m.nextID,
		Type:          typ,
		Service:       service,
		Remaining:     service,
		Arrival:       m.Sim.Now(),
		FirstDispatch: -1,
	}
	m.nextID++
	m.arrived++
	m.Policy.Arrive(r)
	return r
}

// Run starts non-preemptive service of r on idle worker w: the worker
// is occupied for r.Remaining, then the completion is recorded and the
// policy regains the worker.
func (m *Machine) Run(w *Worker, r *Request) {
	m.begin(w, r)
	m.Sim.After(r.Remaining, func() {
		r.Remaining = 0
		m.finish(w, r)
		m.complete(r)
		m.notifyCompleted(w, r)
		m.Policy.WorkerFree(w)
	})
}

// RunSlice starts preemptive service of r on idle worker w for at most
// slice time. If the request finishes within the slice it is completed
// as in Run; otherwise onSliceEnd is invoked with the worker idle
// again — the policy decides whether to resume the request (no
// preemption happened) or to preempt it: charge an overhead via
// Overhead, bump r.Preemptions, requeue r and free the worker.
func (m *Machine) RunSlice(w *Worker, r *Request, slice time.Duration, onSliceEnd func(w *Worker, r *Request)) {
	if slice <= 0 {
		panic("cluster: non-positive slice")
	}
	m.begin(w, r)
	run := r.Remaining
	if run > slice {
		run = slice
	}
	m.Sim.After(run, func() {
		r.Remaining -= run
		if r.Remaining <= 0 {
			m.finish(w, r)
			m.complete(r)
			m.notifyCompleted(w, r)
			m.Policy.WorkerFree(w)
			return
		}
		m.finish(w, r)
		onSliceEnd(w, r)
	})
}

// RunHandle identifies a preemptible execution started with
// RunPreemptible so it can be interrupted before completion.
type RunHandle struct {
	w     *Worker
	r     *Request
	start sim.Time
	ev    *eventq.Event
	done  bool
}

// Request returns the request being executed.
func (h *RunHandle) Request() *Request { return h.r }

// Worker returns the executing worker.
func (h *RunHandle) Worker() *Worker { return h.w }

// Done reports whether the execution already completed or was
// interrupted.
func (h *RunHandle) Done() bool { return h.done }

// RunPreemptible starts service of r on idle worker w exactly like
// Run, but returns a handle that Interrupt can use to stop the request
// at an arbitrary instant — the primitive behind asynchronous
// (arrival-triggered) preemption models.
func (m *Machine) RunPreemptible(w *Worker, r *Request) *RunHandle {
	m.begin(w, r)
	h := &RunHandle{w: w, r: r, start: m.Sim.Now()}
	h.ev = m.Sim.After(r.Remaining, func() {
		h.done = true
		r.Remaining = 0
		m.finish(w, r)
		m.complete(r)
		m.notifyCompleted(w, r)
		m.Policy.WorkerFree(w)
	})
	return h
}

// Interrupt stops a preemptible execution, crediting the executed time
// against the request's remaining demand and leaving the worker idle.
// It reports false if the execution already finished. The caller owns
// the request afterwards (typically: bump Preemptions, pay Overhead,
// requeue).
func (m *Machine) Interrupt(h *RunHandle) bool {
	if h.done || !m.Sim.Cancel(h.ev) {
		return false
	}
	h.done = true
	executed := m.Sim.Now() - h.start
	h.r.Remaining -= executed
	if h.r.Remaining < 0 {
		h.r.Remaining = 0
	}
	m.finish(h.w, h.r)
	return true
}

// Overhead occupies idle worker w for d of non-service time (steal
// cost, preemption cost, ...) and then invokes then. A zero duration
// invokes then immediately.
func (m *Machine) Overhead(w *Worker, d time.Duration, then func()) {
	if d <= 0 {
		then()
		return
	}
	if !w.Idle() {
		panic(fmt.Sprintf("cluster: overhead on busy worker %d", w.ID))
	}
	w.busySince = m.Sim.Now()
	m.Sim.After(d, func() {
		w.busy += m.Sim.Now() - w.busySince
		w.busySince = -1
		then()
	})
}

func (m *Machine) begin(w *Worker, r *Request) {
	if !w.Idle() {
		panic(fmt.Sprintf("cluster: dispatch to busy worker %d", w.ID))
	}
	if r.FirstDispatch < 0 {
		r.FirstDispatch = m.Sim.Now()
	}
	w.cur = r
	w.busySince = m.Sim.Now()
}

func (m *Machine) finish(w *Worker, r *Request) {
	w.busy += m.Sim.Now() - w.busySince
	w.busySince = -1
	w.cur = nil
}

func (m *Machine) complete(r *Request) {
	m.completed++
	if m.Recorder != nil {
		m.Recorder.Complete(r.Type, r.Arrival, m.Sim.Now(), r.Service, r.FirstDispatch, r.Preemptions)
	}
	if m.OnComplete != nil {
		m.OnComplete(r, m.Sim.Now())
	}
}

func (m *Machine) notifyCompleted(w *Worker, r *Request) {
	if co, ok := m.Policy.(CompletionObserver); ok {
		co.Completed(w, r)
	}
}

// RecordDrop counts a shed request (bounded queue overflow).
func (m *Machine) RecordDrop(r *Request) {
	m.dropped++
	if m.Recorder != nil {
		m.Recorder.Drop(r.Type, r.Arrival)
	}
}

// Arrived reports the number of injected requests.
func (m *Machine) Arrived() uint64 { return m.arrived }

// Completed reports the number of finished requests.
func (m *Machine) Completed() uint64 { return m.completed }

// Dropped reports the number of shed requests.
func (m *Machine) Dropped() uint64 { return m.dropped }

// InFlight reports requests admitted but neither completed nor
// dropped.
func (m *Machine) InFlight() uint64 { return m.arrived - m.completed - m.dropped }

// IdleWorkers returns the currently idle workers in ID order.
func (m *Machine) IdleWorkers() []*Worker {
	var idle []*Worker
	for _, w := range m.Workers {
		if w.Idle() {
			idle = append(idle, w)
		}
	}
	return idle
}

// Utilization reports the mean busy fraction across workers over the
// elapsed virtual time.
func (m *Machine) Utilization() float64 {
	now := m.Sim.Now()
	if now <= 0 || len(m.Workers) == 0 {
		return 0
	}
	var busy time.Duration
	for _, w := range m.Workers {
		busy += w.busy
		if w.busySince >= 0 {
			busy += now - w.busySince
		}
	}
	return float64(busy) / (float64(now) * float64(len(m.Workers)))
}

// WorkerUtilization reports one worker's busy fraction.
func (m *Machine) WorkerUtilization(id int) float64 {
	now := m.Sim.Now()
	if now <= 0 || id < 0 || id >= len(m.Workers) {
		return 0
	}
	w := m.Workers[id]
	busy := w.busy
	if w.busySince >= 0 {
		busy += now - w.busySince
	}
	return float64(busy) / float64(now)
}
