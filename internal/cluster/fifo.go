package cluster

// FIFO is a bounded first-come-first-served request queue backed by a
// growable circular buffer. Policies use one per worker, one central,
// or one per request type. A Cap of 0 means unbounded.
type FIFO struct {
	buf   []*Request
	head  int
	count int
	// Cap bounds the queue; pushes beyond it fail so the policy can
	// shed load (the paper's flow control drops from full typed
	// queues).
	Cap int
}

// Len reports queued requests.
func (q *FIFO) Len() int { return q.count }

// Empty reports whether the queue has no requests.
func (q *FIFO) Empty() bool { return q.count == 0 }

// Push appends r and reports whether it was admitted (false when the
// queue is at capacity).
func (q *FIFO) Push(r *Request) bool {
	if q.Cap > 0 && q.count >= q.Cap {
		return false
	}
	if q.count == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.count)%len(q.buf)] = r
	q.count++
	return true
}

// PushFront prepends r (used by multi-queue time sharing, which
// re-enqueues preempted requests at the head of their queue). Capacity
// is not enforced for re-enqueues: the request was already admitted.
func (q *FIFO) PushFront(r *Request) {
	if q.count == len(q.buf) {
		q.grow()
	}
	q.head = (q.head - 1 + len(q.buf)) % len(q.buf)
	q.buf[q.head] = r
	q.count++
}

// Pop removes and returns the oldest request, or nil.
func (q *FIFO) Pop() *Request {
	if q.count == 0 {
		return nil
	}
	r := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	return r
}

// Peek returns the oldest request without removing it, or nil.
func (q *FIFO) Peek() *Request {
	if q.count == 0 {
		return nil
	}
	return q.buf[q.head]
}

// PopBack removes and returns the newest request, or nil (work
// stealing takes from the tail of a victim's queue).
func (q *FIFO) PopBack() *Request {
	if q.count == 0 {
		return nil
	}
	idx := (q.head + q.count - 1) % len(q.buf)
	r := q.buf[idx]
	q.buf[idx] = nil
	q.count--
	return r
}

func (q *FIFO) grow() {
	size := len(q.buf) * 2
	if size == 0 {
		size = 16
	}
	buf := make([]*Request, size)
	for i := 0; i < q.count; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = buf
	q.head = 0
}
