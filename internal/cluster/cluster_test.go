package cluster

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// fifoPolicy is a minimal c-FCFS used to exercise the machine.
type fifoPolicy struct {
	m *Machine
	q FIFO
}

func (p *fifoPolicy) Name() string    { return "test-fcfs" }
func (p *fifoPolicy) Init(m *Machine) { p.m = m }
func (p *fifoPolicy) Arrive(r *Request) {
	for _, w := range p.m.Workers {
		if w.Idle() {
			p.m.Run(w, r)
			return
		}
	}
	p.q.Push(r)
}
func (p *fifoPolicy) WorkerFree(w *Worker) {
	if r := p.q.Pop(); r != nil {
		p.m.Run(w, r)
	}
}

func newTestMachine(workers int) (*sim.Sim, *Machine, *metrics.Recorder) {
	s := sim.New()
	rec := metrics.NewRecorder(2, []string{"a", "b"})
	m := NewMachine(s, workers, &fifoPolicy{}, rec)
	return s, m, rec
}

func TestSingleRequestLifecycle(t *testing.T) {
	s, m, rec := newTestMachine(1)
	m.Arrive(0, 10*time.Microsecond)
	s.Run()
	if m.Completed() != 1 || m.InFlight() != 0 {
		t.Fatalf("completed %d inflight %d", m.Completed(), m.InFlight())
	}
	if got := rec.Type(0).Latency.QuantileDuration(1); got != 10*time.Microsecond {
		t.Fatalf("latency %v, want exactly the service time", got)
	}
	if got := metrics.SlowdownAt(rec.Type(0), 1); got != 1 {
		t.Fatalf("slowdown %g, want 1", got)
	}
}

func TestQueueingBehindRequest(t *testing.T) {
	s, m, rec := newTestMachine(1)
	m.Arrive(0, 10*time.Microsecond)
	m.Arrive(1, 10*time.Microsecond) // same instant, queues
	s.Run()
	if m.Completed() != 2 {
		t.Fatalf("completed %d", m.Completed())
	}
	// Second request waited 10µs then ran 10µs.
	if got := rec.Type(1).Latency.QuantileDuration(1); got < 19*time.Microsecond || got > 21*time.Microsecond {
		t.Fatalf("queued latency %v, want ~20µs", got)
	}
	if got := rec.Type(1).QueueDelay.QuantileDuration(1); got < 9*time.Microsecond || got > 11*time.Microsecond {
		t.Fatalf("queue delay %v, want ~10µs", got)
	}
}

func TestParallelWorkers(t *testing.T) {
	s, m, _ := newTestMachine(4)
	for i := 0; i < 4; i++ {
		m.Arrive(0, 10*time.Microsecond)
	}
	s.Run()
	if s.Now() != 10*time.Microsecond {
		t.Fatalf("4 workers should finish 4 requests in parallel at 10µs, got %v", s.Now())
	}
}

func TestUtilization(t *testing.T) {
	s, m, _ := newTestMachine(2)
	m.Arrive(0, 10*time.Microsecond)
	s.RunUntil(20 * time.Microsecond)
	// One worker busy 10 of 20µs, the other idle: 25% machine-wide.
	if got := m.Utilization(); got < 0.24 || got > 0.26 {
		t.Fatalf("utilization %g, want 0.25", got)
	}
	if got := m.WorkerUtilization(0); got < 0.49 || got > 0.51 {
		t.Fatalf("worker 0 utilization %g, want 0.5", got)
	}
	if got := m.WorkerUtilization(1); got != 0 {
		t.Fatalf("worker 1 utilization %g, want 0", got)
	}
}

func TestOverheadCountsAsBusy(t *testing.T) {
	s, m, _ := newTestMachine(1)
	done := false
	m.Overhead(m.Workers[0], 5*time.Microsecond, func() { done = true })
	s.RunUntil(10 * time.Microsecond)
	if !done {
		t.Fatal("overhead continuation not invoked")
	}
	if got := m.WorkerUtilization(0); got < 0.49 || got > 0.51 {
		t.Fatalf("overhead busy fraction %g, want 0.5", got)
	}
}

func TestOverheadZeroImmediate(t *testing.T) {
	_, m, _ := newTestMachine(1)
	ran := false
	m.Overhead(m.Workers[0], 0, func() { ran = true })
	if !ran {
		t.Fatal("zero overhead deferred")
	}
}

func TestRunSliceCompletesShortRequest(t *testing.T) {
	s := sim.New()
	rec := metrics.NewRecorder(1, nil)
	var pol slicePolicy
	m := NewMachine(s, 1, &pol, rec)
	pol.m = m
	m.Arrive(0, 3*time.Microsecond) // shorter than the 5µs quantum
	s.Run()
	if m.Completed() != 1 {
		t.Fatal("short request did not complete in one slice")
	}
	if pol.sliceEnds != 0 {
		t.Fatalf("%d slice-end callbacks for a within-quantum request", pol.sliceEnds)
	}
}

// slicePolicy runs everything with RunSlice and requeues on slice end.
type slicePolicy struct {
	m         *Machine
	q         FIFO
	sliceEnds int
}

func (p *slicePolicy) Name() string    { return "test-slice" }
func (p *slicePolicy) Init(m *Machine) { p.m = m }
func (p *slicePolicy) Arrive(r *Request) {
	if w := p.m.Workers[0]; w.Idle() {
		p.start(w, r)
		return
	}
	p.q.Push(r)
}
func (p *slicePolicy) start(w *Worker, r *Request) {
	p.m.RunSlice(w, r, 5*time.Microsecond, func(w *Worker, r *Request) {
		p.sliceEnds++
		r.Preemptions++
		p.q.Push(r)
		p.WorkerFree(w)
	})
}
func (p *slicePolicy) WorkerFree(w *Worker) {
	if r := p.q.Pop(); r != nil {
		p.start(w, r)
	}
}

func TestRunSlicePreemptsLongRequest(t *testing.T) {
	s := sim.New()
	rec := metrics.NewRecorder(1, nil)
	var pol slicePolicy
	m := NewMachine(s, 1, &pol, rec)
	m.Arrive(0, 12*time.Microsecond) // needs 3 slices of 5µs
	s.Run()
	if m.Completed() != 1 {
		t.Fatal("request did not complete")
	}
	if pol.sliceEnds != 2 {
		t.Fatalf("slice ends %d, want 2", pol.sliceEnds)
	}
	if got := rec.Type(0).Preemptions; got != 2 {
		t.Fatalf("recorded preemptions %d, want 2", got)
	}
	if s.Now() != 12*time.Microsecond {
		t.Fatalf("completion at %v, want 12µs (no overhead charged)", s.Now())
	}
}

func TestRunPreemptibleInterrupt(t *testing.T) {
	s := sim.New()
	rec := metrics.NewRecorder(1, nil)
	pol := &fifoPolicy{}
	m := NewMachine(s, 1, pol, rec)
	r := m.Arrive(0, 100*time.Microsecond)
	// fifoPolicy used Run; drain and restart manually for this test.
	s = m.Sim
	_ = r
	// Build a fresh machine driven manually instead.
	s2 := sim.New()
	m2 := NewMachine(s2, 1, &manualPolicy{}, rec)
	req := &Request{ID: 1, Type: 0, Service: 100 * time.Microsecond, Remaining: 100 * time.Microsecond, Arrival: 0, FirstDispatch: -1}
	h := m2.RunPreemptible(m2.Workers[0], req)
	s2.After(30*time.Microsecond, func() {
		if !m2.Interrupt(h) {
			t.Error("interrupt failed while running")
		}
	})
	s2.Run()
	if req.Remaining != 70*time.Microsecond {
		t.Fatalf("remaining %v, want 70µs", req.Remaining)
	}
	if !m2.Workers[0].Idle() {
		t.Fatal("worker not idle after interrupt")
	}
	if h.Done() != true {
		t.Fatal("handle not done after interrupt")
	}
	if m2.Interrupt(h) {
		t.Fatal("double interrupt succeeded")
	}
}

type manualPolicy struct{ m *Machine }

func (p *manualPolicy) Name() string         { return "manual" }
func (p *manualPolicy) Init(m *Machine)      { p.m = m }
func (p *manualPolicy) Arrive(r *Request)    {}
func (p *manualPolicy) WorkerFree(w *Worker) {}

func TestRunPreemptibleCompletesNormally(t *testing.T) {
	s := sim.New()
	rec := metrics.NewRecorder(1, nil)
	m := NewMachine(s, 1, &manualPolicy{}, rec)
	req := &Request{ID: 1, Service: 10 * time.Microsecond, Remaining: 10 * time.Microsecond, FirstDispatch: -1}
	h := m.RunPreemptible(m.Workers[0], req)
	s.Run()
	if !h.Done() || m.Completed() != 1 {
		t.Fatal("preemptible run did not complete")
	}
	if m.Interrupt(h) {
		t.Fatal("interrupt after completion succeeded")
	}
}

func TestDispatchToBusyWorkerPanics(t *testing.T) {
	s := sim.New()
	m := NewMachine(s, 1, &manualPolicy{}, nil)
	r1 := &Request{Service: 10, Remaining: 10, FirstDispatch: -1}
	r2 := &Request{Service: 10, Remaining: 10, FirstDispatch: -1}
	m.Run(m.Workers[0], r1)
	defer func() {
		if recover() == nil {
			t.Fatal("double dispatch did not panic")
		}
	}()
	m.Run(m.Workers[0], r2)
}

func TestRecordDrop(t *testing.T) {
	s := sim.New()
	rec := metrics.NewRecorder(1, nil)
	m := NewMachine(s, 1, &manualPolicy{}, rec)
	m.Arrive(0, time.Microsecond) // manualPolicy ignores it
	m.RecordDrop(&Request{Type: 0})
	if m.Dropped() != 1 || rec.All().Dropped != 1 {
		t.Fatal("drop not recorded")
	}
}

type observingPolicy struct {
	manualPolicy
	completed []*Request
}

func (p *observingPolicy) Completed(w *Worker, r *Request) {
	p.completed = append(p.completed, r)
}

func TestCompletionObserver(t *testing.T) {
	s := sim.New()
	pol := &observingPolicy{}
	m := NewMachine(s, 1, pol, nil)
	r := &Request{Service: 5, Remaining: 5, FirstDispatch: -1}
	m.Run(m.Workers[0], r)
	s.Run()
	if len(pol.completed) != 1 || pol.completed[0] != r {
		t.Fatal("completion observer not invoked")
	}
}
