package cluster

import (
	"testing"
	"testing/quick"
)

func req(id uint64) *Request { return &Request{ID: id} }

func TestFIFOOrder(t *testing.T) {
	var q FIFO
	for i := uint64(0); i < 100; i++ {
		if !q.Push(req(i)) {
			t.Fatal("unbounded push failed")
		}
	}
	for i := uint64(0); i < 100; i++ {
		r := q.Pop()
		if r == nil || r.ID != i {
			t.Fatalf("pop %d got %v", i, r)
		}
	}
	if q.Pop() != nil {
		t.Fatal("pop on empty returned request")
	}
}

func TestFIFOCap(t *testing.T) {
	q := FIFO{Cap: 2}
	if !q.Push(req(1)) || !q.Push(req(2)) {
		t.Fatal("pushes below cap failed")
	}
	if q.Push(req(3)) {
		t.Fatal("push beyond cap succeeded")
	}
	q.Pop()
	if !q.Push(req(3)) {
		t.Fatal("push after pop failed")
	}
}

func TestFIFOPushFront(t *testing.T) {
	var q FIFO
	q.Push(req(1))
	q.Push(req(2))
	q.PushFront(req(0))
	for i := uint64(0); i < 3; i++ {
		if r := q.Pop(); r.ID != i {
			t.Fatalf("got %d, want %d", r.ID, i)
		}
	}
}

func TestFIFOPushFrontBypassesCap(t *testing.T) {
	q := FIFO{Cap: 1}
	q.Push(req(1))
	q.PushFront(req(0)) // re-enqueue of an admitted request must not be lost
	if q.Len() != 2 {
		t.Fatalf("len %d, want 2", q.Len())
	}
	if q.Pop().ID != 0 {
		t.Fatal("front not first")
	}
}

func TestFIFOPopBack(t *testing.T) {
	var q FIFO
	for i := uint64(0); i < 5; i++ {
		q.Push(req(i))
	}
	if r := q.PopBack(); r.ID != 4 {
		t.Fatalf("PopBack got %d", r.ID)
	}
	if r := q.Pop(); r.ID != 0 {
		t.Fatalf("Pop got %d", r.ID)
	}
	if q.Len() != 3 {
		t.Fatalf("len %d", q.Len())
	}
}

func TestFIFOPeek(t *testing.T) {
	var q FIFO
	if q.Peek() != nil {
		t.Fatal("peek on empty")
	}
	q.Push(req(9))
	if q.Peek().ID != 9 || q.Len() != 1 {
		t.Fatal("peek wrong or mutated queue")
	}
}

func TestFIFOGrowthAcrossWrap(t *testing.T) {
	var q FIFO
	// Exercise wrap-around: interleave pushes and pops so head moves.
	next := uint64(0)
	expect := uint64(0)
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			q.Push(req(next))
			next++
		}
		for i := 0; i < 5; i++ {
			r := q.Pop()
			if r.ID != expect {
				t.Fatalf("got %d, want %d", r.ID, expect)
			}
			expect++
		}
	}
	for q.Len() > 0 {
		r := q.Pop()
		if r.ID != expect {
			t.Fatalf("drain got %d, want %d", r.ID, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d, pushed %d", expect, next)
	}
}

// TestFIFOModel property-checks the ring against a plain slice model
// under random operation sequences.
func TestFIFOModel(t *testing.T) {
	type op struct {
		// 0 push, 1 pop, 2 pushFront, 3 popBack, 4 peek
		Kind uint8
	}
	check := func(ops []op) bool {
		var q FIFO
		var model []uint64
		next := uint64(0)
		for _, o := range ops {
			switch o.Kind % 5 {
			case 0:
				q.Push(req(next))
				model = append(model, next)
				next++
			case 1:
				r := q.Pop()
				if len(model) == 0 {
					if r != nil {
						return false
					}
				} else {
					if r == nil || r.ID != model[0] {
						return false
					}
					model = model[1:]
				}
			case 2:
				q.PushFront(req(next))
				model = append([]uint64{next}, model...)
				next++
			case 3:
				r := q.PopBack()
				if len(model) == 0 {
					if r != nil {
						return false
					}
				} else {
					if r == nil || r.ID != model[len(model)-1] {
						return false
					}
					model = model[:len(model)-1]
				}
			case 4:
				r := q.Peek()
				if len(model) == 0 {
					if r != nil {
						return false
					}
				} else if r == nil || r.ID != model[0] {
					return false
				}
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
