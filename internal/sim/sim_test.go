package sim

import (
	"testing"
	"time"
)

func TestClockAdvances(t *testing.T) {
	s := New()
	var at Time
	s.After(10*time.Microsecond, func() { at = s.Now() })
	s.Run()
	if at != 10*time.Microsecond {
		t.Fatalf("event saw time %v, want 10µs", at)
	}
	if s.Now() != 10*time.Microsecond {
		t.Fatalf("final time %v", s.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var order []int
	s.After(5, func() {
		order = append(order, 1)
		s.After(5, func() { order = append(order, 3) })
	})
	s.After(7, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
	if s.Fired() != 3 {
		t.Fatalf("fired %d", s.Fired())
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := New()
	fired := 0
	// Self-perpetuating process, like an open-loop arrival source.
	var tick func()
	tick = func() {
		fired++
		s.After(time.Millisecond, tick)
	}
	s.After(time.Millisecond, tick)
	s.RunUntil(10 * time.Millisecond)
	if fired != 10 {
		t.Fatalf("fired %d events, want 10", fired)
	}
	if s.Now() != 10*time.Millisecond {
		t.Fatalf("clock at %v, want horizon", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending %d, want the next tick", s.Pending())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := New()
	s.RunUntil(time.Second)
	if s.Now() != time.Second {
		t.Fatalf("clock %v, want 1s", s.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.After(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5, func() {})
	})
	s.Run()
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.After(10, func() { fired = true })
	if !s.Cancel(e) {
		t.Fatal("cancel failed")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestHalt(t *testing.T) {
	s := New()
	count := 0
	for i := 0; i < 10; i++ {
		s.After(Time(i), func() {
			count++
			if count == 3 {
				s.Halt()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("ran %d events after halt, want 3", count)
	}
	// Run can resume after a halt.
	s.Run()
	if count != 10 {
		t.Fatalf("resume ran to %d, want 10", count)
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	s := New()
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		s := New()
		var log []Time
		for i := 0; i < 100; i++ {
			d := Time((i * 37) % 50)
			s.After(d, func() { log = append(log, s.Now()) })
		}
		s.Run()
		return log
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
