// Package sim is a single-threaded discrete-event simulation engine
// with a nanosecond-resolution virtual clock. Components schedule
// callbacks at virtual instants; the engine fires them in (time,
// schedule-order) order, so runs are fully deterministic.
package sim

import (
	"fmt"
	"time"

	"repro/internal/eventq"
)

// Time is a virtual instant, expressed as the duration since the start
// of the simulation.
type Time = time.Duration

// Sim is a discrete-event simulator. The zero value is ready to use.
type Sim struct {
	now    Time
	events eventq.Queue
	fired  uint64
	halted bool
}

// New returns an empty simulator at virtual time zero.
func New() *Sim { return &Sim{} }

// Now reports the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Fired reports how many events have executed, a cheap progress and
// cost measure for experiments.
func (s *Sim) Fired() uint64 { return s.fired }

// At schedules fn to run at virtual time t. Scheduling in the past
// (before Now) panics: it always indicates a modelling bug.
func (s *Sim) At(t Time, fn func()) *eventq.Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	return s.events.Push(t, fn)
}

// After schedules fn to run d from now.
func (s *Sim) After(d time.Duration, fn func()) *eventq.Event {
	return s.At(s.now+d, fn)
}

// Cancel removes a pending event; see eventq.Queue.Cancel.
func (s *Sim) Cancel(e *eventq.Event) bool { return s.events.Cancel(e) }

// Step fires the next event and reports whether one existed.
func (s *Sim) Step() bool {
	e := s.events.Pop()
	if e == nil {
		return false
	}
	s.now = e.At
	s.fired++
	e.Fn()
	return true
}

// RunUntil fires events until the queue is empty or the next event is
// strictly after the horizon; the clock is then advanced to the
// horizon. Components may keep scheduling (for example, an open-loop
// arrival process schedules its successor from within its own event),
// so the horizon is the only termination condition for steady-state
// experiments.
func (s *Sim) RunUntil(horizon Time) {
	s.halted = false
	for !s.halted {
		e := s.events.Peek()
		if e == nil || e.At > horizon {
			break
		}
		s.Step()
	}
	if s.now < horizon {
		s.now = horizon
	}
}

// Run fires events until none remain or Halt is called.
func (s *Sim) Run() {
	s.halted = false
	for !s.halted && s.Step() {
	}
}

// Halt stops Run/RunUntil after the currently executing event returns.
func (s *Sim) Halt() { s.halted = true }

// Pending reports the number of scheduled events.
func (s *Sim) Pending() int { return s.events.Len() }
