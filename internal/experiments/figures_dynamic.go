package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/darc"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/workload"
)

// Figure7Phases builds the workload-change schedule of §5.5: four
// phases at 80% utilization of a 14-worker machine. Phase boundaries
// are scaled by phaseDur (the paper uses 5s per phase).
//
//	phase 1: A fast (1µs) 50%, B slow (100µs) 50%
//	phase 2: service times swap (misclassification stress)
//	phase 3: back to fast A at 99.5% / slow B at 0.5% (ratio change;
//	         DARC re-reserves for the new demand)
//	phase 4: essentially only A requests (B at 0.1%); pending B
//	         requests ride the spillway
func Figure7Phases(workers int, phaseDur time.Duration) *workload.Schedule {
	p1 := workload.TwoType("A", time.Microsecond, 0.5, "B", 100*time.Microsecond)
	p2 := workload.TwoType("A", 100*time.Microsecond, 0.5, "B", time.Microsecond)
	p3 := workload.TwoType("A", time.Microsecond, 0.995, "B", 500*time.Microsecond)
	p4 := workload.TwoType("A", time.Microsecond, 0.999, "B", 100*time.Microsecond)
	const util = 0.8
	return &workload.Schedule{Phases: []workload.Phase{
		{Mix: p1, Rate: util * p1.PeakLoad(workers), Duration: phaseDur},
		{Mix: p2, Rate: util * p2.PeakLoad(workers), Duration: phaseDur},
		{Mix: p3, Rate: util * p3.PeakLoad(workers), Duration: phaseDur},
		{Mix: p4, Rate: util * p4.PeakLoad(workers), Duration: phaseDur},
	}}
}

// reservationEvent is one Figure 7 core-allocation change.
type reservationEvent struct {
	At    time.Duration
	Cores []int // reserved core count per type
}

// Figure7 reproduces §5.5: p99.9 latency per type and guaranteed cores
// per type over time under the 4-phase schedule, for DARC and (as the
// baseline) c-FCFS.
func Figure7(opt Options) ([]*Table, error) {
	opt = opt.fill()
	const workers = 14
	// Scale the paper's 5s phases into the configured duration.
	phaseDur := opt.Duration
	sched := Figure7Phases(workers, phaseDur)
	total := sched.TotalDuration()
	window := total / 60
	if window <= 0 {
		window = 50 * time.Millisecond
	}

	// DARC run with reservation tracking.
	var events []reservationEvent
	dcfg := darc.DefaultConfig(workers)
	// React faster than the paper's 50k-sample windows when the run is
	// short (the trigger rule itself is unchanged).
	if opt.Duration < 5*time.Second {
		dcfg.MinWindowSamples = 5000
	}
	darcRes, err := cluster.Run(cluster.Config{
		Workers:        workers,
		Schedule:       sched,
		Duration:       total,
		WarmupFraction: 0,
		Seed:           opt.Seed,
		TrackWindow:    window,
		NewPolicy: func() cluster.Policy {
			p := policy.NewDARC(dcfg, 2, 0)
			p.OnReservationUpdate = func(now time.Duration, res *darc.Reservation) {
				cores := make([]int, 2)
				for t := 0; t < 2; t++ {
					cores[t] = len(res.ReservedFor(t))
				}
				events = append(events, reservationEvent{At: now, Cores: cores})
			}
			return p
		},
	})
	if err != nil {
		return nil, err
	}
	// Baseline c-FCFS run for comparison.
	cfcfsRes, err := cluster.Run(cluster.Config{
		Workers:        workers,
		Schedule:       sched,
		Duration:       total,
		WarmupFraction: 0,
		Seed:           opt.Seed,
		TrackWindow:    window,
		NewPolicy:      func() cluster.Policy { return policy.NewCFCFS(0) },
	})
	if err != nil {
		return nil, err
	}

	sort.Slice(events, func(i, j int) bool { return events[i].At < events[j].At })
	coresAt := func(at time.Duration, typ int) int {
		cores := 0 // 0 = still in startup c-FCFS
		for _, e := range events {
			if e.At > at {
				break
			}
			cores = e.Cores[typ]
		}
		return cores
	}

	t := &Table{
		Name:  "figure7",
		Title: "workload changes: p99.9 latency and guaranteed cores over time (paper Figure 7)",
		Header: []string{"t", "phase",
			"darc_A_p999", "darc_B_p999", "cores_A", "cores_B",
			"cfcfs_A_p999", "cfcfs_B_p999"},
	}
	seriesDA := darcRes.Series.Series(0, 0.999)
	seriesDB := darcRes.Series.Series(1, 0.999)
	seriesCA := cfcfsRes.Series.Series(0, 0.999)
	seriesCB := cfcfsRes.Series.Series(1, 0.999)
	for i := range seriesDA {
		at := seriesDA[i].Start
		row := []string{
			fmt.Sprintf("%.2fs", at.Seconds()),
			fmt.Sprintf("%d", sched.PhaseAt(at)+1),
			fmtDur(time.Duration(seriesDA[i].Value)),
			fmtDur(time.Duration(valueAt(seriesDB, i))),
			fmt.Sprintf("%d", coresAt(at, 0)),
			fmt.Sprintf("%d", coresAt(at, 1)),
			fmtDur(time.Duration(valueAt(seriesCA, i))),
			fmtDur(time.Duration(valueAt(seriesCB, i))),
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("DARC applied %d reservation updates across the 4 phases", len(events)))
	if len(events) >= 2 {
		// Adaptation delay after the phase-2 swap (paper: ~500ms with
		// 50k-sample windows).
		swapAt := sched.Phases[0].Duration
		for _, e := range events {
			if e.At > swapAt {
				t.Notes = append(t.Notes, fmt.Sprintf(
					"first reservation update after the service-time swap came %.0fms into phase 2 (paper: ~500ms)",
					(e.At-swapAt).Seconds()*1000))
				break
			}
		}
	}
	return []*Table{t}, nil
}

func valueAt(pts []metrics.Point, i int) int64 {
	if i < len(pts) {
		return pts[i].Value
	}
	return 0
}

// Figure9 reproduces §5.6: DARC with a deliberately random classifier
// converges to c-FCFS (8 workers, High Bimodal).
func Figure9(opt Options) ([]*Table, error) {
	opt = opt.fill()
	mix := workload.HighBimodal()
	const workers = 8
	specs := []PolicySpec{
		specCFCFS(),
		specDARC(opt, workers, len(mix.Types)),
		specDARCRandom(opt, workers, len(mix.Types)),
	}
	points, err := sweep(opt, cluster.Config{Workers: workers, RTT: 10 * time.Microsecond}, mix, specs)
	if err != nil {
		return nil, err
	}
	curve := slowdownCurveTable("figure9", "broken (random) classifier vs c-FCFS, High Bimodal, 8 workers (paper Figure 9)", opt, points, specs)
	// Shape check: DARC-random within a small factor of c-FCFS at
	// every load, DARC proper much better at high load.
	byKey := indexPoints(points)
	maxLoad := opt.Loads[len(opt.Loads)-1]
	c := byKey[key("c-FCFS", maxLoad)]
	r := byKey[key("DARC-random", maxLoad)]
	d := byKey[key("DARC", maxLoad)]
	if c.Res != nil && r.Res != nil && d.Res != nil {
		curve.Notes = append(curve.Notes, fmt.Sprintf(
			"at %.0f%% load: c-FCFS %.1f, DARC-random %.1f (paper: similar), DARC %.1f",
			maxLoad*100,
			slow999(c), slow999(r), slow999(d)))
	}
	return []*Table{curve}, nil
}

func slow999(p runPoint) float64 {
	return float64(p.Res.Recorder.All().Slowdown.Quantile(0.999)) / 1000
}
