package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/darc"
	"repro/internal/policy"
	"repro/internal/rng"
	"repro/internal/workload"
)

func boolMark(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// Table1 reproduces the paper's Table 1: the four §2 policies and
// their structural properties, checked against the live
// implementations rather than hand-written.
func Table1() *Table {
	t := &Table{
		Name:   "table1",
		Title:  "Policy taxonomy (paper Table 1)",
		Header: []string{"policy", "typed_queues", "non_work_conserving", "non_preemptive", "example_system"},
	}
	rows := []struct {
		label   string
		p       policy.TraitsProvider
		example string
	}{
		{"d-FCFS", policy.NewDFCFS(rng.New(1), 0), "IX / Arrakis"},
		{"c-FCFS", policy.NewCFCFS(0), "ZygOS / Shenango"},
		{"TS", policy.NewTSMultiQueue(policy.TSConfig{}, 2), "Shinjuku"},
		{"DARC", policy.NewDARC(darc.DefaultConfig(14), 2, 0), "Persephone"},
	}
	for _, r := range rows {
		tr := r.p.Traits()
		t.Rows = append(t.Rows, []string{
			r.label,
			boolMark(tr.TypedQueues),
			boolMark(!tr.WorkConserving),
			boolMark(!tr.Preemptive),
			r.example,
		})
	}
	return t
}

// Table3 reproduces the paper's Table 3: the two bimodal workloads and
// their dispersion, computed from the implemented mixes.
func Table3() *Table {
	t := &Table{
		Name:   "table3",
		Title:  "Bimodal workloads (paper Table 3)",
		Header: []string{"workload", "short_runtime", "short_ratio", "long_runtime", "long_ratio", "dispersion", "mean_service"},
	}
	for _, mix := range []workload.Mix{workload.HighBimodal(), workload.ExtremeBimodal()} {
		short, long := mix.Types[0], mix.Types[1]
		t.Rows = append(t.Rows, []string{
			mix.Name,
			fmtDur(short.Service.Mean()),
			fmt.Sprintf("%.1f%%", short.Ratio*100),
			fmtDur(long.Service.Mean()),
			fmt.Sprintf("%.1f%%", long.Ratio*100),
			fmt.Sprintf("%.0fx", mix.Dispersion()),
			fmtDur(mix.MeanService()),
		})
	}
	return t
}

// Table4 reproduces the paper's Table 4: the TPC-C transaction mix.
func Table4() *Table {
	t := &Table{
		Name:   "table4",
		Title:  "TPC-C workload (paper Table 4)",
		Header: []string{"transaction", "runtime", "ratio", "dispersion_vs_payment"},
	}
	mix := workload.TPCC()
	base := mix.Types[0].Service.Mean()
	for _, ts := range mix.Types {
		t.Rows = append(t.Rows, []string{
			ts.Name,
			fmtDur(ts.Service.Mean()),
			fmt.Sprintf("%.0f%%", ts.Ratio*100),
			fmt.Sprintf("%.2fx", float64(ts.Service.Mean())/float64(base)),
		})
	}
	return t
}

// Table5 reproduces the paper's Table 5: the extended policy
// comparison, with the structural columns checked against the
// implementations.
func Table5() *Table {
	t := &Table{
		Name:   "table5",
		Title:  "Extended scheduling policy comparison (paper Table 5)",
		Header: []string{"policy", "app_aware", "non_preemptive", "non_work_conserving", "ideal_workload"},
	}
	means := []time.Duration{time.Microsecond, 100 * time.Microsecond}
	rows := []struct {
		label string
		p     policy.TraitsProvider
		ideal string
	}{
		{"d-FCFS", policy.NewDFCFS(rng.New(1), 0), "light-tailed"},
		{"c-FCFS", policy.NewCFCFS(0), "light-tailed"},
		{"work-stealing (Shenango)", policy.NewWorkStealing(rng.New(1), 0, 100*time.Nanosecond), "light-tailed"},
		{"Processor sharing (TS)", policy.NewTSSingleQueue(policy.TSConfig{}), "heavy-tailed w/o priorities"},
		{"Deficit round robin", policy.NewDRR(2, 10*time.Microsecond, nil, 0), "flows with fairness requirements"},
		{"Fixed priority", policy.NewFixedPriority(means, 0), "priority independent of service time"},
		{"EDF", policy.NewEDF(means, 10, 0), "priority independent of service time"},
		{"SJF (oracle)", policy.NewSJF(0), "custom; requires exact sizes"},
		{"Static partitioning", policy.NewDARCStatic(means, 1, 0), "types with separate SLOs"},
		{"DARC", policy.NewDARC(darc.DefaultConfig(14), 2, 0), "heavy-tailed with high-priority shorts"},
	}
	for _, r := range rows {
		tr := r.p.Traits()
		t.Rows = append(t.Rows, []string{
			r.label,
			boolMark(tr.AppAware),
			boolMark(!tr.Preemptive),
			boolMark(!tr.WorkConserving),
			r.ideal,
		})
	}
	return t
}

// standard policy spec constructors shared by figures -----------------

func specDFCFS() PolicySpec {
	return PolicySpec{Name: "d-FCFS", New: func(ctx RunCtx) cluster.Policy {
		return policy.NewDFCFS(rng.New(ctx.Seed+1000), 0)
	}}
}

func specCFCFS() PolicySpec {
	return PolicySpec{Name: "c-FCFS", New: func(RunCtx) cluster.Policy {
		return policy.NewCFCFS(0)
	}}
}

// specShenango is Shenango's c-FCFS approximation: RSS + work stealing.
func specShenango() PolicySpec {
	return PolicySpec{Name: "shenango-cFCFS", New: func(ctx RunCtx) cluster.Policy {
		return policy.NewWorkStealing(rng.New(ctx.Seed+2000), 0, 100*time.Nanosecond)
	}}
}

// specShenangoDFCFS is Shenango with stealing disabled (the paper's
// d-FCFS baseline in §5.4).
func specShenangoDFCFS() PolicySpec {
	return PolicySpec{Name: "shenango-dFCFS", New: func(ctx RunCtx) cluster.Policy {
		return policy.NewDFCFS(rng.New(ctx.Seed+3000), 0)
	}}
}

// specShinjukuSQ is Shinjuku's single-queue policy with the paper's
// measured 1µs preemption cost.
func specShinjukuSQ(quantum time.Duration) PolicySpec {
	return PolicySpec{Name: "shinjuku-SQ", New: func(RunCtx) cluster.Policy {
		return policy.NewTSSingleQueue(policy.TSConfig{Quantum: quantum, PreemptCost: time.Microsecond})
	}}
}

// specShinjukuMQ is Shinjuku's multi-queue (BVT) policy.
func specShinjukuMQ(quantum time.Duration, numTypes int) PolicySpec {
	return PolicySpec{Name: "shinjuku-MQ", New: func(RunCtx) cluster.Policy {
		return policy.NewTSMultiQueue(policy.TSConfig{Quantum: quantum, PreemptCost: time.Microsecond}, numTypes)
	}}
}

// darcConfigFor builds a DARC config with the profiling window sized
// for this run.
func darcConfigFor(workers int, ctx RunCtx) darc.Config {
	cfg := darc.DefaultConfig(workers)
	cfg.MinWindowSamples = ctx.DARCWindow()
	return cfg
}

// newDARCPolicy constructs the DARC simulator policy (indirection so
// experiment files don't import the policy package directly).
func newDARCPolicy(cfg darc.Config, numTypes int) cluster.Policy {
	return policy.NewDARC(cfg, numTypes, 0)
}

func specDARC(opt Options, workers, numTypes int) PolicySpec {
	opt = opt.fill()
	return PolicySpec{Name: "DARC", New: func(ctx RunCtx) cluster.Policy {
		return newDARCPolicy(darcConfigFor(workers, ctx), numTypes)
	}}
}

func specDARCStatic(mix workload.Mix, reserved int) PolicySpec {
	means := make([]time.Duration, len(mix.Types))
	for i, t := range mix.Types {
		means[i] = t.Service.Mean()
	}
	return PolicySpec{
		Name: fmt.Sprintf("DARC-static(%d)", reserved),
		New: func(RunCtx) cluster.Policy {
			// Unbounded queues: Figure 4's right side starves long
			// requests, and load shedding would otherwise flatter the
			// starved configurations (survivors look fast).
			return policy.NewDARCStatic(means, reserved, -1)
		},
	}
}

func specDARCRandom(opt Options, workers, numTypes int) PolicySpec {
	opt = opt.fill()
	return PolicySpec{Name: "DARC-random", New: func(ctx RunCtx) cluster.Policy {
		cfg := darc.DefaultConfig(workers)
		cfg.MinWindowSamples = ctx.DARCWindow()
		return &policy.Relabel{
			Inner:    policy.NewDARC(cfg, numTypes, 0),
			NumTypes: numTypes,
			R:        rng.New(ctx.Seed + 4000),
		}
	}}
}

func specTSIdeal(total time.Duration) PolicySpec {
	name := fmt.Sprintf("TS-%dus", total/time.Microsecond)
	return PolicySpec{Name: name, New: func(RunCtx) cluster.Policy {
		return policy.NewTSIdeal(total/2, total-total/2, 0)
	}}
}
