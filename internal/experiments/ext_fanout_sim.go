package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fanout"
	"repro/internal/workload"
)

// ExtFanoutSim runs the multi-machine fan-out simulation (as opposed
// to ext-fanout's independent-shard analytics): short user queries fan
// out to k of 8 backends while each backend also serves long
// background work; the query answers when its slowest shard does.
func ExtFanoutSim(opt Options) ([]*Table, error) {
	opt = opt.fill()
	mix := workload.HighBimodal()
	const backends = 8
	const workersPer = 8
	const shardLoad = 0.80
	fanouts := []int{1, 4, 8}

	specs := []PolicySpec{
		specDARC(opt, workersPer, len(mix.Types)),
		specCFCFS(),
	}
	t := &Table{
		Name: "ext_fanout_sim",
		Title: fmt.Sprintf("simulated fan-out: %d backends x %d workers at %.0f%% load, short queries fan out, longs run as background",
			backends, workersPer, shardLoad*100),
		Header: []string{"policy", "fanout", "queries", "query_p99", "query_p999", "shard_p999"},
	}
	type job struct {
		spec PolicySpec
		k    int
	}
	var jobs []job
	for _, s := range specs {
		for _, k := range fanouts {
			jobs = append(jobs, job{spec: s, k: k})
		}
	}
	type cell struct {
		res *fanout.Result
		err error
	}
	cells := make([]cell, len(jobs))
	runParallel(opt, len(jobs), func(i int) {
		j := jobs[i]
		ctx := RunCtx{
			Seed:      opt.Seed,
			Rate:      shardLoad * mix.PeakLoad(workersPer),
			Duration:  opt.Duration,
			Workers:   workersPer,
			WindowCap: opt.MinWindowSamples,
		}
		res, err := fanout.Run(fanout.Config{
			Backends:          backends,
			FanOut:            j.k,
			WorkersPerBackend: workersPer,
			Mix:               mix,
			ShardLoad:         shardLoad,
			Duration:          opt.Duration,
			WarmupFraction:    0.1,
			Seed:              opt.Seed,
			NewPolicy:         func() cluster.Policy { return j.spec.New(ctx) },
		})
		cells[i] = cell{res: res, err: err}
	})
	for i, j := range jobs {
		if cells[i].err != nil {
			return nil, cells[i].err
		}
		r := cells[i].res
		t.Rows = append(t.Rows, []string{
			j.spec.Name,
			fmt.Sprintf("%d", j.k),
			fmt.Sprintf("%d", r.Queries),
			fmtDur(r.QueryLatency.QuantileDuration(0.99)),
			fmtDur(r.QueryLatency.QuantileDuration(0.999)),
			fmtDur(r.ShardLatency.QuantileDuration(0.999)),
		})
	}
	// Amplification note: how much each policy's query p99 grows from
	// k=1 to k=max.
	for si, s := range specs {
		base := cells[si*len(fanouts)].res.QueryLatency.QuantileDuration(0.99)
		wide := cells[si*len(fanouts)+len(fanouts)-1].res.QueryLatency.QuantileDuration(0.99)
		if base > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s: query p99 grows %.1fx from k=1 (%v) to k=%d (%v)",
				s.Name, float64(wide)/float64(base), base, fanouts[len(fanouts)-1], wide))
		}
	}
	return []*Table{t}, nil
}
