package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/darc"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/workload"
)

// AblationDelta studies DARC's grouping factor δ on TPC-C at 85% load:
// small δ yields one group per type (more fractional rounding, risk of
// over-provisioning); huge δ collapses everything into one group
// (c-FCFS-like, no isolation). The paper's default (δ=3) reproduces
// its TPC-C grouping {Payment, OrderStatus} {NewOrder} {Delivery,
// StockLevel}.
func AblationDelta(opt Options) ([]*Table, error) {
	opt = opt.fill()
	mix := workload.TPCC()
	const workers = 14
	const load = 0.85
	deltas := []float64{1.01, 1.5, 2, 3, 5, 10, 1000}
	t := &Table{
		Name:   "ablation_delta",
		Title:  "DARC grouping-factor sensitivity, TPC-C at 85% load",
		Header: []string{"delta", "groups", "slowdown_p999", "Payment_p999", "StockLevel_p999"},
	}
	type cell struct {
		delta  float64
		groups int
		slow   float64
		payP   time.Duration
		stockP time.Duration
		err    error
	}
	cells := make([]cell, len(deltas))
	runParallel(opt, len(deltas), func(i int) {
		c := &cells[i]
		c.delta = deltas[i]
		var captured *policy.DARC
		res, err := cluster.Run(cluster.Config{
			Workers:        workers,
			Mix:            mix,
			LoadFraction:   load,
			Duration:       opt.Duration,
			WarmupFraction: 0.1,
			Seed:           opt.Seed,
			RTT:            10 * time.Microsecond,
			NewPolicy: func() cluster.Policy {
				cfg := darc.DefaultConfig(workers)
				cfg.Delta = deltas[i]
				cfg.MinWindowSamples = opt.MinWindowSamples
				captured = policy.NewDARC(cfg, len(mix.Types), 0)
				return captured
			},
		})
		if err != nil {
			c.err = err
			return
		}
		c.slow = metrics.SlowdownAt(res.Recorder.All(), 0.999)
		c.payP = res.Recorder.Type(0).Latency.QuantileDuration(0.999)
		c.stockP = res.Recorder.Type(4).Latency.QuantileDuration(0.999)
		if r := captured.Controller().Reservation(); r != nil {
			c.groups = len(r.Groups)
		}
	})
	for _, c := range cells {
		if c.err != nil {
			return nil, c.err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", c.delta),
			fmt.Sprintf("%d", c.groups),
			fmtSlow(c.slow),
			fmtDur(c.payP),
			fmtDur(c.stockP),
		})
	}
	t.Notes = append(t.Notes,
		"paper default delta=3 yields the §5.4.3 grouping {Payment,OrderStatus} {NewOrder} {Delivery,StockLevel}")
	return []*Table{t}, nil
}

// AblationStealing compares full DARC against DARC without cycle
// stealing (strict static partitioning) on both bimodal workloads at
// 95% load: without stealing, bursts of short requests overwhelm the
// small reserved set and the tail collapses — the §3 argument for
// selectively enabling work conservation.
func AblationStealing(opt Options) ([]*Table, error) {
	opt = opt.fill()
	const workers = 14
	const load = 0.95
	t := &Table{
		Name:   "ablation_stealing",
		Title:  "cycle stealing ablation at 95% load (DARC vs strict static partitioning)",
		Header: []string{"workload", "variant", "slowdown_p999", "short_p999", "long_p999", "drops"},
	}
	type cfgRow struct {
		mix     workload.Mix
		noSteal bool
	}
	var rows []cfgRow
	for _, mix := range []workload.Mix{workload.HighBimodal(), workload.ExtremeBimodal()} {
		rows = append(rows, cfgRow{mix, false}, cfgRow{mix, true})
	}
	type cell struct {
		slow        float64
		short, long time.Duration
		drops       uint64
		err         error
	}
	cells := make([]cell, len(rows))
	runParallel(opt, len(rows), func(i int) {
		r := rows[i]
		res, err := cluster.Run(cluster.Config{
			Workers:        workers,
			Mix:            r.mix,
			LoadFraction:   load,
			Duration:       opt.Duration,
			WarmupFraction: 0.1,
			Seed:           opt.Seed,
			RTT:            10 * time.Microsecond,
			NewPolicy: func() cluster.Policy {
				cfg := darc.DefaultConfig(workers)
				cfg.MinWindowSamples = opt.MinWindowSamples
				cfg.NoCycleStealing = r.noSteal
				return policy.NewDARC(cfg, len(r.mix.Types), 0)
			},
		})
		if err != nil {
			cells[i].err = err
			return
		}
		cells[i] = cell{
			slow:  metrics.SlowdownAt(res.Recorder.All(), 0.999),
			short: res.Recorder.Type(0).Latency.QuantileDuration(0.999),
			long:  res.Recorder.Type(1).Latency.QuantileDuration(0.999),
			drops: res.Machine.Dropped(),
		}
	})
	for i, r := range rows {
		if cells[i].err != nil {
			return nil, cells[i].err
		}
		variant := "DARC"
		if r.noSteal {
			variant = "DARC-nosteal"
		}
		t.Rows = append(t.Rows, []string{
			r.mix.Name, variant,
			fmtSlow(cells[i].slow),
			fmtDur(cells[i].short),
			fmtDur(cells[i].long),
			fmt.Sprintf("%d", cells[i].drops),
		})
	}
	t.Notes = append(t.Notes,
		"stealing lets shorts absorb bursts on longer groups' cores; without it the short group saturates its reservation")
	return []*Table{t}, nil
}
