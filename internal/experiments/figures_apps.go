package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Figure6 reproduces §5.4.3: TPC-C across Shenango, Shinjuku
// (multi-queue, 10µs quantum) and Perséphone, 14 workers.
func Figure6(opt Options) ([]*Table, error) {
	opt = opt.fill()
	mix := workload.TPCC()
	const workers = 14
	specs := []PolicySpec{
		specShenango(),
		specShinjukuMQ(10*time.Microsecond, len(mix.Types)),
		specDARC(opt, workers, len(mix.Types)),
	}
	points, err := sweep(opt, cluster.Config{Workers: workers, RTT: 10 * time.Microsecond}, mix, specs)
	if err != nil {
		return nil, err
	}
	curve := slowdownCurveTable("figure6", "TPC-C overall p99.9 slowdown vs load (paper Figure 6, first column)", opt, points, specs)

	// Per-transaction p99.9 latency: one row per (load, policy),
	// columns are the five transactions in Table 4 order.
	lat := &Table{
		Name:   "figure6_latency",
		Title:  "TPC-C per-transaction p99.9 latency (paper Figure 6, columns b-f)",
		Header: []string{"load", "policy"},
	}
	for _, ts := range mix.Types {
		lat.Header = append(lat.Header, ts.Name+"_p999")
	}
	byKey := indexPoints(points)
	for _, load := range opt.Loads {
		for _, s := range specs {
			p, ok := byKey[key(s.Name, load)]
			if !ok {
				continue
			}
			row := []string{fmt.Sprintf("%.2f", load), s.Name}
			for ti := range mix.Types {
				row = append(row, fmtDur(p.Res.Recorder.Type(ti).Latency.QuantileDuration(0.999)))
			}
			lat.Rows = append(lat.Rows, row)
		}
	}

	// Headline comparisons at 85% load (the paper's quoted operating
	// point): latency improvements for Payment/OrderStatus/NewOrder
	// over Shenango c-FCFS, and the overall slowdown reduction.
	cmpLoad := nearestLoad(opt.Loads, 0.85)
	d := byKey[key("DARC", cmpLoad)]
	she := byKey[key("shenango-cFCFS", cmpLoad)]
	shi := byKey[key("shinjuku-MQ", cmpLoad)]
	if d.Res != nil && she.Res != nil {
		for _, name := range []string{"Payment", "OrderStatus", "NewOrder"} {
			ti := typeIndexByName(mix, name)
			dv := d.Res.Recorder.Type(ti).Latency.QuantileDuration(0.999)
			sv := she.Res.Recorder.Type(ti).Latency.QuantileDuration(0.999)
			curve.Notes = append(curve.Notes, fmt.Sprintf(
				"%s p999 at %.0f%% load: DARC %v vs Shenango %v (%.1fx; paper: 9.2x/7x/3.6x for the three)",
				name, cmpLoad*100, dv, sv, float64(sv)/float64(dv)))
		}
		ds := metrics.SlowdownAt(d.Res.Recorder.All(), 0.999)
		ss := metrics.SlowdownAt(she.Res.Recorder.All(), 0.999)
		curve.Notes = append(curve.Notes, fmt.Sprintf(
			"overall slowdown reduction vs Shenango at %.0f%%: %.1fx (paper: up to 4.6x)", cmpLoad*100, ss/ds))
		if shi.Res != nil {
			is := metrics.SlowdownAt(shi.Res.Recorder.All(), 0.999)
			curve.Notes = append(curve.Notes, fmt.Sprintf(
				"overall slowdown reduction vs Shinjuku at %.0f%%: %.1fx (paper: up to 3.1x)", cmpLoad*100, is/ds))
		}
	}
	target := 10.0
	curve.Notes = append(curve.Notes, fmt.Sprintf(
		"at 10x slowdown target: DARC/Shenango = %.2fx (paper 1.2x), DARC/Shinjuku = %.2fx (paper 1.05x)",
		ratio(sustainableLoad(opt, points, "DARC", target), sustainableLoad(opt, points, "shenango-cFCFS", target)),
		ratio(sustainableLoad(opt, points, "DARC", target), sustainableLoad(opt, points, "shinjuku-MQ", target))))
	return []*Table{curve, lat}, nil
}

// Figure8 reproduces §5.4.4: the RocksDB service (50% GET 1.5µs, 50%
// SCAN 635µs) across Shenango, Shinjuku (multi-queue, 15µs) and
// Perséphone.
func Figure8(opt Options) ([]*Table, error) {
	opt = opt.fill()
	mix := workload.RocksDB()
	const workers = 14
	specs := []PolicySpec{
		specShenango(),
		specShinjukuMQ(15*time.Microsecond, len(mix.Types)),
		specDARC(opt, workers, len(mix.Types)),
	}
	points, err := sweep(opt, cluster.Config{Workers: workers, RTT: 10 * time.Microsecond}, mix, specs)
	if err != nil {
		return nil, err
	}
	curve := slowdownCurveTable("figure8", "RocksDB p99.9 slowdown vs load (paper Figure 8)", opt, points, specs)
	lat := typedLatencyTable("figure8_latency", "per-type p99.9 latency for Figure 8", opt, points, specs, mix)
	target := 20.0
	she := sustainableLoad(opt, points, "shenango-cFCFS", target)
	shi := sustainableLoad(opt, points, "shinjuku-MQ", target)
	d := sustainableLoad(opt, points, "DARC", target)
	curve.Notes = append(curve.Notes, fmt.Sprintf(
		"at 20x slowdown target: DARC/Shenango = %.2fx (paper 2.3x), DARC/Shinjuku = %.2fx (paper 1.3x)",
		ratio(d, she), ratio(d, shi)))
	return []*Table{curve, lat}, nil
}

func nearestLoad(loads []float64, want float64) float64 {
	best := loads[0]
	for _, l := range loads {
		if diff(l, want) < diff(best, want) {
			best = l
		}
	}
	return best
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
