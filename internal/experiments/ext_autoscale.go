package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/policy"
	"repro/internal/workload"
)

// ExtAutoscale demonstrates the paper's §6 sketch of DARC cooperating
// with a core allocator: offered load steps low → high → low while an
// elastic DARC grows and releases cores, recomputing reservations at
// every allocation change. The table tracks active cores and p99.9
// latency per type over time.
func ExtAutoscale(opt Options) ([]*Table, error) {
	opt = opt.fill()
	const maxWorkers = 14
	mix := workload.HighBimodal()
	peak := mix.PeakLoad(maxWorkers)
	phaseDur := opt.Duration
	sched := &workload.Schedule{Phases: []workload.Phase{
		{Mix: mix, Rate: 0.20 * peak, Duration: phaseDur},
		{Mix: mix, Rate: 0.75 * peak, Duration: phaseDur},
		{Mix: mix, Rate: 0.20 * peak, Duration: phaseDur},
	}}
	total := sched.TotalDuration()
	window := total / 45
	if window <= 0 {
		window = 20 * time.Millisecond
	}

	type resizeEvent struct {
		at     time.Duration
		active int
	}
	var events []resizeEvent
	var pol *policy.ElasticDARC
	res, err := cluster.Run(cluster.Config{
		Workers:        maxWorkers,
		Schedule:       sched,
		Duration:       total,
		WarmupFraction: 0,
		Seed:           opt.Seed,
		TrackWindow:    window,
		NewPolicy: func() cluster.Policy {
			cfg := darcConfigFor(maxWorkers, RunCtx{
				Seed: opt.Seed, Rate: 0.5 * peak, Duration: total,
				Workers: maxWorkers, WindowCap: opt.MinWindowSamples,
			})
			pol = policy.NewElasticDARC(cfg, len(mix.Types), 0)
			pol.Min = 2
			pol.Interval = total / 120
			pol.OnResize = func(now time.Duration, active int) {
				events = append(events, resizeEvent{at: now, active: active})
			}
			return pol
		},
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(events, func(i, j int) bool { return events[i].at < events[j].at })
	activeAt := func(at time.Duration) int {
		a := 0
		for _, e := range events {
			if e.at > at {
				break
			}
			a = e.active
		}
		return a
	}

	t := &Table{
		Name:   "ext_autoscale",
		Title:  "elastic DARC with a core allocator: load steps 20% -> 75% -> 20% of a 14-core peak",
		Header: []string{"t", "offered_frac", "active_cores", "short_p999", "long_p999"},
	}
	shortSeries := res.Series.Series(0, 0.999)
	longSeries := res.Series.Series(1, 0.999)
	for i := range shortSeries {
		at := shortSeries[i].Start
		frac := sched.Phases[sched.PhaseAt(at)].Rate / peak
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2fs", at.Seconds()),
			fmt.Sprintf("%.2f", frac),
			fmt.Sprintf("%d", activeAt(at)),
			fmtDur(time.Duration(shortSeries[i].Value)),
			fmtDur(time.Duration(valueAt(longSeries, i))),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"%d allocation changes; final active %d of %d cores; dropped %d",
		pol.Resizes(), pol.Active(), maxWorkers, res.Machine.Dropped()))
	// Shape check: the high phase must use more cores than the lows.
	midActive := activeAt(phaseDur + phaseDur/2)
	endActive := activeAt(total - window)
	t.Notes = append(t.Notes, fmt.Sprintf(
		"active cores mid-burst %d vs end-of-run %d (allocator released cores when load fell)",
		midActive, endActive))
	return []*Table{t}, nil
}
