package experiments

import (
	"fmt"
	"time"

	"repro/internal/admission"
	"repro/internal/classify"
	"repro/internal/darc"
	"repro/internal/loadgen"
	"repro/internal/proto"
	"repro/internal/psp"
	"repro/internal/rng"
	"repro/internal/workload"
)

// ExtOverload probes the live runtime past saturation — the regime the
// paper's evaluation stops short of. A 90/10 short/long mix is offered
// at multiples of the machine's nominal capacity; DARC with the
// deadline-aware admission controller is compared against plain DARC
// and c-FCFS, both unprotected. The claim under test: with admission
// control, the short class's p99 stays pinned near its queueing budget
// no matter how far past saturation the offered load climbs, because
// over-budget requests are refused (with a retry-after NACK) instead
// of queueing; the unprotected systems' tails grow with the backlog.

const (
	overloadWorkers  = 8
	overloadShortSvc = time.Millisecond
	overloadLongSvc  = 20 * time.Millisecond
	// overloadShortBudget / overloadLongBudget are the declared
	// per-type admission queue-delay budgets.
	overloadShortBudget = 3 * time.Millisecond
	overloadLongBudget  = 50 * time.Millisecond
	// overloadTrimDelay is the sustained queue-delay EWMA above which
	// reverse-reservation overload trimming engages. The auto-derived
	// default (half the smallest budget) is tuned for microsecond-scale
	// budgets; at this experiment's millisecond scale it would trim a
	// comfortably sub-saturated baseline, so the threshold is pinned
	// well above the baseline's steady queueing delay.
	overloadTrimDelay = 10 * time.Millisecond
	// overloadSvcAllowance derates the nominal capacity estimate for
	// the live side's sleep overshoot (a sleeping worker holds its
	// core slightly past the nominal service time on a ticked timer),
	// so the sub-saturation baseline multiple is genuinely
	// sub-saturated on a noisy host.
	overloadSvcAllowance = 500 * time.Microsecond
)

// overloadMix is the 90/10 short/long experiment workload.
func overloadMix() workload.Mix {
	return workload.Mix{
		Name: "overload-bimodal",
		Types: []workload.TypeSpec{
			{Name: "short", Ratio: 0.9, Service: rng.Fixed(overloadShortSvc)},
			{Name: "long", Ratio: 0.1, Service: rng.Fixed(overloadLongSvc)},
		},
	}
}

// overloadCapacity is the derated capacity estimate in requests per
// second: workers divided by the allowance-padded mean service time.
func overloadCapacity() float64 {
	mean := 0.9*(overloadShortSvc+overloadSvcAllowance).Seconds() +
		0.1*(overloadLongSvc+overloadSvcAllowance).Seconds()
	return float64(overloadWorkers) / mean
}

// overloadSystems names the schedulers under comparison.
func overloadSystems() []string {
	return []string{"darc+admission", "darc", "cfcfs"}
}

// overloadPoint is one (system, load multiple) measurement.
type overloadPoint struct {
	System   string
	Multiple float64
	Offered  float64 // requests per second
	Res      *loadgen.Result
	// Admission is the server-side shed ledger (nil for the
	// unprotected systems).
	Admission *admission.Stats
}

// shortP99 / longP99 are the client-observed latency quantiles of the
// requests that were actually answered.
func (p *overloadPoint) shortP99() time.Duration { return p.Res.Latency[0].QuantileDuration(0.99) }
func (p *overloadPoint) longP99() time.Duration  { return p.Res.Latency[1].QuantileDuration(0.99) }

// runOverloadPoint offers mult x the derated capacity to a fresh live
// server running the named system for dur, then drains and snapshots
// the admission ledger at quiescence.
func runOverloadPoint(system string, mult float64, dur time.Duration, seed uint64) (*overloadPoint, error) {
	mix := overloadMix()
	svcs := []time.Duration{overloadShortSvc, overloadLongSvc}
	cfg := psp.Config{
		Workers:    overloadWorkers,
		Classifier: classify.Field{Offset: 0, Types: len(svcs)},
		// Sleep (don't spin) the service demand so oversubscribed hosts
		// aren't starved; shave the expected timer-tick overshoot off
		// multi-millisecond sleeps, as the conformance harness does.
		Handler: psp.HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			svc := svcs[0]
			if typ >= 0 && typ < len(svcs) {
				svc = svcs[typ]
			}
			if svc >= 3*time.Millisecond {
				svc -= time.Millisecond
			}
			time.Sleep(svc)
			return copy(r, p[:min(len(p), len(r))]), proto.StatusOK
		}),
	}
	switch system {
	case "darc+admission", "darc":
		cfg.Mode = psp.ModeDARC
		dcfg := darc.DefaultConfig(overloadWorkers)
		dcfg.MinWindowSamples = 96
		cfg.DARC = dcfg
	case "cfcfs":
		cfg.Mode = psp.ModeCFCFS
	default:
		return nil, fmt.Errorf("experiments: unknown overload system %q", system)
	}
	if system == "darc+admission" {
		cfg.Admission = &admission.Config{
			Budgets:       []time.Duration{overloadShortBudget, overloadLongBudget},
			OverloadDelay: overloadTrimDelay,
		}
	}
	srv, err := psp.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	srv.Start()
	defer srv.Stop()

	offered := mult * overloadCapacity()
	res, err := loadgen.Run(loadgen.RunConfig{
		Config: loadgen.Config{
			Mix:      mix,
			Rate:     offered,
			Duration: dur,
			Seed:     seed,
			// The backlog an unprotected system accumulates past
			// saturation takes about as long again to drain as it took
			// to build; give stragglers room so the tail is measured,
			// not truncated.
			Timeout: 4*dur + 10*time.Second,
		},
		Transport: loadgen.TransportInProcess,
		Server:    srv,
	})
	if err != nil {
		return nil, err
	}
	pt := &overloadPoint{System: system, Multiple: mult, Offered: offered, Res: res}
	// Run returns once every request settled from the client's view,
	// but the dispatcher notes a completion asynchronously after the
	// worker posts the response — give the ledger a moment to balance
	// before snapshotting, so the identity (accepted == completed +
	// shed) holds exactly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := srv.StatsSnapshot()
		if st.Admission == nil {
			break
		}
		pt.Admission = st.Admission
		if tot := st.Admission.Totals(); tot.Accepted == tot.Completed+tot.Shed() || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	return pt, nil
}

// ExtOverload sweeps the three systems across sub- and super-saturated
// load multiples.
func ExtOverload(opt Options) ([]*Table, error) {
	opt = opt.fill()
	multiples := []float64{0.8, 1.5, 2.0}
	t := &Table{
		Name:  "ext_overload",
		Title: "overload: 90/10 bimodal offered at multiples of capacity, admission control vs unprotected",
		Header: []string{"system", "load_x", "offered_rps", "sent", "answered", "shed",
			"shed_deadline", "shed_overload", "short_p99", "long_p99"},
	}
	for _, system := range overloadSystems() {
		for _, mult := range multiples {
			pt, err := runOverloadPoint(system, mult, opt.Duration, opt.Seed)
			if err != nil {
				return nil, err
			}
			var shedDeadline, shedOverload uint64
			if pt.Admission != nil {
				tot := pt.Admission.Totals()
				shedDeadline, shedOverload = tot.ShedDeadline, tot.ShedOverload
			}
			t.Rows = append(t.Rows, []string{
				system,
				fmt.Sprintf("%.1f", mult),
				fmt.Sprintf("%.0f", pt.Offered),
				fmt.Sprintf("%d", pt.Res.Sent),
				fmt.Sprintf("%d", pt.Res.Received),
				fmt.Sprintf("%d", pt.Res.Dropped),
				fmt.Sprintf("%d", shedDeadline),
				fmt.Sprintf("%d", shedOverload),
				fmtDur(pt.shortP99()),
				fmtDur(pt.longP99()),
			})
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("derated capacity %.0f rps on %d workers; short budget %v, long budget %v",
			overloadCapacity(), overloadWorkers, overloadShortBudget, overloadLongBudget),
		"admission keeps the short p99 near its budget past saturation; the unprotected tails track the backlog")
	return []*Table{t}, nil
}
