package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/workload"
)

// AblationDispatcher reproduces the system-level effect behind
// Shinjuku's load ceiling: the paper measured Shinjuku's centralized
// dispatcher sustaining ≈4.5M 1µs requests/second *without*
// preemption, i.e. a ≈220ns serialized dispatch path. On Extreme
// Bimodal (peak 5.34Mrps on 16 workers), that path saturates before
// the workers do — the policy alone looks better than the system it
// runs in. We sweep load for Shinjuku's single-queue policy with and
// without the dispatcher stage, plus DARC for reference.
func AblationDispatcher(opt Options) ([]*Table, error) {
	opt = opt.fill()
	mix := workload.ExtremeBimodal()
	const workers = 16
	const dispatchCost = 222 * time.Nanosecond // 1s / 4.5M
	specs := []PolicySpec{
		specShinjukuSQ(5 * time.Microsecond),
		{Name: "shinjuku-SQ+dispatcher", New: func(RunCtx) cluster.Policy {
			return &policy.IngressBottleneck{
				Inner:      policy.NewTSSingleQueue(policy.TSConfig{Quantum: 5 * time.Microsecond, PreemptCost: time.Microsecond}),
				PerRequest: dispatchCost,
			}
		}},
		specDARC(opt, workers, len(mix.Types)),
	}
	points, err := sweep(opt, cluster.Config{Workers: workers}, mix, specs)
	if err != nil {
		return nil, err
	}
	t := slowdownCurveTable("ablation_dispatcher",
		"dispatcher-bottleneck ablation: Shinjuku's policy vs Shinjuku's system (Extreme Bimodal, 16 workers)",
		opt, points, specs)

	// Drops tell the ceiling story: the bounded dispatcher queue sheds
	// once the 222ns stage saturates (~84% of this mix's peak).
	byKey := indexPoints(points)
	drops := &Table{
		Name:   "ablation_dispatcher_drops",
		Title:  "drop rate with and without the dispatcher stage",
		Header: []string{"load", "shinjuku-SQ_droprate", "shinjuku-SQ+dispatcher_droprate"},
	}
	for _, load := range opt.Loads {
		plain := byKey[key("shinjuku-SQ", load)]
		capped := byKey[key("shinjuku-SQ+dispatcher", load)]
		drops.Rows = append(drops.Rows, []string{
			fmt.Sprintf("%.2f", load),
			fmt.Sprintf("%.4f", plain.Res.Recorder.DropRate()),
			fmt.Sprintf("%.4f", capped.Res.Recorder.DropRate()),
		})
	}
	plainSustain := sustainableLoad(opt, points, "shinjuku-SQ", 50)
	cappedSustain := sustainableLoad(opt, points, "shinjuku-SQ+dispatcher", 50)
	t.Notes = append(t.Notes, fmt.Sprintf(
		"at 50x slowdown: plain policy sustains %.2f of peak, with the measured dispatcher path %.2f (paper observed Shinjuku dropping past 0.55 on this workload)",
		plainSustain, cappedSustain))
	_ = metrics.SlowdownScale
	return []*Table{t, drops}, nil
}
