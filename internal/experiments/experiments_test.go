package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// tinyOptions keeps simulation-backed tests fast.
func tinyOptions() Options {
	return Options{
		Duration:         40 * time.Millisecond,
		Loads:            []float64{0.4, 0.8},
		Seed:             7,
		MinWindowSamples: 500,
	}
}

func TestTableFprintAlignment(t *testing.T) {
	tb := &Table{
		Name:   "t",
		Title:  "title",
		Header: []string{"a", "long_column"},
		Rows:   [][]string{{"x", "1"}, {"yyyy", "22"}},
		Notes:  []string{"note text"},
	}
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== t — title") || !strings.Contains(out, "note: note text") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestTableWriteCSV(t *testing.T) {
	dir := t.TempDir()
	tb := &Table{
		Name:   "csvtest",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "with,comma"}, {"2", `with"quote`}},
	}
	if err := tb.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "csvtest.csv"))
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"with,comma\"\n2,\"with\"\"quote\"\n"
	if string(data) != want {
		t.Fatalf("csv %q, want %q", data, want)
	}
}

func TestStaticTables(t *testing.T) {
	for _, tb := range []*Table{Table1(), Table3(), Table4(), Table5()} {
		if len(tb.Rows) == 0 || len(tb.Header) == 0 {
			t.Errorf("%s empty", tb.Name)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Errorf("%s: row width %d vs header %d", tb.Name, len(row), len(tb.Header))
			}
		}
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tb := Table1()
	// DARC row: typed queues yes, non-work-conserving yes,
	// non-preemptive yes.
	var darcRow []string
	for _, row := range tb.Rows {
		if row[0] == "DARC" {
			darcRow = row
		}
	}
	if darcRow == nil {
		t.Fatal("no DARC row")
	}
	if darcRow[1] != "yes" || darcRow[2] != "yes" || darcRow[3] != "yes" {
		t.Fatalf("DARC row %v", darcRow)
	}
}

func TestRegistryNames(t *testing.T) {
	names := Names()
	if len(names) != 23 {
		t.Fatalf("registry has %d artifacts: %v", len(names), names)
	}
	if err := Run("missing", Options{}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown artifact accepted")
	}
}

func TestSweepPairsSeeds(t *testing.T) {
	opt := tinyOptions()
	mix := workload.HighBimodal()
	specs := []PolicySpec{specCFCFS()}
	a, err := sweep(opt, cluster.Config{Workers: 4}, mix, specs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sweep(opt, cluster.Config{Workers: 4}, mix, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Res.Machine.Completed() != b[i].Res.Machine.Completed() {
			t.Fatal("sweep not deterministic")
		}
	}
}

func TestSustainableLoad(t *testing.T) {
	opt := tinyOptions()
	mix := workload.HighBimodal()
	specs := []PolicySpec{specCFCFS()}
	points, err := sweep(opt, cluster.Config{Workers: 4}, mix, specs)
	if err != nil {
		t.Fatal(err)
	}
	// With a huge target, the max load is sustainable; with an
	// impossible one, nothing is.
	if got := sustainableLoad(opt, points, "c-FCFS", 1e12); got != 0.8 {
		t.Fatalf("sustainable %g, want 0.8", got)
	}
	if got := sustainableLoad(opt, points, "c-FCFS", 0.0001); got != 0 {
		t.Fatalf("sustainable %g, want 0", got)
	}
}

func TestFigure9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opt := tinyOptions()
	opt.Duration = 150 * time.Millisecond
	opt.Loads = []float64{0.8}
	tables, err := Figure9(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 1 {
		t.Fatalf("tables %+v", tables)
	}
	// Columns: load, offered, c-FCFS, DARC, DARC-random.
	row := tables[0].Rows[0]
	if len(row) != 5 {
		t.Fatalf("row %v", row)
	}
}

func TestFigure4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opt := tinyOptions()
	tables, err := Figure4(opt)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) != 15 { // reserved 0..14
		t.Fatalf("%d rows", len(tb.Rows))
	}
	if len(tb.Notes) < 2 {
		t.Fatalf("notes %v", tb.Notes)
	}
}

func TestFigure7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opt := tinyOptions()
	opt.Duration = 300 * time.Millisecond // per phase
	opt.MinWindowSamples = 2000
	tables, err := Figure7(opt)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) < 20 {
		t.Fatalf("only %d windows", len(tb.Rows))
	}
	// The phase column must reach 4.
	last := tb.Rows[len(tb.Rows)-1]
	if last[1] != "4" {
		t.Fatalf("last phase %s", last[1])
	}
	// At least one reservation update must have fired.
	if len(tb.Notes) == 0 || strings.Contains(tb.Notes[0], " 0 reservation updates") {
		t.Fatalf("notes %v", tb.Notes)
	}
}

func TestFigure7Phases(t *testing.T) {
	sched := Figure7Phases(14, time.Second)
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sched.Phases) != 4 {
		t.Fatalf("%d phases", len(sched.Phases))
	}
	// Phase 2 swaps service times relative to phase 1.
	p1 := sched.Phases[0].Mix
	p2 := sched.Phases[1].Mix
	if p1.Types[0].Service.Mean() != p2.Types[1].Service.Mean() {
		t.Fatal("phase 2 does not swap service times")
	}
}

func TestEmitWritesCSV(t *testing.T) {
	dir := t.TempDir()
	opt := Options{CSVDir: dir}
	var buf bytes.Buffer
	if err := Emit(&buf, opt, Table3()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "table3.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestNearestLoad(t *testing.T) {
	loads := []float64{0.2, 0.5, 0.9}
	if nearestLoad(loads, 0.85) != 0.9 || nearestLoad(loads, 0.1) != 0.2 {
		t.Fatal("nearestLoad wrong")
	}
}

func TestFmtHelpers(t *testing.T) {
	if fmtSlow(5.234) != "5.23" || fmtSlow(52.34) != "52.3" || fmtSlow(5234) != "5234" {
		t.Fatal("fmtSlow wrong")
	}
	if fmtDur(1500*time.Nanosecond) != "1.50us" {
		t.Fatalf("fmtDur %s", fmtDur(1500*time.Nanosecond))
	}
}
