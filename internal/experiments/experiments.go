// Package experiments regenerates every table and figure of the
// paper's evaluation on the discrete-event simulator: workload
// definitions (Tables 3-4), policy taxonomies (Tables 1 and 5), the §2
// motivation simulation (Figure 1), the Perséphone-internal policy
// comparison (Figure 3), the non-work-conservation ablation (Figure
// 4), the cross-system comparisons (Figures 5a/5b/6/8), the
// workload-change and broken-classifier robustness experiments
// (Figures 7 and 9), and the preemption-overhead study (Figure 10).
//
// Each experiment returns one or more Tables that print the same rows
// or series the paper reports, and can be written as CSV for plotting.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Options tunes experiment execution. The zero value is usable.
type Options struct {
	// Duration is the simulated horizon per load point (default 1s;
	// the paper runs 20s but distributions stabilize much earlier).
	Duration time.Duration
	// Seed drives every run (same seed → same arrival sequences across
	// policies, so comparisons are paired).
	Seed uint64
	// Loads are the offered-load fractions to sweep (default the
	// paper-style 10%..95% grid).
	Loads []float64
	// Parallel bounds concurrent simulation runs (default NumCPU).
	Parallel int
	// CSVDir, when set, receives one CSV file per table.
	CSVDir string
	// MinWindowSamples sets DARC's profiling window (default 5000;
	// the paper uses 50000 over 20s runs — scale it with Duration).
	MinWindowSamples uint64
}

func (o Options) fill() Options {
	if o.Duration <= 0 {
		o.Duration = time.Second
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if len(o.Loads) == 0 {
		o.Loads = []float64{0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.95}
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.NumCPU()
	}
	if o.MinWindowSamples == 0 {
		o.MinWindowSamples = 5000
	}
	return o
}

// Table is a printable experiment artifact.
type Table struct {
	// Name is the artifact's identifier ("figure1", "table3", ...).
	Name string
	// Title is the human-readable caption.
	Title string
	// Header names the columns.
	Header []string
	// Rows hold formatted cells.
	Rows [][]string
	// Notes carries shape observations vs the paper's claims.
	Notes []string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s\n", t.Name, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// WriteCSV writes the table to dir/<name>.csv.
func (t *Table) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var b strings.Builder
	writeCSVRow(&b, t.Header)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return os.WriteFile(filepath.Join(dir, t.Name+".csv"), []byte(b.String()), 0o644)
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// Emit prints tables to w and writes CSVs when configured.
func Emit(w io.Writer, opt Options, tables ...*Table) error {
	for _, t := range tables {
		t.Fprint(w)
		if opt.CSVDir != "" {
			if err := t.WriteCSV(opt.CSVDir); err != nil {
				return err
			}
		}
	}
	return nil
}

// RunCtx carries the parameters of one simulation run into policy
// constructors: stochastic policies need the seed, and DARC sizes its
// profiling window from the arrival rate so the c-FCFS startup phase
// always completes inside the warm-up discard.
type RunCtx struct {
	Seed     uint64
	Rate     float64 // offered requests/second
	Duration time.Duration
	Workers  int
	// WindowCap is Options.MinWindowSamples, the upper bound on DARC's
	// auto-scaled profiling window.
	WindowCap uint64
}

// DARCWindow returns the profiling-window size for this run: half the
// arrivals expected during the 10% warm-up, clamped to [200,
// WindowCap].
func (c RunCtx) DARCWindow() uint64 {
	auto := uint64(c.Rate * c.Duration.Seconds() * 0.1 * 0.5)
	if auto < 200 {
		auto = 200
	}
	cap := c.WindowCap
	if cap == 0 {
		cap = 5000
	}
	if auto > cap {
		auto = cap
	}
	return auto
}

// PolicySpec names a policy constructor for sweeps.
type PolicySpec struct {
	Name string
	New  func(ctx RunCtx) cluster.Policy
}

// runPoint is one (policy, load) cell of a sweep.
type runPoint struct {
	Policy string
	Load   float64
	Res    *cluster.Result
	Err    error
}

// sweep simulates every (policy, load) combination, in parallel.
func sweep(opt Options, base cluster.Config, mix workload.Mix, specs []PolicySpec) ([]runPoint, error) {
	opt = opt.fill()
	var points []runPoint
	for _, spec := range specs {
		for _, load := range opt.Loads {
			points = append(points, runPoint{Policy: spec.Name, Load: load})
		}
	}
	sem := make(chan struct{}, opt.Parallel)
	var wg sync.WaitGroup
	for i := range points {
		i := i
		spec := specs[i/len(opt.Loads)]
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			cfg := base
			cfg.Mix = mix
			cfg.LoadFraction = points[i].Load
			cfg.Duration = opt.Duration
			cfg.Seed = opt.Seed
			cfg.WarmupFraction = 0.1
			ctx := RunCtx{
				Seed:      opt.Seed,
				Rate:      points[i].Load * mix.PeakLoad(cfg.Workers),
				Duration:  opt.Duration,
				Workers:   cfg.Workers,
				WindowCap: opt.MinWindowSamples,
			}
			cfg.NewPolicy = func() cluster.Policy { return spec.New(ctx) }
			res, err := cluster.Run(cfg)
			points[i].Res = res
			points[i].Err = err
		}()
	}
	wg.Wait()
	for _, p := range points {
		if p.Err != nil {
			return nil, fmt.Errorf("%s @%.0f%%: %w", p.Policy, p.Load*100, p.Err)
		}
	}
	return points, nil
}

// slowdownCurveTable renders a sweep as one row per load with a column
// per policy carrying the p99.9 slowdown across all requests.
func slowdownCurveTable(name, title string, opt Options, points []runPoint, specs []PolicySpec) *Table {
	opt = opt.fill()
	t := &Table{Name: name, Title: title}
	t.Header = append(t.Header, "load", "offered_Mrps")
	for _, s := range specs {
		t.Header = append(t.Header, s.Name+"_slowdown_p999")
	}
	byKey := indexPoints(points)
	for _, load := range opt.Loads {
		row := []string{fmt.Sprintf("%.2f", load)}
		first := byKey[key(specs[0].Name, load)]
		row = append(row, fmt.Sprintf("%.3f", first.Res.OfferedRPS/1e6))
		for _, s := range specs {
			p := byKey[key(s.Name, load)]
			row = append(row, fmtSlow(metrics.SlowdownAt(p.Res.Recorder.All(), 0.999)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func indexPoints(points []runPoint) map[string]runPoint {
	m := make(map[string]runPoint, len(points))
	for _, p := range points {
		m[key(p.Policy, p.Load)] = p
	}
	return m
}

func key(policy string, load float64) string {
	return fmt.Sprintf("%s|%.4f", policy, load)
}

func fmtSlow(v float64) string {
	switch {
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func fmtDur(d time.Duration) string {
	us := float64(d) / float64(time.Microsecond)
	switch {
	case us >= 10000:
		return fmt.Sprintf("%.0fus", us)
	case us >= 100:
		return fmt.Sprintf("%.0fus", us)
	default:
		return fmt.Sprintf("%.2fus", us)
	}
}

// sustainableLoad reports the highest swept load whose p99.9 slowdown
// stays at or below target for the given policy (0 if none).
func sustainableLoad(opt Options, points []runPoint, policy string, target float64) float64 {
	opt = opt.fill()
	byKey := indexPoints(points)
	best := 0.0
	for _, load := range opt.Loads {
		p, ok := byKey[key(policy, load)]
		if !ok {
			continue
		}
		if metrics.SlowdownAt(p.Res.Recorder.All(), 0.999) <= target && load > best {
			best = load
		}
	}
	return best
}

// typeIndexByName resolves a type index in a mix, panicking on
// programmer error (experiments reference their own mixes).
func typeIndexByName(mix workload.Mix, name string) int {
	i := mix.IndexOf(name)
	if i < 0 {
		panic(fmt.Sprintf("experiments: mix %q has no type %q", mix.Name, name))
	}
	return i
}

// sortedNames returns map keys in sorted order (stable output).
func sortedNames[T any](m map[string]T) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
