package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Extension experiments beyond the paper's figures: they probe DARC
// where the paper's evaluation (fixed service times, Poisson arrivals,
// single server) does not.

// ExtVariance replaces the paper's fixed per-type service times with
// exponential ones (same means): the profiler now sees real variance
// and the reservation sizing must still hold. High Bimodal, 14
// workers.
func ExtVariance(opt Options) ([]*Table, error) {
	opt = opt.fill()
	mix := workload.Mix{
		Name: "HighBimodal-exp",
		Types: []workload.TypeSpec{
			{Name: "short", Ratio: 0.5, Service: rng.Exponential(time.Microsecond)},
			{Name: "long", Ratio: 0.5, Service: rng.Exponential(100 * time.Microsecond)},
		},
	}
	const workers = 14
	specs := []PolicySpec{
		specDARC(opt, workers, len(mix.Types)),
		specCFCFS(),
		specShinjukuMQ(5*time.Microsecond, len(mix.Types)),
	}
	points, err := sweep(opt, cluster.Config{Workers: workers, RTT: 10 * time.Microsecond}, mix, specs)
	if err != nil {
		return nil, err
	}
	curve := slowdownCurveTable("ext_variance",
		"exponential (not fixed) service times, High Bimodal means, 14 workers", opt, points, specs)
	lat := typedLatencyTable("ext_variance_latency", "per-type p99.9 latency with exponential service", opt, points, specs, mix)
	d := sustainableLoad(opt, points, "DARC", 20)
	c := sustainableLoad(opt, points, "c-FCFS", 20)
	curve.Notes = append(curve.Notes, fmt.Sprintf(
		"at 20x slowdown: DARC sustains %.2f vs c-FCFS %.2f — profiling tolerates service-time variance", d, c))
	return []*Table{curve, lat}, nil
}

// ExtBurst replays a bursty (on/off MMPP) arrival trace: bursts at 4x
// the base rate for ~5ms, quiet phases between. Cycle stealing is what
// lets DARC's small short-request reservation absorb the bursts; the
// no-stealing variant shows the difference.
func ExtBurst(opt Options) ([]*Table, error) {
	opt = opt.fill()
	// Extreme Bimodal: shorts need ~2.3 cores at peak, so a 4x burst
	// pushes their instantaneous demand well past the reservation and
	// only cycle stealing can absorb it.
	mix := workload.ExtremeBimodal()
	const workers = 14
	peak := mix.PeakLoad(workers)
	bsrc, err := workload.NewBurstySource(mix, 0.50*peak, 4, 5*time.Millisecond, 15*time.Millisecond, rng.New(opt.Seed))
	if err != nil {
		return nil, err
	}
	tr := trace.Generate(bsrc, opt.Duration)
	if tr.Len() == 0 {
		return nil, fmt.Errorf("experiments: empty bursty trace")
	}

	specs := []PolicySpec{
		specDARC(opt, workers, len(mix.Types)),
		{Name: "DARC-nosteal", New: func(ctx RunCtx) cluster.Policy {
			cfg := darcConfigFor(workers, ctx)
			cfg.NoCycleStealing = true
			return newDARCPolicy(cfg, len(mix.Types))
		}},
		specCFCFS(),
	}
	t := &Table{
		Name:   "ext_burst",
		Title:  fmt.Sprintf("bursty arrivals (on/off MMPP, 4x bursts, avg %.2f of peak): p99.9 slowdown and short p99.9", float64(tr.Rate())/peak),
		Header: []string{"policy", "slowdown_p999", "short_p999", "long_p999", "drops"},
	}
	type cell struct {
		slow        float64
		short, long time.Duration
		drops       uint64
		err         error
	}
	cells := make([]cell, len(specs))
	runParallel(opt, len(specs), func(i int) {
		ctx := RunCtx{Seed: opt.Seed, Rate: tr.Rate(), Duration: opt.Duration, Workers: workers, WindowCap: opt.MinWindowSamples}
		res, err := cluster.Run(cluster.Config{
			Workers:        workers,
			Mix:            mix,
			Trace:          tr,
			Duration:       opt.Duration,
			WarmupFraction: 0.1,
			Seed:           opt.Seed,
			RTT:            10 * time.Microsecond,
			NewPolicy:      func() cluster.Policy { return specs[i].New(ctx) },
		})
		if err != nil {
			cells[i].err = err
			return
		}
		cells[i] = cell{
			slow:  metrics.SlowdownAt(res.Recorder.All(), 0.999),
			short: res.Recorder.Type(0).Latency.QuantileDuration(0.999),
			long:  res.Recorder.Type(1).Latency.QuantileDuration(0.999),
			drops: res.Machine.Dropped(),
		}
	})
	for i, s := range specs {
		if cells[i].err != nil {
			return nil, cells[i].err
		}
		t.Rows = append(t.Rows, []string{
			s.Name, fmtSlow(cells[i].slow), fmtDur(cells[i].short), fmtDur(cells[i].long),
			fmt.Sprintf("%d", cells[i].drops),
		})
	}
	t.Notes = append(t.Notes,
		"identical arrival trace for every policy; stealing is DARC's burst absorber (§3)")
	return []*Table{t}, nil
}

// ExtFanout quantifies the intro's motivation: a user query fans out
// to k backends and completes when the slowest shard answers, so
// per-shard tails compound as P(all fast) = P(fast)^k. We run one
// shard under each policy at 80% load (High Bimodal) and derive the
// query-level p99 for k = 1/10/100 shards from the measured shard
// latency distribution.
func ExtFanout(opt Options) ([]*Table, error) {
	opt = opt.fill()
	mix := workload.HighBimodal()
	const workers = 14
	const load = 0.80
	specs := []PolicySpec{
		specDARC(opt, workers, len(mix.Types)),
		specCFCFS(),
	}
	fanouts := []int{1, 10, 100}
	t := &Table{
		Name:   "ext_fanout",
		Title:  "fan-out amplification: query p99 end-to-end latency vs shard count (shards at 80% load, High Bimodal)",
		Header: []string{"policy"},
	}
	for _, k := range fanouts {
		t.Header = append(t.Header, fmt.Sprintf("k=%d_query_p99", k))
	}
	type cell struct {
		res *cluster.Result
		err error
	}
	cells := make([]cell, len(specs))
	runParallel(opt, len(specs), func(i int) {
		ctx := RunCtx{Seed: opt.Seed, Rate: load * mix.PeakLoad(workers), Duration: opt.Duration, Workers: workers, WindowCap: opt.MinWindowSamples}
		res, err := cluster.Run(cluster.Config{
			Workers:        workers,
			Mix:            mix,
			LoadFraction:   load,
			Duration:       opt.Duration,
			WarmupFraction: 0.1,
			Seed:           opt.Seed,
			RTT:            10 * time.Microsecond,
			NewPolicy:      func() cluster.Policy { return specs[i].New(ctx) },
		})
		cells[i] = cell{res: res, err: err}
	})
	for i, s := range specs {
		if cells[i].err != nil {
			return nil, cells[i].err
		}
		row := []string{s.Name}
		// The fanned-out RPCs are the short class (the paper's §1
		// motivation: complex queries fanning out to hundreds of fast
		// backends while long analytics requests share the machines).
		hist := &cells[i].res.Recorder.Type(0).EndToEnd
		for _, k := range fanouts {
			// P(max of k ≤ x) = 0.99  ⇔  per-shard quantile 0.99^(1/k).
			q := math.Pow(0.99, 1/float64(k))
			row = append(row, fmtDur(hist.QuantileDuration(q)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"k=100 queries live at each shard's p99.99; protecting the per-shard deep tail is what fan-out services buy from DARC (paper §1)")
	return []*Table{t}, nil
}
