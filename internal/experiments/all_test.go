package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestEveryArtifactRuns is the regression net over the whole registry:
// every artifact must run with tiny options and produce at least one
// non-empty, well-formed table.
func TestEveryArtifactRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opt := Options{
		Duration:         30 * time.Millisecond,
		Loads:            []float64{0.5, 0.8},
		Seed:             3,
		MinWindowSamples: 300,
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			r := registry[name]
			tables, err := r(opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if tb.Name == "" || tb.Title == "" {
					t.Fatalf("table missing name/title: %+v", tb)
				}
				if len(tb.Header) == 0 || len(tb.Rows) == 0 {
					t.Fatalf("%s: empty header or rows", tb.Name)
				}
				for ri, row := range tb.Rows {
					if len(row) != len(tb.Header) {
						t.Fatalf("%s row %d: %d cells for %d columns", tb.Name, ri, len(row), len(tb.Header))
					}
					for ci, cell := range row {
						if strings.TrimSpace(cell) == "" {
							t.Fatalf("%s row %d col %d empty", tb.Name, ri, ci)
						}
					}
				}
				var buf bytes.Buffer
				tb.Fprint(&buf)
				if buf.Len() == 0 {
					t.Fatalf("%s rendered empty", tb.Name)
				}
			}
		})
	}
}
