package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/darc"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/workload"
)

// typedLatencyTable renders per-type p99.9 latency columns for a
// bimodal sweep: one row per load, per policy a (short, long) pair.
func typedLatencyTable(name, title string, opt Options, points []runPoint, specs []PolicySpec, mix workload.Mix) *Table {
	opt = opt.fill()
	shortIdx := 0
	longIdx := len(mix.Types) - 1
	t := &Table{Name: name, Title: title, Header: []string{"load"}}
	for _, s := range specs {
		t.Header = append(t.Header,
			s.Name+"_short_p999", s.Name+"_long_p999")
	}
	byKey := indexPoints(points)
	for _, load := range opt.Loads {
		row := []string{fmt.Sprintf("%.2f", load)}
		for _, s := range specs {
			p := byKey[key(s.Name, load)]
			row = append(row,
				fmtDur(p.Res.Recorder.Type(shortIdx).Latency.QuantileDuration(0.999)),
				fmtDur(p.Res.Recorder.Type(longIdx).Latency.QuantileDuration(0.999)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// darcCPUWaste estimates the paper's "average CPU waste" for a DARC
// run: the idle fraction summed over cores reserved for groups other
// than the longest one (the cores deliberately left idle to protect
// short requests).
func darcCPUWaste(res *cluster.Result, reservation *darc.Reservation) float64 {
	if reservation == nil || len(reservation.Groups) < 2 {
		return 0
	}
	waste := 0.0
	for gi := 0; gi < len(reservation.Groups)-1; gi++ {
		for _, w := range reservation.Groups[gi].Reserved {
			if w < len(res.WorkerBusy) {
				waste += 1 - res.WorkerBusy[w]
			}
		}
	}
	return waste
}

// Figure1 reproduces the §2 motivation simulation: 16 workers, Extreme
// Bimodal, no network, d-FCFS vs c-FCFS vs TS(q=5µs,c=1µs) vs DARC.
func Figure1(opt Options) ([]*Table, error) {
	opt = opt.fill()
	mix := workload.ExtremeBimodal()
	const workers = 16
	specs := []PolicySpec{
		specDFCFS(),
		specCFCFS(),
		{Name: "TS", New: func(RunCtx) cluster.Policy {
			return policy.NewTSSingleQueue(policy.TSConfig{Quantum: 5 * time.Microsecond, PreemptCost: time.Microsecond})
		}},
		specDARC(opt, workers, len(mix.Types)),
	}
	points, err := sweep(opt, cluster.Config{Workers: workers}, mix, specs)
	if err != nil {
		return nil, err
	}
	curve := slowdownCurveTable("figure1", "p99.9 slowdown vs load, Extreme Bimodal, 16 workers (paper Figure 1)", opt, points, specs)
	lat := typedLatencyTable("figure1_latency", "per-type p99.9 latency for Figure 1", opt, points, specs, mix)

	peak := mix.PeakLoad(workers)
	for _, s := range specs {
		sustain := sustainableLoad(opt, points, s.Name, 10)
		curve.Notes = append(curve.Notes, fmt.Sprintf(
			"%s sustains %.2f of peak (%.2f Mrps) at 10x p99.9 slowdown (paper: c-FCFS 2.1, TS 3.7, DARC 5.1 Mrps)",
			s.Name, sustain, sustain*peak/1e6))
	}
	// §2's headline short-request tail latencies at DARC's operating
	// point.
	byKey := indexPoints(points)
	maxLoad := opt.Loads[len(opt.Loads)-1]
	for _, s := range specs {
		if p, ok := byKey[key(s.Name, maxLoad)]; ok {
			curve.Notes = append(curve.Notes, fmt.Sprintf(
				"%s short p99.9 at %.0f%% load: %v (paper at 5.1 Mrps: DARC 9.87us, c-FCFS 7738us, TS 161us)",
				s.Name, maxLoad*100, p.Res.Recorder.Type(0).Latency.QuantileDuration(0.999)))
		}
	}
	return []*Table{curve, lat}, nil
}

// Figure3 reproduces §5.2: DARC vs c-FCFS vs d-FCFS inside Perséphone
// on High Bimodal, 14 workers, 10µs network RTT.
func Figure3(opt Options) ([]*Table, error) {
	opt = opt.fill()
	mix := workload.HighBimodal()
	const workers = 14
	specs := []PolicySpec{specDARC(opt, workers, len(mix.Types)), specCFCFS(), specDFCFS()}
	points, err := sweep(opt, cluster.Config{Workers: workers, RTT: 10 * time.Microsecond}, mix, specs)
	if err != nil {
		return nil, err
	}
	curve := slowdownCurveTable("figure3", "p99.9 slowdown vs load, High Bimodal in Persephone (paper Figure 3)", opt, points, specs)
	lat := typedLatencyTable("figure3_latency", "per-type p99.9 latency for Figure 3", opt, points, specs, mix)

	// "Up to" improvement factor across the sweep, as the paper quotes
	// (15.7x over c-FCFS at a 4.2x cost to long requests).
	byKey := indexPoints(points)
	maxLoad := opt.Loads[len(opt.Loads)-1]
	bestGain, bestLoad, costAtBest := 0.0, 0.0, 0.0
	for _, load := range opt.Loads {
		d := byKey[key("DARC", load)]
		c := byKey[key("c-FCFS", load)]
		if d.Res == nil || c.Res == nil {
			continue
		}
		ds := metrics.SlowdownAt(d.Res.Recorder.All(), 0.999)
		cs := metrics.SlowdownAt(c.Res.Recorder.All(), 0.999)
		if ds > 0 && cs/ds > bestGain {
			bestGain = cs / ds
			bestLoad = load
			dl := d.Res.Recorder.Type(1).Latency.QuantileDuration(0.999)
			cl := c.Res.Recorder.Type(1).Latency.QuantileDuration(0.999)
			costAtBest = float64(dl) / float64(cl)
		}
	}
	if bestGain > 0 {
		curve.Notes = append(curve.Notes, fmt.Sprintf(
			"DARC improves overall slowdown up to %.1fx over c-FCFS (at %.0f%% load; paper: up to 15.7x), long p999 cost there %.1fx (paper: up to 4.2x)",
			bestGain, bestLoad*100, costAtBest))
	}
	// CPU waste at the highest load (paper: 1 reserved core, 0.86
	// cores of waste on High Bimodal). A dedicated run captures the
	// policy instance so the final reservation is inspectable.
	var captured *policy.DARC
	wasteRes, err := cluster.Run(cluster.Config{
		Workers:        workers,
		Mix:            mix,
		LoadFraction:   maxLoad,
		Duration:       opt.Duration,
		WarmupFraction: 0.1,
		Seed:           opt.Seed,
		RTT:            10 * time.Microsecond,
		NewPolicy: func() cluster.Policy {
			cfg := darc.DefaultConfig(workers)
			cfg.MinWindowSamples = opt.MinWindowSamples
			captured = policy.NewDARC(cfg, len(mix.Types), 0)
			return captured
		},
	})
	if err == nil && captured != nil {
		if res := captured.Controller().Reservation(); res != nil {
			curve.Notes = append(curve.Notes, fmt.Sprintf(
				"DARC reserved %d core(s) for shorts; CPU waste %.2f cores (paper: 1 core, 0.86 waste)",
				len(res.Groups[0].Reserved), darcCPUWaste(wasteRes, res)))
		}
	}
	return []*Table{curve, lat}, nil
}

// Figure4 reproduces §5.3: manually sweeping DARC-static's reserved
// cores from 0..workers at 95% load on both bimodal workloads.
func Figure4(opt Options) ([]*Table, error) {
	opt = opt.fill()
	const workers = 14
	// The paper runs this at "95% load"; with exact service times that
	// leaves the long class infinitesimally unstable for any reserved
	// core, so we operate at 90% where the parabola the paper shows
	// (too few cores → shorts blocked, too many → longs starved) is
	// well defined. Queues are unbounded here: shedding would flatter
	// the starved configurations.
	const load = 0.90
	t := &Table{
		Name:   "figure4",
		Title:  "DARC-static: p99.9 slowdown vs reserved cores at 90% load (paper Figure 4, 95%)",
		Header: []string{"reserved_cores", "HighBimodal_slowdown", "ExtremeBimodal_slowdown"},
	}
	type cell struct {
		mix      workload.Mix
		reserved int
		slow     float64
		starved  bool
		err      error
	}
	mixes := []workload.Mix{workload.HighBimodal(), workload.ExtremeBimodal()}
	cells := make([]cell, 0, (workers+1)*2)
	for _, mix := range mixes {
		for r := 0; r <= workers; r++ {
			cells = append(cells, cell{mix: mix, reserved: r})
		}
	}
	runParallel(opt, len(cells), func(i int) {
		c := &cells[i]
		spec := specDARCStatic(c.mix, c.reserved)
		rate := load * c.mix.PeakLoad(workers)
		ctx := RunCtx{Seed: opt.Seed, Rate: rate, Duration: opt.Duration, Workers: workers, WindowCap: opt.MinWindowSamples}
		res, err := cluster.Run(cluster.Config{
			Workers:        workers,
			Mix:            c.mix,
			LoadFraction:   load,
			Duration:       opt.Duration,
			WarmupFraction: 0.1,
			Seed:           opt.Seed,
			RTT:            10 * time.Microsecond,
			NewPolicy:      func() cluster.Policy { return spec.New(ctx) },
		})
		if err != nil {
			c.err = err
			return
		}
		c.slow = metrics.SlowdownAt(res.Recorder.All(), 0.999)
		// A configuration that starves a type (its completions fall
		// far short of its arrivals) must not look good just because
		// the survivors were fast: slowdown is only measured on
		// completed requests.
		measured := opt.Duration.Seconds() * (1 - 0.1)
		for ti, ts := range c.mix.Types {
			expected := rate * ts.Ratio * measured
			if float64(res.Recorder.Type(ti).Completed) < expected*0.5 {
				c.starved = true
			}
		}
	})
	for _, c := range cells {
		if c.err != nil {
			return nil, c.err
		}
	}
	render := func(c cell) string {
		if c.starved {
			return "starved"
		}
		return fmtSlow(c.slow)
	}
	better := func(a, b cell) bool {
		if a.starved != b.starved {
			return !a.starved
		}
		return a.slow < b.slow
	}
	bestHigh, bestExtreme := 0, 0
	for r := 0; r <= workers; r++ {
		high := cells[r]
		extreme := cells[workers+1+r]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r),
			render(high),
			render(extreme),
		})
		if better(high, cells[bestHigh]) {
			bestHigh = r
		}
		if better(extreme, cells[workers+1+bestExtreme]) {
			bestExtreme = r
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("best High Bimodal reservation: %d cores (paper: 1)", bestHigh),
		fmt.Sprintf("best Extreme Bimodal reservation: %d cores (paper: 2)", bestExtreme))
	return []*Table{t}, nil
}

// Figure5a reproduces §5.4.1: High Bimodal across Shenango (d-FCFS and
// work stealing), Shinjuku (multi-queue, 5µs) and Perséphone (DARC).
func Figure5a(opt Options) ([]*Table, error) {
	opt = opt.fill()
	mix := workload.HighBimodal()
	const workers = 14
	specs := []PolicySpec{
		specShenangoDFCFS(),
		specShenango(),
		specShinjukuMQ(5*time.Microsecond, len(mix.Types)),
		specDARC(opt, workers, len(mix.Types)),
	}
	points, err := sweep(opt, cluster.Config{Workers: workers, RTT: 10 * time.Microsecond}, mix, specs)
	if err != nil {
		return nil, err
	}
	curve := slowdownCurveTable("figure5a", "High Bimodal across systems (paper Figure 5a)", opt, points, specs)
	lat := typedLatencyTable("figure5a_latency", "per-type p99.9 latency for Figure 5a", opt, points, specs, mix)
	target := 20.0
	she := sustainableLoad(opt, points, "shenango-cFCFS", target)
	shi := sustainableLoad(opt, points, "shinjuku-MQ", target)
	d := sustainableLoad(opt, points, "DARC", target)
	curve.Notes = append(curve.Notes, fmt.Sprintf(
		"at 20x slowdown target: DARC/Shenango = %.2fx (paper 2.35x), DARC/Shinjuku = %.2fx (paper 1.3x)",
		ratio(d, she), ratio(d, shi)))
	return []*Table{curve, lat}, nil
}

// Figure5b reproduces §5.4.2: Extreme Bimodal across Shenango,
// Shinjuku (single queue, 5µs) and Perséphone.
func Figure5b(opt Options) ([]*Table, error) {
	opt = opt.fill()
	mix := workload.ExtremeBimodal()
	const workers = 14
	specs := []PolicySpec{
		specShenango(),
		specShinjukuSQ(5 * time.Microsecond),
		specDARC(opt, workers, len(mix.Types)),
	}
	points, err := sweep(opt, cluster.Config{Workers: workers, RTT: 10 * time.Microsecond}, mix, specs)
	if err != nil {
		return nil, err
	}
	curve := slowdownCurveTable("figure5b", "Extreme Bimodal across systems (paper Figure 5b)", opt, points, specs)
	lat := typedLatencyTable("figure5b_latency", "per-type p99.9 latency for Figure 5b", opt, points, specs, mix)
	target := 50.0
	she := sustainableLoad(opt, points, "shenango-cFCFS", target)
	shi := sustainableLoad(opt, points, "shinjuku-SQ", target)
	d := sustainableLoad(opt, points, "DARC", target)
	curve.Notes = append(curve.Notes, fmt.Sprintf(
		"at 50x slowdown target: DARC/Shenango = %.2fx (paper 1.4x), DARC/Shinjuku = %.2fx (paper 1.25x)",
		ratio(d, she), ratio(d, shi)))
	return []*Table{curve, lat}, nil
}

// Figure10 reproduces §6's preemption-overhead study: single-queue
// preemptive systems with 0/1/2/4µs total preemption overhead
// (half propagation, half preemption cost) vs DARC on Extreme Bimodal,
// 16 workers, no network.
func Figure10(opt Options) ([]*Table, error) {
	opt = opt.fill()
	mix := workload.ExtremeBimodal()
	const workers = 16
	specs := []PolicySpec{
		specTSIdeal(0),
		specTSIdeal(1 * time.Microsecond),
		specTSIdeal(2 * time.Microsecond),
		specTSIdeal(4 * time.Microsecond),
		specDARC(opt, workers, len(mix.Types)),
	}
	points, err := sweep(opt, cluster.Config{Workers: workers}, mix, specs)
	if err != nil {
		return nil, err
	}
	curve := slowdownCurveTable("figure10", "preemption overhead study, Extreme Bimodal, 16 workers (paper Figure 10)", opt, points, specs)
	lat := typedLatencyTable("figure10_latency", "per-type p99.9 latency for Figure 10", opt, points, specs, mix)
	ideal := sustainableLoad(opt, points, "TS-0us", 10)
	oneUs := sustainableLoad(opt, points, "TS-1us", 10)
	d := sustainableLoad(opt, points, "DARC", 10)
	curve.Notes = append(curve.Notes, fmt.Sprintf(
		"at 10x slowdown: TS-0us sustains %.2f, TS-1us %.2f (paper: ~30%% less than ideal), DARC %.2f",
		ideal, oneUs, d))
	return []*Table{curve, lat}, nil
}

func ratio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

// runParallel executes n index-addressed jobs with bounded
// parallelism.
func runParallel(opt Options, n int, job func(i int)) {
	opt = opt.fill()
	sem := make(chan struct{}, opt.Parallel)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			job(i)
		}()
	}
	wg.Wait()
}
