package experiments

import (
	"testing"
	"time"
)

// requireConservation checks the client- and server-side ledgers of
// one overload point against each other, exactly.
func requireConservation(t *testing.T, pt *overloadPoint) {
	t.Helper()
	r := pt.Res
	if un := r.Unaccounted(); un != 0 {
		t.Fatalf("%s@%.1fx: %d requests unaccounted (sent %d, recv %d, dropped %d, timeout %d)",
			pt.System, pt.Multiple, un, r.Sent, r.Received, r.Dropped, r.TimedOut)
	}
	if r.TimedOut != 0 {
		t.Fatalf("%s@%.1fx: %d requests timed out; the drain window is too tight for this host",
			pt.System, pt.Multiple, r.TimedOut)
	}
	if pt.Admission == nil {
		if r.Dropped != 0 {
			t.Fatalf("%s@%.1fx: unprotected system dropped %d requests", pt.System, pt.Multiple, r.Dropped)
		}
		return
	}
	// Server-side ledger identity at quiescence, per slot and in total.
	var shed uint64
	for i, slot := range pt.Admission.Slots {
		if slot.Accepted != slot.Completed+slot.ShedDeadline+slot.ShedOverload+slot.ShedLost {
			t.Fatalf("%s@%.1fx slot %d: accepted %d != completed %d + shed %d/%d/%d",
				pt.System, pt.Multiple, i, slot.Accepted, slot.Completed,
				slot.ShedDeadline, slot.ShedOverload, slot.ShedLost)
		}
		shed += slot.Shed()
	}
	// Every server-side shed is a client-side drop: the in-process
	// client runs without retries, so the two ledgers must agree
	// exactly — per type, not just in total.
	if shed != r.Dropped {
		t.Fatalf("%s@%.1fx: server shed %d != client dropped %d", pt.System, pt.Multiple, shed, r.Dropped)
	}
	for typ := 0; typ < 2; typ++ {
		slot := pt.Admission.Slots[typ]
		if got, want := r.DroppedByType[typ], slot.ShedDeadline+slot.ShedOverload+slot.ShedLost; got != want {
			t.Fatalf("%s@%.1fx type %d: client dropped %d, server shed %d",
				pt.System, pt.Multiple, typ, got, want)
		}
	}
}

// TestOverloadExperiment is the PR's acceptance experiment: at 2x the
// derated capacity, DARC with admission control keeps the short
// class's answered-request p99 within 3x of its own 0.8x-load
// baseline, while unprotected c-FCFS blows past 10x of that baseline.
// Ledger conservation is checked exactly at every point.
func TestOverloadExperiment(t *testing.T) {
	dur := 1500 * time.Millisecond
	if testing.Short() {
		dur = 700 * time.Millisecond
	}
	const seed = 7

	baseline, err := runOverloadPoint("darc+admission", 0.8, dur, seed)
	if err != nil {
		t.Fatal(err)
	}
	requireConservation(t, baseline)
	protected, err := runOverloadPoint("darc+admission", 2.0, dur, seed)
	if err != nil {
		t.Fatal(err)
	}
	requireConservation(t, protected)
	unprotected, err := runOverloadPoint("cfcfs", 2.0, dur, seed)
	if err != nil {
		t.Fatal(err)
	}
	requireConservation(t, unprotected)

	base := baseline.shortP99()
	if base <= 0 {
		t.Fatalf("baseline short p99 %v (n=%d): no signal", base, baseline.Res.Latency[0].Count())
	}
	t.Logf("short p99: baseline(0.8x)=%v darc+admission(2.0x)=%v cfcfs(2.0x)=%v",
		base, protected.shortP99(), unprotected.shortP99())

	if got, limit := protected.shortP99(), 3*base; got > limit {
		t.Errorf("darc+admission at 2.0x: short p99 %v exceeds 3x baseline (%v)", got, limit)
	}
	if got, floor := unprotected.shortP99(), 10*base; got <= floor {
		t.Errorf("cfcfs at 2.0x: short p99 %v did not exceed 10x baseline (%v) — no overload signal", got, floor)
	}
	// The protection must come from actual shedding: at 2x the
	// admission controller has to have refused a meaningful share.
	if protected.Admission == nil {
		t.Fatal("darc+admission point lost its admission ledger")
	}
	if shed := protected.Admission.Totals().Shed(); shed == 0 {
		t.Error("darc+admission at 2.0x shed nothing; the load never exercised admission")
	}
}
