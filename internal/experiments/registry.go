package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Runner regenerates one paper artifact.
type Runner func(Options) ([]*Table, error)

// registry maps artifact identifiers to runners.
var registry = map[string]Runner{
	"table1":   func(Options) ([]*Table, error) { return []*Table{Table1()}, nil },
	"table3":   func(Options) ([]*Table, error) { return []*Table{Table3()}, nil },
	"table4":   func(Options) ([]*Table, error) { return []*Table{Table4()}, nil },
	"table5":   func(Options) ([]*Table, error) { return []*Table{Table5()}, nil },
	"figure1":  Figure1,
	"figure3":  Figure3,
	"figure4":  Figure4,
	"figure5a": Figure5a,
	"figure5b": Figure5b,
	"figure6":  Figure6,
	"figure7":  Figure7,
	"figure8":  Figure8,
	"figure9":  Figure9,
	"figure10": Figure10,
	// Ablations beyond the paper's figures, for the design choices
	// DESIGN.md calls out.
	"ablation-delta":      AblationDelta,
	"ablation-stealing":   AblationStealing,
	"ablation-dispatcher": AblationDispatcher,
	// Extensions probing DARC beyond the paper's evaluation.
	"ext-variance":   ExtVariance,
	"ext-burst":      ExtBurst,
	"ext-fanout":     ExtFanout,
	"ext-autoscale":  ExtAutoscale,
	"ext-fanout-sim": ExtFanoutSim,
	"ext-overload":   ExtOverload,
}

// Names lists the registered artifacts in order.
func Names() []string {
	names := sortedNames(registry)
	sort.Strings(names)
	return names
}

// Run regenerates one artifact by name, printing it to w.
func Run(name string, opt Options, w io.Writer) error {
	r, ok := registry[name]
	if !ok {
		return fmt.Errorf("experiments: unknown artifact %q (have %v)", name, Names())
	}
	tables, err := r(opt)
	if err != nil {
		return fmt.Errorf("experiments: %s: %w", name, err)
	}
	return Emit(w, opt, tables...)
}

// RunAll regenerates every artifact.
func RunAll(opt Options, w io.Writer) error {
	for _, name := range Names() {
		if err := Run(name, opt, w); err != nil {
			return err
		}
	}
	return nil
}
