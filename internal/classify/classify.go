// Package classify implements the paper's request-classifier API
// (§4.2): user-defined functions that map an application payload
// (layer 4 and above) to a request type. Classifiers are
// "bumps-in-the-wire" on the dispatch critical path, so the built-in
// ones are allocation-free.
package classify

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/rng"
)

// Unknown is returned for unrecognizable requests; the dispatcher
// routes them to a low-priority queue served by spillway cores.
const Unknown = -1

// Classifier maps a request payload to a type ID in [0, NumTypes), or
// Unknown. Implementations must be safe for use from the single
// dispatcher goroutine (no shared mutable state is required).
type Classifier interface {
	// Classify inspects the payload and returns its type.
	Classify(payload []byte) int
	// NumTypes reports how many types the classifier can produce.
	NumTypes() int
	// Name identifies the classifier in logs.
	Name() string
}

// Func adapts a plain function into a Classifier.
type Func struct {
	F     func([]byte) int
	Types int
	Label string
}

// Classify implements Classifier.
func (f Func) Classify(p []byte) int { return f.F(p) }

// NumTypes implements Classifier.
func (f Func) NumTypes() int { return f.Types }

// Name implements Classifier.
func (f Func) Name() string {
	if f.Label != "" {
		return f.Label
	}
	return "func"
}

// Field reads the type directly from a fixed little-endian uint16
// field in the payload — the optimized path for protocols that carry
// the type in their header (the paper measured ≈100ns for this).
type Field struct {
	// Offset of the uint16 type field within the payload.
	Offset int
	// Types is the number of valid types; values beyond it are Unknown.
	Types int
}

// Classify implements Classifier.
func (f Field) Classify(p []byte) int {
	if f.Offset < 0 || len(p) < f.Offset+2 {
		return Unknown
	}
	t := int(binary.LittleEndian.Uint16(p[f.Offset:]))
	if t >= f.Types {
		return Unknown
	}
	return t
}

// NumTypes implements Classifier.
func (f Field) NumTypes() int { return f.Types }

// Name implements Classifier.
func (f Field) Name() string { return fmt.Sprintf("field@%d", f.Offset) }

// Command classifies text protocols whose first whitespace-delimited
// token is a command name (memcached's "get"/"set", our TPC-C and KV
// examples). Matching is case-insensitive ASCII.
type Command struct {
	// CommandTypes maps upper-case command names to type IDs.
	CommandTypes map[string]int
	// Types is the number of distinct type IDs.
	Types int
}

// NewCommand builds a Command classifier from command-name → type
// pairs; type IDs are densely assigned in the order given.
func NewCommand(commands ...string) *Command {
	c := &Command{CommandTypes: make(map[string]int, len(commands))}
	for _, name := range commands {
		up := toUpper(name)
		if _, dup := c.CommandTypes[up]; !dup {
			c.CommandTypes[up] = c.Types
			c.Types++
		}
	}
	return c
}

// Classify implements Classifier.
func (c *Command) Classify(p []byte) int {
	tok := firstToken(p)
	if len(tok) == 0 || len(tok) > 32 {
		return Unknown
	}
	var upper [32]byte
	for i, b := range tok {
		if 'a' <= b && b <= 'z' {
			b -= 'a' - 'A'
		}
		upper[i] = b
	}
	if t, ok := c.CommandTypes[string(upper[:len(tok)])]; ok {
		return t
	}
	return Unknown
}

// NumTypes implements Classifier.
func (c *Command) NumTypes() int { return c.Types }

// Name implements Classifier.
func (c *Command) Name() string { return "command" }

// RESP classifies Redis-serialization-protocol requests: an array of
// bulk strings whose first element is the command, e.g.
// "*2\r\n$3\r\nGET\r\n$3\r\nfoo\r\n". Inline commands ("GET foo\r\n")
// are also accepted.
type RESP struct {
	inner *Command
}

// NewRESP builds a RESP classifier over the given command names.
func NewRESP(commands ...string) *RESP {
	return &RESP{inner: NewCommand(commands...)}
}

// Classify implements Classifier.
func (r *RESP) Classify(p []byte) int {
	if len(p) == 0 {
		return Unknown
	}
	if p[0] != '*' {
		// Inline command form.
		return r.inner.Classify(p)
	}
	// Skip "*<n>\r\n".
	i := bytes.IndexByte(p, '\n')
	if i < 0 || i+1 >= len(p) || p[i+1] != '$' {
		return Unknown
	}
	rest := p[i+1:]
	// Skip "$<len>\r\n".
	j := bytes.IndexByte(rest, '\n')
	if j < 0 || j+1 >= len(rest) {
		return Unknown
	}
	return r.inner.Classify(rest[j+1:])
}

// NumTypes implements Classifier.
func (r *RESP) NumTypes() int { return r.inner.NumTypes() }

// Name implements Classifier.
func (r *RESP) Name() string { return "resp" }

// Random assigns types uniformly at random, ignoring the payload —
// the deliberately broken classifier of the paper's Figure 9
// robustness experiment.
type Random struct {
	R     *rng.RNG
	Types int
}

// Classify implements Classifier.
func (r *Random) Classify([]byte) int { return r.R.Intn(r.Types) }

// NumTypes implements Classifier.
func (r *Random) NumTypes() int { return r.Types }

// Name implements Classifier.
func (r *Random) Name() string { return "random" }

func firstToken(p []byte) []byte {
	start := 0
	for start < len(p) && isSpace(p[start]) {
		start++
	}
	end := start
	for end < len(p) && !isSpace(p[end]) {
		end++
	}
	return p[start:end]
}

func isSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\r' || b == '\n'
}

func toUpper(s string) string {
	b := []byte(s)
	for i := range b {
		if 'a' <= b[i] && b[i] <= 'z' {
			b[i] -= 'a' - 'A'
		}
	}
	return string(b)
}
