package classify

import "testing"

// FuzzRESP asserts the RESP parser never panics and always returns a
// type in [Unknown, NumTypes) on arbitrary bytes.
func FuzzRESP(f *testing.F) {
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$3\r\nfoo\r\n"))
	f.Add([]byte("GET foo"))
	f.Add([]byte("*"))
	f.Add([]byte("*9999\r\n$"))
	f.Add([]byte{0, 1, 2, 255})
	c := NewRESP("GET", "SET", "SCAN")
	f.Fuzz(func(t *testing.T, data []byte) {
		got := c.Classify(data)
		if got < Unknown || got >= c.NumTypes() {
			t.Fatalf("type %d out of range", got)
		}
	})
}

// FuzzCommand asserts the text-command classifier is total.
func FuzzCommand(f *testing.F) {
	f.Add([]byte("get foo"))
	f.Add([]byte("   \t\r\n"))
	f.Add([]byte{0xff, 0xfe})
	c := NewCommand("GET", "SET", "DELETE", "INCR", "GETS")
	f.Fuzz(func(t *testing.T, data []byte) {
		got := c.Classify(data)
		if got < Unknown || got >= c.NumTypes() {
			t.Fatalf("type %d out of range", got)
		}
	})
}

// FuzzField asserts the header-field classifier is total for arbitrary
// offsets encoded in the corpus.
func FuzzField(f *testing.F) {
	f.Add(0, []byte{1, 0})
	f.Add(4, []byte{0, 0, 0, 0, 2, 0})
	f.Add(-3, []byte("x"))
	f.Fuzz(func(t *testing.T, offset int, data []byte) {
		if offset > 1<<20 || offset < -(1<<20) {
			return
		}
		c := Field{Offset: offset, Types: 5}
		got := c.Classify(data)
		if got < Unknown || got >= 5 {
			t.Fatalf("type %d out of range", got)
		}
	})
}
