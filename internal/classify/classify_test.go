package classify

import (
	"encoding/binary"
	"testing"

	"repro/internal/rng"
)

func TestFieldClassifier(t *testing.T) {
	c := Field{Offset: 4, Types: 5}
	p := make([]byte, 8)
	binary.LittleEndian.PutUint16(p[4:], 3)
	if got := c.Classify(p); got != 3 {
		t.Fatalf("got %d", got)
	}
	binary.LittleEndian.PutUint16(p[4:], 9)
	if got := c.Classify(p); got != Unknown {
		t.Fatalf("out-of-range type classified as %d", got)
	}
	if got := c.Classify(p[:3]); got != Unknown {
		t.Fatalf("short payload classified as %d", got)
	}
	if got := (Field{Offset: -1, Types: 1}).Classify(p); got != Unknown {
		t.Fatalf("negative offset classified as %d", got)
	}
	if c.NumTypes() != 5 {
		t.Fatal("NumTypes wrong")
	}
}

func TestCommandClassifier(t *testing.T) {
	c := NewCommand("GET", "SET", "SCAN")
	cases := map[string]int{
		"GET foo":        0,
		"get foo":        0,
		"  get  foo":     0,
		"SET foo bar":    1,
		"set\tfoo bar":   1,
		"SCAN 0 100":     2,
		"scan\r\n":       2,
		"EVAL something": Unknown,
		"":               Unknown,
		"   ":            Unknown,
	}
	for payload, want := range cases {
		if got := c.Classify([]byte(payload)); got != want {
			t.Errorf("%q -> %d, want %d", payload, got, want)
		}
	}
	if c.NumTypes() != 3 {
		t.Fatalf("NumTypes %d", c.NumTypes())
	}
}

func TestCommandDuplicateNames(t *testing.T) {
	c := NewCommand("GET", "get", "SET")
	if c.NumTypes() != 2 {
		t.Fatalf("duplicate command created a type: %d", c.NumTypes())
	}
}

func TestCommandOverlongToken(t *testing.T) {
	c := NewCommand("GET")
	long := make([]byte, 64)
	for i := range long {
		long[i] = 'A'
	}
	if got := c.Classify(long); got != Unknown {
		t.Fatalf("overlong token classified as %d", got)
	}
}

func TestRESPClassifier(t *testing.T) {
	c := NewRESP("GET", "SET", "SCAN")
	cases := map[string]int{
		"*2\r\n$3\r\nGET\r\n$3\r\nfoo\r\n":              0,
		"*3\r\n$3\r\nSET\r\n$3\r\nfoo\r\n$3\r\nbar\r\n": 1,
		"*1\r\n$4\r\nSCAN\r\n":                          2,
		"GET foo\r\n":                                   0, // inline form
		"*2\r\n$4\r\nEVAL\r\n$1\r\nx\r\n":               Unknown,
		"*2\r\nbroken":                                  Unknown,
		"":                                              Unknown,
		"*9":                                            Unknown,
	}
	for payload, want := range cases {
		if got := c.Classify([]byte(payload)); got != want {
			t.Errorf("%q -> %d, want %d", payload, got, want)
		}
	}
}

func TestRandomClassifierCoversAllTypes(t *testing.T) {
	c := &Random{R: rng.New(1), Types: 4}
	seen := make([]bool, 4)
	for i := 0; i < 1000; i++ {
		v := c.Classify(nil)
		if v < 0 || v >= 4 {
			t.Fatalf("random type %d out of range", v)
		}
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("type %d never produced", i)
		}
	}
}

func TestFuncClassifier(t *testing.T) {
	c := Func{F: func(p []byte) int {
		if len(p) > 10 {
			return 1
		}
		return 0
	}, Types: 2, Label: "size-based"}
	if c.Classify(make([]byte, 20)) != 1 || c.Classify(nil) != 0 {
		t.Fatal("func classifier wrong")
	}
	if c.Name() != "size-based" || c.NumTypes() != 2 {
		t.Fatal("metadata wrong")
	}
	if (Func{}).Name() != "func" {
		t.Fatal("default name wrong")
	}
}

func TestNames(t *testing.T) {
	if (Field{Offset: 2}).Name() == "" || NewCommand().Name() == "" || NewRESP().Name() == "" || (&Random{}).Name() == "" {
		t.Fatal("classifier with empty name")
	}
}
