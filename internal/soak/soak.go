// Package soak is the invariant-checked chaos soak harness: a seeded,
// long-horizon driver that runs a live Perséphone server under
// sustained in-process load while interleaving randomized fault
// injection (worker crashes, stalls, slowdowns, laggy reservation
// updates — reusing internal/faults) with randomized live
// reconfigurations (policy swaps across every scheduling mode, worker
// pool resizes, admission-budget changes, forced DARC refreshes), and
// continuously asserts the runtime's conservation ledgers:
//
//   - every submitted request is answered exactly once (completed,
//     shed with a NACK, or dropped by an injected crash — never lost);
//   - the admission identity accepted == completed + shed_deadline +
//     shed_overload + shed_lost holds exactly, per type, across every
//     policy swap and resize;
//   - span conservation: every dispatched request either published a
//     lifecycle span, overflowed a trace ring (counted), or died in an
//     injected crash (counted);
//   - each reconfiguration lands exactly: the generation advances by
//     one, the pool and policy match the spec, and shrink drains stay
//     within their deadline.
//
// The same harness runs as the psp-soak CLI (long horizons, several
// seeds) and as a -short test under -race in CI.
package soak

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/classify"
	"repro/internal/faults"
	"repro/internal/proto"
	"repro/internal/psp"
	"repro/internal/reconfig"
	"repro/internal/rng"
	"repro/internal/spin"
)

// Config parameterizes one soak run (one seed).
type Config struct {
	// Seed drives the reconfiguration schedule, the load mix and the
	// fault injector. Equal seeds make equal decisions.
	Seed uint64
	// Reconfigs is how many randomized reconfigurations to apply
	// (default 50).
	Reconfigs int
	// Workers is the initial pool size (default 4); MaxWorkers bounds
	// resizes (default 2x Workers).
	Workers    int
	MaxWorkers int
	// Submitters is the number of closed-loop load goroutines
	// (default 3).
	Submitters int
	// Epoch is the load-soak time between reconfigurations
	// (default 4ms).
	Epoch time.Duration
	// DrainDeadline bounds each shrink's graceful drain (default 2s);
	// exceeding it is a violation.
	DrainDeadline time.Duration
	// Faults enables the chaos layer (crashes, stalls, slowdowns,
	// delayed reservation updates; ingress drop/dup are network-path
	// faults and do not apply to in-process load).
	Faults bool
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Reconfigs <= 0 {
		c.Reconfigs = 50
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.MaxWorkers < c.Workers {
		c.MaxWorkers = 2 * c.Workers
	}
	if c.Submitters <= 0 {
		c.Submitters = 3
	}
	if c.Epoch <= 0 {
		c.Epoch = 4 * time.Millisecond
	}
	if c.DrainDeadline <= 0 {
		c.DrainDeadline = 2 * time.Second
	}
}

// Report is the outcome of one soak run.
type Report struct {
	Seed       uint64
	Reconfigs  int
	PolicyPath []string // policy after each swap, for the log

	PolicySwaps, Resizes, AdmissionUpdates, DARCRefreshes int

	Submitted, Completed, Shed, Dropped uint64
	Migrated, MigratedShed              int
	FaultsInjected, WorkerRestarts      uint64
	MaxDrain                            time.Duration
	FinalGeneration                     uint64

	// Violations lists every invariant breach observed; a clean run
	// has none.
	Violations []string
}

// OK reports whether the run held every invariant.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Summary renders a one-line digest.
func (r *Report) Summary() string {
	status := "PASS"
	if !r.OK() {
		status = fmt.Sprintf("FAIL (%d violations)", len(r.Violations))
	}
	return fmt.Sprintf(
		"seed=%d %s: %d reconfigs (%d swaps, %d resizes, %d admission, %d darc) "+
			"%d submitted (%d completed, %d shed, %d dropped) %d migrated (%d shed) "+
			"%d faults, %d restarts, max drain %s, gen %d",
		r.Seed, status, r.Reconfigs, r.PolicySwaps, r.Resizes, r.AdmissionUpdates,
		r.DARCRefreshes, r.Submitted, r.Completed, r.Shed, r.Dropped,
		r.Migrated, r.MigratedShed, r.FaultsInjected, r.WorkerRestarts,
		r.MaxDrain, r.FinalGeneration)
}

const (
	numTypes    = 2
	unknownType = 9 // classifies to classify.Unknown
)

var serviceTimes = []time.Duration{2 * time.Microsecond, 20 * time.Microsecond}

type soakHandler struct{}

func (soakHandler) Handle(typ int, payload []byte, resp []byte) (int, proto.Status) {
	if typ >= 0 && typ < len(serviceTimes) {
		spin.For(serviceTimes[typ])
	} else {
		spin.For(5 * time.Microsecond)
	}
	return copy(resp, payload), proto.StatusOK
}

// Run executes one seeded soak and returns its report. An error means
// the harness itself could not run (server construction failed);
// invariant breaches are reported as Violations, not errors.
func Run(cfg Config) (*Report, error) {
	cfg.fill()
	spin.Calibrate(10 * time.Millisecond)
	rep := &Report{Seed: cfg.Seed, Reconfigs: cfg.Reconfigs}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	violate := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}

	scfg := psp.Config{
		Workers:    cfg.Workers,
		Classifier: classify.Field{Offset: 0, Types: numTypes},
		Handler:    soakHandler{},
		Admission:  &admission.Config{},
	}
	if cfg.Faults {
		scfg.Faults = &faults.Profile{
			Seed:             cfg.Seed,
			StallWorker:      0,
			StallDuration:    50 * time.Microsecond,
			SlowWorker:       1,
			SlowFactor:       1.5,
			CrashRate:        0.002,
			RespawnDelay:     200 * time.Microsecond,
			ReservationDelay: 100 * time.Microsecond,
		}
	}
	srv, err := psp.NewServer(scfg)
	if err != nil {
		return nil, err
	}
	srv.Start()

	// Closed-loop load: each submitter drives one request at a time,
	// so stopping the submitters quiesces in-flight load naturally.
	var (
		wg        sync.WaitGroup
		stop      atomic.Bool
		submitted atomic.Uint64
		completed atomic.Uint64
		shed      atomic.Uint64
		dropped   atomic.Uint64
	)
	for i := 0; i < cfg.Submitters; i++ {
		wg.Add(1)
		go func(stream uint64) {
			defer wg.Done()
			r := rng.NewStream(cfg.Seed, stream+1)
			payload := make([]byte, 8)
			for !stop.Load() {
				typ := r.Intn(10)
				switch {
				case typ < 5:
					typ = 0
				case typ < 9:
					typ = 1
				default:
					typ = unknownType // exercises the unknown spillway
				}
				binary.LittleEndian.PutUint16(payload, uint16(typ))
				ch, err := srv.Submit(payload)
				if err != nil {
					// Ingress backpressure; the request was refused
					// before entering any ledger.
					time.Sleep(20 * time.Microsecond)
					continue
				}
				submitted.Add(1)
				select {
				case resp := <-ch:
					switch resp.Status {
					case proto.StatusOK:
						completed.Add(1)
					case proto.StatusOverloaded:
						shed.Add(1)
					default:
						dropped.Add(1)
					}
				case <-time.After(10 * time.Second):
					violate("submitter %d: response lost (10s timeout)", stream)
					return
				}
			}
		}(uint64(i))
	}

	// The reconfiguration schedule: one randomized spec per epoch.
	schedule := rng.NewStream(cfg.Seed, 0)
	policies := []string{"darc", "cfcfs", "dfcfs", "darc-static"}
	curPolicy := "DARC"
	curWorkers := cfg.Workers
	lastGen := uint64(0)
	for i := 0; i < cfg.Reconfigs; i++ {
		time.Sleep(cfg.Epoch)
		spec := reconfig.Spec{DrainDeadline: cfg.DrainDeadline}
		wantPolicy := curPolicy
		wantWorkers := curWorkers
		switch k := schedule.Intn(10); {
		case k < 4: // policy swap
			name := policies[schedule.Intn(len(policies))]
			pc := &reconfig.PolicyChange{Mode: name}
			if name == "darc-static" {
				pc.StaticMeans = serviceTimes
				// Keep at least one unreserved worker so no type can
				// starve while the swap is live.
				if curWorkers > 1 {
					pc.StaticReserved = schedule.Intn(curWorkers)
				}
			}
			spec.Policy = pc
			mode, perr := psp.ParsePolicyName(name)
			if perr != nil {
				return nil, perr
			}
			wantPolicy = mode.String()
			rep.PolicySwaps++
		case k < 8: // resize
			target := 1 + schedule.Intn(cfg.MaxWorkers)
			if target == curWorkers {
				target = 1 + target%cfg.MaxWorkers
			}
			spec.Workers = &target
			wantWorkers = target
			rep.Resizes++
		case k < 9: // admission change
			budget := time.Duration(5+schedule.Intn(45)) * time.Millisecond
			spec.Admission = &reconfig.AdmissionChange{
				Budgets: []time.Duration{budget, 2 * budget},
			}
			rep.AdmissionUpdates++
		default:
			spec.ForceDARCUpdate = true
			rep.DARCRefreshes++
		}
		res, rerr := srv.Reconfigure(spec)
		if rerr != nil {
			violate("reconfig %d rejected: %v (spec %+v)", i, rerr, spec)
			continue
		}
		if res.Generation != lastGen+1 {
			violate("reconfig %d: generation %d, want %d", i, res.Generation, lastGen+1)
		}
		lastGen = res.Generation
		if res.DrainDeadlineExceeded {
			violate("reconfig %d: drain %s exceeded deadline %s", i, res.DrainWait, cfg.DrainDeadline)
		}
		if res.DrainWait > rep.MaxDrain {
			rep.MaxDrain = res.DrainWait
		}
		rep.Migrated += res.Migrated
		rep.MigratedShed += res.MigratedShed
		snap := srv.ConfigSnapshot()
		if snap.Workers != wantWorkers {
			violate("reconfig %d: pool %d, want %d", i, snap.Workers, wantWorkers)
		}
		if snap.Policy != wantPolicy {
			violate("reconfig %d: policy %s, want %s", i, snap.Policy, wantPolicy)
		}
		if wantPolicy != curPolicy {
			rep.PolicyPath = append(rep.PolicyPath, wantPolicy)
		}
		curPolicy, curWorkers = wantPolicy, wantWorkers
		if (i+1)%25 == 0 {
			logf("seed %d: %d/%d reconfigs, %d submitted", cfg.Seed, i+1, cfg.Reconfigs, submitted.Load())
		}
	}

	// Quiesce: stop the closed-loop load (every submitter finishes its
	// in-flight request first), then wait for the ledgers to settle —
	// queued work drains to workers, crashed slots respawn.
	stop.Store(true)
	wg.Wait()
	settled := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if admissionSettled(srv.Admission().Snapshot()) {
			settled = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !settled {
		violate("quiesce timeout: admission ledger still open after 10s")
	}
	srv.Stop()

	// Final conservation checks over the drained server.
	rep.Submitted = submitted.Load()
	rep.Completed = completed.Load()
	rep.Shed = shed.Load()
	rep.Dropped = dropped.Load()
	if rep.Completed+rep.Shed+rep.Dropped != rep.Submitted {
		violate("answers %d != submitted %d (completed %d + shed %d + dropped %d)",
			rep.Completed+rep.Shed+rep.Dropped, rep.Submitted, rep.Completed, rep.Shed, rep.Dropped)
	}
	st := srv.StatsSnapshot()
	rep.FaultsInjected = st.FaultsInjected
	rep.WorkerRestarts = st.WorkerRestarts
	rep.FinalGeneration = lastGen
	for i, slot := range st.Admission.Slots {
		if slot.Accepted != slot.Completed+slot.ShedDeadline+slot.ShedOverload+slot.ShedLost {
			violate("admission slot %d: accepted %d != completed %d + deadline %d + overload %d + lost %d",
				i, slot.Accepted, slot.Completed, slot.ShedDeadline, slot.ShedOverload, slot.ShedLost)
		}
	}
	if st.TraceSpans+st.TraceLost+st.WorkerRestarts != st.Dispatched {
		violate("span conservation: spans %d + lost %d + restarts %d != dispatched %d",
			st.TraceSpans, st.TraceLost, st.WorkerRestarts, st.Dispatched)
	}
	if !cfg.Faults && rep.Dropped != 0 {
		violate("%d drops without fault injection", rep.Dropped)
	}
	if cfg.Faults && rep.Dropped > st.WorkerRestarts {
		violate("%d drops exceed %d injected crashes", rep.Dropped, st.WorkerRestarts)
	}
	logf("%s", rep.Summary())
	return rep, nil
}

// admissionSettled reports whether every admission slot's ledger is
// closed (no accepted request still in flight or queued).
func admissionSettled(st admission.Stats) bool {
	for _, slot := range st.Slots {
		if slot.Accepted != slot.Completed+slot.ShedDeadline+slot.ShedOverload+slot.ShedLost {
			return false
		}
	}
	return true
}
