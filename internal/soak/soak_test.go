package soak

import (
	"testing"
	"time"
)

// TestSoakShort is the CI smoke soak: three seeds, each interleaving
// fault injection with 50+ randomized reconfigurations under load,
// with every conservation invariant asserted. Run under -race in CI
// (the soak-smoke job); `go test ./internal/soak` runs the same seeds.
func TestSoakShort(t *testing.T) {
	reconfigs := 60
	epoch := 2 * time.Millisecond
	if testing.Short() {
		reconfigs = 50
		epoch = time.Millisecond
	}
	for _, seed := range []uint64{1, 7, 42} {
		seed := seed
		t.Run(string(rune('A'+seed%26)), func(t *testing.T) {
			rep, err := Run(Config{
				Seed:      seed,
				Reconfigs: reconfigs,
				Workers:   4,
				Epoch:     epoch,
				Faults:    true,
				Logf:      t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range rep.Violations {
				t.Errorf("violation: %s", v)
			}
			if rep.Submitted == 0 {
				t.Fatal("no load submitted")
			}
			if rep.FinalGeneration != uint64(reconfigs) {
				t.Fatalf("final generation %d, want %d", rep.FinalGeneration, reconfigs)
			}
			if rep.PolicySwaps+rep.Resizes == 0 {
				t.Fatal("schedule produced no swaps or resizes")
			}
		})
	}
}

// TestSoakNoFaults pins the stricter fault-free contract: zero drops
// of any kind across the whole run.
func TestSoakNoFaults(t *testing.T) {
	rep, err := Run(Config{
		Seed:      3,
		Reconfigs: 30,
		Workers:   3,
		Epoch:     time.Millisecond,
		Faults:    false,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Dropped != 0 {
		t.Fatalf("%d drops without faults", rep.Dropped)
	}
	if rep.WorkerRestarts != 0 || rep.FaultsInjected != 0 {
		t.Fatalf("faults fired while disabled: %d injected, %d restarts",
			rep.FaultsInjected, rep.WorkerRestarts)
	}
}

// TestSoakDeterministicSchedule checks that equal seeds produce equal
// reconfiguration schedules (the load interleaving varies, the decision
// sequence must not).
func TestSoakDeterministicSchedule(t *testing.T) {
	run := func() *Report {
		rep, err := Run(Config{
			Seed:      11,
			Reconfigs: 25,
			Workers:   3,
			Epoch:     500 * time.Microsecond,
			Faults:    false,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.PolicySwaps != b.PolicySwaps || a.Resizes != b.Resizes ||
		a.AdmissionUpdates != b.AdmissionUpdates || a.DARCRefreshes != b.DARCRefreshes {
		t.Fatalf("schedules diverged for equal seeds:\n  a: %s\n  b: %s", a.Summary(), b.Summary())
	}
}
