// Package queueing provides closed-form queueing-theory results
// (M/M/1, M/M/c via Erlang C, M/D/c approximations, and the
// Pollaczek-Khinchine formula for M/G/1) used to cross-validate the
// discrete-event simulator: a scheduler model whose c-FCFS results
// disagree with Erlang C is wrong before any paper comparison starts.
package queueing

import (
	"errors"
	"math"
)

// ErrUnstable is returned when the offered load meets or exceeds
// capacity (ρ ≥ 1), where steady-state waiting time diverges.
var ErrUnstable = errors.New("queueing: utilization >= 1, system unstable")

// MM1MeanWait returns the mean waiting time (excluding service) in an
// M/M/1 queue with arrival rate λ and service rate µ, in the same time
// unit as 1/λ.
func MM1MeanWait(lambda, mu float64) (float64, error) {
	if lambda <= 0 || mu <= 0 {
		return 0, errors.New("queueing: rates must be positive")
	}
	rho := lambda / mu
	if rho >= 1 {
		return 0, ErrUnstable
	}
	return rho / (mu - lambda), nil
}

// MM1MeanSojourn returns the mean total time in an M/M/1 system.
func MM1MeanSojourn(lambda, mu float64) (float64, error) {
	w, err := MM1MeanWait(lambda, mu)
	if err != nil {
		return 0, err
	}
	return w + 1/mu, nil
}

// ErlangC returns the probability that an arriving job waits in an
// M/M/c queue with offered load a = λ/µ Erlangs and c servers.
func ErlangC(c int, a float64) (float64, error) {
	if c <= 0 || a <= 0 {
		return 0, errors.New("queueing: need c > 0 and a > 0")
	}
	rho := a / float64(c)
	if rho >= 1 {
		return 0, ErrUnstable
	}
	// Compute the Erlang-B recursion then convert to Erlang C; the
	// recursion is numerically stable for large c.
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b / (1 - rho*(1-b)), nil
}

// MMcMeanWait returns the mean waiting time in an M/M/c queue with
// arrival rate λ and per-server service rate µ.
func MMcMeanWait(c int, lambda, mu float64) (float64, error) {
	if lambda <= 0 || mu <= 0 {
		return 0, errors.New("queueing: rates must be positive")
	}
	a := lambda / mu
	pw, err := ErlangC(c, a)
	if err != nil {
		return 0, err
	}
	return pw / (float64(c)*mu - lambda), nil
}

// MMcWaitQuantile returns the q-quantile of waiting time in an M/M/c
// queue (the waiting-time distribution is a point mass at 0 with
// probability 1-P(wait), and exponential with rate cµ-λ beyond it).
func MMcWaitQuantile(c int, lambda, mu, q float64) (float64, error) {
	if q < 0 || q >= 1 {
		return 0, errors.New("queueing: quantile must be in [0,1)")
	}
	pw, err := ErlangC(c, lambda/mu)
	if err != nil {
		return 0, err
	}
	if q <= 1-pw {
		return 0, nil
	}
	// P(W > t) = pw * exp(-(cµ-λ)t); solve for t at tail 1-q.
	rate := float64(c)*mu - lambda
	return math.Log(pw/(1-q)) / rate, nil
}

// MG1MeanWait returns the Pollaczek-Khinchine mean waiting time for an
// M/G/1 queue with arrival rate λ, mean service es and second moment
// es2 of the service time.
func MG1MeanWait(lambda, es, es2 float64) (float64, error) {
	if lambda <= 0 || es <= 0 || es2 <= 0 {
		return 0, errors.New("queueing: parameters must be positive")
	}
	rho := lambda * es
	if rho >= 1 {
		return 0, ErrUnstable
	}
	return lambda * es2 / (2 * (1 - rho)), nil
}

// MD1MeanWait returns the mean waiting time for an M/D/1 queue
// (deterministic service of duration s): the P-K formula with zero
// service variance.
func MD1MeanWait(lambda, s float64) (float64, error) {
	return MG1MeanWait(lambda, s, s*s)
}

// MDcMeanWaitApprox approximates the mean waiting time in an M/D/c
// queue with the standard Cosmetatos-style heuristic: M/M/c wait
// scaled by the (1+CV²)/2 factor (CV=0 for deterministic service).
func MDcMeanWaitApprox(c int, lambda float64, s float64) (float64, error) {
	mu := 1 / s
	w, err := MMcMeanWait(c, lambda, mu)
	if err != nil {
		return 0, err
	}
	return w / 2, nil
}

// BimodalSecondMoment computes E[S²] for a two-point service
// distribution, the input the P-K formula needs for the paper's
// bimodal workloads.
func BimodalSecondMoment(short, long, shortRatio float64) float64 {
	return shortRatio*short*short + (1-shortRatio)*long*long
}

// Utilization reports ρ = λ·E[S]/c.
func Utilization(c int, lambda, meanService float64) float64 {
	if c <= 0 {
		return 0
	}
	return lambda * meanService / float64(c)
}
