package queueing

import (
	"math"
	"testing"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Abs(want)+1e-12 {
		t.Fatalf("%s: got %g, want %g (tol %g)", what, got, want, tol)
	}
}

func TestMM1KnownValues(t *testing.T) {
	// λ=0.5, µ=1: ρ=0.5, W = ρ/(µ-λ) = 1.
	w, err := MM1MeanWait(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, w, 1.0, 1e-9, "M/M/1 wait")
	s, err := MM1MeanSojourn(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, s, 2.0, 1e-9, "M/M/1 sojourn")
}

func TestMM1Unstable(t *testing.T) {
	if _, err := MM1MeanWait(1, 1); err != ErrUnstable {
		t.Fatalf("err %v", err)
	}
	if _, err := MM1MeanWait(2, 1); err != ErrUnstable {
		t.Fatalf("err %v", err)
	}
	if _, err := MM1MeanWait(-1, 1); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestErlangCKnownValues(t *testing.T) {
	// Classic reference: c=2, a=1 → C = 1/3.
	c, err := ErlangC(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, c, 1.0/3, 1e-9, "ErlangC(2,1)")
	// c=1 reduces to ρ.
	c1, err := ErlangC(1, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, c1, 0.7, 1e-9, "ErlangC(1,0.7)")
}

func TestErlangCUnstable(t *testing.T) {
	if _, err := ErlangC(2, 2); err != ErrUnstable {
		t.Fatalf("err %v", err)
	}
	if _, err := ErlangC(0, 1); err == nil {
		t.Fatal("c=0 accepted")
	}
}

func TestMMcReducesToMM1(t *testing.T) {
	w1, _ := MM1MeanWait(0.6, 1)
	wc, err := MMcMeanWait(1, 0.6, 1)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, wc, w1, 1e-9, "M/M/c(c=1) vs M/M/1")
}

func TestMMcWaitQuantile(t *testing.T) {
	// With c=2, λ=1, µ=1: P(wait)=1/3, so the 50th percentile is 0.
	q50, err := MMcWaitQuantile(2, 1, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q50 != 0 {
		t.Fatalf("q50 %g, want 0", q50)
	}
	// Deep tail must be positive and increasing.
	q99, _ := MMcWaitQuantile(2, 1, 1, 0.99)
	q999, _ := MMcWaitQuantile(2, 1, 1, 0.999)
	if q99 <= 0 || q999 <= q99 {
		t.Fatalf("q99=%g q999=%g", q99, q999)
	}
	if _, err := MMcWaitQuantile(2, 1, 1, 1); err == nil {
		t.Fatal("q=1 accepted")
	}
}

func TestMG1AgainstMM1(t *testing.T) {
	// Exponential service: E[S²]=2/µ² makes P-K equal the M/M/1 wait.
	lambda, mu := 0.5, 1.0
	pk, err := MG1MeanWait(lambda, 1/mu, 2/(mu*mu))
	if err != nil {
		t.Fatal(err)
	}
	w1, _ := MM1MeanWait(lambda, mu)
	almost(t, pk, w1, 1e-9, "P-K vs M/M/1")
}

func TestMD1HalvesMM1Wait(t *testing.T) {
	// Deterministic service halves the M/M/1 waiting time.
	lambda, s := 0.5, 1.0
	wd, err := MD1MeanWait(lambda, s)
	if err != nil {
		t.Fatal(err)
	}
	wm, _ := MM1MeanWait(lambda, 1/s)
	almost(t, wd, wm/2, 1e-9, "M/D/1 vs M/M/1")
}

func TestBimodalSecondMoment(t *testing.T) {
	// 99.5% at 0.5, 0.5% at 500 (Extreme Bimodal in µs).
	got := BimodalSecondMoment(0.5, 500, 0.995)
	want := 0.995*0.25 + 0.005*250000
	almost(t, got, want, 1e-12, "bimodal E[S²]")
}

func TestUtilization(t *testing.T) {
	almost(t, Utilization(14, 100000, 50.5e-6), 100000*50.5e-6/14, 1e-12, "utilization")
	if Utilization(0, 1, 1) != 0 {
		t.Fatal("c=0 utilization")
	}
}

func TestMDcApproxHalvesMMc(t *testing.T) {
	w, err := MDcMeanWaitApprox(4, 300000, 10e-6)
	if err != nil {
		t.Fatal(err)
	}
	mmc, _ := MMcMeanWait(4, 300000, 1/10e-6)
	almost(t, w, mmc/2, 1e-9, "M/D/c approx")
	if _, err := MDcMeanWaitApprox(4, 1e9, 10e-6); err != ErrUnstable {
		t.Fatalf("unstable M/D/c: %v", err)
	}
}

func TestMMcMeanWaitErrors(t *testing.T) {
	if _, err := MMcMeanWait(2, 0, 1); err == nil {
		t.Fatal("zero lambda accepted")
	}
	if _, err := MMcMeanWait(2, 3, 1); err != ErrUnstable {
		t.Fatalf("unstable M/M/c: %v", err)
	}
}

func TestMG1Errors(t *testing.T) {
	if _, err := MG1MeanWait(0, 1, 1); err == nil {
		t.Fatal("zero lambda accepted")
	}
	if _, err := MG1MeanWait(2, 1, 1); err != ErrUnstable {
		t.Fatalf("unstable M/G/1: %v", err)
	}
}

func TestMMcWaitQuantileUnstable(t *testing.T) {
	if _, err := MMcWaitQuantile(1, 2, 1, 0.5); err != ErrUnstable {
		t.Fatalf("unstable quantile: %v", err)
	}
}

func TestMM1SojournError(t *testing.T) {
	if _, err := MM1MeanSojourn(2, 1); err != ErrUnstable {
		t.Fatalf("unstable sojourn: %v", err)
	}
}
