package frontend

import (
	"testing"
	"time"
)

// conservation asserts the correlator's core invariant at a quiescent
// point: issued == replied + duplicate + timedOut + nacked + pending.
func conservation(t *testing.T, c *correlator) {
	t.Helper()
	issued := c.issued.Load()
	accounted := c.replied.Load() + c.duplicate.Load() + c.timedOut.Load() + c.nacked.Load() + uint64(c.pendingCount())
	if issued != accounted {
		t.Fatalf("conservation violated: issued=%d replied=%d duplicate=%d timedOut=%d nacked=%d pending=%d",
			issued, c.replied.Load(), c.duplicate.Load(), c.timedOut.Load(), c.nacked.Load(), c.pendingCount())
	}
}

func TestCorrelatorFirstReplyWins(t *testing.T) {
	c := newCorrelator(2)
	now := time.Unix(0, 0)
	q := c.newQuery(7, 1, nil, []byte("x"), 2, now, now.Add(time.Second))
	id0 := c.issue(q, 0, 0, 0, now)
	id1 := c.issue(q, 1, 1, 0, now)

	ev := c.reply(0, id0, now.Add(time.Millisecond))
	if ev.kind != replySettled || ev.queryDone {
		t.Fatalf("first reply: kind=%v done=%v", ev.kind, ev.queryDone)
	}
	if ev.latency != time.Millisecond {
		t.Fatalf("latency = %v", ev.latency)
	}
	ev = c.reply(1, id1, now.Add(2*time.Millisecond))
	if ev.kind != replySettled || !ev.queryDone {
		t.Fatalf("last reply: kind=%v done=%v", ev.kind, ev.queryDone)
	}
	// A straggler for an already-resolved id is a stray (entry gone).
	if ev := c.reply(1, id1, now); ev.kind != replyStray {
		t.Fatalf("straggler kind = %v", ev.kind)
	}
	conservation(t, c)
}

func TestCorrelatorHedgeDuplicate(t *testing.T) {
	c := newCorrelator(3)
	now := time.Unix(0, 0)
	q := c.newQuery(1, 0, nil, []byte("y"), 1, now, now.Add(time.Second))
	primary := c.issue(q, 0, 0, 0, now)

	orders := c.hedgeScan(now.Add(10*time.Millisecond), func(int) time.Duration { return time.Millisecond })
	if len(orders) != 1 || orders[0].slot != 0 || orders[0].primary != 0 {
		t.Fatalf("orders = %+v", orders)
	}
	// A second scan must not hedge the same slot again.
	if again := c.hedgeScan(now.Add(20*time.Millisecond), func(int) time.Duration { return time.Millisecond }); len(again) != 0 {
		t.Fatalf("slot hedged twice: %+v", again)
	}
	hedge := c.issue(q, 0, 2, 1, now.Add(10*time.Millisecond))

	// Hedge wins; the primary's later reply is suppressed.
	ev := c.reply(2, hedge, now.Add(11*time.Millisecond))
	if ev.kind != replySettled || !ev.queryDone || ev.sub.attempt != 1 {
		t.Fatalf("hedge reply: %+v", ev)
	}
	ev = c.reply(0, primary, now.Add(50*time.Millisecond))
	if ev.kind != replyDuplicate {
		t.Fatalf("primary straggler kind = %v", ev.kind)
	}
	if got := c.duplicate.Load(); got != 1 {
		t.Fatalf("duplicates = %d", got)
	}
	conservation(t, c)
}

func TestCorrelatorCancelHedgeAllowsRetry(t *testing.T) {
	c := newCorrelator(1)
	now := time.Unix(0, 0)
	q := c.newQuery(1, 0, nil, nil, 1, now, now.Add(time.Second))
	c.issue(q, 0, 0, 0, now)
	d := func(int) time.Duration { return time.Millisecond }
	if got := len(c.hedgeScan(now.Add(5*time.Millisecond), d)); got != 1 {
		t.Fatalf("first scan orders = %d", got)
	}
	c.cancelHedge(q, 0)
	if got := len(c.hedgeScan(now.Add(6*time.Millisecond), d)); got != 1 {
		t.Fatalf("post-cancel scan orders = %d", got)
	}
}

func TestCorrelatorReapFailsQuery(t *testing.T) {
	c := newCorrelator(2)
	now := time.Unix(0, 0)
	q := c.newQuery(9, 0, nil, nil, 2, now, now.Add(100*time.Millisecond))
	c.issue(q, 0, 0, 0, now)
	id1 := c.issue(q, 1, 1, 0, now)

	// Shard 1 answers in time; shard 0 never does.
	if ev := c.reply(1, id1, now.Add(time.Millisecond)); ev.kind != replySettled || ev.queryDone {
		t.Fatalf("reply: %+v", ev)
	}
	expired, finished := c.reap(now.Add(200 * time.Millisecond))
	if len(expired) != 1 || expired[0].slot != 0 {
		t.Fatalf("expired = %+v", expired)
	}
	if len(finished) != 1 || finished[0] != q {
		t.Fatalf("finished = %+v", finished)
	}
	q.mu.Lock()
	failed, done := q.failed, q.finished
	q.mu.Unlock()
	if !failed || !done {
		t.Fatalf("failed=%v finished=%v", failed, done)
	}
	if c.timedOut.Load() != 1 {
		t.Fatalf("timedOut = %d", c.timedOut.Load())
	}
	conservation(t, c)
}

func TestCorrelatorNackTriggersHedge(t *testing.T) {
	c := newCorrelator(3)
	now := time.Unix(0, 0)
	q := c.newQuery(4, 0, nil, []byte("z"), 1, now, now.Add(time.Second))
	primary := c.issue(q, 0, 0, 0, now)

	ev := c.nack(0, primary)
	if ev.stray || ev.finished != nil || ev.hedge == nil {
		t.Fatalf("nack event: %+v", ev)
	}
	if ev.hedge.slot != 0 || ev.hedge.primary != 0 {
		t.Fatalf("hedge order: %+v", ev.hedge)
	}
	if c.nacked.Load() != 1 {
		t.Fatalf("nacked = %d", c.nacked.Load())
	}
	// The slot is marked hedged: a later scan must not hedge it again.
	if again := c.hedgeScan(now.Add(time.Hour), func(int) time.Duration { return time.Millisecond }); len(again) != 0 {
		t.Fatalf("NACKed slot hedged twice: %+v", again)
	}
	// The hedge replacement settles the query.
	hedge := c.issue(q, 0, 2, 1, now)
	if ev := c.reply(2, hedge, now.Add(time.Millisecond)); ev.kind != replySettled || !ev.queryDone {
		t.Fatalf("hedge reply: %+v", ev)
	}
	conservation(t, c)
}

func TestCorrelatorDoubleNackFailsQuery(t *testing.T) {
	c := newCorrelator(3)
	now := time.Unix(0, 0)
	q := c.newQuery(5, 0, nil, nil, 1, now, now.Add(time.Second))
	primary := c.issue(q, 0, 0, 0, now)

	ev := c.nack(0, primary)
	if ev.hedge == nil {
		t.Fatalf("first nack: %+v", ev)
	}
	hedge := c.issue(q, 0, 1, 1, now)
	// The hedge is refused too: the slot has no re-issue left, so the
	// query fails right here instead of hanging until the deadline.
	ev = c.nack(1, hedge)
	if ev.hedge != nil || ev.finished != q {
		t.Fatalf("second nack: %+v", ev)
	}
	q.mu.Lock()
	failed, done := q.failed, q.finished
	q.mu.Unlock()
	if !failed || !done {
		t.Fatalf("failed=%v finished=%v", failed, done)
	}
	if c.nacked.Load() != 2 {
		t.Fatalf("nacked = %d", c.nacked.Load())
	}
	conservation(t, c)
}

func TestCorrelatorFailSlot(t *testing.T) {
	c := newCorrelator(2)
	now := time.Unix(0, 0)
	q := c.newQuery(6, 0, nil, nil, 2, now, now.Add(time.Second))
	id0 := c.issue(q, 0, 0, 0, now)
	id1 := c.issue(q, 1, 1, 0, now)

	// Slot 0's NACK wants a hedge but no spare exists: failSlot settles
	// its fate without finishing the still-live query.
	if ev := c.nack(0, id0); ev.hedge == nil {
		t.Fatalf("nack: %+v", ev)
	}
	if got := c.failSlot(q, 0); got != nil {
		t.Fatalf("failSlot finished a query with open slots: %v", got)
	}
	// Slot 1 answers; its settling reply finishes the (failed) query.
	ev := c.reply(1, id1, now.Add(time.Millisecond))
	if ev.kind != replySettled || !ev.queryDone {
		t.Fatalf("reply: %+v", ev)
	}
	q.mu.Lock()
	failed := q.failed
	q.mu.Unlock()
	if !failed {
		t.Fatal("query not marked failed after failSlot")
	}
	// Idempotent on a finished query.
	if got := c.failSlot(q, 0); got != nil {
		t.Fatalf("failSlot on finished query: %v", got)
	}
	conservation(t, c)
}

func TestCorrelatorNackStray(t *testing.T) {
	c := newCorrelator(1)
	if ev := c.nack(0, 999); !ev.stray {
		t.Fatalf("unknown id: %+v", ev)
	}
	if ev := c.nack(-1, 1); !ev.stray {
		t.Fatalf("out-of-range backend: %+v", ev)
	}
	if c.strays.Load() != 2 || c.nacked.Load() != 0 {
		t.Fatalf("strays=%d nacked=%d", c.strays.Load(), c.nacked.Load())
	}
}

func TestCorrelatorStray(t *testing.T) {
	c := newCorrelator(1)
	if ev := c.reply(0, 999, time.Unix(0, 0)); ev.kind != replyStray {
		t.Fatalf("kind = %v", ev.kind)
	}
	if ev := c.reply(-1, 1, time.Unix(0, 0)); ev.kind != replyStray {
		t.Fatalf("out-of-range backend kind = %v", ev.kind)
	}
	if c.strays.Load() != 2 {
		t.Fatalf("strays = %d", c.strays.Load())
	}
}

func TestHealthEjection(t *testing.T) {
	h := newHealth(8)
	now := time.Unix(0, 0)
	cool := time.Second
	if !h.healthy(now) {
		t.Fatal("fresh backend unhealthy")
	}
	if h.timeout(now, 3, cool) || h.timeout(now, 3, cool) {
		t.Fatal("ejected before streak reached 3")
	}
	if !h.timeout(now, 3, cool) {
		t.Fatal("third consecutive timeout did not eject")
	}
	if h.healthy(now.Add(cool / 2)) {
		t.Fatal("healthy during cooldown")
	}
	if !h.healthy(now.Add(cool + time.Nanosecond)) {
		t.Fatal("still ejected after cooldown")
	}
	// A successful reply clears the streak.
	h.observe(time.Millisecond)
	after := now.Add(2 * cool)
	if h.timeout(after, 3, cool) || h.timeout(after, 3, cool) {
		t.Fatal("streak not cleared by observe")
	}
	if h.ejectionCount() != 1 {
		t.Fatalf("ejections = %d", h.ejectionCount())
	}
	if !h.crash(after, cool) {
		t.Fatal("crash did not eject")
	}
	if h.ejectionCount() != 2 {
		t.Fatalf("ejections after crash = %d", h.ejectionCount())
	}
}

func TestHealthP99(t *testing.T) {
	h := newHealth(64)
	if h.p99() != 0 {
		t.Fatal("p99 nonzero with no samples")
	}
	for i := 0; i < 15; i++ {
		h.observe(time.Millisecond)
	}
	if h.p99() != 0 {
		t.Fatal("p99 nonzero below the sample floor")
	}
	h.observe(100 * time.Millisecond)
	if got := h.p99(); got != 100*time.Millisecond {
		t.Fatalf("p99 = %v, want the tail sample", got)
	}
}

// FuzzCorrelationTable drives the correlator through arbitrary
// interleavings of query creation, replies (valid, duplicate, bogus),
// hedges, and reaps, then asserts the structural invariants: no
// pending entry leaks, no query finishes twice, and every issued
// transmission is accounted exactly once.
func FuzzCorrelationTable(f *testing.F) {
	f.Add([]byte{0, 2, 1, 0, 3, 50, 4, 1, 0})
	f.Add([]byte{0, 1, 0, 3, 200, 0, 3, 1, 1, 1, 2})
	f.Add([]byte{0, 3, 4, 1, 0, 1, 0, 1, 1, 3, 255, 2, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		const backends = 3
		c := newCorrelator(backends)
		now := time.Unix(0, 0)
		type issuedSub struct {
			id      uint64
			backend int
		}
		var subs []issuedSub
		var queries []*query
		done := map[uint64]int{} // query id -> completion events observed

		finish := func(q *query) {
			done[q.id]++
			if done[q.id] > 1 {
				t.Fatalf("query %d finished twice", q.id)
			}
		}

		pos := 0
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		for pos < len(data) {
			switch next() % 6 {
			case 0: // new query with k primaries
				k := int(next())%backends + 1
				q := c.newQuery(uint64(len(queries)), 0, nil, []byte{1, 2}, k, now, now.Add(100*time.Millisecond))
				queries = append(queries, q)
				for slot := 0; slot < k; slot++ {
					b := (slot + int(next())) % backends
					subs = append(subs, issuedSub{id: c.issue(q, slot, b, 0, now), backend: b})
				}
			case 1: // reply to a previously issued sub (maybe already resolved)
				if len(subs) == 0 {
					continue
				}
				s := subs[int(next())%len(subs)]
				if ev := c.reply(s.backend, s.id, now); ev.queryDone {
					finish(ev.sub.q)
				}
			case 2: // bogus reply — must be a stray, never corrupt state
				if ev := c.reply(int(next())%backends, uint64(next())+1_000_000, now); ev.kind != replyStray {
					t.Fatalf("bogus reply classified %v", ev.kind)
				}
			case 3: // advance time and reap
				now = now.Add(time.Duration(next()) * time.Millisecond)
				_, finished := c.reap(now)
				for _, q := range finished {
					finish(q)
				}
			case 4: // hedge scan; issue every order
				for _, o := range c.hedgeScan(now, func(int) time.Duration { return time.Millisecond }) {
					b := int(next()) % backends
					subs = append(subs, issuedSub{id: c.issue(o.q, o.slot, b, 1, now), backend: b})
				}
			case 5: // admission NACK (maybe already resolved); the caller
				// either places the immediate hedge or fails the slot
				if len(subs) == 0 {
					continue
				}
				s := subs[int(next())%len(subs)]
				ev := c.nack(s.backend, s.id)
				if ev.hedge != nil {
					if spare := next(); spare%2 == 0 {
						b := int(spare) % backends
						subs = append(subs, issuedSub{id: c.issue(ev.hedge.q, ev.hedge.slot, b, 1, now), backend: b})
					} else if q := c.failSlot(ev.hedge.q, ev.hedge.slot); q != nil {
						finish(q)
					}
				} else if ev.finished != nil {
					finish(ev.finished)
				}
			}
		}
		// Drain: everything still pending times out; queries finish.
		_, finished := c.reap(now.Add(time.Hour))
		for _, q := range finished {
			finish(q)
		}
		if p := c.pendingCount(); p != 0 {
			t.Fatalf("pending entries leaked: %d", p)
		}
		issued := c.issued.Load()
		accounted := c.replied.Load() + c.duplicate.Load() + c.timedOut.Load() + c.nacked.Load()
		if issued != accounted {
			t.Fatalf("conservation violated after drain: issued=%d replied=%d duplicate=%d timedOut=%d nacked=%d",
				issued, c.replied.Load(), c.duplicate.Load(), c.timedOut.Load(), c.nacked.Load())
		}
		for _, q := range queries {
			if done[q.id] != 1 {
				t.Fatalf("query %d completion events = %d, want exactly 1", q.id, done[q.id])
			}
		}
	})
}
