// Package frontend is the live fan-out tier of the paper's §1
// motivating deployment: a UDP frontend that accepts client queries,
// fans each out to k of n Perséphone backends as sub-requests
// (internal/proto framing plus a correlation-ID trailer the backends
// echo), and answers the client when the slowest shard responds — the
// layer where per-backend scheduling tails compound at the query
// level. Sub-requests travel as datagrams by default, or over one
// pipelined length-prefixed TCP stream per backend (Config.Network).
//
// Two tail-cutting mechanisms complement the backends' scheduling
// (RepNet, PAPERS.md): hedged requests — a sub-request outstanding
// longer than a retry elsewhere would take (the best other healthy
// backend's moving p99, floored) is re-issued
// once to a spare backend, first reply wins, the loser is suppressed
// as a duplicate — and health ejection — a backend accumulating
// consecutive timeouts (or reported crashed by internal/faults) stops
// receiving sub-requests until a cooldown passes.
//
// Overloaded backends participate too: an admission NACK
// (proto.StatusOverloaded) from a backend resolves the sub-request
// immediately — it counts toward the backend's ejection streak like a
// timeout would, and triggers an immediate hedge to a spare backend
// (no point waiting out the hedge delay when the backend has already
// refused the work).
//
// Accounting is exact: every issued sub-request transmission is
// counted exactly once as replied, duplicate, timed out, or nacked,
// so after a drain issued == replied + duplicates + timedOut + nacked
// (the conservation invariant the tests and the fuzzer assert).
package frontend

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/psp"
	"repro/internal/spsc"
)

// Config assembles a Frontend.
type Config struct {
	// Backends lists the backend addresses (required, >= 1).
	Backends []string
	// Network selects the backend transport: "udp" (default) sends
	// each sub-request as a datagram; "tcp" keeps one pipelined
	// length-prefixed-frame connection per backend, sub-requests
	// matched back by request ID. The client-facing socket is always
	// UDP either way. A broken TCP backend stream is not redialed:
	// its sub-requests time out and health ejection routes around it.
	Network string
	// FanOut is how many distinct backends each query contacts
	// (default: min(2, len(Backends)); clamped to the healthy set at
	// issue time).
	FanOut int
	// QueryTimeout bounds a query end-to-end; sub-requests still
	// pending at the deadline are reaped as timed out and the client
	// gets an error response (default 250ms).
	QueryTimeout time.Duration
	// Hedge enables hedged sub-requests.
	Hedge bool
	// HedgeAfterMin floors the hedge trigger delay; the effective
	// delay for a sub-request on backend b is max(HedgeAfterMin,
	// lowest p99 among the other healthy backends) (default 2ms).
	HedgeAfterMin time.Duration
	// HedgeWindow is the per-backend reply-latency window sizing the
	// moving p99 (default 256 samples).
	HedgeWindow int
	// EjectAfter is the consecutive-timeout count that ejects a
	// backend (default 3).
	EjectAfter int
	// EjectCooldown is how long an ejected backend receives no new
	// sub-requests (default 1s); the first sub-request after the
	// cooldown doubles as the recovery probe.
	EjectCooldown time.Duration
	// Tick is the reap/hedge scan period (default 1ms).
	Tick time.Duration
	// PoolSize bounds pooled ingress buffers and thereby in-flight
	// queries; an exhausted pool sheds new queries with StatusDropped
	// (default 1024).
	PoolSize int
}

func (c *Config) fill() error {
	if len(c.Backends) == 0 {
		return errors.New("frontend: config needs at least one backend")
	}
	switch c.Network {
	case "":
		c.Network = "udp"
	case "udp", "tcp":
	default:
		return fmt.Errorf("frontend: unsupported backend network %q (want udp or tcp)", c.Network)
	}
	if c.FanOut <= 0 {
		c.FanOut = 2
	}
	if c.FanOut > len(c.Backends) {
		c.FanOut = len(c.Backends)
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 250 * time.Millisecond
	}
	if c.HedgeAfterMin <= 0 {
		c.HedgeAfterMin = 2 * time.Millisecond
	}
	if c.HedgeWindow <= 0 {
		c.HedgeWindow = 256
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.EjectCooldown <= 0 {
		c.EjectCooldown = time.Second
	}
	if c.Tick <= 0 {
		c.Tick = time.Millisecond
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 1024
	}
	return nil
}

// queryBufPayload is the largest client query a pooled buffer accepts.
const queryBufPayload = 2048

// backendConn is the frontend's lane to one backend: a dialed socket
// (receives only that backend's replies), the pending table index,
// and health state. On UDP the socket carries datagrams; on TCP it is
// one pipelined stream of length-prefixed frames.
type backendConn struct {
	network string
	conn    net.Conn
	wmu     sync.Mutex // TCP: intake and hedge senders must not interleave mid-frame
	scratch []byte     // TCP: prefix+frame staged into one Write
	sent    atomic.Uint64
	replies atomic.Uint64
}

// send transmits one encoded sub-request: the raw message as a
// datagram on UDP, or a 4-byte little-endian length prefix plus the
// message as a single Write on TCP (so concurrent senders cannot
// interleave mid-frame). Errors are dropped either way — a dead lane
// surfaces as sub-request timeouts, which is what ejects it.
func (bc *backendConn) send(msg []byte) {
	if bc.network != "tcp" {
		bc.conn.Write(msg) //nolint:errcheck // fire-and-forget UDP
		return
	}
	bc.wmu.Lock()
	bc.scratch = append(bc.scratch[:0], 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(bc.scratch, uint32(len(msg)))
	bc.scratch = append(bc.scratch, msg...)
	bc.conn.Write(bc.scratch) //nolint:errcheck
	bc.wmu.Unlock()
}

// Frontend is a running fan-out tier.
type Frontend struct {
	cfg  Config
	conn *net.UDPConn // client-facing socket
	pool *spsc.Pool

	corr     *correlator
	backends []*backendConn
	health   []*health

	rr atomic.Uint64 // round-robin cursor for primary backend choice

	queries       atomic.Uint64
	queriesOK     atomic.Uint64
	queriesFailed atomic.Uint64
	queriesShed   atomic.Uint64
	hedgesIssued  atomic.Uint64
	hedgeWins     atomic.Uint64
	rxDrops       atomic.Uint64 // malformed client datagrams

	histMu    sync.Mutex
	queryHist metrics.Histogram // client-observed query latency (ns)

	stopTick chan struct{}
	wg       sync.WaitGroup
	closed   atomic.Bool
}

// Listen binds the client-facing UDP socket at addr, dials every
// backend, and starts the fan-out tier.
func Listen(addr string, cfg Config) (*Frontend, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("frontend: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("frontend: listen %q: %w", addr, err)
	}
	f := &Frontend{
		cfg:      cfg,
		conn:     conn,
		pool:     spsc.NewPool(cfg.PoolSize, queryBufPayload+proto.ResponseOverhead+proto.CorrelationSize),
		corr:     newCorrelator(len(cfg.Backends)),
		stopTick: make(chan struct{}),
	}
	for i, b := range cfg.Backends {
		bc, err := net.Dial(cfg.Network, strings.TrimSpace(b))
		if err != nil {
			f.closeConns()
			return nil, fmt.Errorf("frontend: dial backend %d %q: %w", i, b, err)
		}
		f.backends = append(f.backends, &backendConn{network: cfg.Network, conn: bc})
		f.health = append(f.health, newHealth(cfg.HedgeWindow))
	}
	f.wg.Add(1)
	go f.intakeLoop()
	for i := range f.backends {
		f.wg.Add(1)
		go f.receiverLoop(i)
	}
	f.wg.Add(1)
	go f.tickLoop()
	return f, nil
}

// Addr reports the client-facing bound address.
func (f *Frontend) Addr() *net.UDPAddr { return f.conn.LocalAddr().(*net.UDPAddr) }

// NoteBackendCrash ejects backend i immediately — the hook a
// supervisor wires to internal/faults crash events (Injector
// .SetCrashHook) so the health scorer learns about crashes faster
// than the timeout path would.
func (f *Frontend) NoteBackendCrash(i int) {
	if i < 0 || i >= len(f.health) {
		return
	}
	f.health[i].crash(time.Now(), f.cfg.EjectCooldown)
}

// intakeLoop accepts client queries and fans them out.
func (f *Frontend) intakeLoop() {
	defer f.wg.Done()
	scratch := make([]byte, queryBufPayload+proto.ResponseOverhead+proto.CorrelationSize)
	encode := make([]byte, 0, queryBufPayload+proto.HeaderSize+proto.CorrelationSize)
	outPayload := make([]byte, 0, queryBufPayload)
	for {
		buf := f.pool.Get()
		data := scratch
		if buf != nil {
			data = buf.Data
		}
		n, from, err := f.conn.ReadFromUDP(data)
		if err != nil {
			if buf != nil {
				buf.Release()
			}
			return // socket closed
		}
		if buf != nil {
			buf.Len = n
		}
		hdr, payload, perr := proto.DecodeHeader(data[:n])
		if perr != nil || hdr.Kind != proto.KindRequest {
			if buf != nil {
				buf.Release()
			}
			f.rxDrops.Add(1)
			continue
		}
		if buf == nil {
			// Pool exhausted: shed the query explicitly instead of
			// letting the client time out (open-loop backpressure).
			f.queriesShed.Add(1)
			f.sendShed(hdr, from)
			continue
		}
		now := time.Now()
		targets := f.pickBackends(f.cfg.FanOut, now)
		if len(targets) == 0 {
			buf.Release()
			f.queriesShed.Add(1)
			f.sendShed(hdr, from)
			continue
		}
		f.queries.Add(1)
		q := f.corr.newQuery(hdr.RequestID, hdr.TypeID, from, payload, len(targets), now, now.Add(f.cfg.QueryTimeout))
		q.buf = buf
		// Encode from intake's own copy: issue() makes the query
		// visible to the reaper, which may finish it and reuse the
		// pooled buffer for the response while we are still sending.
		outPayload = append(outPayload[:0], payload...)
		for slot, b := range targets {
			id := f.corr.issue(q, slot, b, 0, now)
			encode = f.encodeSub(encode[:0], id, hdr.TypeID, outPayload, proto.Correlation{
				QueryID: q.id, Shard: uint8(slot), Attempt: 0,
			})
			f.backends[b].sent.Add(1)
			f.backends[b].send(encode)
		}
	}
}

// encodeSub frames one sub-request: header + payload + correlation.
func (f *Frontend) encodeSub(dst []byte, id uint64, typeID uint16, payload []byte, corr proto.Correlation) []byte {
	dst = proto.AppendMessage(dst, proto.Header{
		Kind:      proto.KindRequest,
		TypeID:    typeID,
		RequestID: id,
	}, payload)
	return proto.AppendCorrelation(dst, corr)
}

// pickBackends chooses up to k distinct healthy backends round-robin.
func (f *Frontend) pickBackends(k int, now time.Time) []int {
	n := len(f.backends)
	start := int(f.rr.Add(1)) % n
	out := make([]int, 0, k)
	for i := 0; i < n && len(out) < k; i++ {
		b := (start + i) % n
		if f.health[b].healthy(now) {
			out = append(out, b)
		}
	}
	return out
}

// sendShed answers a rejected query immediately with a drop status.
func (f *Frontend) sendShed(hdr proto.Header, from *net.UDPAddr) {
	msg := proto.AppendMessage(make([]byte, 0, proto.HeaderSize), proto.Header{
		Kind:      proto.KindResponse,
		Status:    proto.StatusDropped,
		TypeID:    hdr.TypeID,
		RequestID: hdr.RequestID,
	}, nil)
	f.conn.WriteToUDP(msg, from) //nolint:errcheck // fire-and-forget UDP
}

// receiverLoop drains one backend's replies and resolves them against
// its pending table: one datagram per reply on UDP, a FrameScanner
// re-assembling length-prefixed frames on TCP.
func (f *Frontend) receiverLoop(b int) {
	defer f.wg.Done()
	bc := f.backends[b]
	buf := make([]byte, queryBufPayload+proto.ResponseOverhead+proto.CorrelationSize)
	if bc.network == "tcp" {
		var sc psp.FrameScanner
		for {
			n, err := bc.conn.Read(buf)
			if n > 0 {
				if serr := sc.Push(buf[:n], func(frame []byte) error {
					f.processReply(b, bc, frame)
					return nil
				}); serr != nil {
					return // unframeable stream: drop the lane, timeouts eject it
				}
			}
			if err != nil {
				return // socket closed
			}
		}
	}
	for {
		n, err := bc.conn.Read(buf)
		if err != nil {
			return // socket closed
		}
		f.processReply(b, bc, buf[:n])
	}
}

// processReply resolves one reply frame (a datagram body or a decoded
// TCP frame) against backend b's pending table.
func (f *Frontend) processReply(b int, bc *backendConn, data []byte) {
	hdr, payload, perr := proto.DecodeHeader(data)
	if perr != nil || hdr.Kind != proto.KindResponse {
		return
	}
	now := time.Now()
	if hdr.Status == proto.StatusOverloaded {
		f.handleNack(b, hdr.RequestID, now)
		return
	}
	ev := f.corr.reply(b, hdr.RequestID, now)
	switch ev.kind {
	case replyStray, replyDuplicate:
	case replySettled:
		bc.replies.Add(1)
		f.health[b].observe(ev.latency)
		if ev.sub.attempt > 0 {
			f.hedgeWins.Add(1)
		}
		if ev.queryDone {
			// This reply carried the slowest shard: answer the
			// client with its payload.
			f.finishQuery(ev.sub.q, hdr.Status, payload, now)
		}
	}
}

// handleNack resolves a backend admission NACK: the backend refused
// the sub-request, so waiting out the hedge delay is pointless. The
// refusal counts toward the backend's ejection streak exactly like a
// timeout (a shedding backend should stop receiving primaries), and
// the slot is re-issued immediately to a spare backend if it still
// has its hedge available; otherwise it fails the way a reaped slot
// would.
func (f *Frontend) handleNack(b int, id uint64, now time.Time) {
	ev := f.corr.nack(b, id)
	if ev.stray {
		return
	}
	f.health[b].timeout(now, f.cfg.EjectAfter, f.cfg.EjectCooldown)
	if ev.hedge != nil {
		order := *ev.hedge
		if spare := f.pickSpare(order, now); spare >= 0 {
			encode := f.encodeSub(nil, f.corr.issue(order.q, order.slot, spare, 1, now), order.q.typeID, order.payload, proto.Correlation{
				QueryID: order.q.id, Shard: uint8(order.slot), Attempt: 1,
			})
			f.hedgesIssued.Add(1)
			f.backends[spare].sent.Add(1)
			f.backends[spare].send(encode)
			return
		}
		// No spare to take the work: the slot's last transmission is
		// gone, so fail it now rather than hang until the deadline.
		if q := f.corr.failSlot(order.q, order.slot); q != nil {
			f.finishQuery(q, proto.StatusError, nil, now)
		}
		return
	}
	if ev.finished != nil {
		f.finishQuery(ev.finished, proto.StatusError, nil, now)
	}
}

// finishQuery sends the client response for a completed query and
// releases its ingress buffer. The correlator guarantees each query
// finishes exactly once, so this runs once per query.
func (f *Frontend) finishQuery(q *query, status proto.Status, payload []byte, now time.Time) {
	q.mu.Lock()
	hedges := q.hedges
	failed := q.failed
	q.mu.Unlock()
	if failed {
		status = proto.StatusError
		f.queriesFailed.Add(1)
	} else {
		f.queriesOK.Add(1)
	}
	lat := now.Sub(q.start)
	f.histMu.Lock()
	f.queryHist.RecordDuration(lat)
	f.histMu.Unlock()

	corr := proto.Correlation{QueryID: q.id, Shard: uint8(len(q.slots)), Attempt: uint8(min(hedges, 255))}
	need := proto.HeaderSize + len(payload) + proto.CorrelationSize
	hdr := proto.Header{
		Kind:      proto.KindResponse,
		Status:    status,
		TypeID:    q.typeID,
		RequestID: q.reqID,
	}
	if b := q.buf; b != nil && cap(b.Data) >= need {
		// Zero-copy egress: the query's own ingress buffer carries the
		// response frame, then returns to the pool.
		q.buf = nil
		msg := proto.AppendMessage(b.Data[:0], hdr, payload)
		msg = proto.AppendCorrelation(msg, corr)
		b.Len = len(msg)
		if !f.closed.Load() {
			f.conn.WriteToUDP(b.Bytes(), q.from) //nolint:errcheck // fire-and-forget UDP
		}
		b.Release()
		return
	}
	msg := proto.AppendMessage(make([]byte, 0, need), hdr, payload)
	msg = proto.AppendCorrelation(msg, corr)
	if !f.closed.Load() {
		f.conn.WriteToUDP(msg, q.from) //nolint:errcheck // fire-and-forget UDP
	}
	if q.buf != nil {
		q.buf.Release()
		q.buf = nil
	}
}

// tickLoop periodically reaps expired sub-requests (feeding the
// health scorer) and issues hedges for slow ones.
func (f *Frontend) tickLoop() {
	defer f.wg.Done()
	ticker := time.NewTicker(f.cfg.Tick)
	defer ticker.Stop()
	encode := make([]byte, 0, queryBufPayload+proto.HeaderSize+proto.CorrelationSize)
	for {
		select {
		case <-f.stopTick:
			return
		case <-ticker.C:
		}
		now := time.Now()
		expired, finished := f.corr.reap(now)
		for _, sb := range expired {
			f.health[sb.backend].timeout(now, f.cfg.EjectAfter, f.cfg.EjectCooldown)
		}
		for _, q := range finished {
			f.finishQuery(q, proto.StatusError, nil, now)
		}
		if f.cfg.Hedge {
			delayFor := func(b int) time.Duration { return f.hedgeDelay(b, now) }
			for _, order := range f.corr.hedgeScan(now, delayFor) {
				spare := f.pickSpare(order, now)
				if spare < 0 {
					f.corr.cancelHedge(order.q, order.slot)
					continue
				}
				id := f.corr.issue(order.q, order.slot, spare, 1, now)
				encode = f.encodeSub(encode[:0], id, order.q.typeID, order.payload, proto.Correlation{
					QueryID: order.q.id, Shard: uint8(order.slot), Attempt: 1,
				})
				f.hedgesIssued.Add(1)
				f.backends[spare].sent.Add(1)
				f.backends[spare].send(encode)
			}
		}
	}
}

// hedgeDelay reports how long a sub-request may stay outstanding on
// backend b before it is hedged: the lowest moving p99 among the
// *other* healthy backends, floored at HedgeAfterMin. The trigger is
// what a retry elsewhere would cost, not how slow b itself has been —
// keying off b's own window self-defeats, because a degraded backend
// inflates its own p99 and postpones exactly the hedges meant to
// route around it. With no other healthy backend (or none warmed up
// yet) the scan falls back to b's own p99.
func (f *Frontend) hedgeDelay(b int, now time.Time) time.Duration {
	var d time.Duration
	for i := range f.backends {
		if i == b || !f.health[i].healthy(now) {
			continue
		}
		if p := f.health[i].p99(); p > 0 && (d == 0 || p < d) {
			d = p
		}
	}
	if d == 0 {
		d = f.health[b].p99()
	}
	if d < f.cfg.HedgeAfterMin {
		d = f.cfg.HedgeAfterMin
	}
	return d
}

// pickSpare chooses the hedge target: a healthy backend outside the
// query's assigned set if one exists, else any healthy backend other
// than the slow primary.
func (f *Frontend) pickSpare(order hedgeOrder, now time.Time) int {
	n := len(f.backends)
	start := int(f.rr.Add(1)) % n
	fallback := -1
	for i := 0; i < n; i++ {
		b := (start + i) % n
		if b == order.primary || !f.health[b].healthy(now) {
			continue
		}
		assigned := false
		for _, a := range order.assigned {
			if a == b {
				assigned = true
				break
			}
		}
		if !assigned {
			return b
		}
		if fallback < 0 {
			fallback = b
		}
	}
	return fallback
}

// Close stops the loops, drains every pending sub-request as timed
// out (finishing their queries), and releases the sockets. After
// Close the conservation invariant holds exactly:
// issued == replied + duplicates + timedOut.
func (f *Frontend) Close() error {
	if f.closed.Swap(true) {
		return nil
	}
	err := f.conn.Close()
	for _, bc := range f.backends {
		bc.conn.Close() //nolint:errcheck
	}
	close(f.stopTick)
	f.wg.Wait()
	// Final reap: everything still pending is timed out; their
	// queries finish (failed) and release their buffers.
	_, finished := f.corr.reap(f.farFuture())
	for _, q := range finished {
		f.finishQuery(q, proto.StatusError, nil, time.Now())
	}
	return err
}

// farFuture is a reap horizon beyond every query deadline.
func (f *Frontend) farFuture() time.Time {
	return time.Now().Add(f.cfg.QueryTimeout + time.Hour)
}

func (f *Frontend) closeConns() {
	f.conn.Close() //nolint:errcheck
	for _, bc := range f.backends {
		bc.conn.Close() //nolint:errcheck
	}
}

// Stats is a point-in-time snapshot of frontend counters.
type Stats struct {
	// Queries counts accepted client queries; QueriesOK finished with
	// every shard answered, QueriesFailed with at least one shard
	// unanswered at the deadline, QueriesShed were rejected at intake
	// (no healthy backend, or pooled buffers exhausted).
	Queries, QueriesOK, QueriesFailed, QueriesShed uint64
	// Sub-request accounting; at any quiescent point SubIssued ==
	// SubReplied + SubDuplicate + SubTimedOut + SubNacked + Pending.
	// SubNacked counts transmissions a backend refused with an
	// admission NACK (StatusOverloaded).
	SubIssued, SubReplied, SubDuplicate, SubTimedOut, SubNacked uint64
	// Strays are replies matching no pending entry.
	Strays uint64
	// Hedges counts hedge transmissions issued; HedgeWins those whose
	// reply settled the slot first.
	Hedges, HedgeWins uint64
	// Ejections counts backend health ejections (timeout streaks and
	// crash events).
	Ejections uint64
	// RxDrops counts malformed client datagrams.
	RxDrops uint64
	// Pending is the number of outstanding sub-requests.
	Pending int
	// QueryP50/P99/P999 are client-observed query latency quantiles.
	QueryP50, QueryP99, QueryP999 time.Duration
	// QueryCount is the number of latency samples behind the quantiles.
	QueryCount uint64
}

// SubUnaccounted reports issued sub-requests with no recorded outcome
// and no pending entry; a correct frontend always reports 0.
func (s Stats) SubUnaccounted() int64 {
	return int64(s.SubIssued) - int64(s.SubReplied) - int64(s.SubDuplicate) - int64(s.SubTimedOut) - int64(s.SubNacked) - int64(s.Pending)
}

// Stats snapshots the counters.
func (f *Frontend) Stats() Stats {
	var ej uint64
	for _, h := range f.health {
		ej += h.ejectionCount()
	}
	f.histMu.Lock()
	p50 := f.queryHist.QuantileDuration(0.50)
	p99 := f.queryHist.QuantileDuration(0.99)
	p999 := f.queryHist.QuantileDuration(0.999)
	count := f.queryHist.Count()
	f.histMu.Unlock()
	return Stats{
		Queries:       f.queries.Load(),
		QueriesOK:     f.queriesOK.Load(),
		QueriesFailed: f.queriesFailed.Load(),
		QueriesShed:   f.queriesShed.Load(),
		SubIssued:     f.corr.issued.Load(),
		SubReplied:    f.corr.replied.Load(),
		SubDuplicate:  f.corr.duplicate.Load(),
		SubTimedOut:   f.corr.timedOut.Load(),
		SubNacked:     f.corr.nacked.Load(),
		Strays:        f.corr.strays.Load(),
		Hedges:        f.hedgesIssued.Load(),
		HedgeWins:     f.hedgeWins.Load(),
		Ejections:     ej,
		RxDrops:       f.rxDrops.Load(),
		Pending:       f.corr.pendingCount(),
		QueryP50:      p50,
		QueryP99:      p99,
		QueryP999:     p999,
		QueryCount:    count,
	}
}

// BackendHealthy reports whether backend i currently receives
// sub-requests.
func (f *Frontend) BackendHealthy(i int) bool {
	if i < 0 || i >= len(f.health) {
		return false
	}
	return f.health[i].healthy(time.Now())
}
