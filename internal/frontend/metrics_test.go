package frontend

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// plantedFrontend builds a socketless Frontend with hand-planted
// counters, so the exposition format is pinned deterministically.
func plantedFrontend() *Frontend {
	f := &Frontend{
		corr:     newCorrelator(2),
		backends: []*backendConn{{}, {}},
		health:   []*health{newHealth(8), newHealth(8)},
	}
	f.queries.Store(100)
	f.queriesOK.Store(95)
	f.queriesFailed.Store(3)
	f.queriesShed.Store(2)
	f.corr.issued.Store(210)
	f.corr.replied.Store(195)
	f.corr.duplicate.Store(9)
	f.corr.timedOut.Store(6)
	f.corr.strays.Store(1)
	f.hedgesIssued.Store(12)
	f.hedgeWins.Store(7)
	f.rxDrops.Store(4)
	f.backends[0].sent.Store(110)
	f.backends[0].replies.Store(104)
	f.backends[1].sent.Store(100)
	f.backends[1].replies.Store(91)
	f.health[1].mu.Lock()
	f.health[1].ejections = 1
	f.health[1].mu.Unlock()
	// Deterministic latency samples: 1ms x9, 10ms x1 — the histogram's
	// bucketing is pinned along with the text format.
	for i := 0; i < 9; i++ {
		f.queryHist.RecordDuration(time.Millisecond)
	}
	f.queryHist.RecordDuration(10 * time.Millisecond)
	return f
}

func TestWriteMetricsGolden(t *testing.T) {
	f := plantedFrontend()
	var buf bytes.Buffer
	if err := f.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("metrics drifted from golden (run with -update if intended)\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestServeMetricsHTTP(t *testing.T) {
	f := plantedFrontend()
	addr, shutdown, err := f.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown() //nolint:errcheck
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(body, []byte("persephone_frontend_queries_total 100")) {
		t.Fatalf("metrics body missing planted counter:\n%s", body)
	}
	hz, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", hz.StatusCode)
	}
}
