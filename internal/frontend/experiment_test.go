package frontend

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fanout"
	"repro/internal/faults"
	"repro/internal/loadgen"
	"repro/internal/policy"
	"repro/internal/rng"
	"repro/internal/workload"
)

// The live fan-out experiment (EXPERIMENTS.md "Live fan-out tier"):
// the same two-class mix served through 1–4 real backends behind the
// frontend, measured with the open-loop client, next to the
// internal/fanout discrete-event prediction; then hedging on/off with
// one backend stalled through the chaos injector. Skipped under
// -short — these runs sleep real wall-clock seconds.

// Services are sleep-scale (>= 1ms) so time.Sleep granularity does
// not swamp the shape.
const (
	expShort = time.Millisecond
	expLong  = 10 * time.Millisecond
)

func expMix() workload.Mix {
	return workload.Mix{
		Name: "frontend-bimodal",
		Types: []workload.TypeSpec{
			{Name: "short", Ratio: 0.95, Service: rng.Fixed(expShort)},
			{Name: "long", Ratio: 0.05, Service: rng.Fixed(expLong)},
		},
	}
}

// startExpBackends launches n identical 2-worker backends serving the
// experiment mix by sleeping.
func startExpBackends(t *testing.T, n int, prof *faults.Profile) []string {
	t.Helper()
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		var p *faults.Profile
		if i == 0 {
			p = prof // fault profile, if any, goes to backend 0
		}
		_, us := newBackend(t, 2, &sleepHandler{serviceByType: []time.Duration{expShort, expLong}}, p)
		addrs = append(addrs, us.Addr().String())
	}
	return addrs
}

func runLiveFanout(t *testing.T, backends, fanOut int, hedge bool, prof *faults.Profile, rate float64, duration time.Duration) (*loadgen.Result, Stats) {
	t.Helper()
	addrs := startExpBackends(t, backends, prof)
	fe, err := Listen("127.0.0.1:0", Config{
		Backends:      addrs,
		FanOut:        fanOut,
		QueryTimeout:  time.Second,
		Hedge:         hedge,
		HedgeAfterMin: 4 * expShort,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := loadgen.RunUDP(fe.Addr().String(), loadgen.Config{
		Mix:      expMix(),
		Rate:     rate,
		Duration: duration,
		Seed:     42,
		Timeout:  3 * time.Second,
		Frontend: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}
	return res, fe.Stats()
}

func TestLiveFanoutExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock experiment; skipped in -short")
	}
	duration := 3 * time.Second
	// Mean service 1.45ms on 2 workers -> ~1379 rps capacity per
	// backend; target ~35% sub-request load per backend.
	const perBackendRate = 480.0

	t.Run("scaling", func(t *testing.T) {
		for _, n := range []int{1, 2, 3, 4} {
			k := min(n, 2)
			rate := perBackendRate * float64(n) / float64(k)
			res, st := runLiveFanout(t, n, k, false, nil, rate, duration)
			if res.Received == 0 {
				t.Fatalf("n=%d: no responses", n)
			}
			if un := st.SubUnaccounted(); un != 0 {
				t.Fatalf("n=%d: conservation violated, unaccounted=%d (%+v)", n, un, st)
			}
			if st.Strays != 0 {
				t.Errorf("n=%d: %d stray replies in a no-fault run", n, st.Strays)
			}

			sim, err := fanout.Run(fanout.Config{
				Backends:          n,
				FanOut:            k,
				WorkersPerBackend: 2,
				Mix:               expMix(),
				ShardLoad:         0.35,
				Duration:          duration,
				WarmupFraction:    0.1,
				Seed:              42,
				NewPolicy:         func() cluster.Policy { return policy.NewCFCFS(4096) },
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("n=%d k=%d rate=%.0f | live: queries=%d p50=%v p99=%v p999=%v | sim: queries=%d p50=%v p99=%v p999=%v",
				n, k, rate,
				res.Received, res.Overall.QuantileDuration(0.50), res.Overall.QuantileDuration(0.99), res.Overall.QuantileDuration(0.999),
				sim.Queries, sim.QueryLatency.QuantileDuration(0.50), sim.QueryLatency.QuantileDuration(0.99), sim.QueryLatency.QuantileDuration(0.999))

			// Loose shape check against the simulator: both agree a
			// query cannot beat one short service time, and the live
			// median stays within sleep-granularity slack of the sim's.
			if p50 := res.Overall.QuantileDuration(0.50); p50 < expShort {
				t.Errorf("n=%d: live p50 %v below the service floor %v", n, p50, expShort)
			}
		}
	})

	t.Run("hedging", func(t *testing.T) {
		// One of two backends stalls worker 0 on every request through
		// the chaos injector; fan-out 1 so half the queries land on it.
		// The stall is sized well above this host's scheduler noise
		// (single-CPU containers add a multi-ms latency floor to every
		// goroutine handoff) so the hedging effect is unambiguous.
		const stall = 200 * time.Millisecond
		prof := &faults.Profile{Seed: 7, StallWorker: 0, StallDuration: stall}
		rate := perBackendRate
		off, offSt := runLiveFanout(t, 2, 1, false, prof, rate, duration)
		on, onSt := runLiveFanout(t, 2, 1, true, prof, rate, duration)
		t.Logf("hedging off: p50=%v p99=%v p999=%v hedges=%d",
			off.Overall.QuantileDuration(0.50), off.Overall.QuantileDuration(0.99), off.Overall.QuantileDuration(0.999), offSt.Hedges)
		t.Logf("hedging on:  p50=%v p99=%v p999=%v hedges=%d wins=%d hedged-queries=%d",
			on.Overall.QuantileDuration(0.50), on.Overall.QuantileDuration(0.99), on.Overall.QuantileDuration(0.999), onSt.Hedges, onSt.HedgeWins, on.Hedged)
		if offSt.Hedges != 0 {
			t.Fatalf("hedging-off run issued %d hedges", offSt.Hedges)
		}
		if onSt.Hedges == 0 || onSt.HedgeWins == 0 {
			t.Fatalf("hedging-on run: hedges=%d wins=%d", onSt.Hedges, onSt.HedgeWins)
		}
		offP999 := off.Overall.QuantileDuration(0.999)
		onP999 := on.Overall.QuantileDuration(0.999)
		// The stalled worker pins the hedging-off tail at >= the stall;
		// hedges must pull the p99.9 measurably below it.
		if offP999 < stall {
			t.Fatalf("hedging-off p99.9 %v below the injected %v stall — experiment not exercising the fault", offP999, stall)
		}
		if onP999 >= offP999/2 {
			t.Fatalf("hedging did not measurably improve p99.9: on=%v off=%v", onP999, offP999)
		}
	})
}
