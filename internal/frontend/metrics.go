package frontend

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"
)

// WriteMetrics renders the frontend's query-level counters, latency
// quantiles, and per-backend health gauges in the Prometheus text
// exposition format. The output shape is golden-pinned by the metrics
// test — add new series at the end.
func (f *Frontend) WriteMetrics(w io.Writer) error {
	st := f.Stats()
	var b strings.Builder
	b.WriteString("# HELP persephone_frontend_queries_total Client queries accepted for fan-out.\n")
	b.WriteString("# TYPE persephone_frontend_queries_total counter\n")
	fmt.Fprintf(&b, "persephone_frontend_queries_total %d\n", st.Queries)
	b.WriteString("# HELP persephone_frontend_queries_ok_total Queries answered with every shard settled.\n")
	b.WriteString("# TYPE persephone_frontend_queries_ok_total counter\n")
	fmt.Fprintf(&b, "persephone_frontend_queries_ok_total %d\n", st.QueriesOK)
	b.WriteString("# HELP persephone_frontend_queries_failed_total Queries answered with an error after a shard deadline.\n")
	b.WriteString("# TYPE persephone_frontend_queries_failed_total counter\n")
	fmt.Fprintf(&b, "persephone_frontend_queries_failed_total %d\n", st.QueriesFailed)
	b.WriteString("# HELP persephone_frontend_queries_shed_total Queries rejected at intake (buffer pool exhausted or no healthy backend).\n")
	b.WriteString("# TYPE persephone_frontend_queries_shed_total counter\n")
	fmt.Fprintf(&b, "persephone_frontend_queries_shed_total %d\n", st.QueriesShed)

	b.WriteString("# HELP persephone_frontend_subrequests_total Sub-request transmissions by outcome (issued = replied + duplicate + timeout + nacked + pending).\n")
	b.WriteString("# TYPE persephone_frontend_subrequests_total counter\n")
	fmt.Fprintf(&b, "persephone_frontend_subrequests_total{outcome=\"issued\"} %d\n", st.SubIssued)
	fmt.Fprintf(&b, "persephone_frontend_subrequests_total{outcome=\"replied\"} %d\n", st.SubReplied)
	fmt.Fprintf(&b, "persephone_frontend_subrequests_total{outcome=\"duplicate\"} %d\n", st.SubDuplicate)
	fmt.Fprintf(&b, "persephone_frontend_subrequests_total{outcome=\"timeout\"} %d\n", st.SubTimedOut)
	fmt.Fprintf(&b, "persephone_frontend_subrequests_total{outcome=\"nacked\"} %d\n", st.SubNacked)
	b.WriteString("# HELP persephone_frontend_subrequests_pending Sub-requests currently awaiting a backend reply.\n")
	b.WriteString("# TYPE persephone_frontend_subrequests_pending gauge\n")
	fmt.Fprintf(&b, "persephone_frontend_subrequests_pending %d\n", st.Pending)
	b.WriteString("# HELP persephone_frontend_stray_replies_total Backend replies matching no pending sub-request.\n")
	b.WriteString("# TYPE persephone_frontend_stray_replies_total counter\n")
	fmt.Fprintf(&b, "persephone_frontend_stray_replies_total %d\n", st.Strays)

	b.WriteString("# HELP persephone_frontend_hedges_total Hedge transmissions issued for slow sub-requests.\n")
	b.WriteString("# TYPE persephone_frontend_hedges_total counter\n")
	fmt.Fprintf(&b, "persephone_frontend_hedges_total %d\n", st.Hedges)
	b.WriteString("# HELP persephone_frontend_hedge_wins_total Hedge transmissions whose reply settled the shard first.\n")
	b.WriteString("# TYPE persephone_frontend_hedge_wins_total counter\n")
	fmt.Fprintf(&b, "persephone_frontend_hedge_wins_total %d\n", st.HedgeWins)
	b.WriteString("# HELP persephone_frontend_ejections_total Backend health ejections (timeout streaks and crash events).\n")
	b.WriteString("# TYPE persephone_frontend_ejections_total counter\n")
	fmt.Fprintf(&b, "persephone_frontend_ejections_total %d\n", st.Ejections)

	if st.QueryCount > 0 {
		b.WriteString("# HELP persephone_frontend_query_latency_seconds Client-observed query latency quantiles (slowest-shard completion).\n")
		b.WriteString("# TYPE persephone_frontend_query_latency_seconds summary\n")
		fmt.Fprintf(&b, "persephone_frontend_query_latency_seconds{quantile=\"0.5\"} %g\n", st.QueryP50.Seconds())
		fmt.Fprintf(&b, "persephone_frontend_query_latency_seconds{quantile=\"0.99\"} %g\n", st.QueryP99.Seconds())
		fmt.Fprintf(&b, "persephone_frontend_query_latency_seconds{quantile=\"0.999\"} %g\n", st.QueryP999.Seconds())
		fmt.Fprintf(&b, "persephone_frontend_query_latency_seconds_count %d\n", st.QueryCount)
	}

	b.WriteString("# HELP persephone_frontend_backend_healthy Whether the backend currently receives sub-requests (1 healthy, 0 ejected).\n")
	b.WriteString("# TYPE persephone_frontend_backend_healthy gauge\n")
	now := time.Now()
	for i, h := range f.health {
		v := 0
		if h.healthy(now) {
			v = 1
		}
		fmt.Fprintf(&b, "persephone_frontend_backend_healthy{backend=\"%d\"} %d\n", i, v)
	}
	b.WriteString("# HELP persephone_frontend_backend_sent_total Sub-request transmissions per backend.\n")
	b.WriteString("# TYPE persephone_frontend_backend_sent_total counter\n")
	for i, bc := range f.backends {
		fmt.Fprintf(&b, "persephone_frontend_backend_sent_total{backend=\"%d\"} %d\n", i, bc.sent.Load())
	}
	b.WriteString("# HELP persephone_frontend_backend_replies_total Settling replies per backend.\n")
	b.WriteString("# TYPE persephone_frontend_backend_replies_total counter\n")
	for i, bc := range f.backends {
		fmt.Fprintf(&b, "persephone_frontend_backend_replies_total{backend=\"%d\"} %d\n", i, bc.replies.Load())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ServeMetrics exposes /metrics (and /healthz) on addr, returning the
// bound address and a shutdown function. Fresh mux, no global handler
// registration — same contract as the backend's psp.ServeMetrics.
func (f *Frontend) ServeMetrics(addr string) (bound string, shutdown func() error, err error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		f.WriteMetrics(w) //nolint:errcheck
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if f.closed.Load() {
			http.Error(w, "stopped", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	go srv.Serve(ln) //nolint:errcheck
	return ln.Addr().String(), srv.Close, nil
}
