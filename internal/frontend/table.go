package frontend

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/spsc"
)

// The correlation table is the frontend's bookkeeping core: one
// pending table per backend mapping sub-request IDs to their query
// slot, plus per-query slot state. It is pure state-machine logic —
// no sockets, no timers — so its invariants (every issued sub-request
// is accounted exactly once as replied, duplicate or timed out; every
// query finishes exactly once) are fuzzable in isolation.

// slotState tracks one of a query's k shards.
type slotState struct {
	// settled flips when the first reply for the slot arrives
	// (first-reply-wins); later replies are suppressed as duplicates.
	settled bool
	// hedged marks that a hedge has been issued (or is being issued)
	// for the slot, so a slot is hedged at most once.
	hedged bool
	// outstanding counts transmissions (primary + hedge) still in a
	// pending table.
	outstanding int
	// primary is the backend serving the original sub-request.
	primary int
}

// query is one client fan-out request in flight.
type query struct {
	id     uint64
	reqID  uint64 // client's RequestID, echoed on the response
	typeID uint16
	from   *net.UDPAddr

	start    time.Time
	deadline time.Time

	// payload aliases buf's data; hedgeScan copies it under mu before
	// use so the buffer may be reused for the response afterwards.
	payload []byte
	// buf is the pooled ingress buffer backing payload; it is reused
	// for the egress response frame and released when the query
	// finishes (the zero-copy path).
	buf *spsc.Buffer

	mu        sync.Mutex
	slots     []slotState
	unsettled int
	hedges    int
	finished  bool
	failed    bool // at least one slot expired unanswered
}

// sub is one pending sub-request transmission.
type sub struct {
	q       *query
	slot    int
	backend int
	attempt uint8 // 0 primary, 1 hedge
	sentAt  time.Time
}

// backendTable is one backend's pending-reply table.
type backendTable struct {
	mu      sync.Mutex
	pending map[uint64]*sub
}

// correlator owns the per-backend pending tables and the sub-request
// accounting. Counters satisfy, at any quiescent point,
//
//	issued == replied + duplicate + timedOut + nacked + len(all pending)
//
// so after a full drain issued == replied + duplicate + timedOut +
// nacked — the sub-request conservation invariant.
type correlator struct {
	tables    []*backendTable
	nextSub   atomic.Uint64
	nextQuery atomic.Uint64

	issued    atomic.Uint64
	replied   atomic.Uint64 // settling replies (first reply for a slot)
	duplicate atomic.Uint64 // suppressed replies: hedge losers, post-timeout stragglers
	timedOut  atomic.Uint64 // pending entries reaped past their query deadline
	nacked    atomic.Uint64 // transmissions the backend refused with an admission NACK
	strays    atomic.Uint64 // replies matching no pending entry
}

func newCorrelator(backends int) *correlator {
	c := &correlator{tables: make([]*backendTable, backends)}
	for i := range c.tables {
		c.tables[i] = &backendTable{pending: make(map[uint64]*sub)}
	}
	return c
}

// newQuery registers a client query with k shard slots.
func (c *correlator) newQuery(reqID uint64, typeID uint16, from *net.UDPAddr, payload []byte, k int, now, deadline time.Time) *query {
	return &query{
		id:        c.nextQuery.Add(1),
		reqID:     reqID,
		typeID:    typeID,
		from:      from,
		payload:   payload,
		start:     now,
		deadline:  deadline,
		slots:     make([]slotState, k),
		unsettled: k,
	}
}

// issue registers one transmission of q's slot on backend b and
// returns its sub-request ID (the wire RequestID).
func (c *correlator) issue(q *query, slot, backend int, attempt uint8, now time.Time) uint64 {
	id := c.nextSub.Add(1)
	sb := &sub{q: q, slot: slot, backend: backend, attempt: attempt, sentAt: now}
	q.mu.Lock()
	q.slots[slot].outstanding++
	if attempt == 0 {
		q.slots[slot].primary = backend
	} else {
		q.hedges++
	}
	q.mu.Unlock()
	bt := c.tables[backend]
	bt.mu.Lock()
	bt.pending[id] = sb
	bt.mu.Unlock()
	c.issued.Add(1)
	return id
}

// replyKind classifies what a backend reply meant.
type replyKind int

const (
	// replyStray matched no pending entry (already reaped, or bogus).
	replyStray replyKind = iota
	// replySettled was the first reply for its slot.
	replySettled
	// replyDuplicate was suppressed: its slot was already settled (a
	// hedge pair's loser) or its query already finished.
	replyDuplicate
)

// replyEvent reports the outcome of one backend reply.
type replyEvent struct {
	kind    replyKind
	sub     *sub
	latency time.Duration // send-to-reply for this transmission
	// queryDone is true when this reply settled the query's last open
	// slot — the reply carrying the slowest shard.
	queryDone bool
}

// reply resolves a backend's response to sub-request id. It removes
// the pending entry, settles the slot on first reply, and reports
// whether the whole query just completed.
func (c *correlator) reply(backend int, id uint64, now time.Time) replyEvent {
	if backend < 0 || backend >= len(c.tables) {
		c.strays.Add(1)
		return replyEvent{kind: replyStray}
	}
	bt := c.tables[backend]
	bt.mu.Lock()
	sb, ok := bt.pending[id]
	if ok {
		delete(bt.pending, id)
	}
	bt.mu.Unlock()
	if !ok {
		c.strays.Add(1)
		return replyEvent{kind: replyStray}
	}
	ev := replyEvent{sub: sb, latency: now.Sub(sb.sentAt)}
	q := sb.q
	q.mu.Lock()
	sl := &q.slots[sb.slot]
	sl.outstanding--
	if sl.settled || q.finished {
		q.mu.Unlock()
		c.duplicate.Add(1)
		ev.kind = replyDuplicate
		return ev
	}
	sl.settled = true
	q.unsettled--
	if q.unsettled == 0 {
		q.finished = true
		ev.queryDone = true
	}
	q.mu.Unlock()
	c.replied.Add(1)
	ev.kind = replySettled
	return ev
}

// nackEvent reports what a backend admission NACK resolved to.
type nackEvent struct {
	// stray is true when the NACK matched no pending entry.
	stray bool
	// hedge, when non-nil, tells the caller to re-issue the slot to a
	// spare backend immediately: the slot is open and was not yet
	// hedged, and has been marked hedged (so it re-issues at most
	// once). If no spare exists the caller must failSlot, or the slot
	// — with no pending transmission left — would hang until the
	// query deadline with nothing for the reaper to expire.
	hedge *hedgeOrder
	// finished, when non-nil, is the query this NACK just failed: the
	// slot's last transmission was refused and no re-issue is allowed.
	finished *query
}

// nack resolves an admission NACK for sub-request id from backend:
// the backend has refused the transmission, so the pending entry is
// removed (it will never be answered) and counted as nacked. Unlike
// reply, a NACK never settles a slot; it either triggers an immediate
// hedge (the overload analogue of the slow-request hedge) or, when the
// slot already used its hedge, fails the slot the way a reap would.
func (c *correlator) nack(backend int, id uint64) nackEvent {
	if backend < 0 || backend >= len(c.tables) {
		c.strays.Add(1)
		return nackEvent{stray: true}
	}
	bt := c.tables[backend]
	bt.mu.Lock()
	sb, ok := bt.pending[id]
	if ok {
		delete(bt.pending, id)
	}
	bt.mu.Unlock()
	if !ok {
		c.strays.Add(1)
		return nackEvent{stray: true}
	}
	c.nacked.Add(1)
	q := sb.q
	q.mu.Lock()
	sl := &q.slots[sb.slot]
	sl.outstanding--
	if sl.settled || q.finished {
		// The slot no longer needs this transmission (a hedge pair's
		// other leg settled it); the NACK is fully accounted already.
		q.mu.Unlock()
		return nackEvent{}
	}
	if !sl.hedged {
		sl.hedged = true
		assigned := make([]int, 0, len(q.slots))
		for i := range q.slots {
			if q.slots[i].outstanding > 0 || q.slots[i].settled {
				assigned = append(assigned, q.slots[i].primary)
			}
		}
		payload := append([]byte(nil), q.payload...)
		q.mu.Unlock()
		return nackEvent{hedge: &hedgeOrder{q: q, slot: sb.slot, primary: sb.backend, assigned: assigned, payload: payload}}
	}
	if sl.outstanding == 0 {
		// Both legs refused or expired: the slot fails, and with it
		// possibly the query.
		q.unsettled--
		q.failed = true
		if q.unsettled == 0 {
			q.finished = true
			q.mu.Unlock()
			return nackEvent{finished: q}
		}
	}
	q.mu.Unlock()
	return nackEvent{}
}

// failSlot marks a slot with no outstanding transmissions as failed —
// the no-spare-backend fallback after a NACK-triggered hedge could not
// be placed. Returns the query when this slot's failure finished it.
func (c *correlator) failSlot(q *query, slot int) *query {
	q.mu.Lock()
	defer q.mu.Unlock()
	sl := &q.slots[slot]
	if sl.settled || q.finished || sl.outstanding > 0 {
		return nil
	}
	q.unsettled--
	q.failed = true
	if q.unsettled == 0 {
		q.finished = true
		return q
	}
	return nil
}

// reap removes every pending sub-request whose query deadline has
// passed, counting each as timed out, and returns the expired subs
// plus the queries that just finished (failed) because their last
// open slot lost its final transmission.
func (c *correlator) reap(now time.Time) (expired []*sub, finished []*query) {
	for _, bt := range c.tables {
		bt.mu.Lock()
		for id, sb := range bt.pending {
			if now.After(sb.q.deadline) {
				delete(bt.pending, id)
				expired = append(expired, sb)
			}
		}
		bt.mu.Unlock()
	}
	for _, sb := range expired {
		c.timedOut.Add(1)
		q := sb.q
		q.mu.Lock()
		sl := &q.slots[sb.slot]
		sl.outstanding--
		if !sl.settled && sl.outstanding == 0 && !q.finished {
			// The slot's last transmission expired unanswered: the
			// slot fails, and with it possibly the query.
			q.unsettled--
			q.failed = true
			if q.unsettled == 0 {
				q.finished = true
				finished = append(finished, q)
			}
		}
		q.mu.Unlock()
	}
	return expired, finished
}

// hedgeOrder describes one hedge the frontend should issue.
type hedgeOrder struct {
	q    *query
	slot int
	// primary is the backend whose slow sub-request triggered the
	// hedge; the spare must differ from it.
	primary int
	// assigned lists backends already serving any slot of the query,
	// so the spare picker can prefer an out-of-set backend.
	assigned []int
	// payload is a copy safe to encode after the query finishes.
	payload []byte
}

// hedgeScan finds primary sub-requests that have been outstanding
// longer than their backend's hedge delay and whose slot is neither
// settled nor already hedged. It marks each such slot hedged (so a
// slot hedges at most once) and returns the orders; the caller issues
// and transmits them.
func (c *correlator) hedgeScan(now time.Time, delayFor func(backend int) time.Duration) []hedgeOrder {
	var orders []hedgeOrder
	for b, bt := range c.tables {
		d := delayFor(b)
		if d <= 0 {
			continue
		}
		var candidates []*sub
		bt.mu.Lock()
		for _, sb := range bt.pending {
			if sb.attempt == 0 && now.Sub(sb.sentAt) > d {
				candidates = append(candidates, sb)
			}
		}
		bt.mu.Unlock()
		for _, sb := range candidates {
			q := sb.q
			q.mu.Lock()
			sl := &q.slots[sb.slot]
			if sl.settled || sl.hedged || q.finished {
				q.mu.Unlock()
				continue
			}
			sl.hedged = true
			assigned := make([]int, 0, len(q.slots))
			for i := range q.slots {
				if q.slots[i].outstanding > 0 || q.slots[i].settled {
					assigned = append(assigned, q.slots[i].primary)
				}
			}
			payload := append([]byte(nil), q.payload...)
			q.mu.Unlock()
			orders = append(orders, hedgeOrder{q: q, slot: sb.slot, primary: sb.backend, assigned: assigned, payload: payload})
		}
	}
	return orders
}

// cancelHedge unmarks a slot the frontend could not find a spare
// backend for, so a later scan may retry.
func (c *correlator) cancelHedge(q *query, slot int) {
	q.mu.Lock()
	q.slots[slot].hedged = false
	q.mu.Unlock()
}

// pendingCount reports outstanding sub-requests across all tables.
func (c *correlator) pendingCount() int {
	n := 0
	for _, bt := range c.tables {
		bt.mu.Lock()
		n += len(bt.pending)
		bt.mu.Unlock()
	}
	return n
}
