package frontend

import (
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/proto"
	"repro/internal/psp"
)

// newBackendTCP starts an in-process Perséphone backend listening on
// TCP and returns its address.
func newBackendTCP(t *testing.T, workers int, h psp.Handler) (*psp.Server, *psp.TCPServer) {
	t.Helper()
	srv, err := psp.NewServer(psp.Config{
		Workers:    workers,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler:    h,
		Mode:       psp.ModeCFCFS,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := psp.ListenTCP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ts.Close() })
	return srv, ts
}

// TestFrontendTCPBackends runs the fan-out integration over pipelined
// TCP backend lanes: every query's sub-requests ride the per-backend
// streams, replies come back out-of-order matched by request ID, and
// the conservation invariant holds exactly as it does on UDP.
func TestFrontendTCPBackends(t *testing.T) {
	h := &sleepHandler{serviceByType: []time.Duration{0, 0}}
	_, b0 := newBackendTCP(t, 2, h)
	_, b1 := newBackendTCP(t, 2, h)

	fe, err := Listen("127.0.0.1:0", Config{
		Network:  "tcp",
		Backends: []string{b0.Addr().String(), b1.Addr().String()},
		FanOut:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := newQueryClient(t, fe)
	const queries = 50
	for i := uint64(1); i <= queries; i++ {
		hdr, pl, corr, ok := cl.call(t, i, typedPayload(0, "fanout"), 2*time.Second)
		if hdr.Status != proto.StatusOK {
			t.Fatalf("query %d status = %v", i, hdr.Status)
		}
		if string(pl) != string(typedPayload(0, "fanout")) {
			t.Fatalf("query %d payload = %q", i, pl)
		}
		if !ok {
			t.Fatalf("query %d response missing correlation trailer", i)
		}
		if corr.Shard != 2 {
			t.Fatalf("query %d fan-out degree = %d, want 2", i, corr.Shard)
		}
	}
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}
	st := fe.Stats()
	if st.Queries != queries || st.QueriesOK != queries {
		t.Fatalf("queries=%d ok=%d, want %d/%d", st.Queries, st.QueriesOK, queries, queries)
	}
	if st.SubIssued != 2*queries || st.SubReplied != 2*queries {
		t.Fatalf("issued=%d replied=%d, want %d each", st.SubIssued, st.SubReplied, 2*queries)
	}
	if st.Strays != 0 {
		t.Fatalf("strays = %d", st.Strays)
	}
	assertConservation(t, st)
	// Both backends served sub-requests.
	if b0.Received() == 0 || b1.Received() == 0 {
		t.Fatalf("backend rx split = %d/%d", b0.Received(), b1.Received())
	}
}

// TestFrontendTCPBackendDeath kills one TCP backend mid-run: its
// sub-requests must surface as timeouts (never unaccounted), health
// ejection must route follow-up queries to the survivor, and the
// conservation invariant must survive the broken stream.
func TestFrontendTCPBackendDeath(t *testing.T) {
	h := &sleepHandler{serviceByType: []time.Duration{0, 0}}
	_, b0 := newBackendTCP(t, 1, h)
	_, b1 := newBackendTCP(t, 1, h)

	fe, err := Listen("127.0.0.1:0", Config{
		Network:       "tcp",
		Backends:      []string{b0.Addr().String(), b1.Addr().String()},
		FanOut:        1,
		QueryTimeout:  100 * time.Millisecond,
		EjectAfter:    1,
		EjectCooldown: 10 * time.Second, // stays ejected for the whole test
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := newQueryClient(t, fe)
	// Warm both lanes.
	for i := uint64(1); i <= 4; i++ {
		cl.call(t, i, typedPayload(0, "warm"), 2*time.Second)
	}
	b0.Close() // backend 0 is gone; its stream EOFs

	// Every query still gets an answer: either the survivor serves it,
	// or the dead lane's sub-request times out and the client sees an
	// explicit error response. After at most one timeout streak the
	// dead backend is ejected and everything lands on the survivor.
	okAfter := 0
	for i := uint64(10); i < 30; i++ {
		hdr, _, _, _ := cl.call(t, i, typedPayload(0, "after"), 2*time.Second)
		if hdr.Status == proto.StatusOK {
			okAfter++
		}
	}
	if okAfter == 0 {
		t.Fatal("no query succeeded after backend death; ejection never routed around the dead lane")
	}
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}
	st := fe.Stats()
	if st.SubTimedOut == 0 {
		t.Fatalf("no sub-request timed out despite a dead backend: %+v", st)
	}
	assertConservation(t, st)
}
