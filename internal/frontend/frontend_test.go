package frontend

import (
	"encoding/binary"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/classify"
	"repro/internal/faults"
	"repro/internal/proto"
	"repro/internal/psp"
)

// sleepHandler echoes the payload after a per-type sleep (sleep, not
// spin, so a stalled single-worker backend serializes without burning
// the test host's CPU).
type sleepHandler struct {
	serviceByType []time.Duration
	extra         atomic.Int64 // added to every request, settable mid-test
}

func (h *sleepHandler) Handle(typ int, payload []byte, resp []byte) (int, proto.Status) {
	d := time.Duration(h.extra.Load())
	if typ >= 0 && typ < len(h.serviceByType) {
		d += h.serviceByType[typ]
	}
	if d > 0 {
		time.Sleep(d)
	}
	n := copy(resp, payload)
	return n, proto.StatusOK
}

// newBackend starts an in-process Perséphone backend and returns its
// UDP address.
func newBackend(t *testing.T, workers int, h psp.Handler, prof *faults.Profile) (*psp.Server, *psp.UDPServer) {
	t.Helper()
	srv, err := psp.NewServer(psp.Config{
		Workers:    workers,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler:    h,
		Mode:       psp.ModeCFCFS,
		Faults:     prof,
	})
	if err != nil {
		t.Fatal(err)
	}
	// ListenUDP starts the server; Stop is covered by us.Close.
	us, err := psp.ListenUDP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { us.Close() })
	return srv, us
}

// typedPayload builds a payload whose first two bytes carry the type.
func typedPayload(typ int, body string) []byte {
	p := make([]byte, 2+len(body))
	binary.LittleEndian.PutUint16(p, uint16(typ))
	copy(p[2:], body)
	return p
}

// queryClient is a blocking request/response client for the frontend.
type queryClient struct {
	conn *net.UDPConn
	buf  []byte
}

func newQueryClient(t *testing.T, fe *Frontend) *queryClient {
	t.Helper()
	conn, err := net.DialUDP("udp", nil, fe.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &queryClient{conn: conn, buf: make([]byte, 4096)}
}

// call sends one query and waits for its response, returning the
// header, payload, and correlation trailer.
func (c *queryClient) call(t *testing.T, reqID uint64, payload []byte, timeout time.Duration) (proto.Header, []byte, proto.Correlation, bool) {
	t.Helper()
	msg := proto.AppendMessage(nil, proto.Header{
		Kind: proto.KindRequest, TypeID: 0, RequestID: reqID,
	}, payload)
	if _, err := c.conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(timeout)
	for {
		c.conn.SetReadDeadline(deadline) //nolint:errcheck
		n, err := c.conn.Read(c.buf)
		if err != nil {
			t.Fatalf("no response for query %d: %v", reqID, err)
		}
		hdr, pl, perr := proto.DecodeHeader(c.buf[:n])
		if perr != nil {
			t.Fatalf("bad response frame: %v", perr)
		}
		if hdr.RequestID != reqID {
			continue // stale response from an earlier query
		}
		corr, ok := proto.DecodeCorrelation(c.buf[:n], hdr)
		return hdr, pl, corr, ok
	}
}

// assertConservation checks the sub-request invariant on a closed (or
// quiescent) frontend.
func assertConservation(t *testing.T, st Stats) {
	t.Helper()
	if un := st.SubUnaccounted(); un != 0 {
		t.Fatalf("sub-request conservation violated (unaccounted=%d): %+v", un, st)
	}
}

func TestFrontendFanOutIntegration(t *testing.T) {
	h := &sleepHandler{serviceByType: []time.Duration{0, 0}}
	_, b0 := newBackend(t, 2, h, nil)
	_, b1 := newBackend(t, 2, h, nil)

	fe, err := Listen("127.0.0.1:0", Config{
		Backends: []string{b0.Addr().String(), b1.Addr().String()},
		FanOut:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := newQueryClient(t, fe)
	const queries = 50
	for i := uint64(1); i <= queries; i++ {
		hdr, pl, corr, ok := cl.call(t, i, typedPayload(0, "fanout"), 2*time.Second)
		if hdr.Status != proto.StatusOK {
			t.Fatalf("query %d status = %v", i, hdr.Status)
		}
		if string(pl) != string(typedPayload(0, "fanout")) {
			t.Fatalf("query %d payload = %q", i, pl)
		}
		if !ok {
			t.Fatalf("query %d response missing correlation trailer", i)
		}
		if corr.Shard != 2 {
			t.Fatalf("query %d fan-out degree = %d, want 2", i, corr.Shard)
		}
	}
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}
	st := fe.Stats()
	if st.Queries != queries || st.QueriesOK != queries {
		t.Fatalf("queries=%d ok=%d, want %d/%d", st.Queries, st.QueriesOK, queries, queries)
	}
	if st.SubIssued != 2*queries || st.SubReplied != 2*queries {
		t.Fatalf("issued=%d replied=%d, want %d each", st.SubIssued, st.SubReplied, 2*queries)
	}
	if st.Strays != 0 {
		t.Fatalf("strays = %d", st.Strays)
	}
	assertConservation(t, st)
	// Both backends served sub-requests.
	if b0.Received() == 0 || b1.Received() == 0 {
		t.Fatalf("backend rx split = %d/%d", b0.Received(), b1.Received())
	}
}

func TestFrontendTimeoutAnswersClient(t *testing.T) {
	// A single backend whose every request outlives the query timeout:
	// the client must still get an (error) answer, and the reaped
	// sub-request must be accounted as a timeout.
	h := &sleepHandler{serviceByType: []time.Duration{300 * time.Millisecond, 0}}
	_, b0 := newBackend(t, 1, h, nil)
	fe, err := Listen("127.0.0.1:0", Config{
		Backends:     []string{b0.Addr().String()},
		FanOut:       1,
		QueryTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := newQueryClient(t, fe)
	hdr, _, _, _ := cl.call(t, 1, typedPayload(0, "slow"), 2*time.Second)
	if hdr.Status != proto.StatusError {
		t.Fatalf("status = %v, want StatusError", hdr.Status)
	}
	// Let the backend's eventual reply arrive and be counted a stray.
	time.Sleep(400 * time.Millisecond)
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}
	st := fe.Stats()
	if st.QueriesFailed != 1 || st.SubTimedOut != 1 {
		t.Fatalf("failed=%d timedOut=%d, want 1/1", st.QueriesFailed, st.SubTimedOut)
	}
	if st.Strays != 1 {
		t.Fatalf("strays = %d, want 1 (the late backend reply)", st.Strays)
	}
	assertConservation(t, st)
}

func TestFrontendHedgingCutsStalledBackend(t *testing.T) {
	// Backend 0 sleeps 80ms per request, backend 1 answers instantly.
	// With hedging on (floor 5ms), a query whose only shard lands on
	// the stalled backend is rescued by a hedge to the fast one.
	slow := &sleepHandler{serviceByType: []time.Duration{80 * time.Millisecond, 0}}
	fast := &sleepHandler{serviceByType: []time.Duration{0, 0}}
	_, b0 := newBackend(t, 1, slow, nil)
	_, b1 := newBackend(t, 2, fast, nil)

	fe, err := Listen("127.0.0.1:0", Config{
		Backends:      []string{b0.Addr().String(), b1.Addr().String()},
		FanOut:        1,
		QueryTimeout:  2 * time.Second,
		Hedge:         true,
		HedgeAfterMin: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := newQueryClient(t, fe)
	var rescued int
	for i := uint64(1); i <= 8; i++ {
		start := time.Now()
		hdr, _, corr, ok := cl.call(t, i, typedPayload(0, "h"), 4*time.Second)
		if hdr.Status != proto.StatusOK {
			t.Fatalf("query %d status = %v", i, hdr.Status)
		}
		if ok && corr.Attempt > 0 && time.Since(start) < 60*time.Millisecond {
			rescued++
		}
	}
	// Drain in-flight duplicates (the slow backend's primaries are
	// still cooking) before asserting conservation.
	time.Sleep(200 * time.Millisecond)
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}
	st := fe.Stats()
	if st.Hedges == 0 {
		t.Fatalf("no hedges issued: %+v", st)
	}
	if st.HedgeWins == 0 {
		t.Fatalf("no hedge wins: %+v", st)
	}
	if rescued == 0 {
		t.Fatal("no query visibly rescued by a hedge (Attempt>0 and fast)")
	}
	assertConservation(t, st)
}

func TestFrontendCrashEjection(t *testing.T) {
	// Backend 1 crashes its worker on the first request; the faults
	// crash hook feeds the frontend's health scorer, which must eject
	// it while backend 0 keeps answering.
	h0 := &sleepHandler{serviceByType: []time.Duration{0, 0}}
	h1 := &sleepHandler{serviceByType: []time.Duration{0, 0}}
	_, b0 := newBackend(t, 2, h0, nil)
	crashProf := &faults.Profile{Seed: 1, CrashRate: 1.0, RespawnDelay: 500 * time.Millisecond}
	s1, b1 := newBackend(t, 1, h1, crashProf)

	fe, err := Listen("127.0.0.1:0", Config{
		Backends:      []string{b0.Addr().String(), b1.Addr().String()},
		FanOut:        2,
		QueryTimeout:  150 * time.Millisecond,
		EjectCooldown: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	s1.Injector().SetCrashHook(func(int) { fe.NoteBackendCrash(1) })

	cl := newQueryClient(t, fe)
	// First query: shard on backend 1 dies with the worker (the crash
	// answers with a drop status or not at all); the hook ejects it.
	cl.call(t, 1, typedPayload(0, "boom"), 2*time.Second)
	deadline := time.Now().Add(2 * time.Second)
	for fe.BackendHealthy(1) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if fe.BackendHealthy(1) {
		t.Fatal("backend 1 not ejected after injected crash")
	}
	// Traffic continues on the surviving backend alone.
	for i := uint64(2); i <= 10; i++ {
		hdr, _, corr, ok := cl.call(t, i, typedPayload(0, "ok"), 2*time.Second)
		if hdr.Status != proto.StatusOK {
			t.Fatalf("query %d status = %v after ejection", i, hdr.Status)
		}
		if ok && corr.Shard != 1 {
			t.Fatalf("query %d fan-out degree = %d, want 1 (backend 1 ejected)", i, corr.Shard)
		}
	}
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}
	st := fe.Stats()
	if st.Ejections == 0 {
		t.Fatalf("no ejections recorded: %+v", st)
	}
	assertConservation(t, st)
}

// TestFrontendNackImmediateHedge: backend 0 sheds everything with
// admission NACKs, backend 1 is healthy. A NACKed primary must be
// re-issued to the spare immediately — even with latency hedging
// disabled — so every query still succeeds, and the NACK streak must
// eject the shedding backend like a timeout streak would.
func TestFrontendNackImmediateHedge(t *testing.T) {
	h := &sleepHandler{serviceByType: []time.Duration{0, 0}}
	shedSrv, err := psp.NewServer(psp.Config{
		Workers:    1,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler:    h,
		Mode:       psp.ModeCFCFS,
		Admission: &admission.Config{
			Budgets: []time.Duration{time.Nanosecond, time.Nanosecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	b0, err := psp.ListenUDP("127.0.0.1:0", shedSrv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b0.Close() })
	_, b1 := newBackend(t, 2, h, nil)

	fe, err := Listen("127.0.0.1:0", Config{
		Backends:      []string{b0.Addr().String(), b1.Addr().String()},
		FanOut:        1,
		QueryTimeout:  2 * time.Second,
		Hedge:         false, // NACK re-issue must not depend on latency hedging
		EjectCooldown: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := newQueryClient(t, fe)
	const queries = 20
	for i := uint64(1); i <= queries; i++ {
		hdr, pl, _, _ := cl.call(t, i, typedPayload(0, "nack"), 2*time.Second)
		if hdr.Status != proto.StatusOK {
			t.Fatalf("query %d status = %v", i, hdr.Status)
		}
		if string(pl) != string(typedPayload(0, "nack")) {
			t.Fatalf("query %d payload = %q", i, pl)
		}
	}
	// The round-robin put roughly half the early primaries on the
	// shedding backend; its NACK streak must have ejected it.
	if fe.BackendHealthy(0) {
		t.Fatal("shedding backend not ejected by NACK streak")
	}
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}
	st := fe.Stats()
	if st.QueriesOK != queries {
		t.Fatalf("ok=%d, want %d", st.QueriesOK, queries)
	}
	if st.SubNacked == 0 {
		t.Fatalf("no NACKs recorded: %+v", st)
	}
	// Every NACK found the healthy spare: one hedge per NACK, and the
	// hedge's reply settled the slot.
	if st.Hedges != st.SubNacked {
		t.Fatalf("hedges=%d nacked=%d, want equal", st.Hedges, st.SubNacked)
	}
	if st.HedgeWins != st.Hedges {
		t.Fatalf("hedge wins=%d of %d", st.HedgeWins, st.Hedges)
	}
	if st.Ejections == 0 {
		t.Fatalf("no ejection recorded: %+v", st)
	}
	assertConservation(t, st)
}

func TestFrontendShedsWithoutHealthyBackends(t *testing.T) {
	// Dial a port nobody answers on, eject it, and the frontend must
	// shed with StatusDropped rather than accept queries it cannot
	// route.
	dead, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	addr := dead.LocalAddr().String()
	dead.Close()

	fe, err := Listen("127.0.0.1:0", Config{
		Backends:      []string{addr},
		FanOut:        1,
		EjectCooldown: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	fe.NoteBackendCrash(0)

	cl := newQueryClient(t, fe)
	hdr, _, _, _ := cl.call(t, 1, typedPayload(0, "x"), 2*time.Second)
	if hdr.Status != proto.StatusDropped {
		t.Fatalf("status = %v, want StatusDropped", hdr.Status)
	}
	if st := fe.Stats(); st.QueriesShed != 1 || st.Queries != 0 {
		t.Fatalf("shed=%d queries=%d, want 1/0", st.QueriesShed, st.Queries)
	}
}

func TestFrontendConfigValidation(t *testing.T) {
	if _, err := Listen("127.0.0.1:0", Config{}); err == nil {
		t.Fatal("empty backend list accepted")
	}
	var c Config
	c.Backends = []string{"a", "b", "c"}
	c.FanOut = 99
	if err := c.fill(); err != nil {
		t.Fatal(err)
	}
	if c.FanOut != 3 {
		t.Fatalf("FanOut = %d, want clamped to 3", c.FanOut)
	}
	if c.QueryTimeout == 0 || c.Tick == 0 || c.PoolSize == 0 || c.EjectAfter == 0 {
		t.Fatalf("defaults not filled: %+v", c)
	}
}

// BenchmarkFrontendLoopback measures one query's full path over
// loopback: client -> frontend -> backend -> frontend -> client,
// closed loop.
func BenchmarkFrontendLoopback(b *testing.B) {
	h := &sleepHandler{serviceByType: []time.Duration{0, 0}}
	srv, err := psp.NewServer(psp.Config{
		Workers:    2,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler:    h,
		Mode:       psp.ModeCFCFS,
	})
	if err != nil {
		b.Fatal(err)
	}
	us, err := psp.ListenUDP("127.0.0.1:0", srv) // starts srv
	if err != nil {
		b.Fatal(err)
	}
	defer us.Close()

	fe, err := Listen("127.0.0.1:0", Config{
		Backends: []string{us.Addr().String()},
		FanOut:   1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer fe.Close()

	conn, err := net.DialUDP("udp", nil, fe.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	payload := typedPayload(0, "bench")
	buf := make([]byte, 4096)
	msg := make([]byte, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg = proto.AppendMessage(msg[:0], proto.Header{
			Kind: proto.KindRequest, RequestID: uint64(i) + 1,
		}, payload)
		if _, err := conn.Write(msg); err != nil {
			b.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
		if _, err := conn.Read(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFrontendEjectionCooldownReentry: ejection is a pause, not a
// removal. Once an ejected backend's cooldown passes it must rejoin
// the rotation — BackendHealthy flips back and fan-out returns to the
// full degree — and a crash during an existing ejection extends the
// cooldown without double-counting the ejection.
func TestFrontendEjectionCooldownReentry(t *testing.T) {
	h := &sleepHandler{serviceByType: []time.Duration{0, 0}}
	_, b0 := newBackend(t, 2, h, nil)
	_, b1 := newBackend(t, 2, h, nil)

	const cooldown = 250 * time.Millisecond
	fe, err := Listen("127.0.0.1:0", Config{
		Backends:      []string{b0.Addr().String(), b1.Addr().String()},
		FanOut:        2,
		QueryTimeout:  time.Second,
		EjectCooldown: cooldown,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := newQueryClient(t, fe)

	// Warm-up: both backends answer, full fan-out.
	hdr, _, corr, ok := cl.call(t, 1, typedPayload(0, "warm"), 2*time.Second)
	if hdr.Status != proto.StatusOK {
		t.Fatalf("warm query status = %v", hdr.Status)
	}
	if ok && corr.Shard != 2 {
		t.Fatalf("warm fan-out degree = %d, want 2", corr.Shard)
	}

	// Eject backend 1 via the crash-note path (the end-to-end injected
	// version is TestFrontendCrashEjection; here the recovery is the
	// subject).
	ejectedAt := time.Now()
	fe.NoteBackendCrash(1)
	if fe.BackendHealthy(1) {
		t.Fatal("backend 1 healthy immediately after crash note")
	}

	// Inside the cooldown window, queries ride backend 0 alone. Guard
	// on the clock so a slow test host cannot turn re-entry into a
	// false failure.
	for i := uint64(2); i <= 6; i++ {
		if time.Since(ejectedAt) > cooldown/2 {
			break
		}
		hdr, _, corr, ok := cl.call(t, i, typedPayload(0, "solo"), 2*time.Second)
		if hdr.Status != proto.StatusOK {
			t.Fatalf("query %d status = %v during cooldown", i, hdr.Status)
		}
		if ok && corr.Shard != 1 {
			t.Fatalf("query %d fan-out degree = %d during cooldown, want 1", i, corr.Shard)
		}
	}

	// Cooldown elapses: the backend must re-enter on its own — no
	// probe, no operator action.
	deadline := time.Now().Add(5 * time.Second)
	for !fe.BackendHealthy(1) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !fe.BackendHealthy(1) {
		t.Fatal("backend 1 never recovered after cooldown")
	}
	if waited := time.Since(ejectedAt); waited < cooldown {
		t.Fatalf("backend healthy after %v, before the %v cooldown elapsed", waited, cooldown)
	}

	// And it takes traffic again: some query fans out at full degree.
	sawFull := false
	for i := uint64(100); i < 140 && !sawFull; i++ {
		hdr, _, corr, ok := cl.call(t, i, typedPayload(0, "back"), 2*time.Second)
		if hdr.Status != proto.StatusOK {
			t.Fatalf("query %d status = %v after re-entry", i, hdr.Status)
		}
		sawFull = ok && corr.Shard == 2
	}
	if !sawFull {
		t.Fatal("fan-out never returned to 2 after cooldown re-entry")
	}

	// Re-ejection counts once; a crash while already ejected extends
	// the cooldown instead of inflating the ejection ledger.
	fe.NoteBackendCrash(1)
	fe.NoteBackendCrash(1)
	if fe.BackendHealthy(1) {
		t.Fatal("backend 1 healthy right after re-ejection")
	}

	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}
	st := fe.Stats()
	if st.Ejections != 2 {
		t.Fatalf("ejections = %d, want 2 (extension must not re-count)", st.Ejections)
	}
	assertConservation(t, st)
}
