package frontend

import (
	"sort"
	"sync"
	"time"
)

// health scores one backend. Reply latencies feed a sliding window
// whose p99 sets the hedge trigger delay (RepNet-style: hedge once a
// sub-request outlives what this backend normally takes); consecutive
// timeouts and crash events drive ejection, after which the backend
// receives no new sub-requests until a cooldown passes.
type health struct {
	mu sync.Mutex

	window []time.Duration // ring of recent reply latencies
	idx    int
	n      int

	consecTimeouts int
	ejectedUntil   time.Time
	ejections      uint64

	// cached p99, recomputed lazily when the window changes.
	p99Cache time.Duration
	dirty    bool
}

func newHealth(window int) *health {
	if window < 8 {
		window = 8
	}
	return &health{window: make([]time.Duration, window)}
}

// observe records a successful reply latency and clears the timeout
// streak.
func (h *health) observe(lat time.Duration) {
	h.mu.Lock()
	h.window[h.idx] = lat
	h.idx = (h.idx + 1) % len(h.window)
	if h.n < len(h.window) {
		h.n++
	}
	h.consecTimeouts = 0
	h.dirty = true
	h.mu.Unlock()
}

// timeout records an expired sub-request; ejectAfter consecutive
// timeouts eject the backend until now+cooldown. Reports whether this
// call ejected the backend.
func (h *health) timeout(now time.Time, ejectAfter int, cooldown time.Duration) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consecTimeouts++
	if h.consecTimeouts >= ejectAfter && now.After(h.ejectedUntil) {
		h.ejectedUntil = now.Add(cooldown)
		h.ejections++
		h.consecTimeouts = 0
		return true
	}
	return false
}

// crash ejects the backend immediately (an internal/faults crash
// event observed by a supervisor). Reports whether this call newly
// ejected it.
func (h *health) crash(now time.Time, cooldown time.Duration) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if now.After(h.ejectedUntil) {
		h.ejectedUntil = now.Add(cooldown)
		h.ejections++
		return true
	}
	// Already ejected: extend the cooldown.
	h.ejectedUntil = now.Add(cooldown)
	return false
}

// healthy reports whether the backend may receive new sub-requests.
// An ejected backend becomes eligible again once its cooldown passes
// (the next sub-request doubles as the recovery probe).
func (h *health) healthy(now time.Time) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return now.After(h.ejectedUntil)
}

// ejectionCount reports how many times the backend has been ejected.
func (h *health) ejectionCount() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ejections
}

// p99 reports the window's 99th-percentile reply latency, or 0 while
// fewer than 16 samples exist (callers fall back to the configured
// hedge floor).
func (h *health) p99() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n < 16 {
		return 0
	}
	if h.dirty {
		tmp := make([]time.Duration, h.n)
		copy(tmp, h.window[:h.n])
		sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
		h.p99Cache = tmp[(len(tmp)*99)/100]
		h.dirty = false
	}
	return h.p99Cache
}
