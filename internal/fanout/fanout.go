// Package fanout simulates the paper's §1 motivating deployment
// end-to-end: a frontend fans each user query out to k of n backend
// machines and answers when the slowest shard responds, so per-shard
// scheduling tails compound at the query level. Unlike the analytic
// ext-fanout experiment (independent shards), this simulation runs all
// backends on one virtual clock, capturing the correlation induced by
// shared arrival processes.
package fanout

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Config describes a fan-out simulation.
type Config struct {
	// Backends is the number of backend machines.
	Backends int
	// FanOut is how many distinct backends each query contacts.
	FanOut int
	// WorkersPerBackend sizes each backend machine.
	WorkersPerBackend int
	// Mix defines the per-shard traffic. Fan-out queries consist of
	// QueryType sub-requests (default: type 0, the short class — the
	// paper's user-facing RPCs); the mix's other types arrive at each
	// backend independently as background load (the long work sharing
	// the machines), preserving the mix's overall composition.
	Mix workload.Mix
	// QueryType is the type index queries fan out (default 0).
	QueryType int
	// ShardLoad is each backend's offered utilization from fan-out
	// traffic (0..1); the query rate is derived from it.
	ShardLoad float64
	// Duration is the simulated horizon; WarmupFraction of it is
	// discarded.
	Duration       time.Duration
	WarmupFraction float64
	// Seed drives arrivals and backend selection.
	Seed uint64
	// NewPolicy constructs one backend's scheduling policy.
	NewPolicy func() cluster.Policy
}

// Result summarises a fan-out run.
type Result struct {
	Queries       uint64
	SubRequests   uint64
	QueryLatency  metrics.Histogram // completion = slowest shard (ns)
	ShardLatency  metrics.Histogram // individual sub-request sojourns (ns)
	QueryRate     float64
	BackendBusy   []float64
	DroppedShards uint64
}

type query struct {
	arrival   sim.Time
	remaining int
	latest    sim.Time
	counted   bool
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	if cfg.Backends <= 0 || cfg.FanOut <= 0 || cfg.FanOut > cfg.Backends {
		return nil, fmt.Errorf("fanout: need 0 < FanOut <= Backends, got %d/%d", cfg.FanOut, cfg.Backends)
	}
	if cfg.WorkersPerBackend <= 0 || cfg.Duration <= 0 || cfg.NewPolicy == nil {
		return nil, fmt.Errorf("fanout: config needs workers, duration and a policy")
	}
	if err := cfg.Mix.Validate(); err != nil {
		return nil, err
	}
	if cfg.ShardLoad <= 0 || cfg.ShardLoad >= 1.5 {
		return nil, fmt.Errorf("fanout: shard load %g out of (0,1.5)", cfg.ShardLoad)
	}

	s := sim.New()
	r := rng.New(cfg.Seed)
	res := &Result{}
	warmup := time.Duration(float64(cfg.Duration) * cfg.WarmupFraction)

	// Backends share the clock; each has its own policy instance and
	// recorder-less machine (we track latencies at the frontend).
	machines := make([]*cluster.Machine, cfg.Backends)
	pending := make(map[*cluster.Request]*query, 1024)
	for b := 0; b < cfg.Backends; b++ {
		m := cluster.NewMachine(s, cfg.WorkersPerBackend, cfg.NewPolicy(), nil)
		m.OnComplete = func(req *cluster.Request, at sim.Time) {
			q, ok := pending[req]
			if !ok {
				return
			}
			delete(pending, req)
			if at > q.latest {
				q.latest = at
			}
			res.ShardLatency.RecordDuration(at - req.Arrival)
			q.remaining--
			if q.remaining == 0 && q.counted {
				res.QueryLatency.RecordDuration(q.latest - q.arrival)
				res.Queries++
			}
		}
		machines[b] = m
	}

	// Split the mix: QueryType arrives via fan-out queries, everything
	// else as independent per-backend background, preserving the
	// overall composition at ShardLoad utilization.
	qt := cfg.QueryType
	if qt < 0 || qt >= len(cfg.Mix.Types) {
		qt = 0
	}
	perBackendRate := cfg.ShardLoad * cfg.Mix.PeakLoad(cfg.WorkersPerBackend)
	queryTypeRatio := cfg.Mix.Types[qt].Ratio
	subRatePerBackend := perBackendRate * queryTypeRatio
	queryRate := subRatePerBackend * float64(cfg.Backends) / float64(cfg.FanOut)
	res.QueryRate = queryRate

	gapRNG := r.Split()
	svcRNG := r.Split()
	sel := r.Split()
	queryDist := cfg.Mix.Types[qt].Service

	var scheduleQuery func()
	scheduleQuery = func() {
		gap := time.Duration(gapRNG.Exp(1/queryRate) * float64(time.Second))
		s.After(gap, func() {
			now := s.Now()
			q := &query{arrival: now, remaining: cfg.FanOut, counted: now >= warmup}
			perm := sel.Perm(cfg.Backends)
			for i := 0; i < cfg.FanOut; i++ {
				m := machines[perm[i]]
				req := m.Arrive(qt, queryDist.Sample(svcRNG))
				pending[req] = q
			}
			scheduleQuery()
		})
	}
	scheduleQuery()

	// Background traffic: the mix's remaining types, per backend.
	if bgRatio := 1 - queryTypeRatio; bgRatio > 1e-9 && len(cfg.Mix.Types) > 1 {
		bgMix := workload.Mix{Name: cfg.Mix.Name + "-bg"}
		for i, t := range cfg.Mix.Types {
			if i == qt {
				continue
			}
			t.Ratio /= bgRatio
			bgMix.Types = append(bgMix.Types, t)
		}
		for b := 0; b < cfg.Backends; b++ {
			m := machines[b]
			src, err := workload.NewSource(bgMix, perBackendRate*bgRatio, r.Split())
			if err != nil {
				return nil, err
			}
			typeOf := make([]int, len(bgMix.Types))
			idx := 0
			for i := range cfg.Mix.Types {
				if i != qt {
					typeOf[idx] = i
					idx++
				}
			}
			var scheduleBG func()
			scheduleBG = func() {
				a := src.Next()
				s.After(a.Gap, func() {
					m.Arrive(typeOf[a.Type], a.Service)
					scheduleBG()
				})
			}
			scheduleBG()
		}
	}
	s.RunUntil(cfg.Duration)

	for _, m := range machines {
		res.SubRequests += m.Completed()
		res.DroppedShards += m.Dropped()
		res.BackendBusy = append(res.BackendBusy, m.Utilization())
	}
	return res, nil
}
