package fanout

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/darc"
	"repro/internal/policy"
	"repro/internal/workload"
)

func testConfig() Config {
	return Config{
		Backends:          4,
		FanOut:            2,
		WorkersPerBackend: 2,
		Mix:               workload.HighBimodal(),
		ShardLoad:         0.5,
		Duration:          100 * time.Millisecond,
		WarmupFraction:    0.1,
		Seed:              1,
		NewPolicy:         func() cluster.Policy { return policy.NewCFCFS(0) },
	}
}

func TestRunBasics(t *testing.T) {
	res, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 {
		t.Fatal("no queries completed")
	}
	if res.SubRequests < res.Queries*2 {
		t.Fatalf("sub-requests %d < 2x queries %d", res.SubRequests, res.Queries)
	}
	if res.QueryLatency.Count() != res.Queries {
		t.Fatalf("latency count %d vs queries %d", res.QueryLatency.Count(), res.Queries)
	}
	// The query latency distribution (max of shards) stochastically
	// dominates the shard distribution.
	if res.QueryLatency.Quantile(0.99) < res.ShardLatency.Quantile(0.99) {
		t.Fatal("query p99 below shard p99: max() inverted")
	}
	if len(res.BackendBusy) != 4 {
		t.Fatalf("backend busy entries %d", len(res.BackendBusy))
	}
	for i, b := range res.BackendBusy {
		if b <= 0 || b > 1 {
			t.Fatalf("backend %d utilization %g", i, b)
		}
	}
}

func TestValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Backends = 0 },
		func(c *Config) { c.FanOut = 0 },
		func(c *Config) { c.FanOut = 10 }, // > backends
		func(c *Config) { c.WorkersPerBackend = 0 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.NewPolicy = nil },
		func(c *Config) { c.ShardLoad = 0 },
		func(c *Config) { c.Mix = workload.Mix{} },
	}
	for i, mutate := range mutations {
		cfg := testConfig()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Queries != b.Queries || a.QueryLatency.Quantile(0.999) != b.QueryLatency.Quantile(0.999) {
		t.Fatal("fan-out simulation not deterministic")
	}
}

// TestDARCImprovesQueryTail is the substrate's headline property: with
// heavy-tailed shard work, DARC backends yield a far better query-level
// tail than c-FCFS backends under the same offered load.
func TestDARCImprovesQueryTail(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	base := testConfig()
	base.Backends = 4
	base.FanOut = 3
	base.WorkersPerBackend = 8
	base.ShardLoad = 0.8
	base.Duration = 300 * time.Millisecond

	run := func(newPolicy func() cluster.Policy) time.Duration {
		cfg := base
		cfg.NewPolicy = newPolicy
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.QueryLatency.QuantileDuration(0.99)
	}
	cfcfs := run(func() cluster.Policy { return policy.NewCFCFS(0) })
	darcP99 := run(func() cluster.Policy {
		cfg := darc.DefaultConfig(8)
		cfg.MinWindowSamples = 2000
		return policy.NewDARC(cfg, 2, 0)
	})
	if darcP99*2 > cfcfs {
		t.Fatalf("DARC query p99 %v not clearly better than c-FCFS %v", darcP99, cfcfs)
	}
}
