package policy

import "repro/internal/cluster"

// CFCFS is centralized first-come-first-served: a single queue feeds
// every worker, the discipline ZygOS and Shenango approximate with
// work stealing and the baseline Perséphone exposes before DARC's
// first reservation.
type CFCFS struct {
	m     *cluster.Machine
	queue cluster.FIFO
}

// NewCFCFS builds a c-FCFS policy. A queueCap of 0 applies
// DefaultQueueCap; negative means unbounded.
func NewCFCFS(queueCap int) *CFCFS {
	return &CFCFS{queue: cluster.FIFO{Cap: normalizeCap(queueCap)}}
}

// Name implements cluster.Policy.
func (p *CFCFS) Name() string { return "c-FCFS" }

// Traits implements TraitsProvider.
func (p *CFCFS) Traits() Traits {
	return Traits{AppAware: false, TypedQueues: false, WorkConserving: true, Preemptive: false}
}

// Init implements cluster.Policy.
func (p *CFCFS) Init(m *cluster.Machine) { p.m = m }

// Arrive implements cluster.Policy.
func (p *CFCFS) Arrive(r *cluster.Request) {
	for _, w := range p.m.Workers {
		if w.Idle() {
			p.m.Run(w, r)
			return
		}
	}
	pushOrDrop(p.m, &p.queue, r)
}

// WorkerFree implements cluster.Policy.
func (p *CFCFS) WorkerFree(w *cluster.Worker) {
	if r := p.queue.Pop(); r != nil {
		p.m.Run(w, r)
	}
}

// QueueLen reports the central backlog.
func (p *CFCFS) QueueLen() int { return p.queue.Len() }
