package policy

import (
	"testing"
	"time"
)

func TestEDFOrdersByDeadline(t *testing.T) {
	// Type 0: 1µs mean → 10µs relative deadline; type 1: 100µs → 1ms.
	p := NewEDF([]time.Duration{time.Microsecond, 100 * time.Microsecond}, 10, 0)
	h := newHarness(1, 2, p)
	h.at(0, 1, 50*time.Microsecond) // occupies the worker
	// Queue a long (deadline 1µs+1ms) then a short (deadline 2µs+10µs):
	// the short's deadline is earlier, it must run first.
	h.at(time.Microsecond, 1, 50*time.Microsecond)
	h.at(2*time.Microsecond, 0, time.Microsecond)
	h.s.Run()
	short := h.rec.Type(0).Latency.QuantileDuration(1)
	// Short runs right after the first long: ~49µs wait + 1µs.
	if short > 55*time.Microsecond {
		t.Fatalf("short latency %v: EDF order violated", short)
	}
}

func TestEDFPriorityInversion(t *testing.T) {
	// Equal relative deadlines turn EDF into FCFS: a short arriving
	// after a long waits behind it — the paper's "can lead to priority
	// inversion".
	p := NewEDF([]time.Duration{50 * time.Microsecond, 50 * time.Microsecond}, 1, 0)
	h := newHarness(1, 2, p)
	h.at(0, 1, 100*time.Microsecond)
	h.at(time.Microsecond, 1, 100*time.Microsecond)
	h.at(2*time.Microsecond, 0, time.Microsecond)
	h.s.Run()
	short := h.rec.Type(0).Latency.QuantileDuration(1)
	if short < 190*time.Microsecond {
		t.Fatalf("short latency %v: expected inversion behind both longs", short)
	}
}

func TestEDFDropsAtCapacity(t *testing.T) {
	p := NewEDF([]time.Duration{time.Microsecond}, 10, 2)
	h := newHarness(1, 1, p)
	for i := 0; i < 5; i++ {
		h.at(0, 0, 10*time.Microsecond)
	}
	h.s.Run()
	if h.m.Dropped() != 2 {
		t.Fatalf("dropped %d, want 2", h.m.Dropped())
	}
	if h.m.Completed() != 3 {
		t.Fatalf("completed %d", h.m.Completed())
	}
}

func TestDRRAlternatesQueues(t *testing.T) {
	p := NewDRR(2, 10*time.Microsecond, nil, 0)
	h := newHarness(1, 2, p)
	// Occupy the worker, then queue 3 requests of each type (10µs
	// each). DRR must interleave the two queues rather than drain one.
	h.at(0, 0, 10*time.Microsecond)
	for i := 0; i < 3; i++ {
		h.at(time.Microsecond, 0, 10*time.Microsecond)
		h.at(time.Microsecond, 1, 10*time.Microsecond)
	}
	h.s.Run()
	if h.m.Completed() != 7 {
		t.Fatalf("completed %d", h.m.Completed())
	}
	// Both types finish around the same time under fair sharing: their
	// p100 latencies are within ~2 service times of each other.
	a := h.rec.Type(0).Latency.QuantileDuration(1)
	b := h.rec.Type(1).Latency.QuantileDuration(1)
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	if diff > 25*time.Microsecond {
		t.Fatalf("unfair completion spread: %v vs %v", a, b)
	}
}

func TestDRRWeights(t *testing.T) {
	// Weight 3:1 — type 0 should get through its backlog much sooner.
	p := NewDRR(2, 10*time.Microsecond, []int{3, 1}, 0)
	h := newHarness(1, 2, p)
	h.at(0, 0, 10*time.Microsecond)
	for i := 0; i < 6; i++ {
		h.at(time.Microsecond, 0, 10*time.Microsecond)
		h.at(time.Microsecond, 1, 10*time.Microsecond)
	}
	h.s.Run()
	a := h.rec.Type(0).Latency.Mean()
	b := h.rec.Type(1).Latency.Mean()
	if a >= b {
		t.Fatalf("weighted type mean %.0f not faster than unweighted %.0f", a, b)
	}
}

func TestDRREmptyQueuesLoseCredit(t *testing.T) {
	p := NewDRR(2, 10*time.Microsecond, nil, 0)
	h := newHarness(1, 2, p)
	// Only type 1 traffic: type 0's deficit must not hoard.
	for i := 0; i < 5; i++ {
		h.at(time.Duration(i)*time.Microsecond, 1, 10*time.Microsecond)
	}
	h.s.Run()
	if h.m.Completed() != 5 {
		t.Fatalf("completed %d", h.m.Completed())
	}
}
