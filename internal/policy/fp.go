package policy

import (
	"sort"
	"time"

	"repro/internal/cluster"
)

// FixedPriority is non-preemptive fixed-priority scheduling over typed
// queues: queues are served in ascending (static) service-time order
// on any idle worker. It is work conserving, so short requests still
// suffer dispersion-based head-of-line blocking once all workers are
// occupied by long ones — the failure mode DARC's reservations remove.
// DARC-static with zero reserved cores degenerates to this policy.
type FixedPriority struct {
	m      *cluster.Machine
	queues []cluster.FIFO
	order  []int // type indexes in priority (ascending service) order
	cap    int
}

// NewFixedPriority builds the policy from the per-type mean service
// times (index = type ID); smaller means higher priority.
func NewFixedPriority(meanService []time.Duration, queueCap int) *FixedPriority {
	order := make([]int, len(meanService))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return meanService[order[a]] < meanService[order[b]]
	})
	return &FixedPriority{order: order, cap: normalizeCap(queueCap)}
}

// Name implements cluster.Policy.
func (p *FixedPriority) Name() string { return "fixed-priority" }

// Traits implements TraitsProvider.
func (p *FixedPriority) Traits() Traits {
	return Traits{AppAware: true, TypedQueues: true, WorkConserving: true, Preemptive: false}
}

// Init implements cluster.Policy.
func (p *FixedPriority) Init(m *cluster.Machine) {
	p.m = m
	p.queues = make([]cluster.FIFO, len(p.order))
	for i := range p.queues {
		p.queues[i].Cap = p.cap
	}
}

func (p *FixedPriority) clampType(t int) int {
	if t < 0 || t >= len(p.queues) {
		return len(p.queues) - 1
	}
	return t
}

// Arrive implements cluster.Policy.
func (p *FixedPriority) Arrive(r *cluster.Request) {
	for _, w := range p.m.Workers {
		if w.Idle() {
			p.m.Run(w, r)
			return
		}
	}
	pushOrDrop(p.m, &p.queues[p.clampType(r.Type)], r)
}

// WorkerFree implements cluster.Policy.
func (p *FixedPriority) WorkerFree(w *cluster.Worker) {
	for _, t := range p.order {
		if r := p.queues[t].Pop(); r != nil {
			p.m.Run(w, r)
			return
		}
	}
}
