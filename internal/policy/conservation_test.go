package policy

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/darc"
	"repro/internal/rng"
	"repro/internal/workload"
)

// allSpecs enumerates every policy under a small machine, for
// cross-policy invariant checks.
func allSpecs(workers, types int) []struct {
	name string
	mk   func(seed uint64) cluster.Policy
} {
	means := make([]time.Duration, types)
	for i := range means {
		means[i] = time.Duration(i+1) * 10 * time.Microsecond
	}
	mkDARC := func(noSteal bool) func(seed uint64) cluster.Policy {
		return func(seed uint64) cluster.Policy {
			cfg := darc.DefaultConfig(workers)
			cfg.MinWindowSamples = 200
			cfg.NoCycleStealing = noSteal
			return NewDARC(cfg, types, 0)
		}
	}
	return []struct {
		name string
		mk   func(seed uint64) cluster.Policy
	}{
		{"d-FCFS", func(s uint64) cluster.Policy { return NewDFCFS(rng.New(s), 0) }},
		{"c-FCFS", func(s uint64) cluster.Policy { return NewCFCFS(0) }},
		{"steal", func(s uint64) cluster.Policy { return NewWorkStealing(rng.New(s), 0, 100*time.Nanosecond) }},
		{"ts-sq", func(s uint64) cluster.Policy {
			return NewTSSingleQueue(TSConfig{Quantum: 5 * time.Microsecond, PreemptCost: time.Microsecond})
		}},
		{"ts-mq", func(s uint64) cluster.Policy {
			return NewTSMultiQueue(TSConfig{Quantum: 5 * time.Microsecond, PreemptCost: time.Microsecond}, types)
		}},
		{"ts-ideal", func(s uint64) cluster.Policy { return NewTSIdeal(time.Microsecond, time.Microsecond, 0) }},
		{"fp", func(s uint64) cluster.Policy { return NewFixedPriority(means, 0) }},
		{"sjf", func(s uint64) cluster.Policy { return NewSJF(0) }},
		{"edf", func(s uint64) cluster.Policy { return NewEDF(means, 10, 0) }},
		{"drr", func(s uint64) cluster.Policy { return NewDRR(types, 10*time.Microsecond, nil, 0) }},
		{"elastic", func(s uint64) cluster.Policy {
			cfg := darc.DefaultConfig(workers)
			cfg.MinWindowSamples = 200
			e := NewElasticDARC(cfg, types, 0)
			e.Min = 2
			e.Interval = 2 * time.Millisecond
			return e
		}},
		{"bottleneck", func(s uint64) cluster.Policy {
			return &IngressBottleneck{Inner: NewCFCFS(0), PerRequest: 200 * time.Nanosecond}
		}},
		{"darc", mkDARC(false)},
		{"darc-nosteal", mkDARC(true)},
		{"darc-static", func(s uint64) cluster.Policy { return NewDARCStatic(means, 1, 0) }},
		{"relabel", func(s uint64) cluster.Policy {
			cfg := darc.DefaultConfig(workers)
			cfg.MinWindowSamples = 200
			return &Relabel{Inner: NewDARC(cfg, types, 0), NumTypes: types, R: rng.New(s + 9)}
		}},
	}
}

// TestConservationAcrossPolicies drives every policy with the same
// overloaded arrival stream and checks the fundamental accounting
// invariant: arrived = completed + dropped + in-flight, with in-flight
// zero after the queues drain, and per-type slowdowns >= 1.
func TestConservationAcrossPolicies(t *testing.T) {
	const workers = 3
	const types = 3
	mix := workload.Mix{
		Name: "tri",
		Types: []workload.TypeSpec{
			{Name: "a", Ratio: 0.6, Service: rng.Fixed(5 * time.Microsecond)},
			{Name: "b", Ratio: 0.3, Service: rng.Fixed(50 * time.Microsecond)},
			{Name: "c", Ratio: 0.1, Service: rng.Fixed(200 * time.Microsecond)},
		},
	}
	for _, spec := range allSpecs(workers, types) {
		for _, load := range []float64{0.5, 0.95, 1.3} { // includes overload
			spec, load := spec, load
			t.Run(fmt.Sprintf("%s@%.2f", spec.name, load), func(t *testing.T) {
				res, err := cluster.Run(cluster.Config{
					Workers:        workers,
					Mix:            mix,
					LoadFraction:   load,
					Duration:       60 * time.Millisecond,
					WarmupFraction: 0.1,
					Seed:           99,
					NewPolicy:      func() cluster.Policy { return spec.mk(99) },
				})
				if err != nil {
					t.Fatal(err)
				}
				m := res.Machine
				if m.Arrived() == 0 {
					t.Fatal("no arrivals")
				}
				total := m.Completed() + m.Dropped() + m.InFlight()
				if total != m.Arrived() {
					t.Fatalf("conservation violated: arrived %d != completed %d + dropped %d + inflight %d",
						m.Arrived(), m.Completed(), m.Dropped(), m.InFlight())
				}
				// In-flight is bounded by queued work, which is bounded
				// by queue caps; it must be far below arrivals at 0.5
				// load.
				if load <= 0.5 && m.InFlight() > uint64(workers*2) {
					t.Fatalf("inflight %d at low load", m.InFlight())
				}
				// Slowdown can never be below 1 (sojourn >= service).
				for i := 0; i < types; i++ {
					ts := res.Recorder.Type(i)
					if ts.Completed == 0 {
						continue
					}
					if min := ts.Slowdown.Min(); min < 995 { // scale 1000, 0.5% slack for quantization
						t.Fatalf("type %d min slowdown %d < 1.0", i, min)
					}
				}
				// Utilization is a fraction.
				if u := m.Utilization(); u < 0 || u > 1.0001 {
					t.Fatalf("utilization %g", u)
				}
			})
		}
	}
}

// TestOverloadSheds checks that at 1.3x load every bounded-queue
// policy eventually drops (it must, to stay stable) — except oracle
// policies with unbounded behavior would violate this; all ours bound
// queues by default.
func TestOverloadSheds(t *testing.T) {
	mix := workload.Mix{
		Name: "uni",
		Types: []workload.TypeSpec{
			{Name: "only", Ratio: 1.0, Service: rng.Fixed(20 * time.Microsecond)},
		},
	}
	// Queue cap 64 makes shedding fast.
	specs := []struct {
		name string
		mk   func() cluster.Policy
	}{
		{"c-FCFS", func() cluster.Policy { return NewCFCFS(64) }},
		{"sjf", func() cluster.Policy { return NewSJF(64) }},
		{"fp", func() cluster.Policy { return NewFixedPriority([]time.Duration{20 * time.Microsecond}, 64) }},
	}
	for _, spec := range specs {
		t.Run(spec.name, func(t *testing.T) {
			res, err := cluster.Run(cluster.Config{
				Workers:        2,
				Mix:            mix,
				LoadFraction:   1.5,
				Duration:       100 * time.Millisecond,
				WarmupFraction: 0.1,
				Seed:           3,
				NewPolicy:      spec.mk,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Machine.Dropped() == 0 {
				t.Fatal("no drops under 1.5x overload with cap 64")
			}
			// The machine must stay saturated, not collapse.
			if u := res.Machine.Utilization(); u < 0.9 {
				t.Fatalf("utilization %g under overload", u)
			}
		})
	}
}
