package policy

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/rng"
	"repro/internal/workload"
)

func TestIngressBottleneckSerializes(t *testing.T) {
	p := &IngressBottleneck{
		Inner:      NewCFCFS(0),
		PerRequest: 10 * time.Microsecond,
	}
	h := newHarness(4, 1, p)
	// 4 requests at t=0: with a 10µs dispatcher stage they reach the
	// (idle) workers at 10/20/30/40µs even though all workers are free.
	for i := 0; i < 4; i++ {
		h.at(0, 0, time.Microsecond)
	}
	h.s.Run()
	if h.m.Completed() != 4 {
		t.Fatalf("completed %d", h.m.Completed())
	}
	// Last request: 40µs dispatch + 1µs service = 41µs sojourn.
	if got := h.rec.Type(0).Latency.QuantileDuration(1); got < 40*time.Microsecond || got > 43*time.Microsecond {
		t.Fatalf("max sojourn %v, want ~41µs", got)
	}
	if p.Deferred() != 3 {
		t.Fatalf("deferred %d, want 3", p.Deferred())
	}
}

func TestIngressBottleneckZeroCostPassThrough(t *testing.T) {
	p := &IngressBottleneck{Inner: NewCFCFS(0)}
	h := newHarness(1, 1, p)
	h.at(0, 0, time.Microsecond)
	h.s.Run()
	if got := h.rec.Type(0).Latency.QuantileDuration(1); got != time.Microsecond {
		t.Fatalf("pass-through latency %v", got)
	}
}

func TestIngressBottleneckDropsAtCapacity(t *testing.T) {
	p := &IngressBottleneck{
		Inner:      NewCFCFS(0),
		PerRequest: 100 * time.Microsecond,
		QueueCap:   2,
	}
	h := newHarness(1, 1, p)
	for i := 0; i < 6; i++ {
		h.at(0, 0, time.Microsecond)
	}
	h.s.Run()
	// One request is in dispatcher service, two wait (cap 2), three
	// are shed.
	if h.m.Dropped() != 3 {
		t.Fatalf("dropped %d, want 3 (1 serving + cap 2)", h.m.Dropped())
	}
}

func TestIngressBottleneckCapsThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// A 100µs/request dispatcher caps the system at 10k rps no matter
	// how many workers exist.
	mix := workload.Mix{
		Name:  "uni",
		Types: []workload.TypeSpec{{Name: "x", Ratio: 1, Service: rng.Fixed(time.Microsecond)}},
	}
	res, err := cluster.Run(cluster.Config{
		Workers:        8,
		Mix:            mix,
		Rate:           50_000, // 5x the dispatcher's capacity
		Duration:       200 * time.Millisecond,
		WarmupFraction: 0.1,
		Seed:           1,
		NewPolicy: func() cluster.Policy {
			return &IngressBottleneck{Inner: NewCFCFS(0), PerRequest: 100 * time.Microsecond, QueueCap: 128}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	thr := res.Recorder.Throughput()
	if thr > 11_000 {
		t.Fatalf("throughput %.0f rps exceeds the 10k dispatcher ceiling", thr)
	}
	if res.Machine.Dropped() == 0 {
		t.Fatal("no drops despite 5x dispatcher overload")
	}
}

func TestIngressBottleneckNamePropagation(t *testing.T) {
	p := &IngressBottleneck{Inner: NewCFCFS(0)}
	if p.Name() != "c-FCFS+dispatcher" {
		t.Fatalf("name %q", p.Name())
	}
	if !p.Traits().WorkConserving {
		t.Fatal("traits not delegated")
	}
}
