package policy

import "repro/internal/cluster"

// requestHeap is a bounded binary min-heap of requests under an
// arbitrary ordering, used by the SRPT-flavoured policies (oracle SJF,
// idealized time sharing). Ties break by arrival order via a
// monotonic sequence number.
type requestHeap struct {
	less  func(a, b *cluster.Request) bool
	items []heapItem
	seq   uint64
	// Cap bounds the heap; 0 means unbounded.
	Cap int
}

type heapItem struct {
	r   *cluster.Request
	seq uint64
}

func newRequestHeap(capacity int, less func(a, b *cluster.Request) bool) *requestHeap {
	return &requestHeap{less: less, Cap: capacity}
}

func (h *requestHeap) Len() int    { return len(h.items) }
func (h *requestHeap) Empty() bool { return len(h.items) == 0 }

// Push inserts r, reporting false when the heap is at capacity.
func (h *requestHeap) Push(r *cluster.Request) bool {
	if h.Cap > 0 && len(h.items) >= h.Cap {
		return false
	}
	h.items = append(h.items, heapItem{r: r, seq: h.seq})
	h.seq++
	h.up(len(h.items) - 1)
	return true
}

// Pop removes and returns the minimum request, or nil.
func (h *requestHeap) Pop() *cluster.Request {
	if len(h.items) == 0 {
		return nil
	}
	top := h.items[0].r
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return top
}

// Peek returns the minimum request without removing it, or nil.
func (h *requestHeap) Peek() *cluster.Request {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0].r
}

func (h *requestHeap) before(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if h.less(a.r, b.r) {
		return true
	}
	if h.less(b.r, a.r) {
		return false
	}
	return a.seq < b.seq
}

func (h *requestHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.before(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *requestHeap) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		child := left
		if right := left + 1; right < n && h.before(right, left) {
			child = right
		}
		if !h.before(child, i) {
			return
		}
		h.items[i], h.items[child] = h.items[child], h.items[i]
		i = child
	}
}
