package policy

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
)

// DARCStatic is the paper's §5.3 manual ablation ("DARC-static"): the
// first Reserved workers are dedicated to the statically shortest
// request type; short requests are scheduled first and may execute on
// every core, longer types only on the non-reserved cores. With
// Reserved == 0 it degenerates to FixedPriority.
type DARCStatic struct {
	m        *cluster.Machine
	queues   []cluster.FIFO
	order    []int
	Reserved int
	cap      int
}

// NewDARCStatic builds the policy: meanService gives the static
// per-type service times (index = type ID), reserved the number of
// cores dedicated to the shortest type.
func NewDARCStatic(meanService []time.Duration, reserved, queueCap int) *DARCStatic {
	order := make([]int, len(meanService))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return meanService[order[a]] < meanService[order[b]]
	})
	return &DARCStatic{order: order, Reserved: reserved, cap: normalizeCap(queueCap)}
}

// Name implements cluster.Policy.
func (p *DARCStatic) Name() string {
	return fmt.Sprintf("DARC-static(%d)", p.Reserved)
}

// Traits implements TraitsProvider.
func (p *DARCStatic) Traits() Traits {
	return Traits{AppAware: true, TypedQueues: true, WorkConserving: p.Reserved == 0, Preemptive: false}
}

// Init implements cluster.Policy.
func (p *DARCStatic) Init(m *cluster.Machine) {
	p.m = m
	if p.Reserved < 0 || p.Reserved > len(m.Workers) {
		panic(fmt.Sprintf("policy: DARC-static reserved %d out of range for %d workers", p.Reserved, len(m.Workers)))
	}
	p.queues = make([]cluster.FIFO, len(p.order))
	for i := range p.queues {
		p.queues[i].Cap = p.cap
	}
}

func (p *DARCStatic) clampType(t int) int {
	if t < 0 || t >= len(p.queues) {
		return len(p.queues) - 1
	}
	return t
}

// eligible reports whether type t may run on worker w: the shortest
// type runs anywhere, all others avoid the reserved cores.
func (p *DARCStatic) eligible(t int, w *cluster.Worker) bool {
	return t == p.order[0] || w.ID >= p.Reserved
}

// Arrive implements cluster.Policy.
func (p *DARCStatic) Arrive(r *cluster.Request) {
	t := p.clampType(r.Type)
	for _, w := range p.m.Workers {
		if w.Idle() && p.eligible(t, w) {
			p.m.Run(w, r)
			return
		}
	}
	pushOrDrop(p.m, &p.queues[t], r)
}

// WorkerFree implements cluster.Policy.
func (p *DARCStatic) WorkerFree(w *cluster.Worker) {
	for _, t := range p.order {
		if p.queues[t].Empty() || !p.eligible(t, w) {
			continue
		}
		p.m.Run(w, p.queues[t].Pop())
		return
	}
}
