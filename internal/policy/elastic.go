package policy

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/darc"
)

// ElasticDARC implements the paper's §6 sketch of DARC cooperating
// with a core allocator: the machine exposes Max workers, but the
// policy only uses an elastic subset. A periodic allocator measures
// utilization over the active set and grows it under pressure /
// shrinks it when idle; every resize flows through the DARC controller
// so reservations are recomputed for the new population (releasing the
// highest-numbered cores back to the datacenter).
type ElasticDARC struct {
	*DARC
	// Min/Max bound the active worker count (Max defaults to the
	// machine size, Min to 1).
	Min, Max int
	// Interval is the allocator's decision period (default 10ms).
	Interval time.Duration
	// HighWater grows the allocation when interval utilization
	// exceeds it (default 0.85); LowWater shrinks below it (default
	// 0.50).
	HighWater, LowWater float64
	// OnResize, when set, observes allocation changes.
	OnResize func(now time.Duration, active int)

	active   int
	prevBusy time.Duration
	resizes  uint64

	// debugTick, when set, observes every allocator decision (tests).
	debugTick func(now time.Duration, util float64, active int)
}

// NewElasticDARC builds the policy; cfg/numTypes/queueCap as NewDARC.
func NewElasticDARC(cfg darc.Config, numTypes, queueCap int) *ElasticDARC {
	return &ElasticDARC{DARC: NewDARC(cfg, numTypes, queueCap)}
}

// Name implements cluster.Policy.
func (p *ElasticDARC) Name() string { return "DARC-elastic" }

// Resizes reports how many allocation changes occurred.
func (p *ElasticDARC) Resizes() uint64 { return p.resizes }

// Active reports the current active worker count.
func (p *ElasticDARC) Active() int { return p.active }

// Init implements cluster.Policy.
func (p *ElasticDARC) Init(m *cluster.Machine) {
	p.DARC.Init(m)
	if p.Max <= 0 || p.Max > len(m.Workers) {
		p.Max = len(m.Workers)
	}
	if p.Min <= 0 {
		p.Min = 1
	}
	// The controller needs at least one non-spillway worker.
	if spill := p.cfg.Spillway; p.Min < spill+1 {
		p.Min = spill + 1
	}
	if p.Min > p.Max {
		p.Min = p.Max
	}
	if p.Interval <= 0 {
		p.Interval = 10 * time.Millisecond
	}
	if p.HighWater <= 0 || p.HighWater > 1 {
		p.HighWater = 0.85
	}
	if p.LowWater <= 0 || p.LowWater >= p.HighWater {
		p.LowWater = 0.50
	}
	// Start mid-range so both growth and shrink are observable.
	p.applyActive((p.Min + p.Max) / 2)
	m.Sim.After(p.Interval, p.tick)
}

func (p *ElasticDARC) applyActive(n int) {
	if n < p.Min {
		n = p.Min
	}
	if n > p.Max {
		n = p.Max
	}
	if n == p.active {
		return
	}
	p.active = n
	p.setActiveLimit(n)
	// Resize never fails for n in [Min,Max] with spillway < n; a
	// failure would mean the config allows more spillway cores than
	// workers, which DefaultConfig prevents.
	if _, err := p.Controller().Resize(n); err != nil {
		panic(err)
	}
	p.resizes++
	if p.OnResize != nil {
		p.OnResize(p.m.Sim.Now(), n)
	}
	// Newly granted workers can pick up queued work immediately.
	p.dispatch()
}

// tick is the allocator: measure the active set's utilization over the
// last interval and adjust.
func (p *ElasticDARC) tick() {
	var busy time.Duration
	for _, w := range p.m.Workers {
		busy += w.BusyTime()
	}
	delta := busy - p.prevBusy
	p.prevBusy = busy
	util := float64(delta) / (float64(p.Interval) * float64(p.active))
	if p.debugTick != nil {
		p.debugTick(p.m.Sim.Now(), util, p.active)
	}
	// DARC deliberately idles reserved cores, so average utilization
	// under-reports demand; sustained queue backlog is the second
	// pressure signal.
	backlog := p.QueuedRequests()
	switch {
	case (util > p.HighWater || backlog > 2*p.active) && p.active < p.Max:
		p.applyActive(p.active + 1)
	case util < p.LowWater && backlog == 0 && p.active > p.Min:
		p.applyActive(p.active - 1)
	}
	p.m.Sim.After(p.Interval, p.tick)
}
