package policy

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/darc"
	"repro/internal/workload"
)

func elasticConfig(workers int) darc.Config {
	cfg := darc.DefaultConfig(workers)
	cfg.MinWindowSamples = 500
	return cfg
}

func TestElasticGrowsUnderLoad(t *testing.T) {
	var resizes []int
	p := NewElasticDARC(elasticConfig(8), 2, 0)
	p.Min = 2
	p.Interval = 5 * time.Millisecond
	p.OnResize = func(_ time.Duration, active int) { resizes = append(resizes, active) }
	res, err := cluster.Run(cluster.Config{
		Workers:        8,
		Mix:            workload.HighBimodal(),
		LoadFraction:   0.9, // of the full 8-worker peak: pressure
		Duration:       300 * time.Millisecond,
		WarmupFraction: 0.1,
		Seed:           5,
		NewPolicy:      func() cluster.Policy { return p },
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Active() <= (2+8)/2 {
		t.Fatalf("active %d did not grow from %d under 90%% load", p.Active(), (2+8)/2)
	}
	if p.Resizes() == 0 {
		t.Fatal("no resizes recorded")
	}
	if res.Machine.Completed() == 0 {
		t.Fatal("no completions")
	}
	// Resize events were observed in order.
	if len(resizes) == 0 {
		t.Fatal("OnResize never fired")
	}
}

func TestElasticShrinksWhenIdle(t *testing.T) {
	p := NewElasticDARC(elasticConfig(8), 2, 0)
	p.Min = 2
	p.Interval = 5 * time.Millisecond
	_, err := cluster.Run(cluster.Config{
		Workers:        8,
		Mix:            workload.HighBimodal(),
		LoadFraction:   0.05, // nearly idle
		Duration:       300 * time.Millisecond,
		WarmupFraction: 0.1,
		Seed:           6,
		NewPolicy:      func() cluster.Policy { return p },
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Active() != p.Min {
		t.Fatalf("active %d, want shrink to Min=%d at 5%% load", p.Active(), p.Min)
	}
}

func TestElasticRespectsBounds(t *testing.T) {
	p := NewElasticDARC(elasticConfig(4), 2, 0)
	p.Min = 3
	p.Max = 3
	_, err := cluster.Run(cluster.Config{
		Workers:        4,
		Mix:            workload.HighBimodal(),
		LoadFraction:   0.9,
		Duration:       100 * time.Millisecond,
		WarmupFraction: 0.1,
		Seed:           7,
		NewPolicy:      func() cluster.Policy { return p },
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Active() != 3 {
		t.Fatalf("active %d, want pinned at 3", p.Active())
	}
}

func TestElasticMinAccountsForSpillway(t *testing.T) {
	cfg := elasticConfig(8)
	cfg.Spillway = 1
	p := NewElasticDARC(cfg, 2, 0)
	p.Min = 1 // must be lifted to spillway+1
	_, err := cluster.Run(cluster.Config{
		Workers:        8,
		Mix:            workload.HighBimodal(),
		LoadFraction:   0.05,
		Duration:       200 * time.Millisecond,
		WarmupFraction: 0.1,
		Seed:           8,
		NewPolicy:      func() cluster.Policy { return p },
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Active() < 2 {
		t.Fatalf("active %d below spillway+1", p.Active())
	}
}

func TestControllerResize(t *testing.T) {
	ctl, err := darc.NewController(elasticConfig(8), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Feed a profile and install a reservation.
	for i := 0; i < 600; i++ {
		ctl.Observe(i%2, time.Duration(1+99*(i%2))*time.Microsecond)
	}
	if !ctl.MaybeUpdate() {
		t.Fatal("no initial reservation")
	}
	before := ctl.Reservation()
	changed, err := ctl.Resize(4)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("resize did not recompute")
	}
	after := ctl.Reservation()
	if after == before {
		t.Fatal("reservation unchanged object")
	}
	// No reserved worker may exceed the new population.
	for _, g := range after.Groups {
		for _, w := range append(append([]int{}, g.Reserved...), g.Stealable...) {
			if w >= 4 {
				t.Fatalf("worker %d outside resized population", w)
			}
		}
	}
	// Invalid sizes fail.
	if _, err := ctl.Resize(0); err == nil {
		t.Fatal("resize to 0 accepted")
	}
}

func TestControllerResizeBeforeProfile(t *testing.T) {
	ctl, err := darc.NewController(elasticConfig(8), 2)
	if err != nil {
		t.Fatal(err)
	}
	changed, err := ctl.Resize(4)
	if err != nil {
		t.Fatal(err)
	}
	if changed || ctl.Reservation() != nil {
		t.Fatal("resize before any sample installed a reservation")
	}
}
