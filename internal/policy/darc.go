package policy

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/darc"
)

// DARC adapts the darc.Controller (profiler + Algorithm 1/2) to the
// simulated machine. Requests wait in typed queues served in ascending
// profiled-service-time order; each type runs on its group's reserved
// cores and may steal cores reserved for longer groups; unknown
// requests only use spillway cores. Until the first profiling window
// completes, the policy behaves as c-FCFS (the paper's startup phase).
type DARC struct {
	m        *cluster.Machine
	ctl      *darc.Controller
	cfg      darc.Config
	numTypes int
	queues   []cluster.FIFO
	unknown  cluster.FIFO
	cap      int

	// OnReservationUpdate, when set before Init, observes every
	// reservation change with the virtual time it took effect
	// (Figure 7's core-allocation track).
	OnReservationUpdate func(now time.Duration, res *darc.Reservation)

	// activeLimit bounds the worker IDs the policy may use (elastic
	// allocation); defaults to the full machine.
	activeLimit int
}

// NewDARC builds the policy for numTypes request types. cfg.Workers is
// overwritten from the machine at Init. A queueCap of 0 applies
// DefaultQueueCap; negative means unbounded.
func NewDARC(cfg darc.Config, numTypes, queueCap int) *DARC {
	return &DARC{cfg: cfg, numTypes: numTypes, cap: normalizeCap(queueCap)}
}

// Name implements cluster.Policy.
func (p *DARC) Name() string { return "DARC" }

// Traits implements TraitsProvider.
func (p *DARC) Traits() Traits {
	return Traits{AppAware: true, TypedQueues: true, WorkConserving: false, Preemptive: false}
}

// Init implements cluster.Policy.
func (p *DARC) Init(m *cluster.Machine) {
	p.m = m
	p.cfg.Workers = len(m.Workers)
	ctl, err := darc.NewController(p.cfg, p.numTypes)
	if err != nil {
		panic(err) // config was validated by the experiment setup
	}
	p.ctl = ctl
	if p.OnReservationUpdate != nil {
		ctl.OnUpdate = func(res *darc.Reservation) {
			p.OnReservationUpdate(p.m.Sim.Now(), res)
		}
	}
	p.queues = make([]cluster.FIFO, p.numTypes)
	for i := range p.queues {
		p.queues[i].Cap = p.cap
	}
	p.unknown.Cap = p.cap
	p.activeLimit = len(m.Workers)
}

// setActiveLimit bounds dispatch to worker IDs below n (elastic
// allocation support; the reservation itself is resized through the
// controller).
func (p *DARC) setActiveLimit(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(p.m.Workers) {
		n = len(p.m.Workers)
	}
	p.activeLimit = n
}

// Controller exposes the DARC controller for experiments (reservation
// snapshots, update counts, Figure 7's core-allocation track).
func (p *DARC) Controller() *darc.Controller { return p.ctl }

// Arrive implements cluster.Policy.
func (p *DARC) Arrive(r *cluster.Request) {
	if r.Type < 0 || r.Type >= p.numTypes {
		pushOrDrop(p.m, &p.unknown, r)
	} else {
		pushOrDrop(p.m, &p.queues[r.Type], r)
	}
	p.dispatch()
}

// WorkerFree implements cluster.Policy.
func (p *DARC) WorkerFree(w *cluster.Worker) {
	p.dispatch()
}

// Completed implements cluster.CompletionObserver: the worker's
// completion signal feeds the profiler and may trigger a reservation
// update.
func (p *DARC) Completed(w *cluster.Worker, r *cluster.Request) {
	p.ctl.Observe(r.Type, r.Service)
	p.ctl.MaybeUpdate()
}

// dispatch implements Algorithm 1, looping until no further assignment
// is possible.
func (p *DARC) dispatch() {
	for {
		res := p.ctl.Reservation()
		if res == nil {
			if !p.dispatchFCFS() {
				return
			}
			continue
		}
		if !p.dispatchDARC(res) {
			return
		}
	}
}

// dispatchFCFS is the startup mode: earliest arrival across all typed
// queues, any active idle worker.
func (p *DARC) dispatchFCFS() bool {
	var w *cluster.Worker
	for _, cand := range p.m.Workers {
		if cand.ID >= p.activeLimit {
			break
		}
		if cand.Idle() {
			w = cand
			break
		}
	}
	if w == nil {
		return false
	}
	var q *cluster.FIFO
	for i := range p.queues {
		head := p.queues[i].Peek()
		if head == nil {
			continue
		}
		if q == nil || head.Arrival < q.Peek().Arrival {
			q = &p.queues[i]
		}
	}
	if head := p.unknown.Peek(); head != nil && (q == nil || head.Arrival < q.Peek().Arrival) {
		q = &p.unknown
	}
	if q == nil {
		return false
	}
	p.runOn(w, q.Pop())
	return true
}

// dispatchDARC serves typed queues in ascending profiled service time
// on reserved-then-stealable workers, then the unknown queue on
// spillway cores. It reports whether any request was dispatched.
func (p *DARC) dispatchDARC(res *darc.Reservation) bool {
	dispatched := false
	for _, t := range p.ctl.DispatchOrder() {
		q := &p.queues[t]
		if q.Empty() {
			continue
		}
		w := p.firstIdle(res.ReservedFor(t), res.StealableFor(t))
		if w == nil {
			continue
		}
		p.runOn(w, q.Pop())
		dispatched = true
	}
	if !p.unknown.Empty() {
		if w := p.firstIdle(res.SpillwayWorkers, nil); w != nil {
			p.runOn(w, p.unknown.Pop())
			dispatched = true
		}
	}
	return dispatched
}

func (p *DARC) firstIdle(reserved, stealable []int) *cluster.Worker {
	for _, id := range reserved {
		if w := p.m.Workers[id]; w.Idle() {
			return w
		}
	}
	for _, id := range stealable {
		if w := p.m.Workers[id]; w.Idle() {
			return w
		}
	}
	return nil
}

func (p *DARC) runOn(w *cluster.Worker, r *cluster.Request) {
	p.ctl.NoteQueueDelay(r.Type, p.m.Sim.Now()-r.Arrival)
	p.m.Run(w, r)
}

// QueuedRequests reports the total backlog across all typed queues
// (the allocator's pressure signal: DARC deliberately idles reserved
// cores, so average utilization alone under-reports demand).
func (p *DARC) QueuedRequests() int {
	n := p.unknown.Len()
	for i := range p.queues {
		n += p.queues[i].Len()
	}
	return n
}

// QueueLen reports a typed queue's backlog (tests).
func (p *DARC) QueueLen(t int) int {
	if t < 0 || t >= p.numTypes {
		return p.unknown.Len()
	}
	return p.queues[t].Len()
}
