// Package policy implements every scheduling discipline the paper
// simulates or compares against (Tables 1 and 5): decentralized and
// centralized FCFS, Shenango-style work stealing, Shinjuku-style
// preemptive time sharing (single-queue, multi-queue/BVT, and the
// idealized variant of Figure 10), non-preemptive fixed priority,
// oracle SJF, DARC and DARC-static.
//
// All policies plug into cluster.Machine via the cluster.Policy
// interface and are engine-driven: the machine reports arrivals and
// worker availability, the policy queues and dispatches.
package policy

import "repro/internal/cluster"

// DefaultQueueCap bounds each queue a policy creates, so overload
// sheds requests (recorded as drops) instead of growing memory without
// bound — mirroring both Shinjuku's packet drops under overload and
// Perséphone's per-type flow control.
const DefaultQueueCap = 65536

// Traits describes a policy for the paper's taxonomy tables.
type Traits struct {
	// AppAware: the policy uses request types.
	AppAware bool
	// TypedQueues: requests wait in per-type queues.
	TypedQueues bool
	// WorkConserving: no worker idles while any compatible request
	// waits anywhere.
	WorkConserving bool
	// Preemptive: the policy interrupts running requests.
	Preemptive bool
}

// TraitsProvider is implemented by all policies in this package.
type TraitsProvider interface {
	Traits() Traits
}

// pushOrDrop enforces a queue bound, recording a drop on overflow.
func pushOrDrop(m *cluster.Machine, q *cluster.FIFO, r *cluster.Request) {
	if !q.Push(r) {
		m.RecordDrop(r)
	}
}
