package policy

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/darc"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sim"
)

// harness bundles a machine driven by a specific policy.
type harness struct {
	s   *sim.Sim
	m   *cluster.Machine
	rec *metrics.Recorder
}

func newHarness(workers, types int, p cluster.Policy) *harness {
	s := sim.New()
	rec := metrics.NewRecorder(types, nil)
	m := cluster.NewMachine(s, workers, p, rec)
	return &harness{s: s, m: m, rec: rec}
}

func (h *harness) at(t time.Duration, typ int, service time.Duration) {
	h.s.At(t, func() { h.m.Arrive(typ, service) })
}

func TestTraitsTable1(t *testing.T) {
	// Table 1: typed queues / work conservation / preemption per policy.
	cases := []struct {
		p    TraitsProvider
		want Traits
	}{
		{NewDFCFS(rng.New(1), 0), Traits{AppAware: false, TypedQueues: false, WorkConserving: false, Preemptive: false}},
		{NewCFCFS(0), Traits{AppAware: false, TypedQueues: false, WorkConserving: true, Preemptive: false}},
		{NewWorkStealing(rng.New(1), 0, 0), Traits{AppAware: false, TypedQueues: false, WorkConserving: true, Preemptive: false}},
		{NewTSSingleQueue(TSConfig{}), Traits{AppAware: false, TypedQueues: false, WorkConserving: true, Preemptive: true}},
		{NewTSMultiQueue(TSConfig{}, 2), Traits{AppAware: true, TypedQueues: true, WorkConserving: true, Preemptive: true}},
		{NewTSIdeal(0, 0, 0), Traits{AppAware: false, TypedQueues: false, WorkConserving: true, Preemptive: true}},
		{NewFixedPriority([]time.Duration{1, 2}, 0), Traits{AppAware: true, TypedQueues: true, WorkConserving: true, Preemptive: false}},
		{NewSJF(0), Traits{AppAware: true, TypedQueues: false, WorkConserving: true, Preemptive: false}},
		{NewDARCStatic([]time.Duration{1, 2}, 1, 0), Traits{AppAware: true, TypedQueues: true, WorkConserving: false, Preemptive: false}},
		{NewDARC(darcConfig(2), 2, 0), Traits{AppAware: true, TypedQueues: true, WorkConserving: false, Preemptive: false}},
	}
	for _, c := range cases {
		if got := c.p.Traits(); got != c.want {
			t.Errorf("%T traits %+v, want %+v", c.p, got, c.want)
		}
	}
}

func TestDFCFSLocalHotspot(t *testing.T) {
	// With d-FCFS a request can wait behind its queue's long request
	// even while another worker idles.
	p := NewDFCFS(rng.New(3), 0)
	h := newHarness(2, 2, p)
	// Force both requests to the same worker by arrival draw: with 2
	// queues and a seeded RNG we just inject many pairs and check
	// that hotspot waiting occurs at least once while total idle
	// exists.
	for i := 0; i < 40; i++ {
		h.at(time.Duration(i)*100*time.Microsecond, 1, 100*time.Microsecond)
		h.at(time.Duration(i)*100*time.Microsecond+time.Nanosecond, 0, time.Microsecond)
	}
	h.s.Run()
	if h.m.Completed() != 80 {
		t.Fatalf("completed %d", h.m.Completed())
	}
	// Some short request must have queued behind a long one (queue
	// delay ≥ tens of µs) — the hotspot signature.
	if h.rec.Type(0).QueueDelay.QuantileDuration(1) < 50*time.Microsecond {
		t.Fatal("no local hotspot observed under d-FCFS")
	}
}

func TestCFCFSWorkConserving(t *testing.T) {
	p := NewCFCFS(0)
	h := newHarness(2, 1, p)
	// Three requests at t=0 on 2 workers: third starts as soon as a
	// worker frees, never later.
	for i := 0; i < 3; i++ {
		h.at(0, 0, 10*time.Microsecond)
	}
	h.s.Run()
	if h.s.Now() != 20*time.Microsecond {
		t.Fatalf("makespan %v, want 20µs", h.s.Now())
	}
	if p.QueueLen() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestCFCFSDropsAtCapacity(t *testing.T) {
	p := NewCFCFS(2)
	h := newHarness(1, 1, p)
	for i := 0; i < 5; i++ {
		h.at(0, 0, 10*time.Microsecond)
	}
	h.s.Run()
	// 1 running + 2 queued admitted, 2 dropped.
	if h.m.Dropped() != 2 {
		t.Fatalf("dropped %d, want 2", h.m.Dropped())
	}
	if h.m.Completed() != 3 {
		t.Fatalf("completed %d, want 3", h.m.Completed())
	}
}

func TestWorkStealingApproximatesCFCFS(t *testing.T) {
	p := NewWorkStealing(rng.New(5), 0, 100*time.Nanosecond)
	h := newHarness(2, 1, p)
	for i := 0; i < 100; i++ {
		h.at(time.Duration(i)*8*time.Microsecond, 0, 10*time.Microsecond)
	}
	h.s.Run()
	if h.m.Completed() != 100 {
		t.Fatalf("completed %d", h.m.Completed())
	}
	if p.Steals() == 0 {
		t.Fatal("no steals occurred in an imbalanced arrival pattern")
	}
	// No request should wait long while the other worker idles: p999
	// queue delay must stay well below a service time multiple that
	// d-FCFS would show (hundreds of µs).
	if got := h.rec.Type(0).QueueDelay.QuantileDuration(0.999); got > 50*time.Microsecond {
		t.Fatalf("queue delay %v too high for a stealing policy", got)
	}
}

func TestTSSingleQueuePreemptsLong(t *testing.T) {
	p := NewTSSingleQueue(TSConfig{Quantum: 5 * time.Microsecond, PreemptCost: time.Microsecond})
	h := newHarness(1, 2, p)
	h.at(0, 1, 100*time.Microsecond)              // long occupies the worker
	h.at(time.Microsecond, 0, 1*time.Microsecond) // short arrives behind it
	h.s.Run()
	if h.m.Completed() != 2 {
		t.Fatalf("completed %d", h.m.Completed())
	}
	// Short runs after the first 5µs quantum + 1µs preemption cost:
	// completes ≈ 7µs, far earlier than the long's 100µs.
	shortDone := h.rec.Type(0).Latency.QuantileDuration(1)
	if shortDone > 10*time.Microsecond {
		t.Fatalf("short latency %v: preemption did not help", shortDone)
	}
	if p.Preemptions() == 0 {
		t.Fatal("no preemptions fired")
	}
	// The long request pays for every interrupt: its sojourn exceeds
	// its pure service time.
	longLat := h.rec.Type(1).Latency.QuantileDuration(1)
	if longLat <= 100*time.Microsecond {
		t.Fatalf("long latency %v should include preemption overhead", longLat)
	}
}

func TestTSSingleQueueNoPreemptWhenAlone(t *testing.T) {
	p := NewTSSingleQueue(TSConfig{Quantum: 5 * time.Microsecond, PreemptCost: time.Microsecond})
	h := newHarness(1, 1, p)
	h.at(0, 0, 50*time.Microsecond)
	h.s.Run()
	if p.Preemptions() != 0 {
		t.Fatalf("%d preemptions with an empty queue", p.Preemptions())
	}
	if got := h.rec.Type(0).Latency.QuantileDuration(1); got != 50*time.Microsecond {
		t.Fatalf("lone request latency %v, want exactly 50µs", got)
	}
}

func TestTSMultiQueueHeadRequeue(t *testing.T) {
	p := NewTSMultiQueue(TSConfig{Quantum: 5 * time.Microsecond, PreemptCost: 0}, 2)
	h := newHarness(1, 2, p)
	// Two longs of type 1 and a stream of type-0 shorts: BVT shares
	// the worker between queues instead of starving either.
	h.at(0, 1, 50*time.Microsecond)
	h.at(0, 1, 50*time.Microsecond)
	for i := 0; i < 10; i++ {
		h.at(time.Duration(i)*10*time.Microsecond, 0, time.Microsecond)
	}
	h.s.Run()
	if h.m.Completed() != 12 {
		t.Fatalf("completed %d", h.m.Completed())
	}
	// Shorts should interleave: their p100 sojourn stays far below
	// the 100µs the longs need in total.
	if got := h.rec.Type(0).Latency.QuantileDuration(1); got > 20*time.Microsecond {
		t.Fatalf("short latency %v under BVT", got)
	}
}

func TestTSIdealZeroOverheadIsSRPTLike(t *testing.T) {
	p := NewTSIdeal(0, 0, 0)
	h := newHarness(1, 2, p)
	h.at(0, 1, 100*time.Microsecond)
	h.at(10*time.Microsecond, 0, time.Microsecond)
	h.s.Run()
	// Ideal preemption: the short runs immediately on arrival.
	short := h.rec.Type(0).Latency.QuantileDuration(1)
	if short > 2*time.Microsecond {
		t.Fatalf("short latency %v under ideal preemption", short)
	}
	// The long still completes, paying no overhead: total time 101µs
	// + scheduling instants.
	long := h.rec.Type(1).Latency.QuantileDuration(1)
	if long < 100*time.Microsecond || long > 103*time.Microsecond {
		t.Fatalf("long latency %v", long)
	}
	if p.Preemptions() != 1 {
		t.Fatalf("preemptions %d, want 1", p.Preemptions())
	}
}

func TestTSIdealPropagationDelays(t *testing.T) {
	p := NewTSIdeal(2*time.Microsecond, 2*time.Microsecond, 0)
	h := newHarness(1, 2, p)
	h.at(0, 1, 100*time.Microsecond)
	h.at(10*time.Microsecond, 0, time.Microsecond)
	h.s.Run()
	short := h.rec.Type(0).Latency.QuantileDuration(1)
	// Short waits propagation (2µs) + preempt cost (2µs) + runs 1µs.
	if short < 4*time.Microsecond || short > 7*time.Microsecond {
		t.Fatalf("short latency %v, want ~5µs", short)
	}
}

func TestFixedPriorityOrdersTypes(t *testing.T) {
	p := NewFixedPriority([]time.Duration{time.Microsecond, 100 * time.Microsecond}, 0)
	h := newHarness(1, 2, p)
	h.at(0, 1, 100*time.Microsecond) // occupies worker
	// Queue one long then one short; the short must run first when
	// the worker frees.
	h.at(time.Microsecond, 1, 100*time.Microsecond)
	h.at(2*time.Microsecond, 0, time.Microsecond)
	h.s.Run()
	short := h.rec.Type(0).Latency.QuantileDuration(1)
	if short > 100*time.Microsecond {
		t.Fatalf("short latency %v: priority not applied", short)
	}
}

func TestSJFPicksShortest(t *testing.T) {
	p := NewSJF(0)
	h := newHarness(1, 3, p)
	h.at(0, 0, 50*time.Microsecond) // occupies
	h.at(time.Microsecond, 1, 30*time.Microsecond)
	h.at(2*time.Microsecond, 2, 5*time.Microsecond)
	h.s.Run()
	// Type 2 (5µs) must complete before type 1 (30µs).
	done2 := h.rec.Type(2).Latency.QuantileDuration(1) + 2*time.Microsecond
	done1 := h.rec.Type(1).Latency.QuantileDuration(1) + time.Microsecond
	if done2 >= done1 {
		t.Fatalf("SJF order violated: t2 done at %v, t1 at %v", done2, done1)
	}
}

func darcConfig(workers int) darc.Config {
	cfg := darc.DefaultConfig(workers)
	cfg.MinWindowSamples = 50
	return cfg
}
