package policy

import (
	"repro/internal/cluster"
	"repro/internal/rng"
)

// DFCFS is decentralized first-come-first-served: each worker owns a
// queue and receives a uniform share of arrivals, modelling NIC
// Receive Side Scaling as used by IX and Arrakis. Workers never share
// work, so it exhibits uncontrolled non-work-conservation (idle
// workers coexist with backlogged ones).
type DFCFS struct {
	m      *cluster.Machine
	queues []cluster.FIFO
	r      *rng.RNG
	cap    int
}

// NewDFCFS builds a d-FCFS policy. Arrival steering uses the supplied
// generator (RSS hashing over many flows is effectively uniform). A
// queueCap of 0 applies DefaultQueueCap; negative means unbounded.
func NewDFCFS(r *rng.RNG, queueCap int) *DFCFS {
	return &DFCFS{r: r, cap: normalizeCap(queueCap)}
}

func normalizeCap(c int) int {
	switch {
	case c == 0:
		return DefaultQueueCap
	case c < 0:
		return 0 // cluster.FIFO treats 0 as unbounded
	default:
		return c
	}
}

// Name implements cluster.Policy.
func (p *DFCFS) Name() string { return "d-FCFS" }

// Traits implements TraitsProvider.
func (p *DFCFS) Traits() Traits {
	return Traits{AppAware: false, TypedQueues: false, WorkConserving: false, Preemptive: false}
}

// Init implements cluster.Policy.
func (p *DFCFS) Init(m *cluster.Machine) {
	p.m = m
	p.queues = make([]cluster.FIFO, len(m.Workers))
	for i := range p.queues {
		p.queues[i].Cap = p.cap
	}
}

// Arrive implements cluster.Policy.
func (p *DFCFS) Arrive(r *cluster.Request) {
	i := p.r.Intn(len(p.queues))
	w := p.m.Workers[i]
	if w.Idle() && p.queues[i].Empty() {
		p.m.Run(w, r)
		return
	}
	pushOrDrop(p.m, &p.queues[i], r)
}

// WorkerFree implements cluster.Policy.
func (p *DFCFS) WorkerFree(w *cluster.Worker) {
	if r := p.queues[w.ID].Pop(); r != nil {
		p.m.Run(w, r)
	}
}

// QueueLen reports worker i's backlog (tests and reports).
func (p *DFCFS) QueueLen(i int) int { return p.queues[i].Len() }
