package policy

import (
	"time"

	"repro/internal/cluster"
)

// EDF is non-preemptive Earliest-Deadline-First (Table 5): each
// request's absolute deadline is its arrival plus a per-type relative
// deadline (here: SLOFactor × the type's static mean service time),
// and the pending request with the earliest deadline runs next. As the
// paper notes, EDF can suffer priority inversion when deadlines don't
// track service times.
type EDF struct {
	m     *cluster.Machine
	queue *requestHeap
	// relDeadline holds per-type relative deadlines.
	relDeadline []time.Duration
	deadlines   map[*cluster.Request]time.Duration
}

// NewEDF builds the policy: each type's relative deadline is sloFactor
// times its mean service time (index = type ID). A queueCap of 0
// applies DefaultQueueCap; negative means unbounded.
func NewEDF(meanService []time.Duration, sloFactor float64, queueCap int) *EDF {
	if sloFactor <= 0 {
		sloFactor = 10
	}
	rel := make([]time.Duration, len(meanService))
	for i, s := range meanService {
		rel[i] = time.Duration(float64(s) * sloFactor)
	}
	p := &EDF{relDeadline: rel, deadlines: make(map[*cluster.Request]time.Duration)}
	p.queue = newRequestHeap(normalizeCap(queueCap), func(a, b *cluster.Request) bool {
		return p.deadlines[a] < p.deadlines[b]
	})
	return p
}

// Name implements cluster.Policy.
func (p *EDF) Name() string { return "EDF" }

// Traits implements TraitsProvider.
func (p *EDF) Traits() Traits {
	return Traits{AppAware: true, TypedQueues: false, WorkConserving: true, Preemptive: false}
}

// Init implements cluster.Policy.
func (p *EDF) Init(m *cluster.Machine) { p.m = m }

func (p *EDF) deadlineFor(r *cluster.Request) time.Duration {
	t := r.Type
	if t < 0 || t >= len(p.relDeadline) {
		t = len(p.relDeadline) - 1
	}
	return r.Arrival + p.relDeadline[t]
}

// Arrive implements cluster.Policy.
func (p *EDF) Arrive(r *cluster.Request) {
	for _, w := range p.m.Workers {
		if w.Idle() {
			p.m.Run(w, r)
			return
		}
	}
	p.deadlines[r] = p.deadlineFor(r)
	if !p.queue.Push(r) {
		delete(p.deadlines, r)
		p.m.RecordDrop(r)
	}
}

// WorkerFree implements cluster.Policy.
func (p *EDF) WorkerFree(w *cluster.Worker) {
	if r := p.queue.Pop(); r != nil {
		delete(p.deadlines, r)
		p.m.Run(w, r)
	}
}
