package policy

import (
	"time"

	"repro/internal/cluster"
)

// DRR is non-preemptive Deficit (Weighted) Round Robin over typed
// queues (Table 5): queues take turns, each accumulating a quantum of
// service-time credit per round and dispatching while its head fits in
// the accumulated deficit. Fair between types by construction, but —
// as the paper's table notes — it neither prioritizes short requests
// nor prevents head-of-line blocking within a turn.
type DRR struct {
	m        *cluster.Machine
	queues   []cluster.FIFO
	deficit  []time.Duration
	weights  []int
	quantum  time.Duration
	rr       int
	numTypes int
	cap      int
}

// NewDRR builds the policy: quantum is the per-round service credit,
// weights (optional, default all 1) scale it per type.
func NewDRR(numTypes int, quantum time.Duration, weights []int, queueCap int) *DRR {
	if quantum <= 0 {
		quantum = 10 * time.Microsecond
	}
	w := make([]int, numTypes)
	for i := range w {
		w[i] = 1
		if weights != nil && i < len(weights) && weights[i] > 0 {
			w[i] = weights[i]
		}
	}
	return &DRR{numTypes: numTypes, quantum: quantum, weights: w, cap: normalizeCap(queueCap)}
}

// Name implements cluster.Policy.
func (p *DRR) Name() string { return "DRR" }

// Traits implements TraitsProvider.
func (p *DRR) Traits() Traits {
	return Traits{AppAware: true, TypedQueues: true, WorkConserving: true, Preemptive: false}
}

// Init implements cluster.Policy.
func (p *DRR) Init(m *cluster.Machine) {
	p.m = m
	p.queues = make([]cluster.FIFO, p.numTypes)
	p.deficit = make([]time.Duration, p.numTypes)
	for i := range p.queues {
		p.queues[i].Cap = p.cap
	}
}

func (p *DRR) clampType(t int) int {
	if t < 0 || t >= p.numTypes {
		return p.numTypes - 1
	}
	return t
}

// Arrive implements cluster.Policy.
func (p *DRR) Arrive(r *cluster.Request) {
	for _, w := range p.m.Workers {
		if w.Idle() {
			p.m.Run(w, r)
			return
		}
	}
	pushOrDrop(p.m, &p.queues[p.clampType(r.Type)], r)
}

// WorkerFree implements cluster.Policy: classic DRR selection. Each
// pass over the queues grants a quantum×weight credit; we keep passing
// until some head fits its queue's deficit (termination: deficits grow
// every pass while any queue is non-empty).
func (p *DRR) WorkerFree(w *cluster.Worker) {
	nonEmpty := 0
	for i := range p.queues {
		if !p.queues[i].Empty() {
			nonEmpty++
		} else {
			p.deficit[i] = 0 // empty queues don't hoard credit
		}
	}
	if nonEmpty == 0 {
		return
	}
	for {
		for scanned := 0; scanned < p.numTypes; scanned++ {
			i := p.rr
			p.rr = (p.rr + 1) % p.numTypes
			q := &p.queues[i]
			if q.Empty() {
				continue
			}
			if head := q.Peek(); head.Service <= p.deficit[i] {
				p.deficit[i] -= head.Service
				p.m.Run(w, q.Pop())
				return
			}
			p.deficit[i] += p.quantum * time.Duration(p.weights[i])
		}
	}
}
