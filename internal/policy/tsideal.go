package policy

import (
	"time"

	"repro/internal/cluster"
)

// TSIdeal is the paper's Figure-10 family of single-queue preemptive
// systems: a preemption is triggered as soon as a waiting request is
// blocked by a longer-remaining request running on a worker. The
// preemption event takes PropagateDelay to reach the worker (which
// keeps executing meanwhile) and PreemptCost of worker time to take
// effect. With both set to zero this is ideal preemptive SRPT ("TS
// 0µs"); the paper evaluates 1/2/4µs total overhead variants.
type TSIdeal struct {
	m *cluster.Machine
	// queue is ordered by remaining service (SRPT).
	queue *requestHeap
	// running tracks the preemptible execution per worker.
	running []*cluster.RunHandle
	// preempting marks workers with an in-flight preemption event.
	preempting []bool

	// PropagateDelay is the time for a preemption event to reach the
	// worker.
	PropagateDelay time.Duration
	// PreemptCost is worker time consumed by the preemption itself.
	PreemptCost time.Duration

	preemptions uint64
}

// NewTSIdeal builds the policy; see TSIdeal for the parameters. A
// queueCap of 0 applies DefaultQueueCap; negative means unbounded.
func NewTSIdeal(propagate, cost time.Duration, queueCap int) *TSIdeal {
	return &TSIdeal{
		PropagateDelay: propagate,
		PreemptCost:    cost,
		queue: newRequestHeap(normalizeCap(queueCap), func(a, b *cluster.Request) bool {
			return a.Remaining < b.Remaining
		}),
	}
}

// Name implements cluster.Policy.
func (p *TSIdeal) Name() string { return "TS-ideal" }

// Traits implements TraitsProvider.
func (p *TSIdeal) Traits() Traits {
	return Traits{AppAware: false, TypedQueues: false, WorkConserving: true, Preemptive: true}
}

// Init implements cluster.Policy.
func (p *TSIdeal) Init(m *cluster.Machine) {
	p.m = m
	p.running = make([]*cluster.RunHandle, len(m.Workers))
	p.preempting = make([]bool, len(m.Workers))
}

// Preemptions reports how many preemptions actually fired.
func (p *TSIdeal) Preemptions() uint64 { return p.preemptions }

// Arrive implements cluster.Policy.
func (p *TSIdeal) Arrive(r *cluster.Request) {
	for _, w := range p.m.Workers {
		if w.Idle() {
			p.start(w, r)
			return
		}
	}
	if !p.queue.Push(r) {
		p.m.RecordDrop(r)
		return
	}
	p.maybePreempt()
}

// WorkerFree implements cluster.Policy.
func (p *TSIdeal) WorkerFree(w *cluster.Worker) {
	if r := p.queue.Pop(); r != nil {
		p.start(w, r)
	}
}

func (p *TSIdeal) start(w *cluster.Worker, r *cluster.Request) {
	p.running[w.ID] = p.m.RunPreemptible(w, r)
}

// maybePreempt triggers a preemption when the shortest waiting request
// is blocked behind a running request with strictly larger remaining
// work. The victim is the worker with the largest remaining work that
// has no preemption already in flight.
func (p *TSIdeal) maybePreempt() {
	head := p.queue.Peek()
	if head == nil {
		return
	}
	victim := -1
	var worst time.Duration
	for id, h := range p.running {
		if h == nil || h.Done() || p.preempting[id] {
			continue
		}
		rem := h.Request().Remaining // demand when started; still an upper bound ordering
		if rem > worst {
			worst = rem
			victim = id
		}
	}
	if victim < 0 || worst <= head.Remaining {
		return
	}
	p.preempting[victim] = true
	h := p.running[victim]
	p.m.Sim.After(p.PropagateDelay, func() {
		p.preempting[victim] = false
		p.firePreemption(victim, h)
	})
}

func (p *TSIdeal) firePreemption(victim int, h *cluster.RunHandle) {
	// The world may have moved on during propagation: the victim may
	// have finished, or the queue drained.
	if h.Done() {
		return
	}
	head := p.queue.Peek()
	if head == nil {
		return
	}
	if !p.m.Interrupt(h) {
		return
	}
	r := h.Request()
	p.running[victim] = nil
	if r.Remaining <= head.Remaining {
		// No longer worth preempting (it nearly finished during the
		// delay): resume it.
		p.start(h.Worker(), r)
		return
	}
	r.Preemptions++
	p.preemptions++
	w := h.Worker()
	p.m.Overhead(w, p.PreemptCost, func() {
		if !p.queue.Push(r) {
			p.m.RecordDrop(r)
		}
		p.WorkerFree(w)
		p.maybePreempt()
	})
}
