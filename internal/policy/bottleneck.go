package policy

import (
	"time"

	"repro/internal/cluster"
)

// IngressBottleneck wraps a policy with a serialized dispatcher stage:
// every arriving request passes through a single virtual server with a
// fixed per-request cost before the inner policy sees it. This models
// the centralized-dispatcher capacity real systems hit — the paper
// measured Shinjuku sustaining ≈4.5M requests/second without
// preemption, i.e. a ≈220ns per-request dispatch path — and explains
// why those systems drop packets at loads their scheduling policy
// could otherwise handle.
type IngressBottleneck struct {
	Inner cluster.Policy
	// PerRequest is the dispatcher occupancy per request (e.g. 222ns
	// for a 4.5Mrps dispatcher).
	PerRequest time.Duration
	// QueueCap bounds the dispatcher's ingress queue; beyond it
	// requests are dropped (the "starts dropping packets" regime). 0
	// applies DefaultQueueCap.
	QueueCap int

	m        *cluster.Machine
	busy     bool
	queue    cluster.FIFO
	deferred uint64
}

// Name implements cluster.Policy.
func (p *IngressBottleneck) Name() string { return p.Inner.Name() + "+dispatcher" }

// Traits delegates to the inner policy.
func (p *IngressBottleneck) Traits() Traits {
	if tp, ok := p.Inner.(TraitsProvider); ok {
		return tp.Traits()
	}
	return Traits{}
}

// Init implements cluster.Policy.
func (p *IngressBottleneck) Init(m *cluster.Machine) {
	p.m = m
	p.queue.Cap = normalizeCap(p.QueueCap)
	p.Inner.Init(m)
}

// Deferred reports how many requests waited for the dispatcher stage.
func (p *IngressBottleneck) Deferred() uint64 { return p.deferred }

// Arrive implements cluster.Policy: requests serialize through the
// dispatcher stage before reaching the inner policy.
func (p *IngressBottleneck) Arrive(r *cluster.Request) {
	if p.PerRequest <= 0 {
		p.Inner.Arrive(r)
		return
	}
	if !p.queue.Push(r) {
		p.m.RecordDrop(r)
		return
	}
	if !p.busy {
		p.serveNext()
	} else {
		p.deferred++
	}
}

func (p *IngressBottleneck) serveNext() {
	r := p.queue.Pop()
	if r == nil {
		p.busy = false
		return
	}
	p.busy = true
	p.m.Sim.After(p.PerRequest, func() {
		p.Inner.Arrive(r)
		p.serveNext()
	})
}

// WorkerFree implements cluster.Policy.
func (p *IngressBottleneck) WorkerFree(w *cluster.Worker) { p.Inner.WorkerFree(w) }

// Completed forwards the completion signal when the inner policy
// observes them.
func (p *IngressBottleneck) Completed(w *cluster.Worker, r *cluster.Request) {
	if co, ok := p.Inner.(cluster.CompletionObserver); ok {
		co.Completed(w, r)
	}
}
