package policy

import (
	"time"

	"repro/internal/cluster"
)

// TSMultiQueue is Shinjuku's multi-queue policy: one queue per request
// type, preempted requests re-enqueued at the *head* of their own
// queue, and queue selection by a Borrowed-Virtual-Time variant — the
// queue whose accumulated virtual CPU time is smallest runs next. Used
// by the paper for High Bimodal, TPC-C and RocksDB.
type TSMultiQueue struct {
	cfg         TSConfig
	numTypes    int
	m           *cluster.Machine
	queues      []cluster.FIFO
	vtime       []time.Duration
	preemptions uint64
}

// NewTSMultiQueue builds the policy for the given number of request
// types.
func NewTSMultiQueue(cfg TSConfig, numTypes int) *TSMultiQueue {
	cfg.fill()
	p := &TSMultiQueue{cfg: cfg, numTypes: numTypes}
	return p
}

// Name implements cluster.Policy.
func (p *TSMultiQueue) Name() string { return "TS-multi" }

// Traits implements TraitsProvider.
func (p *TSMultiQueue) Traits() Traits {
	return Traits{AppAware: true, TypedQueues: true, WorkConserving: true, Preemptive: true}
}

// Init implements cluster.Policy.
func (p *TSMultiQueue) Init(m *cluster.Machine) {
	p.m = m
	p.queues = make([]cluster.FIFO, p.numTypes)
	p.vtime = make([]time.Duration, p.numTypes)
	for i := range p.queues {
		p.queues[i].Cap = p.cfg.QueueCap
	}
}

// Preemptions reports how many interrupts actually fired.
func (p *TSMultiQueue) Preemptions() uint64 { return p.preemptions }

func (p *TSMultiQueue) queueOf(r *cluster.Request) *cluster.FIFO {
	t := r.Type
	if t < 0 || t >= p.numTypes {
		t = p.numTypes - 1
	}
	return &p.queues[t]
}

// Arrive implements cluster.Policy.
func (p *TSMultiQueue) Arrive(r *cluster.Request) {
	// A queue waking from empty inherits the smallest active virtual
	// time so it cannot monopolise workers with stale credit.
	t := r.Type
	if t >= 0 && t < p.numTypes && p.queues[t].Empty() {
		if min, ok := p.minActiveVT(); ok && p.vtime[t] < min {
			p.vtime[t] = min
		}
	}
	for _, w := range p.m.Workers {
		if w.Idle() {
			p.start(w, r)
			return
		}
	}
	pushOrDrop(p.m, p.queueOf(r), r)
}

// WorkerFree implements cluster.Policy.
func (p *TSMultiQueue) WorkerFree(w *cluster.Worker) {
	if r := p.next(); r != nil {
		p.start(w, r)
	}
}

// next pops from the non-empty queue with the smallest virtual time.
func (p *TSMultiQueue) next() *cluster.Request {
	best := -1
	for i := range p.queues {
		if p.queues[i].Empty() {
			continue
		}
		if best < 0 || p.vtime[i] < p.vtime[best] {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	return p.queues[best].Pop()
}

func (p *TSMultiQueue) minActiveVT() (time.Duration, bool) {
	var min time.Duration
	found := false
	for i := range p.queues {
		if p.queues[i].Empty() {
			continue
		}
		if !found || p.vtime[i] < min {
			min = p.vtime[i]
			found = true
		}
	}
	return min, found
}

func (p *TSMultiQueue) start(w *cluster.Worker, r *cluster.Request) {
	before := r.Remaining
	p.m.RunSlice(w, r, p.cfg.Quantum, func(w *cluster.Worker, r *cluster.Request) {
		p.charge(r, before-r.Remaining)
		p.sliceEnd(w, r)
	})
	// Completed-within-slice executions are charged in Completed.
}

func (p *TSMultiQueue) charge(r *cluster.Request, executed time.Duration) {
	t := r.Type
	if t < 0 || t >= p.numTypes {
		t = p.numTypes - 1
	}
	p.vtime[t] += executed
}

// Completed implements cluster.CompletionObserver: charge the final
// slice of finished requests to their queue's virtual time.
func (p *TSMultiQueue) Completed(w *cluster.Worker, r *cluster.Request) {
	// The final slice ran at most Quantum; its exact length is the
	// remainder of the service after the previous slices. Recompute
	// from Service modulo is fragile, so charge the remainder directly:
	rem := r.Service % p.cfg.Quantum
	if rem == 0 && r.Service > 0 {
		rem = p.cfg.Quantum
	}
	p.charge(r, rem)
}

// sliceEnd: resume for free when nothing else waits, otherwise pay the
// interrupt, re-enqueue at the *head* of the request's own queue and
// pick by BVT.
func (p *TSMultiQueue) sliceEnd(w *cluster.Worker, r *cluster.Request) {
	if _, anyWaiting := p.minActiveVT(); !anyWaiting {
		p.start(w, r)
		return
	}
	r.Preemptions++
	p.preemptions++
	p.m.Overhead(w, p.cfg.PreemptCost, func() {
		p.queueOf(r).PushFront(r)
		p.WorkerFree(w)
	})
}
