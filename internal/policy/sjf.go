package policy

import "repro/internal/cluster"

// SJF is non-preemptive shortest-job-first with oracle knowledge of
// each request's exact service time (Table 5 lists it as requiring
// information a real µs-scale scheduler cannot have; it serves as a
// reference point in ablation experiments).
type SJF struct {
	m     *cluster.Machine
	queue *requestHeap
}

// NewSJF builds the policy. A queueCap of 0 applies DefaultQueueCap;
// negative means unbounded.
func NewSJF(queueCap int) *SJF {
	return &SJF{queue: newRequestHeap(normalizeCap(queueCap), func(a, b *cluster.Request) bool {
		return a.Service < b.Service
	})}
}

// Name implements cluster.Policy.
func (p *SJF) Name() string { return "SJF" }

// Traits implements TraitsProvider.
func (p *SJF) Traits() Traits {
	return Traits{AppAware: true, TypedQueues: false, WorkConserving: true, Preemptive: false}
}

// Init implements cluster.Policy.
func (p *SJF) Init(m *cluster.Machine) { p.m = m }

// Arrive implements cluster.Policy.
func (p *SJF) Arrive(r *cluster.Request) {
	for _, w := range p.m.Workers {
		if w.Idle() {
			p.m.Run(w, r)
			return
		}
	}
	if !p.queue.Push(r) {
		p.m.RecordDrop(r)
	}
}

// WorkerFree implements cluster.Policy.
func (p *SJF) WorkerFree(w *cluster.Worker) {
	if r := p.queue.Pop(); r != nil {
		p.m.Run(w, r)
	}
}
