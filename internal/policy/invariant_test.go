package policy

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/darc"
	"repro/internal/workload"
)

// reservationAuditor wraps DARC and verifies, at every completion,
// that the worker that executed the request was eligible for its type
// under the reservation in force — Algorithm 1's core contract:
// reserved ∪ stealable for known types, spillway for unknown ones.
type reservationAuditor struct {
	*DARC
	t          *testing.T
	violations int
	checked    int
	// lastUpdate is the virtual instant the current reservation took
	// effect; requests dispatched before it ran under the previous
	// reservation and are exempt (non-preemptive policies never
	// migrate running work).
	lastUpdate time.Duration
}

func (a *reservationAuditor) Init(m *cluster.Machine) {
	a.DARC.OnReservationUpdate = func(now time.Duration, _ *darc.Reservation) {
		a.lastUpdate = now
	}
	a.DARC.Init(m)
}

func (a *reservationAuditor) Completed(w *cluster.Worker, r *cluster.Request) {
	res := a.Controller().Reservation()
	if res != nil && r.FirstDispatch >= a.lastUpdate {
		allowed := false
		for _, id := range res.ReservedFor(r.Type) {
			if id == w.ID {
				allowed = true
			}
		}
		for _, id := range res.StealableFor(r.Type) {
			if id == w.ID {
				allowed = true
			}
		}
		if !allowed {
			a.violations++
			if a.violations < 5 {
				a.t.Errorf("type %d completed on worker %d outside reserved %v / stealable %v",
					r.Type, w.ID, res.ReservedFor(r.Type), res.StealableFor(r.Type))
			}
		} else {
			a.checked++
		}
	}
	a.DARC.Completed(w, r)
}

// TestDARCDispatchRespectsReservation drives DARC with sustained
// traffic across several mixes and asserts no request ever ran on a
// core its type was not entitled to.
func TestDARCDispatchRespectsReservation(t *testing.T) {
	mixes := []workload.Mix{
		workload.HighBimodal(),
		workload.ExtremeBimodal(),
		workload.TPCC(),
	}
	for _, mix := range mixes {
		mix := mix
		t.Run(mix.Name, func(t *testing.T) {
			cfg := darc.DefaultConfig(8)
			cfg.MinWindowSamples = 1000
			auditor := &reservationAuditor{DARC: NewDARC(cfg, len(mix.Types), 0), t: t}
			_, err := cluster.Run(cluster.Config{
				Workers:        8,
				Mix:            mix,
				LoadFraction:   0.85,
				Duration:       150 * time.Millisecond,
				WarmupFraction: 0.1,
				Seed:           21,
				NewPolicy:      func() cluster.Policy { return auditor },
			})
			if err != nil {
				t.Fatal(err)
			}
			if auditor.checked == 0 {
				t.Fatal("no post-reservation completions audited")
			}
			if auditor.violations > 0 {
				t.Fatalf("%d reservation violations out of %d audited", auditor.violations, auditor.checked)
			}
		})
	}
}

// TestDARCSpillwayExclusivity checks the unknown-request contract on a
// machine with a spillway: unknown requests complete, and only on
// spillway cores.
func TestDARCSpillwayExclusivity(t *testing.T) {
	cfg := darc.DefaultConfig(4)
	cfg.MinWindowSamples = 200
	type seen struct {
		worker int
		typ    int
	}
	var unknownRuns []seen
	p := NewDARC(cfg, 2, 0)
	aud := &unknownAuditor{DARC: p, record: func(w, typ int) {
		if typ < 0 || typ >= 2 {
			unknownRuns = append(unknownRuns, seen{worker: w, typ: typ})
		}
	}}
	s := newHarness(4, 2, aud)
	// Warm up to install a reservation, then inject unknowns.
	var at time.Duration
	for i := 0; i < 300; i++ {
		s.at(at, i%2, time.Duration(1+20*(i%2))*time.Microsecond)
		at += 30 * time.Microsecond
	}
	for i := 0; i < 10; i++ {
		s.at(at+time.Duration(i)*50*time.Microsecond, 99, 5*time.Microsecond)
	}
	s.s.Run()
	if p.Controller().Reservation() == nil {
		t.Fatal("no reservation installed")
	}
	if len(unknownRuns) != 10 {
		t.Fatalf("unknown completions %d, want 10", len(unknownRuns))
	}
	spill := p.Controller().Reservation().SpillwayWorkers
	for _, u := range unknownRuns {
		ok := false
		for _, sw := range spill {
			if u.worker == sw {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("unknown request ran on worker %d, spillway is %v", u.worker, spill)
		}
	}
}

type unknownAuditor struct {
	*DARC
	record func(worker, typ int)
}

func (a *unknownAuditor) Completed(w *cluster.Worker, r *cluster.Request) {
	// Only audit after the reservation exists (startup c-FCFS may run
	// anything anywhere).
	if a.Controller().Reservation() != nil {
		a.record(w.ID, r.Type)
	}
	a.DARC.Completed(w, r)
}
