package policy

import (
	"repro/internal/cluster"
	"repro/internal/rng"
)

// Relabel wraps another policy and overwrites every arriving request's
// type with a uniformly random one — the paper's Figure 9 "broken
// request classifier" experiment. With a random classifier each typed
// queue receives an even mixture of types, so DARC degenerates to
// c-FCFS.
type Relabel struct {
	Inner    cluster.Policy
	NumTypes int
	R        *rng.RNG
}

// Name implements cluster.Policy.
func (p *Relabel) Name() string { return p.Inner.Name() + "-random" }

// Traits implements TraitsProvider (delegates when possible).
func (p *Relabel) Traits() Traits {
	if tp, ok := p.Inner.(TraitsProvider); ok {
		t := tp.Traits()
		t.AppAware = false // the classification signal is destroyed
		return t
	}
	return Traits{}
}

// Init implements cluster.Policy.
func (p *Relabel) Init(m *cluster.Machine) { p.Inner.Init(m) }

// Arrive implements cluster.Policy.
func (p *Relabel) Arrive(r *cluster.Request) {
	r.Type = p.R.Intn(p.NumTypes)
	p.Inner.Arrive(r)
}

// WorkerFree implements cluster.Policy.
func (p *Relabel) WorkerFree(w *cluster.Worker) { p.Inner.WorkerFree(w) }

// Completed implements cluster.CompletionObserver when the inner
// policy does.
func (p *Relabel) Completed(w *cluster.Worker, r *cluster.Request) {
	if co, ok := p.Inner.(cluster.CompletionObserver); ok {
		co.Completed(w, r)
	}
}
