package policy

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/rng"
)

// WorkStealing models Shenango/ZygOS: RSS steers arrivals to
// per-worker queues and idle workers steal from backlogged peers,
// approximating c-FCFS at the cost of cross-core coordination. The
// paper's "Shenango c-FCFS" baseline is this policy.
type WorkStealing struct {
	m      *cluster.Machine
	queues []cluster.FIFO
	r      *rng.RNG
	cap    int
	// StealCost is the cross-worker coordination charge per steal.
	StealCost time.Duration
	steals    uint64
}

// NewWorkStealing builds the policy. stealCost models the cross-core
// handoff (Shenango's steal path costs on the order of 100ns).
func NewWorkStealing(r *rng.RNG, queueCap int, stealCost time.Duration) *WorkStealing {
	return &WorkStealing{r: r, cap: normalizeCap(queueCap), StealCost: stealCost}
}

// Name implements cluster.Policy.
func (p *WorkStealing) Name() string { return "work-stealing" }

// Traits implements TraitsProvider.
func (p *WorkStealing) Traits() Traits {
	return Traits{AppAware: false, TypedQueues: false, WorkConserving: true, Preemptive: false}
}

// Init implements cluster.Policy.
func (p *WorkStealing) Init(m *cluster.Machine) {
	p.m = m
	p.queues = make([]cluster.FIFO, len(m.Workers))
	for i := range p.queues {
		p.queues[i].Cap = p.cap
	}
}

// Steals reports how many requests were stolen across workers.
func (p *WorkStealing) Steals() uint64 { return p.steals }

// Arrive implements cluster.Policy: RSS steering, then — because idle
// workers continuously poll for stealable work — an idle worker picks
// the request up immediately if the home worker is busy.
func (p *WorkStealing) Arrive(r *cluster.Request) {
	home := p.r.Intn(len(p.queues))
	w := p.m.Workers[home]
	if w.Idle() && p.queues[home].Empty() {
		p.m.Run(w, r)
		return
	}
	pushOrDrop(p.m, &p.queues[home], r)
	// A spinning idle worker steals the freshly queued request.
	for _, other := range p.m.Workers {
		if other.ID != home && other.Idle() {
			p.stealInto(other)
			return
		}
	}
}

// WorkerFree implements cluster.Policy.
func (p *WorkStealing) WorkerFree(w *cluster.Worker) {
	if r := p.queues[w.ID].Pop(); r != nil {
		p.m.Run(w, r)
		return
	}
	p.stealInto(w)
}

// stealInto makes idle worker w take work from a backlogged victim,
// paying StealCost before the request runs.
func (p *WorkStealing) stealInto(w *cluster.Worker) {
	victim := -1
	start := p.r.Intn(len(p.queues))
	for i := 0; i < len(p.queues); i++ {
		idx := (start + i) % len(p.queues)
		if idx != w.ID && !p.queues[idx].Empty() {
			victim = idx
			break
		}
	}
	if victim < 0 {
		return
	}
	r := p.queues[victim].Pop()
	p.steals++
	// Overhead occupies w for the steal window, so no other dispatch
	// can race onto it; the stolen request then runs.
	p.m.Overhead(w, p.StealCost, func() {
		p.m.Run(w, r)
	})
}
