package policy

import (
	"time"

	"repro/internal/cluster"
)

// TSConfig parameterises the Shinjuku-style preemptive time-sharing
// policies.
type TSConfig struct {
	// Quantum is the preemption interval (Shinjuku: 5µs for bimodal
	// workloads, 10-15µs for milder ones).
	Quantum time.Duration
	// PreemptCost is charged to the worker at every actual preemption
	// (the paper measured ≈1µs per interrupt, ~2000 cycles at 2GHz).
	PreemptCost time.Duration
	// QueueCap bounds each queue (0 → DefaultQueueCap, negative →
	// unbounded). Shinjuku drops packets under overload.
	QueueCap int
}

func (c *TSConfig) fill() {
	if c.Quantum <= 0 {
		c.Quantum = 5 * time.Microsecond
	}
	c.QueueCap = normalizeCap(c.QueueCap)
}

// TSSingleQueue is Shinjuku's single-queue policy: one central queue,
// a fixed preemption quantum, preempted requests re-enqueued at the
// tail. Used by the paper for Extreme Bimodal.
type TSSingleQueue struct {
	cfg         TSConfig
	m           *cluster.Machine
	queue       cluster.FIFO
	preemptions uint64
}

// NewTSSingleQueue builds the policy.
func NewTSSingleQueue(cfg TSConfig) *TSSingleQueue {
	cfg.fill()
	return &TSSingleQueue{cfg: cfg, queue: cluster.FIFO{Cap: cfg.QueueCap}}
}

// Name implements cluster.Policy.
func (p *TSSingleQueue) Name() string { return "TS-single" }

// Traits implements TraitsProvider.
func (p *TSSingleQueue) Traits() Traits {
	return Traits{AppAware: false, TypedQueues: false, WorkConserving: true, Preemptive: true}
}

// Init implements cluster.Policy.
func (p *TSSingleQueue) Init(m *cluster.Machine) { p.m = m }

// Preemptions reports how many interrupts actually fired.
func (p *TSSingleQueue) Preemptions() uint64 { return p.preemptions }

// Arrive implements cluster.Policy.
func (p *TSSingleQueue) Arrive(r *cluster.Request) {
	for _, w := range p.m.Workers {
		if w.Idle() {
			p.m.RunSlice(w, r, p.cfg.Quantum, p.sliceEnd)
			return
		}
	}
	pushOrDrop(p.m, &p.queue, r)
}

// WorkerFree implements cluster.Policy.
func (p *TSSingleQueue) WorkerFree(w *cluster.Worker) {
	if r := p.queue.Pop(); r != nil {
		p.m.RunSlice(w, r, p.cfg.Quantum, p.sliceEnd)
	}
}

// sliceEnd fires when a request exhausts its quantum unfinished. If no
// other request waits, the request resumes for another quantum free of
// charge (Shinjuku's dispatcher only interrupts when queued work
// exists); otherwise the worker pays the preemption cost, the request
// goes to the tail, and the worker takes the head.
func (p *TSSingleQueue) sliceEnd(w *cluster.Worker, r *cluster.Request) {
	if p.queue.Empty() {
		p.m.RunSlice(w, r, p.cfg.Quantum, p.sliceEnd)
		return
	}
	r.Preemptions++
	p.preemptions++
	p.m.Overhead(w, p.cfg.PreemptCost, func() {
		// Re-enqueue at the tail; an overflowing tail re-enqueue would
		// lose an admitted request, so bypass the cap.
		if !p.queue.Push(r) {
			p.queue.PushFront(r)
		}
		p.WorkerFree(w)
	})
}
