package policy

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/darc"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/workload"
)

func TestDARCStaticReservesForShorts(t *testing.T) {
	means := []time.Duration{time.Microsecond, 100 * time.Microsecond}
	p := NewDARCStatic(means, 1, 0)
	h := newHarness(2, 2, p)
	// Fill the machine with longs; worker 0 is reserved so one long
	// must wait even though worker 0 idles.
	h.at(0, 1, 100*time.Microsecond)
	h.at(0, 1, 100*time.Microsecond)
	// A short arriving now runs immediately on the reserved core.
	h.at(10*time.Microsecond, 0, time.Microsecond)
	h.s.Run()
	short := h.rec.Type(0).Latency.QuantileDuration(1)
	if short != time.Microsecond {
		t.Fatalf("short latency %v, want 1µs (reserved core)", short)
	}
	// The second long waited for the first (only worker 1 is eligible).
	long999 := h.rec.Type(1).Latency.QuantileDuration(1)
	if long999 < 200*time.Microsecond {
		t.Fatalf("long latency %v: reservation not enforced", long999)
	}
}

func TestDARCStaticZeroIsFixedPriority(t *testing.T) {
	means := []time.Duration{time.Microsecond, 100 * time.Microsecond}
	p := NewDARCStatic(means, 0, 0)
	if !p.Traits().WorkConserving {
		t.Fatal("DARC-static(0) should be work conserving")
	}
	h := newHarness(1, 2, p)
	h.at(0, 1, 100*time.Microsecond)
	h.at(time.Microsecond, 1, 100*time.Microsecond)
	h.at(2*time.Microsecond, 0, time.Microsecond)
	h.s.Run()
	// Short still jumps the long queue (priority), but had to wait for
	// the running long (no reservation).
	short := h.rec.Type(0).Latency.QuantileDuration(1)
	if short < 90*time.Microsecond || short > 110*time.Microsecond {
		t.Fatalf("short latency %v, want ~98-100µs (blocked once)", short)
	}
}

func TestDARCStaticRejectsBadReserved(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range reservation did not panic at Init")
		}
	}()
	p := NewDARCStatic([]time.Duration{1}, 5, 0)
	newHarness(2, 1, p)
}

func newDARCHarness(workers, types, minSamples int) (*harness, *DARC) {
	cfg := darc.DefaultConfig(workers)
	cfg.MinWindowSamples = uint64(minSamples)
	p := NewDARC(cfg, types, 0)
	h := newHarness(workers, types, p)
	return h, p
}

func TestDARCStartsInCFCFS(t *testing.T) {
	h, p := newDARCHarness(2, 2, 1000)
	// Before any reservation, behaves as c-FCFS: three requests, two
	// workers, third waits for the first to finish.
	h.at(0, 0, 10*time.Microsecond)
	h.at(0, 1, 10*time.Microsecond)
	h.at(0, 0, 10*time.Microsecond)
	h.s.Run()
	if p.Controller().Reservation() != nil {
		t.Fatal("reservation installed below min samples")
	}
	if h.s.Now() != 20*time.Microsecond {
		t.Fatalf("makespan %v, want 20µs (work conserving startup)", h.s.Now())
	}
}

func TestDARCInstallsReservationAndProtectsShorts(t *testing.T) {
	h, p := newDARCHarness(2, 2, 100)
	// Warm up the profiler with a balanced stream (c-FCFS phase).
	var at time.Duration
	for i := 0; i < 120; i++ {
		h.at(at, 0, time.Microsecond)
		h.at(at, 1, 20*time.Microsecond)
		at += 50 * time.Microsecond
	}
	h.s.Run()
	res := p.Controller().Reservation()
	if res == nil {
		t.Fatal("no reservation after warmup stream")
	}
	if got := len(res.Groups); got != 2 {
		t.Fatalf("%d groups", got)
	}
	// Shorts reserved ≥1 core; longs cannot use it.
	if len(res.Groups[0].Reserved) < 1 {
		t.Fatal("short group has no reserved core")
	}

	// Now saturate with longs and check a short is not blocked.
	start := h.s.Now()
	h.at(start+time.Microsecond, 1, 100*time.Microsecond)
	h.at(start+time.Microsecond, 1, 100*time.Microsecond)
	h.at(start+2*time.Microsecond, 1, 100*time.Microsecond)
	h.at(start+10*time.Microsecond, 0, time.Microsecond)
	before := h.rec.Type(0).Latency.Count()
	h.s.Run()
	if h.rec.Type(0).Latency.Count() != before+1 {
		t.Fatal("short did not complete")
	}
	// The short ran on the reserved core immediately: its max latency
	// in this tail phase is ~1µs. Check the overall p100 is small for
	// the final short (we can't isolate it, so check max stayed tiny
	// relative to 100µs longs).
	if got := h.rec.Type(0).Latency.QuantileDuration(1); got > 5*time.Microsecond {
		t.Fatalf("short p100 %v: reservation did not protect it", got)
	}
}

func TestDARCUnknownUsesSpillway(t *testing.T) {
	h, p := newDARCHarness(3, 2, 10)
	for i := 0; i < 12; i++ {
		h.at(time.Duration(i)*10*time.Microsecond, i%2, 5*time.Microsecond)
	}
	h.s.Run()
	if p.Controller().Reservation() == nil {
		t.Fatal("no reservation installed")
	}
	// An unknown-typed request (type index out of range) must complete
	// on the spillway core.
	h.at(h.s.Now()+time.Microsecond, 99, 2*time.Microsecond)
	before := h.m.Completed()
	h.s.Run()
	if h.m.Completed() != before+1 {
		t.Fatal("unknown request starved")
	}
}

func TestDARCQueueCapSheds(t *testing.T) {
	cfg := darc.DefaultConfig(1)
	cfg.MinWindowSamples = 1000000 // stay in startup mode
	cfg.Spillway = 0               // a 1-core machine has no spare spillway
	p := NewDARC(cfg, 1, 2)
	h := newHarness(1, 1, p)
	for i := 0; i < 6; i++ {
		h.at(0, 0, 10*time.Microsecond)
	}
	h.s.Run()
	if h.m.Dropped() != 3 {
		t.Fatalf("dropped %d, want 3 (1 running + 2 queued admitted)", h.m.Dropped())
	}
}

// TestDARCEndToEndBeatsCFCFSOnHighBimodal is the paper's §5.2 claim in
// miniature: at high load on High Bimodal, DARC's overall p99.9
// slowdown beats c-FCFS by a wide margin.
func TestDARCEndToEndBeatsCFCFSOnHighBimodal(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	mix := workload.HighBimodal()
	run := func(newPolicy func() cluster.Policy) float64 {
		res, err := cluster.Run(cluster.Config{
			Workers:        14,
			Mix:            mix,
			LoadFraction:   0.8,
			Duration:       300 * time.Millisecond,
			WarmupFraction: 0.1,
			Seed:           7,
			NewPolicy:      newPolicy,
		})
		if err != nil {
			t.Fatal(err)
		}
		return metrics.SlowdownAt(res.Recorder.All(), 0.999)
	}
	cfcfs := run(func() cluster.Policy { return NewCFCFS(0) })
	darcSlow := run(func() cluster.Policy {
		cfg := darc.DefaultConfig(14)
		cfg.MinWindowSamples = 5000
		return NewDARC(cfg, len(mix.Types), 0)
	})
	if darcSlow*2 > cfcfs {
		t.Fatalf("DARC slowdown %.1f not clearly better than c-FCFS %.1f", darcSlow, cfcfs)
	}
}

// TestDARCRandomClassifierConvergesToCFCFS reproduces Figure 9's
// argument in miniature: typing requests uniformly at random destroys
// the reservation benefit and behaves like c-FCFS.
func TestDARCRandomClassifierConvergesToCFCFS(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	mix := workload.HighBimodal()
	shuffle := rng.New(99)
	run := func(randomize bool) float64 {
		res, err := cluster.Run(cluster.Config{
			Workers:        8,
			Mix:            mix,
			LoadFraction:   0.7,
			Duration:       200 * time.Millisecond,
			WarmupFraction: 0.1,
			Seed:           11,
			NewPolicy: func() cluster.Policy {
				cfg := darc.DefaultConfig(8)
				cfg.MinWindowSamples = 5000
				inner := NewDARC(cfg, len(mix.Types), 0)
				if !randomize {
					return inner
				}
				return &relabelPolicy{inner: inner, types: len(mix.Types), r: shuffle}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return metrics.SlowdownAt(res.Recorder.All(), 0.999)
	}
	good := run(false)
	broken := run(true)
	if broken < good {
		t.Fatalf("random classifier (%.1f) outperformed correct one (%.1f)", broken, good)
	}
}

// relabelPolicy simulates a broken classifier by assigning a uniformly
// random type to each arriving request before handing it to DARC.
type relabelPolicy struct {
	inner *DARC
	types int
	r     *rng.RNG
}

func (p *relabelPolicy) Name() string                 { return "DARC-random" }
func (p *relabelPolicy) Init(m *cluster.Machine)      { p.inner.Init(m) }
func (p *relabelPolicy) WorkerFree(w *cluster.Worker) { p.inner.WorkerFree(w) }
func (p *relabelPolicy) Completed(w *cluster.Worker, r *cluster.Request) {
	p.inner.Completed(w, r)
}
func (p *relabelPolicy) Arrive(r *cluster.Request) {
	r.Type = p.r.Intn(p.types)
	p.inner.Arrive(r)
}
