// Package workload defines request-type mixes and open-loop arrival
// processes for both the simulator and the live runtime. The
// predefined mixes are the paper's Table 3 (High/Extreme Bimodal),
// Table 4 (TPC-C) and §5.4.4 (RocksDB) workloads.
package workload

import (
	"fmt"
	"time"

	"repro/internal/rng"
)

// TypeSpec describes one request type in a mix.
type TypeSpec struct {
	// Name identifies the type in reports ("GET", "Payment", ...).
	Name string
	// Ratio is the type's occurrence share of the mix; ratios across a
	// mix must sum to ~1.
	Ratio float64
	// Service is the service-time distribution. The paper's synthetic
	// workloads use fixed (degenerate) service times.
	Service rng.Dist
}

// Mix is a complete workload: a named set of request types.
type Mix struct {
	Name  string
	Types []TypeSpec
}

// Validate checks that the mix is well formed: non-empty, positive
// ratios summing to 1 (within tolerance), and positive mean service
// times.
func (m Mix) Validate() error {
	if len(m.Types) == 0 {
		return fmt.Errorf("workload %q: no request types", m.Name)
	}
	var sum float64
	for i, t := range m.Types {
		if t.Ratio <= 0 {
			return fmt.Errorf("workload %q: type %d (%s) has non-positive ratio %g", m.Name, i, t.Name, t.Ratio)
		}
		if t.Service == nil {
			return fmt.Errorf("workload %q: type %d (%s) has no service distribution", m.Name, i, t.Name)
		}
		if t.Service.Mean() <= 0 {
			return fmt.Errorf("workload %q: type %d (%s) has non-positive mean service", m.Name, i, t.Name)
		}
		sum += t.Ratio
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("workload %q: ratios sum to %g, want 1", m.Name, sum)
	}
	return nil
}

// MeanService reports the mix's average service time, Σ ratio·mean.
func (m Mix) MeanService() time.Duration {
	var mean float64
	for _, t := range m.Types {
		mean += t.Ratio * float64(t.Service.Mean())
	}
	return time.Duration(mean)
}

// PeakLoad reports the saturation arrival rate (requests/second) for a
// machine with the given number of workers: W / E[S].
func (m Mix) PeakLoad(workers int) float64 {
	mean := m.MeanService()
	if mean <= 0 {
		return 0
	}
	return float64(workers) / mean.Seconds()
}

// Dispersion reports the ratio between the largest and smallest mean
// per-type service time, the paper's headline workload property.
func (m Mix) Dispersion() float64 {
	if len(m.Types) == 0 {
		return 0
	}
	lo, hi := m.Types[0].Service.Mean(), m.Types[0].Service.Mean()
	for _, t := range m.Types[1:] {
		if s := t.Service.Mean(); s < lo {
			lo = s
		} else if s > hi {
			hi = s
		}
	}
	if lo <= 0 {
		return 0
	}
	return float64(hi) / float64(lo)
}

// TypeNames returns the type names in index order.
func (m Mix) TypeNames() []string {
	names := make([]string, len(m.Types))
	for i, t := range m.Types {
		names[i] = t.Name
	}
	return names
}

// IndexOf returns the index of the named type, or -1.
func (m Mix) IndexOf(name string) int {
	for i, t := range m.Types {
		if t.Name == name {
			return i
		}
	}
	return -1
}

// HighBimodal is the paper's Table 3 workload with 100x dispersion:
// 50% 1µs requests and 50% 100µs requests.
func HighBimodal() Mix {
	return Mix{
		Name: "HighBimodal",
		Types: []TypeSpec{
			{Name: "short", Ratio: 0.5, Service: rng.Fixed(1 * time.Microsecond)},
			{Name: "long", Ratio: 0.5, Service: rng.Fixed(100 * time.Microsecond)},
		},
	}
}

// ExtremeBimodal is the paper's Table 3 workload with 1000x dispersion:
// 99.5% 0.5µs requests and 0.5% 500µs requests.
func ExtremeBimodal() Mix {
	return Mix{
		Name: "ExtremeBimodal",
		Types: []TypeSpec{
			{Name: "short", Ratio: 0.995, Service: rng.Fixed(500 * time.Nanosecond)},
			{Name: "long", Ratio: 0.005, Service: rng.Fixed(500 * time.Microsecond)},
		},
	}
}

// TPCC is the paper's Table 4 workload: the five TPC-C transactions
// with service times profiled on an in-memory database.
func TPCC() Mix {
	return Mix{
		Name: "TPC-C",
		Types: []TypeSpec{
			{Name: "Payment", Ratio: 0.44, Service: rng.Fixed(5700 * time.Nanosecond)},
			{Name: "OrderStatus", Ratio: 0.04, Service: rng.Fixed(6 * time.Microsecond)},
			{Name: "NewOrder", Ratio: 0.44, Service: rng.Fixed(20 * time.Microsecond)},
			{Name: "Delivery", Ratio: 0.04, Service: rng.Fixed(88 * time.Microsecond)},
			{Name: "StockLevel", Ratio: 0.04, Service: rng.Fixed(100 * time.Microsecond)},
		},
	}
}

// RocksDB is the paper's §5.4.4 workload: 50% GETs (1.5µs) and 50%
// SCANs over 5000 keys (635µs), a 420x dispersion.
func RocksDB() Mix {
	return Mix{
		Name: "RocksDB",
		Types: []TypeSpec{
			{Name: "GET", Ratio: 0.5, Service: rng.Fixed(1500 * time.Nanosecond)},
			{Name: "SCAN", Ratio: 0.5, Service: rng.Fixed(635 * time.Microsecond)},
		},
	}
}

// TwoType builds a generic two-type mix, used by the workload-change
// experiment (Figure 7) where the two types swap roles across phases.
func TwoType(nameA string, serviceA time.Duration, ratioA float64, nameB string, serviceB time.Duration) Mix {
	return Mix{
		Name: fmt.Sprintf("%s/%s", nameA, nameB),
		Types: []TypeSpec{
			{Name: nameA, Ratio: ratioA, Service: rng.Fixed(serviceA)},
			{Name: nameB, Ratio: 1 - ratioA, Service: rng.Fixed(serviceB)},
		},
	}
}
