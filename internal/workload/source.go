package workload

import (
	"fmt"
	"time"

	"repro/internal/rng"
)

// Arrival is one generated request: its type, its sampled service
// demand, and the gap since the previous arrival.
type Arrival struct {
	Gap     time.Duration
	Type    int
	Service time.Duration
}

// Source is an open-loop Poisson arrival process over a mix: requests
// arrive with exponential inter-arrival gaps at a configured rate
// regardless of how the server keeps up (the paper's client model).
// Not safe for concurrent use.
type Source struct {
	mix  Mix
	rate float64 // requests per second
	rng  *rng.RNG
	cum  []float64
}

// NewSource creates a source over mix at the given arrival rate
// (requests/second), drawing randomness from r.
func NewSource(mix Mix, ratePerSec float64, r *rng.RNG) (*Source, error) {
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	if ratePerSec <= 0 {
		return nil, fmt.Errorf("workload: non-positive arrival rate %g", ratePerSec)
	}
	s := &Source{mix: mix, rate: ratePerSec, rng: r}
	s.buildCum()
	return s, nil
}

func (s *Source) buildCum() {
	s.cum = make([]float64, len(s.mix.Types))
	var total float64
	for i, t := range s.mix.Types {
		total += t.Ratio
		s.cum[i] = total
	}
}

// Mix returns the source's current mix.
func (s *Source) Mix() Mix { return s.mix }

// Rate returns the source's current arrival rate in requests/second.
func (s *Source) Rate() float64 { return s.rate }

// SetRate changes the arrival rate for subsequent arrivals.
func (s *Source) SetRate(ratePerSec float64) {
	if ratePerSec > 0 {
		s.rate = ratePerSec
	}
}

// SetMix swaps the workload composition for subsequent arrivals, used
// by phase schedules. The new mix must have the same number of types
// (types keep their identity across phases).
func (s *Source) SetMix(mix Mix) error {
	if err := mix.Validate(); err != nil {
		return err
	}
	if len(mix.Types) != len(s.mix.Types) {
		return fmt.Errorf("workload: phase change from %d to %d types not supported", len(s.mix.Types), len(mix.Types))
	}
	s.mix = mix
	s.buildCum()
	return nil
}

// Next generates the next arrival.
func (s *Source) Next() Arrival {
	gapSec := s.rng.Exp(1 / s.rate)
	u := s.rng.Float64() * s.cum[len(s.cum)-1]
	typ := len(s.cum) - 1
	for i, c := range s.cum {
		if u < c {
			typ = i
			break
		}
	}
	return Arrival{
		Gap:     time.Duration(gapSec * float64(time.Second)),
		Type:    typ,
		Service: s.mix.Types[typ].Service.Sample(s.rng),
	}
}

// Phase is one segment of a phased workload: a mix, an arrival rate
// and how long the segment lasts.
type Phase struct {
	Mix      Mix
	Rate     float64 // requests per second
	Duration time.Duration
}

// Schedule is a sequence of phases, used by the workload-change
// experiment. The final phase runs until the experiment horizon.
type Schedule struct {
	Phases []Phase
}

// Validate checks every phase.
func (sc Schedule) Validate() error {
	if len(sc.Phases) == 0 {
		return fmt.Errorf("workload: empty schedule")
	}
	n := len(sc.Phases[0].Mix.Types)
	for i, p := range sc.Phases {
		if err := p.Mix.Validate(); err != nil {
			return fmt.Errorf("phase %d: %w", i, err)
		}
		if len(p.Mix.Types) != n {
			return fmt.Errorf("phase %d: has %d types, phase 0 has %d", i, len(p.Mix.Types), n)
		}
		if p.Rate <= 0 {
			return fmt.Errorf("phase %d: non-positive rate", i)
		}
		if i < len(sc.Phases)-1 && p.Duration <= 0 {
			return fmt.Errorf("phase %d: non-positive duration", i)
		}
	}
	return nil
}

// TotalDuration reports the sum of phase durations.
func (sc Schedule) TotalDuration() time.Duration {
	var d time.Duration
	for _, p := range sc.Phases {
		d += p.Duration
	}
	return d
}

// PhaseAt returns the phase index active at the given instant from the
// schedule start.
func (sc Schedule) PhaseAt(t time.Duration) int {
	var acc time.Duration
	for i, p := range sc.Phases {
		acc += p.Duration
		if t < acc {
			return i
		}
	}
	return len(sc.Phases) - 1
}
