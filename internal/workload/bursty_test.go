package workload

import (
	"math"
	"testing"
	"time"

	"repro/internal/rng"
)

func TestBurstySourceValidation(t *testing.T) {
	mix := HighBimodal()
	if _, err := NewBurstySource(mix, 1000, 1.0, time.Millisecond, time.Millisecond, rng.New(1)); err == nil {
		t.Fatal("burst factor 1 accepted")
	}
	if _, err := NewBurstySource(mix, 1000, 4, 0, time.Millisecond, rng.New(1)); err == nil {
		t.Fatal("zero on-phase accepted")
	}
	if _, err := NewBurstySource(mix, 1000, 4, time.Millisecond, 0, rng.New(1)); err == nil {
		t.Fatal("zero off-phase accepted")
	}
	if _, err := NewBurstySource(Mix{}, 1000, 4, time.Millisecond, time.Millisecond, rng.New(1)); err == nil {
		t.Fatal("invalid mix accepted")
	}
}

func TestBurstySourceEffectiveRate(t *testing.T) {
	mix := HighBimodal()
	b, err := NewBurstySource(mix, 10000, 4, 5*time.Millisecond, 15*time.Millisecond, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// (4·base·5 + base/4·15) / 20 = base·(20+3.75)/20 = 1.1875·base.
	want := 10000 * (4*5 + 0.25*15) / 20
	if math.Abs(b.EffectiveRate()-want) > 1 {
		t.Fatalf("effective rate %g, want %g", b.EffectiveRate(), want)
	}
}

func TestBurstySourceEmpiricalRate(t *testing.T) {
	mix := HighBimodal()
	base := 100000.0
	b, err := NewBurstySource(mix, base, 4, 5*time.Millisecond, 15*time.Millisecond, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	var elapsed time.Duration
	n := 0
	for elapsed < 4*time.Second {
		gap, typ, svc := b.Next()
		if gap < 0 || svc <= 0 || typ < 0 || typ >= len(mix.Types) {
			t.Fatalf("bad arrival gap=%v typ=%d svc=%v", gap, typ, svc)
		}
		elapsed += gap
		n++
	}
	got := float64(n) / elapsed.Seconds()
	want := b.EffectiveRate()
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("empirical rate %.0f, want ~%.0f", got, want)
	}
}

func TestBurstySourceBurstiness(t *testing.T) {
	// The MMPP must produce materially higher variance in per-window
	// counts than plain Poisson at the same average rate.
	mix := HighBimodal()
	b, err := NewBurstySource(mix, 50000, 4, 5*time.Millisecond, 15*time.Millisecond, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	window := 2 * time.Millisecond
	counts := countPerWindow(t, b.Next, window, 500)
	poisson, err := NewSource(mix, b.EffectiveRate(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	pCounts := countPerWindow(t, func() (time.Duration, int, time.Duration) {
		a := poisson.Next()
		return a.Gap, a.Type, a.Service
	}, window, 500)
	if burstVar(counts) < 2*burstVar(pCounts) {
		t.Fatalf("MMPP window variance %.1f not clearly above Poisson %.1f",
			burstVar(counts), burstVar(pCounts))
	}
}

func countPerWindow(t *testing.T, next func() (time.Duration, int, time.Duration), window time.Duration, windows int) []float64 {
	t.Helper()
	counts := make([]float64, windows)
	var at time.Duration
	for {
		gap, _, _ := next()
		at += gap
		idx := int(at / window)
		if idx >= windows {
			return counts
		}
		counts[idx]++
	}
}

func burstVar(xs []float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	for _, x := range xs {
		sq += (x - mean) * (x - mean)
	}
	return sq / float64(len(xs))
}

func TestSourceMixAccessor(t *testing.T) {
	src, _ := NewSource(HighBimodal(), 1000, rng.New(6))
	if src.Mix().Name != "HighBimodal" {
		t.Fatalf("mix %q", src.Mix().Name)
	}
}

func TestPeakLoadZeroMean(t *testing.T) {
	if (Mix{}).PeakLoad(4) != 0 {
		t.Fatal("empty mix peak not zero")
	}
	if (Mix{}).Dispersion() != 0 {
		t.Fatal("empty mix dispersion not zero")
	}
}
