package workload

import (
	"math"
	"testing"
	"time"

	"repro/internal/rng"
)

func TestPredefinedMixesValidate(t *testing.T) {
	for _, mix := range []Mix{HighBimodal(), ExtremeBimodal(), TPCC(), RocksDB()} {
		if err := mix.Validate(); err != nil {
			t.Errorf("%s: %v", mix.Name, err)
		}
	}
}

func TestHighBimodalTable3(t *testing.T) {
	m := HighBimodal()
	if got := m.MeanService(); got != 50500*time.Nanosecond {
		t.Fatalf("mean %v, want 50.5µs", got)
	}
	if got := m.Dispersion(); got != 100 {
		t.Fatalf("dispersion %g, want 100x", got)
	}
}

func TestExtremeBimodalTable3(t *testing.T) {
	m := ExtremeBimodal()
	mean := 0.995*500 + 0.005*500000 // 2997.5ns
	want := time.Duration(mean)
	if got := m.MeanService(); got != want {
		t.Fatalf("mean %v, want %v", got, want)
	}
	if got := m.Dispersion(); got != 1000 {
		t.Fatalf("dispersion %g, want 1000x", got)
	}
	// §2: peak for 16 workers is ~5.3 Mrps.
	peak := m.PeakLoad(16)
	if peak < 5.2e6 || peak > 5.5e6 {
		t.Fatalf("16-worker peak %g rps, want ~5.34M", peak)
	}
}

func TestTPCCTable4(t *testing.T) {
	m := TPCC()
	if len(m.Types) != 5 {
		t.Fatalf("TPC-C has %d types", len(m.Types))
	}
	// Dispersion at most 17.5x per the paper.
	if got := m.Dispersion(); math.Abs(got-100.0/5.7) > 0.01 {
		t.Fatalf("dispersion %g, want ~17.5x", got)
	}
	if m.IndexOf("Payment") != 0 || m.IndexOf("StockLevel") != 4 {
		t.Fatal("TPC-C type order changed")
	}
	if m.IndexOf("nope") != -1 {
		t.Fatal("IndexOf missing type")
	}
}

func TestRocksDBDispersion(t *testing.T) {
	m := RocksDB()
	got := m.Dispersion()
	if math.Abs(got-635000.0/1500) > 0.5 {
		t.Fatalf("dispersion %g, want ~423x", got)
	}
}

func TestValidateRejectsBadMixes(t *testing.T) {
	cases := []Mix{
		{Name: "empty"},
		{Name: "zero-ratio", Types: []TypeSpec{{Name: "a", Ratio: 0, Service: rng.Fixed(1)}}},
		{Name: "no-dist", Types: []TypeSpec{{Name: "a", Ratio: 1}}},
		{Name: "bad-sum", Types: []TypeSpec{{Name: "a", Ratio: 0.4, Service: rng.Fixed(1)}}},
		{Name: "zero-mean", Types: []TypeSpec{{Name: "a", Ratio: 1, Service: rng.Fixed(0)}}},
	}
	for _, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("%s: accepted", m.Name)
		}
	}
}

func TestSourceRatios(t *testing.T) {
	m := ExtremeBimodal()
	src, err := NewSource(m, 1e6, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(m.Types))
	n := 200000
	for i := 0; i < n; i++ {
		a := src.Next()
		counts[a.Type]++
		if a.Service != m.Types[a.Type].Service.Mean() {
			t.Fatalf("fixed service mismatch: %v", a.Service)
		}
		if a.Gap < 0 {
			t.Fatalf("negative gap %v", a.Gap)
		}
	}
	shortFrac := float64(counts[0]) / float64(n)
	if math.Abs(shortFrac-0.995) > 0.002 {
		t.Fatalf("short fraction %g, want ~0.995", shortFrac)
	}
}

func TestSourcePoissonRate(t *testing.T) {
	src, err := NewSource(HighBimodal(), 1e6, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	var total time.Duration
	n := 100000
	for i := 0; i < n; i++ {
		total += src.Next().Gap
	}
	gotRate := float64(n) / total.Seconds()
	if math.Abs(gotRate-1e6)/1e6 > 0.02 {
		t.Fatalf("empirical rate %g, want ~1e6", gotRate)
	}
}

func TestSourceSetRate(t *testing.T) {
	src, _ := NewSource(HighBimodal(), 1e6, rng.New(3))
	src.SetRate(2e6)
	if src.Rate() != 2e6 {
		t.Fatalf("rate %g", src.Rate())
	}
	src.SetRate(-1) // ignored
	if src.Rate() != 2e6 {
		t.Fatal("negative rate accepted")
	}
}

func TestSourceSetMix(t *testing.T) {
	src, _ := NewSource(HighBimodal(), 1e6, rng.New(4))
	if err := src.SetMix(ExtremeBimodal()); err != nil {
		t.Fatal(err)
	}
	if err := src.SetMix(TPCC()); err == nil {
		t.Fatal("type-count change accepted")
	}
}

func TestSourceRejectsBadInput(t *testing.T) {
	if _, err := NewSource(Mix{}, 1e6, rng.New(1)); err == nil {
		t.Fatal("invalid mix accepted")
	}
	if _, err := NewSource(HighBimodal(), 0, rng.New(1)); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestScheduleValidate(t *testing.T) {
	good := Schedule{Phases: []Phase{
		{Mix: HighBimodal(), Rate: 1e6, Duration: time.Second},
		{Mix: ExtremeBimodal(), Rate: 2e6, Duration: time.Second},
	}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := good.TotalDuration(); got != 2*time.Second {
		t.Fatalf("total %v", got)
	}
	bad := Schedule{Phases: []Phase{
		{Mix: HighBimodal(), Rate: 1e6, Duration: time.Second},
		{Mix: TPCC(), Rate: 1e6, Duration: time.Second},
	}}
	if err := bad.Validate(); err == nil {
		t.Fatal("type-count change across phases accepted")
	}
	if err := (Schedule{}).Validate(); err == nil {
		t.Fatal("empty schedule accepted")
	}
}

func TestSchedulePhaseAt(t *testing.T) {
	sc := Schedule{Phases: []Phase{
		{Mix: HighBimodal(), Rate: 1, Duration: time.Second},
		{Mix: HighBimodal(), Rate: 1, Duration: time.Second},
		{Mix: HighBimodal(), Rate: 1, Duration: time.Second},
	}}
	if sc.PhaseAt(0) != 0 || sc.PhaseAt(1500*time.Millisecond) != 1 || sc.PhaseAt(10*time.Second) != 2 {
		t.Fatal("PhaseAt wrong")
	}
}

func TestTwoType(t *testing.T) {
	m := TwoType("A", time.Microsecond, 0.5, "B", 100*time.Microsecond)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Types[0].Name != "A" || m.Types[1].Ratio != 0.5 {
		t.Fatal("TwoType fields wrong")
	}
}

func TestTypeNames(t *testing.T) {
	names := TPCC().TypeNames()
	if len(names) != 5 || names[0] != "Payment" {
		t.Fatalf("names %v", names)
	}
}
