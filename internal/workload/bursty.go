package workload

import (
	"fmt"
	"time"

	"repro/internal/rng"
)

// BurstySource is a two-state Markov-modulated Poisson process (an
// on/off MMPP): arrivals alternate between a burst phase at
// BaseRate×BurstFactor and a quiet phase at BaseRate/BurstFactor, with
// exponentially distributed phase lengths. Its long-run average rate
// is the mean of the two phase rates weighted by phase durations;
// EffectiveRate reports it. Bursty arrivals are the §3 stress case for
// DARC's reservation sizing ("reducing the number of cores available
// to a type reduces its ability to absorb bursts").
type BurstySource struct {
	src         *Source
	r           *rng.RNG
	baseRate    float64
	burstFactor float64
	meanOn      time.Duration
	meanOff     time.Duration

	inBurst   bool
	phaseLeft time.Duration
}

// NewBurstySource creates the source; burstFactor > 1 (e.g. 4 means
// bursts at 4× base and quiet phases at base/4).
func NewBurstySource(mix Mix, baseRate, burstFactor float64, meanOn, meanOff time.Duration, r *rng.RNG) (*BurstySource, error) {
	if burstFactor <= 1 {
		return nil, fmt.Errorf("workload: burst factor %g must exceed 1", burstFactor)
	}
	if meanOn <= 0 || meanOff <= 0 {
		return nil, fmt.Errorf("workload: phase durations must be positive")
	}
	src, err := NewSource(mix, baseRate, r)
	if err != nil {
		return nil, err
	}
	b := &BurstySource{
		src:         src,
		r:           r,
		baseRate:    baseRate,
		burstFactor: burstFactor,
		meanOn:      meanOn,
		meanOff:     meanOff,
	}
	b.enterPhase(false)
	return b, nil
}

func (b *BurstySource) enterPhase(burst bool) {
	b.inBurst = burst
	if burst {
		b.phaseLeft = time.Duration(b.r.Exp(float64(b.meanOn)))
		b.src.SetRate(b.baseRate * b.burstFactor)
	} else {
		b.phaseLeft = time.Duration(b.r.Exp(float64(b.meanOff)))
		b.src.SetRate(b.baseRate / b.burstFactor)
	}
}

// EffectiveRate reports the long-run average arrival rate.
func (b *BurstySource) EffectiveRate() float64 {
	on := b.meanOn.Seconds()
	off := b.meanOff.Seconds()
	return (b.baseRate*b.burstFactor*on + b.baseRate/b.burstFactor*off) / (on + off)
}

// Next implements the generator contract used by trace.Generate: it
// returns the next arrival's gap, type and service demand, advancing
// the phase process as virtual time passes.
func (b *BurstySource) Next() (time.Duration, int, time.Duration) {
	var total time.Duration
	for {
		a := b.src.Next()
		if a.Gap <= b.phaseLeft {
			b.phaseLeft -= a.Gap
			return total + a.Gap, a.Type, a.Service
		}
		// The phase ends before this arrival: burn the remaining phase
		// time and resample the gap in the new phase.
		total += b.phaseLeft
		b.enterPhase(!b.inBurst)
	}
}
