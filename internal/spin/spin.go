// Package spin provides calibrated busy-work for the live runtime's
// synthetic workloads: a request "executes" by occupying its worker
// core for a requested duration, like the paper's synthetic spin
// loops. Durations below a few hundred nanoseconds are dominated by
// timer overhead on a shared VM; the calibration loop keeps the error
// proportional rather than absolute.
package spin

import (
	"sync/atomic"
	"time"
)

// itersPerMicro is the calibrated number of work-loop iterations per
// microsecond, set by Calibrate (or lazily on first use).
var itersPerMicro atomic.Int64

// sink defeats dead-code elimination of the work loop.
var sink atomic.Uint64

// work runs n iterations of the calibration kernel.
func work(n int64) {
	var acc uint64 = 88172645463325252
	for i := int64(0); i < n; i++ {
		// xorshift keeps the loop's latency data-independent.
		acc ^= acc << 13
		acc ^= acc >> 7
		acc ^= acc << 17
	}
	sink.Store(acc)
}

// Calibrate measures the work loop's speed. It runs for roughly the
// given duration (longer is more accurate) and stores the result
// process-wide. Returns iterations per microsecond.
func Calibrate(budget time.Duration) int64 {
	if budget <= 0 {
		budget = 10 * time.Millisecond
	}
	const probe = 1 << 16
	start := time.Now()
	var iters int64
	for time.Since(start) < budget {
		work(probe)
		iters += probe
	}
	elapsed := time.Since(start)
	perMicro := int64(float64(iters) / float64(elapsed.Microseconds()+1))
	if perMicro < 1 {
		perMicro = 1
	}
	itersPerMicro.Store(perMicro)
	return perMicro
}

// For occupies the calling goroutine's core for approximately d.
func For(d time.Duration) {
	if d <= 0 {
		return
	}
	per := itersPerMicro.Load()
	if per == 0 {
		per = Calibrate(5 * time.Millisecond)
	}
	n := per * d.Microseconds()
	if rem := d % time.Microsecond; rem > 0 {
		n += per * int64(rem) / 1000
	}
	if n < 1 {
		n = 1
	}
	work(n)
}

// IterationsPerMicro reports the current calibration (0 if never
// calibrated).
func IterationsPerMicro() int64 { return itersPerMicro.Load() }
