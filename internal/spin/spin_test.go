package spin

import (
	"testing"
	"time"
)

func TestCalibrateSetsRate(t *testing.T) {
	per := Calibrate(20 * time.Millisecond)
	if per < 1 {
		t.Fatalf("calibrated %d iters/µs", per)
	}
	if IterationsPerMicro() != per {
		t.Fatal("calibration not stored")
	}
}

func TestForApproximatesDuration(t *testing.T) {
	Calibrate(50 * time.Millisecond)
	// Measure a 2ms spin: long enough to dominate timer noise on a
	// shared CI machine.
	want := 2 * time.Millisecond
	best := time.Hour
	for trial := 0; trial < 5; trial++ {
		start := time.Now()
		For(want)
		if got := time.Since(start); got < best {
			best = got
		}
	}
	// Generous bounds: shared CI machines and coverage instrumentation
	// skew the calibration-to-measurement ratio.
	if best < want/4 || best > want*6 {
		t.Fatalf("spun for %v, want ~%v", best, want)
	}
}

func TestForZeroReturnsImmediately(t *testing.T) {
	start := time.Now()
	For(0)
	For(-time.Second)
	if time.Since(start) > 10*time.Millisecond {
		t.Fatal("zero spin took too long")
	}
}

func TestForSubMicrosecond(t *testing.T) {
	Calibrate(20 * time.Millisecond)
	// Must terminate quickly and not underflow to a huge loop count.
	start := time.Now()
	for i := 0; i < 1000; i++ {
		For(500 * time.Nanosecond)
	}
	if time.Since(start) > 200*time.Millisecond {
		t.Fatal("sub-microsecond spins far too slow")
	}
}
