package conformance

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/psp"
)

// Mutation is one deliberate live-scheduler perturbation. The sim
// always runs the *declared* policy; the mutation quietly changes what
// the live server actually does, and the comparator must notice. A
// harness that passes the clean matrix but misses a mutation has no
// teeth.
type Mutation struct {
	// Name identifies the mutation in reports.
	Name string
	// Policy is the declared policy the mutation hides under.
	Policy string
	// Detail says what is perturbed, for the report.
	Detail string

	// Live-side perturbations (nil/false = leave alone).
	mode           *psp.Mode
	staticReserved *int
	faults         *faults.Profile
	flipClassifier bool

	// admissionBudget > 0 declares a uniform per-type admission budget
	// for the case; disableAdmission quietly drops it from the live
	// configuration (the server accepts everything while the declared
	// contract promises deadline shedding).
	admissionBudget  time.Duration
	disableAdmission bool
}

func modePtr(m psp.Mode) *psp.Mode { return &m }
func intPtr(i int) *int            { return &i }

// Mutations is the detection catalogue: every entry must be flagged by
// Compare on every canonical trace and seed (zero false negatives).
func Mutations() []Mutation {
	return []Mutation{
		{
			Name:   "policy-swap-cfcfs",
			Policy: "darc",
			Detail: "live server silently runs c-FCFS instead of DARC",
			mode:   modePtr(psp.ModeCFCFS),
		},
		{
			Name:   "delayed-update",
			Policy: "darc",
			Detail: "faults.ReservationDelay holds every DARC update past the run",
			faults: &faults.Profile{Seed: 1, StallWorker: -1, SlowWorker: -1, ReservationDelay: 30 * time.Minute},
		},
		{
			Name:           "reservation-shrink",
			Policy:         "darc-static",
			Detail:         "static reservation shrunk to zero cores",
			staticReserved: intPtr(0),
		},
		{
			Name:   "policy-swap-dfcfs",
			Policy: "cfcfs",
			Detail: "live server steers per-worker queues (d-FCFS) instead of c-FCFS",
			mode:   modePtr(psp.ModeDFCFS),
		},
		{
			Name:           "misclassify",
			Policy:         "cfcfs",
			Detail:         "classifier swaps the two most extreme types",
			flipClassifier: true,
		},
		{
			Name:             "admission-disabled",
			Policy:           "darc",
			Detail:           "declared admission control silently disabled under overload",
			admissionBudget:  2 * time.Millisecond,
			disableAdmission: true,
		},
	}
}

// MutationByName finds a catalogue entry.
func MutationByName(name string) (Mutation, error) {
	for _, m := range Mutations() {
		if m.Name == name {
			return m, nil
		}
	}
	return Mutation{}, fmt.Errorf("conformance: unknown mutation %q", name)
}
