// Package conformance differentially tests the two implementations of
// the paper's scheduling claims — the discrete-event simulator
// (internal/cluster) and the live dispatcher (internal/psp) — by
// driving both from the same seeded arrival trace and checking that
// they agree: structural invariants exactly (request conservation,
// per-type dispatch counts, reservation legality, FCFS dispatch
// order), latency distributions statistically (per-type queue-delay
// quantile bands). A mutation catalogue perturbs the live scheduler
// and asserts the comparator notices, proving the harness has teeth.
package conformance

import (
	"fmt"
	"time"

	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TraceSpec pins one canonical conformance workload: a mix, an
// offered rate, a horizon and a seed, from which Generate derives the
// exact same arrival trace forever. The committed CSVs under
// testdata/conformance/ are these specs' output, golden-pinned by
// TestCanonicalTracesPinned.
type TraceSpec struct {
	Name     string
	Mix      workload.Mix
	Rate     float64 // requests per second
	Duration time.Duration
	Seed     uint64

	// Workers is the worker count both sides run with.
	Workers int
	// StaticReserved parameterises the darc-static policy case.
	StaticReserved int
	// WarmupFraction of each side's samples is discarded before the
	// statistical comparison (structural checks always see everything).
	WarmupFraction float64
}

// CanonicalSpecs returns the three pinned conformance workloads.
//
// The mixes keep the paper's *shape* (bimodal dispersion, exponential
// tails, a five-type TPC-C transaction profile) but are rescaled for a
// live side that reproduces service demands with time.Sleep on a
// shared CI host, where the timer tick makes any sleep land 0–2ms
// late. Two consequences drive every number below:
//
//   - service means sit at multiple milliseconds, so the tick noise is
//     a bounded relative error instead of a 10x distortion;
//   - type ratios and mean gaps are chosen so DARC's demand-share
//     rounding lands in the middle of an integer bin: both sides'
//     profilers see finite noisy windows, and a mix parked on a
//     rounding boundary would flip core allocations between runs and
//     drown the comparison in discretization flips.
func CanonicalSpecs() []TraceSpec {
	return []TraceSpec{
		{
			// The paper's High Bimodal shape: fixed-cost shorts versus
			// 5x-dispersed fixed-cost longs, an even split.
			Name: "bimodal",
			Mix: workload.Mix{
				Name: "conf-bimodal",
				Types: []workload.TypeSpec{
					{Name: "S", Ratio: 0.5, Service: rng.Fixed(4 * time.Millisecond)},
					{Name: "L", Ratio: 0.5, Service: rng.Fixed(20 * time.Millisecond)},
				},
			},
			Rate:           185,
			Duration:       3000 * time.Millisecond,
			Seed:           101,
			Workers:        4,
			StaticReserved: 1,
			WarmupFraction: 0.2,
		},
		{
			// Exponential service on both classes: the heavy-tailed
			// variant where per-request demand is unpredictable. The 10x
			// mean gap (not 5x) is deliberate: both sides' profilers see
			// exponential samples through a short-window EWMA, and a
			// closer gap lets an unlucky window drift the two types
			// within DARC's 3x grouping threshold — collapsing the
			// reservation into one all-worker group on one side only.
			Name: "exp",
			Mix: workload.Mix{
				Name: "conf-exp",
				Types: []workload.TypeSpec{
					{Name: "ShortExp", Ratio: 0.5, Service: rng.Exponential(4 * time.Millisecond)},
					{Name: "LongExp", Ratio: 0.5, Service: rng.Exponential(40 * time.Millisecond)},
				},
			},
			Rate:           100,
			Duration:       3600 * time.Millisecond,
			Seed:           202,
			Workers:        4,
			StaticReserved: 1,
			WarmupFraction: 0.2,
		},
		{
			// A TPC-C-shaped five-type transaction profile (Payment
			// cheapest through StockLevel dearest, as in Table 4); the
			// ratios are rebalanced from the paper's 44/4 split so the
			// two short-heavy and two long types each carry enough
			// occurrence mass for stable demand estimation.
			Name: "tpcc",
			Mix: workload.Mix{
				Name: "conf-tpcc",
				Types: []workload.TypeSpec{
					{Name: "Payment", Ratio: 0.30, Service: rng.Fixed(3 * time.Millisecond)},
					{Name: "OrderStatus", Ratio: 0.15, Service: rng.Fixed(3900 * time.Microsecond)},
					{Name: "NewOrder", Ratio: 0.15, Service: rng.Fixed(4800 * time.Microsecond)},
					{Name: "Delivery", Ratio: 0.25, Service: rng.Fixed(20 * time.Millisecond)},
					{Name: "StockLevel", Ratio: 0.15, Service: rng.Fixed(26 * time.Millisecond)},
				},
			},
			Rate:           150,
			Duration:       2800 * time.Millisecond,
			Seed:           303,
			Workers:        3,
			StaticReserved: 1,
			WarmupFraction: 0.2,
		},
	}
}

// SpecByName finds a canonical spec.
func SpecByName(name string) (TraceSpec, error) {
	for _, s := range CanonicalSpecs() {
		if s.Name == name {
			return s, nil
		}
	}
	return TraceSpec{}, fmt.Errorf("conformance: unknown canonical trace %q", name)
}

// sourceGen adapts workload.Source to trace.Generator.
type sourceGen struct{ src *workload.Source }

func (g sourceGen) Next() (time.Duration, int, time.Duration) {
	a := g.src.Next()
	return a.Gap, a.Type, a.Service
}

// Generate materialises the spec's arrival trace. Same spec, same
// bytes — the generator chain (xorshift RNG, Poisson source) has no
// hidden state, so this is the replayable ground truth both the sim
// and the live server consume.
func (ts TraceSpec) Generate() (*trace.Trace, error) {
	return ts.generateSeeded(ts.Seed)
}

// GenerateSeeded is Generate with the spec's seed replaced, used by
// the mutation matrix to get fresh-but-reproducible arrival sequences
// per detection round.
func (ts TraceSpec) GenerateSeeded(seed uint64) (*trace.Trace, error) {
	return ts.generateSeeded(seed)
}

func (ts TraceSpec) generateSeeded(seed uint64) (*trace.Trace, error) {
	if err := ts.Mix.Validate(); err != nil {
		return nil, err
	}
	if ts.Rate <= 0 || ts.Duration <= 0 {
		return nil, fmt.Errorf("conformance: spec %q needs positive rate and duration", ts.Name)
	}
	src, err := workload.NewSource(ts.Mix, ts.Rate, rng.New(seed))
	if err != nil {
		return nil, err
	}
	tr := trace.Generate(sourceGen{src}, ts.Duration)
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if tr.Len() == 0 {
		return nil, fmt.Errorf("conformance: spec %q generated an empty trace", ts.Name)
	}
	return tr, nil
}

// warmupCut reports the arrival offset before which samples are
// discarded from the statistical comparison.
func (ts TraceSpec) warmupCut() time.Duration {
	return time.Duration(float64(ts.Duration) * ts.WarmupFraction)
}

// shortestType reports the type index with the smallest mean service
// time — the type darc-static protects.
func (ts TraceSpec) shortestType() int {
	best := 0
	for i, t := range ts.Mix.Types {
		if t.Service.Mean() < ts.Mix.Types[best].Service.Mean() {
			best = i
		}
	}
	return best
}

// means extracts the per-type mean service times (darc-static input).
func (ts TraceSpec) means() []time.Duration {
	out := make([]time.Duration, len(ts.Mix.Types))
	for i, t := range ts.Mix.Types {
		out[i] = t.Service.Mean()
	}
	return out
}

// Policies lists the policy cases every canonical trace must conform
// under.
func Policies() []string {
	return []string{"darc", "darc-static", "cfcfs", "dfcfs"}
}
