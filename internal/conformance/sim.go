package conformance

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/darc"
	"repro/internal/policy"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

// simDrainSlack extends the simulated horizon past the last arrival so
// every queued request completes and the sim's per-type counts are
// exactly comparable to the trace (sized for the exponential mix's
// service tail plus residual queueing at ρ≈0.55).
const simDrainSlack = 800 * time.Millisecond

// SimRun is the simulator half of one differential comparison.
type SimRun struct {
	Policy   string
	Arrived  uint64
	Complete uint64
	Dropped  uint64
	// PerType counts completions per type over the whole run.
	PerType []uint64
	// QueueDelays holds post-warmup queueing delays per type.
	QueueDelays [][]time.Duration
}

// simPolicy builds the simulator policy for a conformance case. The
// DARC window is scaled to the trace so the controller leaves its
// c-FCFS startup mode well inside the warmup fraction.
func simPolicy(spec TraceSpec, tr *trace.Trace, name string, seed uint64) (func() cluster.Policy, error) {
	switch name {
	case "darc", "darc-delayed": // darc-delayed only differs live-side
		dcfg := darc.DefaultConfig(spec.Workers)
		dcfg.MinWindowSamples = simWindow(tr.Len())
		n := tr.NumTypes()
		return func() cluster.Policy { return policy.NewDARC(dcfg, n, 0) }, nil
	case "darc-static":
		means := spec.means()
		reserved := spec.StaticReserved
		return func() cluster.Policy { return policy.NewDARCStatic(means, reserved, 0) }, nil
	case "cfcfs":
		return func() cluster.Policy { return policy.NewCFCFS(0) }, nil
	case "dfcfs":
		return func() cluster.Policy { return policy.NewDFCFS(rng.New(seed|1), 0) }, nil
	}
	return nil, fmt.Errorf("conformance: unknown policy %q", name)
}

// simWindow clamps the DARC profiling window to ~1/6 of the trace:
// large enough that the demand-share estimate is stable, small enough
// that the first reservation installs well inside the warmup fraction
// (post-cut samples must never see the c-FCFS startup mode the live
// side already left during its warmup phase).
func simWindow(records int) uint64 {
	w := uint64(records / 6)
	if w < 48 {
		w = 48
	}
	if w > 128 {
		w = 128
	}
	return w
}

// RunSim replays the trace through the discrete-event simulator under
// the named policy and collects the comparator's inputs.
func RunSim(spec TraceSpec, tr *trace.Trace, policyName string, seed uint64) (*SimRun, error) {
	newPolicy, err := simPolicy(spec, tr, policyName, seed)
	if err != nil {
		return nil, err
	}
	numTypes := tr.NumTypes()
	run := &SimRun{
		Policy:      policyName,
		PerType:     make([]uint64, numTypes),
		QueueDelays: make([][]time.Duration, numTypes),
	}
	cut := spec.warmupCut()
	res, err := cluster.Run(cluster.Config{
		Workers:   spec.Workers,
		Mix:       spec.Mix,
		Trace:     tr,
		Duration:  tr.Duration() + simDrainSlack,
		Seed:      seed,
		NewPolicy: newPolicy,
		OnComplete: func(r *cluster.Request, at sim.Time) {
			run.PerType[r.Type]++
			if qd := r.QueueDelay(); qd >= 0 && time.Duration(r.Arrival) >= cut {
				run.QueueDelays[r.Type] = append(run.QueueDelays[r.Type], qd)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	run.Arrived = res.Machine.Arrived()
	run.Complete = res.Machine.Completed()
	run.Dropped = res.Machine.Dropped()
	return run, nil
}
