package conformance

// Golden pinning for the canonical conformance traces. The committed
// CSVs under testdata/conformance/ are the replayable ground truth the
// whole harness keys off: the sim consumes them as cluster replays,
// the live side as loadgen replays, and EXPERIMENTS.md quotes results
// against them by name. Any drift in the generator chain (RNG, Poisson
// source, mix sampling) shows up here as a byte diff, not as a silent
// re-baselining of every comparison. Regenerate deliberately with
//
//	go test ./internal/conformance -run TestCanonicalTracesPinned -update
//
// and commit the diff alongside the change that caused it.

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden canonical traces under testdata/conformance/")

func goldenPath(name string) string {
	return filepath.Join("testdata", "conformance", name+".csv")
}

// encodeTrace serialises a trace exactly as the golden files store it.
func encodeTrace(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCanonicalTracesPinned(t *testing.T) {
	for _, spec := range CanonicalSpecs() {
		t.Run(spec.Name, func(t *testing.T) {
			tr, err := spec.Generate()
			if err != nil {
				t.Fatal(err)
			}
			got := encodeTrace(t, tr)
			path := goldenPath(spec.Name)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden trace missing (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("spec %q no longer generates its committed trace (%d vs %d bytes): "+
					"the generator chain drifted; regenerate with -update only if intentional",
					spec.Name, len(got), len(want))
			}
			// The committed bytes must round-trip losslessly — the replay
			// drivers consume the parsed form, not the generator's.
			back, err := trace.Read(bytes.NewReader(want))
			if err != nil {
				t.Fatal(err)
			}
			if back.Len() != tr.Len() {
				t.Fatalf("re-read %d records, generated %d", back.Len(), tr.Len())
			}
			if !bytes.Equal(encodeTrace(t, back), got) {
				t.Fatal("trace CSV round-trip not byte-stable")
			}
		})
	}
}

// TestCanonicalTraceDeterminism proves the generator chain has no
// hidden state: same spec, same bytes, forever; a different seed moves
// the bytes.
func TestCanonicalTraceDeterminism(t *testing.T) {
	for _, spec := range CanonicalSpecs() {
		t.Run(spec.Name, func(t *testing.T) {
			a, err := spec.Generate()
			if err != nil {
				t.Fatal(err)
			}
			b, err := spec.Generate()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(encodeTrace(t, a), encodeTrace(t, b)) {
				t.Fatal("two generations of the same spec differ")
			}
			c, err := spec.GenerateSeeded(spec.Seed + 1)
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(encodeTrace(t, a), encodeTrace(t, c)) {
				t.Fatal("reseeding produced an identical trace")
			}
		})
	}
}

// TestCanonicalTraceShape sanity-checks each pinned trace against its
// spec: arrival rate, horizon, type population and mix ratios all land
// near their declared values (Poisson and sampling noise allowed).
func TestCanonicalTraceShape(t *testing.T) {
	for _, spec := range CanonicalSpecs() {
		t.Run(spec.Name, func(t *testing.T) {
			tr, err := spec.Generate()
			if err != nil {
				t.Fatal(err)
			}
			if tr.NumTypes() != len(spec.Mix.Types) {
				t.Fatalf("trace has %d types, mix declares %d", tr.NumTypes(), len(spec.Mix.Types))
			}
			want := spec.Rate * spec.Duration.Seconds()
			if n := float64(tr.Len()); math.Abs(n-want) > 0.2*want {
				t.Fatalf("%d arrivals, want within 20%% of %.0f", tr.Len(), want)
			}
			if d := tr.Duration(); d > spec.Duration {
				t.Fatalf("last arrival %v past the declared horizon %v", d, spec.Duration)
			}
			counts := make([]float64, len(spec.Mix.Types))
			for _, r := range tr.Records {
				counts[r.Type]++
			}
			for i, ts := range spec.Mix.Types {
				got := counts[i] / float64(tr.Len())
				// 4σ binomial slack, floored for the smallest ratios.
				slack := 4*math.Sqrt(ts.Ratio*(1-ts.Ratio)/float64(tr.Len())) + 0.01
				if math.Abs(got-ts.Ratio) > slack {
					t.Errorf("type %s ratio %.3f, want %.3f ± %.3f", ts.Name, got, ts.Ratio, slack)
				}
			}
		})
	}
}

// TestSpecValidation covers the generator's refusal paths.
func TestSpecValidation(t *testing.T) {
	spec, err := SpecByName("bimodal")
	if err != nil {
		t.Fatal(err)
	}
	spec.Rate = 0
	if _, err := spec.Generate(); err == nil {
		t.Error("zero rate accepted")
	}
	spec.Rate, spec.Duration = 100, 0
	if _, err := spec.Generate(); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := SpecByName("no-such-trace"); err == nil {
		t.Error("unknown spec name accepted")
	}
	if _, err := MutationByName("no-such-mutation"); err == nil {
		t.Error("unknown mutation name accepted")
	}
	for _, spec := range CanonicalSpecs() {
		if _, err := SpecByName(spec.Name); err != nil {
			t.Errorf("SpecByName(%q): %v", spec.Name, err)
		}
	}
}
