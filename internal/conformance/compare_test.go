package conformance

// Unit tests for the comparator's building blocks on synthetic data:
// these prove the invariant checkers themselves (bands, quantiles,
// FCFS inversion counting, reservation legality) independently of the
// expensive live-vs-sim matrix.

import (
	"testing"
	"time"

	"repro/internal/darc"
	"repro/internal/loadgen"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// newSyntheticReplayResult fabricates a perfectly-conserved replay
// accounting for a trace: everything sent, everything answered.
func newSyntheticReplayResult(tr *trace.Trace) *loadgen.ReplayResult {
	n := tr.NumTypes()
	res := &loadgen.ReplayResult{
		SentByType:     make([]uint64, n),
		TimedOutByType: make([]uint64, n),
		DroppedByType:  make([]uint64, n),
	}
	res.Sent = uint64(tr.Len())
	res.Received = uint64(tr.Len())
	res.Overall = &metrics.Histogram{}
	for i := 0; i < n; i++ {
		res.Latency = append(res.Latency, &metrics.Histogram{})
	}
	for _, r := range tr.Records {
		res.SentByType[r.Type]++
	}
	return res
}

func TestBandAllows(t *testing.T) {
	b := Band{Rel: 0.5, Abs: time.Millisecond}
	cases := []struct {
		ref, got time.Duration
		want     bool
	}{
		{ref: 10 * time.Millisecond, got: 10 * time.Millisecond, want: true},
		{ref: 10 * time.Millisecond, got: 16 * time.Millisecond, want: true}, // 1.5x + 1ms
		{ref: 10 * time.Millisecond, got: 16100 * time.Microsecond, want: false},
		{ref: 10 * time.Millisecond, got: 4 * time.Millisecond, want: true},
		{ref: 10 * time.Millisecond, got: 3900 * time.Microsecond, want: false},
		{ref: 0, got: time.Millisecond, want: true}, // abs floor
		{ref: 0, got: 1100 * time.Microsecond, want: false},
	}
	for _, c := range cases {
		if got := b.Allows(c.ref, c.got); got != c.want {
			t.Errorf("Allows(%v, %v) = %v, want %v", c.ref, c.got, got, c.want)
		}
	}
}

func TestQuantileDur(t *testing.T) {
	var s []time.Duration
	for i := 1; i <= 100; i++ {
		s = append(s, time.Duration(i)*time.Millisecond)
	}
	if got := quantileDur(s, 0.5); got != 50*time.Millisecond && got != 51*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := quantileDur(s, 0.99); got != 99*time.Millisecond && got != 100*time.Millisecond {
		t.Errorf("p99 = %v", got)
	}
	if got := quantileDur(nil, 0.5); got != 0 {
		t.Errorf("empty p50 = %v, want 0", got)
	}
	if got := quantileDur(s[:1], 0.99); got != time.Millisecond {
		t.Errorf("singleton p99 = %v", got)
	}
}

func TestDispatchInversions(t *testing.T) {
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	// In-order dispatch: no inversions.
	inOrder := []trace.Span{
		{Ingress: ms(1), Dispatched: ms(2)},
		{Ingress: ms(3), Dispatched: ms(4)},
		{Ingress: ms(5), Dispatched: ms(6)},
	}
	if got := dispatchInversions(inOrder, time.Millisecond); got != 0 {
		t.Errorf("in-order inversions = %d", got)
	}
	// The request from ms(1) dispatched long after later arrivals ran.
	reordered := []trace.Span{
		{Ingress: ms(1), Dispatched: ms(50)},
		{Ingress: ms(3), Dispatched: ms(4)},
		{Ingress: ms(30), Dispatched: ms(31)},
	}
	if got := dispatchInversions(reordered, time.Millisecond); got != 1 {
		t.Errorf("reordered inversions = %d, want 1", got)
	}
	// Ties within the gap are not inversions (batch-amortized stamps).
	ties := []trace.Span{
		{Ingress: ms(10), Dispatched: ms(11)},
		{Ingress: ms(10) - 100*time.Microsecond, Dispatched: ms(12)},
	}
	if got := dispatchInversions(ties, time.Millisecond); got != 0 {
		t.Errorf("tie inversions = %d", got)
	}
}

// synthetic two-group reservation: type 0 (short) reserved {0,1} may
// steal {2,3}; type 1 (long) reserved {2} steals {3}; worker 3 is
// spillway.
func testReservation() *darc.Reservation {
	return &darc.Reservation{
		Groups: []darc.Group{
			{Types: []int{0}, Reserved: []int{0, 1}, Stealable: []int{2, 3}},
			{Types: []int{1}, Reserved: []int{2}, Stealable: []int{3}},
		},
		GroupOf:         []int{0, 1},
		SpillwayWorkers: []int{3},
	}
}

func TestReservationAllows(t *testing.T) {
	res := testReservation()
	cases := []struct {
		typ, worker int
		want        bool
	}{
		{0, 0, true}, {0, 1, true}, {0, 2, true}, {0, 3, true},
		{1, 2, true}, {1, 3, true},
		{1, 0, false}, {1, 1, false}, // long stealing a short core: never
		{-1, 3, true},  // unknown on spillway
		{-1, 0, false}, // unknown off spillway
	}
	for _, c := range cases {
		sp := trace.Span{Type: c.typ, Worker: c.worker}
		if got := reservationAllows(res, sp); got != c.want {
			t.Errorf("allows(type=%d, worker=%d) = %v, want %v", c.typ, c.worker, got, c.want)
		}
	}
	if !reservationAllows(nil, trace.Span{Type: 1, Worker: 0}) {
		t.Error("nil reservation must allow everything (startup c-FCFS)")
	}
}

func TestReservationLegalTimeline(t *testing.T) {
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	eps := ms(10)
	resA := testReservation()
	// resB flips the partition: short gets {2,3}+steal{0,1}, long {0}+{1}.
	resB := &darc.Reservation{
		Groups: []darc.Group{
			{Types: []int{0}, Reserved: []int{2, 3}, Stealable: []int{0, 1}},
			{Types: []int{1}, Reserved: []int{0}, Stealable: []int{1}},
		},
		GroupOf:         []int{0, 1},
		SpillwayWorkers: []int{1},
	}
	timeline := []ResUpdate{{At: ms(100), Res: resA}, {At: ms(500), Res: resB}}

	check := func(name string, sp trace.Span, want bool) {
		t.Helper()
		if got := reservationLegal(timeline, sp, eps); got != want {
			t.Errorf("%s: legal = %v, want %v", name, got, want)
		}
	}
	// Before any reservation: startup c-FCFS, everything legal.
	check("startup", trace.Span{Type: 1, Worker: 0, Dispatched: ms(50)}, true)
	// Under resA: long on worker 0 is a violation.
	check("violation-A", trace.Span{Type: 1, Worker: 0, Dispatched: ms(300)}, false)
	check("legal-A", trace.Span{Type: 1, Worker: 2, Dispatched: ms(300)}, true)
	// Under resB the same dispatch is legal.
	check("legal-B", trace.Span{Type: 1, Worker: 0, Dispatched: ms(600)}, true)
	// And a resA-legal dispatch just after the boundary passes via the
	// epsilon union…
	check("boundary", trace.Span{Type: 1, Worker: 2, Dispatched: ms(505)}, true)
	// …but not far beyond it.
	check("past-boundary", trace.Span{Type: 1, Worker: 2, Dispatched: ms(600)}, false)
	if !reservationLegal(nil, trace.Span{Type: 1, Worker: 0, Dispatched: ms(300)}, eps) {
		t.Error("empty timeline must be legal everywhere")
	}
}

// TestCompareSyntheticCatches drives Compare with fabricated runs to
// prove each structural detector fires without a live server.
func TestCompareSyntheticCatches(t *testing.T) {
	spec, err := SpecByName("bimodal")
	if err != nil {
		t.Fatal(err)
	}
	spec.Duration = 100 * time.Millisecond
	tr, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions("darc", tr.Len())

	kinds := func(rep *Report) map[string]bool {
		out := map[string]bool{}
		for _, d := range rep.Divergences {
			out[d.Kind] = true
		}
		return out
	}

	// A live run faithful in shape: one span per record, reservation
	// installed, every dispatch legal (worker chosen per type).
	mkLive := func() *LiveRun {
		run := &LiveRun{
			Policy:              "darc",
			NumTypes:            2,
			StaticReserved:      spec.StaticReserved,
			ShortType:           0,
			ReservationAtReplay: true,
			Reservations:        []ResUpdate{{At: 0, Res: testReservation()}},
		}
		res := newSyntheticReplayResult(tr)
		run.Result = res
		for i, r := range tr.Records {
			w := 0
			if r.Type == 1 {
				w = 2
			}
			run.Spans = append(run.Spans, trace.Span{
				ID: uint64(i + 1), Type: r.Type, Worker: w,
				Ingress: r.Offset, Dispatched: r.Offset + time.Microsecond,
				Started: r.Offset + 2*time.Microsecond,
			})
		}
		return run
	}
	mkSim := func() *SimRun {
		run := &SimRun{
			Policy:      "darc",
			Arrived:     uint64(tr.Len()),
			Complete:    uint64(tr.Len()),
			PerType:     make([]uint64, 2),
			QueueDelays: make([][]time.Duration, 2),
		}
		for _, r := range tr.Records {
			run.PerType[r.Type]++
		}
		return run
	}

	if rep := Compare(spec, tr, mkSim(), mkLive(), opt); !rep.Agree() {
		t.Fatalf("faithful synthetic run diverged:\n%s", rep)
	}

	// Reservation violation: a long span on a short-reserved worker.
	live := mkLive()
	live.Spans[len(live.Spans)-1].Type = 1
	live.Spans[len(live.Spans)-1].Worker = 0
	rep := Compare(spec, tr, mkSim(), live, opt)
	if !kinds(rep)["reservation"] {
		t.Errorf("reservation violation not caught:\n%s", rep)
	}

	// Missing reservation.
	live = mkLive()
	live.ReservationAtReplay = false
	live.Reservations = nil
	rep = Compare(spec, tr, mkSim(), live, opt)
	if !kinds(rep)["reservation"] {
		t.Errorf("missing reservation not caught:\n%s", rep)
	}

	// Type-count mismatch: live served the wrong mix.
	live = mkLive()
	for i := range live.Spans {
		live.Spans[i].Type = 1 - live.Spans[i].Type
		live.Spans[i].Worker = 2 // keep reservation-legal for both types
	}
	rep = Compare(spec, tr, mkSim(), live, opt)
	if !kinds(rep)["type-counts"] {
		t.Errorf("type-count mismatch not caught:\n%s", rep)
	}

	// Lost spans.
	live = mkLive()
	live.TraceLost = 3
	rep = Compare(spec, tr, mkSim(), live, opt)
	if !kinds(rep)["trace-loss"] {
		t.Errorf("trace ring loss not caught:\n%s", rep)
	}

	// Excess timeouts.
	live = mkLive()
	live.Result.TimedOut = opt.TimeoutBudget + 5
	live.Result.Received -= opt.TimeoutBudget + 5
	rep = Compare(spec, tr, mkSim(), live, opt)
	if !kinds(rep)["live-loss"] {
		t.Errorf("timeout overrun not caught:\n%s", rep)
	}

	// Sim-side conservation break.
	sim := mkSim()
	sim.Complete--
	sim.PerType[0]--
	rep = Compare(spec, tr, sim, mkLive(), opt)
	if !kinds(rep)["sim-conservation"] {
		t.Errorf("sim conservation break not caught:\n%s", rep)
	}

	// FCFS inversion detection under a declared cfcfs policy.
	optC := DefaultOptions("cfcfs", tr.Len())
	live = mkLive()
	live.Policy = "cfcfs"
	live.Reservations = nil
	n := len(live.Spans)
	for i := 0; i < n; i += 4 {
		// Every 4th request dispatched way out of arrival order.
		live.Spans[i].Dispatched = live.Spans[i].Ingress + 80*time.Millisecond
	}
	simC := mkSim()
	simC.Policy = "cfcfs"
	rep = Compare(spec, tr, simC, live, optC)
	if !kinds(rep)["fcfs-order"] {
		t.Errorf("FCFS inversions not caught:\n%s", rep)
	}
}
