package conformance

// Reconfig-mid-trace conformance: a benign live reconfiguration —
// shrink the worker pool by one mid-replay, then restore it — must be
// invisible to the differential comparator. The simulator models a
// fixed pool; if the live server's request-safe handoff really loses
// or double-dispatches nothing and the capacity dip is brief, the two
// sides still AGREE clean. Runs in the conformance CI job alongside
// the canonical matrix (the -run pattern matches TestConformance*).

import (
	"sync"
	"testing"
	"time"

	"repro/internal/psp"
	"repro/internal/reconfig"
)

func TestConformanceReconfigMidTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("runs in the conformance CI job")
	}
	spec, err := SpecByName("bimodal")
	if err != nil {
		t.Fatal(err)
	}
	const policy = "cfcfs"

	runOnce := func() *Report {
		tr, err := spec.GenerateSeeded(spec.Seed)
		if err != nil {
			t.Fatal(err)
		}
		simRun, err := RunSim(spec, tr, policy, spec.Seed)
		if err != nil {
			t.Fatal(err)
		}

		var mu sync.Mutex
		var gens []uint64
		var finalSnap reconfig.Snapshot
		liveRun, err := RunLiveDuring(spec, tr, policy, spec.Seed, func(srv *psp.Server) {
			// Shrink one worker a third of the way into the replay,
			// restore it half a second later. Both transitions drain
			// gracefully; neither may drop an in-flight request.
			apply := func(workers int) {
				w := workers
				res, rerr := srv.Reconfigure(reconfig.Spec{Workers: &w})
				if rerr != nil {
					t.Errorf("reconfigure to %d workers: %v", w, rerr)
					return
				}
				mu.Lock()
				gens = append(gens, res.Generation)
				mu.Unlock()
			}
			time.Sleep(spec.Duration / 3)
			apply(spec.Workers - 1)
			time.Sleep(500 * time.Millisecond)
			apply(spec.Workers)
			mu.Lock()
			finalSnap = srv.ConfigSnapshot()
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}

		mu.Lock()
		defer mu.Unlock()
		if len(gens) != 2 || gens[0] != 1 || gens[1] != 2 {
			t.Fatalf("reconfiguration generations = %v, want [1 2]", gens)
		}
		if finalSnap.Workers != spec.Workers {
			t.Fatalf("pool ended at %d workers, want %d", finalSnap.Workers, spec.Workers)
		}
		return Compare(spec, tr, simRun, liveRun, DefaultOptions(policy, tr.Len()))
	}

	rep := runOnce()
	if rep.StatisticalOnly() {
		t.Logf("statistical-only divergence (host stall?), retrying once:\n%s", rep)
		rep = runOnce()
	}
	t.Logf("\n%s", rep)
	if !rep.Agree() {
		t.Errorf("benign mid-trace reconfiguration broke sim/live agreement")
	}
}
