package conformance

// The tentpole: the full sim↔live differential matrix. Every canonical
// trace is replayed through the discrete-event simulator and a live
// in-process UDP server under every policy, and the comparator must
// find them in agreement — structural invariants exactly, queue-delay
// quantiles within the seeded bands.
//
// These are real-time runs (each case replays a ~3s trace against a
// sleeping live server), so the matrix is trimmed under -short to one
// trace and two policies; CI's dedicated conformance job runs the full
// matrix with the package alone on the machine. The cases deliberately
// do NOT call t.Parallel(): concurrent live servers on a small CI host
// would contend for cores and inflate each other's queue delays, which
// is exactly the signal the comparator measures.

import (
	"strings"
	"testing"
)

// shortMatrix is the -short subset: the cheapest trace under the two
// policies with the most distinct mechanisms (DARC's reservations,
// c-FCFS's global order).
func shortMatrix(specName, policy string) bool {
	return specName == "bimodal" && (policy == "darc" || policy == "cfcfs")
}

// runCaseRetrying runs one clean case, retrying exactly once when the
// only divergences are quantile-band misses — the signature of a
// transient host stall starving the live server (see
// Report.StatisticalOnly). Structural divergences fail immediately.
func runCaseRetrying(t *testing.T, spec TraceSpec, policy string, seed uint64) *Report {
	t.Helper()
	rep, err := RunCase(spec, policy, seed)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StatisticalOnly() {
		t.Logf("statistical-only divergence (host stall?), retrying once:\n%s", rep)
		if rep, err = RunCase(spec, policy, seed); err != nil {
			t.Fatal(err)
		}
	}
	return rep
}

func TestConformanceCanonicalMatrix(t *testing.T) {
	for _, spec := range CanonicalSpecs() {
		for _, policy := range Policies() {
			spec, policy := spec, policy
			t.Run(spec.Name+"/"+policy, func(t *testing.T) {
				if testing.Short() && !shortMatrix(spec.Name, policy) {
					t.Skipf("full matrix runs in the conformance CI job")
				}
				rep := runCaseRetrying(t, spec, policy, spec.Seed)
				t.Logf("\n%s", rep)
				if !rep.Agree() {
					t.Errorf("sim and live diverged under %s/%s", spec.Name, policy)
				}
				// The report must carry the agreement table rows the
				// experiment docs quote: one block per type at p50.
				md := rep.MarkdownTable()
				for _, ts := range spec.Mix.Types {
					if !strings.Contains(md, "| "+ts.Name+" | p50 |") {
						t.Errorf("markdown table missing a p50 row for %q:\n%s", ts.Name, md)
					}
				}
			})
		}
	}
}

// TestConformanceSeedStability reruns one case on fresh seeds: the
// bands must hold not just on the pinned seed but on neighbouring
// arrival sequences (guarding against a spec tuned to one lucky draw).
func TestConformanceSeedStability(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed stability runs in the conformance CI job")
	}
	spec, err := SpecByName("bimodal")
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{spec.Seed + 1, spec.Seed + 2} {
		rep := runCaseRetrying(t, spec, "darc", seed)
		if !rep.Agree() {
			t.Errorf("seed %d diverged:\n%s", seed, rep)
		}
	}
}
