package conformance

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/darc"
	"repro/internal/trace"
)

// Band is a two-sided tolerance around a reference value: got agrees
// with ref when |got-ref| <= Rel·ref + Abs. Rel absorbs the
// proportional noise of finite-sample quantiles; Abs floors the band
// so near-zero references (an idle DARC short queue) don't demand
// impossible precision from a wall-clock measurement.
type Band struct {
	Rel float64
	Abs time.Duration
}

// Allows reports whether got sits inside the band around ref.
func (b Band) Allows(ref, got time.Duration) bool {
	diff := got - ref
	if diff < 0 {
		diff = -diff
	}
	return float64(diff) <= b.Rel*float64(ref)+float64(b.Abs)
}

// QuantileCheck is one statistical comparison: the quantile, its
// tolerance band, and the minimum per-side sample count below which
// the check is skipped (quantile estimates from thin samples are
// noise, not evidence).
type QuantileCheck struct {
	Q          float64
	Band       Band
	MinSamples int
}

// CompareOptions tunes the comparator.
type CompareOptions struct {
	// Quantiles are the statistical checks per type (default: p50,
	// p90, p99 with policy-appropriate bands).
	Quantiles []QuantileCheck
	// Epsilon is the clock-skew allowance at reservation-update
	// boundaries: a span dispatched within Epsilon of an update is
	// legal under either the old or the new reservation.
	Epsilon time.Duration
	// InversionAllowance is how many >InversionGap FCFS dispatch-order
	// inversions a clean c-FCFS run may show (clock noise headroom).
	InversionAllowance int
	// InversionGap is the minimum ingress regression that counts as an
	// inversion (filters batch-amortized arrival-stamp ties).
	InversionGap time.Duration
	// TimeoutBudget bounds replay timeouts before the run diverges
	// (loopback UDP is not formally lossless; a handful of losses must
	// not fail conformance, a pattern of them must).
	TimeoutBudget uint64
}

// DefaultOptions returns the comparator configuration for a declared
// policy and trace length.
func DefaultOptions(policyName string, records int) CompareOptions {
	// The Abs floors absorb the live side's wall-clock noise (the
	// timer tick puts 0–2ms of jitter on every sleep and arrival);
	// Rel covers finite-sample quantile dispersion at ρ≈0.55. The p50
	// floor is 4ms, not the tick's 2ms: when the sim's median delay is
	// an exact 0 the relative term contributes nothing, and the live
	// side still pays dispatch overhead plus residual sleep overshoot
	// on top of the tick (measured ~3.4ms worst case across the
	// mutation matrix's clean counterparts).
	qs := []QuantileCheck{
		{Q: 0.50, Band: Band{Rel: 0.35, Abs: 4 * time.Millisecond}, MinSamples: 40},
		{Q: 0.90, Band: Band{Rel: 0.50, Abs: 5 * time.Millisecond}, MinSamples: 80},
		{Q: 0.99, Band: Band{Rel: 0.60, Abs: 10 * time.Millisecond}, MinSamples: 250},
	}
	if policyName == "dfcfs" {
		// d-FCFS steering draws from different RNG streams on the two
		// sides; only distribution shape is comparable, and its tail
		// is dominated by unlucky steering behind a long request.
		qs = []QuantileCheck{
			{Q: 0.50, Band: Band{Rel: 1.0, Abs: 8 * time.Millisecond}, MinSamples: 40},
			{Q: 0.90, Band: Band{Rel: 1.0, Abs: 15 * time.Millisecond}, MinSamples: 80},
			{Q: 0.99, Band: Band{Rel: 1.5, Abs: 30 * time.Millisecond}, MinSamples: 250},
		}
	}
	budget := uint64(records / 500)
	if budget < 2 {
		budget = 2
	}
	return CompareOptions{
		Quantiles:          qs,
		Epsilon:            10 * time.Millisecond,
		InversionAllowance: 2,
		InversionGap:       time.Millisecond,
		TimeoutBudget:      budget,
	}
}

// Divergence is one comparator finding.
type Divergence struct {
	Kind   string
	Detail string
}

func (d Divergence) String() string { return d.Kind + ": " + d.Detail }

// AgreementRow is one statistical comparison result, ready for an
// EXPERIMENTS.md table.
type AgreementRow struct {
	Type     int
	TypeName string
	Quantile float64
	Sim      time.Duration
	Live     time.Duration
	SimN     int
	LiveN    int
	Checked  bool
	Within   bool
}

// Report is the outcome of one differential comparison.
type Report struct {
	Trace    string
	Policy   string
	Mutation string // empty for clean runs

	Divergences []Divergence
	Rows        []AgreementRow

	SimArrived  uint64
	SimComplete uint64
	LiveSent    uint64
	LiveRecv    uint64
	LiveTimeout uint64
	LiveDropped uint64
	ReplaySpans int
	ResUpdates  int
	Inversions  int
}

// Agree reports whether the two implementations conformed.
func (r *Report) Agree() bool { return len(r.Divergences) == 0 }

// StatisticalOnly reports whether every divergence is a quantile-band
// miss with no structural finding. On shared or virtualised hosts a
// multi-hundred-millisecond freeze (hypervisor steal, co-scheduled
// suites) inflates the live side's queue delays wholesale while every
// structural invariant still holds — the signature of starvation, not
// of a scheduling difference. Callers may retry such a run once;
// structural divergences must never be retried away.
func (r *Report) StatisticalOnly() bool {
	if len(r.Divergences) == 0 {
		return false
	}
	for _, d := range r.Divergences {
		if d.Kind != "quantile-band" {
			return false
		}
	}
	return true
}

func (r *Report) diverge(kind, format string, args ...interface{}) {
	r.Divergences = append(r.Divergences, Divergence{Kind: kind, Detail: fmt.Sprintf(format, args...)})
}

// Compare checks one sim run against one live run of the same trace
// under the same declared policy.
func Compare(spec TraceSpec, tr *trace.Trace, sim *SimRun, live *LiveRun, opt CompareOptions) *Report {
	rep := &Report{
		Trace:       spec.Name,
		Policy:      live.Policy,
		SimArrived:  sim.Arrived,
		SimComplete: sim.Complete,
		LiveSent:    live.Result.Sent,
		LiveRecv:    live.Result.Received,
		LiveTimeout: live.Result.TimedOut,
		LiveDropped: live.Result.Dropped,
		ReplaySpans: len(live.Spans),
		ResUpdates:  len(live.Reservations),
	}
	records := uint64(tr.Len())

	// --- structural: request conservation, both sides, exact ---
	if sim.Arrived != records {
		rep.diverge("sim-conservation", "sim arrived %d of %d trace records", sim.Arrived, records)
	}
	if sim.Complete+sim.Dropped != sim.Arrived || sim.Dropped != 0 {
		rep.diverge("sim-conservation", "sim completed %d + dropped %d != arrived %d (or dropped requests)",
			sim.Complete, sim.Dropped, sim.Arrived)
	}
	if live.Result.Sent != records || live.Result.Errors != 0 {
		rep.diverge("live-conservation", "replay sent %d of %d records (%d send errors)",
			live.Result.Sent, records, live.Result.Errors)
	}
	if live.Result.Unaccounted() != 0 {
		rep.diverge("live-conservation", "replay left %d requests unaccounted", live.Result.Unaccounted())
	}
	if live.AdmissionBudget == 0 && live.Result.Dropped != 0 {
		// With no admission control declared the live server has no
		// licence to refuse anything the lossless sim completed.
		rep.diverge("live-shed", "live server shed %d requests a lossless sim completed", live.Result.Dropped)
	}
	if live.Result.TimedOut > opt.TimeoutBudget {
		rep.diverge("live-loss", "replay timed out %d requests (budget %d)", live.Result.TimedOut, opt.TimeoutBudget)
	}
	if live.TraceLost != 0 {
		rep.diverge("trace-loss", "live server lost %d lifecycle spans to full rings", live.TraceLost)
	}

	// --- structural: per-type dispatch counts, exact modulo timeouts ---
	traceCounts := make([]uint64, live.NumTypes)
	for _, r := range tr.Records {
		if r.Type >= 0 && r.Type < live.NumTypes {
			traceCounts[r.Type]++
		}
	}
	spanCounts := make([]uint64, live.NumTypes)
	var unknownSpans uint64
	for _, sp := range live.Spans {
		if sp.Type >= 0 && sp.Type < live.NumTypes {
			spanCounts[sp.Type]++
		} else {
			unknownSpans++
		}
	}
	if unknownSpans > 0 {
		rep.diverge("type-counts", "%d replay spans carried an unknown type", unknownSpans)
	}
	for t := 0; t < live.NumTypes; t++ {
		// A timed-out request is usually still served (the response
		// was lost, not the request), so the span window is
		// [trace - timeouts - drops, trace].
		slack := live.Result.TimedOutByType[t] + live.Result.DroppedByType[t]
		lo := traceCounts[t] - minU64(traceCounts[t], slack)
		if spanCounts[t] < lo || spanCounts[t] > traceCounts[t] {
			rep.diverge("type-counts", "type %d served %d times live, trace has %d (timeout slack %d)",
				t, spanCounts[t], traceCounts[t], slack)
		}
		if sim.PerType[t] != traceCounts[t] {
			rep.diverge("type-counts", "type %d completed %d times in sim, trace has %d",
				t, sim.PerType[t], traceCounts[t])
		}
	}

	// --- structural: admission declaration honoured ---
	// The sim is the lossless reference: every post-warmup queueing
	// delay it records above the declared budget is a request a
	// faithful admission controller would have refused (or at least
	// been pushed into overload trimming by). A server that declares a
	// budget, sees ample over-budget pressure, and sheds nothing is
	// running with admission disabled. The evidence floor keeps border
	// traffic (a handful of over-budget stragglers the live side may
	// legitimately have dispatched in time) from tripping the check.
	if live.AdmissionBudget > 0 {
		const admissionMinEvidence = 20
		over := 0
		for _, delays := range sim.QueueDelays {
			for _, d := range delays {
				if d > live.AdmissionBudget {
					over++
				}
			}
		}
		if over >= admissionMinEvidence && live.AdmissionShed == 0 && live.Result.Dropped == 0 {
			rep.diverge("admission", "declared budget %v with %d sim queue delays over it, yet the live server shed nothing",
				live.AdmissionBudget, over)
		}
	}

	// --- structural: policy invariants ---
	switch live.Policy {
	case "darc":
		if !live.ReservationAtReplay {
			rep.diverge("reservation", "declared DARC but no reservation installed before the replay")
		}
		if len(live.Reservations) == 0 {
			rep.diverge("reservation", "declared DARC but the controller never published an update")
		}
		violations := 0
		var first trace.Span
		for _, sp := range live.Spans {
			if !reservationLegal(live.Reservations, sp, opt.Epsilon) {
				if violations == 0 {
					first = sp
				}
				violations++
			}
		}
		if violations > 0 {
			rep.diverge("reservation", "%d spans dispatched outside their reservation (first: id=%d type=%d worker=%d at %v)",
				violations, first.ID, first.Type, first.Worker, first.Dispatched)
		}
	case "darc-static":
		violations := 0
		var first trace.Span
		for _, sp := range live.Spans {
			if sp.Type != live.ShortType && sp.Worker < live.StaticReserved {
				if violations == 0 {
					first = sp
				}
				violations++
			}
		}
		if violations > 0 {
			rep.diverge("reservation", "%d non-short spans ran on statically reserved workers (first: id=%d type=%d worker=%d)",
				violations, first.ID, first.Type, first.Worker)
		}
	case "cfcfs":
		rep.Inversions = dispatchInversions(live.Spans, opt.InversionGap)
		if rep.Inversions > opt.InversionAllowance {
			rep.diverge("fcfs-order", "%d dispatch-order inversions beyond %v under declared c-FCFS (allowance %d)",
				rep.Inversions, opt.InversionGap, opt.InversionAllowance)
		}
	}

	// --- statistical: per-type queue-delay quantile bands ---
	cut := spec.warmupCut()
	liveDelays := liveQueueDelays(live.Spans, live.NumTypes, cut)
	for t := 0; t < live.NumTypes; t++ {
		name := fmt.Sprintf("type%d", t)
		if t < len(spec.Mix.Types) {
			name = spec.Mix.Types[t].Name
		}
		var simD []time.Duration
		if t < len(sim.QueueDelays) {
			simD = sim.QueueDelays[t]
		}
		for _, qc := range opt.Quantiles {
			row := AgreementRow{
				Type: t, TypeName: name, Quantile: qc.Q,
				SimN: len(simD), LiveN: len(liveDelays[t]),
			}
			if row.SimN >= qc.MinSamples && row.LiveN >= qc.MinSamples {
				row.Checked = true
				row.Sim = quantileDur(simD, qc.Q)
				row.Live = quantileDur(liveDelays[t], qc.Q)
				row.Within = qc.Band.Allows(row.Sim, row.Live)
				if !row.Within {
					rep.diverge("quantile-band", "type %s p%g queue delay: sim %v vs live %v outside band (rel %.2f, abs %v)",
						name, qc.Q*100, row.Sim, row.Live, qc.Band.Rel, qc.Band.Abs)
				}
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep
}

// liveQueueDelays extracts post-warmup per-type queueing delays from
// the replay spans. Span ingress offsets are normalized to the first
// replay arrival so the warmup fraction lines up with the sim's.
func liveQueueDelays(spans []trace.Span, numTypes int, cut time.Duration) [][]time.Duration {
	out := make([][]time.Duration, numTypes)
	if len(spans) == 0 {
		return out
	}
	minIngress := spans[0].Ingress
	for _, sp := range spans {
		if sp.Ingress < minIngress {
			minIngress = sp.Ingress
		}
	}
	for _, sp := range spans {
		if sp.Type < 0 || sp.Type >= numTypes {
			continue
		}
		if sp.Ingress-minIngress < cut {
			continue
		}
		out[sp.Type] = append(out[sp.Type], sp.QueueDelay())
	}
	return out
}

// dispatchInversions counts pairs where a request was dispatched
// before an earlier-arrived request by more than gap — zero (modulo
// clock noise) under a faithful c-FCFS, rampant under per-worker
// queues.
func dispatchInversions(spans []trace.Span, gap time.Duration) int {
	if len(spans) == 0 {
		return 0
	}
	ordered := append([]trace.Span(nil), spans...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Dispatched < ordered[j].Dispatched })
	inversions := 0
	maxIngress := ordered[0].Ingress
	for _, sp := range ordered[1:] {
		if sp.Ingress+gap < maxIngress {
			inversions++
			continue
		}
		if sp.Ingress > maxIngress {
			maxIngress = sp.Ingress
		}
	}
	return inversions
}

// reservationLegal checks one span against the reservation timeline:
// the span's worker must be reserved for or stealable by its type's
// group under the reservation active at dispatch time (spans within
// Epsilon of an update boundary may match either neighbour — the
// timeline and span clocks are stamped independently).
func reservationLegal(timeline []ResUpdate, sp trace.Span, eps time.Duration) bool {
	if len(timeline) == 0 {
		return true // startup c-FCFS: any worker is legal
	}
	active := -1
	for i, u := range timeline {
		if u.At <= sp.Dispatched {
			active = i
		} else {
			break
		}
	}
	if active == -1 {
		// Dispatched before the first update: startup c-FCFS, unless
		// the update landed within the skew window and should apply.
		return true
	}
	if reservationAllows(timeline[active].Res, sp) {
		return true
	}
	if active > 0 && sp.Dispatched-timeline[active].At <= eps &&
		reservationAllows(timeline[active-1].Res, sp) {
		return true
	}
	if active+1 < len(timeline) && timeline[active+1].At-sp.Dispatched <= eps &&
		reservationAllows(timeline[active+1].Res, sp) {
		return true
	}
	return false
}

// reservationAllows mirrors the live dispatcher's eligibility rule:
// a type may run on its group's reserved workers or the ones it may
// steal; an empty union (the spillway-less unknown case) falls back
// to any worker.
func reservationAllows(res *darc.Reservation, sp trace.Span) bool {
	if res == nil {
		return true
	}
	reserved := res.ReservedFor(sp.Type)
	stealable := res.StealableFor(sp.Type)
	if len(reserved)+len(stealable) == 0 {
		return true
	}
	for _, w := range reserved {
		if w == sp.Worker {
			return true
		}
	}
	for _, w := range stealable {
		if w == sp.Worker {
			return true
		}
	}
	return false
}

// quantileDur is the nearest-rank quantile of a sample set.
func quantileDur(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q*float64(len(s)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// String renders the report for logs and the psp-conform binary.
func (r *Report) String() string {
	var b strings.Builder
	verdict := "AGREE"
	if !r.Agree() {
		verdict = "DIVERGE"
	}
	label := r.Policy
	if r.Mutation != "" {
		label += " (mutated: " + r.Mutation + ")"
	}
	fmt.Fprintf(&b, "%s trace=%s policy=%s sim=%d/%d live=%d/%d/%d spans=%d updates=%d\n",
		verdict, r.Trace, label, r.SimComplete, r.SimArrived,
		r.LiveRecv, r.LiveTimeout, r.LiveDropped, r.ReplaySpans, r.ResUpdates)
	for _, d := range r.Divergences {
		fmt.Fprintf(&b, "  ! %s\n", d)
	}
	return b.String()
}

// MarkdownTable renders the agreement rows as an EXPERIMENTS.md-ready
// table.
func (r *Report) MarkdownTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "| type | quantile | sim queue delay | live queue delay | verdict |\n")
	fmt.Fprintf(&b, "|------|----------|-----------------|------------------|---------|\n")
	for _, row := range r.Rows {
		verdict := "within band"
		switch {
		case !row.Checked:
			verdict = fmt.Sprintf("skipped (n=%d/%d)", row.SimN, row.LiveN)
			fmt.Fprintf(&b, "| %s | p%g | — | — | %s |\n", row.TypeName, row.Quantile*100, verdict)
			continue
		case !row.Within:
			verdict = "**outside band**"
		}
		fmt.Fprintf(&b, "| %s | p%g | %v | %v | %s |\n",
			row.TypeName, row.Quantile*100, row.Sim.Round(time.Microsecond), row.Live.Round(time.Microsecond), verdict)
	}
	return b.String()
}
