package conformance

import (
	"fmt"

	"repro/internal/trace"
)

// RunCase runs one clean differential comparison: the trace is
// generated from the spec (seeded), fed to both implementations under
// the named policy, and compared.
func RunCase(spec TraceSpec, policyName string, seed uint64) (*Report, error) {
	tr, err := spec.GenerateSeeded(seed)
	if err != nil {
		return nil, err
	}
	return runOn(spec, tr, policyName, seed, nil)
}

// RunCanonical is RunCase with the spec's own pinned seed — the
// configuration the committed testdata traces correspond to.
func RunCanonical(spec TraceSpec, policyName string) (*Report, error) {
	return RunCase(spec, policyName, spec.Seed)
}

// RunMutationCase runs one detection trial: the sim models the
// mutation's declared policy, the live server runs the perturbed
// configuration, and the returned report must NOT agree.
func RunMutationCase(spec TraceSpec, mut Mutation, seed uint64) (*Report, error) {
	tr, err := spec.GenerateSeeded(seed)
	if err != nil {
		return nil, err
	}
	rep, err := runOn(spec, tr, mut.Policy, seed, &mut)
	if err != nil {
		return nil, err
	}
	rep.Mutation = mut.Name
	return rep, nil
}

func runOn(spec TraceSpec, tr *trace.Trace, policyName string, seed uint64, mut *Mutation) (*Report, error) {
	simRun, err := RunSim(spec, tr, policyName, seed)
	if err != nil {
		return nil, fmt.Errorf("conformance: sim %s/%s: %w", spec.Name, policyName, err)
	}
	liveRun, err := RunLive(spec, tr, policyName, seed, mut)
	if err != nil {
		return nil, fmt.Errorf("conformance: live %s/%s: %w", spec.Name, policyName, err)
	}
	return Compare(spec, tr, simRun, liveRun, DefaultOptions(policyName, tr.Len())), nil
}
