package conformance

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/classify"
	"repro/internal/darc"
	"repro/internal/loadgen"
	"repro/internal/proto"
	"repro/internal/psp"
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/workload"
)

const (
	// liveWarmupCalls primes the live server before the replay: DARC's
	// profiler needs completions to leave its c-FCFS startup window,
	// and every policy benefits from warmed scheduler state so the
	// replay spans measure steady behaviour.
	liveWarmupCalls = 120
	// liveMinWindow is the live DARC profiling window; liveWarmupCalls
	// comfortably exceeds it so the first reservation installs before
	// the replay starts.
	liveMinWindow = 96
	// liveSettle separates the warmup from the replay so in-flight
	// warmup work fully drains before the cutoff is stamped.
	liveSettle = 50 * time.Millisecond
	// liveTraceCap sizes the per-worker span rings so an entire
	// conformance run fits without a mid-run drain (spans are only
	// flushed at the end; a lost span would break exact conservation).
	liveTraceCap = 1 << 14

	// sleepTickComp compensates time.Sleep's timer-tick overshoot. On
	// the CI hosts this harness targets, a sleep lands uniformly 0–2ms
	// past its deadline regardless of duration; shaving the expected
	// overshoot off every multi-millisecond sleep centres the realised
	// service time on the trace's recorded demand instead of biasing it
	// long (which would inflate utilisation and DARC's profiled means
	// relative to the simulator).
	sleepTickComp = time.Millisecond
)

// sleepService realises one service demand, compensating the timer
// tick for durations where the correction cannot go negative-dominant.
func sleepService(svc time.Duration) {
	if svc >= 3*time.Millisecond {
		svc -= sleepTickComp
	}
	if svc > 0 {
		time.Sleep(svc)
	}
}

// ResUpdate is one reservation installation observed on the live
// server, stamped on the span clock (offset since server start).
type ResUpdate struct {
	At  time.Duration
	Res *darc.Reservation
}

// LiveRun is the live-server half of one differential comparison.
type LiveRun struct {
	Policy string
	// Spans are the replay's lifecycle spans (warmup excluded).
	Spans []trace.Span
	// WarmupSpans counts spans attributed to the warmup phase.
	WarmupSpans int
	// Result is the replay client's accounting.
	Result *loadgen.ReplayResult
	// Reservations is the DARC reservation timeline.
	Reservations []ResUpdate
	// ReservationAtReplay reports whether a reservation was installed
	// before the replay began (required under a declared darc policy).
	ReservationAtReplay bool
	// ReplayStart is the span-clock offset at which the replay began;
	// spans before it belong to the warmup.
	ReplayStart time.Duration
	// TraceLost counts spans dropped by full trace rings (must be 0
	// for exact conservation).
	TraceLost uint64
	// NumTypes, StaticReserved and ShortType echo the run parameters
	// the comparator needs.
	NumTypes       int
	StaticReserved int
	ShortType      int
	// AdmissionBudget echoes the case's *declared* uniform admission
	// budget (zero when the case declares no admission control) — set
	// even when a mutation quietly disabled the controller, since the
	// comparator checks the declaration, not the implementation.
	AdmissionBudget time.Duration
	// AdmissionShed is the admission controller's total refused count
	// (zero when the controller is absent).
	AdmissionShed uint64
}

// liveConfig builds the psp.Config for a declared policy, then lets
// the mutation perturb it.
func liveConfig(spec TraceSpec, numTypes int, policyName string, seed uint64, mut *Mutation) (psp.Config, error) {
	var cl classify.Classifier = classify.Field{Offset: 0, Types: numTypes}
	if mut != nil && mut.flipClassifier {
		field := classify.Field{Offset: 0, Types: numTypes}
		short, long := shortLongTypes(spec)
		cl = classify.Func{
			Types: numTypes,
			Label: "flipped",
			F: func(p []byte) int {
				t := field.Classify(p)
				switch t {
				case short:
					return long
				case long:
					return short
				}
				return t
			},
		}
	}
	cfg := psp.Config{
		Workers:    spec.Workers,
		Classifier: cl,
		// The handler reproduces the trace's recorded cost by sleeping
		// the payload-encoded service demand. Sleeping (not spinning)
		// matters: CI runners are oversubscribed and spinning workers
		// would starve the dispatcher (see chaos_test.go).
		Handler: psp.HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			if svc, ok := loadgen.ReplayService(p); ok {
				sleepService(svc)
			}
			return copy(r, p[:min(len(p), len(r))]), proto.StatusOK
		}),
		TraceCap: liveTraceCap,
	}
	switch policyName {
	case "darc":
		cfg.Mode = psp.ModeDARC
		dcfg := darc.DefaultConfig(spec.Workers)
		dcfg.MinWindowSamples = liveMinWindow
		cfg.DARC = dcfg
	case "darc-static":
		cfg.Mode = psp.ModeDARCStatic
		cfg.StaticMeans = spec.means()
		cfg.StaticReserved = spec.StaticReserved
	case "cfcfs":
		cfg.Mode = psp.ModeCFCFS
	case "dfcfs":
		cfg.Mode = psp.ModeDFCFS
		cfg.SteerSeed = seed | 1
	default:
		return psp.Config{}, fmt.Errorf("conformance: unknown policy %q", policyName)
	}
	if mut != nil {
		if mut.admissionBudget > 0 && !mut.disableAdmission {
			budgets := make([]time.Duration, numTypes)
			for i := range budgets {
				budgets[i] = mut.admissionBudget
			}
			cfg.Admission = &admission.Config{Budgets: budgets, UnknownBudget: mut.admissionBudget}
		}
		if mut.mode != nil {
			cfg.Mode = *mut.mode
		}
		if mut.staticReserved != nil {
			cfg.StaticReserved = *mut.staticReserved
		}
		if mut.faults != nil {
			cfg.Faults = mut.faults
		}
	}
	return cfg, nil
}

// shortLongTypes reports the type indices with the smallest and
// largest mean service times.
func shortLongTypes(spec TraceSpec) (short, long int) {
	for i, t := range spec.Mix.Types {
		if t.Service.Mean() < spec.Mix.Types[short].Service.Mean() {
			short = i
		}
		if t.Service.Mean() > spec.Mix.Types[long].Service.Mean() {
			long = i
		}
	}
	return short, long
}

// RunLive replays the trace against an in-process UDP server running
// the declared policy (optionally perturbed by mut) and captures the
// comparator's live-side inputs: replay spans, client accounting and
// the reservation timeline.
func RunLive(spec TraceSpec, tr *trace.Trace, policyName string, seed uint64, mut *Mutation) (*LiveRun, error) {
	return runLive(spec, tr, policyName, seed, mut, nil)
}

// RunLiveDuring is RunLive plus a concurrent mid-replay hook: when the
// replay starts, during(srv) runs on its own goroutine against the
// live server, and the harness waits for it to return before
// snapshotting. The reconfig-mid-trace conformance test uses it to
// issue benign live reconfigurations while the trace replays — the
// comparator must not be able to tell.
func RunLiveDuring(spec TraceSpec, tr *trace.Trace, policyName string, seed uint64, during func(*psp.Server)) (*LiveRun, error) {
	return runLive(spec, tr, policyName, seed, nil, during)
}

func runLive(spec TraceSpec, tr *trace.Trace, policyName string, seed uint64, mut *Mutation, during func(*psp.Server)) (*LiveRun, error) {
	numTypes := tr.NumTypes()
	if numTypes < len(spec.Mix.Types) {
		numTypes = len(spec.Mix.Types)
	}
	cfg, err := liveConfig(spec, numTypes, policyName, seed, mut)
	if err != nil {
		return nil, err
	}

	var spanMu sync.Mutex
	var spans []trace.Span
	cfg.TraceSink = func(sp trace.Span) {
		spanMu.Lock()
		spans = append(spans, sp)
		spanMu.Unlock()
	}
	srv, err := psp.NewServer(cfg)
	if err != nil {
		return nil, err
	}

	run := &LiveRun{
		Policy:         policyName,
		NumTypes:       numTypes,
		StaticReserved: spec.StaticReserved,
		ShortType:      spec.shortestType(),
	}
	if mut != nil {
		run.AdmissionBudget = mut.admissionBudget
	}
	var resMu sync.Mutex
	var t0 time.Time
	srv.Controller().OnUpdate = func(res *darc.Reservation) {
		at := time.Since(t0)
		resMu.Lock()
		run.Reservations = append(run.Reservations, ResUpdate{At: at, Res: res})
		resMu.Unlock()
	}

	// The span clock starts inside ListenUDPShards (srv.Start); t0
	// stamped immediately before keeps the reservation timeline and
	// the span offsets on the same clock to sub-millisecond skew.
	t0 = time.Now()
	u, err := psp.ListenUDPShards("127.0.0.1:0", srv, psp.UDPOptions{})
	if err != nil {
		return nil, err
	}
	defer u.Close()

	// Warmup: pipelined calls with the mix's mean service demands, so
	// DARC's profiler converges on the real per-type means before the
	// replay (and installs its first reservation). Keeping Workers
	// requests in flight overlaps the sleeps — a sequential warmup at
	// multi-millisecond services would take longer than the replay — and
	// exercises the same contended dispatch path the replay measures.
	wr := rng.New(seed ^ 0xC0FFEE)
	inflight := make([]<-chan psp.Response, 0, spec.Workers)
	for i := 0; i < liveWarmupCalls; i++ {
		typ := pickMixType(spec.Mix, wr)
		rec := trace.Record{Type: typ, Service: spec.Mix.Types[typ].Service.Mean()}
		ch, err := srv.Submit(loadgen.ReplayPayload(rec))
		if err != nil {
			return nil, fmt.Errorf("conformance: warmup submit: %w", err)
		}
		inflight = append(inflight, ch)
		if len(inflight) >= spec.Workers {
			<-inflight[0]
			inflight = inflight[1:]
		}
	}
	for _, ch := range inflight {
		<-ch
	}
	if policyName == "darc" {
		// Give a (possibly delayed) controller one more beat, then
		// record whether the reservation actually made it in; the
		// comparator turns a miss into a divergence.
		deadline := time.Now().Add(200 * time.Millisecond)
		for srv.Controller().Reservation() == nil && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		run.ReservationAtReplay = srv.Controller().Reservation() != nil
	}
	time.Sleep(liveSettle)
	run.ReplayStart = time.Since(t0)

	var hookWG sync.WaitGroup
	if during != nil {
		hookWG.Add(1)
		go func() {
			defer hookWG.Done()
			during(srv)
		}()
	}
	res, err := loadgen.ReplayUDP(u.Addr().String(), tr, loadgen.Config{Timeout: 10 * time.Second})
	hookWG.Wait()
	if err != nil {
		return nil, err
	}
	run.Result = res

	u.Close()
	stats := srv.StatsSnapshot()
	run.TraceLost = stats.TraceLost
	if stats.Admission != nil {
		run.AdmissionShed = stats.Admission.Totals().Shed()
	}

	// Partition by request ID, not by clock: the warmup's in-process
	// calls own server IDs 1..liveWarmupCalls, the replay owns the
	// rest. (An ingress-vs-ReplayStart comparison is tempting but the
	// two clocks start sub-milliseconds apart — on a loaded host the
	// skew swallows the replay's earliest arrivals.)
	spanMu.Lock()
	for _, sp := range spans {
		if sp.ID > liveWarmupCalls {
			run.Spans = append(run.Spans, sp)
		} else {
			run.WarmupSpans++
		}
	}
	spanMu.Unlock()
	return run, nil
}

// pickMixType samples a type index proportional to the mix ratios.
func pickMixType(mix workload.Mix, r *rng.RNG) int {
	u := r.Float64()
	var acc float64
	for i, t := range mix.Types {
		acc += t.Ratio
		if u < acc {
			return i
		}
	}
	return len(mix.Types) - 1
}
