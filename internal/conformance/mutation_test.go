package conformance

// Mutation-detection battery: the proof the harness has teeth. Each
// catalogue entry silently perturbs the live scheduler while the sim
// models the declared policy; the comparator must flag the divergence
// (zero false negatives) via the structural signal the mutation
// actually breaks — and the unperturbed counterpart at the same seed
// must still agree (zero false positives), so detection cannot be an
// artifact of the seed.

import "testing"

// expectedSignal maps each mutation to the divergence kind its
// perturbation must trip. Detecting a mutation only through loose
// statistical bands would be luck; these are the deterministic
// fingerprints.
var expectedSignal = map[string]string{
	"policy-swap-cfcfs":  "reservation", // declared DARC never installs one
	"delayed-update":     "reservation", // ReservationDelay outlives the run
	"reservation-shrink": "reservation", // non-shorts appear on reserved cores
	"policy-swap-dfcfs":  "fcfs-order",  // per-worker steering inverts arrivals
	"misclassify":        "type-counts", // served mix no longer matches the trace
	"admission-disabled": "admission",   // over-budget pressure, zero sheds
}

func TestMutationMatrixDetects(t *testing.T) {
	spec, err := SpecByName("bimodal")
	if err != nil {
		t.Fatal(err)
	}
	muts := Mutations()
	if testing.Short() {
		// One reservation-signal and one order-signal mutation keep the
		// race job honest without five live runs.
		short := muts[:0]
		for _, m := range muts {
			if m.Name == "policy-swap-cfcfs" || m.Name == "policy-swap-dfcfs" {
				short = append(short, m)
			}
		}
		muts = short
	}
	for _, mut := range muts {
		mut := mut
		t.Run(mut.Name, func(t *testing.T) {
			want, ok := expectedSignal[mut.Name]
			if !ok {
				t.Fatalf("mutation %q has no expected detection signal; extend expectedSignal", mut.Name)
			}
			rep, err := RunMutationCase(spec, mut, spec.Seed+11)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Agree() {
				t.Fatalf("mutation %q (%s) went undetected", mut.Name, mut.Detail)
			}
			for _, d := range rep.Divergences {
				if d.Kind == want {
					return
				}
			}
			t.Errorf("mutation %q detected, but not via the %q signal:\n%s", mut.Name, want, rep)
		})
	}
}

// TestMutationCleanCounterpartsAgree reruns every declared policy the
// catalogue hides under, unperturbed, at the same off-canonical seed
// the detection trials use: if a clean run diverged there, the matrix
// above would be detecting the seed rather than the mutation.
func TestMutationCleanCounterpartsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("clean counterparts run in the conformance CI job")
	}
	spec, err := SpecByName("bimodal")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, mut := range Mutations() {
		if seen[mut.Policy] {
			continue
		}
		seen[mut.Policy] = true
		rep := runCaseRetrying(t, spec, mut.Policy, spec.Seed+11)
		if !rep.Agree() {
			t.Errorf("clean %s at the detection seed diverged (false positive):\n%s", mut.Policy, rep)
		}
	}
}

// TestMutationCatalogueShape pins the catalogue's contract: every
// entry names a known policy, has a detail string, and the catalogue
// covers all three structural detector families.
func TestMutationCatalogueShape(t *testing.T) {
	policies := map[string]bool{}
	for _, p := range Policies() {
		policies[p] = true
	}
	signals := map[string]bool{}
	for _, mut := range Mutations() {
		if mut.Name == "" || mut.Detail == "" {
			t.Errorf("mutation %+v missing name or detail", mut)
		}
		if !policies[mut.Policy] {
			t.Errorf("mutation %q declares unknown policy %q", mut.Name, mut.Policy)
		}
		sig, ok := expectedSignal[mut.Name]
		if !ok {
			t.Errorf("mutation %q has no expected signal", mut.Name)
		}
		signals[sig] = true
		if _, err := MutationByName(mut.Name); err != nil {
			t.Errorf("MutationByName(%q): %v", mut.Name, err)
		}
	}
	for _, family := range []string{"reservation", "fcfs-order", "type-counts", "admission"} {
		if !signals[family] {
			t.Errorf("catalogue exercises no %q mutation", family)
		}
	}
}
