package rng

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

// TestFrozenStream pins the generator's output for a known seed so the
// experiment results stay reproducible across refactors.
func TestFrozenStream(t *testing.T) {
	r := New(42)
	got := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	r2 := New(42)
	for i, want := range got {
		if v := r2.Uint64(); v != want {
			t.Fatalf("stream not reproducible at %d: %d != %d", i, v, want)
		}
	}
	// Non-degenerate sanity.
	if got[0] == got[1] && got[1] == got[2] {
		t.Fatalf("constant output: %v", got)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("split streams coincide %d/1000 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %g, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("Intn(10) never produced %d", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniform(t *testing.T) {
	r := New(6)
	const buckets = 7
	counts := make([]int, buckets)
	n := 70000
	for i := 0; i < n; i++ {
		counts[r.Uint64n(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("bucket %d count %d deviates >10%% from %g", b, c, want)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(8)
	const mean = 100.0
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp returned negative %g", v)
		}
		sum += v
	}
	got := sum / float64(n)
	if math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("Exp mean %g, want ~%g", got, mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(9)
	const mu, sigma = 10.0, 3.0
	var sum, sq float64
	n := 200000
	for i := 0; i < n; i++ {
		v := r.Normal(mu, sigma)
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean-mu) > 0.05 {
		t.Fatalf("Normal mean %g, want ~%g", mean, mu)
	}
	if math.Abs(math.Sqrt(variance)-sigma) > 0.1 {
		t.Fatalf("Normal stddev %g, want ~%g", math.Sqrt(variance), sigma)
	}
}

func TestParetoMinimum(t *testing.T) {
	r := New(10)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(5, 1.5); v < 5 {
			t.Fatalf("Pareto below xm: %g", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	check := func(n uint8) bool {
		size := int(n%32) + 1
		p := r.Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFixedDist(t *testing.T) {
	d := Fixed(5 * time.Microsecond)
	r := New(1)
	for i := 0; i < 10; i++ {
		if v := d.Sample(r); v != 5*time.Microsecond {
			t.Fatalf("Fixed sampled %v", v)
		}
	}
	if d.Mean() != 5*time.Microsecond {
		t.Fatalf("Fixed mean %v", d.Mean())
	}
}

func TestExponentialDistMean(t *testing.T) {
	d := Exponential(50 * time.Microsecond)
	r := New(2)
	var sum time.Duration
	n := 100000
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	got := sum / time.Duration(n)
	want := 50 * time.Microsecond
	if got < want*95/100 || got > want*105/100 {
		t.Fatalf("Exponential mean %v, want ~%v", got, want)
	}
}

func TestUniformDist(t *testing.T) {
	d := Uniform{Lo: 10, Hi: 20}
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := d.Sample(r)
		if v < 10 || v > 20 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
	if d.Mean() != 15 {
		t.Fatalf("Uniform mean %v", d.Mean())
	}
}

func TestUniformDegenerate(t *testing.T) {
	d := Uniform{Lo: 10, Hi: 10}
	if v := d.Sample(New(1)); v != 10 {
		t.Fatalf("degenerate Uniform sampled %v", v)
	}
}

func TestBimodalDist(t *testing.T) {
	d := Bimodal{Short: 1 * time.Microsecond, Long: 100 * time.Microsecond, ShortRatio: 0.5}
	r := New(4)
	shorts := 0
	n := 100000
	for i := 0; i < n; i++ {
		switch d.Sample(r) {
		case 1 * time.Microsecond:
			shorts++
		case 100 * time.Microsecond:
		default:
			t.Fatal("Bimodal produced a third value")
		}
	}
	frac := float64(shorts) / float64(n)
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("Bimodal short fraction %g, want ~0.5", frac)
	}
	wantMean := time.Duration(0.5*1000 + 0.5*100000)
	if d.Mean() != wantMean {
		t.Fatalf("Bimodal mean %v, want %v", d.Mean(), wantMean)
	}
}

func TestDiscreteDist(t *testing.T) {
	d, err := NewDiscrete(
		[]time.Duration{1 * time.Microsecond, 2 * time.Microsecond, 3 * time.Microsecond},
		[]float64{0.2, 0.3, 0.5},
	)
	if err != nil {
		t.Fatal(err)
	}
	r := New(5)
	counts := map[time.Duration]int{}
	n := 100000
	for i := 0; i < n; i++ {
		counts[d.Sample(r)]++
	}
	for v, want := range map[time.Duration]float64{
		1 * time.Microsecond: 0.2,
		2 * time.Microsecond: 0.3,
		3 * time.Microsecond: 0.5,
	} {
		got := float64(counts[v]) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("Discrete P(%v)=%g, want ~%g", v, got, want)
		}
	}
	wantMean := time.Duration(0.2*1000 + 0.3*2000 + 0.5*3000)
	if d.Mean() != wantMean {
		t.Fatalf("Discrete mean %v, want %v", d.Mean(), wantMean)
	}
}

func TestDiscreteValidation(t *testing.T) {
	if _, err := NewDiscrete(nil, nil); err == nil {
		t.Fatal("empty discrete accepted")
	}
	if _, err := NewDiscrete([]time.Duration{1}, []float64{-1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewDiscrete([]time.Duration{1}, []float64{0}); err == nil {
		t.Fatal("zero total weight accepted")
	}
	if _, err := NewDiscrete([]time.Duration{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestBoundedParetoRespectsMax(t *testing.T) {
	d := BoundedPareto{Min: 1000, Max: 100000, Alpha: 1.1}
	r := New(6)
	for i := 0; i < 50000; i++ {
		v := d.Sample(r)
		if v < 1000 || v > 100000 {
			t.Fatalf("BoundedPareto out of range: %v", v)
		}
	}
}

func TestUint32AndInt63(t *testing.T) {
	r := New(12)
	seen32 := map[uint32]bool{}
	for i := 0; i < 100; i++ {
		seen32[r.Uint32()] = true
		if v := r.Int63(); v < 0 {
			t.Fatalf("Int63 negative: %d", v)
		}
	}
	if len(seen32) < 95 {
		t.Fatalf("Uint32 produced only %d distinct values in 100 draws", len(seen32))
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(13)
	var sum float64
	n := 50000
	for i := 0; i < n; i++ {
		v := r.LogNormal(0, 0.5)
		if v <= 0 {
			t.Fatalf("LogNormal non-positive: %g", v)
		}
		sum += math.Log(v)
	}
	// The log of samples has mean mu=0.
	if got := sum / float64(n); math.Abs(got) > 0.02 {
		t.Fatalf("log-mean %g, want ~0", got)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestParetoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pareto(0,1) did not panic")
		}
	}()
	New(1).Pareto(0, 1)
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestDistStrings(t *testing.T) {
	d, _ := NewDiscrete([]time.Duration{1, 2}, []float64{1, 1})
	for _, dist := range []Dist{
		Fixed(time.Microsecond),
		Exponential(time.Microsecond),
		Uniform{Lo: 1, Hi: 2},
		BoundedPareto{Min: 1, Max: 10, Alpha: 1.5},
		Bimodal{Short: 1, Long: 2, ShortRatio: 0.5},
		d,
	} {
		if dist.String() == "" {
			t.Errorf("%T has empty String()", dist)
		}
	}
}

func TestBoundedParetoMean(t *testing.T) {
	// Unbounded alpha>1: mean = a*xm/(a-1).
	p := BoundedPareto{Min: 1000, Alpha: 2}
	if got := p.Mean(); got != 2000 {
		t.Fatalf("unbounded mean %v, want 2µs", got)
	}
	// alpha <= 1 unbounded: divergent sentinel.
	div := BoundedPareto{Min: 1000, Alpha: 0.9}
	if div.Mean() < time.Duration(1<<61) {
		t.Fatalf("divergent mean not flagged: %v", div.Mean())
	}
	// Bounded: mean is finite and between min and max.
	b := BoundedPareto{Min: 1000, Max: 100000, Alpha: 1.2}
	m := b.Mean()
	if m <= 1000 || m >= 100000 {
		t.Fatalf("bounded mean %v out of range", m)
	}
	// alpha == 1 closed form.
	one := BoundedPareto{Min: 1000, Max: 10000, Alpha: 1}
	m1 := one.Mean()
	if m1 <= 1000 || m1 >= 10000 {
		t.Fatalf("alpha=1 mean %v out of range", m1)
	}
}

func TestUniformMean(t *testing.T) {
	if (Uniform{Lo: 10, Hi: 30}).Mean() != 20 {
		t.Fatal("Uniform mean wrong")
	}
}
