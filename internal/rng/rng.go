// Package rng provides a deterministic, splittable pseudo-random number
// generator and the sampling distributions used by the workload
// generators and simulator.
//
// The generator is PCG-XSH-RR 64/32 pairs combined into 64-bit outputs.
// It is deliberately not the standard library generator so that
// experiment results are reproducible across Go releases: the stream
// for a given seed is frozen by this package's tests.
package rng

import "math"

// mul is the PCG default multiplier for 64-bit state.
const mul = 6364136223846793005

// RNG is a deterministic pseudo-random number generator. It is not safe
// for concurrent use; use Split to derive independent streams for
// concurrent components.
type RNG struct {
	state uint64
	inc   uint64 // stream selector; must be odd
}

// New returns a generator seeded with seed on the default stream.
func New(seed uint64) *RNG {
	return NewStream(seed, 0xda3e39cb94b95bdb)
}

// NewStream returns a generator with an explicit stream selector, so
// that two generators with the same seed but different streams produce
// independent sequences.
func NewStream(seed, stream uint64) *RNG {
	r := &RNG{inc: stream<<1 | 1}
	r.state = r.inc + seed
	r.Uint64()
	return r
}

// Split derives a new, statistically independent generator from r,
// advancing r in the process. Derived generators are deterministic
// functions of r's state at the time of the call.
func (r *RNG) Split() *RNG {
	return NewStream(r.Uint64(), r.Uint64())
}

// next32 advances the underlying PCG state and returns 32 bits.
func (r *RNG) next32() uint32 {
	old := r.state
	r.state = old*mul + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	hi := uint64(r.next32())
	lo := uint64(r.next32())
	return hi<<32 | lo
}

// Uint32 returns a uniformly distributed 32-bit value.
func (r *RNG) Uint32() uint32 { return r.next32() }

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed value in [0, n). It panics if
// n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63 returns a non-negative 63-bit value.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Uint64n returns a uniformly distributed value in [0, n) using
// Lemire's nearly-divisionless method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Rejection sampling over the top of the range keeps the result
	// exactly uniform.
	threshold := -n % n
	for {
		v := r.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Exp returns an exponentially distributed value with the given mean.
// The mean must be positive.
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp with non-positive mean")
	}
	// Avoid log(0): Float64 is in [0,1), so 1-u is in (0,1].
	return -mean * math.Log(1-r.Float64())
}

// Normal returns a normally distributed value with the given mean and
// standard deviation (Box-Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := 1 - r.Float64() // (0,1]
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a log-normally distributed value parameterised by
// the mu and sigma of the underlying normal.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Pareto returns a bounded Pareto-distributed value with shape alpha
// and minimum xm. Heavy-tailed service time experiments use this.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("rng: Pareto with non-positive parameter")
	}
	u := 1 - r.Float64() // (0,1]
	return xm / math.Pow(u, 1/alpha)
}

// Shuffle pseudo-randomly permutes the first n elements using the
// provided swap function (Fisher-Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
