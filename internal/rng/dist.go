package rng

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Dist is a distribution over durations, used for service times and
// inter-arrival gaps. Implementations must be deterministic functions
// of the supplied generator.
type Dist interface {
	// Sample draws one value. Implementations never return a negative
	// duration.
	Sample(r *RNG) time.Duration
	// Mean reports the distribution's expectation.
	Mean() time.Duration
	// String describes the distribution for logs and reports.
	String() string
}

// Fixed is a degenerate distribution that always returns the same
// value. The paper's synthetic workloads use fixed per-type service
// times.
type Fixed time.Duration

// Sample implements Dist.
func (f Fixed) Sample(*RNG) time.Duration { return time.Duration(f) }

// Mean implements Dist.
func (f Fixed) Mean() time.Duration { return time.Duration(f) }

func (f Fixed) String() string { return fmt.Sprintf("fixed(%v)", time.Duration(f)) }

// Exponential is an exponential distribution with the given mean.
type Exponential time.Duration

// Sample implements Dist.
func (e Exponential) Sample(r *RNG) time.Duration {
	return time.Duration(r.Exp(float64(e)))
}

// Mean implements Dist.
func (e Exponential) Mean() time.Duration { return time.Duration(e) }

func (e Exponential) String() string {
	return fmt.Sprintf("exp(%v)", time.Duration(e))
}

// Uniform is a uniform distribution over [Lo, Hi].
type Uniform struct {
	Lo, Hi time.Duration
}

// Sample implements Dist.
func (u Uniform) Sample(r *RNG) time.Duration {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + time.Duration(r.Uint64n(uint64(u.Hi-u.Lo)+1))
}

// Mean implements Dist.
func (u Uniform) Mean() time.Duration { return (u.Lo + u.Hi) / 2 }

func (u Uniform) String() string {
	return fmt.Sprintf("uniform(%v,%v)", u.Lo, u.Hi)
}

// BoundedPareto is a Pareto distribution with minimum Min and shape
// Alpha, truncated at Max (resampled on overflow). It models
// heavy-tailed service times with a controllable tail.
type BoundedPareto struct {
	Min   time.Duration
	Max   time.Duration
	Alpha float64
}

// Sample implements Dist.
func (p BoundedPareto) Sample(r *RNG) time.Duration {
	for i := 0; i < 64; i++ {
		v := time.Duration(r.Pareto(float64(p.Min), p.Alpha))
		if p.Max == 0 || v <= p.Max {
			return v
		}
	}
	return p.Max
}

// Mean implements Dist. For alpha <= 1 the unbounded mean diverges; we
// report the truncated mean numerically in that case.
func (p BoundedPareto) Mean() time.Duration {
	a := p.Alpha
	xm := float64(p.Min)
	if p.Max == 0 {
		if a <= 1 {
			return time.Duration(1<<62 - 1)
		}
		return time.Duration(a * xm / (a - 1))
	}
	h := float64(p.Max)
	if a == 1 {
		// E[X] for bounded Pareto with alpha=1.
		return time.Duration(xm * h / (h - xm) * (math.Log(h) - math.Log(xm)))
	}
	num := math.Pow(xm, a) / (1 - math.Pow(xm/h, a)) * a / (a - 1) *
		(1/math.Pow(xm, a-1) - 1/math.Pow(h, a-1))
	return time.Duration(num)
}

func (p BoundedPareto) String() string {
	return fmt.Sprintf("pareto(min=%v,max=%v,alpha=%.2f)", p.Min, p.Max, p.Alpha)
}

// Bimodal mixes two fixed durations: Short with probability ShortRatio,
// Long otherwise.
type Bimodal struct {
	Short      time.Duration
	Long       time.Duration
	ShortRatio float64
}

// Sample implements Dist.
func (b Bimodal) Sample(r *RNG) time.Duration {
	if r.Float64() < b.ShortRatio {
		return b.Short
	}
	return b.Long
}

// Mean implements Dist.
func (b Bimodal) Mean() time.Duration {
	return time.Duration(b.ShortRatio*float64(b.Short) + (1-b.ShortRatio)*float64(b.Long))
}

func (b Bimodal) String() string {
	return fmt.Sprintf("bimodal(%v@%.3f,%v@%.3f)", b.Short, b.ShortRatio, b.Long, 1-b.ShortRatio)
}

// Discrete is a general n-point distribution: value Values[i] is drawn
// with weight Weights[i] (weights need not sum to 1).
type Discrete struct {
	Values  []time.Duration
	Weights []float64
	cum     []float64 // lazily built cumulative weights
	total   float64
}

// NewDiscrete builds a discrete distribution, validating its shape.
func NewDiscrete(values []time.Duration, weights []float64) (*Discrete, error) {
	if len(values) == 0 || len(values) != len(weights) {
		return nil, fmt.Errorf("rng: discrete distribution needs matching non-empty values/weights, got %d/%d", len(values), len(weights))
	}
	d := &Discrete{Values: values, Weights: weights}
	d.cum = make([]float64, len(weights))
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("rng: negative weight %f at index %d", w, i)
		}
		d.total += w
		d.cum[i] = d.total
	}
	if d.total <= 0 {
		return nil, fmt.Errorf("rng: discrete distribution has zero total weight")
	}
	return d, nil
}

// Sample implements Dist.
func (d *Discrete) Sample(r *RNG) time.Duration {
	u := r.Float64() * d.total
	i := sort.SearchFloat64s(d.cum, u)
	if i >= len(d.Values) {
		i = len(d.Values) - 1
	}
	return d.Values[i]
}

// Mean implements Dist.
func (d *Discrete) Mean() time.Duration {
	var m float64
	for i, v := range d.Values {
		m += float64(v) * d.Weights[i] / d.total
	}
	return time.Duration(m)
}

func (d *Discrete) String() string {
	return fmt.Sprintf("discrete(%d points)", len(d.Values))
}
