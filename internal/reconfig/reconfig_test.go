package reconfig

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

func TestParseSpecFull(t *testing.T) {
	sp, err := ParseSpec(map[string]string{
		"policy":              "darc-static",
		"workers":             "6",
		"static-reserved":     "2",
		"static-means":        "5us,500us",
		"admission":           "3ms,0,50ms",
		"unknown-budget":      "10ms",
		"admission-trim":      "1ms",
		"admission-automult":  "25",
		"admission-minbudget": "2ms",
		"darc-update":         "true",
		"drain":               "2s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Policy == nil || sp.Policy.Mode != "darc-static" || sp.Policy.StaticReserved != 2 {
		t.Fatalf("policy: %+v", sp.Policy)
	}
	if len(sp.Policy.StaticMeans) != 2 || sp.Policy.StaticMeans[1] != 500*time.Microsecond {
		t.Fatalf("static means: %v", sp.Policy.StaticMeans)
	}
	if sp.Workers == nil || *sp.Workers != 6 {
		t.Fatalf("workers: %v", sp.Workers)
	}
	a := sp.Admission
	if a == nil || len(a.Budgets) != 3 || a.Budgets[1] != 0 || a.Budgets[2] != 50*time.Millisecond {
		t.Fatalf("admission budgets: %+v", a)
	}
	if *a.UnknownBudget != 10*time.Millisecond || *a.OverloadDelay != time.Millisecond ||
		*a.AutoMult != 25 || *a.MinBudget != 2*time.Millisecond {
		t.Fatalf("admission knobs: %+v", a)
	}
	if !sp.ForceDARCUpdate || sp.DrainDeadline != 2*time.Second {
		t.Fatalf("force/drain: %+v", sp)
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := []map[string]string{
		{},                           // empty spec
		{"workers": "0"},             // non-positive
		{"workers": "x"},             // non-integer
		{"static-reserved": "1"},     // policy knob without policy=
		{"admission": "-3ms"},        // negative budget
		{"bogus": "1"},               // unknown key
		{"drain": "-1s"},             // negative deadline
		{"admission-automult": "-2"}, // non-positive multiplier
	}
	for _, kv := range cases {
		if _, err := ParseSpec(kv); err == nil {
			t.Errorf("ParseSpec(%v) accepted, want error", kv)
		}
	}
}

func TestParseSpecFile(t *testing.T) {
	sp, err := ParseSpecFile(`
# soak reload profile
policy = cfcfs   # back to the baseline
workers = 3
drain = 500ms
`)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Policy.Mode != "cfcfs" || *sp.Workers != 3 || sp.DrainDeadline != 500*time.Millisecond {
		t.Fatalf("parsed: %+v", sp)
	}
	if _, err := ParseSpecFile("policy=darc\npolicy=cfcfs\n"); err == nil {
		t.Fatal("duplicate key accepted")
	}
	if _, err := ParseSpecFile("not a pair\n"); err == nil {
		t.Fatal("malformed line accepted")
	}
}

// fakeTarget records the last spec and returns canned answers.
type fakeTarget struct {
	last Spec
	err  error
}

func (f *fakeTarget) Reconfigure(sp Spec) (Result, error) {
	f.last = sp
	if f.err != nil {
		return Result{}, f.err
	}
	return Result{Generation: 7, Applied: []string{"policy cfcfs"}}, nil
}

func (f *fakeTarget) ConfigSnapshot() Snapshot {
	return Snapshot{Policy: "DARC", Workers: 4, Generation: 6}
}

func TestAdminHandler(t *testing.T) {
	ft := &fakeTarget{}
	srv := httptest.NewServer(AdminHandler(ft))
	defer srv.Close()

	// GET /admin/config round-trips the snapshot.
	resp, err := http.Get(srv.URL + "/admin/config")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Policy != "DARC" || snap.Workers != 4 {
		t.Fatalf("snapshot: %+v", snap)
	}

	// POST /admin/reconfig applies a parsed spec.
	resp, err = http.PostForm(srv.URL+"/admin/reconfig",
		url.Values{"policy": {"cfcfs"}, "workers": {"2"}})
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || res.Generation != 7 {
		t.Fatalf("status %d result %+v", resp.StatusCode, res)
	}
	if ft.last.Policy.Mode != "cfcfs" || *ft.last.Workers != 2 {
		t.Fatalf("spec delivered: %+v", ft.last)
	}

	// Malformed spec: 400 before the target is consulted.
	resp, _ = http.PostForm(srv.URL+"/admin/reconfig", url.Values{"workers": {"zero"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed spec: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Target rejection: 409 with the server's error text.
	ft.err = errTest
	resp, _ = http.PostForm(srv.URL+"/admin/reconfig", url.Values{"policy": {"warp"}})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("rejected spec: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Wrong methods.
	resp, _ = http.Post(srv.URL+"/admin/config", "text/plain", strings.NewReader(""))
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /admin/config: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Get(srv.URL + "/admin/reconfig")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /admin/reconfig: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

var errTest = errorString("no such policy")

type errorString string

func (e errorString) Error() string { return string(e) }
