package reconfig

import (
	"encoding/json"
	"net/http"
)

// AdminHandler serves the runtime control plane over HTTP:
//
//	GET  /admin/config   — the current Snapshot, as JSON
//	POST /admin/reconfig — apply a Spec; fields arrive as form values
//	                       (or query parameters) in ParseSpec's
//	                       key=value vocabulary, e.g.
//	                       curl -X POST 'host:port/admin/reconfig' \
//	                            -d policy=cfcfs -d workers=6
//
// A malformed spec answers 400; a spec the server rejects (unknown
// policy, admission disabled, resize out of range) answers 409 with
// the server's error; success answers 200 with the Result as JSON.
// Mount it on the same mux as /metrics (psp's ServeMetrics does).
func AdminHandler(t Target) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/admin/config", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, http.StatusOK, t.ConfigSnapshot())
	})
	mux.HandleFunc("/admin/reconfig", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if err := r.ParseForm(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		kv := make(map[string]string, len(r.Form))
		for k, vs := range r.Form {
			if len(vs) > 0 {
				kv[k] = vs[len(vs)-1]
			}
		}
		sp, err := ParseSpec(kv)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := t.Reconfigure(sp)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}
