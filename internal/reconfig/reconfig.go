// Package reconfig defines the live runtime's control plane: the
// declarative Spec an operator submits to change a running server
// (scheduling policy, worker population, admission budgets, DARC
// reservation refresh), the Result and Snapshot the server answers
// with, and the transports that carry them — an admin HTTP handler
// (POST /admin/reconfig, GET /admin/config) and a key=value config
// file format for SIGHUP reloads.
//
// The package is deliberately mechanism-free: internal/psp implements
// the Target interface and owns the request-safe handoff (no enqueue
// lost, no double-dispatch, graceful drain of retiring workers);
// reconfig only describes *what* to change and ferries the answer.
package reconfig

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// PolicyChange asks for a scheduling-policy swap. Mode names follow
// psp.Mode.String (case-insensitive, punctuation-insensitive): "darc",
// "c-fcfs"/"cfcfs", "d-fcfs"/"dfcfs", "darc-static".
type PolicyChange struct {
	// Mode is the target policy name (required).
	Mode string
	// StaticReserved and StaticMeans configure "darc-static" (ignored
	// for other modes). StaticMeans must cover every request type.
	StaticReserved int
	StaticMeans    []time.Duration
	// SteerSeed reseeds "d-fcfs" worker steering (0 keeps the current
	// stream).
	SteerSeed uint64
}

// AdmissionChange adjusts the admission controller's policy. Nil
// pointer fields keep the current value; a non-nil Budgets slice
// replaces the per-type budget table wholesale (zero entries revert
// that type to auto-derivation).
type AdmissionChange struct {
	Budgets       []time.Duration
	UnknownBudget *time.Duration
	OverloadDelay *time.Duration
	AutoMult      *float64
	MinBudget     *time.Duration
}

// Spec is one atomic reconfiguration request. Every non-nil field is
// applied in a single pass on the dispatcher's thread of control —
// admission first, then the DARC refresh, then the policy swap, then
// the worker resize — so no request ever observes a half-applied
// configuration.
type Spec struct {
	// Policy swaps the scheduling policy (nil keeps the current one).
	Policy *PolicyChange
	// Workers resizes the worker pool (nil keeps the current size).
	// Shrinks retire the highest-numbered workers gracefully: they
	// finish their in-flight request, then exit; the call returns when
	// the last retiree has drained.
	Workers *int
	// Admission adjusts admission budgets (nil keeps the policy;
	// rejected if the server was built without admission control).
	Admission *AdmissionChange
	// ForceDARCUpdate recomputes the DARC reservation from the current
	// profiling window immediately, regardless of update triggers.
	ForceDARCUpdate bool
	// DrainDeadline bounds how long a shrink is expected to wait for
	// retiring workers (0 = DefaultDrainDeadline). The drain always
	// runs to completion — a worker mid-request cannot be preempted —
	// but a wait beyond the deadline is flagged on the Result and
	// counted by the soak harness as a violation.
	DrainDeadline time.Duration
}

// DefaultDrainDeadline bounds shrink drains when the Spec leaves
// DrainDeadline zero.
const DefaultDrainDeadline = 5 * time.Second

// Empty reports whether the spec asks for nothing.
func (sp Spec) Empty() bool {
	return sp.Policy == nil && sp.Workers == nil && sp.Admission == nil && !sp.ForceDARCUpdate
}

// Result reports what one Reconfigure application did.
type Result struct {
	// Generation is the server's configuration generation after this
	// spec applied (monotonic; bumped once per applied spec).
	Generation uint64 `json:"generation"`
	// Applied lists human-readable descriptions of each change made.
	Applied []string `json:"applied,omitempty"`
	// Migrated counts queued requests moved between queue families by
	// a policy swap; MigratedShed counts the ones the target family
	// had no room for (answered as shed/dropped, never silently lost).
	Migrated     int `json:"migrated,omitempty"`
	MigratedShed int `json:"migrated_shed,omitempty"`
	// Retired and Added count workers leaving/joining the pool.
	Retired int `json:"retired,omitempty"`
	Added   int `json:"added,omitempty"`
	// DrainWait is how long the shrink waited for retiring workers to
	// finish their in-flight requests; DrainDeadlineExceeded flags a
	// wait beyond the spec's deadline.
	DrainWait             time.Duration `json:"drain_wait_ns,omitempty"`
	DrainDeadlineExceeded bool          `json:"drain_deadline_exceeded,omitempty"`
}

// Snapshot is the server's current configuration as reported by GET
// /admin/config.
type Snapshot struct {
	Policy     string        `json:"policy"`
	Workers    int           `json:"workers"`
	Generation uint64        `json:"generation"`
	Admission  bool          `json:"admission"`
	Budgets    []string      `json:"budgets,omitempty"`
	Overload   time.Duration `json:"overload_threshold_ns,omitempty"`
}

// Target is the live server as the control plane sees it;
// *psp.Server implements it.
type Target interface {
	Reconfigure(Spec) (Result, error)
	ConfigSnapshot() Snapshot
}

// ParseSpec builds a Spec from key=value pairs — the admin endpoint's
// form fields and the config file's lines share this vocabulary:
//
//	policy=darc|cfcfs|dfcfs|darc-static   target scheduling policy
//	workers=N                             target worker-pool size
//	static-reserved=N                     darc-static reserved cores
//	static-means=5us,500us                darc-static per-type means
//	steer-seed=N                          d-fcfs steering reseed
//	admission=3ms,0,50ms                  per-type budgets (0 = auto)
//	unknown-budget=10ms                   unclassified-request budget
//	admission-trim=1ms                    sustained-overload threshold
//	admission-automult=20                 auto-budget multiplier
//	admission-minbudget=1ms               auto-budget floor
//	darc-update=true                      force a reservation refresh
//	drain=2s                              shrink drain deadline
func ParseSpec(kv map[string]string) (Spec, error) {
	var sp Spec
	pol := func() *PolicyChange {
		if sp.Policy == nil {
			sp.Policy = &PolicyChange{}
		}
		return sp.Policy
	}
	adm := func() *AdmissionChange {
		if sp.Admission == nil {
			sp.Admission = &AdmissionChange{}
		}
		return sp.Admission
	}
	// Deterministic application order so error messages are stable.
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := strings.TrimSpace(kv[k])
		var err error
		switch k {
		case "policy":
			pol().Mode = v
		case "workers":
			n, perr := strconv.Atoi(v)
			if perr != nil || n <= 0 {
				return Spec{}, fmt.Errorf("reconfig: workers=%q (want a positive integer)", v)
			}
			sp.Workers = &n
		case "static-reserved":
			pol().StaticReserved, err = strconv.Atoi(v)
			if err != nil || pol().StaticReserved < 0 {
				return Spec{}, fmt.Errorf("reconfig: static-reserved=%q (want a non-negative integer)", v)
			}
		case "static-means":
			pol().StaticMeans, err = parseDurations(v)
			if err != nil {
				return Spec{}, fmt.Errorf("reconfig: static-means: %v", err)
			}
		case "steer-seed":
			pol().SteerSeed, err = strconv.ParseUint(v, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("reconfig: steer-seed=%q (want an unsigned integer)", v)
			}
		case "admission":
			adm().Budgets, err = parseDurations(v)
			if err != nil {
				return Spec{}, fmt.Errorf("reconfig: admission: %v", err)
			}
		case "unknown-budget":
			adm().UnknownBudget, err = parseDurationPtr(v)
			if err != nil {
				return Spec{}, fmt.Errorf("reconfig: unknown-budget: %v", err)
			}
		case "admission-trim":
			adm().OverloadDelay, err = parseDurationPtr(v)
			if err != nil {
				return Spec{}, fmt.Errorf("reconfig: admission-trim: %v", err)
			}
		case "admission-automult":
			f, perr := strconv.ParseFloat(v, 64)
			if perr != nil || f <= 0 {
				return Spec{}, fmt.Errorf("reconfig: admission-automult=%q (want a positive number)", v)
			}
			adm().AutoMult = &f
		case "admission-minbudget":
			adm().MinBudget, err = parseDurationPtr(v)
			if err != nil {
				return Spec{}, fmt.Errorf("reconfig: admission-minbudget: %v", err)
			}
		case "darc-update":
			sp.ForceDARCUpdate, err = strconv.ParseBool(v)
			if err != nil {
				return Spec{}, fmt.Errorf("reconfig: darc-update=%q (want a boolean)", v)
			}
		case "drain":
			sp.DrainDeadline, err = time.ParseDuration(v)
			if err != nil || sp.DrainDeadline < 0 {
				return Spec{}, fmt.Errorf("reconfig: drain=%q (want a non-negative duration)", v)
			}
		default:
			return Spec{}, fmt.Errorf("reconfig: unknown key %q", k)
		}
	}
	if sp.Policy != nil && sp.Policy.Mode == "" {
		return Spec{}, fmt.Errorf("reconfig: static-reserved/static-means/steer-seed need policy=")
	}
	if sp.Empty() {
		return Spec{}, fmt.Errorf("reconfig: empty spec (nothing to change)")
	}
	return sp, nil
}

// ParseSpecFile decodes the SIGHUP config-file format: one key=value
// per line, '#' comments, blank lines ignored. The vocabulary is
// ParseSpec's.
func ParseSpecFile(text string) (Spec, error) {
	kv := make(map[string]string)
	sc := bufio.NewScanner(strings.NewReader(text))
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Text()
		if i := strings.IndexByte(raw, '#'); i >= 0 {
			raw = raw[:i]
		}
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		k, v, ok := strings.Cut(raw, "=")
		if !ok {
			return Spec{}, fmt.Errorf("reconfig: line %d: %q is not key=value", line, raw)
		}
		k = strings.TrimSpace(k)
		if _, dup := kv[k]; dup {
			return Spec{}, fmt.Errorf("reconfig: line %d: duplicate key %q", line, k)
		}
		kv[k] = strings.TrimSpace(v)
	}
	if err := sc.Err(); err != nil {
		return Spec{}, err
	}
	return ParseSpec(kv)
}

// parseDurations decodes a comma-separated duration list; bare "0"
// entries are allowed (meaning "auto" for budgets, and are invalid to
// reject here since both uses accept zero).
func parseDurations(v string) ([]time.Duration, error) {
	parts := strings.Split(v, ",")
	out := make([]time.Duration, len(parts))
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if p == "0" {
			continue
		}
		d, err := time.ParseDuration(p)
		if err != nil {
			return nil, fmt.Errorf("entry %d: %v", i, err)
		}
		if d < 0 {
			return nil, fmt.Errorf("entry %d: negative duration %v", i, d)
		}
		out[i] = d
	}
	return out, nil
}

func parseDurationPtr(v string) (*time.Duration, error) {
	d, err := time.ParseDuration(v)
	if err != nil {
		return nil, err
	}
	if d < 0 {
		return nil, fmt.Errorf("negative duration %v", d)
	}
	return &d, nil
}
