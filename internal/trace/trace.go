// Package trace records and replays arrival traces: each record is one
// request's arrival offset, type, and service demand. Traces let
// experiments replay production-like arrival sequences (or captured
// simulator runs) instead of synthetic Poisson processes, and make
// cross-policy comparisons exactly paired.
//
// The on-disk format is CSV with a header, one line per request:
//
//	offset_ns,type,service_ns
//	0,0,500
//	812,1,500000
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Record is one request arrival.
type Record struct {
	// Offset is the arrival instant relative to trace start.
	Offset time.Duration
	// Type is the request type index.
	Type int
	// Service is the request's service demand.
	Service time.Duration
}

// Trace is an ordered arrival sequence.
type Trace struct {
	Records []Record
}

// Len reports the number of records.
func (t *Trace) Len() int { return len(t.Records) }

// Duration reports the offset of the last arrival (0 when empty).
func (t *Trace) Duration() time.Duration {
	if len(t.Records) == 0 {
		return 0
	}
	return t.Records[len(t.Records)-1].Offset
}

// NumTypes reports 1 + the largest type index seen (0 when empty).
func (t *Trace) NumTypes() int {
	max := -1
	for _, r := range t.Records {
		if r.Type > max {
			max = r.Type
		}
	}
	return max + 1
}

// Rate reports the average arrival rate in requests/second.
func (t *Trace) Rate() float64 {
	d := t.Duration()
	if d <= 0 || len(t.Records) < 2 {
		return 0
	}
	return float64(len(t.Records)-1) / d.Seconds()
}

// Sort orders records by arrival offset (stable).
func (t *Trace) Sort() {
	sort.SliceStable(t.Records, func(i, j int) bool {
		return t.Records[i].Offset < t.Records[j].Offset
	})
}

// Validate checks monotone offsets and non-negative fields.
func (t *Trace) Validate() error {
	var prev time.Duration
	for i, r := range t.Records {
		if r.Offset < prev {
			return fmt.Errorf("trace: record %d offset %v before previous %v (call Sort)", i, r.Offset, prev)
		}
		if r.Type < 0 {
			return fmt.Errorf("trace: record %d has negative type", i)
		}
		if r.Service <= 0 {
			return fmt.Errorf("trace: record %d has non-positive service", i)
		}
		prev = r.Offset
	}
	return nil
}

// Write serialises the trace as CSV.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("offset_ns,type,service_ns\n"); err != nil {
		return err
	}
	for _, r := range t.Records {
		if _, err := fmt.Fprintf(bw, "%d,%d,%d\n", int64(r.Offset), r.Type, int64(r.Service)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a CSV trace.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	t := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if line == 1 && strings.HasPrefix(text, "offset_ns") {
			continue // header
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 3 fields, got %d", line, len(parts))
		}
		off, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad offset: %w", line, err)
		}
		typ, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad type: %w", line, err)
		}
		svc, err := strconv.ParseInt(strings.TrimSpace(parts[2]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad service: %w", line, err)
		}
		t.Records = append(t.Records, Record{
			Offset:  time.Duration(off),
			Type:    typ,
			Service: time.Duration(svc),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Generator produces one arrival at a time (satisfied by
// workload.Source via a tiny adapter, kept as an interface to avoid an
// import cycle).
type Generator interface {
	Next() (gap time.Duration, typ int, service time.Duration)
}

// Generate captures a trace from an arrival generator until the given
// duration is covered.
func Generate(g Generator, duration time.Duration) *Trace {
	t := &Trace{}
	var at time.Duration
	for {
		gap, typ, svc := g.Next()
		at += gap
		if at > duration {
			return t
		}
		t.Records = append(t.Records, Record{Offset: at, Type: typ, Service: svc})
	}
}

// Scale returns a copy with all offsets multiplied by factor —
// compressing (<1) or stretching (>1) the trace changes its offered
// load without touching the arrival structure.
func (t *Trace) Scale(factor float64) *Trace {
	if factor <= 0 {
		factor = 1
	}
	out := &Trace{Records: make([]Record, len(t.Records))}
	for i, r := range t.Records {
		out.Records[i] = Record{
			Offset:  time.Duration(float64(r.Offset) * factor),
			Type:    r.Type,
			Service: r.Service,
		}
	}
	return out
}
