package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func sampleTrace() *Trace {
	return &Trace{Records: []Record{
		{Offset: 0, Type: 0, Service: 500 * time.Nanosecond},
		{Offset: 800 * time.Nanosecond, Type: 1, Service: 500 * time.Microsecond},
		{Offset: 2 * time.Microsecond, Type: 0, Service: 500 * time.Nanosecond},
	}}
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("len %d", got.Len())
	}
	for i := range tr.Records {
		if got.Records[i] != tr.Records[i] {
			t.Fatalf("record %d: %+v != %+v", i, got.Records[i], tr.Records[i])
		}
	}
}

func TestStats(t *testing.T) {
	tr := sampleTrace()
	if tr.NumTypes() != 2 {
		t.Fatalf("types %d", tr.NumTypes())
	}
	if tr.Duration() != 2*time.Microsecond {
		t.Fatalf("duration %v", tr.Duration())
	}
	if r := tr.Rate(); r < 0.9e6 || r > 1.1e6 {
		t.Fatalf("rate %g (2 gaps over 2µs)", r)
	}
	empty := &Trace{}
	if empty.NumTypes() != 0 || empty.Duration() != 0 || empty.Rate() != 0 {
		t.Fatal("empty trace stats")
	}
}

func TestValidate(t *testing.T) {
	good := sampleTrace()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Trace{Records: []Record{
		{Offset: 10, Type: 0, Service: 1},
		{Offset: 5, Type: 0, Service: 1},
	}}
	if err := bad.Validate(); err == nil {
		t.Fatal("unsorted trace accepted")
	}
	bad.Sort()
	if err := bad.Validate(); err != nil {
		t.Fatal("sorted trace rejected")
	}
	if err := (&Trace{Records: []Record{{Offset: 0, Type: -1, Service: 1}}}).Validate(); err == nil {
		t.Fatal("negative type accepted")
	}
	if err := (&Trace{Records: []Record{{Offset: 0, Type: 0, Service: 0}}}).Validate(); err == nil {
		t.Fatal("zero service accepted")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"offset_ns,type,service_ns\n1,2\n",
		"abc,0,1\n",
		"0,abc,1\n",
		"0,0,abc\n",
		"5,0,1\n1,0,1\n", // out of order
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
	// Blank lines and header tolerated.
	tr, err := Read(strings.NewReader("offset_ns,type,service_ns\n\n0,0,500\n"))
	if err != nil || tr.Len() != 1 {
		t.Fatalf("tolerant parse: %v %d", err, tr.Len())
	}
}

func TestScale(t *testing.T) {
	tr := sampleTrace()
	half := tr.Scale(0.5)
	if half.Records[2].Offset != time.Microsecond {
		t.Fatalf("scaled offset %v", half.Records[2].Offset)
	}
	if half.Records[2].Service != tr.Records[2].Service {
		t.Fatal("scale changed service times")
	}
	same := tr.Scale(0)
	if same.Records[2].Offset != tr.Records[2].Offset {
		t.Fatal("factor<=0 should be identity")
	}
}

type fakeGen struct{ n int }

func (g *fakeGen) Next() (time.Duration, int, time.Duration) {
	g.n++
	return time.Microsecond, g.n % 2, 10 * time.Microsecond
}

func TestGenerate(t *testing.T) {
	tr := Generate(&fakeGen{}, 10*time.Microsecond)
	if tr.Len() != 10 {
		t.Fatalf("generated %d records", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
