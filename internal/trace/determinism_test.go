package trace_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/workload"
)

// sourceAdapter bridges workload.Source to trace.Generator (the same
// shim cmd/psp-trace uses).
type sourceAdapter struct{ s *workload.Source }

func (a sourceAdapter) Next() (time.Duration, int, time.Duration) {
	arr := a.s.Next()
	return arr.Gap, arr.Type, arr.Service
}

// dumpTrace generates a trace from a fresh seeded source and writes
// its canonical CSV form.
func dumpTrace(t *testing.T, seed uint64, bursty bool) []byte {
	t.Helper()
	mix := workload.TwoType("short", 1*time.Microsecond, 0.5, "long", 100*time.Microsecond)
	var gen trace.Generator
	if bursty {
		b, err := workload.NewBurstySource(mix, 100000, 4, 5*time.Millisecond, 15*time.Millisecond, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		gen = b
	} else {
		src, err := workload.NewSource(mix, 100000, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		gen = sourceAdapter{src}
	}
	tr := trace.Generate(gen, 100*time.Millisecond)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceGenerationDeterministic pins the internal/rng split-stream
// contract the simulator depends on: the same seed yields a
// byte-identical trace dump, and a different seed yields a different
// one — for both the plain Poisson source and the bursty MMPP.
func TestTraceGenerationDeterministic(t *testing.T) {
	for _, tc := range []struct {
		name   string
		bursty bool
	}{
		{"poisson", false},
		{"bursty", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := dumpTrace(t, 42, tc.bursty)
			b := dumpTrace(t, 42, tc.bursty)
			if !bytes.Equal(a, b) {
				t.Fatal("same seed produced different trace dumps")
			}
			if len(a) == 0 || bytes.Count(a, []byte{'\n'}) < 100 {
				t.Fatalf("suspiciously small dump (%d bytes) — nothing was generated", len(a))
			}
			c := dumpTrace(t, 43, tc.bursty)
			if bytes.Equal(a, c) {
				t.Fatal("different seeds produced identical trace dumps")
			}
		})
	}
}

// TestSpanDumpDeterministic extends the guarantee to the span format:
// serialising the same spans twice is byte-identical (the writer has
// no hidden state, map iteration, or timestamps of its own).
func TestSpanDumpDeterministic(t *testing.T) {
	spans := []trace.Span{
		{ID: 1, Type: 0, Worker: 0, Started: 5, Finished: 105, Replied: 107},
		{ID: 2, Type: 1, Worker: 1, Ingress: 10, Started: 21, Finished: 2021, Replied: 2022},
	}
	var a, b bytes.Buffer
	if err := trace.WriteSpans(&a, spans); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteSpans(&b, spans); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("span serialisation is not deterministic")
	}
}
