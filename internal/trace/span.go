package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Span is one completed request's lifecycle decomposition as captured
// by the live runtime: every stage the request crossed, stamped as an
// offset since server start. Spans are what the paper's queueing-delay
// figures are made of — the arrival-format Trace only says when work
// arrived, a Span additionally says where its time went.
//
// The on-disk format is CSV with a header, one line per span:
//
//	id,type,worker,ingress_ns,classified_ns,enqueued_ns,dispatched_ns,started_ns,finished_ns,replied_ns
type Span struct {
	// ID is the server-assigned request id.
	ID uint64
	// Type is the classified request type (negative = unknown).
	Type int
	// Worker is the application worker that served the request.
	Worker int
	// Ingress is when the request entered the pipeline (net worker or
	// in-process submit).
	Ingress time.Duration
	// Classified is when the dispatcher finished typing the payload.
	Classified time.Duration
	// Enqueued is when the request was parked in its typed queue.
	Enqueued time.Duration
	// Dispatched is when the dispatcher handed it to a worker ring.
	Dispatched time.Duration
	// Started is when the worker began executing the handler.
	Started time.Duration
	// Finished is when the handler returned.
	Finished time.Duration
	// Replied is when the response left the worker.
	Replied time.Duration
}

// QueueDelay reports the paper's queueing delay: ingress to worker
// service start.
func (s Span) QueueDelay() time.Duration { return s.Started - s.Ingress }

// Service reports the measured handler execution time.
func (s Span) Service() time.Duration { return s.Finished - s.Started }

// Sojourn reports the full server-side residence time.
func (s Span) Sojourn() time.Duration { return s.Replied - s.Ingress }

// spanHeader is the first line of a span CSV dump; ReadAuto uses it to
// distinguish span dumps from arrival traces.
const spanHeader = "id,type,worker,ingress_ns,classified_ns,enqueued_ns,dispatched_ns,started_ns,finished_ns,replied_ns"

const spanFields = 10

// SpanWriter streams spans to an io.Writer in the CSV dump format. It
// is not safe for concurrent use; callers serialize (the live runtime
// invokes the trace sink under its drain lock).
type SpanWriter struct {
	bw     *bufio.Writer
	wrote  bool
	count  int
	failed error
}

// NewSpanWriter wraps w; the header is emitted before the first span.
func NewSpanWriter(w io.Writer) *SpanWriter {
	return &SpanWriter{bw: bufio.NewWriter(w)}
}

// Write appends one span. Errors are sticky and also returned by
// Flush.
func (sw *SpanWriter) Write(s Span) error {
	if sw.failed != nil {
		return sw.failed
	}
	if !sw.wrote {
		sw.wrote = true
		if _, err := sw.bw.WriteString(spanHeader + "\n"); err != nil {
			sw.failed = err
			return err
		}
	}
	_, err := fmt.Fprintf(sw.bw, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
		s.ID, s.Type, s.Worker,
		int64(s.Ingress), int64(s.Classified), int64(s.Enqueued), int64(s.Dispatched),
		int64(s.Started), int64(s.Finished), int64(s.Replied))
	if err != nil {
		sw.failed = err
		return err
	}
	sw.count++
	return nil
}

// Count reports spans written so far.
func (sw *SpanWriter) Count() int { return sw.count }

// Flush drains buffered output (emitting the header even for an empty
// dump, so the file parses).
func (sw *SpanWriter) Flush() error {
	if sw.failed != nil {
		return sw.failed
	}
	if !sw.wrote {
		sw.wrote = true
		if _, err := sw.bw.WriteString(spanHeader + "\n"); err != nil {
			sw.failed = err
			return err
		}
	}
	if err := sw.bw.Flush(); err != nil {
		sw.failed = err
	}
	return sw.failed
}

// WriteSpans serialises a span dump.
func WriteSpans(w io.Writer, spans []Span) error {
	sw := NewSpanWriter(w)
	for _, s := range spans {
		if err := sw.Write(s); err != nil {
			return err
		}
	}
	return sw.Flush()
}

// ReadSpans parses a span CSV dump. Malformed lines are rejected with
// an error naming the line; negative stage offsets are refused (type
// may be negative: unknown requests classify as -1).
func ReadSpans(r io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var spans []Span
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if line == 1 {
			if text != spanHeader {
				return nil, fmt.Errorf("trace: line 1: not a span dump (want header %q)", spanHeader)
			}
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != spanFields {
			return nil, fmt.Errorf("trace: line %d: want %d fields, got %d", line, spanFields, len(parts))
		}
		var s Span
		id, err := strconv.ParseUint(strings.TrimSpace(parts[0]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad id: %w", line, err)
		}
		s.ID = id
		s.Type, err = strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad type: %w", line, err)
		}
		s.Worker, err = strconv.Atoi(strings.TrimSpace(parts[2]))
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad worker: %w", line, err)
		}
		stages := []*time.Duration{&s.Ingress, &s.Classified, &s.Enqueued, &s.Dispatched, &s.Started, &s.Finished, &s.Replied}
		for i, dst := range stages {
			v, err := strconv.ParseInt(strings.TrimSpace(parts[3+i]), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad stage %d: %w", line, i, err)
			}
			if v < 0 {
				return nil, fmt.Errorf("trace: line %d: negative stage offset %d", line, v)
			}
			*dst = time.Duration(v)
		}
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return spans, nil
}

// SpanTrace projects a span dump down to an arrival trace replayable
// by the simulator: offset = ingress instant, service = the measured
// handler time (clamped to 1ns so Validate accepts instant handlers).
// Unknown-type spans (Type < 0) are skipped — the simulator's typed
// policies have no queue for them.
func SpanTrace(spans []Span) *Trace {
	t := &Trace{}
	for _, s := range spans {
		if s.Type < 0 {
			continue
		}
		svc := s.Service()
		if svc < time.Nanosecond {
			svc = time.Nanosecond
		}
		t.Records = append(t.Records, Record{Offset: s.Ingress, Type: s.Type, Service: svc})
	}
	t.Sort()
	return t
}

// ReadAuto parses either format: a lifecycle span dump (converted to
// its arrival trace via SpanTrace) or a plain arrival trace. The
// format is decided by the header line.
func ReadAuto(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, _ := br.Peek(len(spanHeader))
	if string(head) == spanHeader {
		spans, err := ReadSpans(br)
		if err != nil {
			return nil, err
		}
		t := SpanTrace(spans)
		if err := t.Validate(); err != nil {
			return nil, err
		}
		return t, nil
	}
	return Read(br)
}
