package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead asserts the trace parser never panics on arbitrary input
// and that anything it accepts re-serializes to an equivalent trace.
func FuzzRead(f *testing.F) {
	f.Add("offset_ns,type,service_ns\n0,0,500\n800,1,500000\n")
	f.Add("0,0,1\n")
	f.Add("")
	f.Add("garbage")
	f.Add("1,2\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("accepted trace did not round-trip: %v", err)
		}
		if again.Len() != tr.Len() {
			t.Fatalf("round trip changed length: %d vs %d", again.Len(), tr.Len())
		}
	})
}

// FuzzReadSpans asserts the lifecycle span parser never panics on
// arbitrary input, and that every accepted dump survives a
// write→read round trip unchanged (parse(dump(spans)) == spans).
func FuzzReadSpans(f *testing.F) {
	f.Add(spanHeader + "\n")
	f.Add(spanHeader + "\n1,0,0,0,1,2,3,5,105,107\n")
	f.Add(spanHeader + "\n2,-1,1,10,11,12,20,21,2021,2022\n")
	f.Add("offset_ns,type,service_ns\n0,0,500\n")
	f.Add("")
	f.Add("garbage")
	f.Add(spanHeader + "\n1,0,0,-1,0,0,0,0,0,0\n")
	f.Fuzz(func(t *testing.T, input string) {
		spans, err := ReadSpans(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteSpans(&buf, spans); err != nil {
			t.Fatal(err)
		}
		again, err := ReadSpans(&buf)
		if err != nil {
			t.Fatalf("accepted dump did not round-trip: %v", err)
		}
		if len(again) != len(spans) {
			t.Fatalf("round trip changed length: %d vs %d", len(again), len(spans))
		}
		for i := range spans {
			if again[i] != spans[i] {
				t.Fatalf("span %d changed: %+v vs %+v", i, again[i], spans[i])
			}
		}
		// ReadAuto must agree with the dedicated parser on span dumps.
		if _, err := ReadAuto(strings.NewReader(input)); err != nil {
			// ReadAuto additionally validates the projected trace; it
			// may reject what ReadSpans accepts, but must not panic.
			return
		}
	})
}
