package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead asserts the trace parser never panics on arbitrary input
// and that anything it accepts re-serializes to an equivalent trace.
func FuzzRead(f *testing.F) {
	f.Add("offset_ns,type,service_ns\n0,0,500\n800,1,500000\n")
	f.Add("0,0,1\n")
	f.Add("")
	f.Add("garbage")
	f.Add("1,2\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("accepted trace did not round-trip: %v", err)
		}
		if again.Len() != tr.Len() {
			t.Fatalf("round trip changed length: %d vs %d", again.Len(), tr.Len())
		}
	})
}
