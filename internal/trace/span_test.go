package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func sampleSpans() []Span {
	us := time.Microsecond
	return []Span{
		{ID: 1, Type: 0, Worker: 0, Ingress: 0, Classified: us, Enqueued: 2 * us, Dispatched: 3 * us, Started: 5 * us, Finished: 105 * us, Replied: 107 * us},
		{ID: 2, Type: 1, Worker: 1, Ingress: 10 * us, Classified: 11 * us, Enqueued: 12 * us, Dispatched: 20 * us, Started: 21 * us, Finished: 2021 * us, Replied: 2022 * us},
		{ID: 3, Type: -1, Worker: 0, Ingress: 30 * us, Classified: 31 * us, Enqueued: 32 * us, Dispatched: 40 * us, Started: 41 * us, Finished: 42 * us, Replied: 43 * us},
	}
}

func TestSpanRoundTrip(t *testing.T) {
	spans := sampleSpans()
	var buf bytes.Buffer
	if err := WriteSpans(&buf, spans); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(spans) {
		t.Fatalf("round trip: %d spans, want %d", len(got), len(spans))
	}
	for i := range spans {
		if got[i] != spans[i] {
			t.Fatalf("span %d changed:\n got %+v\nwant %+v", i, got[i], spans[i])
		}
	}
}

func TestSpanDerivedDurations(t *testing.T) {
	sp := sampleSpans()[0]
	if got := sp.QueueDelay(); got != 5*time.Microsecond {
		t.Fatalf("QueueDelay %v", got)
	}
	if got := sp.Service(); got != 100*time.Microsecond {
		t.Fatalf("Service %v", got)
	}
	if got := sp.Sojourn(); got != 107*time.Microsecond {
		t.Fatalf("Sojourn %v", got)
	}
}

func TestSpanWriterEmptyDump(t *testing.T) {
	var buf bytes.Buffer
	sw := NewSpanWriter(&buf)
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("empty dump does not parse: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("empty dump yielded %d spans", len(got))
	}
}

func TestReadSpansRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no header":      "1,0,0,0,0,0,0,0,0,0\n",
		"wrong header":   "offset_ns,type,service_ns\n0,0,500\n",
		"short line":     spanHeader + "\n1,0,0\n",
		"long line":      spanHeader + "\n1,0,0,0,0,0,0,0,0,0,0\n",
		"bad id":         spanHeader + "\nx,0,0,0,0,0,0,0,0,0\n",
		"negative id":    spanHeader + "\n-1,0,0,0,0,0,0,0,0,0\n",
		"bad type":       spanHeader + "\n1,z,0,0,0,0,0,0,0,0\n",
		"bad stage":      spanHeader + "\n1,0,0,?,0,0,0,0,0,0\n",
		"negative stage": spanHeader + "\n1,0,0,-5,0,0,0,0,0,0\n",
	}
	for name, in := range cases {
		if _, err := ReadSpans(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

// failAfter fails every write once n bytes have been accepted.
type failAfter struct {
	n   int
	err error
}

func (w *failAfter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	if len(p) > w.n {
		p = p[:w.n]
	}
	w.n -= len(p)
	return len(p), nil
}

func TestSpanWriterStickyError(t *testing.T) {
	sink := &failAfter{n: 0, err: bytes.ErrTooLarge}
	sw := NewSpanWriter(sink)
	// The buffered writer only hits the sink at Flush.
	for i := 0; i < 4096; i++ {
		sw.Write(Span{ID: uint64(i)}) //nolint:errcheck
	}
	if err := sw.Flush(); err == nil {
		t.Fatal("flush to failing writer succeeded")
	}
	if err := sw.Write(Span{ID: 9}); err == nil {
		t.Fatal("write after failure succeeded")
	}
	if err := sw.Flush(); err == nil {
		t.Fatal("sticky error cleared by second flush")
	}
	if err := WriteSpans(&failAfter{n: 0, err: bytes.ErrTooLarge}, sampleSpans()); err == nil {
		t.Fatal("WriteSpans to failing writer succeeded")
	}
}

func TestSpanWriterCount(t *testing.T) {
	var buf bytes.Buffer
	sw := NewSpanWriter(&buf)
	if sw.Count() != 0 {
		t.Fatalf("fresh writer count %d", sw.Count())
	}
	for i, sp := range sampleSpans() {
		if err := sw.Write(sp); err != nil {
			t.Fatal(err)
		}
		if sw.Count() != i+1 {
			t.Fatalf("count %d after %d writes", sw.Count(), i+1)
		}
	}
}

func TestReadAutoRejectsBadSpanDump(t *testing.T) {
	// Correct header, malformed body: ReadAuto must surface the span
	// parser's error rather than misreading it as an arrival trace.
	in := spanHeader + "\n1,0,oops,0,0,0,0,0,0,0\n"
	if _, err := ReadAuto(strings.NewReader(in)); err == nil {
		t.Fatal("malformed span dump accepted")
	}
}

func TestSpanTraceProjection(t *testing.T) {
	spans := sampleSpans()
	tr := SpanTrace(spans)
	// The Type=-1 span is dropped: the simulator's typed policies have
	// no queue for unclassifiable requests.
	if tr.Len() != 2 {
		t.Fatalf("projected %d records, want 2", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Records[0].Offset != spans[0].Ingress || tr.Records[0].Service != spans[0].Service() {
		t.Fatalf("record 0 %+v does not match span %+v", tr.Records[0], spans[0])
	}
	// Instant handlers clamp to 1ns so Validate accepts the trace.
	clamped := SpanTrace([]Span{{ID: 9, Type: 0, Started: 5, Finished: 5, Replied: 6}})
	if clamped.Records[0].Service != time.Nanosecond {
		t.Fatalf("zero service not clamped: %v", clamped.Records[0].Service)
	}
}

func TestReadAutoBothFormats(t *testing.T) {
	// Span dump → projected arrival trace.
	var spanBuf bytes.Buffer
	if err := WriteSpans(&spanBuf, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadAuto(bytes.NewReader(spanBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("span dump via ReadAuto: %d records, want 2", tr.Len())
	}
	// Plain arrival trace passes through untouched.
	arrivals := "offset_ns,type,service_ns\n0,0,500\n800,1,500000\n"
	tr, err = ReadAuto(strings.NewReader(arrivals))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("arrival trace via ReadAuto: %d records, want 2", tr.Len())
	}
	// Empty input behaves like Read: an empty trace, not an error.
	tr, err = ReadAuto(strings.NewReader(""))
	if err != nil || tr.Len() != 0 {
		t.Fatalf("empty input: %v, %d records", err, tr.Len())
	}
}
