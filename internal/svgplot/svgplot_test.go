package svgplot

import (
	"bytes"
	"strings"
	"testing"
)

func twoSeries() []Series {
	return []Series{
		{Name: "DARC", X: []float64{0.1, 0.5, 0.9}, Y: []float64{1, 2, 7}},
		{Name: "c-FCFS", X: []float64{0.1, 0.5, 0.9}, Y: []float64{1, 75, 1360}},
	}
}

func TestRenderLinear(t *testing.T) {
	c := &Chart{Title: "test", XLabel: "load", YLabel: "slowdown", Series: twoSeries()}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "polyline", "DARC", "c-FCFS", "slowdown"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Fatalf("polyline count %d", strings.Count(out, "<polyline"))
	}
}

func TestRenderLogY(t *testing.T) {
	c := &Chart{Title: "log", LogY: true, Series: twoSeries()}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	// Decade gridlines for 1, 10, 100, 1000.
	if got := strings.Count(buf.String(), `stroke="#ddd"`); got < 4 {
		t.Fatalf("only %d gridlines on a 3-decade log axis", got)
	}
}

func TestRenderErrors(t *testing.T) {
	if err := (&Chart{}).Render(&bytes.Buffer{}); err == nil {
		t.Fatal("empty chart accepted")
	}
	bad := &Chart{Series: []Series{{Name: "x", X: []float64{1}, Y: []float64{1, 2}}}}
	if err := bad.Render(&bytes.Buffer{}); err == nil {
		t.Fatal("mismatched series accepted")
	}
	empty := &Chart{Series: []Series{{Name: "x"}}}
	if err := empty.Render(&bytes.Buffer{}); err == nil {
		t.Fatal("pointless chart accepted")
	}
}

func TestLogClampsNonPositive(t *testing.T) {
	c := &Chart{LogY: true, Series: []Series{
		{Name: "s", X: []float64{0, 1, 2}, Y: []float64{0, 10, 100}},
	}}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestEscape(t *testing.T) {
	c := &Chart{Title: `a<b>&"c"`, Series: twoSeries()}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `a<b>`) {
		t.Fatal("title not escaped")
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		0.5:     "0.5",
		42:      "42",
		1500:    "1.5k",
		2500000: "2.5M",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%g) = %q, want %q", v, got, want)
		}
	}
}
