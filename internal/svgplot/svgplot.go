// Package svgplot renders simple multi-series line charts as
// self-contained SVG, using only the standard library — enough to turn
// the experiment CSVs into figure-shaped plots (slowdown vs load on a
// log axis, like the paper's figures) without external dependencies.
package svgplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is a renderable line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// LogY plots Y on a log10 axis (non-positive values are clamped to
	// the smallest positive value present).
	LogY bool
	// Width/Height in pixels (defaults 720x440).
	Width, Height int
	Series        []Series
}

// palette holds distinguishable line colors.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
	"#8c564b", "#17becf", "#7f7f7f",
}

const (
	marginLeft   = 70
	marginRight  = 20
	marginTop    = 40
	marginBottom = 55
)

// Render writes the SVG document.
func (c *Chart) Render(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("svgplot: no series")
	}
	if c.Width <= 0 {
		c.Width = 720
	}
	if c.Height <= 0 {
		c.Height = 440
	}
	xmin, xmax, ymin, ymax, err := c.bounds()
	if err != nil {
		return err
	}
	plotW := float64(c.Width - marginLeft - marginRight)
	plotH := float64(c.Height - marginTop - marginBottom)

	xof := func(x float64) float64 {
		if xmax == xmin {
			return float64(marginLeft) + plotW/2
		}
		return float64(marginLeft) + (x-xmin)/(xmax-xmin)*plotW
	}
	yval := func(y float64) float64 {
		if c.LogY {
			return math.Log10(y)
		}
		return y
	}
	lo, hi := yval(ymin), yval(ymax)
	yof := func(y float64) float64 {
		if hi == lo {
			return float64(marginTop) + plotH/2
		}
		return float64(marginTop) + plotH - (yval(y)-lo)/(hi-lo)*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", c.Width, c.Height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", c.Width, c.Height)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="16" font-weight="bold">%s</text>`+"\n", marginLeft, escape(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, c.Height-marginBottom, c.Width-marginRight, c.Height-marginBottom)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, c.Height-marginBottom)

	// X ticks (5 linear).
	for i := 0; i <= 4; i++ {
		x := xmin + (xmax-xmin)*float64(i)/4
		px := xof(x)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			px, c.Height-marginBottom, px, c.Height-marginBottom+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`+"\n",
			px, c.Height-marginBottom+18, formatTick(x))
	}
	// Y ticks: decades when log, 5 linear otherwise.
	if c.LogY {
		for d := math.Floor(math.Log10(ymin)); d <= math.Ceil(math.Log10(ymax)); d++ {
			y := math.Pow(10, d)
			if y < ymin || y > ymax {
				continue
			}
			py := yof(y)
			fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
				marginLeft, py, c.Width-marginRight, py)
			fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%s</text>`+"\n",
				marginLeft-6, py+4, formatTick(y))
		}
	} else {
		for i := 0; i <= 4; i++ {
			y := ymin + (ymax-ymin)*float64(i)/4
			py := yof(y)
			fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
				marginLeft, py, c.Width-marginRight, py)
			fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%s</text>`+"\n",
				marginLeft-6, py+4, formatTick(y))
		}
	}
	// Axis labels.
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
		float64(marginLeft)+plotW/2, c.Height-12, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%.1f" font-size="12" text-anchor="middle" transform="rotate(-90 16 %.1f)">%s</text>`+"\n",
		float64(marginTop)+plotH/2, float64(marginTop)+plotH/2, escape(c.YLabel))

	// Series polylines + legend.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			y := s.Y[i]
			if c.LogY && y <= 0 {
				y = ymin
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xof(s.X[i]), yof(y)))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), color)
		for i := range s.X {
			y := s.Y[i]
			if c.LogY && y <= 0 {
				y = ymin
			}
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`+"\n", xof(s.X[i]), yof(y), color)
		}
		lx := c.Width - marginRight - 180
		ly := marginTop + 8 + si*18
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="3"/>`+"\n",
			lx, ly, lx+22, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12">%s</text>`+"\n", lx+28, ly+4, escape(s.Name))
	}
	fmt.Fprintln(&b, `</svg>`)
	_, err = io.WriteString(w, b.String())
	return err
}

// bounds computes data extents, validating series shapes.
func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64, err error) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	points := 0
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return 0, 0, 0, 0, fmt.Errorf("svgplot: series %q has %d x for %d y", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			points++
			if s.X[i] < xmin {
				xmin = s.X[i]
			}
			if s.X[i] > xmax {
				xmax = s.X[i]
			}
			y := s.Y[i]
			if c.LogY && y <= 0 {
				continue
			}
			if y < ymin {
				ymin = y
			}
			if y > ymax {
				ymax = y
			}
		}
	}
	if points == 0 || math.IsInf(ymin, 1) {
		return 0, 0, 0, 0, fmt.Errorf("svgplot: no plottable points")
	}
	if c.LogY && ymin <= 0 {
		ymin = 1e-9
	}
	return xmin, xmax, ymin, ymax, nil
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.3gk", v/1e3)
	case av >= 1 || av == 0:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
