package loadgen

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/psp"
	"repro/internal/rng"
)

// RunTCP generates load against a TCP Perséphone server through the
// pipelined client: cfg.Conns connections, each carrying up to
// cfg.Pipeline concurrent requests matched back by RequestID in
// whatever order the server completes them. Arrivals follow the same
// Poisson process as RunUDP; a full pipeline briefly gates the sender
// (the stream transport's flow control) rather than dropping sends.
//
// Outcome accounting matches RunInProcess: a response with a drop
// status is retried up to MaxRetries times (fresh request IDs — TCP
// never retransmits bytes, the stream already delivered them), then
// recorded as Dropped; a per-request timeout sweeps the call and
// records TimedOut.
func RunTCP(serverAddr string, cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	conns := cfg.Conns
	if conns <= 0 {
		conns = 1
	}
	pipeline := cfg.Pipeline
	if pipeline <= 0 {
		pipeline = 32
	}
	clients := make([]*psp.TCPClient, conns)
	for i := range clients {
		cli, err := psp.DialTCP(serverAddr)
		if err != nil {
			for _, c := range clients[:i] {
				c.Close()
			}
			return nil, err
		}
		cli.Timeout = cfg.RequestTimeout
		clients[i] = cli
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	r := rng.New(cfg.Seed)
	jitterRNG := r.Split()
	res := newResult(len(cfg.Mix.Types))
	var mu sync.Mutex // guards the histograms and jitterRNG
	var wg sync.WaitGroup
	var sent, received, dropped, timedOut, retries, nacked atomic.Uint64
	dbt := newDropCounter(len(cfg.Mix.Types))
	sems := make([]chan struct{}, conns)
	for i := range sems {
		sems[i] = make(chan struct{}, pipeline)
	}

	start := time.Now()
	next := start
	var lane uint64
	for time.Since(start) < cfg.Duration {
		gap := time.Duration(r.Exp(1/cfg.Rate) * float64(time.Second))
		next = next.Add(gap)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		typ := pickType(cfg.Mix, r)
		payload := cfg.BuildPayload(typ)
		li := int(lane % uint64(conns))
		lane++
		sems[li] <- struct{}{} // pipeline cap: stream flow control
		sent.Add(1)
		wg.Add(1)
		go func(li, typ int, payload []byte, t0 time.Time) {
			defer wg.Done()
			defer func() { <-sems[li] }()
			attempt := 0
			for {
				resp, err := clients[li].Call(payload)
				switch {
				case errors.Is(err, psp.ErrDeadlineExceeded):
					timedOut.Add(1)
					return
				case errors.Is(err, psp.ErrOverloaded):
					// Admission NACK: the stream is healthy, the server
					// shed this request. Honor its retry-after hint with
					// jittered backoff, up to the retry budget.
					nacked.Add(1)
					if attempt >= cfg.MaxRetries {
						dropped.Add(1)
						dbt.add(typ)
						return
					}
					attempt++
					retries.Add(1)
					mu.Lock()
					j := jitterRNG.Float64()
					mu.Unlock()
					time.Sleep(cfg.retryDelay(attempt, j, resp.RetryAfter))
					continue
				case err != nil:
					// Connection died with the call in flight: the request
					// never received a response.
					timedOut.Add(1)
					return
				case resp.Status != 0:
					// Shed by flow control: back off and reissue, up to
					// the retry budget.
					if attempt >= cfg.MaxRetries {
						dropped.Add(1)
						dbt.add(typ)
						return
					}
					attempt++
					retries.Add(1)
					mu.Lock()
					j := jitterRNG.Float64()
					mu.Unlock()
					time.Sleep(cfg.backoffFor(attempt, j))
					continue
				}
				lat := time.Since(t0)
				received.Add(1)
				mu.Lock()
				res.Latency[typ].RecordDuration(lat)
				res.Overall.RecordDuration(lat)
				mu.Unlock()
				return
			}
		}(li, typ, payload, time.Now())
	}
	waitTimeout(&wg, cfg.Timeout)
	res.Sent = sent.Load()
	res.Received = received.Load()
	res.Dropped = dropped.Load()
	res.TimedOut = timedOut.Load()
	res.Retries = retries.Load()
	res.Nacked = nacked.Load()
	dbt.publish(res)
	res.Elapsed = time.Since(start)
	return res, nil
}
