package loadgen_test

import (
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/loadgen"
	"repro/internal/proto"
	"repro/internal/psp"
	"repro/internal/trace"
)

func TestReplayPayloadRoundTrip(t *testing.T) {
	rec := trace.Record{Type: 3, Service: 1234567 * time.Nanosecond}
	p := loadgen.ReplayPayload(rec)
	svc, ok := loadgen.ReplayService(p)
	if !ok || svc != rec.Service {
		t.Fatalf("decoded (%v, %v), want (%v, true)", svc, ok, rec.Service)
	}
	if _, ok := loadgen.ReplayService(p[:8]); ok {
		t.Fatal("short payload decoded as carrying a service demand")
	}
}

// TestReplayUDPConservation replays a small two-type trace against a
// live UDP server whose handler sleeps the payload-encoded service
// demand, and checks exact conservation: every record sent once, every
// outcome recorded, per-type counts matching the trace.
func TestReplayUDPConservation(t *testing.T) {
	srv, err := psp.NewServer(psp.Config{
		Workers:    2,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler: psp.HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			if svc, ok := loadgen.ReplayService(p); ok {
				time.Sleep(svc)
			}
			return copy(r, p), proto.StatusOK
		}),
		Mode: psp.ModeCFCFS,
	})
	if err != nil {
		t.Fatal(err)
	}
	u, err := psp.ListenUDPShards("127.0.0.1:0", srv, psp.UDPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()

	tr := &trace.Trace{}
	perType := [2]uint64{}
	for i := 0; i < 200; i++ {
		typ := 0
		svc := 60 * time.Microsecond
		if i%5 == 4 {
			typ, svc = 1, 300*time.Microsecond
		}
		perType[typ]++
		tr.Records = append(tr.Records, trace.Record{
			Offset:  time.Duration(i) * 500 * time.Microsecond,
			Type:    typ,
			Service: svc,
		})
	}

	res, err := loadgen.ReplayUDP(u.Addrs()[0].String(), tr, loadgen.Config{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 200 || res.Errors != 0 {
		t.Fatalf("sent %d errors %d, want 200 sent, 0 errors", res.Sent, res.Errors)
	}
	if res.Unaccounted() != 0 {
		t.Fatalf("unaccounted outcomes: %d (%s)", res.Unaccounted(), res.String())
	}
	if res.Received != 200 || res.Dropped != 0 || res.TimedOut != 0 {
		t.Fatalf("outcomes recv=%d drop=%d timeout=%d, want all 200 received", res.Received, res.Dropped, res.TimedOut)
	}
	for typ, want := range perType {
		if res.SentByType[typ] != want {
			t.Fatalf("type %d sent %d, want %d", typ, res.SentByType[typ], want)
		}
		if got := res.Latency[typ].Count(); got != want {
			t.Fatalf("type %d latency samples %d, want %d", typ, got, want)
		}
	}
}

func TestReplayUDPEmptyTrace(t *testing.T) {
	if _, err := loadgen.ReplayUDP("127.0.0.1:1", &trace.Trace{}, loadgen.Config{}); err == nil {
		t.Fatal("empty trace accepted")
	}
}

// TestReplayUDPResolveError exercises the dial-error path.
func TestReplayUDPResolveError(t *testing.T) {
	tr := &trace.Trace{Records: []trace.Record{{Type: 0, Service: time.Microsecond}}}
	if _, err := loadgen.ReplayUDP("not-an-addr", tr, loadgen.Config{}); err == nil {
		t.Fatal("bad address accepted")
	}
}
