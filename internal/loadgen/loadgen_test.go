package loadgen

import (
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/darc"
	"repro/internal/faults"
	"repro/internal/proto"
	"repro/internal/psp"
	"repro/internal/rng"
	"repro/internal/workload"
)

func echoServer(t *testing.T) *psp.Server {
	t.Helper()
	cfg := darc.DefaultConfig(2)
	cfg.MinWindowSamples = 64
	srv, err := psp.NewServer(psp.Config{
		Workers:    2,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler: psp.HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			return copy(r, p), proto.StatusOK
		}),
		DARC: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)
	return srv
}

func testMix() workload.Mix {
	return workload.TwoType("short", time.Microsecond, 0.8, "long", 10*time.Microsecond)
}

func TestConfigValidation(t *testing.T) {
	srv := echoServer(t)
	bad := []Config{
		{Mix: testMix(), Rate: 0, Duration: time.Second},
		{Mix: testMix(), Rate: 100, Duration: 0},
		{Mix: workload.Mix{}, Rate: 100, Duration: time.Second},
	}
	for i, cfg := range bad {
		if _, err := RunInProcess(srv, cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestConfigRetryValidation(t *testing.T) {
	srv := echoServer(t)
	bad := []Config{
		{Mix: testMix(), Rate: 100, Duration: time.Millisecond, RequestTimeout: -time.Second},
		{Mix: testMix(), Rate: 100, Duration: time.Millisecond, MaxRetries: -1},
		{Mix: testMix(), Rate: 100, Duration: time.Millisecond, RetryBackoff: -time.Millisecond},
		{Mix: testMix(), Rate: 100, Duration: time.Millisecond, RetryBackoffMax: -time.Millisecond},
		// Retries without a per-request timeout can never fire.
		{Mix: testMix(), Rate: 100, Duration: time.Millisecond, MaxRetries: 3},
	}
	for i, cfg := range bad {
		if _, err := RunInProcess(srv, cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestBackoffFor(t *testing.T) {
	cfg := Config{RetryBackoff: time.Millisecond, RetryBackoffMax: 8 * time.Millisecond}
	// Zero jitter gives the bottom of the window: backoff/2, doubling
	// per attempt until the cap.
	for _, tc := range []struct {
		attempt int
		want    time.Duration
	}{
		{1, 500 * time.Microsecond},
		{2, time.Millisecond},
		{3, 2 * time.Millisecond},
		{4, 4 * time.Millisecond}, // 8ms backoff, capped
		{9, 4 * time.Millisecond}, // still capped
	} {
		if got := cfg.backoffFor(tc.attempt, 0); got != tc.want {
			t.Errorf("attempt %d jitter 0: %v, want %v", tc.attempt, got, tc.want)
		}
	}
	// Jitter spans [b/2, b).
	if got := cfg.backoffFor(1, 0.999); got < 500*time.Microsecond || got >= time.Millisecond {
		t.Errorf("jittered backoff %v outside [0.5ms, 1ms)", got)
	}
	r := rng.New(99)
	for i := 0; i < 1000; i++ {
		got := cfg.backoffFor(3, r.Float64())
		if got < 2*time.Millisecond || got >= 4*time.Millisecond {
			t.Fatalf("attempt 3 backoff %v outside [2ms, 4ms)", got)
		}
	}
}

func TestRunInProcess(t *testing.T) {
	srv := echoServer(t)
	res, err := RunInProcess(srv, Config{
		Mix:      testMix(),
		Rate:     2000,
		Duration: 300 * time.Millisecond,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 {
		t.Fatal("nothing sent")
	}
	if res.Received < res.Sent*8/10 {
		t.Fatalf("received %d of %d", res.Received, res.Sent)
	}
	if res.Overall.Count() != res.Received {
		t.Fatalf("histogram count %d vs received %d", res.Overall.Count(), res.Received)
	}
	// Rough open-loop pacing: ~600 requests at 2k rps over 300ms.
	if res.Sent < 300 || res.Sent > 1200 {
		t.Fatalf("sent %d, want ~600", res.Sent)
	}
	if res.AchievedRate() <= 0 {
		t.Fatal("zero achieved rate")
	}
	if res.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestTypeMixRespected(t *testing.T) {
	srv := echoServer(t)
	res, err := RunInProcess(srv, Config{
		Mix:      testMix(), // 80% type 0
		Rate:     3000,
		Duration: 300 * time.Millisecond,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	short := res.Latency[0].Count()
	long := res.Latency[1].Count()
	if short == 0 || long == 0 {
		t.Fatalf("counts %d/%d", short, long)
	}
	frac := float64(short) / float64(short+long)
	if frac < 0.7 || frac > 0.9 {
		t.Fatalf("short fraction %g, want ~0.8", frac)
	}
}

func TestPickTypeDistribution(t *testing.T) {
	mix := testMix()
	r := rng.New(3)
	counts := make([]int, 2)
	for i := 0; i < 10000; i++ {
		counts[pickType(mix, r)]++
	}
	frac := float64(counts[0]) / 10000
	if frac < 0.78 || frac > 0.82 {
		t.Fatalf("type 0 fraction %g", frac)
	}
}

func TestRunUDP(t *testing.T) {
	cfg := darc.DefaultConfig(2)
	cfg.MinWindowSamples = 64
	srv, err := psp.NewServer(psp.Config{
		Workers:    2,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler: psp.HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			return copy(r, p), proto.StatusOK
		}),
		DARC: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	u, err := psp.ListenUDP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()

	res, err := RunUDP(u.Addr().String(), Config{
		Mix:      testMix(),
		Rate:     2000,
		Duration: 300 * time.Millisecond,
		Seed:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 {
		t.Fatal("nothing sent")
	}
	if res.Received < res.Sent*7/10 {
		t.Fatalf("received %d of %d over loopback", res.Received, res.Sent)
	}
	if res.Overall.QuantileDuration(0.5) <= 0 {
		t.Fatal("no latency recorded")
	}
}

// faultyUDPEcho is an instant echo server over UDP with the given
// fault profile injected at ingress.
func faultyUDPEcho(t *testing.T, prof *faults.Profile) *psp.UDPServer {
	t.Helper()
	cfg := darc.DefaultConfig(2)
	cfg.MinWindowSamples = 64
	srv, err := psp.NewServer(psp.Config{
		Workers:    2,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler: psp.HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			return copy(r, p), proto.StatusOK
		}),
		DARC:   cfg,
		Faults: prof,
	})
	if err != nil {
		t.Fatal(err)
	}
	u, err := psp.ListenUDP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { u.Close() })
	return u
}

// TestRunUDPAllDropped is the never-answered-request accounting fix:
// when the network eats every datagram, each request must surface as
// an explicit timeout — not vanish from the stats — and the latency
// histograms must stay empty rather than absorb phantom samples.
func TestRunUDPAllDropped(t *testing.T) {
	u := faultyUDPEcho(t, &faults.Profile{Seed: 5, DropRate: 1})
	res, err := RunUDP(u.Addr().String(), Config{
		Mix:            testMix(),
		Rate:           500,
		Duration:       100 * time.Millisecond,
		Seed:           6,
		RequestTimeout: 30 * time.Millisecond,
		MaxRetries:     2,
		RetryBackoff:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%v", res)
	if res.Sent == 0 {
		t.Fatal("nothing sent")
	}
	if res.Received != 0 {
		t.Fatalf("received %d with 100%% drop", res.Received)
	}
	if res.TimedOut != res.Sent {
		t.Fatalf("timed out %d of %d sent", res.TimedOut, res.Sent)
	}
	if un := res.Unaccounted(); un != 0 {
		t.Fatalf("%d requests unaccounted for", un)
	}
	// Each request is retransmitted MaxRetries times before expiring.
	if want := res.Sent * 2; res.Retries != want {
		t.Fatalf("retries %d, want %d", res.Retries, want)
	}
	if res.Overall.Count() != 0 {
		t.Fatalf("histogram holds %d phantom samples", res.Overall.Count())
	}
}

// TestRunUDPRetriesRecover: with a 30% drop rate and five retries the
// odds a request dies are 0.3^6 ≈ 0.07%, so essentially every request
// must complete — and be counted exactly once.
func TestRunUDPRetriesRecover(t *testing.T) {
	u := faultyUDPEcho(t, &faults.Profile{Seed: 8, DropRate: 0.3})
	res, err := RunUDP(u.Addr().String(), Config{
		Mix:            testMix(),
		Rate:           600,
		Duration:       150 * time.Millisecond,
		Seed:           9,
		RequestTimeout: 25 * time.Millisecond,
		MaxRetries:     5,
		RetryBackoff:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%v", res)
	if res.Sent == 0 {
		t.Fatal("nothing sent")
	}
	if res.Retries == 0 {
		t.Fatal("no retries under 30% drop")
	}
	if res.Received < res.Sent*95/100 {
		t.Fatalf("received %d of %d despite retries", res.Received, res.Sent)
	}
	if un := res.Unaccounted(); un != 0 {
		t.Fatalf("%d requests unaccounted for", un)
	}
	if res.Overall.Count() != res.Received {
		t.Fatalf("histogram count %d vs received %d", res.Overall.Count(), res.Received)
	}
}

// TestInProcessRequestTimeout: a handler slower than the per-request
// timeout must yield all-timeouts with clean accounting.
func TestInProcessRequestTimeout(t *testing.T) {
	cfg := darc.DefaultConfig(2)
	cfg.MinWindowSamples = 64
	srv, err := psp.NewServer(psp.Config{
		Workers:    2,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler: psp.HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			time.Sleep(100 * time.Millisecond)
			return copy(r, p), proto.StatusOK
		}),
		DARC: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)

	res, err := RunInProcess(srv, Config{
		Mix:            testMix(),
		Rate:           100,
		Duration:       50 * time.Millisecond,
		Seed:           10,
		RequestTimeout: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%v", res)
	if res.Sent == 0 {
		t.Fatal("nothing sent")
	}
	if res.TimedOut != res.Sent {
		t.Fatalf("timed out %d of %d sent", res.TimedOut, res.Sent)
	}
	if un := res.Unaccounted(); un != 0 {
		t.Fatalf("%d requests unaccounted for", un)
	}
}

func TestRunUDPBadAddress(t *testing.T) {
	if _, err := RunUDP("not-an-address:abc", Config{
		Mix: testMix(), Rate: 100, Duration: 10 * time.Millisecond,
	}); err == nil {
		t.Fatal("bad address accepted")
	}
}
