package loadgen

import (
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/darc"
	"repro/internal/proto"
	"repro/internal/psp"
	"repro/internal/rng"
	"repro/internal/workload"
)

func echoServer(t *testing.T) *psp.Server {
	t.Helper()
	cfg := darc.DefaultConfig(2)
	cfg.MinWindowSamples = 64
	srv, err := psp.NewServer(psp.Config{
		Workers:    2,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler: psp.HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			return copy(r, p), proto.StatusOK
		}),
		DARC: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)
	return srv
}

func testMix() workload.Mix {
	return workload.TwoType("short", time.Microsecond, 0.8, "long", 10*time.Microsecond)
}

func TestConfigValidation(t *testing.T) {
	srv := echoServer(t)
	bad := []Config{
		{Mix: testMix(), Rate: 0, Duration: time.Second},
		{Mix: testMix(), Rate: 100, Duration: 0},
		{Mix: workload.Mix{}, Rate: 100, Duration: time.Second},
	}
	for i, cfg := range bad {
		if _, err := RunInProcess(srv, cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRunInProcess(t *testing.T) {
	srv := echoServer(t)
	res, err := RunInProcess(srv, Config{
		Mix:      testMix(),
		Rate:     2000,
		Duration: 300 * time.Millisecond,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 {
		t.Fatal("nothing sent")
	}
	if res.Received < res.Sent*8/10 {
		t.Fatalf("received %d of %d", res.Received, res.Sent)
	}
	if res.Overall.Count() != res.Received {
		t.Fatalf("histogram count %d vs received %d", res.Overall.Count(), res.Received)
	}
	// Rough open-loop pacing: ~600 requests at 2k rps over 300ms.
	if res.Sent < 300 || res.Sent > 1200 {
		t.Fatalf("sent %d, want ~600", res.Sent)
	}
	if res.AchievedRate() <= 0 {
		t.Fatal("zero achieved rate")
	}
	if res.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestTypeMixRespected(t *testing.T) {
	srv := echoServer(t)
	res, err := RunInProcess(srv, Config{
		Mix:      testMix(), // 80% type 0
		Rate:     3000,
		Duration: 300 * time.Millisecond,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	short := res.Latency[0].Count()
	long := res.Latency[1].Count()
	if short == 0 || long == 0 {
		t.Fatalf("counts %d/%d", short, long)
	}
	frac := float64(short) / float64(short+long)
	if frac < 0.7 || frac > 0.9 {
		t.Fatalf("short fraction %g, want ~0.8", frac)
	}
}

func TestPickTypeDistribution(t *testing.T) {
	mix := testMix()
	r := rng.New(3)
	counts := make([]int, 2)
	for i := 0; i < 10000; i++ {
		counts[pickType(mix, r)]++
	}
	frac := float64(counts[0]) / 10000
	if frac < 0.78 || frac > 0.82 {
		t.Fatalf("type 0 fraction %g", frac)
	}
}

func TestRunUDP(t *testing.T) {
	cfg := darc.DefaultConfig(2)
	cfg.MinWindowSamples = 64
	srv, err := psp.NewServer(psp.Config{
		Workers:    2,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler: psp.HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			return copy(r, p), proto.StatusOK
		}),
		DARC: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	u, err := psp.ListenUDP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()

	res, err := RunUDP(u.Addr().String(), Config{
		Mix:      testMix(),
		Rate:     2000,
		Duration: 300 * time.Millisecond,
		Seed:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 {
		t.Fatal("nothing sent")
	}
	if res.Received < res.Sent*7/10 {
		t.Fatalf("received %d of %d over loopback", res.Received, res.Sent)
	}
	if res.Overall.QuantileDuration(0.5) <= 0 {
		t.Fatal("no latency recorded")
	}
}

func TestRunUDPBadAddress(t *testing.T) {
	if _, err := RunUDP("not-an-address:abc", Config{
		Mix: testMix(), Rate: 100, Duration: 10 * time.Millisecond,
	}); err == nil {
		t.Fatal("bad address accepted")
	}
}
