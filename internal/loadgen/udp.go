package loadgen

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/proto"
	"repro/internal/rng"
)

// RunUDP generates load against a UDP Perséphone server, matching
// responses to requests by RequestID — the shape of the paper's C++
// open-loop client, extended with per-request timeouts and capped,
// jittered exponential-backoff retransmission for lossy paths.
//
// Each request has exactly one recorded outcome: a latency sample
// (measured from the first transmission, so retries do not reset the
// clock), a drop (the server answered with a drop status), or a
// timeout (no response within RequestTimeout across 1+MaxRetries
// transmissions, or still unanswered when the final drain gives up).
func RunUDP(serverAddr string, cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	addr, err := net.ResolveUDPAddr("udp", serverAddr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	r := rng.New(cfg.Seed)
	jitterRNG := r.Split()
	res := newResult(len(cfg.Mix.Types))
	var mu sync.Mutex
	inflight := make(map[uint64]*pendingReq)
	var received, dropped, timedOut, retries atomic.Uint64

	// Receiver: match responses to sends. Responses to requests
	// already expired (or duplicate responses) find no record and are
	// ignored, so nothing is double counted.
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		buf := make([]byte, 4096)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				return // deadline or close
			}
			h, _, perr := proto.DecodeHeader(buf[:n])
			if perr != nil || h.Kind != proto.KindResponse {
				continue
			}
			mu.Lock()
			rec, ok := inflight[h.RequestID]
			if ok {
				delete(inflight, h.RequestID)
			}
			mu.Unlock()
			if !ok {
				continue
			}
			if h.Status != proto.StatusOK {
				dropped.Add(1)
				continue
			}
			lat := time.Since(rec.firstSent)
			received.Add(1)
			mu.Lock()
			res.Latency[rec.typ].RecordDuration(lat)
			res.Overall.RecordDuration(lat)
			mu.Unlock()
		}
	}()

	// Retransmitter: expire or re-send requests whose deadline passed.
	// Only runs when per-request timeouts are configured.
	retryStop := make(chan struct{})
	retryDone := make(chan struct{})
	if cfg.RequestTimeout > 0 {
		go func() {
			defer close(retryDone)
			tick := cfg.RequestTimeout / 4
			if tick > 5*time.Millisecond {
				tick = 5 * time.Millisecond
			}
			if tick < 200*time.Microsecond {
				tick = 200 * time.Microsecond
			}
			ticker := time.NewTicker(tick)
			defer ticker.Stop()
			for {
				select {
				case <-retryStop:
					return
				case <-ticker.C:
				}
				now := time.Now()
				var resend [][]byte
				mu.Lock()
				for id, rec := range inflight {
					if now.Before(rec.deadline) {
						continue
					}
					if rec.attempts >= cfg.MaxRetries {
						delete(inflight, id)
						timedOut.Add(1)
						continue
					}
					rec.attempts++
					// The request header's status byte carries the
					// attempt number so the server can count retries.
					rec.msg[3] = byte(rec.attempts)
					backoff := cfg.backoffFor(rec.attempts, jitterRNG.Float64())
					rec.deadline = now.Add(cfg.RequestTimeout + backoff)
					resend = append(resend, rec.msg)
				}
				mu.Unlock()
				for _, msg := range resend {
					conn.Write(msg) //nolint:errcheck // fire-and-forget UDP
					retries.Add(1)
				}
			}
		}()
	} else {
		close(retryDone)
	}

	start := time.Now()
	next := start
	var id uint64
	var sent uint64
	for time.Since(start) < cfg.Duration {
		gap := time.Duration(r.Exp(1/cfg.Rate) * float64(time.Second))
		next = next.Add(gap)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		typ := pickType(cfg.Mix, r)
		id++
		msg := proto.AppendMessage(nil, proto.Header{
			Kind:      proto.KindRequest,
			RequestID: id,
		}, cfg.BuildPayload(typ))
		now := time.Now()
		rec := &pendingReq{typ: typ, firstSent: now, msg: msg}
		if cfg.RequestTimeout > 0 {
			rec.deadline = now.Add(cfg.RequestTimeout)
		}
		mu.Lock()
		inflight[id] = rec
		mu.Unlock()
		if _, err := conn.Write(msg); err != nil {
			mu.Lock()
			delete(inflight, id)
			mu.Unlock()
			continue
		}
		sent++
	}

	// Grace period for stragglers (retransmission keeps running), then
	// unblock the receiver.
	deadline := time.Now().Add(cfg.Timeout)
	for time.Now().Before(deadline) {
		mu.Lock()
		pending := len(inflight)
		mu.Unlock()
		if pending == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(retryStop)
	<-retryDone
	conn.SetReadDeadline(time.Now()) //nolint:errcheck
	<-recvDone

	// Whatever is still unanswered is a loss, recorded explicitly so it
	// cannot silently skew achieved-rate or quantile statistics.
	mu.Lock()
	lost := len(inflight)
	mu.Unlock()
	res.Sent = sent
	res.Received = received.Load()
	res.Dropped = dropped.Load()
	res.TimedOut = timedOut.Load() + uint64(lost)
	res.Retries = retries.Load()
	res.Elapsed = time.Since(start)
	return res, nil
}

// pendingReq tracks one unanswered request: its encoded message,
// first-send time for retry-aware latency, and retransmission state.
type pendingReq struct {
	typ       int
	firstSent time.Time
	attempts  int
	deadline  time.Time
	msg       []byte
}
