package loadgen

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/proto"
	"repro/internal/rng"
)

// RunUDP generates load against a UDP Perséphone server, matching
// responses to requests by RequestID — the shape of the paper's C++
// open-loop client.
func RunUDP(serverAddr string, cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	addr, err := net.ResolveUDPAddr("udp", serverAddr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	r := rng.New(cfg.Seed)
	res := newResult(len(cfg.Mix.Types))
	var mu sync.Mutex
	inflight := make(map[uint64]sendRecord)
	var received, dropped atomic.Uint64

	// Receiver: match responses to sends.
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		buf := make([]byte, 4096)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				return // deadline or close
			}
			h, _, perr := proto.DecodeHeader(buf[:n])
			if perr != nil || h.Kind != proto.KindResponse {
				continue
			}
			mu.Lock()
			rec, ok := inflight[h.RequestID]
			if ok {
				delete(inflight, h.RequestID)
			}
			mu.Unlock()
			if !ok {
				continue
			}
			if h.Status != proto.StatusOK {
				dropped.Add(1)
				continue
			}
			lat := time.Since(rec.sent)
			received.Add(1)
			mu.Lock()
			res.Latency[rec.typ].RecordDuration(lat)
			res.Overall.RecordDuration(lat)
			mu.Unlock()
		}
	}()

	start := time.Now()
	next := start
	var id uint64
	var sent uint64
	for time.Since(start) < cfg.Duration {
		gap := time.Duration(r.Exp(1/cfg.Rate) * float64(time.Second))
		next = next.Add(gap)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		typ := pickType(cfg.Mix, r)
		id++
		msg := proto.AppendMessage(nil, proto.Header{
			Kind:      proto.KindRequest,
			RequestID: id,
		}, cfg.BuildPayload(typ))
		mu.Lock()
		inflight[id] = sendRecord{typ: typ, sent: time.Now()}
		mu.Unlock()
		if _, err := conn.Write(msg); err != nil {
			mu.Lock()
			delete(inflight, id)
			mu.Unlock()
			continue
		}
		sent++
	}

	// Grace period for stragglers, then unblock the receiver.
	deadline := time.Now().Add(cfg.Timeout)
	for time.Now().Before(deadline) {
		mu.Lock()
		pending := len(inflight)
		mu.Unlock()
		if pending == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	conn.SetReadDeadline(time.Now()) //nolint:errcheck
	<-recvDone

	mu.Lock()
	lost := len(inflight)
	mu.Unlock()
	res.Sent = sent
	res.Received = received.Load()
	res.Dropped = dropped.Load() + uint64(lost)
	res.Elapsed = time.Since(start)
	return res, nil
}

type sendRecord struct {
	typ  int
	sent time.Time
}
