package loadgen

import (
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/proto"
	"repro/internal/rng"
)

// RunUDP generates load against a UDP Perséphone server, matching
// responses to requests by RequestID — the shape of the paper's C++
// open-loop client, extended with per-request timeouts and capped,
// jittered exponential-backoff retransmission for lossy paths.
//
// serverAddr may name several ingress shards as a comma-separated
// list ("host:9940,host:9941"); requests are spread round-robin over
// the shards (client-side shard selection), each with its own socket
// and receiver, matching the server's sharded datapath.
//
// Each request has exactly one recorded outcome: a latency sample
// (measured from the first transmission, so retries do not reset the
// clock), a drop (the server answered with a drop status), or a
// timeout (no response within RequestTimeout across 1+MaxRetries
// transmissions, or still unanswered when the final drain gives up).
func RunUDP(serverAddr string, cfg Config) (*Result, error) {
	return RunUDPAddrs(strings.Split(serverAddr, ","), cfg)
}

// RunUDPAddrs is RunUDP with the shard list passed explicitly.
func RunUDPAddrs(addrs []string, cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if len(addrs) == 0 {
		return nil, errors.New("loadgen: no server address")
	}
	conns := make([]*net.UDPConn, 0, len(addrs))
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for _, a := range addrs {
		addr, err := net.ResolveUDPAddr("udp", strings.TrimSpace(a))
		if err != nil {
			return nil, err
		}
		conn, err := net.DialUDP("udp", nil, addr)
		if err != nil {
			return nil, err
		}
		conns = append(conns, conn)
	}

	r := rng.New(cfg.Seed)
	jitterRNG := r.Split()
	res := newResult(len(cfg.Mix.Types))
	var mu sync.Mutex
	inflight := make(map[uint64]*pendingReq)
	var received, dropped, timedOut, retries, hedged, nacked atomic.Uint64
	dbt := newDropCounter(len(cfg.Mix.Types))

	// Receivers, one per shard socket: match responses to sends.
	// Responses to requests already expired (or duplicate responses)
	// find no record and are ignored, so nothing is double counted.
	var recvWG sync.WaitGroup
	for _, conn := range conns {
		recvWG.Add(1)
		go func(conn *net.UDPConn) {
			defer recvWG.Done()
			buf := make([]byte, 4096)
			for {
				n, err := conn.Read(buf)
				if err != nil {
					return // deadline or close
				}
				h, _, perr := proto.DecodeHeader(buf[:n])
				if perr != nil || h.Kind != proto.KindResponse {
					continue
				}
				mu.Lock()
				rec, ok := inflight[h.RequestID]
				if ok {
					delete(inflight, h.RequestID)
				}
				mu.Unlock()
				if !ok {
					continue
				}
				if h.Status == proto.StatusOverloaded && cfg.RequestTimeout > 0 && rec.attempts < cfg.MaxRetries {
					// Admission NACK with retry budget left: re-arm the
					// record so the retransmitter re-sends it once the
					// server's retry-after hint (jittered) elapses.
					// Latency keeps running from the first send.
					nacked.Add(1)
					ra, _ := proto.DecodeRetryAfter(buf[:n], h)
					mu.Lock()
					rec.deadline = time.Now().Add(cfg.retryDelay(rec.attempts+1, jitterRNG.Float64(), ra))
					inflight[h.RequestID] = rec
					mu.Unlock()
					continue
				}
				if h.Status != proto.StatusOK {
					if h.Status == proto.StatusOverloaded {
						nacked.Add(1)
					}
					dropped.Add(1)
					dbt.add(rec.typ)
					continue
				}
				if cfg.Frontend {
					// Frontend responses carry a correlation trailer
					// whose Attempt field is the query's hedge count.
					if corr, ok := proto.DecodeCorrelation(buf[:n], h); ok && corr.Attempt > 0 {
						hedged.Add(1)
					}
				}
				lat := time.Since(rec.firstSent)
				received.Add(1)
				mu.Lock()
				res.Latency[rec.typ].RecordDuration(lat)
				res.Overall.RecordDuration(lat)
				mu.Unlock()
			}
		}(conn)
	}

	// Retransmitter: expire or re-send requests whose deadline passed.
	// Retransmissions go out on the request's original shard socket.
	// Only runs when per-request timeouts are configured.
	retryStop := make(chan struct{})
	retryDone := make(chan struct{})
	if cfg.RequestTimeout > 0 {
		go func() {
			defer close(retryDone)
			tick := cfg.RequestTimeout / 4
			if tick > 5*time.Millisecond {
				tick = 5 * time.Millisecond
			}
			if tick < 200*time.Microsecond {
				tick = 200 * time.Microsecond
			}
			ticker := time.NewTicker(tick)
			defer ticker.Stop()
			for {
				select {
				case <-retryStop:
					return
				case <-ticker.C:
				}
				now := time.Now()
				var resend []*pendingReq
				mu.Lock()
				for id, rec := range inflight {
					if now.Before(rec.deadline) {
						continue
					}
					if rec.attempts >= cfg.MaxRetries {
						delete(inflight, id)
						timedOut.Add(1)
						continue
					}
					rec.attempts++
					// The request header's status byte carries the
					// attempt number so the server can count retries.
					rec.msg[3] = byte(rec.attempts)
					backoff := cfg.backoffFor(rec.attempts, jitterRNG.Float64())
					rec.deadline = now.Add(cfg.RequestTimeout + backoff)
					resend = append(resend, rec)
				}
				mu.Unlock()
				for _, rec := range resend {
					conns[rec.shard].Write(rec.msg) //nolint:errcheck // fire-and-forget UDP
					retries.Add(1)
				}
			}
		}()
	} else {
		close(retryDone)
	}

	start := time.Now()
	next := start
	var id uint64
	var sent uint64
	for time.Since(start) < cfg.Duration {
		gap := time.Duration(r.Exp(1/cfg.Rate) * float64(time.Second))
		next = next.Add(gap)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		typ := pickType(cfg.Mix, r)
		id++
		shard := int(id % uint64(len(conns)))
		msg := proto.AppendMessage(nil, proto.Header{
			Kind:      proto.KindRequest,
			RequestID: id,
		}, cfg.BuildPayload(typ))
		now := time.Now()
		rec := &pendingReq{typ: typ, shard: shard, firstSent: now, msg: msg}
		if cfg.RequestTimeout > 0 {
			rec.deadline = now.Add(cfg.RequestTimeout)
		}
		mu.Lock()
		inflight[id] = rec
		mu.Unlock()
		if _, err := conns[shard].Write(msg); err != nil {
			mu.Lock()
			delete(inflight, id)
			mu.Unlock()
			continue
		}
		sent++
	}

	// Grace period for stragglers (retransmission keeps running), then
	// unblock the receivers.
	deadline := time.Now().Add(cfg.Timeout)
	for time.Now().Before(deadline) {
		mu.Lock()
		pending := len(inflight)
		mu.Unlock()
		if pending == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(retryStop)
	<-retryDone
	for _, conn := range conns {
		conn.SetReadDeadline(time.Now()) //nolint:errcheck
	}
	recvWG.Wait()

	// Whatever is still unanswered is a loss, recorded explicitly so it
	// cannot silently skew achieved-rate or quantile statistics.
	mu.Lock()
	lost := len(inflight)
	mu.Unlock()
	res.Sent = sent
	res.Received = received.Load()
	res.Dropped = dropped.Load()
	res.TimedOut = timedOut.Load() + uint64(lost)
	res.Retries = retries.Load()
	res.Hedged = hedged.Load()
	res.Nacked = nacked.Load()
	dbt.publish(res)
	res.Elapsed = time.Since(start)
	return res, nil
}

// pendingReq tracks one unanswered request: its encoded message, the
// shard socket it was sent on, first-send time for retry-aware
// latency, and retransmission state.
type pendingReq struct {
	typ       int
	shard     int
	firstSent time.Time
	attempts  int
	deadline  time.Time
	msg       []byte
}
