// Package loadgen is the open-loop load generator for the live
// runtime: it models the paper's client, issuing requests under a
// Poisson process at a configured rate regardless of server progress,
// and records client-observed latency per request type.
package loadgen

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/psp"
	"repro/internal/rng"
	"repro/internal/workload"
)

// Config drives one load generation run.
type Config struct {
	// Mix supplies the request types and their occurrence ratios (the
	// per-type service distributions are the server's business; only
	// ratios are used here).
	Mix workload.Mix
	// Rate is the offered load in requests per second.
	Rate float64
	// Duration is how long to generate for.
	Duration time.Duration
	// Seed makes the arrival process reproducible.
	Seed uint64
	// BuildPayload converts a type index into a request payload. The
	// default emits a 2-byte little-endian type header (matching
	// classify.Field{Offset: 0}).
	BuildPayload func(typ int) []byte
	// Timeout bounds how long to wait for stragglers after the last
	// send (default 2s).
	Timeout time.Duration
	// RequestTimeout bounds the wait for each individual response.
	// RunUDP retransmits an unanswered request after this long (up to
	// MaxRetries times) and finally records it as timed out; RunInProcess
	// stops waiting and records a timeout. 0 disables per-request
	// timeouts: unanswered requests are still recorded as TimedOut when
	// the final drain gives up on them.
	RequestTimeout time.Duration
	// MaxRetries caps retransmissions per request (default 0: a request
	// is sent once and expires after RequestTimeout).
	MaxRetries int
	// RetryBackoff is the extra wait added to RequestTimeout before a
	// retransmission; it doubles per attempt and is jittered to avoid
	// synchronized retry storms (default 1ms when retries are enabled).
	RetryBackoff time.Duration
	// RetryBackoffMax caps the exponential backoff growth (default
	// 64x RetryBackoff).
	RetryBackoffMax time.Duration
	// Frontend marks the target as a fan-out frontend rather than a
	// single Perséphone backend: RunUDP then decodes the correlation
	// trailer on responses and counts queries the frontend answered
	// with the help of a hedge (Result.Hedged).
	Frontend bool
	// Conns is how many TCP connections RunTCP opens (default 1).
	// Ignored off the TCP path.
	Conns int
	// Pipeline caps concurrently outstanding requests per TCP
	// connection (default 32); a full pipeline gates the sender, the
	// stream transport's flow control. Ignored off the TCP path.
	Pipeline int
}

func (c *Config) fill() error {
	if err := c.Mix.Validate(); err != nil {
		return err
	}
	if c.Rate <= 0 {
		return errors.New("loadgen: non-positive rate")
	}
	if c.Duration <= 0 {
		return errors.New("loadgen: non-positive duration")
	}
	if c.BuildPayload == nil {
		c.BuildPayload = func(typ int) []byte {
			p := make([]byte, 8)
			binary.LittleEndian.PutUint16(p, uint16(typ))
			return p
		}
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.RequestTimeout < 0 || c.MaxRetries < 0 || c.RetryBackoff < 0 || c.RetryBackoffMax < 0 {
		return errors.New("loadgen: negative retry configuration")
	}
	if c.MaxRetries > 0 && c.RequestTimeout == 0 {
		return errors.New("loadgen: MaxRetries needs a RequestTimeout")
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = time.Millisecond
	}
	if c.RetryBackoffMax == 0 {
		c.RetryBackoffMax = 64 * c.RetryBackoff
	}
	return nil
}

// backoffFor computes the capped exponential backoff before
// retransmission number attempt (1-based), jittered into
// [backoff/2, backoff) so synchronized clients desynchronize.
func (c *Config) backoffFor(attempt int, jitter float64) time.Duration {
	b := c.RetryBackoff
	for i := 1; i < attempt && b < c.RetryBackoffMax; i++ {
		b *= 2
	}
	if b > c.RetryBackoffMax {
		b = c.RetryBackoffMax
	}
	return b/2 + time.Duration(jitter*float64(b/2))
}

// retryDelay computes the pre-retry sleep: the capped exponential
// backoff, raised to the server's retry-after hint (plus proportional
// jitter, so backed-off clients still desynchronize) when an
// admission NACK carried one.
func (c *Config) retryDelay(attempt int, jitter float64, retryAfter time.Duration) time.Duration {
	d := c.backoffFor(attempt, jitter)
	if retryAfter > 0 {
		hinted := retryAfter + time.Duration(jitter*float64(retryAfter)/2)
		if hinted > d {
			d = hinted
		}
	}
	return d
}

// Result aggregates one run. Every sent request has exactly one
// recorded outcome: Received, Dropped, or TimedOut (retries are extra
// transmissions of the same request, not new requests).
type Result struct {
	Sent     uint64
	Received uint64
	Dropped  uint64 // responses with a drop status
	TimedOut uint64 // requests that never received any response
	Retries  uint64 // retransmissions of already-sent requests
	Errors   uint64 // submissions rejected (backpressure)
	Hedged   uint64 // frontend mode: received queries with >= 1 hedge issued
	// Nacked counts admission NACKs (StatusOverloaded responses)
	// observed, informational: each NACKed request's final outcome is
	// still exactly one of Received (a retry succeeded), Dropped
	// (retry budget exhausted), or TimedOut, so the conservation
	// identity is unchanged.
	Nacked uint64
	// DroppedByType breaks Dropped down by request type index (same
	// indexing as Latency), for exact per-type shed conservation
	// against the server's admission ledger.
	DroppedByType []uint64
	Elapsed       time.Duration
	// Latency holds client-observed latency per type index, plus an
	// aggregate in Overall. Latency is measured from the FIRST
	// transmission of a request, so retries lengthen the recorded
	// latency instead of resetting it.
	Latency []*metrics.Histogram
	Overall *metrics.Histogram
}

// AchievedRate reports received responses per second.
func (r *Result) AchievedRate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Received) / r.Elapsed.Seconds()
}

// Unaccounted reports sent requests with no recorded outcome; a
// correct run is always 0.
func (r *Result) Unaccounted() int64 {
	return int64(r.Sent) - int64(r.Received) - int64(r.Dropped) - int64(r.TimedOut)
}

func newResult(types int) *Result {
	res := &Result{Overall: &metrics.Histogram{}, DroppedByType: make([]uint64, types)}
	for i := 0; i < types; i++ {
		res.Latency = append(res.Latency, &metrics.Histogram{})
	}
	return res
}

// dropCounter is the concurrent per-type drop tally the transports
// accumulate into before publishing Result.DroppedByType.
type dropCounter []atomic.Uint64

func newDropCounter(types int) dropCounter { return make(dropCounter, types) }

func (d dropCounter) add(typ int) {
	if typ >= 0 && typ < len(d) {
		d[typ].Add(1)
	}
}

func (d dropCounter) publish(res *Result) {
	for i := range d {
		res.DroppedByType[i] = d[i].Load()
	}
}

// RunInProcess generates load against an in-process psp.Server.
func RunInProcess(srv *psp.Server, cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)
	jitterRNG := r.Split()
	res := newResult(len(cfg.Mix.Types))
	var mu sync.Mutex // guards the histograms and jitterRNG
	var wg sync.WaitGroup
	var sent, received, dropped, timedOut, retries, errs, nacked atomic.Uint64
	dbt := newDropCounter(len(cfg.Mix.Types))

	start := time.Now()
	next := start
	for time.Since(start) < cfg.Duration {
		// Poisson pacing: exponential gaps at the configured rate.
		gap := time.Duration(r.Exp(1/cfg.Rate) * float64(time.Second))
		next = next.Add(gap)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		typ := pickType(cfg.Mix, r)
		payload := cfg.BuildPayload(typ)
		t0 := time.Now()
		ch, err := srv.Submit(payload)
		if err != nil {
			errs.Add(1)
			continue
		}
		sent.Add(1)
		wg.Add(1)
		go func(typ int, t0 time.Time, payload []byte, ch <-chan psp.Response) {
			defer wg.Done()
			attempt := 0
			for {
				var resp psp.Response
				if cfg.RequestTimeout > 0 {
					select {
					case resp = <-ch:
					case <-time.After(cfg.RequestTimeout):
						timedOut.Add(1)
						return
					}
				} else {
					resp = <-ch
				}
				if resp.Status != 0 {
					// Shed by flow control, admission control, or a
					// crashed worker: back off and resubmit, up to the
					// retry budget. Admission NACKs carry a retry-after
					// hint the backoff honors.
					if resp.Status == proto.StatusOverloaded {
						nacked.Add(1)
					}
					if attempt >= cfg.MaxRetries {
						dropped.Add(1)
						dbt.add(typ)
						return
					}
					attempt++
					retries.Add(1)
					mu.Lock()
					j := jitterRNG.Float64()
					mu.Unlock()
					time.Sleep(cfg.retryDelay(attempt, j, resp.RetryAfter))
					rch, err := srv.Submit(payload)
					if err != nil {
						dropped.Add(1)
						dbt.add(typ)
						return
					}
					ch = rch
					continue
				}
				// Latency runs from the first submission, so retried
				// requests carry their full cost.
				lat := time.Since(t0)
				received.Add(1)
				mu.Lock()
				res.Latency[typ].RecordDuration(lat)
				res.Overall.RecordDuration(lat)
				mu.Unlock()
				return
			}
		}(typ, t0, payload, ch)
	}
	waitTimeout(&wg, cfg.Timeout)
	res.Sent = sent.Load()
	res.Received = received.Load()
	res.Dropped = dropped.Load()
	res.TimedOut = timedOut.Load()
	res.Retries = retries.Load()
	res.Errors = errs.Load()
	res.Nacked = nacked.Load()
	dbt.publish(res)
	res.Elapsed = time.Since(start)
	return res, nil
}

func pickType(mix workload.Mix, r *rng.RNG) int {
	u := r.Float64()
	var acc float64
	for i, t := range mix.Types {
		acc += t.Ratio
		if u < acc {
			return i
		}
	}
	return len(mix.Types) - 1
}

func waitTimeout(wg *sync.WaitGroup, d time.Duration) bool {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(d):
		return false
	}
}

// String summarises a result for logs.
func (r *Result) String() string {
	return fmt.Sprintf("loadgen{sent=%d recv=%d drop=%d timeout=%d retry=%d nack=%d err=%d rate=%.0f/s p99=%v}",
		r.Sent, r.Received, r.Dropped, r.TimedOut, r.Retries, r.Nacked, r.Errors, r.AchievedRate(),
		r.Overall.QuantileDuration(0.99))
}
