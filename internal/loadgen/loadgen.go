// Package loadgen is the open-loop load generator for the live
// runtime: it models the paper's client, issuing requests under a
// Poisson process at a configured rate regardless of server progress,
// and records client-observed latency per request type.
package loadgen

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/psp"
	"repro/internal/rng"
	"repro/internal/workload"
)

// Config drives one load generation run.
type Config struct {
	// Mix supplies the request types and their occurrence ratios (the
	// per-type service distributions are the server's business; only
	// ratios are used here).
	Mix workload.Mix
	// Rate is the offered load in requests per second.
	Rate float64
	// Duration is how long to generate for.
	Duration time.Duration
	// Seed makes the arrival process reproducible.
	Seed uint64
	// BuildPayload converts a type index into a request payload. The
	// default emits a 2-byte little-endian type header (matching
	// classify.Field{Offset: 0}).
	BuildPayload func(typ int) []byte
	// Timeout bounds how long to wait for stragglers after the last
	// send (default 2s).
	Timeout time.Duration
}

func (c *Config) fill() error {
	if err := c.Mix.Validate(); err != nil {
		return err
	}
	if c.Rate <= 0 {
		return errors.New("loadgen: non-positive rate")
	}
	if c.Duration <= 0 {
		return errors.New("loadgen: non-positive duration")
	}
	if c.BuildPayload == nil {
		c.BuildPayload = func(typ int) []byte {
			p := make([]byte, 8)
			binary.LittleEndian.PutUint16(p, uint16(typ))
			return p
		}
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	return nil
}

// Result aggregates one run.
type Result struct {
	Sent     uint64
	Received uint64
	Dropped  uint64 // responses with a drop status
	Errors   uint64 // submissions rejected (backpressure)
	Elapsed  time.Duration
	// Latency holds client-observed latency per type index, plus an
	// aggregate in Overall.
	Latency []*metrics.Histogram
	Overall *metrics.Histogram
}

// AchievedRate reports received responses per second.
func (r *Result) AchievedRate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Received) / r.Elapsed.Seconds()
}

func newResult(types int) *Result {
	res := &Result{Overall: &metrics.Histogram{}}
	for i := 0; i < types; i++ {
		res.Latency = append(res.Latency, &metrics.Histogram{})
	}
	return res
}

// RunInProcess generates load against an in-process psp.Server.
func RunInProcess(srv *psp.Server, cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)
	res := newResult(len(cfg.Mix.Types))
	var mu sync.Mutex
	var wg sync.WaitGroup
	var sent, received, dropped, errs atomic.Uint64

	start := time.Now()
	next := start
	for time.Since(start) < cfg.Duration {
		// Poisson pacing: exponential gaps at the configured rate.
		gap := time.Duration(r.Exp(1/cfg.Rate) * float64(time.Second))
		next = next.Add(gap)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		typ := pickType(cfg.Mix, r)
		payload := cfg.BuildPayload(typ)
		t0 := time.Now()
		ch, err := srv.Submit(payload)
		if err != nil {
			errs.Add(1)
			continue
		}
		sent.Add(1)
		wg.Add(1)
		go func(typ int, t0 time.Time) {
			defer wg.Done()
			resp := <-ch
			lat := time.Since(t0)
			if resp.Status != 0 {
				dropped.Add(1)
				return
			}
			received.Add(1)
			mu.Lock()
			res.Latency[typ].RecordDuration(lat)
			res.Overall.RecordDuration(lat)
			mu.Unlock()
		}(typ, t0)
	}
	waitTimeout(&wg, cfg.Timeout)
	res.Sent = sent.Load()
	res.Received = received.Load()
	res.Dropped = dropped.Load()
	res.Errors = errs.Load()
	res.Elapsed = time.Since(start)
	return res, nil
}

func pickType(mix workload.Mix, r *rng.RNG) int {
	u := r.Float64()
	var acc float64
	for i, t := range mix.Types {
		acc += t.Ratio
		if u < acc {
			return i
		}
	}
	return len(mix.Types) - 1
}

func waitTimeout(wg *sync.WaitGroup, d time.Duration) bool {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(d):
		return false
	}
}

// String summarises a result for logs.
func (r *Result) String() string {
	return fmt.Sprintf("loadgen{sent=%d recv=%d drop=%d err=%d rate=%.0f/s p99=%v}",
		r.Sent, r.Received, r.Dropped, r.Errors, r.AchievedRate(),
		r.Overall.QuantileDuration(0.99))
}
