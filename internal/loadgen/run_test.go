package loadgen

import (
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/classify"
	"repro/internal/darc"
	"repro/internal/proto"
	"repro/internal/psp"
)

func TestRetryDelayHonorsHint(t *testing.T) {
	cfg := Config{RetryBackoff: time.Millisecond, RetryBackoffMax: 8 * time.Millisecond}
	// No hint: identical to the plain exponential backoff.
	if got, want := cfg.retryDelay(2, 0, 0), cfg.backoffFor(2, 0); got != want {
		t.Fatalf("no hint: %v, want %v", got, want)
	}
	// A hint below the backoff changes nothing.
	if got, want := cfg.retryDelay(3, 0, time.Millisecond), cfg.backoffFor(3, 0); got != want {
		t.Fatalf("small hint: %v, want %v", got, want)
	}
	// A hint above the backoff wins, and jitter stretches it upward so
	// backed-off clients desynchronize.
	if got := cfg.retryDelay(1, 0, 50*time.Millisecond); got != 50*time.Millisecond {
		t.Fatalf("big hint, zero jitter: %v, want 50ms", got)
	}
	got := cfg.retryDelay(1, 1, 50*time.Millisecond)
	if got < 50*time.Millisecond || got > 75*time.Millisecond {
		t.Fatalf("big hint, full jitter: %v outside [50ms, 75ms]", got)
	}
}

func TestRunConfigValidation(t *testing.T) {
	srv := echoServer(t)
	base := Config{Mix: testMix(), Rate: 100, Duration: 10 * time.Millisecond}
	bad := []RunConfig{
		{Config: base}, // no transport, no server
		{Config: base, Transport: "carrier-pigeon"},                           // unknown transport
		{Config: base, Transport: TransportInProcess},                         // inprocess without server
		{Config: base, Transport: TransportInProcess, Server: srv, Addr: "x"}, // inprocess with addr
		{Config: base, Transport: TransportUDP},                               // udp without addr
		{Config: base, Transport: TransportUDP, Addr: "h:1", Server: srv},     // udp with server
		{Config: base, Transport: TransportFrontend},                          // frontend without addr
		{Config: base, Transport: TransportTCP},                               // tcp without addr
		{Config: base, Transport: TransportTCP, Addr: "h:1", Server: srv},     // tcp with server
	}
	for i, rc := range bad {
		if _, err := Run(rc); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRunDispatchesInProcess(t *testing.T) {
	srv := echoServer(t)
	// Empty Transport with a Server defaults to in-process.
	res, err := Run(RunConfig{
		Config: Config{Mix: testMix(), Rate: 1000, Duration: 100 * time.Millisecond, Seed: 11},
		Server: srv,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 || res.Received == 0 {
		t.Fatalf("sent %d received %d", res.Sent, res.Received)
	}
	if un := res.Unaccounted(); un != 0 {
		t.Fatalf("%d requests unaccounted for", un)
	}
}

// sheddingServer builds a server whose admission budgets are 1ns, so
// every request is NACKed at enqueue with a retry-after hint.
func sheddingServer(t *testing.T) *psp.Server {
	t.Helper()
	cfg := darc.DefaultConfig(2)
	cfg.MinWindowSamples = 64
	srv, err := psp.NewServer(psp.Config{
		Workers:    2,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler: psp.HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			return copy(r, p), proto.StatusOK
		}),
		DARC: cfg,
		Admission: &admission.Config{
			Budgets: []time.Duration{time.Nanosecond, time.Nanosecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestInProcessNACKBackoff: a server that sheds everything must yield
// all-dropped results with every NACK counted and the retry budget
// honored (each request is NACKed once per attempt).
func TestInProcessNACKBackoff(t *testing.T) {
	srv := sheddingServer(t)
	srv.Start()
	t.Cleanup(srv.Stop)
	res, err := Run(RunConfig{
		Config: Config{
			Mix:            testMix(),
			Rate:           400,
			Duration:       100 * time.Millisecond,
			Seed:           12,
			RequestTimeout: 100 * time.Millisecond,
			MaxRetries:     1,
			RetryBackoff:   time.Millisecond,
		},
		Server: srv,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%v", res)
	if res.Sent == 0 {
		t.Fatal("nothing sent")
	}
	if res.Received != 0 {
		t.Fatalf("received %d from an always-shedding server", res.Received)
	}
	if res.Dropped != res.Sent {
		t.Fatalf("dropped %d of %d sent", res.Dropped, res.Sent)
	}
	if res.Retries != res.Sent {
		t.Fatalf("retries %d, want one per request (%d)", res.Retries, res.Sent)
	}
	// Initial attempt plus one retry, each NACKed.
	if want := 2 * res.Sent; res.Nacked != want {
		t.Fatalf("nacked %d, want %d", res.Nacked, want)
	}
	if un := res.Unaccounted(); un != 0 {
		t.Fatalf("%d requests unaccounted for", un)
	}
}

// TestRunUDPNACKRearm: over UDP a NACK must re-arm the inflight record
// (so the retransmitter re-sends after the retry-after hint) instead of
// terminally dropping on first receipt, and the terminal NACK after the
// retry budget must count as Dropped, not TimedOut.
func TestRunUDPNACKRearm(t *testing.T) {
	srv := sheddingServer(t)
	u, err := psp.ListenUDP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { u.Close() })

	res, err := Run(RunConfig{
		Config: Config{
			Mix:            testMix(),
			Rate:           300,
			Duration:       100 * time.Millisecond,
			Seed:           13,
			RequestTimeout: 50 * time.Millisecond,
			MaxRetries:     2,
			RetryBackoff:   time.Millisecond,
		},
		Transport: TransportUDP,
		Addr:      u.Addr().String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%v", res)
	if res.Sent == 0 {
		t.Fatal("nothing sent")
	}
	if res.Received != 0 {
		t.Fatalf("received %d from an always-shedding server", res.Received)
	}
	if res.Nacked == 0 {
		t.Fatal("no NACKs recorded")
	}
	// Loopback is reliable, so no request should die silently: every
	// outcome is a terminal NACK (Dropped), not a timeout.
	if res.Dropped != res.Sent || res.TimedOut != 0 {
		t.Fatalf("dropped %d timedout %d of %d sent", res.Dropped, res.TimedOut, res.Sent)
	}
	// Each request is retransmitted after each non-terminal NACK.
	if want := 2 * res.Sent; res.Retries != want {
		t.Fatalf("retries %d, want %d", res.Retries, want)
	}
	if un := res.Unaccounted(); un != 0 {
		t.Fatalf("%d requests unaccounted for", un)
	}
}

// TestRunTCPNACK: the TCP path surfaces NACKs as psp.ErrOverloaded from
// the client; the generator must count them and retry with backoff
// rather than misclassify them as timeouts.
func TestRunTCPNACK(t *testing.T) {
	srv := sheddingServer(t)
	l, err := psp.ListenTCP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })

	res, err := Run(RunConfig{
		Config: Config{
			Mix:            testMix(),
			Rate:           300,
			Duration:       100 * time.Millisecond,
			Seed:           14,
			RequestTimeout: 200 * time.Millisecond,
			MaxRetries:     1,
			RetryBackoff:   time.Millisecond,
			Conns:          2,
			Pipeline:       16,
		},
		Transport: TransportTCP,
		Addr:      l.Addr().String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%v", res)
	if res.Sent == 0 {
		t.Fatal("nothing sent")
	}
	if res.Received != 0 {
		t.Fatalf("received %d from an always-shedding server", res.Received)
	}
	if res.TimedOut != 0 {
		t.Fatalf("%d NACKs misclassified as timeouts", res.TimedOut)
	}
	if res.Dropped != res.Sent {
		t.Fatalf("dropped %d of %d sent", res.Dropped, res.Sent)
	}
	if want := 2 * res.Sent; res.Nacked != want {
		t.Fatalf("nacked %d, want %d", res.Nacked, want)
	}
	if un := res.Unaccounted(); un != 0 {
		t.Fatalf("%d requests unaccounted for", un)
	}
}
