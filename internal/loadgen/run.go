package loadgen

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/psp"
)

// Transport names for RunConfig.Transport.
const (
	TransportInProcess = "inprocess"
	TransportUDP       = "udp"
	TransportTCP       = "tcp"
	TransportFrontend  = "frontend"
)

// RunConfig is the unified load-generation entry point: one Config plus
// a transport selector, replacing the three divergent RunInProcess /
// RunUDP / RunTCP signatures.
type RunConfig struct {
	Config

	// Transport selects the datapath: "inprocess" (the default when a
	// Server is set), "udp", "tcp", or "frontend". Frontend is the UDP
	// datapath pointed at a fan-out frontend, which makes responses
	// carry correlation trailers (Result.Hedged).
	Transport string

	// Addr is the target address for the network transports. The UDP
	// transports accept a comma-separated shard list
	// ("host:9940,host:9941").
	Addr string

	// Server is the in-process target; required for (and only used by)
	// the inprocess transport.
	Server *psp.Server
}

// Run generates load according to rc. It validates the
// transport/target pairing up front so misconfigurations fail fast
// instead of timing out.
func Run(rc RunConfig) (*Result, error) {
	transport := strings.ToLower(strings.TrimSpace(rc.Transport))
	if transport == "" {
		if rc.Server != nil {
			transport = TransportInProcess
		} else {
			return nil, errors.New("loadgen: RunConfig needs a Transport (or a Server for the in-process default)")
		}
	}
	switch transport {
	case TransportInProcess:
		if rc.Server == nil {
			return nil, errors.New("loadgen: inprocess transport needs RunConfig.Server")
		}
		if rc.Addr != "" {
			return nil, errors.New("loadgen: inprocess transport takes no Addr")
		}
		return RunInProcess(rc.Server, rc.Config)
	case TransportUDP, TransportFrontend:
		if rc.Addr == "" {
			return nil, fmt.Errorf("loadgen: %s transport needs RunConfig.Addr", transport)
		}
		if rc.Server != nil {
			return nil, fmt.Errorf("loadgen: %s transport takes no Server", transport)
		}
		cfg := rc.Config
		cfg.Frontend = transport == TransportFrontend
		return RunUDPAddrs(strings.Split(rc.Addr, ","), cfg)
	case TransportTCP:
		if rc.Addr == "" {
			return nil, errors.New("loadgen: tcp transport needs RunConfig.Addr")
		}
		if rc.Server != nil {
			return nil, errors.New("loadgen: tcp transport takes no Server")
		}
		return RunTCP(rc.Addr, rc.Config)
	default:
		return nil, fmt.Errorf("loadgen: unknown transport %q (want inprocess, udp, tcp, or frontend)", rc.Transport)
	}
}
