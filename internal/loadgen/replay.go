package loadgen

import (
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/proto"
	"repro/internal/trace"
)

// replayPayloadLen is the wire size of the default replay payload:
// a 2-byte little-endian type header (classify.Field-compatible),
// 6 bytes of padding, and the service demand in nanoseconds as a
// little-endian uint64.
const replayPayloadLen = 16

// ReplayPayload encodes one trace record into the default replay
// payload. The type index lands at offset 0 as a little-endian uint16
// so the server's classify.Field{Offset: 0} classifier sees it; the
// service demand travels at offset 8 so a trace-aware handler can
// reproduce the recorded cost (see ReplayService).
func ReplayPayload(rec trace.Record) []byte {
	p := make([]byte, replayPayloadLen)
	binary.LittleEndian.PutUint16(p, uint16(rec.Type))
	binary.LittleEndian.PutUint64(p[8:], uint64(rec.Service))
	return p
}

// ReplayService decodes the service demand carried by a ReplayPayload.
// The second return is false when the payload is too short to carry
// one.
func ReplayService(payload []byte) (time.Duration, bool) {
	if len(payload) < replayPayloadLen {
		return 0, false
	}
	return time.Duration(binary.LittleEndian.Uint64(payload[8:])), true
}

// ReplayResult extends Result with per-type outcome counts. The
// conformance comparator needs them: when a rare loopback drop times a
// request out, it must widen the per-type conservation check by
// exactly that type's losses instead of failing the whole run.
type ReplayResult struct {
	Result
	SentByType     []uint64
	TimedOutByType []uint64
	DroppedByType  []uint64
}

// ReplayUDP replays a trace against a UDP Perséphone server: every
// record is sent at its recorded offset (absolute pacing against the
// replay start instant, so scheduling jitter does not accumulate) with
// ReplayPayload as the wire payload. Unlike RunUDP there are no
// retransmissions and no per-request timeouts — a replay must offer
// the exact recorded arrival sequence, once — so every request's
// outcome is a response, a drop status, or a final-drain timeout.
//
// serverAddr accepts the same comma-separated shard list as RunUDP.
// cfg.Timeout bounds the final drain (default 2s via Config.fill);
// all other Config knobs are ignored.
func ReplayUDP(serverAddr string, tr *trace.Trace, cfg Config) (*ReplayResult, error) {
	if tr == nil || tr.Len() == 0 {
		return nil, errors.New("loadgen: empty replay trace")
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	numTypes := tr.NumTypes()
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}

	var conns []*net.UDPConn
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for _, a := range strings.Split(serverAddr, ",") {
		addr, err := net.ResolveUDPAddr("udp", strings.TrimSpace(a))
		if err != nil {
			return nil, err
		}
		conn, err := net.DialUDP("udp", nil, addr)
		if err != nil {
			return nil, err
		}
		conns = append(conns, conn)
	}

	res := &ReplayResult{
		Result:         *newResult(numTypes),
		SentByType:     make([]uint64, numTypes),
		TimedOutByType: make([]uint64, numTypes),
		DroppedByType:  make([]uint64, numTypes),
	}
	var mu sync.Mutex
	inflight := make(map[uint64]*pendingReq)
	var received, errs atomic.Uint64

	var recvWG sync.WaitGroup
	for _, conn := range conns {
		recvWG.Add(1)
		go func(conn *net.UDPConn) {
			defer recvWG.Done()
			buf := make([]byte, 4096)
			for {
				n, err := conn.Read(buf)
				if err != nil {
					return // deadline or close
				}
				h, _, perr := proto.DecodeHeader(buf[:n])
				if perr != nil || h.Kind != proto.KindResponse {
					continue
				}
				mu.Lock()
				rec, ok := inflight[h.RequestID]
				if ok {
					delete(inflight, h.RequestID)
				}
				if !ok {
					mu.Unlock()
					continue
				}
				if h.Status != proto.StatusOK {
					res.Dropped++
					res.DroppedByType[rec.typ]++
					mu.Unlock()
					continue
				}
				lat := time.Since(rec.firstSent)
				received.Add(1)
				res.Latency[rec.typ].RecordDuration(lat)
				res.Overall.RecordDuration(lat)
				mu.Unlock()
			}
		}(conn)
	}

	start := time.Now()
	var sent uint64
	for i, rec := range tr.Records {
		if d := time.Until(start.Add(rec.Offset)); d > 0 {
			time.Sleep(d)
		}
		id := uint64(i + 1)
		shard := int(id % uint64(len(conns)))
		msg := proto.AppendMessage(nil, proto.Header{
			Kind:      proto.KindRequest,
			RequestID: id,
		}, ReplayPayload(rec))
		mu.Lock()
		inflight[id] = &pendingReq{typ: rec.Type, shard: shard, firstSent: time.Now()}
		mu.Unlock()
		if _, err := conns[shard].Write(msg); err != nil {
			mu.Lock()
			delete(inflight, id)
			mu.Unlock()
			errs.Add(1)
			continue
		}
		sent++
		res.SentByType[rec.Type]++
	}

	deadline := time.Now().Add(cfg.Timeout)
	for time.Now().Before(deadline) {
		mu.Lock()
		pending := len(inflight)
		mu.Unlock()
		if pending == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, conn := range conns {
		conn.SetReadDeadline(time.Now()) //nolint:errcheck
	}
	recvWG.Wait()

	mu.Lock()
	for _, rec := range inflight {
		res.TimedOut++
		res.TimedOutByType[rec.typ]++
	}
	mu.Unlock()
	res.Sent = sent
	res.Received = received.Load()
	res.Errors = errs.Load()
	res.Elapsed = time.Since(start)
	return res, nil
}
