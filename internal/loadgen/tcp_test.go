package loadgen

import (
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/darc"
	"repro/internal/proto"
	"repro/internal/psp"
)

func tcpEcho(t *testing.T) *psp.TCPServer {
	t.Helper()
	cfg := darc.DefaultConfig(2)
	cfg.MinWindowSamples = 64
	srv, err := psp.NewServer(psp.Config{
		Workers:    2,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler: psp.HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			return copy(r, p), proto.StatusOK
		}),
		DARC: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := psp.ListenTCP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ts.Close() })
	return ts
}

func TestRunTCP(t *testing.T) {
	ts := tcpEcho(t)
	res, err := RunTCP(ts.Addr().String(), Config{
		Mix:      testMix(),
		Rate:     2000,
		Duration: 300 * time.Millisecond,
		Seed:     4,
		Conns:    2,
		Pipeline: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 {
		t.Fatal("nothing sent")
	}
	// The stream is reliable: over loopback with no chaos, every sent
	// request is answered.
	if res.Received != res.Sent {
		t.Fatalf("received %d of %d over a reliable stream (%d dropped, %d timed out)",
			res.Received, res.Sent, res.Dropped, res.TimedOut)
	}
	if un := res.Unaccounted(); un != 0 {
		t.Fatalf("%d requests unaccounted for", un)
	}
	if res.Overall.QuantileDuration(0.5) <= 0 {
		t.Fatal("no latency recorded")
	}
}

// TestRunTCPTimeoutAccounting points the generator at an address that
// accepts and then never answers: every request must surface as an
// explicit timeout.
func TestRunTCPTimeoutAccounting(t *testing.T) {
	// A handler that never finishes within the request timeout.
	slow, err := psp.NewServer(psp.Config{
		Workers:    1,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler: psp.HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			time.Sleep(500 * time.Millisecond)
			return 0, proto.StatusOK
		}),
		Mode: psp.ModeCFCFS,
	})
	if err != nil {
		t.Fatal(err)
	}
	tslow, err := psp.ListenTCP("127.0.0.1:0", slow)
	if err != nil {
		t.Fatal(err)
	}
	defer tslow.Close()

	res, err := RunTCP(tslow.Addr().String(), Config{
		Mix:            testMix(),
		Rate:           200,
		Duration:       100 * time.Millisecond,
		Seed:           1,
		RequestTimeout: 20 * time.Millisecond,
		Timeout:        2 * time.Second,
		Pipeline:       64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 {
		t.Fatal("nothing sent")
	}
	if res.TimedOut != res.Sent {
		t.Fatalf("%d of %d sends timed out, want all (received %d)", res.TimedOut, res.Sent, res.Received)
	}
	if un := res.Unaccounted(); un != 0 {
		t.Fatalf("%d requests unaccounted for", un)
	}
}
