package spsc

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestRingFIFOSingleThread(t *testing.T) {
	r := NewRing[int](8)
	for i := 0; i < 8; i++ {
		if !r.TryPut(i) {
			t.Fatalf("put %d failed below capacity", i)
		}
	}
	if r.TryPut(99) {
		t.Fatal("put succeeded on full ring")
	}
	for i := 0; i < 8; i++ {
		v, ok := r.TryGet()
		if !ok || v != i {
			t.Fatalf("get %d: %v %v", i, v, ok)
		}
	}
	if _, ok := r.TryGet(); ok {
		t.Fatal("get succeeded on empty ring")
	}
}

func TestRingCapacityRounding(t *testing.T) {
	if got := NewRing[int](5).Cap(); got != 8 {
		t.Fatalf("cap %d, want 8", got)
	}
	if got := NewRing[int](0).Cap(); got != 2 {
		t.Fatalf("cap %d, want 2", got)
	}
	if got := NewRing[int](16).Cap(); got != 16 {
		t.Fatalf("cap %d, want 16", got)
	}
}

func TestRingLen(t *testing.T) {
	r := NewRing[int](4)
	if !r.Empty() {
		t.Fatal("new ring not empty")
	}
	r.TryPut(1)
	r.TryPut(2)
	if r.Len() != 2 {
		t.Fatalf("len %d", r.Len())
	}
	r.TryGet()
	if r.Len() != 1 {
		t.Fatalf("len %d", r.Len())
	}
}

func TestRingWrapAround(t *testing.T) {
	r := NewRing[int](4)
	next, expect := 0, 0
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			if r.TryPut(next) {
				next++
			}
		}
		for i := 0; i < 2; i++ {
			if v, ok := r.TryGet(); ok {
				if v != expect {
					t.Fatalf("got %d, want %d", v, expect)
				}
				expect++
			}
		}
	}
}

// TestRingConcurrent streams a million integers across goroutines and
// checks exact order and completeness.
func TestRingConcurrent(t *testing.T) {
	r := NewRing[int](1024)
	n := 1 << 20
	if testing.Short() {
		n = 1 << 16 // keep CI's instrumented (-race -short) run quick
	}
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if v := r.Get(); v != i {
				done <- fmt.Errorf("got %d, want %d", v, i)
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < n; i++ {
		r.Put(i)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestRingPointers(t *testing.T) {
	type payload struct{ v int }
	r := NewRing[*payload](8)
	p := &payload{v: 42}
	r.Put(p)
	got := r.Get()
	if got != p {
		t.Fatal("pointer identity lost")
	}
}

func TestMPSCSingleThread(t *testing.T) {
	q := NewMPSC[int](4)
	for i := 0; i < 4; i++ {
		if !q.TryPut(i) {
			t.Fatalf("put %d failed", i)
		}
	}
	if q.TryPut(9) {
		t.Fatal("put on full MPSC succeeded")
	}
	for i := 0; i < 4; i++ {
		v, ok := q.TryGet()
		if !ok || v != i {
			t.Fatalf("get %d: %v %v", i, v, ok)
		}
	}
	if _, ok := q.TryGet(); ok {
		t.Fatal("get on empty succeeded")
	}
}

// TestMPSCConcurrentProducers has many producers and one consumer;
// every value must arrive exactly once.
func TestMPSCConcurrentProducers(t *testing.T) {
	const producers = 8
	perProducer := 20000
	if testing.Short() {
		perProducer = 2000
	}
	q := NewMPSC[int](256)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				v := p*perProducer + i
				for !q.TryPut(v) {
				}
			}
		}(p)
	}
	seen := make([]bool, producers*perProducer)
	got := 0
	done := make(chan struct{})
	go func() {
		for got < producers*perProducer {
			if v, ok := q.TryGet(); ok {
				if seen[v] {
					t.Errorf("duplicate %d", v)
					break
				}
				seen[v] = true
				got++
			}
		}
		close(done)
	}()
	wg.Wait()
	<-done
	if got != producers*perProducer {
		t.Fatalf("received %d of %d", got, producers*perProducer)
	}
}

func TestPoolLifecycle(t *testing.T) {
	p := NewPool(4, 64)
	if p.Available() != 4 || p.BufSize() != 64 {
		t.Fatalf("pool init: avail %d bufsize %d", p.Available(), p.BufSize())
	}
	bufs := make([]*Buffer, 0, 4)
	for i := 0; i < 4; i++ {
		b := p.Get()
		if b == nil {
			t.Fatalf("get %d returned nil with buffers available", i)
		}
		if len(b.Data) != 64 {
			t.Fatalf("buffer size %d", len(b.Data))
		}
		bufs = append(bufs, b)
	}
	if p.Get() != nil {
		t.Fatal("exhausted pool returned a buffer")
	}
	if p.Outstanding() != 4 {
		t.Fatalf("outstanding %d", p.Outstanding())
	}
	for _, b := range bufs {
		b.Release()
	}
	if p.Outstanding() != 0 || p.Available() != 4 {
		t.Fatalf("after release: outstanding %d avail %d", p.Outstanding(), p.Available())
	}
	// Buffers are reusable.
	if p.Get() == nil {
		t.Fatal("pool unusable after a full cycle")
	}
}

func TestPoolBufferBytes(t *testing.T) {
	p := NewPool(1, 32)
	b := p.Get()
	copy(b.Data, "hello")
	b.Len = 5
	if string(b.Bytes()) != "hello" {
		t.Fatalf("bytes %q", b.Bytes())
	}
}

func TestPoolConcurrentRelease(t *testing.T) {
	p := NewPool(64, 16)
	var wg sync.WaitGroup
	for round := 0; round < 50; round++ {
		var bufs []*Buffer
		for {
			b := p.Get()
			if b == nil {
				break
			}
			bufs = append(bufs, b)
		}
		for _, b := range bufs {
			wg.Add(1)
			go func(b *Buffer) {
				defer wg.Done()
				b.Release()
			}(b)
		}
		wg.Wait()
	}
	if p.Outstanding() != 0 || p.Available() != 64 {
		t.Fatalf("outstanding %d avail %d", p.Outstanding(), p.Available())
	}
}

// TestRingPropertyFIFO checks arbitrary put/get interleavings against
// a slice model (single-threaded).
func TestRingPropertyFIFO(t *testing.T) {
	check := func(ops []bool) bool {
		r := NewRing[int](8)
		var model []int
		next := 0
		for _, put := range ops {
			if put {
				ok := r.TryPut(next)
				modelOK := len(model) < r.Cap()
				if ok != modelOK {
					return false
				}
				if ok {
					model = append(model, next)
				}
				next++
			} else {
				v, ok := r.TryGet()
				if len(model) == 0 {
					if ok {
						return false
					}
				} else {
					if !ok || v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMPSCTryPutBatchFIFO(t *testing.T) {
	q := NewMPSC[int](8)
	if got := q.TryPutBatch(nil); got != 0 {
		t.Fatalf("batch of nothing accepted %d", got)
	}
	if got := q.TryPutBatch([]int{0, 1, 2, 3, 4}); got != 5 {
		t.Fatalf("batch accepted %d of 5", got)
	}
	if !q.TryPut(5) {
		t.Fatal("single put after batch failed")
	}
	for i := 0; i < 6; i++ {
		v, ok := q.TryGet()
		if !ok || v != i {
			t.Fatalf("get %d: %v %v", i, v, ok)
		}
	}
	if _, ok := q.TryGet(); ok {
		t.Fatal("get on drained ring succeeded")
	}
}

// TestMPSCTryPutBatchPartial: a batch larger than the free space must
// accept exactly the prefix that fits, leaving the rest to the caller.
func TestMPSCTryPutBatchPartial(t *testing.T) {
	q := NewMPSC[int](8)
	for i := 0; i < 6; i++ {
		q.TryPut(i)
	}
	if got := q.TryPutBatch([]int{6, 7, 8, 9}); got != 2 {
		t.Fatalf("partial batch accepted %d, want 2", got)
	}
	if got := q.TryPutBatch([]int{99}); got != 0 {
		t.Fatalf("batch into full ring accepted %d", got)
	}
	for i := 0; i < 8; i++ {
		v, ok := q.TryGet()
		if !ok || v != i {
			t.Fatalf("get %d: %v %v", i, v, ok)
		}
	}
}

// TestMPSCTryPutBatchOversized: a batch longer than the ring's whole
// capacity is clamped rather than rejected or wrapped.
func TestMPSCTryPutBatchOversized(t *testing.T) {
	q := NewMPSC[int](4)
	vs := make([]int, 64)
	for i := range vs {
		vs[i] = i
	}
	if got := q.TryPutBatch(vs); got != 4 {
		t.Fatalf("oversized batch accepted %d, want cap 4", got)
	}
	for i := 0; i < 4; i++ {
		if v, _ := q.TryGet(); v != i {
			t.Fatalf("get %d mismatch: %v", i, v)
		}
	}
}

// TestMPSCTryPutBatchWrap drives many batch-put/drain cycles across
// the index wrap point so stale-sequence handling is exercised.
func TestMPSCTryPutBatchWrap(t *testing.T) {
	q := NewMPSC[int](8)
	next := 0
	for round := 0; round < 100; round++ {
		batch := make([]int, 1+round%7)
		for i := range batch {
			batch[i] = next + i
		}
		got := q.TryPutBatch(batch)
		if got != len(batch) {
			t.Fatalf("round %d: accepted %d of %d", round, got, len(batch))
		}
		for i := 0; i < got; i++ {
			v, ok := q.TryGet()
			if !ok || v != next {
				t.Fatalf("round %d: get %v %v, want %d", round, v, ok, next)
			}
			next++
		}
	}
}

// TestMPSCTryPutBatchConcurrent mixes batch producers with a single
// consumer; every value must arrive exactly once (batches may
// interleave but stay internally ordered).
func TestMPSCTryPutBatchConcurrent(t *testing.T) {
	const producers = 4
	perProducer := 20000
	if testing.Short() {
		perProducer = 2000
	}
	q := NewMPSC[int](64)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sent := 0
			for sent < perProducer {
				end := sent + 13
				if end > perProducer {
					end = perProducer
				}
				batch := make([]int, 0, end-sent)
				for i := sent; i < end; i++ {
					batch = append(batch, p*perProducer+i)
				}
				for len(batch) > 0 {
					n := q.TryPutBatch(batch)
					if n == 0 {
						runtime.Gosched()
					}
					batch = batch[n:]
				}
				sent = end
			}
		}(p)
	}
	seen := make([]bool, producers*perProducer)
	got := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		lastPer := make([]int, producers)
		for i := range lastPer {
			lastPer[i] = -1
		}
		for got < producers*perProducer {
			v, ok := q.TryGet()
			if !ok {
				runtime.Gosched()
				continue
			}
			if seen[v] {
				t.Errorf("duplicate %d", v)
				return
			}
			seen[v] = true
			// Within one producer, values must stay ordered: batches
			// are reserved and published contiguously.
			p, off := v/perProducer, v%perProducer
			if off <= lastPer[p] {
				t.Errorf("producer %d out of order: %d after %d", p, off, lastPer[p])
				return
			}
			lastPer[p] = off
			got++
		}
	}()
	wg.Wait()
	<-done
	if got != producers*perProducer {
		t.Fatalf("received %d of %d", got, producers*perProducer)
	}
}

// BenchmarkMPSCPutSingle / PutBatch measure the handoff the net worker
// amortizes: 32 items pushed one CAS at a time vs one reservation.
func BenchmarkMPSCPutSingle(b *testing.B) {
	q := NewMPSC[int](64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 32; j++ {
			q.TryPut(j)
		}
		for j := 0; j < 32; j++ {
			q.TryGet()
		}
	}
}

func BenchmarkMPSCPutBatch(b *testing.B) {
	q := NewMPSC[int](64)
	batch := make([]int, 32)
	for i := range batch {
		batch[i] = i
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.TryPutBatch(batch)
		for j := 0; j < 32; j++ {
			q.TryGet()
		}
	}
}
