package spsc

import "sync/atomic"

// Buffer is a reusable network buffer from a Pool. The live runtime
// passes pointers to these through the pipeline and reuses the ingress
// buffer for the egress packet (the paper's zero-copy path).
type Buffer struct {
	Data []byte // full capacity backing slice
	Len  int    // valid bytes
	pool *Pool
}

// Bytes returns the valid portion of the buffer.
func (b *Buffer) Bytes() []byte { return b.Data[:b.Len] }

// Release returns the buffer to its pool. Safe to call from any
// goroutine (the free list is multi-producer). Double release is a
// programming error detected by the pool's accounting in tests.
func (b *Buffer) Release() {
	if b.pool != nil {
		b.pool.put(b)
	}
}

// Pool is a statically allocated network buffer pool backed by an
// MPSC free list: workers on any core release buffers, the net worker
// (single consumer) allocates them — mirroring the paper's registered
// memory pool with a multi-producer, single-consumer ring (§4.3.1).
type Pool struct {
	free    *MPSC[*Buffer]
	bufSize int
	// outstanding tracks checked-out buffers for leak diagnostics.
	outstanding atomic.Int64
}

// NewPool allocates count buffers of bufSize bytes each.
func NewPool(count, bufSize int) *Pool {
	if count < 1 {
		count = 1
	}
	if bufSize < 1 {
		bufSize = 1
	}
	p := &Pool{free: NewMPSC[*Buffer](count), bufSize: bufSize}
	// One contiguous arena, sliced per buffer, mimicking the statically
	// registered NIC memory region.
	arena := make([]byte, count*bufSize)
	for i := 0; i < count; i++ {
		b := &Buffer{Data: arena[i*bufSize : (i+1)*bufSize], pool: p}
		p.free.TryPut(b)
	}
	return p
}

// Get allocates a buffer, or nil if the pool is exhausted (the caller
// applies backpressure — the paper drops packets in that case).
// Single consumer (the net worker / ingress path).
func (p *Pool) Get() *Buffer {
	b, ok := p.free.TryGet()
	if !ok {
		return nil
	}
	b.Len = 0
	p.outstanding.Add(1)
	return b
}

func (p *Pool) put(b *Buffer) {
	p.outstanding.Add(-1)
	// The free list has exactly `count` slots, so a returned pool
	// buffer always fits; TryPut can only fail on double release.
	if !p.free.TryPut(b) {
		panic("spsc: buffer pool overflow (double release?)")
	}
}

// BufSize reports the per-buffer capacity.
func (p *Pool) BufSize() int { return p.bufSize }

// Outstanding reports buffers currently checked out.
func (p *Pool) Outstanding() int64 { return p.outstanding.Load() }

// Available reports buffers currently in the free list.
func (p *Pool) Available() int { return p.free.Len() }
