// Package spsc provides the lock-free inter-core communication
// primitives the live Perséphone runtime is built on: a
// single-producer/single-consumer ring with Barrelfish-style lazy head
// synchronization (the paper's §4.3.2 "lightweight RPC" channel), and
// a multi-producer/single-consumer ring backing the shared network
// buffer pool (§4.3.1).
package spsc

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"
)

// pad keeps hot fields on separate cache lines to avoid false sharing
// between the producer and consumer cores.
type pad [64]byte

// Ring is a bounded single-producer/single-consumer queue. Exactly one
// goroutine may call Put/TryPut and exactly one may call Get/TryGet.
//
// Following the paper's design, the producer keeps a local copy of the
// consumer's read position and refreshes it from the shared atomic
// only when its local view says the ring is full, minimizing cache
// coherence traffic on the fast path.
type Ring[T any] struct {
	buf  []T
	mask uint64

	_    pad
	head atomic.Uint64 // next slot to write (owned by producer)
	_    pad
	tail atomic.Uint64 // next slot to read (owned by consumer)
	_    pad

	// cachedTail is the producer's local view of tail.
	cachedTail uint64
	_          pad
	// cachedHead is the consumer's local view of head.
	cachedHead uint64
}

// NewRing creates a ring with the given capacity, rounded up to a
// power of two (minimum 2).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity < 2 {
		capacity = 2
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &Ring[T]{buf: make([]T, size), mask: uint64(size - 1)}
}

// Cap reports the ring's capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// TryPut appends v and reports whether there was room. Producer-only.
func (r *Ring[T]) TryPut(v T) bool {
	head := r.head.Load()
	if head-r.cachedTail >= uint64(len(r.buf)) {
		// Local view says full: refresh from the shared tail (the
		// only coherence miss on this path).
		r.cachedTail = r.tail.Load()
		if head-r.cachedTail >= uint64(len(r.buf)) {
			return false
		}
	}
	r.buf[head&r.mask] = v
	r.head.Store(head + 1)
	return true
}

// Put appends v, spinning (with escalating yields) until room exists.
// Producer-only.
func (r *Ring[T]) Put(v T) {
	for spins := 0; !r.TryPut(v); spins++ {
		backoff(spins)
	}
}

// TryGet removes the oldest element. Consumer-only.
func (r *Ring[T]) TryGet() (T, bool) {
	var zero T
	tail := r.tail.Load()
	if tail == r.cachedHead {
		r.cachedHead = r.head.Load()
		if tail == r.cachedHead {
			return zero, false
		}
	}
	v := r.buf[tail&r.mask]
	r.buf[tail&r.mask] = zero // release references for GC
	r.tail.Store(tail + 1)
	return v, true
}

// Get removes the oldest element, spinning until one exists.
// Consumer-only.
func (r *Ring[T]) Get() T {
	for spins := 0; ; spins++ {
		if v, ok := r.TryGet(); ok {
			return v
		}
		backoff(spins)
	}
}

// Len reports the number of queued elements (approximate under
// concurrency).
func (r *Ring[T]) Len() int {
	return int(r.head.Load() - r.tail.Load())
}

// Empty reports whether the ring appears empty.
func (r *Ring[T]) Empty() bool { return r.Len() == 0 }

// backoff escalates from busy spinning through cooperative yielding to
// brief sleeps; on an oversubscribed box pure spinning would starve
// the peer goroutine (a real Perséphone pins one thread per core and
// never sleeps — see DESIGN.md on this substitution). The Gosched
// window is kept short: every yield forces a full scheduler pass, so a
// long yield storm on a host with fewer cores than goroutines steals
// the very CPU the peer needs to make the awaited progress — parking
// early costs one timer wakeup, churning costs the whole pipeline.
func backoff(spins int) {
	switch {
	case spins < 64:
	case spins < 192:
		runtime.Gosched()
	default:
		time.Sleep(20 * time.Microsecond)
	}
}

// MPSC is a bounded multi-producer/single-consumer queue used for the
// shared buffer free list: every worker releases buffers, the net
// worker allocates them.
type MPSC[T any] struct {
	buf  []slot[T]
	mask uint64
	_    pad
	head atomic.Uint64
	_    pad
	tail atomic.Uint64
}

type slot[T any] struct {
	seq atomic.Uint64
	val T
}

// NewMPSC creates a multi-producer ring with the given capacity,
// rounded up to a power of two (minimum 2).
func NewMPSC[T any](capacity int) *MPSC[T] {
	if capacity < 2 {
		capacity = 2
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	q := &MPSC[T]{buf: make([]slot[T], size), mask: uint64(size - 1)}
	for i := range q.buf {
		q.buf[i].seq.Store(uint64(i))
	}
	return q
}

// Cap reports the ring's capacity.
func (q *MPSC[T]) Cap() int { return len(q.buf) }

// TryPut appends v from any producer and reports whether there was
// room (Vyukov bounded MPMC algorithm, restricted to one consumer).
func (q *MPSC[T]) TryPut(v T) bool {
	for {
		head := q.head.Load()
		s := &q.buf[head&q.mask]
		seq := s.seq.Load()
		switch {
		case seq == head:
			if q.head.CompareAndSwap(head, head+1) {
				s.val = v
				s.seq.Store(head + 1)
				return true
			}
		case seq < head:
			return false // full
		}
		// Another producer won the slot; retry.
	}
}

// TryPutBatch appends a prefix of vs with a single head reservation
// (one CAS for the whole burst instead of one per element) and
// reports how many elements were accepted. Slots free up in
// consumption order, so a free last slot implies the whole range is
// free; the scan walks the candidate length down until that holds.
// Safe for any producer; the net workers use it to hand a burst of
// datagrams to the dispatcher in one ring synchronization.
func (q *MPSC[T]) TryPutBatch(vs []T) int {
	if len(vs) == 0 {
		return 0
	}
	for {
		head := q.head.Load()
		n := len(vs)
		if n > len(q.buf) {
			n = len(q.buf)
		}
		// Shrink the claim until its last slot is writable.
		for n > 0 {
			s := &q.buf[(head+uint64(n)-1)&q.mask]
			seq := s.seq.Load()
			if seq == head+uint64(n)-1 {
				break
			}
			if seq > head+uint64(n)-1 {
				// Another producer already advanced past this head
				// snapshot; retry with a fresh one.
				n = -1
				break
			}
			n--
		}
		if n < 0 {
			continue // stale head snapshot
		}
		if n == 0 {
			return 0 // full
		}
		if !q.head.CompareAndSwap(head, head+uint64(n)) {
			continue // lost the race for these slots
		}
		for i := 0; i < n; i++ {
			s := &q.buf[(head+uint64(i))&q.mask]
			s.val = vs[i]
			s.seq.Store(head + uint64(i) + 1)
		}
		return n
	}
}

// TryGet removes the oldest element. Single consumer only.
func (q *MPSC[T]) TryGet() (T, bool) {
	var zero T
	tail := q.tail.Load()
	s := &q.buf[tail&q.mask]
	seq := s.seq.Load()
	if seq != tail+1 {
		return zero, false
	}
	v := s.val
	s.val = zero
	s.seq.Store(tail + uint64(len(q.buf)))
	q.tail.Store(tail + 1)
	return v, true
}

// Len reports the approximate number of queued elements.
func (q *MPSC[T]) Len() int {
	h, t := q.head.Load(), q.tail.Load()
	if h < t {
		return 0
	}
	return int(h - t)
}

// String describes the ring for debugging.
func (q *MPSC[T]) String() string {
	return fmt.Sprintf("mpsc{cap=%d len=%d}", q.Cap(), q.Len())
}
