package memcache

import (
	"bytes"
	"testing"
)

// FuzzExecute asserts the protocol handler never panics and always
// produces a response on arbitrary request bytes.
func FuzzExecute(f *testing.F) {
	f.Add([]byte("get foo"))
	f.Add([]byte("set k 1 value with spaces"))
	f.Add([]byte("gets a b c"))
	f.Add([]byte("incr n 5"))
	f.Add([]byte("delete x"))
	f.Add([]byte(""))
	f.Add([]byte{0xff, 0x00, 0x41})
	f.Fuzz(func(t *testing.T, req []byte) {
		c := New()
		c.Set("foo", []byte("bar"), 0)
		c.Set("n", []byte("10"), 0)
		resp := Execute(c, req, nil)
		if len(resp) == 0 {
			t.Fatal("empty response")
		}
		if !bytes.HasSuffix(resp, []byte("\r\n")) {
			t.Fatalf("response %q not CRLF-terminated", resp)
		}
	})
}
