package memcache

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestSetGet(t *testing.T) {
	c := New()
	c.Set("k", []byte("v"), 7)
	v, flags, ok := c.Get("k")
	if !ok || string(v) != "v" || flags != 7 {
		t.Fatalf("got %q %d %v", v, flags, ok)
	}
	if _, _, ok := c.Get("missing"); ok {
		t.Fatal("missing key found")
	}
}

func TestValueIsolation(t *testing.T) {
	c := New()
	orig := []byte("abc")
	c.Set("k", orig, 0)
	orig[0] = 'X'
	v, _, _ := c.Get("k")
	if string(v) != "abc" {
		t.Fatal("cache aliased caller slice")
	}
	v[0] = 'Y'
	again, _, _ := c.Get("k")
	if string(again) != "abc" {
		t.Fatal("cache returned aliased slice")
	}
}

func TestDelete(t *testing.T) {
	c := New()
	c.Set("k", []byte("v"), 0)
	if !c.Delete("k") {
		t.Fatal("delete failed")
	}
	if c.Delete("k") {
		t.Fatal("double delete succeeded")
	}
}

func TestIncr(t *testing.T) {
	c := New()
	c.Set("n", []byte("41"), 0)
	v, err := c.Incr("n", 1)
	if err != nil || v != 42 {
		t.Fatalf("incr: %d %v", v, err)
	}
	got, _, _ := c.Get("n")
	if string(got) != "42" {
		t.Fatalf("stored %q", got)
	}
	if _, err := c.Incr("missing", 1); err == nil {
		t.Fatal("incr on missing key succeeded")
	}
	c.Set("s", []byte("abc"), 0)
	if _, err := c.Incr("s", 1); err == nil {
		t.Fatal("incr on non-numeric succeeded")
	}
}

func TestSnapshot(t *testing.T) {
	c := New()
	c.Set("a", []byte("1"), 0)
	c.Set("b", []byte("2"), 0)
	c.Get("a")
	c.Get("nope")
	c.Delete("b")
	st := c.Snapshot()
	if st.Sets != 2 || st.Hits != 1 || st.Misses != 1 || st.Deletes != 1 || st.Items != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g*500+i)%100)
				switch i % 3 {
				case 0:
					c.Set(key, []byte("v"), 0)
				case 1:
					c.Get(key)
				case 2:
					c.Delete(key)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestCacheModelProperty(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
		Val  uint8
	}
	check := func(ops []op) bool {
		c := New()
		model := map[string]string{}
		for _, o := range ops {
			key := fmt.Sprintf("k%d", o.Key%32)
			switch o.Kind % 3 {
			case 0:
				val := fmt.Sprintf("v%d", o.Val)
				c.Set(key, []byte(val), 0)
				model[key] = val
			case 1:
				v, _, ok := c.Get(key)
				want, wantOK := model[key]
				if ok != wantOK || (ok && string(v) != want) {
					return false
				}
			case 2:
				got := c.Delete(key)
				_, existed := model[key]
				if got != existed {
					return false
				}
				delete(model, key)
			}
		}
		return c.Snapshot().Items == len(model)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// --- protocol tests ---

func exec(t *testing.T, c *Cache, req string) string {
	t.Helper()
	return string(Execute(c, []byte(req), nil))
}

func TestProtocolSetGet(t *testing.T) {
	c := New()
	if got := exec(t, c, "set foo 3 hello world"); got != "STORED\r\n" {
		t.Fatalf("set: %q", got)
	}
	got := exec(t, c, "get foo")
	if !strings.HasPrefix(got, "VALUE foo 3 11\r\nhello world\r\n") || !strings.HasSuffix(got, "END\r\n") {
		t.Fatalf("get: %q", got)
	}
	if got := exec(t, c, "get nope"); got != "END\r\n" {
		t.Fatalf("miss: %q", got)
	}
}

func TestProtocolGets(t *testing.T) {
	c := New()
	exec(t, c, "set a 0 1")
	exec(t, c, "set b 0 2")
	got := exec(t, c, "gets a b missing")
	if !strings.Contains(got, "VALUE a 0 1") || !strings.Contains(got, "VALUE b 0 1") {
		t.Fatalf("gets: %q", got)
	}
	if strings.Contains(got, "missing") {
		t.Fatalf("gets returned missing key: %q", got)
	}
}

func TestProtocolDeleteIncr(t *testing.T) {
	c := New()
	exec(t, c, "set n 0 9")
	if got := exec(t, c, "incr n 3"); got != "12\r\n" {
		t.Fatalf("incr: %q", got)
	}
	if got := exec(t, c, "delete n"); got != "DELETED\r\n" {
		t.Fatalf("delete: %q", got)
	}
	if got := exec(t, c, "delete n"); got != "NOT_FOUND\r\n" {
		t.Fatalf("redelete: %q", got)
	}
	if got := exec(t, c, "incr n 1"); got != "NOT_FOUND\r\n" {
		t.Fatalf("incr missing: %q", got)
	}
}

func TestProtocolErrors(t *testing.T) {
	c := New()
	cases := []string{
		"",
		"bogus x",
		"get",
		"get a b",
		"gets",
		"set onlykey",
		"set k notanumber v",
		"delete",
		"incr k",
		"incr k notanumber",
	}
	for _, req := range cases {
		got := exec(t, c, req)
		if !strings.Contains(got, "ERROR") && !strings.Contains(got, "NOT_FOUND") {
			t.Errorf("%q -> %q (no error)", req, got)
		}
	}
}

func TestProtocolCaseInsensitive(t *testing.T) {
	c := New()
	exec(t, c, "SET k 0 v")
	if got := exec(t, c, "GeT k"); !strings.Contains(got, "VALUE k") {
		t.Fatalf("mixed case get: %q", got)
	}
}

func TestCommandNamesAlign(t *testing.T) {
	names := CommandNames()
	if len(names) != NumCommands {
		t.Fatalf("%d names for %d commands", len(names), NumCommands)
	}
	if names[CmdGet] != "GET" || names[CmdGets] != "GETS" {
		t.Fatalf("names %v", names)
	}
}

func BenchmarkCacheGet(b *testing.B) {
	c := New()
	for i := 0; i < 10000; i++ {
		c.Set(fmt.Sprintf("key%05d", i), make([]byte, 64), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get("key05000")
	}
}

func BenchmarkProtocolGet(b *testing.B) {
	c := New()
	c.Set("foo", []byte("barbarbar"), 0)
	req := []byte("get foo")
	resp := make([]byte, 0, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp = Execute(c, req, resp[:0])
	}
}
