package memcache

import (
	"bytes"
	"fmt"
	"strconv"
)

// Command identifiers, in ascending typical service cost — the order a
// DARC classifier should learn. GETS (multi-key get) is the expensive
// class: Facebook's USR-style workloads batch many keys per request.
const (
	CmdGet = iota
	CmdSet
	CmdDelete
	CmdIncr
	CmdGets // multi-key get
	NumCommands
)

// CommandNames lists the text-protocol verbs, index-aligned with the
// Cmd constants (handy for building a classify.Command).
func CommandNames() []string {
	return []string{"GET", "SET", "DELETE", "INCR", "GETS"}
}

// Execute parses one text-protocol request and runs it against the
// cache, appending the response to resp and returning it.
//
// Supported grammar (CRLF or LF tolerated, values inline):
//
//	get <key>
//	gets <key> <key> ...
//	set <key> <flags> <value...>
//	delete <key>
//	incr <key> <delta>
func Execute(c *Cache, req []byte, resp []byte) []byte {
	fields := bytes.Fields(req)
	if len(fields) == 0 {
		return append(resp, "ERROR empty request\r\n"...)
	}
	cmd := string(bytes.ToUpper(fields[0]))
	switch cmd {
	case "GET":
		if len(fields) != 2 {
			return append(resp, "CLIENT_ERROR get needs one key\r\n"...)
		}
		v, flags, ok := c.Get(string(fields[1]))
		if !ok {
			return append(resp, "END\r\n"...)
		}
		resp = appendValue(resp, fields[1], flags, v)
		return append(resp, "END\r\n"...)

	case "GETS":
		if len(fields) < 2 {
			return append(resp, "CLIENT_ERROR gets needs keys\r\n"...)
		}
		for _, key := range fields[1:] {
			if v, flags, ok := c.Get(string(key)); ok {
				resp = appendValue(resp, key, flags, v)
			}
		}
		return append(resp, "END\r\n"...)

	case "SET":
		if len(fields) < 4 {
			return append(resp, "CLIENT_ERROR set <key> <flags> <value>\r\n"...)
		}
		flags64, err := strconv.ParseUint(string(fields[2]), 10, 32)
		if err != nil {
			return append(resp, "CLIENT_ERROR bad flags\r\n"...)
		}
		value := bytes.Join(fields[3:], []byte(" "))
		c.Set(string(fields[1]), value, uint32(flags64))
		return append(resp, "STORED\r\n"...)

	case "DELETE":
		if len(fields) != 2 {
			return append(resp, "CLIENT_ERROR delete needs one key\r\n"...)
		}
		if c.Delete(string(fields[1])) {
			return append(resp, "DELETED\r\n"...)
		}
		return append(resp, "NOT_FOUND\r\n"...)

	case "INCR":
		if len(fields) != 3 {
			return append(resp, "CLIENT_ERROR incr <key> <delta>\r\n"...)
		}
		delta, err := strconv.ParseUint(string(fields[2]), 10, 64)
		if err != nil {
			return append(resp, "CLIENT_ERROR bad delta\r\n"...)
		}
		v, err := c.Incr(string(fields[1]), delta)
		if err != nil {
			return append(resp, "NOT_FOUND\r\n"...)
		}
		resp = strconv.AppendUint(resp, v, 10)
		return append(resp, "\r\n"...)

	default:
		return append(resp, "ERROR unknown command\r\n"...)
	}
}

func appendValue(resp, key []byte, flags uint32, v []byte) []byte {
	resp = append(resp, fmt.Sprintf("VALUE %s %d %d\r\n", key, flags, len(v))...)
	resp = append(resp, v...)
	return append(resp, "\r\n"...)
}
