// Package memcache is a from-scratch, sharded in-memory cache speaking
// a memcached-style text protocol — the protocol family the paper
// cites as carrying request types in its header (§1: "Memcached
// request types are part of the protocol's header"). It provides the
// live runtime with a realistic multi-command service whose operations
// have distinct costs (GET ≪ SET < multi-GET), and exercises the
// Command classifier.
package memcache

import (
	"bytes"
	"fmt"
	"strconv"
	"sync"
)

// shardCount spreads lock contention; power of two for cheap masking.
const shardCount = 16

type entry struct {
	value []byte
	flags uint32
	// cas is a monotonically increasing compare-and-swap token.
	cas uint64
}

type shard struct {
	mu    sync.RWMutex
	items map[string]*entry
}

// Cache is a sharded key-value cache.
type Cache struct {
	shards  [shardCount]shard
	casNext sync.Mutex
	cas     uint64

	// stats
	hits, misses, sets, deletes uint64
	statsMu                     sync.Mutex
}

// New creates an empty cache.
func New() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].items = make(map[string]*entry)
	}
	return c
}

func (c *Cache) shardFor(key string) *shard {
	// FNV-1a over the key.
	var h uint32 = 2166136261
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h&(shardCount-1)]
}

func (c *Cache) nextCAS() uint64 {
	c.casNext.Lock()
	c.cas++
	v := c.cas
	c.casNext.Unlock()
	return v
}

// Set stores a value unconditionally.
func (c *Cache) Set(key string, value []byte, flags uint32) {
	s := c.shardFor(key)
	s.mu.Lock()
	s.items[key] = &entry{value: append([]byte(nil), value...), flags: flags, cas: c.nextCAS()}
	s.mu.Unlock()
	c.statsMu.Lock()
	c.sets++
	c.statsMu.Unlock()
}

// Get returns a copy of the value, its flags, and whether it existed.
func (c *Cache) Get(key string) ([]byte, uint32, bool) {
	s := c.shardFor(key)
	s.mu.RLock()
	e, ok := s.items[key]
	var v []byte
	var flags uint32
	if ok {
		v = append([]byte(nil), e.value...)
		flags = e.flags
	}
	s.mu.RUnlock()
	c.statsMu.Lock()
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	c.statsMu.Unlock()
	return v, flags, ok
}

// Delete removes a key, reporting whether it existed.
func (c *Cache) Delete(key string) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	_, ok := s.items[key]
	if ok {
		delete(s.items, key)
	}
	s.mu.Unlock()
	if ok {
		c.statsMu.Lock()
		c.deletes++
		c.statsMu.Unlock()
	}
	return ok
}

// Incr adds delta to a decimal-numeric value, returning the new value.
// Missing keys or non-numeric values fail.
func (c *Cache) Incr(key string, delta uint64) (uint64, error) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.items[key]
	if !ok {
		return 0, fmt.Errorf("memcache: NOT_FOUND")
	}
	cur, err := strconv.ParseUint(string(bytes.TrimSpace(e.value)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("memcache: cannot increment non-numeric value")
	}
	cur += delta
	e.value = []byte(strconv.FormatUint(cur, 10))
	e.cas = c.nextCAS()
	return cur, nil
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits, Misses, Sets, Deletes uint64
	Items                       int
}

// Snapshot returns current statistics.
func (c *Cache) Snapshot() Stats {
	c.statsMu.Lock()
	st := Stats{Hits: c.hits, Misses: c.misses, Sets: c.sets, Deletes: c.deletes}
	c.statsMu.Unlock()
	for i := range c.shards {
		c.shards[i].mu.RLock()
		st.Items += len(c.shards[i].items)
		c.shards[i].mu.RUnlock()
	}
	return st
}
