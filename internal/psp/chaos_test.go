package psp_test

// End-to-end chaos tests: the live runtime under a seeded fault
// profile (ISSUE: 10% ingress drop + one stalled worker), driven over
// real UDP by the retrying open-loop client. They assert the system
// neither deadlocks nor loses requests — every submitted request ends
// as a completion, an explicit drop, or an explicit timeout — and that
// DARC's short-request tail survives the faults better than c-FCFS
// (the paper's §5 shape claim).

import (
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/conformance"
	"repro/internal/darc"
	"repro/internal/faults"
	"repro/internal/loadgen"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/psp"
	"repro/internal/spin"
	"repro/internal/workload"
)

// chaosProfile is the ISSUE's scenario: 10% packet drop plus one
// stalled worker.
func chaosProfile() *faults.Profile {
	return &faults.Profile{
		Seed:          7,
		DropRate:      0.10,
		StallWorker:   2,
		StallDuration: 200 * time.Microsecond,
	}
}

// runChaos drives one server under the chaos profile and returns the
// client result plus server stats. Service times are slept, not spun:
// CI machines may expose a single CPU, and sleeping workers still
// overlap there, so the DARC-vs-FCFS comparison measures scheduling
// rather than host-core contention. A watchdog converts a hang into a
// test failure instead of a suite timeout.
func runChaos(t *testing.T, mode psp.Mode) (*loadgen.Result, psp.Stats) {
	t.Helper()

	const shortSvc, longSvc = 500 * time.Microsecond, 20 * time.Millisecond
	dcfg := darc.DefaultConfig(3)
	dcfg.MinWindowSamples = 64
	srv, err := psp.NewServer(psp.Config{
		Workers:    3,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler: psp.HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			if typ == 0 {
				time.Sleep(shortSvc)
			} else {
				time.Sleep(longSvc)
			}
			return copy(r, p), proto.StatusOK
		}),
		Mode:   mode,
		DARC:   dcfg,
		Faults: chaosProfile(),
	})
	if err != nil {
		t.Fatal(err)
	}
	u, err := psp.ListenUDP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()

	// Warm the profiler with sequential calls so DARC has installed a
	// reservation before measured load arrives; run the same warmup in
	// c-FCFS mode so both recorders hold identical extra samples.
	for i := 0; i < 80; i++ {
		typ := byte(0)
		if i%8 == 7 {
			typ = 1
		}
		if _, err := srv.Call([]byte{typ, 0, byte(i)}); err != nil {
			t.Fatalf("warmup call %d: %v", i, err)
		}
	}
	if mode == psp.ModeDARC && srv.Controller().Reservation() == nil {
		t.Fatal("no reservation after warmup")
	}

	duration := 600 * time.Millisecond
	if testing.Short() {
		duration = 250 * time.Millisecond
	}
	type outcome struct {
		res *loadgen.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := loadgen.RunUDP(u.Addr().String(), loadgen.Config{
			Mix:            workload.TwoType("short", shortSvc, 0.9, "long", longSvc),
			Rate:           500,
			Duration:       duration,
			Seed:           21,
			Timeout:        3 * time.Second,
			RequestTimeout: 150 * time.Millisecond,
			MaxRetries:     5,
			RetryBackoff:   2 * time.Millisecond,
		})
		done <- outcome{res, err}
	}()
	var out outcome
	select {
	case out = <-done:
	case <-time.After(90 * time.Second):
		t.Fatalf("%v chaos run deadlocked", mode)
	}
	if out.err != nil {
		t.Fatal(out.err)
	}
	// Stop before snapshotting so the trace rings are fully drained and
	// the span-conservation invariant below is exact.
	u.Close()
	st := srv.StatsSnapshot()
	// Lifecycle-span conservation: every dispatched request either
	// produced a span (drained or lost to a full ring) or died with a
	// crashing worker. This must hold under the full fault profile.
	if st.TraceSpans+st.TraceLost+st.WorkerRestarts != st.Dispatched {
		t.Fatalf("span conservation: spans %d + lost %d + crashes %d != dispatched %d",
			st.TraceSpans, st.TraceLost, st.WorkerRestarts, st.Dispatched)
	}
	if st.TraceSpans == 0 {
		t.Fatal("tracing on by default recorded no spans")
	}
	return out.res, st
}

func TestChaosNoLostCompletions(t *testing.T) {
	for _, mode := range []psp.Mode{psp.ModeDARC, psp.ModeCFCFS} {
		t.Run(mode.String(), func(t *testing.T) {
			res, st := runChaos(t, mode)
			t.Logf("%v: %v", mode, res)
			if res.Sent == 0 {
				t.Fatal("nothing sent")
			}
			// Zero unaccounted requests: completions + drops + timeouts
			// must cover every submission.
			if un := res.Unaccounted(); un != 0 {
				t.Fatalf("%d requests unaccounted for: %v", un, res)
			}
			// Retries must recover nearly everything 10% drop took: the
			// odds of six consecutive drops are ~1e-6.
			if res.Received < res.Sent*9/10 {
				t.Fatalf("received %d of %d despite retries", res.Received, res.Sent)
			}
			if res.Retries == 0 {
				t.Fatal("no retries under 10% drop")
			}
			if st.RetriesSeen == 0 {
				t.Fatal("server observed no retransmissions")
			}
			if st.FaultsInjected == 0 {
				t.Fatal("no faults injected")
			}
		})
	}
}

// TestChaosDARCBeatsCFCFSShortTail asserts the §5 shape claim survives
// the fault profile: the short type's tail sojourn under DARC stays
// below c-FCFS's. Sojourn (server-side) isolates the scheduler from
// client retransmission delay, which the drop fault inflicts on both
// modes equally.
//
// The comparison borrows the conformance comparator's band discipline
// instead of demanding a strict inequality on a noisy quantile: a
// clean directional win on any attempt settles the claim immediately,
// and otherwise DARC must at least tie within a seeded tolerance band
// — only a tail sitting above c-FCFS's beyond the band on every
// attempt is a regression. Under -short (the race job) the run yields
// ~10^2 short completions, where a p99 is the sample maximum; the
// check drops to the p50 there rather than skipping outright.
func TestChaosDARCBeatsCFCFSShortTail(t *testing.T) {
	quantile, band := "p99", conformance.Band{Rel: 0.25, Abs: 3 * time.Millisecond}
	pick := func(s metrics.Summary) time.Duration { return s.P99 }
	if testing.Short() {
		// The short run cannot resolve a p99; the median still orders
		// the two policies (c-FCFS's short requests queue behind 20ms
		// longs at every depth, not just the tail), with a wider band
		// for the race detector's scheduling jitter.
		quantile, band = "p50", conformance.Band{Rel: 0.50, Abs: 5 * time.Millisecond}
		pick = func(s metrics.Summary) time.Duration { return s.P50 }
	}
	const attempts = 3
	var darcQ, fcfsQ time.Duration
	for a := 1; a <= attempts; a++ {
		_, darcStats := runChaos(t, psp.ModeDARC)
		_, fcfsStats := runChaos(t, psp.ModeCFCFS)
		if darcStats.Summaries[0].Completed == 0 || fcfsStats.Summaries[0].Completed == 0 {
			t.Fatal("no short completions recorded")
		}
		darcQ = pick(darcStats.Summaries[0])
		fcfsQ = pick(fcfsStats.Summaries[0])
		t.Logf("attempt %d short %s: DARC %v vs c-FCFS %v", a, quantile, darcQ, fcfsQ)
		if darcQ <= fcfsQ {
			return
		}
	}
	// No directional win: a statistical tie (DARC within the band of
	// c-FCFS) is not evidence of regression, anything beyond it is.
	if !band.Allows(fcfsQ, darcQ) {
		t.Fatalf("short %s under DARC (%v) above c-FCFS (%v) beyond band (rel %.2f, abs %v) in %d attempts",
			quantile, darcQ, fcfsQ, band.Rel, band.Abs, attempts)
	}
}

// TestChaosWorkerCrashRespawn exercises crash-then-respawn: crashed
// workers answer their in-flight request as dropped, stay down for the
// respawn delay, and come back; nothing hangs and every call returns.
func TestChaosWorkerCrashRespawn(t *testing.T) {
	srv, err := psp.NewServer(psp.Config{
		Workers:    2,
		Classifier: classify.Field{Offset: 0, Types: 1},
		Handler: psp.HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			return copy(r, p), proto.StatusOK
		}),
		DARC: func() darc.Config {
			c := darc.DefaultConfig(2)
			c.MinWindowSamples = 64
			return c
		}(),
		Faults: &faults.Profile{Seed: 11, CrashRate: 0.05, RespawnDelay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()

	const n = 400
	ok, droppedCount := 0, 0
	for i := 0; i < n; i++ {
		resp, err := srv.Call([]byte{0, 0, byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		switch resp.Status {
		case proto.StatusOK:
			ok++
		case proto.StatusDropped:
			droppedCount++
		default:
			t.Fatalf("status %v", resp.Status)
		}
	}
	if ok+droppedCount != n {
		t.Fatalf("outcomes %d, want %d", ok+droppedCount, n)
	}
	st := srv.StatsSnapshot()
	if st.WorkerRestarts == 0 {
		t.Fatal("no worker restarts at 5% crash rate over 400 requests")
	}
	if got := srv.Injector().Counts().Crashes; got != st.WorkerRestarts {
		t.Fatalf("restart counter %d != injected crashes %d", st.WorkerRestarts, got)
	}
	if droppedCount == 0 {
		t.Fatal("crashes produced no dropped responses")
	}
	// The pipeline still serves after every crash.
	resp, err := srv.Call([]byte{0, 0, 0xFF})
	if err != nil || (resp.Status != proto.StatusOK && resp.Status != proto.StatusDropped) {
		t.Fatalf("post-chaos call: %v %v", resp, err)
	}
}

// TestChaosReservationDelay checks that a laggy control plane delays
// but does not prevent DARC reservation installation.
func TestChaosReservationDelay(t *testing.T) {
	spin.Calibrate(10 * time.Millisecond)
	srv, err := psp.NewServer(psp.Config{
		Workers:    2,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler: psp.HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			spin.For(10 * time.Microsecond)
			return copy(r, p), proto.StatusOK
		}),
		DARC: func() darc.Config {
			c := darc.DefaultConfig(2)
			c.MinWindowSamples = 64
			return c
		}(),
		Faults: &faults.Profile{Seed: 3, ReservationDelay: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()

	deadline := time.Now().Add(5 * time.Second)
	payload := []byte{0, 0, 1}
	for srv.Controller().Reservation() == nil {
		if time.Now().After(deadline) {
			t.Fatal("reservation never installed under 20ms delay")
		}
		if _, err := srv.Call(payload); err != nil {
			t.Fatal(err)
		}
		payload[0] ^= 1 // alternate the two types
	}
	if srv.StatsSnapshot().Updates == 0 {
		t.Fatal("no reservation updates counted")
	}
}
