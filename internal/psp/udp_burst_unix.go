//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package psp

import (
	"net"
	"syscall"
)

// readBurst drains up to cap(sh.bufs) datagrams from the shard socket
// in one netpoller round: the raw-conn read callback blocks (via the
// runtime poller) until the socket is readable, then issues recvfrom
// calls until the burst is full or the socket runs dry. The listener
// is in non-blocking mode (the Go runtime arranges this), so an empty
// socket answers EAGAIN instead of blocking the thread — one poller
// arm/park cycle is amortized over the whole burst, instead of paid
// per datagram as with ReadFromUDP.
//
// When the buffer pool is exhausted it shed-reads exactly one
// datagram into scratch (counted in rxSheds) so backpressure drops
// load without wedging the socket, and returns so the net worker can
// yield to the workers holding the buffers.
func (sh *udpShard) readBurst() (int, error) {
	n := 0
	var sysErr error
	err := sh.raw.Read(func(fd uintptr) bool {
		for n < len(sh.bufs) {
			b := sh.pool.Get()
			if b == nil {
				if n > 0 {
					return true // deliver what we have
				}
				_, _, e := syscall.Recvfrom(int(fd), sh.scratch, 0)
				if e == syscall.EAGAIN || e == syscall.EWOULDBLOCK {
					return false // park until readable
				}
				if e != nil {
					sysErr = e
					return true
				}
				sh.rxSheds.Add(1)
				return true
			}
			m, sa, e := syscall.Recvfrom(int(fd), b.Data, 0)
			if e == syscall.EAGAIN || e == syscall.EWOULDBLOCK {
				b.Release()
				if n > 0 {
					return true // burst complete: socket ran dry
				}
				return false // park until readable
			}
			if e != nil {
				b.Release()
				sysErr = e
				return true
			}
			b.Len = m
			sh.bufs[n] = b
			sh.addrs[n] = sh.udpAddrOf(sa)
			n++
		}
		return true
	})
	if err != nil {
		return n, err // socket closed
	}
	return n, sysErr
}

// udpAddrOf converts a recvfrom source address. The common case — a
// stream of datagrams from one client — hits the shard's address
// cache; the returned *net.UDPAddr is immutable (TX frames hold it
// asynchronously), so a changed source allocates a fresh one instead
// of mutating the cached value.
func (sh *udpShard) udpAddrOf(sa syscall.Sockaddr) *net.UDPAddr {
	switch sa := sa.(type) {
	case *syscall.SockaddrInet4:
		if sh.lastAddr != nil && sh.lastIP4 == sa.Addr && sh.lastPort == sa.Port {
			return sh.lastAddr
		}
		a := &net.UDPAddr{IP: append(net.IP(nil), sa.Addr[:]...), Port: sa.Port}
		sh.lastIP4, sh.lastPort, sh.lastAddr = sa.Addr, sa.Port, a
		return a
	case *syscall.SockaddrInet6:
		return &net.UDPAddr{IP: append(net.IP(nil), sa.Addr[:]...), Port: sa.Port}
	}
	return nil
}
