package psp

// FuzzTCPFrameDecode hammers the stream framing decoder shared by the
// TCP client, the frontend's TCP receiver, and (structurally) the
// server's read loop: FrameScanner must emit the same frames whether a
// stream arrives whole or split at arbitrary chunk boundaries, must
// reject out-of-range length prefixes identically in both deliveries,
// and must never panic, over-read, or mis-slice — and the proto
// header/trailer decoders must survive whatever frames it emits.
//
// Seed corpus: testdata/fuzz/FuzzTCPFrameDecode plus the f.Add cases
// below (valid single frame, back-to-back interleaved frames, a frame
// with timing+correlation trailers, truncated tails, an oversized
// prefix, and raw garbage).

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/proto"
)

// scanAll feeds data to a fresh FrameScanner in chunks cut by a
// pseudo-random walk seeded with splitSeed (state 0 delivers the whole
// buffer at once) and returns the emitted frames and the scan error.
func scanAll(data []byte, splitSeed uint64) (frames [][]byte, err error) {
	var sc FrameScanner
	emit := func(frame []byte) error {
		frames = append(frames, append([]byte(nil), frame...))
		return nil
	}
	if splitSeed == 0 {
		return frames, sc.Push(data, emit)
	}
	state := splitSeed
	rest := data
	for len(rest) > 0 {
		state = state*6364136223846793005 + 1442695040888963407
		n := 1 + int(state%uint64(len(rest))) // always makes progress
		if err := sc.Push(rest[:n], emit); err != nil {
			return frames, err
		}
		rest = rest[n:]
	}
	return frames, nil
}

func FuzzTCPFrameDecode(f *testing.F) {
	// A valid request frame, two back-to-back frames, and a response
	// frame carrying both trailers.
	one := appendRequestFrame(nil, 7, 0, typedPayload(0, "seed"))
	two := appendRequestFrame(append([]byte(nil), one...), 8, 1, typedPayload(1, "pair"))
	resp := proto.AppendResponse(make([]byte, tcpLenPrefixSize), proto.Header{
		Status: proto.StatusOK, TypeID: 1, RequestID: 9,
	}, []byte("payload"), proto.Timing{Queue: 1000, Service: 2000})
	resp = proto.AppendCorrelation(resp, proto.Correlation{QueryID: 3, Shard: 2, Attempt: 1})
	binary.LittleEndian.PutUint32(resp[:tcpLenPrefixSize], uint32(len(resp)-tcpLenPrefixSize))

	f.Add(one, uint64(0))
	f.Add(two, uint64(3))
	f.Add(resp, uint64(5))
	f.Add(one[:len(one)-3], uint64(1)) // truncated body
	f.Add(one[:2], uint64(2))          // truncated prefix
	// Oversized length prefix: poisons the stream.
	over := make([]byte, 8)
	binary.LittleEndian.PutUint32(over, maxTCPFrame+1)
	f.Add(over, uint64(4))
	f.Add([]byte("\x00\x00\x00\x00garbage"), uint64(6))
	f.Add([]byte{}, uint64(7))

	f.Fuzz(func(t *testing.T, data []byte, splitSeed uint64) {
		if len(data) > 1<<20 {
			return // keep per-case work bounded
		}
		refFrames, refErr := scanAll(data, 0)
		gotFrames, gotErr := scanAll(data, splitSeed|1)

		// Framing is chunking-independent: same frames, same verdict.
		if (refErr != nil) != (gotErr != nil) {
			t.Fatalf("error disagreement: whole=%v split=%v", refErr, gotErr)
		}
		if len(refFrames) != len(gotFrames) {
			t.Fatalf("frame count disagreement: whole=%d split=%d", len(refFrames), len(gotFrames))
		}
		consumed := 0
		for i := range refFrames {
			if !bytes.Equal(refFrames[i], gotFrames[i]) {
				t.Fatalf("frame %d differs between whole and split delivery", i)
			}
			if len(refFrames[i]) < proto.HeaderSize || len(refFrames[i]) > maxTCPFrame {
				t.Fatalf("emitted frame %d has out-of-range length %d", i, len(refFrames[i]))
			}
			// Every emitted frame is the exact wire slice after its
			// 4-byte prefix: no resynchronization gaps, no over-read.
			start := consumed + tcpLenPrefixSize
			if start+len(refFrames[i]) > len(data) || !bytes.Equal(refFrames[i], data[start:start+len(refFrames[i])]) {
				t.Fatalf("frame %d is not the contiguous wire slice at offset %d", i, start)
			}
			consumed = start + len(refFrames[i])
		}

		// The decoders downstream of the scanner must hold up on
		// anything it emits.
		for _, frame := range refFrames {
			hdr, payload, err := proto.DecodeHeader(frame)
			if err != nil {
				continue
			}
			if len(payload) > len(frame) {
				t.Fatalf("payload longer than its frame")
			}
			proto.DecodeTiming(frame, hdr)
			proto.DecodeCorrelation(frame, hdr)
		}
	})
}
