package psp

// Shed-path battery for the pipelined TCP datapath: starving the
// per-shard ingress buffer pool must shed the excess frames with an
// immediate StatusDropped (never a silent drop), the connection must
// stay usable, and every frame sent is still answered exactly once.
// With a one-slot TX ring the shed replies also exercise the inline
// write fallback. Companion to the UDP pool-exhaustion test in
// udp_shard_test.go.

import (
	"bufio"
	"net"
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/trace"
)

// TestTCPPoolExhaustionSheds floods one pipelined connection against a
// 2-buffer pool whose only two admitted requests are parked on a
// blocked handler: every further frame must be shed with StatusDropped
// (counted in RxSheds, not RxDrops), and once the handler unblocks the
// admitted requests still complete — ok + dropped replies account for
// every frame sent.
func TestTCPPoolExhaustionSheds(t *testing.T) {
	block := make(chan struct{})
	ts := newTCPServerOpts(t, TCPOptions{Shards: 1, Burst: 4, PoolSize: 2, TXRing: 1},
		HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			<-block
			return copy(r, p), proto.StatusOK
		}))
	conn, err := net.Dial("tcp", ts.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const n = 64
	var out []byte
	for i := 0; i < n; i++ {
		out = appendRequestFrame(out, uint64(i+1), 0, typedPayload(0, "flood"))
	}
	if _, err := conn.Write(out); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for ts.RxSheds() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no sheds after %d frames against a 2-buffer pool (rx %d, drops %d)",
				n, ts.Received(), ts.RxDrops())
		}
		time.Sleep(time.Millisecond)
	}
	if ts.RxDrops() != 0 {
		t.Fatalf("well-formed shed frames counted as drops: %d", ts.RxDrops())
	}
	// Unblock the parked workers; the admitted requests must complete
	// and every one of the n frames must have exactly one reply.
	close(block)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	rd := bufio.NewReaderSize(conn, 1<<16)
	ok, dropped := 0, 0
	for i := 0; i < n; i++ {
		frame, err := readResponseFrame(t, rd)
		if err != nil {
			t.Fatalf("reply %d/%d: %v (ok %d, dropped %d)", i+1, n, err, ok, dropped)
		}
		hdr, _, derr := proto.DecodeHeader(frame)
		if derr != nil || hdr.Kind != proto.KindResponse {
			t.Fatalf("bad response frame: %v", derr)
		}
		switch hdr.Status {
		case proto.StatusOK:
			ok++
		case proto.StatusDropped:
			dropped++
		default:
			t.Fatalf("unexpected status %v for request %d", hdr.Status, hdr.RequestID)
		}
	}
	if ok == 0 || dropped == 0 || ok+dropped != n {
		t.Fatalf("replies ok=%d dropped=%d, want both non-zero summing to %d", ok, dropped, n)
	}
	if got := ts.RxSheds(); got != uint64(dropped) {
		t.Fatalf("RxSheds %d != StatusDropped replies %d", got, dropped)
	}
}

// TestSetTraceSinkLateInstall pins the SetTraceSink contract: a sink
// installed after construction (and after traffic already drained to
// the histograms alone) observes every span flushed from then on.
func TestSetTraceSinkLateInstall(t *testing.T) {
	srv := newTracedServer(t, 2, 0, nil)
	defer srv.Stop()
	if _, err := srv.Call(typedPayload(0, "pre-sink")); err != nil {
		t.Fatal(err)
	}
	srv.FlushTrace() // drained without a sink: histograms only
	var spans []trace.Span
	srv.SetTraceSink(func(sp trace.Span) { spans = append(spans, sp) })
	const n = 10
	for i := 0; i < n; i++ {
		if _, err := srv.Call(typedPayload(i%2, "post-sink")); err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.FlushTrace(); got != n {
		t.Fatalf("flushed %d spans after sink install, want %d", got, n)
	}
	if len(spans) != n {
		t.Fatalf("sink saw %d spans, want %d", len(spans), n)
	}
	for _, sp := range spans {
		if sp.Type != 0 && sp.Type != 1 {
			t.Fatalf("span with unexpected type %d", sp.Type)
		}
	}
}
