package psp

// Regression battery for TCPClient's failure paths: the per-call
// timeout must sweep its pending entry, and a read loop that exits
// first (server hangup) must fail every in-flight call instead of
// leaking blocked goroutines and map entries.

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/proto"
)

func pendingCount(c *TCPClient) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// blackholeListener accepts connections and reads (discarding
// everything) without ever responding.
func blackholeListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, conn) //nolint:errcheck
		}
	}()
	return ln
}

// TestTCPClientCallTimeout pins the timeout path: Call returns
// ErrCallTimeout after roughly Timeout, and the pending entry is swept
// so abandoned calls cannot leak.
func TestTCPClientCallTimeout(t *testing.T) {
	ln := blackholeListener(t)
	cli, err := DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.Timeout = 50 * time.Millisecond

	start := time.Now()
	_, err = cli.Call(typedPayload(0, "void"))
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("err %v, want ErrCallTimeout", err)
	}
	if e := time.Since(start); e < 40*time.Millisecond || e > 2*time.Second {
		t.Fatalf("timed out after %v, want ~50ms", e)
	}
	if n := pendingCount(cli); n != 0 {
		t.Fatalf("%d pending entries leaked after timeout", n)
	}
}

// TestTCPClientReadLoopExitFailsPending pins the hangup path: when the
// server closes the connection with calls in flight, every caller gets
// ErrClientClosed (promptly, without a timeout configured) and the
// pending table is left empty.
func TestTCPClientReadLoopExitFailsPending(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- conn
	}()

	cli, err := DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const calls = 8
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		go func(i int) {
			_, err := cli.Call(typedPayload(0, "doomed"))
			errs <- err
		}(i)
	}
	// Let the calls register and hit the wire, then hang up on them.
	for deadline := time.Now().Add(5 * time.Second); pendingCount(cli) < calls; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d calls registered", pendingCount(cli), calls)
		}
		time.Sleep(time.Millisecond)
	}
	(<-accepted).Close()

	for i := 0; i < calls; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrClientClosed) {
				t.Fatalf("call %d: err %v, want ErrClientClosed", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("call %d still blocked after server hangup", i)
		}
	}
	if n := pendingCount(cli); n != 0 {
		t.Fatalf("%d pending entries leaked after hangup", n)
	}
	if _, err := cli.Call(typedPayload(0, "late")); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("call on dead client: %v, want ErrClientClosed", err)
	}
}

// TestTCPClientLateResponseDiscarded lets a response arrive after its
// call timed out: the read loop must discard it silently and later
// calls must keep matching their own IDs.
func TestTCPClientLateResponseDiscarded(t *testing.T) {
	ts := newTCPServerOpts(t, TCPOptions{}, HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
		if typ == 1 {
			time.Sleep(150 * time.Millisecond) // outlives the call timeout
		}
		return copy(r, p), proto.StatusOK
	}))
	cli, err := DialTCP(ts.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	cli.Timeout = 30 * time.Millisecond
	if _, err := cli.Call(typedPayload(1, "slow")); !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("slow call: %v, want ErrCallTimeout", err)
	}
	cli.Timeout = 5 * time.Second
	resp, err := cli.Call(typedPayload(0, "fast"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Payload[2:]) != "fast" {
		t.Fatalf("mismatched payload %q after a discarded late response", resp.Payload)
	}
	// The slow response eventually lands on a swept ID; give it time to
	// prove it neither crashes the read loop nor repopulates the table.
	time.Sleep(200 * time.Millisecond)
	if n := pendingCount(cli); n != 0 {
		t.Fatalf("%d pending entries after late response", n)
	}
	if _, err := cli.Call(typedPayload(0, "after")); err != nil {
		t.Fatalf("client broken after late response: %v", err)
	}
}
