package psp_test

// Tests for the non-DARC live dispatch modes added for the conformance
// harness: d-FCFS (seeded per-worker steering, no work sharing) and
// DARC-static (the paper's §5.3 manual core reservation ablation).

import (
	"encoding/binary"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/proto"
	"repro/internal/psp"
	"repro/internal/trace"
)

func typedPayload(typ int) []byte {
	p := make([]byte, 8)
	binary.LittleEndian.PutUint16(p, uint16(typ))
	return p
}

// newModeServer builds a started 2-type server in the given mode with
// a span sink, returning the server and the (mutex-guarded) span
// collector.
func newModeServer(t *testing.T, cfg psp.Config) (*psp.Server, func() []trace.Span) {
	t.Helper()
	var mu sync.Mutex
	var spans []trace.Span
	cfg.TraceSink = func(sp trace.Span) {
		mu.Lock()
		spans = append(spans, sp)
		mu.Unlock()
	}
	srv, err := psp.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)
	return srv, func() []trace.Span {
		srv.FlushTrace()
		mu.Lock()
		defer mu.Unlock()
		out := append([]trace.Span(nil), spans...)
		return out
	}
}

func sleepHandler(d0, d1 time.Duration) psp.Handler {
	return psp.HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
		if typ == 0 {
			time.Sleep(d0)
		} else {
			time.Sleep(d1)
		}
		return copy(r, p), proto.StatusOK
	})
}

func TestModeStrings(t *testing.T) {
	for mode, want := range map[psp.Mode]string{
		psp.ModeDARC:       "DARC",
		psp.ModeCFCFS:      "c-FCFS",
		psp.ModeDFCFS:      "d-FCFS",
		psp.ModeDARCStatic: "DARC-static",
	} {
		if got := mode.String(); got != want {
			t.Errorf("mode %d String() = %q, want %q", mode, got, want)
		}
	}
}

func TestDARCStaticConfigValidation(t *testing.T) {
	base := func() psp.Config {
		return psp.Config{
			Workers:        2,
			Classifier:     classify.Field{Offset: 0, Types: 2},
			Handler:        sleepHandler(0, 0),
			Mode:           psp.ModeDARCStatic,
			StaticMeans:    []time.Duration{time.Microsecond, time.Millisecond},
			StaticReserved: 1,
		}
	}
	cfg := base()
	cfg.StaticMeans = cfg.StaticMeans[:1]
	if _, err := psp.NewServer(cfg); err == nil {
		t.Error("StaticMeans shorter than type count accepted")
	}
	cfg = base()
	cfg.StaticReserved = 3
	if _, err := psp.NewServer(cfg); err == nil {
		t.Error("StaticReserved > Workers accepted")
	}
	cfg = base()
	cfg.StaticReserved = -1
	if _, err := psp.NewServer(cfg); err == nil {
		t.Error("negative StaticReserved accepted")
	}
	if _, err := psp.NewServer(base()); err != nil {
		t.Errorf("valid DARC-static config rejected: %v", err)
	}
}

// TestDARCStaticWorkerEligibility floods a 3-worker DARC-static server
// (1 reserved core) with interleaved short/long requests and asserts
// the §5.3 invariant on the recorded spans: the statically long type
// never runs on the reserved worker, while the short type reaches it.
// StaticMeans deliberately lists the long type first so the test also
// pins the sort-by-mean ordering rather than index order.
func TestDARCStaticWorkerEligibility(t *testing.T) {
	const reserved = 1
	srv, collect := newModeServer(t, psp.Config{
		Workers:        3,
		Classifier:     classify.Field{Offset: 0, Types: 2},
		Handler:        sleepHandler(400*time.Microsecond, 50*time.Microsecond),
		Mode:           psp.ModeDARCStatic,
		StaticMeans:    []time.Duration{400 * time.Microsecond, 50 * time.Microsecond},
		StaticReserved: reserved,
	})

	var chans []<-chan psp.Response
	for i := 0; i < 300; i++ {
		typ := i % 2 // alternate long/short
		ch, err := srv.Submit(typedPayload(typ))
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for _, ch := range chans {
		if resp := <-ch; resp.Status != proto.StatusOK {
			t.Fatalf("response status %v", resp.Status)
		}
	}

	spans := collect()
	if len(spans) != 300 {
		t.Fatalf("got %d spans, want 300", len(spans))
	}
	shortOnReserved := false
	for _, sp := range spans {
		switch sp.Type {
		case 0: // long
			if sp.Worker < reserved {
				t.Fatalf("long request %d ran on reserved worker %d", sp.ID, sp.Worker)
			}
		case 1: // short
			if sp.Worker < reserved {
				shortOnReserved = true
			}
		default:
			t.Fatalf("unexpected span type %d", sp.Type)
		}
	}
	if !shortOnReserved {
		t.Error("no short request ever used the reserved worker")
	}
}

// TestDFCFSDeterministicSteering replays the same sequential request
// sequence through two servers sharing a SteerSeed and asserts the
// per-request worker assignment matches exactly; a different seed must
// produce a different assignment sequence.
func TestDFCFSDeterministicSteering(t *testing.T) {
	run := func(seed uint64) []int {
		srv, collect := newModeServer(t, psp.Config{
			Workers:    3,
			Classifier: classify.Field{Offset: 0, Types: 2},
			Handler:    sleepHandler(0, 0),
			Mode:       psp.ModeDFCFS,
			SteerSeed:  seed,
		})
		for i := 0; i < 64; i++ {
			if _, err := srv.Call(typedPayload(i % 2)); err != nil {
				t.Fatal(err)
			}
		}
		spans := collect()
		if len(spans) != 64 {
			t.Fatalf("got %d spans, want 64", len(spans))
		}
		sort.Slice(spans, func(i, j int) bool { return spans[i].ID < spans[j].ID })
		workers := make([]int, len(spans))
		for i, sp := range spans {
			workers[i] = sp.Worker
		}
		return workers
	}

	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: worker %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical steering over 64 requests")
	}
}

// TestDFCFSPerWorkerFIFO submits a burst from one goroutine and checks
// each worker served its private queue in arrival order — d-FCFS has
// no cross-worker reordering, only steering.
func TestDFCFSPerWorkerFIFO(t *testing.T) {
	srv, collect := newModeServer(t, psp.Config{
		Workers:    2,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler:    sleepHandler(80*time.Microsecond, 80*time.Microsecond),
		Mode:       psp.ModeDFCFS,
		SteerSeed:  7,
	})
	var chans []<-chan psp.Response
	for i := 0; i < 200; i++ {
		ch, err := srv.Submit(typedPayload(i % 2))
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for _, ch := range chans {
		<-ch
	}
	spans := collect()
	if len(spans) != 200 {
		t.Fatalf("got %d spans, want 200", len(spans))
	}
	perWorker := map[int][]trace.Span{}
	for _, sp := range spans {
		perWorker[sp.Worker] = append(perWorker[sp.Worker], sp)
	}
	if len(perWorker) != 2 {
		t.Fatalf("steering used %d workers, want 2", len(perWorker))
	}
	for w, list := range perWorker {
		sort.Slice(list, func(i, j int) bool { return list[i].Started < list[j].Started })
		for i := 1; i < len(list); i++ {
			if list[i].Ingress < list[i-1].Ingress {
				t.Fatalf("worker %d served request %d (ingress %v) after %d (ingress %v)",
					w, list[i].ID, list[i].Ingress, list[i-1].ID, list[i-1].Ingress)
			}
		}
	}
}
