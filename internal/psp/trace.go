package psp

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/spsc"
	"repro/internal/trace"
)

// Request lifecycle tracing. Every completed request carries stamps
// for each stage it crossed (ingress, classification, enqueue,
// dispatch, service start/end, reply); the serving worker publishes
// the finished record as a trace.Span into its own fixed-capacity
// SPSC ring. Nothing on the hot path allocates or locks: the stats
// path (StatsSnapshot, WriteMetrics, an explicit FlushTrace) drains
// the rings under traceMu, folds each span into per-type
// QueueDelay/Service/Slowdown histograms, and forwards it to the
// optional sink (cmd/psp-server's -trace-out CSV dump). When nobody
// drains, rings overflow by dropping the newest span and counting it
// in TraceLost — tracing is free when unread.

// traceSpan publishes one completed request's lifecycle record from
// worker w's goroutine into the ring bound to it at spawn (nil when
// tracing is disabled). Allocation-free; drops (counted) when the
// ring is full.
func (s *Server) traceSpan(ring *spsc.Ring[trace.Span], w int, r *Request, started, finished, replied time.Duration) {
	if ring == nil {
		return
	}
	sp := trace.Span{
		ID:         r.id,
		Type:       r.typ,
		Worker:     w,
		Ingress:    r.arrival,
		Classified: r.classified,
		Enqueued:   r.enqueued,
		Dispatched: r.dispatched,
		Started:    started,
		Finished:   finished,
		Replied:    replied,
	}
	if !ring.TryPut(sp) {
		s.traceLost.Add(1)
	}
}

// SetTraceSink installs (or replaces) the span sink. Safe at any
// point in the server's life; spans drained before the sink existed
// only reached the histograms.
func (s *Server) SetTraceSink(fn func(trace.Span)) {
	s.traceMu.Lock()
	s.traceSink = fn
	s.traceMu.Unlock()
}

// FlushTrace drains every worker's span ring into the per-type
// lifecycle histograms (and the sink, if any) and returns the number
// of spans drained. Safe from any goroutine; drains serialize on the
// trace lock so the rings keep their single-consumer discipline.
func (s *Server) FlushTrace() int {
	if s.traceRings == nil {
		return 0
	}
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	n := 0
	for _, ring := range s.traceRings {
		for {
			sp, ok := ring.TryGet()
			if !ok {
				break
			}
			s.absorbSpan(sp)
			n++
		}
	}
	s.spanCount += uint64(n)
	return n
}

// absorbSpan folds one span into the lifecycle histograms. Caller
// holds traceMu.
func (s *Server) absorbSpan(sp trace.Span) {
	idx := sp.Type
	if idx < 0 || idx >= len(s.queueDelayH)-1 {
		idx = len(s.queueDelayH) - 1 // unknown bucket
	}
	s.queueDelayH[idx].RecordDuration(sp.QueueDelay())
	svc := sp.Service()
	s.serviceH[idx].RecordDuration(svc)
	if svc > 0 {
		s.slowdownH[idx].Record(int64(float64(sp.Sojourn()) / float64(svc) * metrics.SlowdownScale))
	} else {
		s.slowdownH[idx].Record(metrics.SlowdownScale)
	}
	if s.traceSink != nil {
		s.traceSink(sp)
	}
}

// traceCounts reports drained and lost span totals.
func (s *Server) traceCounts() (spans, lost uint64) {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	return s.spanCount, s.traceLost.Load()
}

// QueueDelayQuantile reports the q-quantile lifecycle queueing delay
// (ingress to worker start) for one type; any out-of-range type
// (e.g. classify.Unknown) reads the unknown bucket. Pending spans are
// drained first.
func (s *Server) QueueDelayQuantile(typ int, q float64) time.Duration {
	s.FlushTrace()
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	if s.queueDelayH == nil {
		return 0
	}
	if typ < 0 || typ >= len(s.queueDelayH)-1 {
		typ = len(s.queueDelayH) - 1
	}
	return s.queueDelayH[typ].QuantileDuration(q)
}

// TraceSummaryRow is one request type's lifecycle quantiles as seen
// by the tracer (queue delay = ingress→worker start; service =
// measured handler time).
type TraceSummaryRow struct {
	Name                          string
	Count                         uint64
	QueueP50, QueueP99, QueueP999 time.Duration
	SvcP50, SvcP99, SvcP999       time.Duration
}

// TraceSummaries drains pending spans and reports per-type lifecycle
// quantiles for every type with at least one completed span; the
// synthetic "unknown" row covers unclassifiable requests.
func (s *Server) TraceSummaries() []TraceSummaryRow {
	if s.traceRings == nil {
		return nil
	}
	s.FlushTrace()
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	rows := make([]TraceSummaryRow, 0, len(s.queueDelayH))
	for i := range s.queueDelayH {
		qh := &s.queueDelayH[i]
		if qh.Count() == 0 {
			continue
		}
		sh := &s.serviceH[i]
		rows = append(rows, TraceSummaryRow{
			Name:      s.typeNames[i],
			Count:     qh.Count(),
			QueueP50:  qh.QuantileDuration(0.5),
			QueueP99:  qh.QuantileDuration(0.99),
			QueueP999: qh.QuantileDuration(0.999),
			SvcP50:    sh.QuantileDuration(0.5),
			SvcP99:    sh.QuantileDuration(0.99),
			SvcP999:   sh.QuantileDuration(0.999),
		})
	}
	return rows
}

// ServiceQuantile reports the q-quantile measured handler time for
// one type, from the lifecycle trace.
func (s *Server) ServiceQuantile(typ int, q float64) time.Duration {
	s.FlushTrace()
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	if s.serviceH == nil {
		return 0
	}
	if typ < 0 || typ >= len(s.serviceH)-1 {
		typ = len(s.serviceH) - 1
	}
	return s.serviceH[typ].QuantileDuration(q)
}
