//go:build darwin || freebsd || netbsd || openbsd || dragonfly

package psp

// soReusePort is SO_REUSEPORT on the BSD socket API family.
const soReusePort = 0x200
