//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package psp

import (
	"context"
	"net"
	"syscall"
)

// reusePortSupported reports whether the platform can bind multiple
// TCP listeners to one address with SO_REUSEPORT, letting the kernel
// spread incoming connections across accept shards.
const reusePortSupported = true

// reusePortListen binds a TCP listener with SO_REUSEPORT set before
// bind, so several shard listeners can share the same address.
func reusePortListen(addr string) (net.Listener, error) {
	lc := net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			if err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			}); err != nil {
				return err
			}
			return serr
		},
	}
	return lc.Listen(context.Background(), "tcp", addr)
}
