package psp

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/classify"
	"repro/internal/proto"
	"repro/internal/reconfig"
	"repro/internal/spin"
)

func intp(n int) *int { return &n }

func mustReconfigure(t *testing.T, srv *Server, sp reconfig.Spec) reconfig.Result {
	t.Helper()
	res, err := srv.Reconfigure(sp)
	if err != nil {
		t.Fatalf("Reconfigure(%+v): %v", sp, err)
	}
	return res
}

func TestParsePolicyName(t *testing.T) {
	good := map[string]Mode{
		"darc": ModeDARC, "DARC": ModeDARC,
		"c-fcfs": ModeCFCFS, "cfcfs": ModeCFCFS, "C-FCFS": ModeCFCFS,
		"d-fcfs": ModeDFCFS, "dfcfs": ModeDFCFS,
		"darc-static": ModeDARCStatic, "DARCStatic": ModeDARCStatic,
	}
	for name, want := range good {
		if got, err := ParsePolicyName(name); err != nil || got != want {
			t.Errorf("ParsePolicyName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	for _, name := range []string{"", "fcfs", "warp-speed"} {
		if _, err := ParsePolicyName(name); err == nil {
			t.Errorf("ParsePolicyName(%q) accepted", name)
		}
	}
}

func TestReconfigureRejects(t *testing.T) {
	srv := newEchoServer(t, 2, ModeDARC)
	cases := []struct {
		name string
		spec reconfig.Spec
	}{
		{"empty", reconfig.Spec{}},
		{"bad policy", reconfig.Spec{Policy: &reconfig.PolicyChange{Mode: "warp"}}},
		{"zero workers", reconfig.Spec{Workers: intp(0)}},
		{"darc-static without means", reconfig.Spec{Policy: &reconfig.PolicyChange{Mode: "darc-static"}}},
		{"darc-static reserved too large", reconfig.Spec{Policy: &reconfig.PolicyChange{
			Mode:           "darc-static",
			StaticMeans:    []time.Duration{5 * time.Microsecond, 200 * time.Microsecond},
			StaticReserved: 3,
		}}},
		{"admission on admissionless server", reconfig.Spec{Admission: &reconfig.AdmissionChange{}}},
	}
	for _, tc := range cases {
		if _, err := srv.Reconfigure(tc.spec); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	snap := srv.ConfigSnapshot()
	if snap.Generation != 0 || snap.Workers != 2 || snap.Policy != "DARC" {
		t.Fatalf("rejected specs mutated the server: %+v", snap)
	}
	if srv.rcRejected.Load() != uint64(len(cases)) {
		t.Fatalf("rejections counted %d, want %d", srv.rcRejected.Load(), len(cases))
	}
}

func TestReconfigureBeforeStartAndAfterStop(t *testing.T) {
	srv, err := NewServer(Config{
		Workers:    1,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler:    &echoHandler{serviceByType: []time.Duration{time.Microsecond, time.Microsecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sp := reconfig.Spec{Workers: intp(2)}
	if _, err := srv.Reconfigure(sp); err == nil {
		t.Fatal("Reconfigure before Start accepted")
	}
	srv.Start()
	srv.Stop()
	if _, err := srv.Reconfigure(sp); !errors.Is(err, ErrServerStopped) {
		t.Fatalf("Reconfigure after Stop: %v, want ErrServerStopped", err)
	}
}

// TestReconfigPolicySwapNoDrops is the acceptance-criteria test: a
// sustained submit load riding across repeated policy swaps (crossing
// the central/per-worker queue-family boundary every time) with every
// single request answered successfully — no drops, no sheds, no
// migration losses. Run under -race in CI.
func TestReconfigPolicySwapNoDrops(t *testing.T) {
	srv := newEchoServer(t, 4, ModeDARC)
	var (
		wg        sync.WaitGroup
		submitted atomic.Uint64
		completed atomic.Uint64
		dropped   atomic.Uint64
		stop      atomic.Bool
	)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for !stop.Load() {
				ch, err := srv.Submit(typedPayload(g%2, "swap"))
				if err != nil {
					// Ingress backpressure: retry, never a lost request.
					time.Sleep(50 * time.Microsecond)
					continue
				}
				submitted.Add(1)
				resp := <-ch
				if resp.Status != proto.StatusOK {
					dropped.Add(1)
				} else {
					completed.Add(1)
				}
			}
		}(g)
	}
	policies := []string{"cfcfs", "dfcfs", "darc", "dfcfs", "cfcfs", "darc"}
	var migrated int
	for round := 0; round < 4; round++ {
		for _, p := range policies {
			res := mustReconfigure(t, srv, reconfig.Spec{Policy: &reconfig.PolicyChange{Mode: p}})
			migrated += res.Migrated
			if res.MigratedShed != 0 {
				t.Fatalf("policy swap to %s shed %d migrating requests", p, res.MigratedShed)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	stop.Store(true)
	wg.Wait()
	if dropped.Load() != 0 {
		t.Fatalf("%d of %d requests dropped across policy swaps", dropped.Load(), submitted.Load())
	}
	if completed.Load() != submitted.Load() {
		t.Fatalf("completed %d != submitted %d", completed.Load(), submitted.Load())
	}
	snap := srv.ConfigSnapshot()
	if snap.Policy != "DARC" {
		t.Fatalf("final policy %s, want DARC", snap.Policy)
	}
	if swaps := srv.rcPolicySwaps.Load(); swaps != uint64(4*len(policies)) {
		t.Fatalf("policy swaps counted %d, want %d", swaps, 4*len(policies))
	}
	t.Logf("submitted=%d migrated=%d", submitted.Load(), migrated)
}

// TestReconfigResizeUnderLoad shrinks and grows the pool while load is
// in flight: every request is answered, the drain is accounted, and
// retired slots are reusable.
func TestReconfigResizeUnderLoad(t *testing.T) {
	srv := newEchoServer(t, 4, ModeCFCFS)
	var (
		wg        sync.WaitGroup
		submitted atomic.Uint64
		failed    atomic.Uint64
		stop      atomic.Bool
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			ch, err := srv.Submit(typedPayload(1, "resize")) // 200µs type: keeps workers busy
			if err != nil {
				time.Sleep(50 * time.Microsecond)
				continue
			}
			submitted.Add(1)
			if resp := <-ch; resp.Status != proto.StatusOK {
				failed.Add(1)
			}
		}
	}()
	time.Sleep(2 * time.Millisecond)
	for _, target := range []int{1, 4, 2, 6, 3} {
		res := mustReconfigure(t, srv, reconfig.Spec{Workers: intp(target)})
		if got := srv.ConfigSnapshot().Workers; got != target {
			t.Fatalf("after resize: %d workers, want %d", got, target)
		}
		if res.Retired == 0 && res.Added == 0 {
			t.Fatalf("resize to %d reports no pool change: %+v", target, res)
		}
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d of %d requests failed across resizes", failed.Load(), submitted.Load())
	}
	if resizes := srv.rcResizes.Load(); resizes != 5 {
		t.Fatalf("resizes counted %d, want 5", resizes)
	}
}

// TestReconfigShrinkDrainsBusyWorker pins the graceful-drain contract:
// a shrink while every worker is mid-request waits for the retiring
// workers to finish (the in-flight requests complete normally) instead
// of preempting them.
func TestReconfigShrinkDrainsBusyWorker(t *testing.T) {
	spin.Calibrate(10 * time.Millisecond)
	release := make(chan struct{})
	var serving sync.WaitGroup
	serving.Add(2)
	srv, err := NewServer(Config{
		Workers:    2,
		Classifier: classify.Field{Offset: 0, Types: 1},
		Handler: HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			serving.Done()
			<-release
			return copy(r, p), proto.StatusOK
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()

	ch1, err := srv.Submit(typedPayload(0, "a"))
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := srv.Submit(typedPayload(0, "b"))
	if err != nil {
		t.Fatal(err)
	}
	serving.Wait() // both workers are now parked in the handler

	done := make(chan reconfig.Result, 1)
	go func() {
		res, rerr := srv.Reconfigure(reconfig.Spec{Workers: intp(1)})
		if rerr != nil {
			t.Error(rerr)
		}
		done <- res
	}()
	select {
	case <-done:
		t.Fatal("shrink completed while the retiring worker was still mid-request")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	res := <-done
	if res.Retired != 1 || res.DrainWait <= 0 {
		t.Fatalf("shrink result %+v, want Retired=1 and a positive DrainWait", res)
	}
	for _, ch := range []<-chan Response{ch1, ch2} {
		if resp := <-ch; resp.Status != proto.StatusOK {
			t.Fatalf("in-flight request finished %v, want OK", resp.Status)
		}
	}
	if got := srv.ConfigSnapshot().Workers; got != 1 {
		t.Fatalf("pool %d, want 1", got)
	}
}

// TestReconfigSerializesBehindDrain checks that an op queued behind a
// draining shrink waits its turn and then applies.
func TestReconfigSerializesBehindDrain(t *testing.T) {
	release := make(chan struct{})
	var serving sync.WaitGroup
	serving.Add(2)
	srv, err := NewServer(Config{
		Workers:    2,
		Classifier: classify.Field{Offset: 0, Types: 1},
		Handler: HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			serving.Done()
			<-release
			return copy(r, p), proto.StatusOK
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()
	// Occupy both workers so the shrink's retiree is mid-request.
	ch, err := srv.Submit(typedPayload(0, "x"))
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := srv.Submit(typedPayload(0, "y"))
	if err != nil {
		t.Fatal(err)
	}
	serving.Wait()

	shrinkDone := make(chan reconfig.Result, 1)
	growDone := make(chan reconfig.Result, 1)
	go func() {
		res, _ := srv.Reconfigure(reconfig.Spec{Workers: intp(1)})
		shrinkDone <- res
	}()
	// Give the shrink time to start draining, then queue a grow behind it.
	time.Sleep(10 * time.Millisecond)
	go func() {
		res, _ := srv.Reconfigure(reconfig.Spec{Workers: intp(3)})
		growDone <- res
	}()
	select {
	case <-growDone:
		t.Fatal("grow applied while the shrink was still draining")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	shrink := <-shrinkDone
	grow := <-growDone
	if grow.Generation <= shrink.Generation {
		t.Fatalf("generations out of order: shrink %d, grow %d", shrink.Generation, grow.Generation)
	}
	<-ch
	<-ch2
	if got := srv.ConfigSnapshot().Workers; got != 3 {
		t.Fatalf("pool %d, want 3", got)
	}
}

// TestReconfigAdmissionLive swaps admission budgets on a running
// server and checks they take effect without disturbing the ledger.
func TestReconfigAdmissionLive(t *testing.T) {
	spin.Calibrate(10 * time.Millisecond)
	srv, err := NewServer(Config{
		Workers:    2,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler:    &echoHandler{serviceByType: []time.Duration{5 * time.Microsecond, 50 * time.Microsecond}},
		Admission:  &admission.Config{Budgets: []time.Duration{time.Millisecond, time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()
	for i := 0; i < 10; i++ {
		if _, err := srv.Call(typedPayload(i%2, "warm")); err != nil {
			t.Fatal(err)
		}
	}
	newBudget := 30 * time.Millisecond
	trim := 4 * time.Millisecond
	res := mustReconfigure(t, srv, reconfig.Spec{Admission: &reconfig.AdmissionChange{
		Budgets:       []time.Duration{newBudget, newBudget},
		OverloadDelay: &trim,
	}})
	if len(res.Applied) == 0 {
		t.Fatalf("no change recorded: %+v", res)
	}
	if got := srv.Admission().Budget(0); got != newBudget {
		t.Fatalf("live budget %v, want %v", got, newBudget)
	}
	if got := srv.Admission().OverloadThreshold(); got != trim {
		t.Fatalf("overload threshold %v, want %v", got, trim)
	}
	st := srv.Admission().Snapshot()
	if st.Slots[0].Accepted+st.Slots[1].Accepted != 10 {
		t.Fatalf("ledger disturbed by update: %+v", st.Slots)
	}
	snap := srv.ConfigSnapshot()
	if !snap.Admission || len(snap.Budgets) != 3 {
		t.Fatalf("snapshot admission view: %+v", snap)
	}
}

// TestReconfigDARCStaticSwap swaps into darc-static with fresh means
// and out again, exercising the static-order recompute and the
// reserved-prefix clamp on shrink.
func TestReconfigDARCStaticSwap(t *testing.T) {
	srv := newEchoServer(t, 3, ModeCFCFS)
	res := mustReconfigure(t, srv, reconfig.Spec{Policy: &reconfig.PolicyChange{
		Mode:           "darc-static",
		StaticReserved: 2,
		StaticMeans:    []time.Duration{5 * time.Microsecond, 200 * time.Microsecond},
	}})
	if res.Generation == 0 {
		t.Fatalf("result: %+v", res)
	}
	if got := srv.ConfigSnapshot().Policy; got != "DARC-static" {
		t.Fatalf("policy %s, want DARC-static", got)
	}
	for i := 0; i < 20; i++ {
		if _, err := srv.Call(typedPayload(i%2, "static")); err != nil {
			t.Fatal(err)
		}
	}
	// Shrinking to 1 worker must clamp the reserved prefix below the
	// pool size (2 reserved cores in a 1-worker pool would starve
	// every non-short type forever).
	mustReconfigure(t, srv, reconfig.Spec{Workers: intp(1)})
	if srv.cfg.StaticReserved != 0 {
		t.Fatalf("reserved %d after shrink to 1, want 0", srv.cfg.StaticReserved)
	}
	for i := 0; i < 10; i++ {
		if _, err := srv.Call(typedPayload(i%2, "small")); err != nil {
			t.Fatal(err)
		}
	}
	mustReconfigure(t, srv, reconfig.Spec{Policy: &reconfig.PolicyChange{Mode: "darc"}})
	if got := srv.ConfigSnapshot().Policy; got != "DARC" {
		t.Fatalf("policy %s, want DARC", got)
	}
	for i := 0; i < 10; i++ {
		if _, err := srv.Call(typedPayload(i%2, "back")); err != nil {
			t.Fatal(err)
		}
	}
}

// TestReconfigAdminEndpointLive drives the whole stack over HTTP: the
// admin endpoints ServeMetrics mounts apply a real spec to a live
// server and the metrics exposition reflects it.
func TestReconfigAdminEndpointLive(t *testing.T) {
	srv := newEchoServer(t, 2, ModeDARC)
	addr, shutdown, err := srv.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown() //nolint:errcheck
	cli := &http.Client{Timeout: 5 * time.Second}

	resp, err := cli.PostForm("http://"+addr+"/admin/reconfig",
		url.Values{"policy": {"cfcfs"}, "workers": {"3"}})
	if err != nil {
		t.Fatal(err)
	}
	var res reconfig.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || res.Generation != 1 {
		t.Fatalf("status %d result %+v", resp.StatusCode, res)
	}

	conf, err := cli.Get("http://" + addr + "/admin/config")
	if err != nil {
		t.Fatal(err)
	}
	var snap reconfig.Snapshot
	if err := json.NewDecoder(conf.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	conf.Body.Close()
	if snap.Policy != "c-FCFS" || snap.Workers != 3 || snap.Generation != 1 {
		t.Fatalf("snapshot %+v", snap)
	}

	// The rejected-spec path surfaces the server's error as 409.
	bad, err := cli.PostForm("http://"+addr+"/admin/reconfig", url.Values{"policy": {"warp"}})
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusConflict {
		t.Fatalf("bad policy: status %d", bad.StatusCode)
	}

	metrics, err := cli.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(metrics.Body)
	metrics.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"persephone_workers_active 3",
		"persephone_reconfig_generation 1",
		"persephone_reconfig_applied_total 1",
		"persephone_reconfig_rejected_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestReconfigMigrationOverflow pins the no-silent-loss contract on
// the migration path: a policy swap whose target queue family cannot
// hold the whole backlog answers the overflow (StatusDropped without
// admission) instead of losing it.
func TestReconfigMigrationOverflow(t *testing.T) {
	release := make(chan struct{})
	var releaseOnce sync.Once
	releaseGate := func() { releaseOnce.Do(func() { close(release) }) }
	served := make(chan struct{}, 8) // buffered: fires again for every post-release request
	srv, err := NewServer(Config{
		Workers:    1,
		QueueCap:   2,
		Mode:       ModeCFCFS,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler: HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			served <- struct{}{}
			<-release
			return copy(r, p), proto.StatusOK
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()
	defer releaseGate() // a Fatal before the explicit release must not wedge Stop

	// One request occupies the worker; four more park across the
	// typed queues and the unknown spillway (type 9 is unclassifiable
	// with Types: 2). Central capacity is 3x QueueCap; the d-FCFS
	// target has one worker queue of cap 2, so two must overflow.
	chans := make([]<-chan Response, 0, 5)
	first, err := srv.Submit(typedPayload(0, "busy"))
	if err != nil {
		t.Fatal(err)
	}
	chans = append(chans, first)
	<-served
	for _, typ := range []int{0, 1, 1, 9} {
		ch, err := srv.Submit(typedPayload(typ, "queued"))
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	// Submit parks requests on the ingress ring; the dispatcher
	// consumes control-plane ops *before* draining ingress, so wait
	// until all five arrivals are classified and enqueued — otherwise
	// the swap would run against empty central queues and migrate
	// nothing.
	for deadline := time.Now().Add(2 * time.Second); ; {
		if srv.StatsSnapshot().Enqueued == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backlog never enqueued: %+v", srv.StatsSnapshot())
		}
		time.Sleep(time.Millisecond)
	}

	res := mustReconfigure(t, srv, reconfig.Spec{
		Policy: &reconfig.PolicyChange{Mode: "dfcfs"},
	})
	if res.Migrated != 2 || res.MigratedShed != 2 {
		t.Fatalf("migrated=%d shed=%d, want 2/2: %+v", res.Migrated, res.MigratedShed, res)
	}

	releaseGate()
	var ok, dropped int
	for _, ch := range chans {
		switch resp := <-ch; resp.Status {
		case proto.StatusOK:
			ok++
		case proto.StatusDropped:
			dropped++
		default:
			t.Fatalf("unexpected status %v", resp.Status)
		}
	}
	if ok != 3 || dropped != 2 {
		t.Fatalf("ok=%d dropped=%d, want 3 answered OK and 2 answered dropped", ok, dropped)
	}
}

// TestReconfigAdmissionAllFields updates every admission knob in one
// spec and checks the merged policy installs wholesale.
func TestReconfigAdmissionAllFields(t *testing.T) {
	srv, err := NewServer(Config{
		Workers:    2,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler: HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			return copy(r, p), proto.StatusOK
		}),
		Admission: &admission.Config{Budgets: []time.Duration{time.Millisecond, time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()

	var (
		unknown = 40 * time.Millisecond
		trim    = 6 * time.Millisecond
		mult    = 25.0
		floor   = 2 * time.Millisecond
	)
	mustReconfigure(t, srv, reconfig.Spec{Admission: &reconfig.AdmissionChange{
		Budgets:       []time.Duration{10 * time.Millisecond, 80 * time.Millisecond},
		UnknownBudget: &unknown,
		OverloadDelay: &trim,
		AutoMult:      &mult,
		MinBudget:     &floor,
	}})
	cfg := srv.Admission().Config()
	if cfg.Budgets[0] != 10*time.Millisecond || cfg.Budgets[1] != 80*time.Millisecond ||
		cfg.UnknownBudget != unknown || cfg.OverloadDelay != trim ||
		cfg.AutoMult != mult || cfg.MinBudget != floor {
		t.Fatalf("merged admission config %+v", cfg)
	}
	if got := srv.Admission().Budget(0); got != 10*time.Millisecond {
		t.Fatalf("live budget %v", got)
	}
}

// TestReconfigShrinkResteersDFCFSBacklog shrinks a d-FCFS pool whose
// workers are all busy with backlogs parked behind them: the retiring
// worker's backlog must re-steer across the survivors and every
// request must still be answered OK.
func TestReconfigShrinkResteersDFCFSBacklog(t *testing.T) {
	release := make(chan struct{})
	var releaseOnce sync.Once
	releaseGate := func() { releaseOnce.Do(func() { close(release) }) }
	served := make(chan struct{}, 16) // buffered: fires again for every post-release request
	srv, err := NewServer(Config{
		Workers:    2,
		Mode:       ModeDFCFS,
		Classifier: classify.Field{Offset: 0, Types: 1},
		Handler: HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			served <- struct{}{}
			<-release
			return copy(r, p), proto.StatusOK
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()
	defer releaseGate() // a Fatal before the explicit release must not wedge Stop

	// Fourteen arrivals spread across both worker queues by the
	// steering hash; one occupies each worker, the rest park behind
	// them.
	chans := make([]<-chan Response, 0, 14)
	for i := 0; i < 14; i++ {
		ch, err := srv.Submit(typedPayload(0, "parked"))
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	<-served
	<-served

	done := make(chan reconfig.Result, 1)
	go func() {
		res, rerr := srv.Reconfigure(reconfig.Spec{Workers: intp(1)})
		if rerr != nil {
			t.Error(rerr)
		}
		done <- res
	}()
	// The shrink pends on the busy retiree; the handler gate must not
	// hold it hostage forever.
	time.Sleep(5 * time.Millisecond)
	releaseGate()
	res := <-done
	if res.Retired != 1 {
		t.Fatalf("retired %d, want 1: %+v", res.Retired, res)
	}
	for i, ch := range chans {
		if resp := <-ch; resp.Status != proto.StatusOK {
			t.Fatalf("request %d finished %v, want OK", i, resp.Status)
		}
	}
	if got := srv.ConfigSnapshot().Workers; got != 1 {
		t.Fatalf("pool %d, want 1", got)
	}
}
