package psp

// Connection-lifecycle battery for the pipelined TCP datapath:
// graceful drain on Close (every accepted request answered, no leaked
// goroutines or pooled buffers), idle-timeout eviction, MaxConns
// admission, sharded accept, and the oversized-frame fallback path.

import (
	"bufio"
	"encoding/binary"
	"io"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/proto"
)

func newTCPServerOpts(t *testing.T, opts TCPOptions, handler Handler) *TCPServer {
	t.Helper()
	if handler == nil {
		handler = HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			return copy(r, p), proto.StatusOK
		})
	}
	srv, err := NewServer(Config{
		Workers:    2,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler:    handler,
		Mode:       ModeCFCFS,
		TraceCap:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := ListenTCPShards("127.0.0.1:0", srv, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ts.Close() })
	return ts
}

// readResponseFrame reads one length-prefixed frame off rd.
func readResponseFrame(t *testing.T, rd *bufio.Reader) ([]byte, error) {
	t.Helper()
	var lenBuf [tcpLenPrefixSize]byte
	if _, err := io.ReadFull(rd, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n > maxTCPFrame {
		t.Fatalf("response frame length %d out of range", n)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(rd, frame); err != nil {
		return nil, err
	}
	return frame, nil
}

// TestTCPGracefulDrain pins the Close contract: every request already
// accepted into the pipeline is answered and flushed before the socket
// dies, no pooled buffer stays checked out, and no datapath goroutine
// survives.
func TestTCPGracefulDrain(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ts := newTCPServerOpts(t, TCPOptions{}, HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
		time.Sleep(200 * time.Microsecond) // keep work in flight during Close
		return copy(r, p), proto.StatusOK
	}))

	conn, err := net.Dial("tcp", ts.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const n = 64
	var out []byte
	for i := 0; i < n; i++ {
		out = appendRequestFrame(out, uint64(i+1), 0, typedPayload(i%2, "drain"))
	}
	if _, err := conn.Write(out); err != nil {
		t.Fatal(err)
	}
	// Wait until the whole burst is inside the pipeline, then close
	// with most of it still unanswered.
	for deadline := time.Now().Add(5 * time.Second); ts.Received() < n; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests accepted", ts.Received(), n)
		}
		time.Sleep(time.Millisecond)
	}
	closed := make(chan error, 1)
	go func() { closed <- ts.Close() }()

	rd := bufio.NewReader(conn)
	got := 0
	ids := make(map[uint64]bool, n)
	for {
		frame, err := readResponseFrame(t, rd)
		if err != nil {
			break // server closed the connection after the drain
		}
		hdr, _, perr := proto.DecodeHeader(frame)
		if perr != nil || hdr.Kind != proto.KindResponse {
			t.Fatalf("bad response frame: %v %+v", perr, hdr)
		}
		if ids[hdr.RequestID] {
			t.Fatalf("request %d answered twice", hdr.RequestID)
		}
		ids[hdr.RequestID] = true
		got++
	}
	if got != n {
		t.Fatalf("drain delivered %d/%d responses", got, n)
	}
	if err := <-closed; err != nil {
		t.Fatal(err)
	}
	if out := ts.poolOutstanding(); out != 0 {
		t.Fatalf("%d pooled buffers leaked through Close", out)
	}
	// Every datapath goroutine (readers, TX loops, dispatcher, workers)
	// must be gone; poll because exits are asynchronous.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if runtime.NumGoroutine() <= baseline {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTCPIdleTimeoutEviction checks that a connection delivering no
// bytes (and owing no responses) is evicted after IdleTimeout, and
// that the eviction is counted.
func TestTCPIdleTimeoutEviction(t *testing.T) {
	ts := newTCPServerOpts(t, TCPOptions{IdleTimeout: 25 * time.Millisecond}, nil)
	conn, err := net.Dial("tcp", ts.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A round trip first: eviction must not fire while traffic flows.
	cli, err := DialTCP(ts.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Call(typedPayload(0, "warm")); err != nil {
		t.Fatal(err)
	}
	// The idle raw connection must be closed by the server.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	if _, err := conn.Read(make([]byte, 1)); err == nil || strings.Contains(err.Error(), "timeout") {
		t.Fatalf("idle connection not evicted: %v", err)
	}
	if ev := ts.ConnsEvicted(); ev == 0 {
		t.Fatal("eviction not counted")
	}
	for deadline := time.Now().Add(2 * time.Second); ts.ConnsOpen() > 1; {
		if time.Now().After(deadline) {
			t.Fatalf("conns_open %d after eviction", ts.ConnsOpen())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestTCPMaxConnsAdmission checks the admission cap: connections over
// MaxConns are closed immediately and counted as rejected.
func TestTCPMaxConnsAdmission(t *testing.T) {
	ts := newTCPServerOpts(t, TCPOptions{MaxConns: 2}, nil)
	var clis []*TCPClient
	for i := 0; i < 2; i++ {
		cli, err := DialTCP(ts.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		if _, err := cli.Call(typedPayload(0, "admit")); err != nil {
			t.Fatal(err)
		}
		clis = append(clis, cli)
	}
	// The third connection must be shed at accept.
	conn, err := net.Dial("tcp", ts.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection over MaxConns survived")
	}
	if ts.ConnsRejected() == 0 {
		t.Fatal("rejection not counted")
	}
	// The admitted connections keep working.
	for _, cli := range clis {
		if _, err := cli.Call(typedPayload(1, "still-in")); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTCPShardedAccept runs the multi-shard accept path (SO_REUSEPORT
// listeners on unix, shared-listener fallback elsewhere) end to end.
func TestTCPShardedAccept(t *testing.T) {
	ts := newTCPServerOpts(t, TCPOptions{Shards: 2}, nil)
	if ts.Shards() != 2 {
		t.Fatalf("shards %d", ts.Shards())
	}
	for _, a := range ts.Addrs() {
		if a.String() != ts.Addr().String() {
			t.Fatalf("shard address %v != primary %v", a, ts.Addr())
		}
	}
	const conns = 8
	done := make(chan error, conns)
	for i := 0; i < conns; i++ {
		go func(i int) {
			cli, err := DialTCP(ts.Addr().String())
			if err != nil {
				done <- err
				return
			}
			defer cli.Close()
			for j := 0; j < 20; j++ {
				if _, err := cli.Call(typedPayload(j%2, "sharded")); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(i)
	}
	for i := 0; i < conns; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := ts.Received(); got != conns*20 {
		t.Fatalf("received %d, want %d", got, conns*20)
	}
}

// TestTCPOversizedFrameFallback drives a frame too large for a pooled
// buffer (but within maxTCPFrame) through the scratch-read, allocating
// path.
func TestTCPOversizedFrameFallback(t *testing.T) {
	ts := newTCPServerOpts(t, TCPOptions{}, nil)
	cli, err := DialTCP(ts.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	big := typedPayload(0, strings.Repeat("x", 3*tcpBufPayload))
	resp, err := cli.Call(big)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != proto.StatusOK {
		t.Fatalf("status %v", resp.Status)
	}
	// The echo is clipped to the worker's response scratch, but must be
	// a prefix of the request payload.
	if len(resp.Payload) == 0 || string(resp.Payload) != string(big[:len(resp.Payload)]) {
		t.Fatalf("oversized echo mismatch (%d bytes back)", len(resp.Payload))
	}
	if ts.poolOutstanding() != 0 {
		t.Fatalf("scratch path leaked %d pooled buffers", ts.poolOutstanding())
	}
}
