package psp

// Loopback saturation benchmark for the UDP datapath. Each sub-bench
// blasts b.N echo requests at the server as fast as the window allows
// and reports delivered responses per second, so the unbatched
// configuration (shards=1, burst=1 — the old one-datagram-per-wakeup
// path) is directly comparable with the batched and sharded ones.
// Throughput counts only answered requests: sheds under overload slow
// the number down rather than inflating it.
//
// Meaningful numbers need a real request count, e.g.
//
//	go test ./internal/psp -run '^$' -bench UDPLoopback -benchtime 100000x

import (
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/proto"
)

func benchUDPLoopback(b *testing.B, opts UDPOptions) {
	srv, err := NewServer(Config{
		Workers:    2,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler: HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			return copy(r, p), proto.StatusOK
		}),
		Mode:     ModeCFCFS,
		TraceCap: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	u, err := ListenUDPShards("127.0.0.1:0", srv, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer u.Close()

	conns := make([]*net.UDPConn, u.Shards())
	for i, a := range u.Addrs() {
		conns[i], err = net.DialUDP("udp", nil, a)
		if err != nil {
			b.Fatal(err)
		}
		conns[i].SetReadBuffer(4 << 20) //nolint:errcheck // response bursts while the sender runs
		defer conns[i].Close()
	}

	var got atomic.Uint64
	var recvWG sync.WaitGroup
	for _, conn := range conns {
		recvWG.Add(1)
		go func(conn *net.UDPConn) {
			defer recvWG.Done()
			buf := make([]byte, 2048)
			for {
				if _, err := conn.Read(buf); err != nil {
					return
				}
				got.Add(1)
			}
		}(conn)
	}

	msg := proto.AppendMessage(nil, proto.Header{
		Kind:      proto.KindRequest,
		RequestID: 1,
	}, typedPayload(0, "bench"))
	// Cap outstanding requests so the kernel socket buffer is not the
	// bottleneck being measured; the window is deep enough to keep the
	// net worker's burst path saturated.
	window := uint64(512 * len(conns))

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		for uint64(i)-got.Load() >= window {
			runtime.Gosched()
		}
		conns[i%len(conns)].Write(msg) //nolint:errcheck // loss shows up as missing responses
	}
	// Drain stragglers until everything answered or clearly shed.
	last, idleSince := got.Load(), time.Now()
	for got.Load() < uint64(b.N) {
		time.Sleep(time.Millisecond)
		if n := got.Load(); n != last {
			last, idleSince = n, time.Now()
		} else if time.Since(idleSince) > 200*time.Millisecond {
			break
		}
	}
	elapsed := time.Since(start)
	b.StopTimer()

	delivered := got.Load()
	b.ReportMetric(float64(delivered)/elapsed.Seconds(), "resp/s")
	b.ReportMetric(100*float64(delivered)/float64(b.N), "%delivered")
}

func BenchmarkUDPLoopback(b *testing.B) {
	b.Run("shards=1/burst=1", func(b *testing.B) {
		benchUDPLoopback(b, UDPOptions{Shards: 1, Burst: 1})
	})
	b.Run("shards=1/burst=32", func(b *testing.B) {
		benchUDPLoopback(b, UDPOptions{Shards: 1, Burst: 32})
	})
	b.Run("shards=2/burst=32", func(b *testing.B) {
		benchUDPLoopback(b, UDPOptions{Shards: 2, Burst: 32})
	})
	b.Run("shards=4/burst=32", func(b *testing.B) {
		benchUDPLoopback(b, UDPOptions{Shards: 4, Burst: 32})
	})
}
