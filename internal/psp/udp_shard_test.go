package psp_test

// Multi-shard datapath tests: request conservation when load is spread
// over several ingress sockets, consecutive-port binding, and the
// pool-exhaustion shed path staying live (and separately counted) when
// workers hold every ingress buffer.

import (
	"net"
	"strconv"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/darc"
	"repro/internal/loadgen"
	"repro/internal/proto"
	"repro/internal/psp"
	"repro/internal/workload"
)

func newShardedServer(t *testing.T, opts psp.UDPOptions, handler psp.Handler) *psp.UDPServer {
	t.Helper()
	dcfg := darc.DefaultConfig(2)
	dcfg.MinWindowSamples = 64
	srv, err := psp.NewServer(psp.Config{
		Workers:    2,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler:    handler,
		Mode:       psp.ModeCFCFS,
	})
	if err != nil {
		t.Fatal(err)
	}
	u, err := psp.ListenUDPShards("127.0.0.1:0", srv, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { u.Close() })
	return u
}

func echoHandler(typ int, p, r []byte) (int, proto.Status) {
	return copy(r, p), proto.StatusOK
}

// TestUDPMultiShardConservation spreads an open-loop run over three
// ingress shards and checks conservation on both sides of the wire:
// the client accounts for every request it sent, every shard carried
// traffic, the shard counters sum to the server's admission count, and
// the dispatcher's span-conservation invariant holds.
func TestUDPMultiShardConservation(t *testing.T) {
	const shards = 3
	u := newShardedServer(t, psp.UDPOptions{Shards: shards, Burst: 8},
		psp.HandlerFunc(echoHandler))
	if got := u.Shards(); got != shards {
		t.Fatalf("shards %d, want %d", got, shards)
	}
	addrs := make([]string, 0, shards)
	for _, a := range u.Addrs() {
		addrs = append(addrs, a.String())
	}
	duration := 400 * time.Millisecond
	if testing.Short() {
		duration = 150 * time.Millisecond
	}
	res, err := loadgen.RunUDPAddrs(addrs, loadgen.Config{
		Mix:            workload.TwoType("short", 10*time.Microsecond, 0.9, "long", 100*time.Microsecond),
		Rate:           2000,
		Duration:       duration,
		Seed:           9,
		Timeout:        3 * time.Second,
		RequestTimeout: 200 * time.Millisecond,
		MaxRetries:     3,
		RetryBackoff:   2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 {
		t.Fatal("nothing sent")
	}
	if un := res.Unaccounted(); un != 0 {
		t.Fatalf("client lost track of %d requests: %+v", un, res)
	}
	var perShard uint64
	for i := 0; i < shards; i++ {
		rx := u.ShardReceived(i)
		if rx == 0 {
			t.Errorf("shard %d carried no traffic", i)
		}
		perShard += rx
	}
	if perShard != u.Received() {
		t.Fatalf("shard counters sum to %d, server admitted %d", perShard, u.Received())
	}
	u.Close()
	st := u.Server.StatsSnapshot()
	if st.TraceSpans+st.TraceLost+st.WorkerRestarts != st.Dispatched {
		t.Fatalf("span conservation: spans %d + lost %d + crashes %d != dispatched %d",
			st.TraceSpans, st.TraceLost, st.WorkerRestarts, st.Dispatched)
	}
}

// TestUDPShardConsecutivePorts checks the advertised binding contract:
// with a non-zero listen port, shard i binds port+i, which is what
// lets psp-client -shards expand a single address into the full list.
func TestUDPShardConsecutivePorts(t *testing.T) {
	srvFor := func() *psp.Server {
		s, err := psp.NewServer(psp.Config{
			Workers:    1,
			Classifier: classify.Field{Offset: 0, Types: 2},
			Handler:    psp.HandlerFunc(echoHandler),
			Mode:       psp.ModeCFCFS,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	// Ephemeral ports may collide with other listeners between probe
	// and bind; retry a few bases before declaring failure.
	for attempt := 0; attempt < 5; attempt++ {
		probe, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		base := probe.LocalAddr().(*net.UDPAddr).Port
		probe.Close()
		u, err := psp.ListenUDPShards("127.0.0.1:"+strconv.Itoa(base), srvFor(), psp.UDPOptions{Shards: 2})
		if err != nil {
			continue
		}
		defer u.Close()
		for i, a := range u.Addrs() {
			if a.Port != base+i {
				t.Fatalf("shard %d bound port %d, want %d", i, a.Port, base+i)
			}
		}
		return
	}
	t.Skip("no free consecutive port pair after 5 attempts")
}

// TestUDPPoolExhaustionSheds starves the ingress buffer pool (two
// buffers, slow workers holding both) and checks the shed path: excess
// datagrams are shed and counted in RxSheds — not RxDrops — while the
// net worker keeps draining the socket and the server stays live.
func TestUDPPoolExhaustionSheds(t *testing.T) {
	block := make(chan struct{})
	u := newShardedServer(t, psp.UDPOptions{Shards: 1, Burst: 4, PoolSize: 2},
		psp.HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			<-block
			return copy(r, p), proto.StatusOK
		}))
	conn, err := net.DialUDP("udp", nil, u.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const n = 64
	for i := 0; i < n; i++ {
		msg := proto.AppendMessage(nil, proto.Header{
			Kind:      proto.KindRequest,
			RequestID: uint64(i + 1),
		}, typedPayloadX(0, "flood"))
		conn.Write(msg) //nolint:errcheck
	}
	deadline := time.Now().Add(5 * time.Second)
	for u.RxSheds() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no sheds after %d datagrams against a 2-buffer pool (rx %d, drops %d)",
				n, u.Received(), u.RxDrops())
		}
		time.Sleep(time.Millisecond)
	}
	if u.RxDrops() != 0 {
		t.Fatalf("well-formed shed datagrams counted as drops: %d", u.RxDrops())
	}
	// Unblock the workers; the admitted requests must still complete.
	close(block)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	if _, err := conn.Read(make([]byte, 2048)); err != nil {
		t.Fatalf("no response after sheds: %v", err)
	}
}

// typedPayloadX mirrors the psp package's typedPayload helper for the
// external test package: 2-byte little-endian type plus a tag.
func typedPayloadX(typ int, tag string) []byte {
	p := make([]byte, 2+len(tag))
	p[0] = byte(typ)
	p[1] = byte(typ >> 8)
	copy(p[2:], tag)
	return p
}
