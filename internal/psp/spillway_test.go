package psp

import (
	"sync"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/darc"
	"repro/internal/proto"
	"repro/internal/trace"
)

// Satellite tests for the unclassifiable-request path: requests the
// classifier cannot type (classify.Unknown) must route through the
// unknown queue to a spillway core, still produce a reply, and stay
// inside the span-conservation invariant — under every worker/spillway
// configuration, including Spillway=0 with a DARC reservation
// installed (which used to starve the unknown queue forever).

// driveReservation runs typed traffic until the DARC controller
// installs a reservation.
func driveReservation(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Controller().Reservation() == nil {
		if time.Now().After(deadline) {
			t.Fatal("no reservation installed after 5s of typed traffic")
		}
		for i := 0; i < 100; i++ {
			if _, err := srv.Call(typedPayload(i%2, "warm")); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestUnknownServedOnSpillwayWorker(t *testing.T) {
	var mu sync.Mutex
	var spans []trace.Span
	cfg := darc.DefaultConfig(4)
	cfg.MinWindowSamples = 64
	cfg.Spillway = 1
	srv, err := NewServer(Config{
		Workers:    4,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler:    &echoHandler{serviceByType: []time.Duration{time.Microsecond, time.Microsecond}},
		Mode:       ModeDARC,
		DARC:       cfg,
		TraceSink: func(sp trace.Span) {
			mu.Lock()
			spans = append(spans, sp)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()
	driveReservation(t, srv)
	res := srv.Controller().Reservation()
	if len(res.SpillwayWorkers) == 0 {
		t.Fatalf("reservation has no spillway workers: %+v", res)
	}
	spillway := map[int]bool{}
	for _, w := range res.SpillwayWorkers {
		spillway[w] = true
	}

	// Payloads carrying a type beyond the classifier's range are
	// Unknown; each must still produce a reply.
	const unknowns = 20
	for i := 0; i < unknowns; i++ {
		resp, err := srv.Call(typedPayload(7, "mystery"))
		if err != nil {
			t.Fatalf("unknown request %d: %v", i, err)
		}
		if resp.Type != classify.Unknown {
			t.Fatalf("unknown request %d classified as %d", i, resp.Type)
		}
		if resp.Status != proto.StatusOK {
			t.Fatalf("unknown request %d status = %v", i, resp.Status)
		}
	}
	srv.Stop()

	mu.Lock()
	defer mu.Unlock()
	var servedUnknown int
	for _, sp := range spans {
		if sp.Type >= 0 {
			continue
		}
		servedUnknown++
		if !spillway[sp.Worker] {
			t.Fatalf("unknown request served on worker %d, not a spillway core %v",
				sp.Worker, res.SpillwayWorkers)
		}
	}
	if servedUnknown != unknowns {
		t.Fatalf("unknown spans = %d, want %d", servedUnknown, unknowns)
	}
	// Span conservation includes the unknown requests.
	st := srv.StatsSnapshot()
	if st.TraceSpans+st.TraceLost != st.Dispatched {
		t.Fatalf("span conservation: spans %d + lost %d != dispatched %d",
			st.TraceSpans, st.TraceLost, st.Dispatched)
	}
}

func TestUnknownServedWithoutSpillwayCores(t *testing.T) {
	// Workers=1 forces Spillway=0. Once a reservation installs, the
	// unknown queue has no designated cores; it must fall back to any
	// free worker instead of starving.
	srv := newEchoServer(t, 1, ModeDARC)
	driveReservation(t, srv)
	if res := srv.Controller().Reservation(); len(res.SpillwayWorkers) != 0 {
		t.Fatalf("single-worker reservation has spillway workers: %+v", res)
	}
	done := make(chan Response, 1)
	go func() {
		resp, err := srv.Call(typedPayload(9, "unknown"))
		if err != nil {
			close(done)
			return
		}
		done <- resp
	}()
	select {
	case resp, ok := <-done:
		if !ok {
			t.Fatal("unknown request errored")
		}
		if resp.Type != classify.Unknown || resp.Status != proto.StatusOK {
			t.Fatalf("unknown response: type=%d status=%v", resp.Type, resp.Status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("unknown request starved with Spillway=0 and a reservation installed")
	}
	// The unknown row must appear in the per-type summaries.
	var found bool
	for _, row := range srv.TraceSummaries() {
		if row.Name == "unknown" && row.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no 'unknown' row in trace summaries")
	}
}

func TestUnknownRepliesOverUDP(t *testing.T) {
	// End-to-end over the wire: an unclassifiable datagram still gets
	// a reply on the pending-reply path.
	u := newUDPServer(t)
	conn := udpClient(t, u.Addr())
	payload := typedPayload(9, "over-the-wire") // type 9 of 2 -> Unknown
	msg := proto.AppendMessage(nil, proto.Header{
		Kind:      proto.KindRequest,
		RequestID: 77,
	}, payload)
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	buf := make([]byte, 2048)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal("no reply for an unclassifiable datagram:", err)
	}
	h, body, perr := proto.DecodeHeader(buf[:n])
	if perr != nil {
		t.Fatal(perr)
	}
	if h.RequestID != 77 || h.Status != proto.StatusOK {
		t.Fatalf("header %+v", h)
	}
	if string(body) != string(payload) {
		t.Fatalf("body = %q", body)
	}
}
