//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package psp

// readBurst on platforms without a usable raw recvfrom path degrades
// to single-datagram reads through the portable net package: bursts
// of one, with the same pool-exhaustion shed accounting as the unix
// fast path.
func (sh *udpShard) readBurst() (int, error) {
	b := sh.pool.Get()
	if b == nil {
		if _, _, err := sh.conn.ReadFromUDP(sh.scratch); err != nil {
			return 0, err
		}
		sh.rxSheds.Add(1)
		return 0, nil
	}
	m, from, err := sh.conn.ReadFromUDP(b.Data)
	if err != nil {
		b.Release()
		return 0, err
	}
	b.Len = m
	sh.bufs[0] = b
	sh.addrs[0] = from
	return 1, nil
}
