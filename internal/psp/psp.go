// Package psp is the live Perséphone runtime: a real, runnable
// implementation of the paper's §4 architecture on goroutines instead
// of DPDK threads. A net worker (or in-process submitters) feeds an
// ingress ring; a single dispatcher goroutine classifies requests with
// a user-provided classifier, parks them in typed queues, and runs
// DARC (shared with the simulator via internal/darc) to push work to
// application workers over single-producer/single-consumer rings;
// workers execute the application handler, transmit the response
// themselves, and signal completion back to the dispatcher.
//
// Absolute latencies are dominated by the Go runtime (see DESIGN.md);
// the package demonstrates the mechanism end-to-end, while the paper's
// quantitative figures are reproduced on the simulator.
package psp

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/classify"
	"repro/internal/darc"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/spsc"
	"repro/internal/trace"
)

// Mode selects the dispatcher's scheduling policy.
type Mode int

const (
	// ModeDARC runs the paper's policy (with its c-FCFS startup
	// window).
	ModeDARC Mode = iota
	// ModeCFCFS runs plain centralized FCFS, the paper's main
	// non-preemptive baseline.
	ModeCFCFS
	// ModeDFCFS runs decentralized FCFS: each worker owns a queue and
	// arrivals are steered uniformly at random (modelling NIC RSS, as
	// in the simulator's d-FCFS policy). Workers never share work.
	ModeDFCFS
	// ModeDARCStatic runs the paper's §5.3 manual ablation: the first
	// Config.StaticReserved workers are dedicated to the statically
	// shortest type (per Config.StaticMeans); short requests may run
	// anywhere, longer types only on the non-reserved workers.
	ModeDARCStatic
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeCFCFS:
		return "c-FCFS"
	case ModeDFCFS:
		return "d-FCFS"
	case ModeDARCStatic:
		return "DARC-static"
	}
	return "DARC"
}

// Response is the completion of one request as seen by the submitter.
// Responses returned by Submit/Call own their Payload; inside a
// Request.respond callback the payload aliases the worker's scratch
// buffer and must be serialized or copied before the callback returns.
type Response struct {
	RequestID uint64
	Type      int
	Status    proto.Status
	Payload   []byte
	// Sojourn is the server-side time from ingress to completion.
	Sojourn time.Duration
	// QueueDelay is the ingress-to-worker-start wait (0 for drops).
	QueueDelay time.Duration
	// Service is the measured handler execution time (0 for drops).
	Service time.Duration
	// RetryAfter is the admission controller's backoff hint, set only
	// on StatusOverloaded NACKs. The network responders serialize it
	// as a retry-after trailer; clients back off at least this long
	// before retrying.
	RetryAfter time.Duration
}

// Request is the unit flowing through the pipeline.
//
// respond is invoked exactly once, synchronously, from the goroutine
// that settles the request (a worker, or the dispatcher on the drop
// path). Response.Payload aliases the worker's scratch buffer and is
// only valid for the duration of the call. A respond implementation
// may take ownership of buf — the zero-copy egress path reuses the
// ingress buffer for the outgoing frame — by nilling the field; the
// settling goroutine releases buf afterwards only if it is still set.
type Request struct {
	id      uint64
	typ     int
	payload []byte
	arrival time.Duration // since server start
	respond func(Response)
	buf     *spsc.Buffer // network mode: owning ingress buffer

	// Lifecycle stamps (offsets since server start), filled as the
	// request crosses each stage; the worker completes the record and
	// publishes it as a trace.Span.
	classified time.Duration
	enqueued   time.Duration
	dispatched time.Duration

	// admitted marks a request the admission controller has counted as
	// accepted; the drop path books such requests as shed-lost so the
	// per-type conservation identity stays exact under crashes and
	// shutdown drains.
	admitted bool
}

// Handler executes application logic for a request. Implementations
// run on worker goroutines concurrently; resp is a scratch buffer the
// handler may fill with the response payload.
type Handler interface {
	Handle(typ int, payload []byte, resp []byte) (n int, status proto.Status)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(typ int, payload []byte, resp []byte) (int, proto.Status)

// Handle implements Handler.
func (f HandlerFunc) Handle(typ int, payload []byte, resp []byte) (int, proto.Status) {
	return f(typ, payload, resp)
}

// Config assembles a Server.
type Config struct {
	// Workers is the number of application worker goroutines.
	Workers int
	// Classifier types incoming payloads (required).
	Classifier classify.Classifier
	// Handler executes requests (required).
	Handler Handler
	// Mode selects the scheduling policy: DARC (default), c-FCFS,
	// d-FCFS, or DARC-static.
	Mode Mode
	// StaticMeans gives ModeDARCStatic its per-type service times
	// (index = type ID); the type with the smallest mean is the
	// "short" type the reservation protects. Required in that mode,
	// ignored otherwise.
	StaticMeans []time.Duration
	// StaticReserved is how many workers ModeDARCStatic dedicates to
	// the shortest type (0 degenerates to fixed priority). Ignored
	// outside that mode.
	StaticReserved int
	// SteerSeed seeds ModeDFCFS's per-arrival worker steering so runs
	// are reproducible (0 uses a fixed default). Ignored outside that
	// mode.
	SteerSeed uint64
	// DARC tunes the controller; zero value uses defaults with
	// MinWindowSamples lowered to 512 (live runs are shorter than the
	// paper's 50k-sample windows).
	DARC darc.Config
	// QueueCap bounds each typed queue (default 4096).
	QueueCap int
	// IngressCap bounds the ingress ring (default 8192).
	IngressCap int
	// ResponseBuf is the per-worker response scratch size (default 2048).
	ResponseBuf int
	// PinThreads locks the dispatcher and each worker goroutine to an
	// OS thread (the closest Go gets to the paper's per-core pinned
	// threads). Only useful when the host has at least Workers+2
	// cores; on oversubscribed machines it hurts.
	PinThreads bool
	// Admission enables the deadline-aware overload controller: per
	// request type an admission budget (explicit or auto-derived from
	// the DARC profiler's service-time estimates) bounds queue delay,
	// with budget violations shed at enqueue and dispatch, and
	// sustained overload trimming queues in reverse-reservation order.
	// Nil disables admission control entirely (legacy behaviour:
	// queues grow to QueueCap and overflow is answered StatusDropped).
	Admission *admission.Config
	// Faults optionally injects infrastructure misbehaviour — ingress
	// packet drop/duplication, worker stalls, slowdowns and
	// crash-respawns, delayed reservation updates — for chaos testing.
	// Nil disables injection.
	Faults *faults.Profile
	// TraceCap sets each worker's lifecycle span ring capacity
	// (default 4096, rounded up to a power of two). Negative disables
	// lifecycle tracing entirely; zero keeps the default — tracing is
	// on by default and costs nothing beyond timestamps when unread.
	TraceCap int
	// TraceSink, when non-nil, receives every span drained by
	// FlushTrace (called under the drain lock, so invocations are
	// serialized). SetTraceSink installs one after construction.
	TraceSink func(trace.Span)
}

// Server is the live runtime instance.
type Server struct {
	cfg      Config
	ctl      *darc.Controller
	adm      *admission.Controller // nil when admission is disabled
	ingress  *spsc.MPSC[*Request]
	rings    []*spsc.Ring[*Request]
	compRing *spsc.MPSC[completion]

	queues  []reqFIFO
	unknown reqFIFO
	free    []bool // worker idle, dispatcher's view

	// Live-mutable scheduling state (dispatcher-owned after Start).
	// mode starts as cfg.Mode and policy swaps replace it; modeA
	// mirrors it for cross-goroutine snapshots. active is the live
	// worker-pool size: rings/free/retiring keep their historical
	// maximum length and [0, active) is the schedulable prefix, so a
	// stale reservation can never index a retired slot's state away.
	mode     Mode
	modeA    atomic.Int64
	active   int
	activeA  atomic.Int64
	retiring []bool // worker is draining out of a shrunk pool

	// Reconfiguration control plane: ops queue under rcMu (rcPending
	// mirrors its length so the dispatcher's hot loop checks one
	// atomic), at most one op in flight at a time (pendingOp while a
	// shrink waits on retiring workers).
	rcMu      sync.Mutex
	rcOps     []*reconfigOp
	rcClosed  bool
	rcPending atomic.Int32
	pendingOp *reconfigOp

	// Reconfiguration telemetry (persephone_reconfig_* families).
	generation     atomic.Uint64
	rcApplied      atomic.Uint64
	rcRejected     atomic.Uint64
	rcPolicySwaps  atomic.Uint64
	rcResizes      atomic.Uint64
	rcMigrated     atomic.Uint64
	rcMigratedShed atomic.Uint64
	rcLastDrainNs  atomic.Int64

	// d-FCFS state: one queue per worker plus the xorshift steering
	// state (dispatcher-only).
	workerQ []reqFIFO
	steer   uint64

	// DARC-static state: type IDs sorted by ascending StaticMeans;
	// staticOrder[0] is the protected short type.
	staticOrder []int

	start   time.Time
	nextID  atomic.Uint64
	started atomic.Bool
	stopped atomic.Bool
	wg      sync.WaitGroup

	inj           *faults.Injector
	restarts      atomic.Uint64
	retriesSeen   atomic.Uint64
	resvHoldUntil time.Duration // dispatcher-only: pending delayed update

	// tcpSrv is the TCP transport bound to this server (if any); the
	// metrics exposition pulls the persephone_tcp_* families from it.
	tcpSrv atomic.Pointer[TCPServer]

	mu         sync.Mutex
	rec        *metrics.Recorder
	enqueued   uint64
	dispatched uint64
	dropped    uint64

	// Lifecycle tracing: each worker publishes completed-request spans
	// into its own fixed-capacity SPSC ring; the stats path drains them
	// under traceMu into per-type histograms (and the optional sink),
	// so the hot path never allocates or takes a lock for tracing.
	traceRings  []*spsc.Ring[trace.Span]
	traceCap    int // per-ring span capacity, for rings added on grow
	traceLost   atomic.Uint64
	traceMu     sync.Mutex
	traceSink   func(trace.Span)
	spanCount   uint64
	queueDelayH []metrics.Histogram // per type, last entry = unknown
	serviceH    []metrics.Histogram
	slowdownH   []metrics.Histogram // scaled by metrics.SlowdownScale
	typeNames   []string            // per type, last entry = "unknown"
}

type completion struct {
	worker  int
	typ     int
	service time.Duration
	sojourn time.Duration
	queue   time.Duration
	// respawn marks a crashed worker coming back to life: the slot is
	// freed without feeding the profiler.
	respawn bool
}

// NewServer validates the configuration and builds a stopped server.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		return nil, errors.New("psp: config needs Workers > 0")
	}
	if cfg.Classifier == nil {
		return nil, errors.New("psp: config needs a Classifier")
	}
	if cfg.Handler == nil {
		return nil, errors.New("psp: config needs a Handler")
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4096
	}
	if cfg.IngressCap <= 0 {
		cfg.IngressCap = 8192
	}
	if cfg.ResponseBuf <= 0 {
		cfg.ResponseBuf = 2048
	}
	dcfg := cfg.DARC
	if dcfg.Workers == 0 {
		dcfg = darc.DefaultConfig(cfg.Workers)
		dcfg.MinWindowSamples = 512
	}
	dcfg.Workers = cfg.Workers
	if dcfg.Spillway >= cfg.Workers {
		dcfg.Spillway = 0
	}
	numTypes := cfg.Classifier.NumTypes()
	if numTypes <= 0 {
		return nil, fmt.Errorf("psp: classifier %q declares %d types", cfg.Classifier.Name(), numTypes)
	}
	if cfg.Mode == ModeDARCStatic {
		if len(cfg.StaticMeans) != numTypes {
			return nil, fmt.Errorf("psp: DARC-static needs %d StaticMeans, got %d", numTypes, len(cfg.StaticMeans))
		}
		if cfg.StaticReserved < 0 || cfg.StaticReserved > cfg.Workers {
			return nil, fmt.Errorf("psp: DARC-static reserved %d out of range for %d workers", cfg.StaticReserved, cfg.Workers)
		}
	}
	ctl, err := darc.NewController(dcfg, numTypes)
	if err != nil {
		return nil, err
	}
	var inj *faults.Injector
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, err
		}
		inj = faults.New(*cfg.Faults, cfg.Workers)
	}
	var adm *admission.Controller
	if cfg.Admission != nil {
		adm = admission.New(*cfg.Admission, numTypes, ctl.MeanService)
	}
	s := &Server{
		cfg:      cfg,
		ctl:      ctl,
		adm:      adm,
		inj:      inj,
		ingress:  spsc.NewMPSC[*Request](cfg.IngressCap),
		compRing: spsc.NewMPSC[completion](cfg.IngressCap),
		queues:   make([]reqFIFO, numTypes),
		unknown:  reqFIFO{},
		free:     make([]bool, cfg.Workers),
		rec:      metrics.NewRecorder(numTypes, nil),
	}
	for i := range s.queues {
		s.queues[i].cap = cfg.QueueCap
	}
	s.unknown.cap = cfg.QueueCap
	s.mode = cfg.Mode
	s.modeA.Store(int64(cfg.Mode))
	s.active = cfg.Workers
	s.activeA.Store(int64(cfg.Workers))
	s.retiring = make([]bool, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		s.rings = append(s.rings, spsc.NewRing[*Request](8))
		s.free[i] = true
	}
	s.steer = cfg.SteerSeed
	if s.steer == 0 {
		s.steer = 0x9E3779B97F4A7C15
	}
	switch cfg.Mode {
	case ModeDFCFS:
		s.ensureWorkerQ()
	case ModeDARCStatic:
		s.staticOrder = staticOrderFor(cfg.StaticMeans, numTypes)
	}
	if cfg.TraceCap >= 0 {
		capSpans := cfg.TraceCap
		if capSpans == 0 {
			capSpans = 4096
		}
		s.traceCap = capSpans
		s.traceRings = make([]*spsc.Ring[trace.Span], cfg.Workers)
		for i := range s.traceRings {
			s.traceRings[i] = spsc.NewRing[trace.Span](capSpans)
		}
		s.queueDelayH = make([]metrics.Histogram, numTypes+1)
		s.serviceH = make([]metrics.Histogram, numTypes+1)
		s.slowdownH = make([]metrics.Histogram, numTypes+1)
		s.typeNames = append(s.rec.TypeNames(), "unknown")
		s.traceSink = cfg.TraceSink
	}
	return s, nil
}

// Start launches the dispatcher and worker goroutines.
func (s *Server) Start() {
	s.start = time.Now()
	s.started.Store(true)
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.workerLoop(i, s.rings[i], s.traceRingFor(i))
	}
	s.wg.Add(1)
	go s.dispatcherLoop()
}

// traceRingFor returns worker w's span ring (nil when tracing is off).
func (s *Server) traceRingFor(w int) *spsc.Ring[trace.Span] {
	if s.traceRings == nil || w >= len(s.traceRings) {
		return nil
	}
	return s.traceRings[w]
}

// Stop shuts the pipeline down and waits for goroutines to exit.
// In-flight requests are completed; queued requests are answered with
// StatusDropped.
func (s *Server) Stop() {
	if s.stopped.Swap(true) {
		return
	}
	s.wg.Wait()
	// Workers are gone: whatever spans they published are final.
	s.FlushTrace()
}

// Controller exposes the DARC controller (reservation snapshots,
// update counts).
func (s *Server) Controller() *darc.Controller { return s.ctl }

// Injector exposes the fault injector (nil when no fault profile is
// configured; the nil injector injects nothing).
func (s *Server) Injector() *faults.Injector { return s.inj }

// Admission exposes the admission controller (nil when admission
// control is disabled).
func (s *Server) Admission() *admission.Controller { return s.adm }

// noteRetry counts a client retransmission observed at ingress
// (requests whose header carries a non-zero attempt number).
func (s *Server) noteRetry() { s.retriesSeen.Add(1) }

// now reports the time since server start (the recorder's clock).
func (s *Server) now() time.Duration { return time.Since(s.start) }

// Submit injects a request in-process and returns a channel carrying
// its single response. It fails if the server is stopped or the
// ingress ring is full (open-loop backpressure).
func (s *Server) Submit(payload []byte) (<-chan Response, error) {
	if s.stopped.Load() {
		return nil, ErrServerStopped
	}
	ch := make(chan Response, 1)
	r := &Request{
		id:      s.nextID.Add(1),
		payload: payload,
		arrival: s.now(),
		respond: func(resp Response) {
			// The payload aliases the worker's scratch buffer and is
			// only valid for the duration of the respond call; copy it
			// before handing the response to the waiting goroutine.
			resp.Payload = append([]byte(nil), resp.Payload...)
			ch <- resp
		},
	}
	if !s.ingress.TryPut(r) {
		return nil, fmt.Errorf("psp: ingress ring full: %w", ErrPoolExhausted)
	}
	return ch, nil
}

// Call is Submit plus waiting for the response. A response shed by
// admission control is returned alongside ErrOverloaded (the Response
// still carries the RetryAfter hint).
func (s *Server) Call(payload []byte) (Response, error) {
	ch, err := s.Submit(payload)
	if err != nil {
		return Response{}, err
	}
	resp := <-ch
	if resp.Status == proto.StatusOverloaded {
		return resp, ErrOverloaded
	}
	return resp, nil
}

// injectBatch places a burst of externally built requests on the
// ingress ring, amortizing the arrival timestamp, the ID allocation
// (one atomic add for the burst) and the ring synchronization (one
// head reservation) across the batch. It returns how many requests
// were accepted — always a prefix of batch; the caller owns the
// rejected tail (and its buffers).
func (s *Server) injectBatch(batch []*Request) int {
	if s.stopped.Load() || len(batch) == 0 {
		return 0
	}
	now := s.now()
	base := s.nextID.Add(uint64(len(batch))) - uint64(len(batch))
	for i, r := range batch {
		r.id = base + uint64(i) + 1
		r.arrival = now
	}
	return s.ingress.TryPutBatch(batch)
}

// dispatcherLoop is the single thread of control for classification,
// typed queues, DARC and worker handoff.
func (s *Server) dispatcherLoop() {
	defer s.wg.Done()
	if s.cfg.PinThreads {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	idleSpins := 0
	for {
		progress := false
		// 0. Control plane: begin the next reconfiguration, one at a
		// time — an op waiting on retiring workers blocks later ops so
		// every spec applies against a settled pool.
		if s.pendingOp == nil && s.rcPending.Load() > 0 {
			s.beginOp(s.takeOp())
			progress = true
		}
		// 1. Completions: free workers and feed the profiler.
		for {
			c, ok := s.compRing.TryGet()
			if !ok {
				break
			}
			progress = true
			if !c.respawn {
				s.ctl.Observe(c.typ, c.service)
				if s.adm != nil {
					s.adm.NoteCompleted(c.typ)
				}
				if s.mode == ModeDARC {
					s.maybeUpdateReservation()
				}
				s.record(c)
			}
			if s.retiring[c.worker] {
				// A retiring worker's final act: its completion (real
				// or respawn) is booked above, then the slot gets its
				// shutdown sentinel instead of returning to the free
				// set. The goroutine exits on consuming it.
				s.retiring[c.worker] = false
				s.rings[c.worker].Put(nil)
				if s.pendingOp != nil {
					s.pendingOp.retireLeft--
				}
				continue
			}
			s.free[c.worker] = true
		}
		// 1b. A pending shrink completes once its last retiree drained.
		if op := s.pendingOp; op != nil && op.retireLeft == 0 {
			s.finishOp(op)
			progress = true
		}
		// 2. Ingress: classify and enqueue.
		for {
			r, ok := s.ingress.TryGet()
			if !ok {
				break
			}
			progress = true
			r.typ = s.cfg.Classifier.Classify(r.payload)
			r.classified = s.now()
			s.enqueue(r)
		}
		// 2b. Sustained overload (queue-delay EWMA above threshold):
		// shed queued work in reverse-reservation order — the unknown
		// spillway first, then typed queues from the longest profiled
		// mean down to the shortest — so short-type reservations are
		// the last thing sacrificed (DESIGN.md §9).
		if s.adm != nil && s.adm.Overloaded() && s.shedOverloaded() {
			progress = true
		}
		// 3. Dispatch.
		if s.dispatch() {
			progress = true
		}
		if s.stopped.Load() {
			s.drainAndShutdown()
			return
		}
		if progress {
			idleSpins = 0
			continue
		}
		idleSpins++
		switch {
		case idleSpins < 64:
		case idleSpins < 192:
			runtime.Gosched()
		default:
			// A real Perséphone busy-polls a dedicated core; on an
			// oversubscribed host we park briefly once clearly idle.
			// The yield window above is deliberately short: each
			// Gosched is a full scheduler pass, and with more
			// goroutines than cores a long yield storm here steals
			// the CPU from the producers the dispatcher is waiting on.
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// maybeUpdateReservation runs the DARC update check, holding it back
// by the injected reservation delay when a chaos profile asks for a
// laggy control plane. Dispatcher-only.
func (s *Server) maybeUpdateReservation() {
	d := s.inj.ReservationDelay()
	if d <= 0 {
		s.ctl.MaybeUpdate()
		return
	}
	now := s.now()
	if s.resvHoldUntil == 0 {
		s.resvHoldUntil = now + d
		return
	}
	if now >= s.resvHoldUntil {
		s.ctl.MaybeUpdate()
		s.resvHoldUntil = 0
	}
}

func (s *Server) enqueue(r *Request) {
	if s.adm != nil {
		// Every classified request enters the admission ledger before
		// any check can refuse it, so the per-type identity
		// accepted == completed + shed_deadline + shed_overload (+ lost)
		// is exact by construction.
		s.adm.NoteAccepted(r.typ)
		r.admitted = true
		if waited := s.now() - r.arrival; s.adm.ExceedsBudget(r.typ, waited) {
			s.adm.ObserveQueueDelay(waited)
			s.shed(r, admission.ShedDeadline)
			return
		}
	}
	q := &s.unknown
	if s.mode == ModeDFCFS {
		// d-FCFS steers each arrival to one worker's private queue,
		// type notwithstanding (RSS hashes flows, not request types).
		q = &s.workerQ[s.steerNext()]
	} else if r.typ >= 0 && r.typ < len(s.queues) {
		q = &s.queues[r.typ]
	}
	r.enqueued = s.now()
	if !q.push(r) {
		if s.adm != nil {
			// With admission enabled a full queue is an overload
			// signal, not a silent drop: the client gets a NACK with a
			// retry-after hint instead of StatusDropped.
			s.shed(r, admission.ShedOverload)
			return
		}
		s.drop(r)
		return
	}
	s.mu.Lock()
	s.enqueued++
	s.mu.Unlock()
}

// steerNext draws the next d-FCFS worker assignment from a seeded
// xorshift64 stream (dispatcher-only, deterministic per SteerSeed).
func (s *Server) steerNext() int {
	x := s.steer
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.steer = x
	return int(x % uint64(s.active))
}

// shed refuses a request under admission control: the submitter gets
// a typed NACK (StatusOverloaded) carrying the controller's
// retry-after hint, and the refusal is booked under its reason.
// Sheds are intentionally not counted in the legacy dropped counter
// or the recorder's drop families — they are a distinct, accounted
// outcome with their own persephone_admission_* metrics.
func (s *Server) shed(r *Request, reason admission.ShedReason) {
	s.adm.NoteShed(r.typ, reason)
	if r.respond != nil {
		r.respond(Response{
			RequestID:  r.id,
			Type:       r.typ,
			Status:     proto.StatusOverloaded,
			RetryAfter: s.adm.RetryAfter(),
		})
	}
	if r.buf != nil {
		r.buf.Release()
	}
}

// shedOverloaded is the reverse-reservation overload trim: drain the
// unknown spillway entirely, then cut each typed queue — longest
// profiled mean first — down to the backlog its admission budget can
// absorb. Short types (the head of DispatchOrder) are trimmed last
// and always keep at least one queued request. d-FCFS worker queues
// are exempt (deadline shedding still applies at dispatch): with
// per-worker steering there is no central queue whose order encodes
// reservations to protect.
func (s *Server) shedOverloaded() bool {
	shedAny := false
	for r := s.unknown.pop(); r != nil; r = s.unknown.pop() {
		s.shed(r, admission.ShedOverload)
		shedAny = true
	}
	order := s.ctl.DispatchOrder() // ascending profiled mean
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		q := &s.queues[t]
		keep := s.adm.BacklogCap(t)
		for q.count > keep {
			s.shed(q.pop(), admission.ShedOverload)
			shedAny = true
		}
	}
	return shedAny
}

// popAdmit pops the next request from q for dispatch, shedding heads
// whose queue delay has outrun their admission budget while they
// waited. Returns the first admissible request (nil if the queue
// drained) and whether anything was shed.
func (s *Server) popAdmit(q *reqFIFO) (*Request, bool) {
	shedAny := false
	for {
		r := q.pop()
		if r == nil {
			return nil, shedAny
		}
		if s.adm != nil {
			if waited := s.now() - r.arrival; s.adm.ExceedsBudget(r.typ, waited) {
				s.adm.ObserveQueueDelay(waited)
				s.shed(r, admission.ShedDeadline)
				shedAny = true
				continue
			}
		}
		return r, shedAny
	}
}

func (s *Server) drop(r *Request) {
	if r.admitted {
		// An accepted request that dies without a worker completion
		// (crash, shutdown drain) still closes its admission ledger
		// entry, as shed-lost.
		s.adm.NoteShed(r.typ, admission.ShedLost)
	}
	s.mu.Lock()
	s.dropped++
	s.rec.Drop(r.typ, r.arrival)
	s.mu.Unlock()
	if r.respond != nil {
		r.respond(Response{RequestID: r.id, Type: r.typ, Status: proto.StatusDropped})
	}
	if r.buf != nil {
		r.buf.Release()
	}
}

func (s *Server) record(c completion) {
	s.mu.Lock()
	s.rec.Complete(c.typ, s.now()-c.sojourn, s.now(), c.service, s.now()-c.sojourn+c.queue, 0)
	s.mu.Unlock()
}

// dispatch pushes eligible queued requests to free workers; reports
// whether anything moved.
func (s *Server) dispatch() bool {
	moved := false
	switch {
	case s.mode == ModeDFCFS:
		for s.dispatchDFCFS() {
			moved = true
		}
	case s.mode == ModeDARCStatic:
		for s.dispatchDARCStatic() {
			moved = true
		}
	case s.mode == ModeCFCFS, s.ctl.Reservation() == nil:
		for s.dispatchFCFS() {
			moved = true
		}
	default:
		for s.dispatchDARC() {
			moved = true
		}
	}
	return moved
}

// dispatchDFCFS hands each free worker the head of its own queue;
// workers never share work (uncontrolled non-work-conservation).
func (s *Server) dispatchDFCFS() bool {
	moved := false
	for w := 0; w < s.active; w++ {
		if !s.free[w] || s.workerQ[w].empty() {
			continue
		}
		r, shedAny := s.popAdmit(&s.workerQ[w])
		if shedAny {
			moved = true
		}
		if r == nil {
			continue
		}
		s.handoff(w, r)
		moved = true
	}
	return moved
}

// dispatchDARCStatic scans typed queues in ascending static-mean order:
// the shortest type runs on any free worker, every other type (and the
// unknown queue, last) only on workers at or above StaticReserved —
// mirroring the simulator's DARCStatic policy.
func (s *Server) dispatchDARCStatic() bool {
	moved := false
	for _, t := range s.staticOrder {
		q := &s.queues[t]
		if q.empty() {
			continue
		}
		lo := s.cfg.StaticReserved
		if t == s.staticOrder[0] {
			lo = 0
		}
		w := s.firstFreeFrom(lo)
		if w < 0 {
			continue
		}
		r, shedAny := s.popAdmit(q)
		if shedAny {
			moved = true
		}
		if r == nil {
			continue
		}
		s.handoff(w, r)
		moved = true
	}
	if !s.unknown.empty() {
		if w := s.firstFreeFrom(s.cfg.StaticReserved); w >= 0 {
			r, shedAny := s.popAdmit(&s.unknown)
			if shedAny {
				moved = true
			}
			if r != nil {
				s.handoff(w, r)
				moved = true
			}
		}
	}
	return moved
}

// firstFreeFrom returns the lowest free worker with ID >= lo, or -1.
func (s *Server) firstFreeFrom(lo int) int {
	for w := lo; w < s.active; w++ {
		if s.free[w] {
			return w
		}
	}
	return -1
}

func (s *Server) dispatchFCFS() bool {
	w := s.anyFree()
	if w < 0 {
		return false
	}
	var q *reqFIFO
	for i := range s.queues {
		if head := s.queues[i].peek(); head != nil {
			if q == nil || head.arrival < q.peek().arrival {
				q = &s.queues[i]
			}
		}
	}
	if head := s.unknown.peek(); head != nil && (q == nil || head.arrival < q.peek().arrival) {
		q = &s.unknown
	}
	if q == nil {
		return false
	}
	r, shedAny := s.popAdmit(q)
	if r == nil {
		return shedAny
	}
	s.handoff(w, r)
	return true
}

func (s *Server) dispatchDARC() bool {
	res := s.ctl.Reservation()
	moved := false
	for _, t := range s.ctl.DispatchOrder() {
		q := &s.queues[t]
		if q.empty() {
			continue
		}
		w := s.firstFree(res.ReservedFor(t), res.StealableFor(t))
		if w < 0 {
			continue
		}
		r, shedAny := s.popAdmit(q)
		if shedAny {
			moved = true
		}
		if r == nil {
			continue
		}
		s.handoff(w, r)
		moved = true
	}
	if !s.unknown.empty() {
		w := s.firstFree(res.SpillwayWorkers, nil)
		if w < 0 && len(res.SpillwayWorkers) == 0 {
			// No designated spillway cores (Spillway=0 or single-worker
			// configs): unclassifiable requests must still drain, so
			// serve them on any free worker at lowest priority — after
			// every typed queue has had its chance — instead of
			// starving the unknown queue until shutdown.
			w = s.anyFree()
		}
		if w >= 0 {
			r, shedAny := s.popAdmit(&s.unknown)
			if shedAny {
				moved = true
			}
			if r != nil {
				s.handoff(w, r)
				moved = true
			}
		}
	}
	return moved
}

func (s *Server) anyFree() int {
	for i := 0; i < s.active; i++ {
		if s.free[i] {
			return i
		}
	}
	return -1
}

// firstFree picks the first free worker from the reservation's lists.
// The id < active bound guards against a stale reservation referencing
// workers a shrink has already retired (possible when the controller
// had no profile to recompute from at resize time).
func (s *Server) firstFree(reserved, stealable []int) int {
	for _, id := range reserved {
		if id < s.active && s.free[id] {
			return id
		}
	}
	for _, id := range stealable {
		if id < s.active && s.free[id] {
			return id
		}
	}
	return -1
}

func (s *Server) handoff(w int, r *Request) {
	r.dispatched = s.now()
	delay := r.dispatched - r.arrival
	s.ctl.NoteQueueDelay(r.typ, delay)
	if s.adm != nil {
		s.adm.ObserveQueueDelay(delay)
	}
	s.free[w] = false
	s.mu.Lock()
	s.dispatched++
	s.mu.Unlock()
	s.rings[w].Put(r)
}

// drainAndShutdown answers queued requests with drops and unblocks
// workers with sentinels. Pending and queued reconfigurations fail
// with ErrServerStopped so no Reconfigure caller is left hanging.
func (s *Server) drainAndShutdown() {
	s.rcMu.Lock()
	s.rcClosed = true
	ops := s.rcOps
	s.rcOps = nil
	s.rcPending.Store(0)
	s.rcMu.Unlock()
	if op := s.pendingOp; op != nil {
		s.pendingOp = nil
		op.err = ErrServerStopped
		close(op.done)
	}
	for _, op := range ops {
		op.err = ErrServerStopped
		close(op.done)
	}
	for {
		r, ok := s.ingress.TryGet()
		if !ok {
			break
		}
		r.typ = classify.Unknown
		s.drop(r)
	}
	for i := range s.queues {
		for r := s.queues[i].pop(); r != nil; r = s.queues[i].pop() {
			s.drop(r)
		}
	}
	for i := range s.workerQ {
		for r := s.workerQ[i].pop(); r != nil; r = s.workerQ[i].pop() {
			s.drop(r)
		}
	}
	for r := s.unknown.pop(); r != nil; r = s.unknown.pop() {
		s.drop(r)
	}
	for _, ring := range s.rings {
		ring.Put(nil) // shutdown sentinel
	}
}

// workerLoop executes requests and transmits responses directly (the
// paper's workers own TX). The request and span rings are passed by
// value: a slot reactivated after retirement gets a fresh request
// ring, and binding the pair at spawn keeps the SPSC single-consumer
// discipline even while the previous tenant is still consuming its
// own sentinel.
func (s *Server) workerLoop(id int, ring *spsc.Ring[*Request], traceRing *spsc.Ring[trace.Span]) {
	defer s.wg.Done()
	if s.cfg.PinThreads {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	scratch := make([]byte, s.cfg.ResponseBuf)
	for {
		r := ring.Get()
		if r == nil {
			return // shutdown sentinel
		}
		if d := s.inj.WorkerStall(id); d > 0 {
			time.Sleep(d)
		}
		if s.inj.WorkerCrash(id) {
			// The worker dies mid-request: the request is answered as
			// dropped (a reset, from the client's view), the slot stays
			// busy until a replacement respawns, and this goroutine
			// exits.
			s.drop(r)
			s.restarts.Add(1)
			s.wg.Add(1)
			go s.respawnWorker(id, ring, traceRing)
			return
		}
		startDur := s.now()
		queueDelay := startDur - r.arrival
		t0 := time.Now()
		n, status := s.cfg.Handler.Handle(r.typ, r.payload, scratch)
		service := time.Since(t0)
		if extra := s.inj.WorkerSlowdown(id, service); extra > 0 {
			time.Sleep(extra)
			service += extra
		}
		finished := s.now()
		if n < 0 {
			n = 0
		}
		if n > len(scratch) {
			n = len(scratch)
		}
		if r.respond != nil {
			// Payload aliases the worker's scratch buffer: respond
			// implementations either serialize it onto the wire before
			// returning (the network paths) or copy it (Submit). This
			// keeps the transmit path allocation-free.
			r.respond(Response{
				RequestID:  r.id,
				Type:       r.typ,
				Status:     status,
				Payload:    scratch[:n],
				Sojourn:    s.now() - r.arrival,
				QueueDelay: queueDelay,
				Service:    service,
			})
		}
		if r.buf != nil {
			r.buf.Release()
		}
		s.traceSpan(traceRing, id, r, startDur, finished, s.now())
		s.putCompletion(completion{
			worker:  id,
			typ:     r.typ,
			service: service,
			sojourn: s.now() - r.arrival,
			queue:   queueDelay,
		})
	}
}

// respawnWorker brings a crashed worker slot back after the injected
// respawn delay. The replacement announces itself with a respawn
// completion so the dispatcher frees the slot only once the worker is
// actually consuming its ring again. It inherits the crashed tenant's
// rings: the slot was never retired, so the consumer seat is vacant.
func (s *Server) respawnWorker(id int, ring *spsc.Ring[*Request], traceRing *spsc.Ring[trace.Span]) {
	time.Sleep(s.inj.RespawnDelay())
	s.putCompletion(completion{worker: id, respawn: true})
	s.workerLoop(id, ring, traceRing)
}

// putCompletion delivers a completion to the dispatcher, spinning if
// the ring is momentarily full — losing one would leak the worker slot
// (the dispatcher would consider it busy forever).
func (s *Server) putCompletion(c completion) {
	for !s.compRing.TryPut(c) {
		runtime.Gosched()
	}
}

// Stats is a point-in-time snapshot of server metrics.
type Stats struct {
	Enqueued   uint64
	Dispatched uint64
	Dropped    uint64
	Updates    uint64
	// FaultsInjected counts faults created by the chaos layer (0
	// without a fault profile).
	FaultsInjected uint64
	// WorkerRestarts counts injected crash-then-respawn cycles.
	WorkerRestarts uint64
	// RetriesSeen counts client retransmissions observed at ingress.
	RetriesSeen uint64
	// TraceSpans counts lifecycle spans drained from worker rings.
	TraceSpans uint64
	// TraceLost counts spans dropped because a worker's trace ring was
	// full between drains.
	TraceLost uint64
	// Admission is the admission controller's ledger snapshot (nil
	// when admission control is disabled). Slots[NumTypes] is the
	// unknown/unclassified slot.
	Admission *admission.Stats
	Summaries []metrics.Summary
}

// StatsSnapshot copies the current counters and per-type summaries,
// draining any pending lifecycle spans first.
func (s *Server) StatsSnapshot() Stats {
	s.FlushTrace()
	spans, lost := s.traceCounts()
	var adm *admission.Stats
	if s.adm != nil {
		snap := s.adm.Snapshot()
		adm = &snap
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Admission:      adm,
		Enqueued:       s.enqueued,
		Dispatched:     s.dispatched,
		Dropped:        s.dropped,
		Updates:        s.ctl.Updates(),
		FaultsInjected: s.inj.Total(),
		WorkerRestarts: s.restarts.Load(),
		RetriesSeen:    s.retriesSeen.Load(),
		TraceSpans:     spans,
		TraceLost:      lost,
		Summaries:      s.rec.Summarize(),
	}
}

// TypeSlowdown reports the p-quantile slowdown for one type.
func (s *Server) TypeSlowdown(typ int, q float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return metrics.SlowdownAt(s.rec.Type(typ), q)
}

// reqFIFO is a bounded queue of requests (dispatcher-local, no
// locking needed).
type reqFIFO struct {
	buf   []*Request
	head  int
	count int
	cap   int
}

func (q *reqFIFO) empty() bool { return q.count == 0 }

func (q *reqFIFO) push(r *Request) bool {
	if q.cap > 0 && q.count >= q.cap {
		return false
	}
	if q.count == len(q.buf) {
		size := len(q.buf) * 2
		if size == 0 {
			size = 16
		}
		buf := make([]*Request, size)
		for i := 0; i < q.count; i++ {
			buf[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf = buf
		q.head = 0
	}
	q.buf[(q.head+q.count)%len(q.buf)] = r
	q.count++
	return true
}

func (q *reqFIFO) pop() *Request {
	if q.count == 0 {
		return nil
	}
	r := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	return r
}

func (q *reqFIFO) peek() *Request {
	if q.count == 0 {
		return nil
	}
	return q.buf[q.head]
}
