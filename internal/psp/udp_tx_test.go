package psp_test

// Egress-ring overflow on the sharded UDP datapath: when a completing
// worker finds the per-shard TX ring full it must transmit the
// response inline (never block, never drop), and the bypass is counted
// in TxRingFull so operators can size the ring.

import (
	"net"
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/psp"
)

// TestUDPTxRingFullInlineFallback drives bursts through a shard with a
// one-slot TX ring: back-to-back completions collide on the slot
// before the TX goroutine drains it, so the inline fallback must fire
// (TxRingFull > 0) while every burst still gets answered.
func TestUDPTxRingFullInlineFallback(t *testing.T) {
	u := newShardedServer(t, psp.UDPOptions{Shards: 1, Burst: 32, TXRing: 1},
		psp.HandlerFunc(echoHandler))
	conn, err := net.DialUDP("udp", nil, u.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const burst = 32
	deadline := time.Now().Add(5 * time.Second)
	id := uint64(0)
	for u.TxRingFull() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no TX-ring bypass after %d requests against a 1-slot ring (rx %d)",
				id, u.Received())
		}
		for i := 0; i < burst; i++ {
			id++
			msg := proto.AppendMessage(nil, proto.Header{
				Kind:      proto.KindRequest,
				RequestID: id,
			}, typedPayloadX(0, "txburst"))
			conn.Write(msg) //nolint:errcheck
		}
		// Drain whatever replies are in: the client socket buffer must
		// not overflow while the loop hunts for a collision.
		conn.SetReadDeadline(time.Now().Add(20 * time.Millisecond)) //nolint:errcheck
		buf := make([]byte, 2048)
		for {
			if _, err := conn.Read(buf); err != nil {
				break
			}
		}
	}
	// The bypass fired; one more request must still round-trip, and
	// its reply must decode as a well-formed response.
	id++
	msg := proto.AppendMessage(nil, proto.Header{
		Kind:      proto.KindRequest,
		RequestID: id,
	}, typedPayloadX(1, "after-bypass"))
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	buf := make([]byte, 2048)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatalf("no reply after TX-ring bypass: %v", err)
		}
		hdr, _, derr := proto.DecodeHeader(buf[:n])
		if derr != nil || hdr.Kind != proto.KindResponse {
			t.Fatalf("bad response frame: %v", derr)
		}
		if hdr.RequestID == id {
			if hdr.Status != proto.StatusOK {
				t.Fatalf("status %v after bypass", hdr.Status)
			}
			break
		}
		// A straggler from the hunt bursts; keep reading.
	}
}
