package psp

// Conservation battery for the pipelined TCP datapath: every frame a
// client sends is accounted for exactly once — answered (any status),
// shed with StatusDropped, dropped at ingress, or eaten by the chaos
// layer — per connection and globally, under randomized connection
// counts, pipeline depths, and fault seeds. Run under -race in CI.

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/faults"
	"repro/internal/proto"
	"repro/internal/rng"
)

// connTally is what one connection's reader observed.
type connTally struct {
	replies uint64
	foreign uint64 // responses to IDs this connection never sent
	perID   map[uint64]int
}

// runTCPConservation opens conns pipelined connections, pushes n
// requests per connection with at most depth outstanding (a reply of
// any status releases a slot; chaos-eaten requests are released by a
// straggler timeout so the window cannot wedge), waits for the server
// to go quiet, closes it — the graceful drain answers everything still
// inside the pipeline — and returns the per-connection tallies.
func runTCPConservation(t *testing.T, ts *TCPServer, conns, depth, n int) []*connTally {
	t.Helper()
	tallies := make([]*connTally, conns)
	var sendWG, readWG sync.WaitGroup
	for ci := 0; ci < conns; ci++ {
		tally := &connTally{perID: map[uint64]int{}}
		tallies[ci] = tally
		conn, err := net.Dial("tcp", ts.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		base := uint64(ci+1) << 32
		sem := make(chan struct{}, depth)
		readWG.Add(1)
		go func(ci int) {
			defer readWG.Done()
			rd := bufio.NewReaderSize(conn, 1<<16)
			var sc FrameScanner
			chunk := make([]byte, 32*1024)
			for {
				m, err := rd.Read(chunk)
				if m > 0 {
					perr := sc.Push(chunk[:m], func(frame []byte) error {
						hdr, _, derr := proto.DecodeHeader(frame)
						if derr != nil || hdr.Kind != proto.KindResponse {
							return fmt.Errorf("bad response frame: %v", derr)
						}
						if hdr.RequestID>>32 != uint64(ci+1) {
							tally.foreign++
						}
						tally.perID[hdr.RequestID]++
						tally.replies++
						select {
						case <-sem:
						default: // duplicate reply: no slot held
						}
						return nil
					})
					if perr != nil {
						t.Error(perr)
						return
					}
				}
				if err != nil {
					return // EOF after the server's drain
				}
			}
		}(ci)
		sendWG.Add(1)
		go func() {
			defer sendWG.Done()
			var out []byte
			for i := 0; i < n; i++ {
				// A chaos-eaten request never replies; time out the
				// window slot so the sender cannot wedge.
				select {
				case sem <- struct{}{}:
				case <-time.After(200 * time.Millisecond):
				}
				out = appendRequestFrame(out[:0], base|uint64(i+1), 0, typedPayload(i%2, "conserve"))
				if _, err := conn.Write(out); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	// Senders finish, stragglers settle (no ingress-counter movement
	// for a while means every sent frame has been read and bucketed),
	// then the drain answers the backlog and the readers see EOF.
	sendWG.Wait()
	var last uint64
	for idle := 0; idle < 20; { // 20 * 10ms with no ingress movement
		time.Sleep(10 * time.Millisecond)
		now := ts.Received() + ts.RxDrops() + ts.RxSheds()
		if now == last {
			idle++
		} else {
			last, idle = now, 0
		}
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	readWG.Wait()
	return tallies
}

func TestTCPPipelinedConservation(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rng.New(seed)
			conns := 1 + int(r.Uint64()%4)
			depth := 1 + int(r.Uint64()%32)
			n := 100 + int(r.Uint64()%150)
			srv, err := NewServer(Config{
				Workers:    2,
				Classifier: classify.Field{Offset: 0, Types: 2},
				Handler: HandlerFunc(func(typ int, p, rr []byte) (int, proto.Status) {
					return copy(rr, p), proto.StatusOK
				}),
				Mode:     ModeCFCFS,
				TraceCap: -1,
				Faults:   &faults.Profile{Seed: seed, DropRate: 0.05, DupRate: 0.05},
			})
			if err != nil {
				t.Fatal(err)
			}
			ts, err := ListenTCP("127.0.0.1:0", srv)
			if err != nil {
				t.Fatal(err)
			}
			defer ts.Close()

			tallies := runTCPConservation(t, ts, conns, depth, n)

			var replies, foreign uint64
			for ci, tally := range tallies {
				replies += tally.replies
				foreign += tally.foreign
				for id, c := range tally.perID {
					// A request replies at most once, plus once more per
					// chaos duplicate sharing its ID; three dups of one
					// frame is implausible at a 5% rate and this scale.
					if c > 3 {
						t.Errorf("conn %d: request %#x answered %d times", ci, id, c)
					}
				}
				if tally.replies > uint64(n)*2 {
					t.Errorf("conn %d: %d replies for %d sends", ci, tally.replies, n)
				}
			}
			if foreign != 0 {
				t.Fatalf("%d responses crossed connections", foreign)
			}

			// Global conservation. Every accepted or shed frame produces
			// exactly one reply:
			//   replies == rx + sheds
			// and every sent frame (plus injected duplicates) lands in
			// exactly one bucket:
			//   sent + dups == rx + sheds + rxDrops + chaosDrops
			sent := uint64(conns * n)
			cnt := srv.inj.Counts()
			rx, sheds, drops := ts.Received(), ts.RxSheds(), ts.RxDrops()
			if replies != rx+sheds {
				t.Fatalf("replies %d != rx %d + sheds %d", replies, rx, sheds)
			}
			if sent+cnt.Dups != rx+sheds+drops+cnt.Drops {
				t.Fatalf("sent %d + dups %d != rx %d + sheds %d + rxDrops %d + chaosDrops %d",
					sent, cnt.Dups, rx, sheds, drops, cnt.Drops)
			}
			if ts.poolOutstanding() != 0 {
				t.Fatalf("%d pooled buffers leaked", ts.poolOutstanding())
			}
		})
	}
}

// TestTCPConservationNoFaults is the exact variant: with no chaos and
// a bounded window, every request is answered exactly once.
func TestTCPConservationNoFaults(t *testing.T) {
	ts := newTCPServerOpts(t, TCPOptions{}, nil)
	const conns, depth, n = 3, 16, 200
	tallies := runTCPConservation(t, ts, conns, depth, n)
	for ci, tally := range tallies {
		if tally.replies != n {
			t.Errorf("conn %d: %d replies, want %d", ci, tally.replies, n)
		}
		if tally.foreign != 0 {
			t.Errorf("conn %d: %d foreign responses", ci, tally.foreign)
		}
		for id, c := range tally.perID {
			if c != 1 {
				t.Errorf("conn %d: request %#x answered %d times", ci, id, c)
			}
		}
	}
}
