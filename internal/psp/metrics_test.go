package psp

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestWriteMetrics(t *testing.T) {
	srv := newEchoServer(t, 2, ModeDARC)
	for i := 0; i < 50; i++ {
		if _, err := srv.Call(typedPayload(i%2, "m")); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := srv.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"persephone_requests_total",
		"persephone_dispatched_total",
		"persephone_dropped_total 0",
		"persephone_reservation_updates_total",
		`persephone_latency_seconds{type="type0",quantile="0.999"}`,
		`persephone_slowdown_p999{type="type0"}`,
		"# TYPE persephone_latency_seconds summary",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestServeMetricsHTTP(t *testing.T) {
	srv := newEchoServer(t, 2, ModeDARC)
	for i := 0; i < 20; i++ {
		srv.Call(typedPayload(0, "x")) //nolint:errcheck
	}
	addr, shutdown, err := srv.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown() //nolint:errcheck

	cli := &http.Client{Timeout: 5 * time.Second}
	resp, err := cli.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "persephone_requests_total") {
		t.Fatalf("body %q", body)
	}

	health, err := cli.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health.Body.Close()
	if health.StatusCode != 200 {
		t.Fatalf("healthz status %d", health.StatusCode)
	}
}

func TestHealthzAfterStop(t *testing.T) {
	srv := newEchoServer(t, 1, ModeCFCFS)
	addr, shutdown, err := srv.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown() //nolint:errcheck
	srv.Stop()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after stop: %d", resp.StatusCode)
	}
}

func TestSanitizeLabel(t *testing.T) {
	if got := sanitizeLabel(`we"ird la/bel`); got != "we_ird_la_bel" {
		t.Fatalf("sanitized %q", got)
	}
}
