package psp

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/classify"
	"repro/internal/darc"
	"repro/internal/faults"
	"repro/internal/proto"
	"repro/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

func TestWriteMetrics(t *testing.T) {
	srv := newEchoServer(t, 2, ModeDARC)
	for i := 0; i < 50; i++ {
		if _, err := srv.Call(typedPayload(i%2, "m")); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := srv.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"persephone_requests_total",
		"persephone_dispatched_total",
		"persephone_dropped_total 0",
		"persephone_reservation_updates_total",
		`persephone_latency_seconds{type="type0",quantile="0.999"}`,
		`persephone_slowdown_p999{type="type0"}`,
		"# TYPE persephone_latency_seconds summary",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestServeMetricsHTTP(t *testing.T) {
	srv := newEchoServer(t, 2, ModeDARC)
	for i := 0; i < 20; i++ {
		srv.Call(typedPayload(0, "x")) //nolint:errcheck
	}
	addr, shutdown, err := srv.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown() //nolint:errcheck

	cli := &http.Client{Timeout: 5 * time.Second}
	resp, err := cli.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "persephone_requests_total") {
		t.Fatalf("body %q", body)
	}

	health, err := cli.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health.Body.Close()
	if health.StatusCode != 200 {
		t.Fatalf("healthz status %d", health.StatusCode)
	}
}

func TestHealthzAfterStop(t *testing.T) {
	srv := newEchoServer(t, 1, ModeCFCFS)
	addr, shutdown, err := srv.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown() //nolint:errcheck
	srv.Stop()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after stop: %d", resp.StatusCode)
	}
}

func TestSanitizeLabel(t *testing.T) {
	cases := map[string]string{
		`we"ird la/bel`:   "we_ird_la_bel",
		"line\nbreak":     "line_break",    // newline would corrupt the exposition format
		`esc\ape"quote`:   "esc_ape_quote", // backslash and quote need no escaping once mapped
		"ünïcode":         "_n_code",       // non-ASCII runes collapse to underscores
		"":                "",              // empty stays empty
		"ok_name-1":       "ok_name-1",     // allowed characters pass through
		"tab\theader\r\n": "tab_header__",
	}
	for in, want := range cases {
		if got := sanitizeLabel(in); got != want {
			t.Errorf("sanitizeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWriteMetricsGolden pins the full Prometheus exposition — HELP
// and TYPE lines, metric names, label quoting, value formatting —
// against a golden file. The server is never started and every counter
// is hand-planted, so the rendered text is byte-deterministic.
// Regenerate with: go test ./internal/psp -run Golden -update
func TestWriteMetricsGolden(t *testing.T) {
	srv, err := NewServer(Config{
		Workers:    2,
		Classifier: classify.Field{Offset: 0, Types: 2},
		Handler: HandlerFunc(func(typ int, p, r []byte) (int, proto.Status) {
			return copy(r, p), proto.StatusOK
		}),
		DARC:   darc.DefaultConfig(2),
		Faults: &faults.Profile{Seed: 1, DropRate: 1},
		// Deterministic admission state: type0 carries an explicit 2ms
		// budget, type1 stays unprofiled (budget 0), the unknown slot
		// auto-derives to the 2ms maximum. Alpha 1/2 makes the EWMA
		// arithmetic exact in float64.
		Admission: &admission.Config{
			Budgets:       []time.Duration{2 * time.Millisecond, 0},
			OverloadDelay: time.Millisecond,
			EWMAAlpha:     0.5,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.mu.Lock()
	srv.enqueued, srv.dispatched, srv.dropped = 42, 40, 2
	srv.mu.Unlock()
	for i := 0; i < 3; i++ {
		srv.inj.IngressDrop() // DropRate 1: always injects
	}
	srv.noteRetry()
	srv.noteRetry()
	srv.restarts.Add(1)
	ms := time.Millisecond
	srv.rec.Complete(0, 0, ms, 500*time.Microsecond, 100*time.Microsecond, 0)
	srv.rec.Complete(0, 0, 2*ms, 500*time.Microsecond, 100*time.Microsecond, 0)
	srv.rec.Complete(1, 0, 20*ms, 10*ms, ms, 0)

	// Hand-plant lifecycle spans: two type-0, one type-1, and one
	// unclassifiable request; the stats path drains them into the
	// queue-delay and service families. traceLost is bumped directly.
	us := time.Microsecond
	for _, sp := range []trace.Span{
		{ID: 1, Type: 0, Worker: 0, Ingress: 0, Started: 10 * us, Finished: 110 * us, Replied: 112 * us},
		{ID: 2, Type: 0, Worker: 0, Ingress: 50 * us, Started: 80 * us, Finished: 190 * us, Replied: 195 * us},
		{ID: 3, Type: 1, Worker: 1, Ingress: 0, Started: 2 * ms, Finished: 12 * ms, Replied: 12*ms + 5*us},
		{ID: 4, Type: -1, Worker: 1, Ingress: ms, Started: ms + 40*us, Finished: ms + 90*us, Replied: ms + 95*us},
	} {
		if !srv.traceRings[sp.Worker].TryPut(sp) {
			t.Fatalf("trace ring full planting span %d", sp.ID)
		}
	}
	srv.traceLost.Add(1)

	// Hand-plant the admission ledger: type0 sheds on both deadline
	// and overload, type1 completes cleanly, the unknown slot loses
	// one to a simulated crash. The EWMA lands exactly on 2ms
	// (0 -> 1ms -> 2ms with alpha 1/2), above the 1ms threshold, so
	// the overloaded gauge pins at 1.
	for i := 0; i < 20; i++ {
		srv.adm.NoteAccepted(0)
	}
	for i := 0; i < 17; i++ {
		srv.adm.NoteCompleted(0)
	}
	srv.adm.NoteShed(0, admission.ShedDeadline)
	srv.adm.NoteShed(0, admission.ShedDeadline)
	srv.adm.NoteShed(0, admission.ShedOverload)
	for i := 0; i < 5; i++ {
		srv.adm.NoteAccepted(1)
		srv.adm.NoteCompleted(1)
	}
	srv.adm.NoteAccepted(-1)
	srv.adm.NoteAccepted(-1)
	srv.adm.NoteShed(-1, admission.ShedOverload)
	srv.adm.NoteShed(-1, admission.ShedLost)
	srv.adm.ObserveQueueDelay(2 * time.Millisecond)
	srv.adm.ObserveQueueDelay(3 * time.Millisecond)

	// Hand-plant the TCP transport families: two shards' ingress
	// counters, connection lifecycle, and pipeline-depth samples at
	// depth 1 (x2), 16 (x3), and one past the last bucket (+Inf).
	ts := &TCPServer{Server: srv, shards: []*tcpShard{{}, {}}}
	ts.shards[0].rx.Store(40)
	ts.shards[1].rx.Store(2)
	ts.shards[0].rxDrops.Store(3)
	ts.shards[0].rxSheds.Store(2)
	ts.shards[1].txFull.Store(1)
	ts.connsAccepted.Store(5)
	ts.connsOpen.Store(2)
	ts.connsEvicted.Store(1)
	ts.connsRejected.Store(4)
	ts.recordDepth(1, 2)
	ts.recordDepth(16, 3)
	ts.recordDepth(500, 1)
	srv.attachTCP(ts)

	// Hand-plant the reconfiguration control plane: three applied specs
	// (two policy swaps, one resize that migrated seven requests and
	// shed one) plus one rejection and a 1.5ms drain wait.
	srv.generation.Store(3)
	srv.rcApplied.Store(3)
	srv.rcRejected.Store(1)
	srv.rcPolicySwaps.Store(2)
	srv.rcResizes.Store(1)
	srv.rcMigrated.Store(7)
	srv.rcMigratedShed.Store(1)
	srv.rcLastDrainNs.Store(1_500_000)

	var buf bytes.Buffer
	if err := srv.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics_golden.txt")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from %s (run with -update to regenerate)\n--- got ---\n%s\n--- want ---\n%s",
			golden, buf.Bytes(), want)
	}
}
