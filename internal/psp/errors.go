package psp

import "errors"

// Sentinel errors forming the runtime's error contract. The facade
// re-exports them; match with errors.Is, never by message.
var (
	// ErrOverloaded means admission control shed the request (deadline
	// budget exceeded or reverse-reservation overload trim). Calls
	// that return it also return the Response, whose RetryAfter field
	// carries the server's backoff hint.
	ErrOverloaded = errors.New("psp: overloaded, request shed by admission control")
	// ErrDeadlineExceeded means a client-side per-call deadline
	// elapsed before the response arrived.
	ErrDeadlineExceeded = errors.New("psp: call deadline exceeded")
	// ErrPoolExhausted means a bounded resource pool (the ingress
	// ring, or a transport's pooled network buffers) had no free slot;
	// the request was refused before entering the pipeline.
	ErrPoolExhausted = errors.New("psp: resource pool exhausted")
	// ErrServerStopped means the server is shut down.
	ErrServerStopped = errors.New("psp: server stopped")
)
