//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package psp

import (
	"errors"
	"net"
)

// reusePortSupported is false here: without SO_REUSEPORT the accept
// shards share a single listener (ListenTCPShards runs Shards accept
// goroutines against it instead of one listener per shard).
const reusePortSupported = false

// reusePortListen is never called when reusePortSupported is false.
func reusePortListen(addr string) (net.Listener, error) {
	return nil, errors.New("psp: SO_REUSEPORT not supported on this platform")
}
