package psp

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/proto"
	"repro/internal/spsc"
)

// UDPServer wraps a Server with the paper's networking model: a net
// worker goroutine dequeues datagrams from the socket into pooled
// buffers and pushes requests to the dispatcher; application workers
// transmit responses directly on the shared socket, reusing the
// ingress buffer for the egress packet (§4.3.1's zero-copy path).
type UDPServer struct {
	Server *Server
	conn   *net.UDPConn
	pool   *spsc.Pool
	wg     sync.WaitGroup
	closed atomic.Bool

	rxDrops atomic.Uint64
	rx      atomic.Uint64
}

// ListenUDP binds addr (e.g. "127.0.0.1:9940") and starts the net
// worker on top of an already-configured (but not yet started) Server.
func ListenUDP(addr string, srv *Server) (*UDPServer, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("psp: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("psp: listen %q: %w", addr, err)
	}
	u := &UDPServer{
		Server: srv,
		conn:   conn,
		pool:   spsc.NewPool(4096, 2048),
	}
	srv.Start()
	u.wg.Add(1)
	go u.netWorker()
	return u, nil
}

// Addr reports the bound address.
func (u *UDPServer) Addr() *net.UDPAddr { return u.conn.LocalAddr().(*net.UDPAddr) }

// RxDrops reports datagrams dropped at ingress (pool exhausted, ring
// full, or malformed).
func (u *UDPServer) RxDrops() uint64 { return u.rxDrops.Load() }

// Received reports datagrams accepted into the pipeline.
func (u *UDPServer) Received() uint64 { return u.rx.Load() }

// Close stops the net worker, the server, and releases the socket.
func (u *UDPServer) Close() error {
	if u.closed.Swap(true) {
		return nil
	}
	err := u.conn.Close() // unblocks the net worker
	u.wg.Wait()
	u.Server.Stop()
	return err
}

// netWorker is the paper's layer-2 forwarder analogue: read, frame,
// hand to the dispatcher.
func (u *UDPServer) netWorker() {
	defer u.wg.Done()
	for {
		buf := u.pool.Get()
		if buf == nil {
			// Pool exhausted: shed one datagram using a stack scratch.
			var scratch [2048]byte
			if _, _, err := u.conn.ReadFromUDP(scratch[:]); err != nil {
				return
			}
			u.rxDrops.Add(1)
			continue
		}
		n, from, err := u.conn.ReadFromUDP(buf.Data)
		if err != nil {
			buf.Release()
			return // socket closed
		}
		buf.Len = n
		hdr, payload, perr := proto.DecodeHeader(buf.Bytes())
		if perr != nil || hdr.Kind != proto.KindRequest {
			buf.Release()
			u.rxDrops.Add(1)
			continue
		}
		// Requests stamp their retry attempt in the header status byte
		// (see proto); attempt > 0 is a client retransmission.
		if hdr.Status != 0 {
			u.Server.noteRetry()
		}
		// Chaos layer: the datagram may vanish here, as if lost on the
		// wire before the net worker ever saw it.
		if u.Server.inj.IngressDrop() {
			buf.Release()
			continue
		}
		req := &Request{payload: payload, buf: buf}
		reqID := hdr.RequestID
		addr := from
		conn := u.conn
		req.respond = func(resp Response) {
			// Workers transmit directly; the 16-byte header, the
			// response payload, and the lifecycle timing trailer go out
			// in one datagram.
			var out [2048 + proto.TimingSize]byte
			msg := proto.AppendMessage(out[:0], proto.Header{
				Kind:      proto.KindResponse,
				Status:    resp.Status,
				TypeID:    uint16(resp.Type & 0xFFFF),
				RequestID: reqID,
			}, resp.Payload)
			msg = proto.AppendTiming(msg, proto.Timing{Queue: resp.QueueDelay, Service: resp.Service})
			conn.WriteToUDP(msg, addr) //nolint:errcheck // fire-and-forget UDP
		}
		if !u.Server.inject(req) {
			buf.Release()
			u.rxDrops.Add(1)
			continue
		}
		u.rx.Add(1)
		// Chaos layer: duplicated delivery, as a retransmitting network
		// would produce. The copy owns its payload — the original's
		// pooled buffer is released when the first completion fires.
		if u.Server.inj.IngressDup() {
			dup := &Request{
				payload: append([]byte(nil), payload...),
				respond: req.respond,
			}
			if u.Server.inject(dup) {
				u.rx.Add(1)
			}
		}
	}
}
