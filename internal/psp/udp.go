package psp

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/proto"
	"repro/internal/spsc"
)

// UDPServer wraps a Server with the paper's networking model, scaled
// out: N ingress shards, each a net worker on its own UDP socket,
// drain *bursts* of datagrams into pooled buffers and hand each burst
// to the dispatcher in a single ring synchronization (§4.3.1's
// amortized packet path). On egress, workers encode responses into
// the request's own ingress buffer (the zero-copy path) and push the
// frame onto the shard's TX ring; a per-shard TX goroutine drains the
// ring in bursts and owns all socket writes, so workers never contend
// on a shared WriteToUDP.
type UDPServer struct {
	Server *Server
	shards []*udpShard

	rxWG   sync.WaitGroup
	txWG   sync.WaitGroup
	closed atomic.Bool
}

// UDPOptions tunes the sharded datapath. The zero value means one
// shard, 32-datagram bursts, 4096 pooled buffers and a 1024-frame TX
// ring per shard.
type UDPOptions struct {
	// Shards is the number of ingress sockets, each with its own net
	// worker, buffer pool and TX goroutine. With a non-zero listen
	// port, shard i binds port+i; with port 0 every shard gets its own
	// ephemeral port. Clients pick a shard per request (see
	// loadgen.RunUDP's multi-address support).
	Shards int
	// Burst caps how many datagrams one net-worker wakeup drains
	// before the batch is handed to the dispatcher.
	Burst int
	// PoolSize is the number of pooled ingress buffers per shard.
	PoolSize int
	// TXRing is the per-shard egress ring capacity (frames).
	TXRing int
}

func (o *UDPOptions) fill() {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Burst <= 0 {
		o.Burst = 32
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 4096
	}
	if o.TXRing <= 0 {
		o.TXRing = 1024
	}
}

// udpBufPayload is the largest request datagram a pooled buffer
// accepts; the buffer is sized with proto.ResponseOverhead headroom so
// the same buffer holds the response frame for any payload up to the
// default worker scratch size.
const udpBufPayload = 2048

// txFrame is one encoded response waiting on a shard's egress ring.
type txFrame struct {
	buf  *spsc.Buffer // encoded frame (reused ingress buffer)
	addr *net.UDPAddr
}

// udpShard is one ingress/egress lane: socket, buffer pool, burst
// scratch, TX ring, and counters.
type udpShard struct {
	srv  *Server
	conn *net.UDPConn
	raw  syscall.RawConn
	pool *spsc.Pool
	tx   *spsc.MPSC[txFrame]

	// Burst scratch, owned by the shard's net worker.
	bufs    []*spsc.Buffer
	addrs   []*net.UDPAddr
	scratch []byte // shed reads when the pool is exhausted

	// Source-address cache (net-worker-owned): consecutive datagrams
	// from one client reuse a single immutable *net.UDPAddr instead of
	// allocating per datagram.
	lastIP4  [4]byte
	lastPort int
	lastAddr *net.UDPAddr

	rx      atomic.Uint64
	rxDrops atomic.Uint64 // malformed datagrams + ingress-ring overflow
	rxSheds atomic.Uint64 // datagrams shed because the pool was exhausted
	txFull  atomic.Uint64 // responses transmitted inline because the TX ring was full
}

// ListenUDP binds addr (e.g. "127.0.0.1:9940") with a single shard and
// default batching, and starts the datapath on top of an
// already-configured (but not yet started) Server.
func ListenUDP(addr string, srv *Server) (*UDPServer, error) {
	return ListenUDPShards(addr, srv, UDPOptions{})
}

// ListenUDPShards binds opts.Shards sockets starting at addr and
// starts the full sharded datapath. With a non-zero port in addr,
// shard i listens on port+i; with port 0 each shard takes an ephemeral
// port. Addrs reports the bound set.
func ListenUDPShards(addr string, srv *Server, opts UDPOptions) (*UDPServer, error) {
	opts.fill()
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("psp: resolve %q: %w", addr, err)
	}
	u := &UDPServer{Server: srv}
	for i := 0; i < opts.Shards; i++ {
		shardAddr := *udpAddr
		if udpAddr.Port != 0 {
			shardAddr.Port = udpAddr.Port + i
		}
		conn, err := net.ListenUDP("udp", &shardAddr)
		if err != nil {
			for _, sh := range u.shards {
				sh.conn.Close()
			}
			return nil, fmt.Errorf("psp: listen %q shard %d: %w", addr, i, err)
		}
		// Saturation bursts outrun the net worker briefly; ask for deep
		// kernel buffers (clamped to net.core.{r,w}mem_max) so those
		// bursts queue instead of dropping.
		conn.SetReadBuffer(4 << 20)  //nolint:errcheck // best effort
		conn.SetWriteBuffer(4 << 20) //nolint:errcheck // best effort
		raw, err := conn.SyscallConn()
		if err != nil {
			conn.Close()
			for _, sh := range u.shards {
				sh.conn.Close()
			}
			return nil, fmt.Errorf("psp: raw conn shard %d: %w", i, err)
		}
		u.shards = append(u.shards, &udpShard{
			srv:     srv,
			conn:    conn,
			raw:     raw,
			pool:    spsc.NewPool(opts.PoolSize, udpBufPayload+proto.ResponseOverhead),
			tx:      spsc.NewMPSC[txFrame](opts.TXRing),
			bufs:    make([]*spsc.Buffer, opts.Burst),
			addrs:   make([]*net.UDPAddr, opts.Burst),
			scratch: make([]byte, udpBufPayload+proto.ResponseOverhead),
		})
	}
	srv.Start()
	for _, sh := range u.shards {
		u.rxWG.Add(1)
		go u.netWorker(sh)
		u.txWG.Add(1)
		go u.txLoop(sh)
	}
	return u, nil
}

// Addr reports the first shard's bound address.
func (u *UDPServer) Addr() *net.UDPAddr { return u.shards[0].conn.LocalAddr().(*net.UDPAddr) }

// Addrs reports every shard's bound address, in shard order.
func (u *UDPServer) Addrs() []*net.UDPAddr {
	out := make([]*net.UDPAddr, len(u.shards))
	for i, sh := range u.shards {
		out[i] = sh.conn.LocalAddr().(*net.UDPAddr)
	}
	return out
}

// Shards reports the number of ingress shards.
func (u *UDPServer) Shards() int { return len(u.shards) }

// RxDrops reports datagrams dropped at ingress because they were
// malformed or the ingress ring was full. Pool-exhaustion sheds are
// counted separately in RxSheds.
func (u *UDPServer) RxDrops() uint64 {
	var n uint64
	for _, sh := range u.shards {
		n += sh.rxDrops.Load()
	}
	return n
}

// RxSheds reports datagrams shed at ingress because the shard's
// buffer pool was exhausted (sustained overload backpressure).
func (u *UDPServer) RxSheds() uint64 {
	var n uint64
	for _, sh := range u.shards {
		n += sh.rxSheds.Load()
	}
	return n
}

// TxRingFull reports responses that bypassed the TX ring (transmitted
// inline by the completing worker) because the ring was full.
func (u *UDPServer) TxRingFull() uint64 {
	var n uint64
	for _, sh := range u.shards {
		n += sh.txFull.Load()
	}
	return n
}

// Received reports datagrams accepted into the pipeline across all
// shards.
func (u *UDPServer) Received() uint64 {
	var n uint64
	for _, sh := range u.shards {
		n += sh.rx.Load()
	}
	return n
}

// ShardReceived reports datagrams accepted by one shard.
func (u *UDPServer) ShardReceived(i int) uint64 { return u.shards[i].rx.Load() }

// Close stops the net workers, the server, then the TX drains, and
// releases the sockets.
func (u *UDPServer) Close() error {
	if u.closed.Swap(true) {
		return nil
	}
	var err error
	for _, sh := range u.shards {
		if e := sh.conn.Close(); e != nil && err == nil {
			err = e // unblocks that shard's net worker
		}
	}
	u.rxWG.Wait()
	// Stop drains the queues; drop responses flow through the TX rings
	// (and fail harmlessly on the closed sockets).
	u.Server.Stop()
	// With the server stopped no producer remains; a sentinel frame
	// terminates each TX loop after the backlog drains.
	for _, sh := range u.shards {
		for !sh.tx.TryPut(txFrame{}) {
			runtime.Gosched()
		}
	}
	u.txWG.Wait()
	return err
}

// netWorker is the paper's net-worker analogue for one shard: drain a
// burst of datagrams, frame them, hand the burst to the dispatcher in
// one ring synchronization.
func (u *UDPServer) netWorker(sh *udpShard) {
	defer u.rxWG.Done()
	batch := make([]*Request, 0, len(sh.bufs))
	for {
		n, err := sh.readBurst()
		batch = batch[:0]
		for i := 0; i < n; i++ {
			buf, from := sh.bufs[i], sh.addrs[i]
			sh.bufs[i] = nil
			hdr, payload, perr := proto.DecodeHeader(buf.Bytes())
			if perr != nil || hdr.Kind != proto.KindRequest || from == nil {
				buf.Release()
				sh.rxDrops.Add(1)
				continue
			}
			// Requests stamp their retry attempt in the header status
			// byte (see proto); attempt > 0 is a client retransmission.
			if hdr.Status != 0 {
				u.Server.noteRetry()
			}
			// Chaos layer: the datagram may vanish here, as if lost on
			// the wire before the net worker ever saw it.
			if u.Server.inj.IngressDrop() {
				buf.Release()
				continue
			}
			// A fan-out frontend tags sub-requests with a correlation
			// trailer; capture it by value so the responder can echo it
			// after the ingress buffer is overwritten by the response.
			corr, hasCorr := proto.DecodeCorrelation(buf.Bytes(), hdr)
			req := &Request{payload: payload, buf: buf}
			req.respond = sh.responder(req, hdr.RequestID, from, corr, hasCorr)
			batch = append(batch, req)
			// Chaos layer: duplicated delivery, as a retransmitting
			// network would produce. The copy owns its payload and has
			// no ingress buffer, so its response takes the allocating
			// fallback and cannot race the original for the buffer.
			if u.Server.inj.IngressDup() {
				dup := &Request{payload: append([]byte(nil), payload...)}
				dup.respond = sh.responder(dup, hdr.RequestID, from, corr, hasCorr)
				batch = append(batch, dup)
			}
		}
		accepted := u.Server.injectBatch(batch)
		sh.rx.Add(uint64(accepted))
		for _, r := range batch[accepted:] {
			// Ingress ring full: shed the tail of the burst.
			if r.buf != nil {
				r.buf.Release()
			}
			sh.rxDrops.Add(1)
		}
		if err != nil {
			return // socket closed
		}
		if n == 0 {
			// A pure-shed round (pool exhausted): yield so workers can
			// run and return buffers instead of starving them with
			// back-to-back shed reads.
			runtime.Gosched()
		}
	}
}

// responder builds the respond callback for one request: encode the
// response into the request's own ingress buffer (zero-copy) and push
// it onto the shard's TX ring. Requests without a reusable buffer
// (chaos duplicates, oversized responses) fall back to a one-off
// allocation and an inline write. Requests that arrived with a
// correlation trailer (fan-out sub-requests) get it echoed after the
// timing trailer.
func (sh *udpShard) responder(req *Request, reqID uint64, addr *net.UDPAddr, corr proto.Correlation, hasCorr bool) func(Response) {
	return func(resp Response) {
		hdr := proto.Header{
			Status:    resp.Status,
			TypeID:    uint16(resp.Type & 0xFFFF),
			RequestID: reqID,
		}
		tm := proto.Timing{Queue: resp.QueueDelay, Service: resp.Service}
		need := proto.ResponseOverhead + len(resp.Payload)
		if resp.RetryAfter > 0 {
			need += proto.RetryAfterSize
		}
		if hasCorr {
			need += proto.CorrelationSize
		}
		if b := req.buf; b != nil && cap(b.Data) >= need {
			// Take ownership of the ingress buffer: the settling
			// goroutine skips its release, and the TX loop returns the
			// buffer to the pool after the frame is on the wire.
			req.buf = nil
			msg := proto.AppendResponse(b.Data[:0], hdr, resp.Payload, tm)
			if resp.RetryAfter > 0 {
				msg = proto.AppendRetryAfter(msg, resp.RetryAfter)
			}
			if hasCorr {
				msg = proto.AppendCorrelation(msg, corr)
			}
			b.Len = len(msg)
			if sh.tx.TryPut(txFrame{buf: b, addr: addr}) {
				return
			}
			// TX ring full: transmit inline rather than block a worker.
			sh.txFull.Add(1)
			sh.conn.WriteToUDP(b.Bytes(), addr) //nolint:errcheck // fire-and-forget UDP
			b.Release()
			return
		}
		msg := proto.AppendResponse(make([]byte, 0, need), hdr, resp.Payload, tm)
		if resp.RetryAfter > 0 {
			msg = proto.AppendRetryAfter(msg, resp.RetryAfter)
		}
		if hasCorr {
			msg = proto.AppendCorrelation(msg, corr)
		}
		sh.conn.WriteToUDP(msg, addr) //nolint:errcheck // fire-and-forget UDP
	}
}

// txLoop owns the shard's socket writes: it drains encoded frames off
// the TX ring — many per wakeup once responses queue up — and returns
// each buffer to the pool. A nil-buffer sentinel (pushed by Close
// after the server stops) terminates the loop once the backlog is
// out.
func (u *UDPServer) txLoop(sh *udpShard) {
	defer u.txWG.Done()
	spins := 0
	for {
		f, ok := sh.tx.TryGet()
		if !ok {
			spins++
			switch {
			case spins < 64:
			case spins < 4096:
				runtime.Gosched()
			default:
				time.Sleep(20 * time.Microsecond)
			}
			continue
		}
		spins = 0
		if f.buf == nil {
			return // shutdown sentinel
		}
		sh.conn.WriteToUDP(f.buf.Bytes(), f.addr) //nolint:errcheck // fire-and-forget UDP
		f.buf.Release()
	}
}
